bench/main.mli:
