bench/workloads.ml: Dag Filter Flow_key Int32 Ipaddr List Prefix Proto Random Rp_classifier Rp_lpm Rp_pkt
