(* Output helpers and the Bechamel runner used by every section. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* Run a grouped Bechamel test and print one "ns/op" line per case. *)
let run_bechamel ?(quota = 0.5) tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.iter
    (fun name ->
      let est = Analyze.OLS.estimates (Hashtbl.find results name) in
      match est with
      | Some [ ns ] -> Printf.printf "  %-42s %12.1f ns/op\n" name ns
      | Some _ | None -> Printf.printf "  %-42s  (no estimate)\n" name)
    (List.sort String.compare names)

(* Simple wall-clock measurement of [f] repeated [n] times, ns each. *)
let time_ns n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int n

let mbps bps = bps /. 1e6
