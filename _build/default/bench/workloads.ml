(* Deterministic workload generators shared by the benchmark sections.

   Filter sets follow realistic (BGP-like) prefix-length structure:
   bulk filters use /16../32 (v4) or /48../64 (v6) prefixes so the
   set-pruning trie stays near-linear — the paper accepts combinatorial
   memory for heavily nested/ambiguous sets (section 5.1.2), and the
   "ladder" component below adds exactly such a nested chain to pin
   the worst-case lookup depth without blowing up memory. *)

open Rp_pkt
open Rp_classifier

let rng = Random.State.make [| 20260706 |]

let rand_v4 () =
  Ipaddr.v4 (Random.State.int rng 224) (Random.State.int rng 256)
    (Random.State.int rng 256) (Random.State.int rng 256)

let rand_v6 () =
  Ipaddr.v6
    (Int32.of_int (Random.State.int rng 0x3FFFFFFF))
    (Random.State.int rng 0x3FFFFFFF |> Int32.of_int)
    (Random.State.int rng 0x3FFFFFFF |> Int32.of_int)
    (Random.State.int rng 0x3FFFFFFF |> Int32.of_int)

(* A bulk filter: concrete prefixes, mixed ports. *)
(* Lengths 16..31; adding host routes (/32) would make 32 distinct
   lengths and cost the BSPL a sixth probe per address (see
   EXPERIMENTS.md). *)
let bulk_filter_v4 () =
  Filter.v4
    ~src:(Prefix.make (rand_v4 ()) (16 + Random.State.int rng 16))
    ~dst:(Prefix.make (rand_v4 ()) (16 + Random.State.int rng 16))
    ~proto:(if Random.State.bool rng then Proto.tcp else Proto.udp)
    ~dport:
      (if Random.State.int rng 10 < 3 then Filter.Port (Random.State.int rng 10)
       else Filter.Any_port)
    ()

let bulk_filter_v6 () =
  Filter.v6
    ~src:(Prefix.make (rand_v6 ()) (48 + Random.State.int rng 17))
    ~dst:(Prefix.make (rand_v6 ()) (48 + Random.State.int rng 17))
    ~proto:(if Random.State.bool rng then Proto.tcp else Proto.udp)
    ()

(* The nested "ladder": one filter per prefix length of a fixed
   address, on both source and destination, forcing the BMP search at
   the address levels to cover every length — the worst case Table 2
   charges for. *)
let ladder_v4_addr = Ipaddr.v4 129 132 19 40
let ladder_v4_dst = Ipaddr.v4 192 94 233 10

(* Lengths 1..31: a binary search tree over 31 distinct lengths has
   depth 5 = log2(32), the figure Table 2 charges per address (a 32nd
   length would force a sixth probe). *)
let ladder_filters_v4 () =
  List.concat_map
    (fun len ->
      [
        Filter.v4
          ~src:(Prefix.make ladder_v4_addr len)
          ~dst:(Prefix.make ladder_v4_dst 24) ~proto:Proto.tcp
          ~sport:(Filter.Port 80) ~dport:(Filter.Port 1234) ~iface:0 ();
        Filter.v4
          ~src:(Prefix.make ladder_v4_addr 24)
          ~dst:(Prefix.make ladder_v4_dst len)
          ~proto:Proto.tcp ~sport:(Filter.Port 80) ~dport:(Filter.Port 1234)
          ~iface:0 ();
      ])
    (List.init 31 (fun i -> i + 1))

let ladder_v6_addr = Ipaddr.of_string "2001:620:0:4::10"
let ladder_v6_dst = Ipaddr.of_string "2001:db8:42::17"

(* Lengths 1..127: depth 7 = log2(128) per address. *)
let ladder_filters_v6 () =
  List.concat_map
    (fun len ->
      [
        Filter.v6
          ~src:(Prefix.make ladder_v6_addr len)
          ~dst:(Prefix.make ladder_v6_dst 64) ~proto:Proto.tcp
          ~sport:(Filter.Port 80) ~dport:(Filter.Port 1234) ~iface:0 ();
        Filter.v6
          ~src:(Prefix.make ladder_v6_addr 64)
          ~dst:(Prefix.make ladder_v6_dst len)
          ~proto:Proto.tcp ~sport:(Filter.Port 80) ~dport:(Filter.Port 1234)
          ~iface:0 ();
      ])
    (List.init 127 (fun i -> i + 1))

(* The packet that exercises the full ladder walk. *)
let ladder_key_v4 =
  Flow_key.make ~src:ladder_v4_addr ~dst:ladder_v4_dst ~proto:Proto.tcp
    ~sport:80 ~dport:1234 ~iface:0

let ladder_key_v6 =
  Flow_key.make ~src:ladder_v6_addr ~dst:ladder_v6_dst ~proto:Proto.tcp
    ~sport:80 ~dport:1234 ~iface:0

let random_key_v4 () =
  Flow_key.make ~src:(rand_v4 ()) ~dst:(rand_v4 ()) ~proto:Proto.tcp
    ~sport:(Random.State.int rng 60000) ~dport:(Random.State.int rng 10)
    ~iface:0

(* Build a DAG with [n] bulk filters (plus the ladder when asked). *)
let build_dag ?(engine = Rp_lpm.Engines.bspl) ?(ladder = false) ~family n =
  let dag = Dag.create ~engine () in
  let bulk = match family with `V4 -> bulk_filter_v4 | `V6 -> bulk_filter_v6 in
  for i = 0 to n - 1 do
    Dag.insert dag (bulk ()) i
  done;
  if ladder then begin
    let ladder_filters =
      match family with `V4 -> ladder_filters_v4 () | `V6 -> ladder_filters_v6 ()
    in
    List.iteri (fun i f -> Dag.insert dag f (1_000_000 + i)) ladder_filters
  end;
  dag
