bin/pmgr.ml: Arg Cmd Cmdliner List Manpage Printf Rp_control Rp_core String Term
