bin/pmgr.mli:
