bin/rp_router.ml: Arg Array Cmd Cmdliner Format Int64 List Option Printf Rp_control Rp_core Rp_sim String Term
