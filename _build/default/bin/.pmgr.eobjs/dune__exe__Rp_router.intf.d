bin/rp_router.mli:
