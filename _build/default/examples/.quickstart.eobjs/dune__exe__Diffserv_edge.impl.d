examples/diffserv_edge.ml: List Option Printf Rp_control Rp_sched Rp_sim
