examples/diffserv_edge.mli:
