examples/network_monitor.ml: Flow_key Ipaddr List Printf Proto Rp_control Rp_pkt Rp_sim
