examples/qos_link_sharing.ml: Flow_key Int64 Ipaddr List Printf Rp_control Rp_pkt Rp_sched Rp_sim
