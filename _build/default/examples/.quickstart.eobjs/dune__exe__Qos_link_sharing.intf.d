examples/qos_link_sharing.mli:
