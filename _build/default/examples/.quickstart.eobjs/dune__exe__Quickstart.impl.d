examples/quickstart.ml: Firewall_plugin Flow_key Format Gate Iface Ip_core Ipaddr List Mbuf Pcu Plugin Prefix Printf Proto Router Rp_classifier Rp_control Rp_core Rp_pkt
