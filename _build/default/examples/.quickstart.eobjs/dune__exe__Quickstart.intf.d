examples/quickstart.mli:
