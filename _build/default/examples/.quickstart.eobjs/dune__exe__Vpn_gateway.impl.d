examples/vpn_gateway.ml: Bytes Char Flow_key Format Iface Int64 Ip_core Ipaddr Ipv4_header List Mbuf Option Prefix Printf Router Rp_control Rp_core Rp_crypto Rp_pkt Rp_sim String Udp_header
