examples/vpn_gateway.mli:
