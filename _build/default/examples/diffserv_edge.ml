(* DiffServ edge router: per-flow profile enforcement at the
   congestion gate (paper, section 2: edge routers "enforcing the
   configured profiles of differential service flows", on "a
   per-application flow basis").

   Two customers share an edge uplink.  Customer A bought a 2 Mb/s
   committed rate with hard policing (excess dropped); customer B
   bought 1 Mb/s with soft policing (excess forwarded, but re-marked to
   a scavenger DSCP).  Both offer 4 Mb/s.  Token-bucket plugin
   instances at the congestion gate implement both profiles; nothing in
   the forwarding code knows about either.

   Run with: dune exec examples/diffserv_edge.exe *)


let pmgr r cmd =
  match Rp_control.Pmgr.exec r cmd with
  | Ok out ->
    Printf.printf "  pmgr> %-52s %s\n" cmd out;
    out
  | Error e -> failwith (Printf.sprintf "pmgr %s: %s" cmd e)

let () =
  print_endline "== DiffServ edge (token-bucket profile enforcement) ==\n";
  let s =
    Rp_sim.Scenario.single_router ~in_ifaces:1 ~out_bandwidth_bps:100_000_000L ()
  in
  let r = s.Rp_sim.Scenario.router in
  ignore (pmgr r "modload token-bucket");
  (* Customer A: hard policing at 2 Mb/s (250 kB/s). *)
  ignore (pmgr r "create token-bucket rate=250000 burst=20000 action=drop");
  ignore (pmgr r "bind 1 <10.0.0.1, *, UDP, *, *, *>");
  (* Customer B: soft policing at 1 Mb/s, excess re-marked DSCP 7. *)
  ignore (pmgr r "create token-bucket rate=125000 burst=20000 action=mark dscp=7");
  ignore (pmgr r "bind 2 <10.0.0.2, *, UDP, *, *, *>");
  print_newline ();

  (* Both customers blast 4 Mb/s for 2 seconds. *)
  List.iter
    (fun id ->
      ignore
        (Rp_sim.Scenario.add_flow s
           {
             Rp_sim.Traffic.key = Rp_sim.Scenario.sink_key ~id ();
             pkt_len = 1000;
             pattern = Rp_sim.Traffic.Cbr 500.0;  (* 4 Mb/s *)
             start_ns = 0L;
             stop_ns = Rp_sim.Sim.ns_of_sec 2.0;
             seed = id;
           }))
    [ 1; 2 ];
  Rp_sim.Scenario.run s ~seconds:2.5;

  let report label id instance =
    let conformed, exceeded =
      Option.value (Rp_sched.Tb_plugin.counters ~instance_id:instance)
        ~default:(0, 0)
    in
    let delivered =
      match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id ()) with
      | Some fs -> Rp_sim.Sink.goodput_bps fs /. 1e6
      | None -> 0.0
    in
    Printf.printf "  %-12s offered 4.00 Mb/s   in-profile %4d pkts   excess %4d pkts   delivered %.2f Mb/s\n"
      label conformed exceeded delivered
  in
  print_endline "results after 2 s at 4 Mb/s offered each:";
  report "customer A" 1 1;
  report "customer B" 2 2;
  let st = Rp_sim.Net.stats s.Rp_sim.Scenario.node in
  List.iter
    (fun (reason, n) -> Printf.printf "  edge dropped %d packets (%s)\n" n reason)
    st.Rp_sim.Net.drop_reasons;
  Printf.printf
    "\nCustomer A's excess died at the edge (hard policing); customer\n\
     B's excess crossed the link re-marked to the scavenger class\n\
     (DSCP 7), ready for preferential dropping downstream.  Both\n\
     profiles are per-flow soft state in the flow table — adding a\n\
     customer is one pmgr 'create' + 'bind'.\n"
