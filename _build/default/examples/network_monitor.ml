(* Network monitoring: per-flow statistics gathering without touching
   the forwarding code (the network-management application of the
   paper's section 2: "to be able to quickly and easily change the
   kinds of statistics being collected ... without incurring
   significant overhead on the data path").

   Two stats instances are bound to different slices of the traffic
   (per-department accounting); a third is added *while traffic is
   flowing* to start watching DNS specifically; reports are pulled
   through plugin-specific PCU messages. *)

open Rp_pkt

let pmgr r cmd =
  match Rp_control.Pmgr.exec r cmd with
  | Ok out -> out
  | Error e -> failwith (Printf.sprintf "pmgr %s: %s" cmd e)

let () =
  print_endline "== network monitor (stats plugins) ==\n";
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  let r = s.Rp_sim.Scenario.router in
  ignore (pmgr r "modload stats");
  (* Engineering is 10.1/16, sales is 10.2/16. *)
  ignore (pmgr r "create stats");
  ignore (pmgr r "create stats");
  ignore (pmgr r "bind 1 <10.1.0.0/16, *, *, *, *, *>");
  ignore (pmgr r "bind 2 <10.2.0.0/16, *, *, *, *, *>");
  print_endline "instances: 1 = engineering (10.1/16), 2 = sales (10.2/16)";

  let flow ~id ~src ~dport ~rate ~len =
    ignore
      (Rp_sim.Scenario.add_flow s
         {
           Rp_sim.Traffic.key =
             Flow_key.make ~src:(Ipaddr.of_string src)
               ~dst:(Ipaddr.v4 192 168 1 (10 + id)) ~proto:Proto.udp
               ~sport:(5000 + id) ~dport ~iface:0;
           pkt_len = len;
           pattern = Rp_sim.Traffic.Poisson rate;
           start_ns = 0L;
           stop_ns = Rp_sim.Sim.ns_of_sec 2.0;
           seed = id;
         })
  in
  flow ~id:1 ~src:"10.1.0.4" ~dport:8080 ~rate:400.0 ~len:900;
  flow ~id:2 ~src:"10.1.0.9" ~dport:53 ~rate:120.0 ~len:120;
  flow ~id:3 ~src:"10.2.0.7" ~dport:8080 ~rate:250.0 ~len:1200;
  flow ~id:4 ~src:"10.3.0.2" ~dport:443 ~rate:100.0 ~len:700;

  (* Halfway in, the operator starts DNS-specific monitoring — a new
     instance, hot-bound; the more specific filter wins for DNS
     packets from engineering. *)
  Rp_sim.Sim.at s.Rp_sim.Scenario.sim (Rp_sim.Sim.ns_of_sec 1.0) (fun () ->
      ignore (pmgr r "create stats history=16");
      ignore (pmgr r "bind 3 <10.1.0.0/16, *, UDP, *, 53, *>");
      print_endline "\n[t=1s] operator: started DNS monitor (instance 3)");

  Rp_sim.Scenario.run s ~seconds:3.0;

  print_endline "\n-- reports pulled through PCU messages --";
  List.iter
    (fun (label, id) ->
      Printf.printf "  %-22s %s\n" label (pmgr r (Printf.sprintf "message stats report %d" id)))
    [ ("engineering (1):", 1); ("sales (2):", 2); ("dns monitor (3):", 3) ];

  print_endline "\n-- instance self-descriptions --";
  print_endline (pmgr r "show instances");

  let st = Rp_sim.Net.stats s.Rp_sim.Scenario.node in
  Printf.printf
    "\nrouter forwarded %d packets; stats gathering ran entirely in\n\
     plugins — departmental totals changed per-flow, mid-traffic, with\n\
     zero forwarding-code changes.\n"
    st.Rp_sim.Net.forwarded
