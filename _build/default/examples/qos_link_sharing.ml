(* QoS link sharing: the paper's section 6.1 demonstration.

   An edge router's 8 Mb/s uplink carries four competing UDP flows.
   The weighted DRR plugin is loaded and attached at run time (the
   exact pmgr workflow of the paper), one flow gets a bandwidth
   reservation via SSP signalling — the simplified RSVP — and another
   via a direct pmgr reservation.  The run shows per-flow isolation
   and weighted shares, then contrasts with the FIFO behaviour before
   the plugin was attached.

   Run with: dune exec examples/qos_link_sharing.exe *)

open Rp_pkt

let pmgr r cmd =
  match Rp_control.Pmgr.exec r cmd with
  | Ok out ->
    Printf.printf "  pmgr> %-55s %s\n" cmd out;
    out
  | Error e -> failwith (Printf.sprintf "pmgr %s: %s" cmd e)

let offered_mbps = 4.0
let link_mbps = 8.0

let run_phase ~label ~configure =
  let s =
    Rp_sim.Scenario.single_router ~in_ifaces:1
      ~out_bandwidth_bps:(Int64.of_float (link_mbps *. 1e6))
      ()
  in
  configure s;
  (* Four flows, 1000-byte packets, each offering 4 Mb/s. *)
  for id = 1 to 4 do
    ignore
      (Rp_sim.Scenario.add_flow s
         {
           Rp_sim.Traffic.key = Rp_sim.Scenario.sink_key ~id ();
           pkt_len = 1000;
           pattern = Rp_sim.Traffic.Cbr (offered_mbps *. 1e6 /. 8000.0);
           start_ns = 0L;
           stop_ns = Rp_sim.Sim.ns_of_sec 3.0;
           seed = id;
         })
  done;
  Rp_sim.Scenario.run s ~seconds:4.0;
  Printf.printf "\n  %s\n" label;
  Printf.printf "  %-6s %14s %10s %12s\n" "flow" "goodput Mb/s" "share" "mean lat ms";
  let total =
    List.fold_left
      (fun acc id ->
        match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id ()) with
        | Some fs -> acc +. Rp_sim.Sink.goodput_bps fs
        | None -> acc)
      0.0 [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun id ->
      match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id ()) with
      | Some fs ->
        let mean, _ = Rp_sim.Sink.latency fs in
        Printf.printf "  %-6d %14.2f %9.1f%% %12.2f\n" id
          (Rp_sim.Sink.goodput_bps fs /. 1e6)
          (Rp_sim.Sink.goodput_bps fs /. total *. 100.0)
          (mean *. 1e3)
      | None -> Printf.printf "  %-6d starved\n" id)
    [ 1; 2; 3; 4 ]

let () =
  Printf.printf
    "== QoS link sharing (weighted DRR + SSP reservations) ==\n\n\
     Four UDP flows, each offering %.0f Mb/s onto a %.0f Mb/s uplink.\n"
    offered_mbps link_mbps;

  (* Phase 1: plain FIFO — the best-effort router. *)
  run_phase ~label:"FIFO (no QoS): arrival order decides, no isolation"
    ~configure:(fun _ -> ());

  (* Phase 2: load and attach the DRR plugin, reserve bandwidth. *)
  Printf.printf "\n  --- operator configures QoS at run time ---\n";
  run_phase ~label:"weighted DRR: reservations give 1:1:2:4"
    ~configure:(fun s ->
      let r = s.Rp_sim.Scenario.router in
      ignore (pmgr r "modload drr");
      ignore (pmgr r "create drr quantum=512");
      ignore (pmgr r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface));
      ignore (pmgr r "bind 1 <*, *, UDP, *, *, *>");
      (* Flow 3 reserves 2 Mb/s through pmgr (administrator action)... *)
      let f3 = Rp_sim.Scenario.sink_key ~id:3 () in
      ignore
        (pmgr r
           (Printf.sprintf "reserve 1 2000000 <%s, %s, UDP, %d, %d, if0>"
              (Ipaddr.to_string f3.Flow_key.src)
              (Ipaddr.to_string f3.Flow_key.dst)
              f3.Flow_key.sport f3.Flow_key.dport));
      (* ...flow 4 reserves 4 Mb/s in-band through SSP (an application
         action), and flows 1-2 get the 1 Mb/s base weight. *)
      ignore (Rp_control.Ssp.attach r);
      let f4 = Rp_sim.Scenario.sink_key ~id:4 () in
      Rp_sim.Net.inject s.Rp_sim.Scenario.node
        (Rp_control.Ssp.setup_packet ~src:f4.Flow_key.src ~flow:f4
           ~rate_bps:4_000_000)
        ~at:0L;
      List.iter
        (fun id ->
          match
            Rp_sched.Drr_plugin.reserve ~instance_id:1
              ~key:(Rp_sim.Scenario.sink_key ~id ())
              ~rate_bps:1_000_000
          with
          | Ok () -> ()
          | Error e -> failwith e)
        [ 1; 2 ];
      Printf.printf "  (flow 4's reservation arrived in-band via SSP)\n");
  Printf.printf
    "\nNote how DRR bounds every flow's latency (per-flow queues) while\n\
     FIFO let all flows share one long queue.\n"
