(* Quickstart: the smallest complete tour of the public API.

   Builds a two-interface router, loads a plugin, creates and binds an
   instance to a flow filter, pushes packets down the data path, and
   inspects what happened — the full modload/create/bind cycle of the
   paper's section 3.1, in a dozen lines of code each.

   Run with: dune exec examples/quickstart.exe *)

open Rp_pkt
open Rp_core

let ok = function Ok v -> v | Error e -> failwith e

let () =
  print_endline "== router plugins quickstart ==\n";

  (* 1. A router with two interfaces and one route. *)
  let router =
    Router.create ~name:"quickstart"
      ~ifaces:[ Iface.create ~id:0 (); Iface.create ~id:1 () ]
      ()
  in
  Router.add_route router (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  print_endline "1. created router with if0, if1 and one route";

  (* 2. Load a plugin into the "kernel" (the paper's modload). *)
  ok (Pcu.modload router.Router.pcu (module Firewall_plugin));
  Printf.printf "2. loaded plugin %S at gate %s\n" Firewall_plugin.name
    (Gate.name Firewall_plugin.gate);

  (* 3. Create an instance — a configured incarnation of the plugin. *)
  let deny =
    ok
      (Pcu.create_instance router.Router.pcu ~plugin:"firewall"
         [ ("policy", "deny") ])
  in
  Printf.printf "3. created instance %d (%s)\n" deny.Plugin.instance_id
    (deny.Plugin.describe ());

  (* 4. Bind the instance to a set of flows with a filter: all TCP
        from the 10.66/16 network. *)
  let filter = ok (Rp_classifier.Filter.of_string "<10.66.*.*, *, TCP, *, *, *>") in
  ok (Pcu.register_instance router.Router.pcu ~instance:deny.Plugin.instance_id filter);
  Printf.printf "4. bound filter %s\n" (Rp_classifier.Filter.to_string filter);

  (* 5. Run packets through the data path. *)
  let packet ~src ~proto =
    Mbuf.synth
      ~key:
        (Flow_key.make ~src:(Ipaddr.of_string src)
           ~dst:(Ipaddr.of_string "192.168.1.1") ~proto ~sport:1025
           ~dport:80 ~iface:0)
      ~len:512 ()
  in
  let try_one label m =
    let verdict = Ip_core.process router ~now:0L m in
    Format.printf "   %-34s -> %a@." label Ip_core.pp_verdict verdict
  in
  print_endline "5. sending packets:";
  try_one "TCP from 10.66.1.1 (filtered)" (packet ~src:"10.66.1.1" ~proto:Proto.tcp);
  try_one "UDP from 10.66.1.1 (not TCP)" (packet ~src:"10.66.1.1" ~proto:Proto.udp);
  try_one "TCP from 10.99.1.1 (other net)" (packet ~src:"10.99.1.1" ~proto:Proto.tcp);

  (* 6. The first packet of each flow classified against the filter
        tables; later packets hit the flow cache. *)
  let cached = packet ~src:"10.99.1.1" ~proto:Proto.tcp in
  ignore (Ip_core.process router ~now:1L cached);
  let ft = Rp_classifier.Aiu.flow_table (Router.aiu router) in
  let st = Rp_classifier.Flow_table.stats ft in
  Printf.printf
    "6. flow cache after 4 packets: %d flows live, %d hits / %d misses\n"
    (Rp_classifier.Flow_table.length ft)
    st.Rp_classifier.Flow_table.hits st.Rp_classifier.Flow_table.misses;

  (* 7. Everything above is also reachable through the pmgr command
        language. *)
  print_endline "7. same thing via pmgr:";
  List.iter
    (fun cmd ->
      match Rp_control.Pmgr.exec router cmd with
      | Ok out -> Printf.printf "   pmgr %-48s %s\n" cmd out
      | Error e -> Printf.printf "   pmgr %-48s error: %s\n" cmd e)
    [
      "create firewall policy=accept";
      "bind 2 <10.66.0.0/16, *, TCP, 0, 0, *>";
      "show instances";
    ]
