(* VPN gateway: IP security plugins building a virtual private network
   (one of the paper's motivating applications, section 2).

   Topology:   site A hosts -> [gw-a] ==== untrusted link ==== [gw-b] -> site B

   gw-a protects traffic matching the VPN filter with ESP (RC4 +
   HMAC-MD5-96) at the security-out gate; gw-b verifies, checks the
   anti-replay window and decrypts at the security-in gate.  A "wire
   tap" on the untrusted link shows that the payload is ciphertext in
   transit, and a tampered packet is rejected by the integrity check.

   Run with: dune exec examples/vpn_gateway.exe *)

open Rp_pkt
open Rp_core

let ok = function Ok v -> v | Error e -> failwith e

let hex_preview s n =
  String.concat ""
    (List.init (min n (String.length s)) (fun i ->
         Printf.sprintf "%02x" (Char.code s.[i])))

let payload_of (m : Mbuf.t) =
  match m.Mbuf.raw with
  | Some raw ->
    let off = Ipv4_header.size + Udp_header.size in
    Bytes.sub_string raw off (Bytes.length raw - off)
  | None -> "?"

let () =
  print_endline "== VPN gateway (ESP plugins) ==\n";
  let sim = Rp_sim.Sim.create () in
  let mk name =
    Router.create ~name ~ifaces:[ Iface.create ~id:0 (); Iface.create ~id:1 () ] ()
  in
  let gw_a = mk "gw-a" and gw_b = mk "gw-b" in
  Router.add_route gw_a (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  Router.add_route gw_b (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let na = Rp_sim.Net.add_router sim gw_a in
  let nb = Rp_sim.Net.add_router sim gw_b in
  let site_b = Rp_sim.Sink.create ~name:"site-b" () in
  Rp_sim.Net.connect na ~iface:1 (Rp_sim.Net.To_node (nb, 0)) ~prop_ns:500_000L;
  Rp_sim.Net.connect nb ~iface:1 (Rp_sim.Net.To_sink site_b) ~prop_ns:10_000L;

  (* One SA shared by the two gateways (they share keys by key
     exchange in reality). *)
  Rp_crypto.Ipsec_plugin.add_sa ~name:"site-a-to-b"
    (Rp_crypto.Sa.create ~spi:0x1001l ~transform:Rp_crypto.Sa.Esp
       ~auth_key:"vpn-auth-key-2026" ~enc_key:"vpn-enc-key-2026" ());
  Printf.printf "installed SA spi=0x1001 (ESP: RC4 + HMAC-MD5-96)\n";

  let vpn_filter = "<10.1.0.0/16, 192.168.0.0/16, UDP, *, *, *>" in
  let conf r plugin =
    ok (Rp_control.Pmgr.exec r (Printf.sprintf "modload %s" plugin)) |> ignore;
    ok (Rp_control.Pmgr.exec r (Printf.sprintf "create %s sa=site-a-to-b" plugin)) |> ignore;
    ok (Rp_control.Pmgr.exec r (Printf.sprintf "bind 1 %s" vpn_filter)) |> ignore
  in
  conf gw_a "ipsec-out";
  conf gw_b "ipsec-in";
  Printf.printf "bound %s to ipsec instances on both gateways\n\n" vpn_filter;

  (* A wire tap between the gateways: peek at packets crossing if1 of
     gw-a by sampling after gw-a's processing. *)
  let secret = "Q3 numbers: revenue up 14%, churn down" in
  let send i =
    let m =
      Mbuf.udp_v4 ~src:(Ipaddr.v4 10 1 0 5) ~dst:(Ipaddr.v4 192 168 1 20)
        ~sport:4433 ~dport:4433 ~iface:0 ~payload:secret ()
    in
    m.Mbuf.seq <- i;
    m
  in

  (* Direct look at what leaves gw-a: run one packet through gw-a's
     data path only. *)
  let probe = send 0 in
  (match Ip_core.process gw_a ~now:0L probe with
   | Ip_core.Enqueued _ ->
     Printf.printf "cleartext payload : %S\n" secret;
     Printf.printf "on the wire       : %s... (%d bytes, +%d ESP overhead)\n"
       (hex_preview (payload_of probe) 24)
       probe.Mbuf.len Rp_crypto.Ipsec_plugin.overhead;
     ignore (Iface.dequeue (Router.iface gw_a 1) ~now:0L)
   | v -> Format.printf "unexpected: %a@." Ip_core.pp_verdict v);

  (* Now the full tunnel: 5 packets end to end. *)
  for i = 1 to 5 do
    Rp_sim.Net.inject na (send i) ~at:(Int64.of_int (i * 1_000_000))
  done;
  ignore (Rp_sim.Sim.run sim);
  Printf.printf "\nsite B received %d datagrams\n" (Rp_sim.Sink.total_packets site_b);
  (match Rp_sim.Sink.flows site_b with
   | (_, fs) :: _ ->
     let mean, _ = Rp_sim.Sink.latency fs in
     Printf.printf "decrypted size back to %d bytes each; mean latency %.2f ms\n"
       (fs.Rp_sim.Sink.bytes / fs.Rp_sim.Sink.packets)
       (mean *. 1e3)
   | [] -> ());

  (* Tampering on the untrusted link is detected by gw-b. *)
  let tampered = send 99 in
  (match Ip_core.process gw_a ~now:0L tampered with
   | Ip_core.Enqueued _ ->
     ignore (Iface.dequeue (Router.iface gw_a 1) ~now:0L);
     (match tampered.Mbuf.raw with
      | Some raw ->
        let pos = Ipv4_header.size + Udp_header.size + 5 in
        Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0x80))
      | None -> ());
     tampered.Mbuf.key <- { tampered.Mbuf.key with Flow_key.iface = 0 };
     tampered.Mbuf.fix <- None;
     (match Ip_core.process gw_b ~now:0L tampered with
      | Ip_core.Dropped reason ->
        Printf.printf "\ntampered packet   : dropped by gw-b (%s)\n" reason
      | v -> Format.printf "\ntampered packet   : NOT caught (%a)@." Ip_core.pp_verdict v)
   | v -> Format.printf "unexpected: %a@." Ip_core.pp_verdict v);

  (* And a replayed packet is caught by the SA's replay window. *)
  let replay = send 100 in
  (match Ip_core.process gw_a ~now:0L replay with
   | Ip_core.Enqueued _ ->
     ignore (Iface.dequeue (Router.iface gw_a 1) ~now:0L);
     let copy = Mbuf.synth ~key:{ replay.Mbuf.key with Flow_key.iface = 0 } ~len:replay.Mbuf.len () in
     copy.Mbuf.raw <- Option.map Bytes.copy replay.Mbuf.raw;
     replay.Mbuf.key <- { replay.Mbuf.key with Flow_key.iface = 0 };
     replay.Mbuf.fix <- None;
     ignore (Ip_core.process gw_b ~now:0L replay);
     (match Ip_core.process gw_b ~now:1L copy with
      | Ip_core.Dropped reason ->
        Printf.printf "replayed packet   : dropped by gw-b (%s)\n" reason
      | v -> Format.printf "replayed packet   : NOT caught (%a)@." Ip_core.pp_verdict v)
   | v -> Format.printf "unexpected: %a@." Ip_core.pp_verdict v)
