lib/classifier/aiu.ml: Array Dag Flow_table Mbuf Rp_pkt
