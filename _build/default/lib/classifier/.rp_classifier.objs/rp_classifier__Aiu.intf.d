lib/classifier/aiu.mli: Dag Filter Flow_key Flow_table Mbuf Rp_lpm Rp_pkt
