lib/classifier/dag.ml: Filter Flow_key Hashtbl Int Ipaddr List Option Prefix Rp_lpm Rp_pkt
