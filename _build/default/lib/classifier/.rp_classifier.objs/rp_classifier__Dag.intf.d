lib/classifier/dag.mli: Filter Flow_key Rp_lpm Rp_pkt
