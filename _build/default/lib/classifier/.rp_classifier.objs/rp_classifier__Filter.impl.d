lib/classifier/filter.ml: Flow_key Format Int Ipaddr List Option Prefix Printf Proto Result Rp_pkt Stdlib String
