lib/classifier/filter.mli: Flow_key Format Prefix Rp_pkt
