lib/classifier/flow_table.ml: Array Filter Flow_key Int64 Ipaddr List Mbuf Queue Rp_lpm Rp_pkt
