lib/classifier/flow_table.mli: Filter Flow_key Mbuf Rp_pkt
