lib/classifier/grid_of_tries.ml: Int Ipaddr List Option Prefix Rp_lpm Rp_pkt Stdlib
