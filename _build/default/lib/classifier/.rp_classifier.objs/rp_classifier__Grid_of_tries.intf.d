lib/classifier/grid_of_tries.mli: Ipaddr Prefix Rp_pkt
