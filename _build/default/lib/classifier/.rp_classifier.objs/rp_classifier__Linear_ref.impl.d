lib/classifier/linear_ref.ml: Filter Flow_key List Rp_lpm Rp_pkt
