open Rp_pkt

type port_match =
  | Any_port
  | Port of int
  | Port_range of int * int

type num_match =
  | Any_num
  | Num of int

type t = {
  src : Prefix.t;
  dst : Prefix.t;
  proto : num_match;
  sport : port_match;
  dport : port_match;
  iface : num_match;
  priority : int;
}

let check_port_match = function
  | Any_port -> ()
  | Port p ->
    if p < 0 || p > 65535 then invalid_arg "Filter: port out of range"
  | Port_range (lo, hi) ->
    if lo < 0 || hi > 65535 || lo > hi then
      invalid_arg "Filter: bad port range"

let make ~family ?src ?dst ?proto ?(sport = Any_port) ?(dport = Any_port)
    ?iface ?(priority = 0) () =
  let any = match family with `V4 -> Prefix.any_v4 | `V6 -> Prefix.any_v6 in
  let src = Option.value src ~default:any in
  let dst = Option.value dst ~default:any in
  let want_width = match family with `V4 -> 32 | `V6 -> 128 in
  if Ipaddr.width src.Prefix.addr <> want_width
     || Ipaddr.width dst.Prefix.addr <> want_width
  then invalid_arg "Filter: address family mismatch";
  check_port_match sport;
  check_port_match dport;
  {
    src;
    dst;
    proto = (match proto with None -> Any_num | Some p -> Num p);
    sport;
    dport;
    iface = (match iface with None -> Any_num | Some i -> Num i);
    priority;
  }

let v4 ?src ?dst ?proto ?sport ?dport ?iface ?priority () =
  make ~family:`V4 ?src ?dst ?proto ?sport ?dport ?iface ?priority ()

let v6 ?src ?dst ?proto ?sport ?dport ?iface ?priority () =
  make ~family:`V6 ?src ?dst ?proto ?sport ?dport ?iface ?priority ()

let exact_of_key (k : Flow_key.t) =
  {
    src = Prefix.host k.src;
    dst = Prefix.host k.dst;
    proto = Num k.proto;
    sport = Port k.sport;
    dport = Port k.dport;
    iface = Num k.iface;
    priority = 0;
  }

let is_v4 f = Ipaddr.width f.src.Prefix.addr = 32

let port_match_matches pm p =
  match pm with
  | Any_port -> true
  | Port q -> p = q
  | Port_range (lo, hi) -> lo <= p && p <= hi

let port_match_width = function
  | Any_port -> 65536
  | Port _ -> 1
  | Port_range (lo, hi) -> hi - lo + 1

let num_match_matches nm v =
  match nm with
  | Any_num -> true
  | Num n -> v = n

let matches f (k : Flow_key.t) =
  Ipaddr.width f.src.Prefix.addr = Ipaddr.width k.src
  && Prefix.matches f.src k.src
  && Prefix.matches f.dst k.dst
  && num_match_matches f.proto k.proto
  && port_match_matches f.sport k.sport
  && port_match_matches f.dport k.dport
  && num_match_matches f.iface k.iface

(* Specificity of a single field as an integer: larger = more
   specific.  Ports use the negated width so narrower ranges win. *)
let num_spec = function Any_num -> 0 | Num _ -> 1
let port_spec pm = -port_match_width pm

let compare_specificity f g =
  let cmp =
    [
      Int.compare f.src.Prefix.len g.src.Prefix.len;
      Int.compare f.dst.Prefix.len g.dst.Prefix.len;
      Int.compare (num_spec f.proto) (num_spec g.proto);
      Int.compare (port_spec f.sport) (port_spec g.sport);
      Int.compare (port_spec f.dport) (port_spec g.dport);
      Int.compare (num_spec f.iface) (num_spec g.iface);
      Int.compare f.priority g.priority;
    ]
  in
  match List.find_opt (fun c -> c <> 0) cmp with
  | Some c -> c
  | None -> Stdlib.compare f g

let compare = Stdlib.compare
let equal f g = compare f g = 0

let hash f =
  let port_h = function
    | Any_port -> 17
    | Port p -> p lxor 0x1000
    | Port_range (lo, hi) -> (lo * 131) lxor hi lxor 0x2000
  in
  let num_h = function Any_num -> 19 | Num n -> n lxor 0x4000 in
  Rp_pkt.Prefix.hash f.src
  lxor (Rp_pkt.Prefix.hash f.dst * 3)
  lxor (num_h f.proto * 5)
  lxor (port_h f.sport * 7)
  lxor (port_h f.dport * 11)
  lxor (num_h f.iface * 13)
  lxor (f.priority * 31)

let port_match_to_string = function
  | Any_port -> "*"
  | Port p -> string_of_int p
  | Port_range (lo, hi) -> Printf.sprintf "%d-%d" lo hi

let num_to_string to_name = function
  | Any_num -> "*"
  | Num n -> to_name n

let prefix_to_string p =
  if Prefix.is_wildcard p then "*" else Prefix.to_string p

let to_string f =
  Printf.sprintf "<%s, %s, %s, %s, %s, %s>%s"
    (prefix_to_string f.src) (prefix_to_string f.dst)
    (num_to_string Proto.name f.proto)
    (port_match_to_string f.sport)
    (port_match_to_string f.dport)
    (num_to_string (Printf.sprintf "if%d") f.iface)
    (if f.priority = 0 then "" else Printf.sprintf " prio=%d" f.priority)

let pp ppf f = Format.pp_print_string ppf (to_string f)

(* --- parsing ------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

(* "129.*.*.*" -> 129.0.0.0/8; plain addresses and CIDR also accepted. *)
let parse_addr_field ~family s =
  let s = String.trim s in
  if s = "*" then
    Ok (match family with `V4 -> Prefix.any_v4 | `V6 -> Prefix.any_v6)
  else if String.contains s '*' then begin
    match String.split_on_char '.' s with
    | octets when List.length octets = 4 ->
      let rec count_concrete acc = function
        | [] -> Ok acc
        | "*" :: rest ->
          if List.for_all (fun o -> o = "*") rest then Ok acc
          else Error "wildcard octets must be trailing"
        | o :: rest ->
          (match int_of_string_opt o with
           | Some v when v >= 0 && v <= 255 -> count_concrete (acc @ [ v ]) rest
           | Some _ | None -> Error ("bad octet " ^ o))
      in
      let* concrete = count_concrete [] octets in
      let len = 8 * List.length concrete in
      let padded = concrete @ List.init (4 - List.length concrete) (fun _ -> 0) in
      (match padded with
       | [ a; b; c; d ] -> Ok (Prefix.make (Ipaddr.v4 a b c d) len)
       | _ -> Error "bad address")
    | _ -> Error ("bad address " ^ s)
  end
  else
    match Prefix.of_string_opt s with
    | Some p -> Ok p
    | None -> Error ("bad address " ^ s)

let parse_proto_field s =
  let s = String.trim s in
  if s = "*" then Ok None
  else
    match String.uppercase_ascii s with
    | "TCP" -> Ok (Some Proto.tcp)
    | "UDP" -> Ok (Some Proto.udp)
    | "ICMP" -> Ok (Some Proto.icmp)
    | "ESP" -> Ok (Some Proto.esp)
    | "AH" -> Ok (Some Proto.ah)
    | "SSP" -> Ok (Some Proto.ssp)
    | _ ->
      (match int_of_string_opt s with
       | Some v when v >= 0 && v <= 255 -> Ok (Some v)
       | Some _ | None -> Error ("bad protocol " ^ s))

let parse_port_field s =
  let s = String.trim s in
  if s = "*" then Ok Any_port
  else
    match String.index_opt s '-' with
    | Some i ->
      let lo = String.sub s 0 i and hi = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt lo, int_of_string_opt hi with
       | Some lo, Some hi when 0 <= lo && lo <= hi && hi <= 65535 ->
         Ok (Port_range (lo, hi))
       | _, _ -> Error ("bad port range " ^ s))
    | None ->
      (match int_of_string_opt s with
       | Some p when p >= 0 && p <= 65535 -> Ok (Port p)
       | Some _ | None -> Error ("bad port " ^ s))

let parse_iface_field s =
  let s = String.trim s in
  if s = "*" then Ok None
  else
    let s =
      if String.length s > 2 && String.sub s 0 2 = "if" then
        String.sub s 2 (String.length s - 2)
      else s
    in
    match int_of_string_opt s with
    | Some i when i >= 0 -> Ok (Some i)
    | Some _ | None -> Error ("bad interface " ^ s)

let of_string input =
  let s = String.trim input in
  (* Optional trailing "prio=N". *)
  let s, priority =
    match String.index_opt s '>' with
    | Some i when i < String.length s - 1 ->
      let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      let body = String.sub s 0 (i + 1) in
      (match String.split_on_char '=' rest with
       | [ "prio"; n ] ->
         (match int_of_string_opt n with
          | Some p -> body, p
          | None -> body, 0)
       | _ -> body, 0)
    | Some _ | None -> s, 0
  in
  let s = String.trim s in
  let* s =
    let n = String.length s in
    if n >= 2 && s.[0] = '<' && s.[n - 1] = '>' then Ok (String.sub s 1 (n - 2))
    else Error "filter must be <src, dst, proto, sport, dport, iface>"
  in
  match String.split_on_char ',' s with
  | [ src_s; dst_s; proto_s; sport_s; dport_s; iface_s ] ->
    let family =
      if String.contains src_s ':' || String.contains dst_s ':' then `V6
      else `V4
    in
    let* src = parse_addr_field ~family src_s in
    let* dst = parse_addr_field ~family dst_s in
    let* proto = parse_proto_field proto_s in
    let* sport = parse_port_field sport_s in
    let* dport = parse_port_field dport_s in
    let* iface = parse_iface_field iface_s in
    (try Ok (make ~family ~src ~dst ?proto ~sport ~dport ?iface ~priority ())
     with Invalid_argument msg -> Error msg)
  | _ -> Error "filter must have six comma-separated fields"
