(** Filter specifications — the six-tuple patterns that select sets of
    flows (paper, section 3):

    [<source address, destination address, protocol, source port,
    destination port, incoming interface>]

    Address fields are prefixes (partial wildcards); ports are exact,
    ranges, or wildcard; protocol and interface are exact or wildcard. *)

open Rp_pkt

type port_match =
  | Any_port
  | Port of int
  | Port_range of int * int  (** inclusive bounds *)

type num_match =
  | Any_num
  | Num of int

type t = private {
  src : Prefix.t;
  dst : Prefix.t;
  proto : num_match;
  sport : port_match;
  dport : port_match;
  iface : num_match;
  priority : int;
      (** explicit tie-break between otherwise equally specific
          (ambiguous) filters; higher wins *)
}

(** [v4 ()] / [v6 ()] build filters with every field wildcarded except
    those given.  @raise Invalid_argument if [src]/[dst] families don't
    match the constructor, or a port/range is out of [0, 65535]. *)
val v4 :
  ?src:Prefix.t -> ?dst:Prefix.t -> ?proto:int -> ?sport:port_match ->
  ?dport:port_match -> ?iface:int -> ?priority:int -> unit -> t

val v6 :
  ?src:Prefix.t -> ?dst:Prefix.t -> ?proto:int -> ?sport:port_match ->
  ?dport:port_match -> ?iface:int -> ?priority:int -> unit -> t

(** [exact_of_key k] is the fully specified filter matching exactly the
    flow [k] (used to install per-application-flow filters). *)
val exact_of_key : Flow_key.t -> t

val is_v4 : t -> bool

(** [matches f k] — does flow [k] match filter [f]?  Keys of the other
    address family never match. *)
val matches : t -> Flow_key.t -> bool

(** Specificity order used to resolve which of several matching filters
    wins: lexicographic over the six fields in DAG level order (source
    prefix length, destination prefix length, protocol, source port
    narrowness, destination port narrowness, interface), with
    [priority] as the final tie-break.  [compare_specificity f g > 0]
    means [f] is more specific (wins).  This is a total preorder; ties
    are broken structurally so sorting is deterministic. *)
val compare_specificity : t -> t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Textual form, paper style:
    ["<129.0.0.0/8, 192.94.233.10, TCP, *, *, *>"].
    [of_string] also accepts dotted-star addresses like ["129.*.*.*"],
    protocol names or numbers, port ranges ["1024-2048"], and an
    optional trailing ["prio=N"]. *)
val to_string : t -> string

val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit

(** Port-match helpers shared with the DAG's range machinery. *)

val port_match_matches : port_match -> int -> bool
val port_match_width : port_match -> int
val num_match_matches : num_match -> int -> bool
