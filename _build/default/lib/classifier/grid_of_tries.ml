open Rp_pkt

(* Destination-trie node.  [string] is implicit (the path); [filter]
   is the filter stored exactly here (source = owning trie's source
   prefix, destination = this path); [stored] and [jump] are
   precomputed by [rebuild]. *)
type 'a snode = {
  mutable s_zero : 'a snode option;
  mutable s_one : 'a snode option;
  mutable filter : (Prefix.t * Prefix.t * 'a) option;
  mutable stored : (Prefix.t * Prefix.t * 'a) option;
  mutable jump_zero : 'a snode option;
  mutable jump_one : 'a snode option;
}

(* Source-trie node. *)
type 'a dnode = {
  mutable d_zero : 'a dnode option;
  mutable d_one : 'a dnode option;
  mutable dtrie : 'a snode option;  (** destination trie rooted here *)
}

type 'a t = {
  mutable v4_root : 'a dnode option;
  mutable v6_root : 'a dnode option;
  (* Source of truth, for rebuilds and removal. *)
  mutable entries : (Prefix.t * Prefix.t * 'a) list;
  mutable dirty : bool;
  mutable nodes : int;
}

let create () =
  { v4_root = None; v6_root = None; entries = []; dirty = true; nodes = 0 }

let same_pair (s, d) (s', d') = Prefix.equal s s' && Prefix.equal d d'

let insert t ~src ~dst v =
  if Ipaddr.width src.Prefix.addr <> Ipaddr.width dst.Prefix.addr then
    invalid_arg "Grid_of_tries.insert: mixed families";
  t.entries <-
    (src, dst, v)
    :: List.filter (fun (s, d, _) -> not (same_pair (s, d) (src, dst))) t.entries;
  t.dirty <- true

let remove t ~src ~dst =
  t.entries <-
    List.filter (fun (s, d, _) -> not (same_pair (s, d) (src, dst))) t.entries;
  t.dirty <- true

let length t = List.length t.entries

(* Specificity: (|S|, |D|) lexicographic, then structural for
   determinism — consistent with Filter.compare_specificity on
   two-dimensional filters. *)
let better (s, d, _) (s', d', _) =
  let c = Int.compare s.Prefix.len s'.Prefix.len in
  if c <> 0 then c > 0
  else
    let c = Int.compare d.Prefix.len d'.Prefix.len in
    if c <> 0 then c > 0 else Stdlib.compare (s, d) (s', d') > 0

let best a b =
  match a, b with
  | None, x | x, None -> x
  | Some x, Some y -> if better x y then Some x else Some y

(* --- construction ----------------------------------------------------- *)

let new_snode t =
  t.nodes <- t.nodes + 1;
  { s_zero = None; s_one = None; filter = None; stored = None;
    jump_zero = None; jump_one = None }

let new_dnode t =
  t.nodes <- t.nodes + 1;
  { d_zero = None; d_one = None; dtrie = None }

let schild x bit = if bit then x.s_one else x.s_zero
let dchild u bit = if bit then u.d_one else u.d_zero

(* Walk/create a path for [p] from a node-creating trie. *)
let rec dwalk t u p depth =
  if depth = p.Prefix.len then u
  else
    let bit = Ipaddr.bit p.Prefix.addr depth in
    let child =
      match dchild u bit with
      | Some c -> c
      | None ->
        let c = new_dnode t in
        if bit then u.d_one <- Some c else u.d_zero <- Some c;
        c
    in
    dwalk t child p (depth + 1)

let rec swalk t x p depth =
  if depth = p.Prefix.len then x
  else
    let bit = Ipaddr.bit p.Prefix.addr depth in
    let child =
      match schild x bit with
      | Some c -> c
      | None ->
        let c = new_snode t in
        if bit then x.s_one <- Some c else x.s_zero <- Some c;
        c
    in
    swalk t child p (depth + 1)

(* The [stored] filters: seed each destination-trie node with the best
   filter along its own path (source exactly this trie's), then merge
   each ancestor source trie into each descendant's, position by
   position — O(paths × W), run once per rebuild. *)
let rec seed_own x inherited =
  let inherited = best inherited x.filter in
  x.stored <- inherited;
  Option.iter (fun c -> seed_own c inherited) x.s_zero;
  Option.iter (fun c -> seed_own c inherited) x.s_one

(* Merge an ancestor trie's stored filters into a descendant's, by
   position.  Where the ancestor trie ends, its best-so-far keeps
   propagating down the descendant (an ancestor's short-destination
   filter covers every longer destination under it). *)
let rec merge_stored ~into_x from_x inherited =
  let inherited =
    match from_x with
    | Some f -> best inherited f.stored
    | None -> inherited
  in
  into_x.stored <- best into_x.stored inherited;
  let follow sel =
    match sel into_x with
    | Some i -> merge_stored ~into_x:i (Option.bind from_x sel) inherited
    | None -> ()
  in
  follow (fun x -> x.s_zero);
  follow (fun x -> x.s_one)

(* Switch pointers: for a missing child [bit] at position [x] (string
   s) in this trie, jump to the node with string s·bit in the nearest
   ancestor trie that has it.  [shadows] are the same-position nodes
   in ancestor source tries, nearest first. *)
let rec wire x shadows =
  let deepest sel =
    List.find_map (fun sh -> sel sh) shadows
  in
  (match x.s_zero with
   | Some c -> wire c (List.filter_map (fun sh -> sh.s_zero) shadows)
   | None -> x.jump_zero <- deepest (fun sh -> sh.s_zero));
  (match x.s_one with
   | Some c -> wire c (List.filter_map (fun sh -> sh.s_one) shadows)
   | None -> x.jump_one <- deepest (fun sh -> sh.s_one))

let rebuild t =
  t.nodes <- 0;
  let build entries =
    if entries = [] then None
    else begin
      let root = new_dnode t in
      List.iter
        (fun ((src, dst, _) as entry) ->
          let u = dwalk t root src 0 in
          let strie =
            match u.dtrie with
            | Some s -> s
            | None ->
              let s = new_snode t in
              u.dtrie <- Some s;
              s
          in
          let x = swalk t strie dst 0 in
          x.filter <- best x.filter (Some entry))
        entries;
      (* Precompute stored filters and switch pointers, walking the
         source trie with the list of ancestor destination tries. *)
      let rec walk u ancestors =
        (match u.dtrie with
         | Some strie ->
           seed_own strie None;
           (* Every ancestor must be merged directly: ancestor tries
              do not contain each other's branches, so transitivity
              does not hold position-wise. *)
           List.iter
             (fun anc -> merge_stored ~into_x:strie (Some anc) None)
             ancestors;
           wire strie ancestors
         | None -> ());
        let ancestors' =
          match u.dtrie with Some s -> s :: ancestors | None -> ancestors
        in
        Option.iter (fun c -> walk c ancestors') u.d_zero;
        Option.iter (fun c -> walk c ancestors') u.d_one
      in
      walk root [];
      Some root
    end
  in
  let v4, v6 =
    List.partition (fun (s, _, _) -> Ipaddr.width s.Prefix.addr = 32) t.entries
  in
  t.v4_root <- build v4;
  t.v6_root <- build v6;
  t.dirty <- false

(* --- lookup ------------------------------------------------------------ *)

let lookup t ~src ~dst =
  if t.dirty then rebuild t;
  let root = if Ipaddr.width src = 32 then t.v4_root else t.v6_root in
  match root with
  | None -> None
  | Some root ->
    (* Deepest destination trie on the source path. *)
    let rec src_walk u depth acc =
      Rp_lpm.Access.charge 1;
      let acc = match u.dtrie with Some s -> Some s | None -> acc in
      if depth >= Ipaddr.width src then acc
      else
        match dchild u (Ipaddr.bit src depth) with
        | Some c -> src_walk c (depth + 1) acc
        | None -> acc
    in
    (match src_walk root 0 None with
     | None -> None
     | Some strie ->
       let rec dst_walk x depth best_found =
         Rp_lpm.Access.charge 1;
         let best_found = best best_found x.stored in
         if depth >= Ipaddr.width dst then best_found
         else
           let bit = Ipaddr.bit dst depth in
           match schild x bit with
           | Some c -> dst_walk c (depth + 1) best_found
           | None ->
             (match (if bit then x.jump_one else x.jump_zero) with
              | Some y -> dst_walk y (depth + 1) best_found
              | None -> best_found)
       in
       dst_walk strie 0 None)

let node_count t =
  if t.dirty then rebuild t;
  t.nodes
