(** Grid-of-tries — the two-dimensional classifier the paper points to
    as the memory-efficient alternative to set-pruning (section 5.1.2:
    "more advanced techniques such as grid-of-tries [26] can provide
    better memory utilization without sacrificing performance, but
    work only in the special case of two-dimensional filters";
    [26] is Srinivasan, Varghese, Suri & Waldvogel, SIGCOMM '98).

    Filters here are (source prefix, destination prefix) pairs: a trie
    over source prefixes whose nodes carry destination tries.  Unlike
    the set-pruning DAG, filters are stored {e exactly once}; instead
    of replication, each destination-trie node precomputes

    - its {e stored filter}: the best filter whose source subsumes
      this trie's source prefix and whose destination is a prefix of
      this node's string, and
    - {e switch pointers}: where a destination walk would fail, it
      jumps to the same position in the destination trie of the
      nearest shorter source prefix,

    so a lookup walks O(W) trie nodes total with no backtracking, and
    memory stays linear in the number of filters.

    Best-match semantics agree with {!Filter.compare_specificity}
    restricted to the two address fields.  Precomputation is batched:
    mutations mark the structure dirty and it rebuilds on the next
    lookup (like the BSPL engine). *)

open Rp_pkt

type 'a t

val create : unit -> 'a t

(** [insert t ~src ~dst v] — both prefixes must be the same family. *)
val insert : 'a t -> src:Prefix.t -> dst:Prefix.t -> 'a -> unit

val remove : 'a t -> src:Prefix.t -> dst:Prefix.t -> unit

(** [lookup t ~src ~dst] is the best matching (most specific by
    (|S|, |D|) lexicographic order) filter's value, with its
    prefixes. *)
val lookup :
  'a t -> src:Ipaddr.t -> dst:Ipaddr.t -> (Prefix.t * Prefix.t * 'a) option

val length : 'a t -> int

(** Trie nodes allocated (after the next rebuild), for the memory
    comparison against the set-pruning DAG. *)
val node_count : 'a t -> int
