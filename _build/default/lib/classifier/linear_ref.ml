(** Reference classifier: a flat list of filters scanned in full, the
    most specific match winning.  O(n) per packet — this is both the
    oracle for the DAG's property tests and the "typical filter
    algorithm" baseline of section 5.1.2. *)

open Rp_pkt

type 'a t = {
  mutable entries : (Filter.t * 'a) list;
}

let create () = { entries = [] }

let insert t f v =
  t.entries <- (f, v) :: List.filter (fun (g, _) -> not (Filter.equal f g)) t.entries

let remove t f =
  t.entries <- List.filter (fun (g, _) -> not (Filter.equal f g)) t.entries

let classify t (k : Flow_key.t) =
  List.fold_left
    (fun acc (f, v) ->
      Rp_lpm.Access.charge 1;
      if Filter.matches f k then
        match acc with
        | Some (best, _) when Filter.compare_specificity best f >= 0 -> acc
        | Some _ | None -> Some (f, v)
      else acc)
    None t.entries

let length t = List.length t.entries
let iter f t = List.iter (fun (flt, v) -> f flt v) t.entries
