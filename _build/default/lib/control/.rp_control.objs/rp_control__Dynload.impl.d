lib/control/dynload.ml: Dynlink List Printf Rp_core
