lib/control/dynload.mli: Rp_core
