lib/control/plugin_lib.ml: Empty_plugin Firewall_plugin Gate List Opt_plugin Plugin Route_plugin Rp_core Rp_crypto Rp_sched Stats_plugin
