lib/control/pmgr.mli: Router Rp_core
