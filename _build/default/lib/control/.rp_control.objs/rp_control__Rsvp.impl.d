lib/control/rsvp.ml: Bytes Char Filter Flow_key Hashtbl Iface Int64 Ip_core Ipaddr List Mbuf Pcu Plugin Prefix Proto Route_table Router Rp_classifier Rp_core Rp_pkt Rp_sched
