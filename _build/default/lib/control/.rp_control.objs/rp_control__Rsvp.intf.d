lib/control/rsvp.mli: Bytes Flow_key Ipaddr Mbuf Router Rp_core Rp_pkt
