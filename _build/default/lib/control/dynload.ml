let pending : (module Rp_core.Plugin.PLUGIN) list ref = ref []

let announce p = pending := p :: !pending

let available () = Dynlink.is_native || not Dynlink.is_native

let modload_file pcu path =
  pending := [];
  match Dynlink.loadfile path with
  | exception Dynlink.Error e -> Error (Dynlink.error_message e)
  | exception Sys_error msg -> Error msg
  | () ->
    let announced = List.rev !pending in
    pending := [];
    if announced = [] then
      Error (Printf.sprintf "%s loaded but announced no plugins" path)
    else begin
      let rec register acc = function
        | [] -> Ok (List.rev acc)
        | (module P : Rp_core.Plugin.PLUGIN) :: rest ->
          (match Rp_core.Pcu.modload pcu (module P) with
           | Ok () -> register (P.name :: acc) rest
           | Error e -> Error e)
      in
      register [] announced
    end
