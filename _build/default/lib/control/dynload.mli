(** Dynamic loading of plugin object files — the literal analogue of
    the paper's [modload drr.o] (NetBSD loadable kernel modules).

    A dynamically loadable plugin is an OCaml library compiled to a
    [.cmxs] that, as its initialization side effect, calls {!announce}
    with its plugin module.  {!modload_file} loads the object file
    with [Dynlink], collects the announced plugins, and registers them
    with the PCU — after which they are indistinguishable from
    built-in plugins, exactly as the paper requires ("Once a plugin is
    loaded, it is no different from any other kernel code").

    See [plugins/hello_dyn] for a complete loadable plugin. *)

(** Called by the plugin's own top-level code when its object file is
    loaded. *)
val announce : (module Rp_core.Plugin.PLUGIN) -> unit

(** [modload_file pcu path] dynamically loads [path] (a [.cmxs] in
    native code, [.cma]/[.cmo] in bytecode) and registers every plugin
    it announces.  Returns the names registered. *)
val modload_file : Rp_core.Pcu.t -> string -> (string list, string) result

(** Whether the running program supports dynamic loading (false in
    statically-linked contexts). *)
val available : unit -> bool
