open Rp_pkt
open Rp_core
open Rp_classifier

type msg =
  | Path of {
      flow : Flow_key.t;
      phop : Ipaddr.t;
    }
  | Resv of {
      flow : Flow_key.t;
      rate_bps : int;
    }

(* Encoding: tag(1) family(1) flow(src dst proto sport dport)
   extra(addr or rate). *)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let u16 buf off =
  Char.code (Bytes.get buf off) * 256 + Char.code (Bytes.get buf (off + 1))

let encode m =
  let tag, flow, extra_len =
    match m with
    | Path { flow; phop } -> (3, flow, Ipaddr.width phop / 8)
    | Resv { flow; _ } -> (4, flow, 8)
  in
  let alen = Ipaddr.width flow.Flow_key.src / 8 in
  let buf = Bytes.create (2 + (2 * alen) + 5 + extra_len) in
  Bytes.set buf 0 (Char.chr tag);
  Bytes.set buf 1 (Char.chr (if alen = 4 then 4 else 6));
  Ipaddr.write flow.Flow_key.src buf 2;
  Ipaddr.write flow.Flow_key.dst buf (2 + alen);
  let off = 2 + (2 * alen) in
  Bytes.set buf off (Char.chr (flow.Flow_key.proto land 0xFF));
  set_u16 buf (off + 1) flow.Flow_key.sport;
  set_u16 buf (off + 3) flow.Flow_key.dport;
  (match m with
   | Path { phop; _ } -> Ipaddr.write phop buf (off + 5)
   | Resv { rate_bps; _ } -> Bytes.set_int64_be buf (off + 5) (Int64.of_int rate_bps));
  buf

let decode buf =
  if Bytes.length buf < 2 then Error "rsvp: truncated message"
  else
    let tag = Char.code (Bytes.get buf 0) in
    let family = Char.code (Bytes.get buf 1) in
    match (match family with 4 -> Some 4 | 6 -> Some 16 | _ -> None) with
    | None -> Error "rsvp: bad address family"
    | Some alen ->
      let base = 2 + (2 * alen) + 5 in
      let extra = match tag with 3 -> alen | 4 -> 8 | _ -> 0 in
      if Bytes.length buf < base + extra then Error "rsvp: truncated message"
      else begin
        let read = if alen = 4 then Ipaddr.read_v4 else Ipaddr.read_v6 in
        let off = 2 + (2 * alen) in
        let flow =
          Flow_key.make ~src:(read buf 2) ~dst:(read buf (2 + alen))
            ~proto:(Char.code (Bytes.get buf off))
            ~sport:(u16 buf (off + 1))
            ~dport:(u16 buf (off + 3))
            ~iface:0
        in
        match tag with
        | 3 -> Ok (Path { flow; phop = read buf (off + 5) })
        | 4 ->
          Ok (Resv { flow; rate_bps = Int64.to_int (Bytes.get_int64_be buf (off + 5)) })
        | _ -> Error "rsvp: unknown message type"
      end

module FK = Hashtbl.Make (struct
  type t = Flow_key.t

  let equal = Flow_key.equal
  let hash = Flow_key.hash
end)

type path_entry = {
  phop : Ipaddr.t;
  out_iface : int;
  mutable path_refreshed_ns : int64;
}

type resv_entry = {
  rate : int;
  instance : int;
  mutable resv_refreshed_ns : int64;
}

type t = {
  rtr : Router.t;
  my_addr : Ipaddr.t;
  paths : path_entry FK.t;
  resvs : resv_entry FK.t;
  mutable failed : int;
}

let normalize (flow : Flow_key.t) = { flow with Flow_key.iface = 0 }

let filter_of_flow (flow : Flow_key.t) =
  let mk = if Ipaddr.is_v4 flow.Flow_key.src then Filter.v4 else Filter.v6 in
  mk
    ~src:(Prefix.host flow.Flow_key.src)
    ~dst:(Prefix.host flow.Flow_key.dst)
    ~proto:flow.Flow_key.proto
    ~sport:(Filter.Port flow.Flow_key.sport)
    ~dport:(Filter.Port flow.Flow_key.dport)
    ()

let drr_on_iface t out_iface =
  match (Router.iface t.rtr out_iface).Iface.qdisc with
  | Some inst when inst.Plugin.plugin_name = "drr" -> Some inst
  | Some _ | None -> None

let handle_path t ~now flow phop (m : Mbuf.t) =
  let flow = normalize flow in
  (* The downstream interface: where the PATH (addressed like the data
     flow) will leave this router. *)
  match Route_table.lookup t.rtr.Router.routes flow.Flow_key.dst with
  | None -> t.failed <- t.failed + 1
  | Some r ->
    (match FK.find_opt t.paths flow with
     | Some entry ->
       entry.path_refreshed_ns <- now
     | None ->
       FK.replace t.paths flow
         { phop; out_iface = r.Route_table.iface; path_refreshed_ns = now });
    (* Rewrite the previous hop to this router before forwarding. *)
    m.Mbuf.raw <- Some (encode (Path { flow; phop = t.my_addr }))

let install_resv t ~now flow rate =
  match FK.find_opt t.paths flow with
  | None ->
    t.failed <- t.failed + 1;
    None
  | Some path ->
    (match FK.find_opt t.resvs flow with
     | Some r ->
       r.resv_refreshed_ns <- now;
       Some path.phop
     | None ->
       (match drr_on_iface t path.out_iface with
        | None ->
          t.failed <- t.failed + 1;
          None
        | Some inst ->
          let id = inst.Plugin.instance_id in
          (match Rp_sched.Drr_plugin.reserve ~instance_id:id ~key:flow ~rate_bps:rate with
           | Error _ ->
             t.failed <- t.failed + 1;
             None
           | Ok () ->
             (match
                Pcu.register_instance t.rtr.Router.pcu ~instance:id
                  (filter_of_flow flow)
              with
              | Error _ ->
                t.failed <- t.failed + 1;
                None
              | Ok () ->
                FK.replace t.resvs flow
                  { rate; instance = id; resv_refreshed_ns = now };
                Some path.phop))))

let remove_resv t flow (entry : resv_entry) =
  ignore (Rp_sched.Drr_plugin.unreserve ~instance_id:entry.instance ~key:flow);
  ignore
    (Pcu.deregister_instance t.rtr.Router.pcu ~instance:entry.instance
       (filter_of_flow flow));
  FK.remove t.resvs flow

(* Relay the RESV toward our previous hop by re-injecting an upstream
   copy into our own data path. *)
let relay_resv t ~now flow rate phop =
  if not (Ipaddr.equal phop flow.Flow_key.src) && not (Router.is_local t.rtr phop)
  then begin
    let key =
      Flow_key.make ~src:t.my_addr ~dst:phop ~proto:Proto.rsvp ~sport:0
        ~dport:0 ~iface:0
    in
    let m = Mbuf.synth ~key ~len:64 () in
    m.Mbuf.raw <- Some (encode (Resv { flow; rate_bps = rate }));
    ignore (Ip_core.process t.rtr ~now m)
  end

let attach rtr =
  let my_addr =
    match rtr.Router.local_addrs with
    | a :: _ -> a
    | [] -> invalid_arg "Rsvp.attach: router needs a local address"
  in
  let t = { rtr; my_addr; paths = FK.create 16; resvs = FK.create 16; failed = 0 } in
  Router.set_punt rtr ~proto:Proto.rsvp (fun ~now (m : Mbuf.t) ->
      match m.Mbuf.raw with
      | None ->
        t.failed <- t.failed + 1;
        Router.Punt_consume
      | Some raw ->
        (match decode raw with
         | Ok (Path { flow; phop }) ->
           (* PATH follows the data path downstream. *)
           handle_path t ~now flow phop m;
           Router.Punt_forward
         | Ok (Resv { flow; rate_bps }) ->
           if not (Router.is_local t.rtr m.Mbuf.key.Flow_key.dst) then
             (* Hop-by-hop addressed to another router: pass through. *)
             Router.Punt_forward
           else begin
             let flow = normalize flow in
             (match install_resv t ~now flow rate_bps with
              | Some phop -> relay_resv t ~now flow rate_bps phop
              | None -> ());
             (* RESV terminates here; the relay above continues it. *)
             Router.Punt_consume
           end
         | Error _ ->
           t.failed <- t.failed + 1;
           Router.Punt_consume));
  t

let path_state t =
  FK.fold (fun flow e acc -> (flow, e.phop, e.out_iface) :: acc) t.paths []

let reservations t =
  FK.fold (fun flow e acc -> (flow, e.rate, e.instance) :: acc) t.resvs []

let failures t = t.failed

let tick t ~now ~lifetime_ns =
  let stale_paths = ref [] and stale_resvs = ref [] in
  FK.iter
    (fun flow e ->
      if Int64.sub now e.path_refreshed_ns > lifetime_ns then
        stale_paths := flow :: !stale_paths)
    t.paths;
  FK.iter
    (fun flow e ->
      if Int64.sub now e.resv_refreshed_ns > lifetime_ns then
        stale_resvs := (flow, e) :: !stale_resvs)
    t.resvs;
  List.iter (fun (flow, e) -> remove_resv t flow e) !stale_resvs;
  List.iter (FK.remove t.paths) !stale_paths;
  (List.length !stale_paths, List.length !stale_resvs)

let path_packet ~sender ~flow =
  let flow = normalize flow in
  let key =
    Flow_key.make ~src:sender ~dst:flow.Flow_key.dst ~proto:Proto.rsvp
      ~sport:0 ~dport:0 ~iface:flow.Flow_key.iface
  in
  let m = Mbuf.synth ~key ~len:64 () in
  m.Mbuf.raw <- Some (encode (Path { flow; phop = sender }));
  m

let resv_packet ~receiver ~to_hop ~flow ~rate_bps =
  let flow = normalize flow in
  let key =
    Flow_key.make ~src:receiver ~dst:to_hop ~proto:Proto.rsvp ~sport:0
      ~dport:0 ~iface:0
  in
  let m = Mbuf.synth ~key ~len:64 () in
  m.Mbuf.raw <- Some (encode (Resv { flow; rate_bps }));
  m
