(** A simplified RSVP daemon (RFC 2205's shape) — the receiver-oriented
    counterpart of {!Ssp}.  The paper's group "are currently in the
    process of porting an RSVP implementation" (section 3.1); this
    module supplies the protocol machinery that port needs from the
    framework: per-hop soft state, reverse-path reservation setup, and
    the same PCU/AIU installation calls SSP uses.

    Operation:

    - the {e sender} emits PATH messages toward the receiver; each
      RSVP router on the way records {e path state} — the flow, the
      {e previous hop} (the upstream router's address, carried in the
      message and rewritten at every hop), and the downstream
      interface — and forwards the message;
    - the {e receiver} answers with a RESV carrying the rate; RESV
      travels hop by hop {e upstream} along the recorded previous
      hops; every router installs the reservation (a weighted-DRR
      reservation plus an exact-flow filter binding on its
      {e downstream} interface) and relays the RESV to its own
      previous hop;
    - both kinds of state are {e soft}: unless refreshed by periodic
      PATH/RESV, {!tick} expires them and removes the reservations.

    Each RSVP router must have a local address ({!Rp_core.Router.add_local_addr})
    — that address is the previous hop it advertises, and where
    upstream RESV messages are sent. *)

open Rp_pkt
open Rp_core

type msg =
  | Path of {
      flow : Flow_key.t;  (** sender template; iface ignored *)
      phop : Ipaddr.t;  (** previous RSVP hop (or the sender) *)
    }
  | Resv of {
      flow : Flow_key.t;
      rate_bps : int;
    }

val encode : msg -> Bytes.t
val decode : Bytes.t -> (msg, string) result

type t

(** [attach router] registers the daemon for protocol
    {!Rp_pkt.Proto.rsvp}.  @raise Invalid_argument if the router has
    no local address. *)
val attach : Router.t -> t

(** Path state entries: (flow, previous hop, downstream iface). *)
val path_state : t -> (Flow_key.t * Ipaddr.t * int) list

(** Installed reservations: (flow, rate, DRR instance id). *)
val reservations : t -> (Flow_key.t * int * int) list

val failures : t -> int

(** [tick t ~now ~lifetime_ns] expires path state and reservations not
    refreshed within [lifetime_ns]; returns (paths, resvs) expired. *)
val tick : t -> now:int64 -> lifetime_ns:int64 -> int * int

(** Endpoint helpers (what sender/receiver hosts put on the wire). *)

val path_packet : sender:Ipaddr.t -> flow:Flow_key.t -> Mbuf.t

(** [resv_packet ~receiver ~to_hop ~flow ~rate_bps] — the receiver's
    RESV, addressed to the last-hop router [to_hop] (learned from the
    PATH's phop). *)
val resv_packet :
  receiver:Ipaddr.t -> to_hop:Ipaddr.t -> flow:Flow_key.t -> rate_bps:int ->
  Mbuf.t
