open Rp_pkt
open Rp_core
open Rp_classifier

type msg =
  | Setup of {
      flow : Flow_key.t;
      rate_bps : int;
    }
  | Teardown of { flow : Flow_key.t }

(* Encoding: tag(1) family(1) src dst proto(1) sport(2) dport(2)
   rate(8).  Addresses are 4 or 16 bytes by family. *)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let u16 buf off =
  Char.code (Bytes.get buf off) * 256 + Char.code (Bytes.get buf (off + 1))

let encode m =
  let tag, flow, rate =
    match m with
    | Setup { flow; rate_bps } -> (1, flow, rate_bps)
    | Teardown { flow } -> (2, flow, 0)
  in
  let alen = Ipaddr.width flow.Flow_key.src / 8 in
  let buf = Bytes.create (2 + (2 * alen) + 5 + 8) in
  Bytes.set buf 0 (Char.chr tag);
  Bytes.set buf 1 (Char.chr (if alen = 4 then 4 else 6));
  Ipaddr.write flow.Flow_key.src buf 2;
  Ipaddr.write flow.Flow_key.dst buf (2 + alen);
  let off = 2 + (2 * alen) in
  Bytes.set buf off (Char.chr (flow.Flow_key.proto land 0xFF));
  set_u16 buf (off + 1) flow.Flow_key.sport;
  set_u16 buf (off + 3) flow.Flow_key.dport;
  Bytes.set_int64_be buf (off + 5) (Int64.of_int rate);
  buf

let decode buf =
  if Bytes.length buf < 2 then Error "ssp: truncated message"
  else
    let tag = Char.code (Bytes.get buf 0) in
    let family = Char.code (Bytes.get buf 1) in
    let alen = match family with 4 -> Some 4 | 6 -> Some 16 | _ -> None in
    match alen with
    | None -> Error "ssp: bad address family"
    | Some alen ->
      let need = 2 + (2 * alen) + 5 + 8 in
      if Bytes.length buf < need then Error "ssp: truncated message"
      else begin
        let read = if alen = 4 then Ipaddr.read_v4 else Ipaddr.read_v6 in
        let src = read buf 2 and dst = read buf (2 + alen) in
        let off = 2 + (2 * alen) in
        let flow =
          Flow_key.make ~src ~dst
            ~proto:(Char.code (Bytes.get buf off))
            ~sport:(u16 buf (off + 1))
            ~dport:(u16 buf (off + 3))
            ~iface:0
        in
        let rate = Int64.to_int (Bytes.get_int64_be buf (off + 5)) in
        match tag with
        | 1 -> Ok (Setup { flow; rate_bps = rate })
        | 2 -> Ok (Teardown { flow })
        | _ -> Error "ssp: unknown message type"
      end

module FK = Hashtbl.Make (struct
  type t = Flow_key.t

  let equal = Flow_key.equal
  let hash = Flow_key.hash
end)

type t = {
  rtr : Router.t;
  installed : (int * int) FK.t;  (** flow -> (rate, instance id) *)
  mutable failed : int;
}

(* An exact filter for the flow, with the incoming interface
   wildcarded (the reservation applies wherever the flow enters). *)
let filter_of_flow (flow : Flow_key.t) =
  let family = if Ipaddr.is_v4 flow.Flow_key.src then `V4 else `V6 in
  let mk = match family with `V4 -> Filter.v4 | `V6 -> Filter.v6 in
  mk
    ~src:(Prefix.host flow.Flow_key.src)
    ~dst:(Prefix.host flow.Flow_key.dst)
    ~proto:flow.Flow_key.proto
    ~sport:(Filter.Port flow.Flow_key.sport)
    ~dport:(Filter.Port flow.Flow_key.dport)
    ()

(* The DRR instance scheduling the flow's output interface, if any. *)
let drr_on_route t flow =
  match Route_table.lookup t.rtr.Router.routes flow.Flow_key.dst with
  | None -> None
  | Some r ->
    (match (Router.iface t.rtr r.Route_table.iface).Iface.qdisc with
     | Some inst when inst.Plugin.plugin_name = "drr" -> Some inst
     | Some _ | None -> None)

let normalize (flow : Flow_key.t) = { flow with Flow_key.iface = 0 }

let handle_setup t flow rate_bps =
  let flow = normalize flow in
  match drr_on_route t flow with
  | None -> t.failed <- t.failed + 1
  | Some inst ->
    let id = inst.Plugin.instance_id in
    (match Rp_sched.Drr_plugin.reserve ~instance_id:id ~key:flow ~rate_bps with
     | Error _ -> t.failed <- t.failed + 1
     | Ok () ->
       (match
          Pcu.register_instance t.rtr.Router.pcu ~instance:id (filter_of_flow flow)
        with
        | Ok () -> FK.replace t.installed flow (rate_bps, id)
        | Error _ -> t.failed <- t.failed + 1))

let handle_teardown t flow =
  let flow = normalize flow in
  match FK.find_opt t.installed flow with
  | None -> ()
  | Some (_, id) ->
    ignore (Rp_sched.Drr_plugin.unreserve ~instance_id:id ~key:flow);
    ignore
      (Pcu.deregister_instance t.rtr.Router.pcu ~instance:id (filter_of_flow flow));
    FK.remove t.installed flow

let attach rtr =
  let t = { rtr; installed = FK.create 16; failed = 0 } in
  Router.set_punt rtr ~proto:Proto.ssp (fun ~now:_ (m : Mbuf.t) ->
      (match m.Mbuf.raw with
       | None -> t.failed <- t.failed + 1
       | Some raw ->
         (match decode raw with
          | Ok (Setup { flow; rate_bps }) -> handle_setup t flow rate_bps
          | Ok (Teardown { flow }) -> handle_teardown t flow
          | Error _ -> t.failed <- t.failed + 1));
      (* Setup state travels hop by hop to the receiver. *)
      Router.Punt_forward);
  t

let reservations t =
  FK.fold (fun flow (rate, id) acc -> (flow, rate, id) :: acc) t.installed []

let failures t = t.failed

let control_packet ~src ~(flow : Flow_key.t) msg =
  let raw = encode msg in
  let key =
    Flow_key.make ~src ~dst:flow.Flow_key.dst ~proto:Proto.ssp ~sport:0
      ~dport:0 ~iface:flow.Flow_key.iface
  in
  let m = Mbuf.synth ~key ~len:(40 + Bytes.length raw) () in
  m.Mbuf.raw <- Some raw;
  m

let setup_packet ~src ~flow ~rate_bps =
  control_packet ~src ~flow (Setup { flow; rate_bps })

let teardown_packet ~src ~flow = control_packet ~src ~flow (Teardown { flow })
