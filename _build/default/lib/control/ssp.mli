(** SSP — the State Setup Protocol, the simplified RSVP the paper's
    group built ("We implemented an SSP daemon for our system",
    section 3.1; SSP is Adiseshu & Parulkar's sender-oriented setup
    protocol).

    A sender emits a SETUP message in-band (IP protocol
    {!Rp_pkt.Proto.ssp}) addressed to the flow's destination, so it
    follows the flow's own path.  Every SSP-capable router on the path
    punts the message to its daemon, which installs the reservation —
    an exact-flow filter bound to the DRR instance on the flow's
    output interface, plus a weighted-DRR bandwidth reservation — and
    forwards the message downstream.  TEARDOWN undoes it. *)

open Rp_pkt
open Rp_core

type msg =
  | Setup of {
      flow : Flow_key.t;  (** iface field ignored *)
      rate_bps : int;
    }
  | Teardown of { flow : Flow_key.t }

(** Wire encoding (fixed-size binary; IPv4 and IPv6 flows). *)

val encode : msg -> Bytes.t
val decode : Bytes.t -> (msg, string) result

(** [attach router] registers the daemon as the punt handler for
    protocol {!Rp_pkt.Proto.ssp}.  Returns the daemon handle for
    inspection. *)
type t

val attach : Router.t -> t

(** Reservations currently installed by this daemon:
    (flow, rate, DRR instance id). *)
val reservations : t -> (Flow_key.t * int * int) list

(** Count of messages the daemon could not honour (no route, no DRR
    on the output interface). *)
val failures : t -> int

(** [setup_packet ~src ~flow ~rate_bps] builds the in-band SETUP
    message as an injectable mbuf (from [src], following [flow.dst]).
    [teardown_packet] likewise. *)
val setup_packet : src:Ipaddr.t -> flow:Flow_key.t -> rate_bps:int -> Mbuf.t

val teardown_packet : src:Ipaddr.t -> flow:Flow_key.t -> Mbuf.t
