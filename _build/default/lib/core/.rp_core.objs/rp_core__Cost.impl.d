lib/core/cost.ml:
