lib/core/cost.mli:
