lib/core/empty_plugin.ml: Plugin
