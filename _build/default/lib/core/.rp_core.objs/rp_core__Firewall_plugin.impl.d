lib/core/firewall_plugin.ml: Gate Hashtbl List Plugin Printf
