lib/core/gate.ml: Format List
