lib/core/gate.mli: Format
