lib/core/iface.ml: Format Mbuf Plugin Printf Queue Rp_pkt
