lib/core/iface.mli: Format Mbuf Plugin Queue Rp_classifier Rp_pkt
