lib/core/ip_core.ml: Bytes Cost Flow_key Format Frag Gate Hashtbl Icmp Iface Ipv4_header Ipv6_header List Mbuf Plugin Proto Route_table Router Rp_classifier Rp_lpm Rp_pkt
