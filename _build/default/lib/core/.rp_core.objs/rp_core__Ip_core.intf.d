lib/core/ip_core.mli: Format Gate Mbuf Plugin Router Rp_pkt
