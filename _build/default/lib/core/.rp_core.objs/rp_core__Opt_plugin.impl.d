lib/core/opt_plugin.ml: Gate Hashtbl Ipv6_header List Mbuf Plugin Printf Rp_pkt
