lib/core/pcu.ml: Aiu Array Dag Filter Flow_table Gate Hashtbl List Logs Plugin Printf Rp_classifier
