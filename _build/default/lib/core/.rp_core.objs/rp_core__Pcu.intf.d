lib/core/pcu.mli: Aiu Filter Plugin Rp_classifier Rp_lpm
