lib/core/plugin.ml: Format Gate Mbuf Printf Rp_classifier Rp_pkt
