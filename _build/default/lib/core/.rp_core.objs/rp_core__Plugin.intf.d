lib/core/plugin.mli: Format Gate Mbuf Rp_classifier Rp_pkt
