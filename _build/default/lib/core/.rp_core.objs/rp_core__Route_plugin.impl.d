lib/core/route_plugin.ml: Flow_key Gate Hashtbl Ipaddr List Mbuf Option Plugin Printf Result Rp_pkt
