lib/core/route_table.ml: Format Ipaddr Prefix Rp_lpm Rp_pkt
