lib/core/route_table.mli: Format Ipaddr Prefix Rp_lpm Rp_pkt
