lib/core/router.ml: Array Gate Hashtbl Iface Ipaddr List Mbuf Pcu Printf Route_table Rp_classifier Rp_pkt
