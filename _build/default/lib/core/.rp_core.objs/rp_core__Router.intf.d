lib/core/router.mli: Gate Hashtbl Iface Ipaddr Mbuf Pcu Plugin Prefix Route_table Rp_classifier Rp_lpm Rp_pkt
