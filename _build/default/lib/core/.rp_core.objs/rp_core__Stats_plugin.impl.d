lib/core/stats_plugin.ml: Flow_key Flow_table Gate Hashtbl List Mbuf Plugin Printf Rp_classifier Rp_pkt
