let cpu_mhz = 233.0

let mem_access = 14
let flow_hash = 17
let base_forward = 6460
let gate_invoke = 150
let flow_detect = 45
let monolithic_classifier = 250
let drr_enqueue = 750
let drr_dequeue = 700
let hfsc_enqueue = 1150
let hfsc_dequeue = 1100

let counter = ref 0

let charge n = counter := !counter + n
let charge_mem n = counter := !counter + (n * mem_access)
let reset () = counter := 0
let get () = !counter

let measure f =
  let before = !counter in
  let result = f () in
  (result, !counter - before)

let ns_of_cycles c = float_of_int c *. 1000.0 /. cpu_mhz
let us_of_cycles c = ns_of_cycles c /. 1000.0
