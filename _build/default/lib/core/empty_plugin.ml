(** The "empty plugin" of the paper's Table 3 experiment: a handler
    that does nothing, used to measure the pure framework overhead of
    a gate traversal ("We installed three gates which called empty
    plugins", section 7.3).

    [make ~gate ~name] manufactures one empty plugin module per gate,
    since a plugin's type is fixed by its gate. *)

let make ~gate ~name : (module Plugin.PLUGIN) =
  (module struct
    let name = name
    let gate = gate
    let description = "no-op plugin for framework overhead measurements"

    let create_instance ~instance_id ~code ~config =
      Ok
        (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
           (fun _ctx _m -> Plugin.Continue))

    let message _ _ = Error "empty plugin accepts no messages"
  end)
