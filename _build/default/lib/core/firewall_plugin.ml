(** Firewall plugin (the paper lists "a firewall plugin" among the
    envisioned types; firewalls are one of the motivating applications
    in section 2).

    Policy is expressed entirely through the AIU: bind an [accept]
    instance or a [deny] instance to filters; the most specific filter
    wins, so a broad deny with narrow accepts (or vice versa) works
    exactly like conventional rule tables — but with O(fields) lookup
    instead of a linear rule scan. *)

type totals = {
  mutable accepted : int;
  mutable denied : int;
}

let instance_totals : (int, totals) Hashtbl.t = Hashtbl.create 8

let totals_of ~instance_id = Hashtbl.find_opt instance_totals instance_id

let name = "firewall"
let gate = Gate.Firewall
let description = "per-flow accept/deny policy"

let create_instance ~instance_id ~code ~config =
  match List.assoc_opt "policy" config with
  | Some "accept" ->
    let t = { accepted = 0; denied = 0 } in
    Hashtbl.replace instance_totals instance_id t;
    Ok
      (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
         ~describe:(fun () -> Printf.sprintf "firewall accept: %d pkts" t.accepted)
         (fun _ _ ->
           t.accepted <- t.accepted + 1;
           Plugin.Continue))
  | Some "deny" ->
    let t = { accepted = 0; denied = 0 } in
    Hashtbl.replace instance_totals instance_id t;
    Ok
      (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
         ~describe:(fun () -> Printf.sprintf "firewall deny: %d pkts" t.denied)
         (fun _ _ ->
           t.denied <- t.denied + 1;
           Plugin.Drop "firewall policy"))
  | Some other -> Error (Printf.sprintf "firewall: unknown policy %S" other)
  | None -> Error "firewall: config must set policy=accept|deny"

let message key _payload =
  match key with
  | "plugin-info" -> Ok description
  | _ -> Error (Printf.sprintf "firewall: unknown message %s" key)
