type t =
  | Ip_options
  | Security_in
  | Firewall
  | Routing
  | Congestion
  | Security_out
  | Scheduling
  | Stats

let all =
  [ Ip_options; Security_in; Firewall; Routing; Congestion; Security_out;
    Scheduling; Stats ]

let count = List.length all

let to_int = function
  | Ip_options -> 0
  | Security_in -> 1
  | Firewall -> 2
  | Routing -> 3
  | Congestion -> 4
  | Security_out -> 5
  | Scheduling -> 6
  | Stats -> 7

let of_int = function
  | 0 -> Some Ip_options
  | 1 -> Some Security_in
  | 2 -> Some Firewall
  | 3 -> Some Routing
  | 4 -> Some Congestion
  | 5 -> Some Security_out
  | 6 -> Some Scheduling
  | 7 -> Some Stats
  | _ -> None

let name = function
  | Ip_options -> "ip-options"
  | Security_in -> "security-in"
  | Firewall -> "firewall"
  | Routing -> "routing"
  | Congestion -> "congestion"
  | Security_out -> "security-out"
  | Scheduling -> "scheduling"
  | Stats -> "stats"

let of_name s =
  List.find_opt (fun g -> name g = s) all

let pp ppf g = Format.pp_print_string ppf (name g)
let equal a b = to_int a = to_int b
