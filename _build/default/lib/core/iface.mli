(** Network interfaces: an output queue (a plain FIFO, or an attached
    packet-scheduling plugin instance) plus the usual counters.

    Transmission timing (link rate, serialization delay) is driven by
    the simulator; this module only owns the queueing decision. *)

open Rp_pkt

type counters = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;  (** queue-full or policy drops on this iface *)
}

type t = {
  id : int;
  name : string;
  mtu : int;
  bandwidth_bps : int64;  (** link rate used by the simulator *)
  fifo_limit : int;
  fifo : Mbuf.t Queue.t;
  mutable qdisc : Plugin.t option;
      (** attached scheduling instance; [None] = plain FIFO *)
  counters : counters;
  mutable up : bool;
}

val create :
  ?name:string -> ?mtu:int -> ?bandwidth_bps:int64 -> ?fifo_limit:int ->
  id:int -> unit -> t

(** [attach_scheduler t inst] installs a scheduling-gate plugin
    instance as this interface's queueing discipline.
    @raise Invalid_argument if the instance has no scheduler. *)
val attach_scheduler : t -> Plugin.t -> unit

val detach_scheduler : t -> unit

(** [enqueue t ~now ~binding m] queues [m] for output: through the
    attached scheduler when present (passing the flow [binding] whose
    soft slot carries per-flow queue state), else the FIFO with
    tail-drop at [fifo_limit].  Returns [false] when dropped. *)
val enqueue :
  t -> now:int64 -> binding:Plugin.t Rp_classifier.Flow_table.binding option ->
  Mbuf.t -> bool

(** [dequeue t ~now] takes the next packet to put on the wire. *)
val dequeue : t -> now:int64 -> Mbuf.t option

(** Packets waiting for transmission. *)
val backlog : t -> int

(** Record a completed transmission (called by the simulator's link
    model). *)
val count_tx : t -> Mbuf.t -> unit

val count_rx : t -> Mbuf.t -> unit
val pp : Format.formatter -> t -> unit
