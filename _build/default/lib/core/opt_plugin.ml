(** IPv6 option plugin (one of the paper's four implemented plugin
    types).  Processes the hop-by-hop options carried in the mbuf:

    - Router Alert: tags the packet ["router-alert"] so local daemons
      notice it;
    - Jumbo Payload: accepted (length already validated at parse);
    - padding: skipped;
    - unknown options: handled per the RFC 1883 high-bit semantics —
      00 skip, 01 discard, 10/11 discard (where a real stack would
      also emit an ICMP Parameter Problem, which we count). *)

open Rp_pkt

type totals = {
  mutable packets : int;
  mutable alerts : int;
  mutable jumbos : int;
  mutable unknown_skipped : int;
  mutable discards : int;
  mutable icmp_errors : int;  (** would-be Parameter Problem messages *)
}

let instance_totals : (int, totals) Hashtbl.t = Hashtbl.create 8

let totals_of ~instance_id = Hashtbl.find_opt instance_totals instance_id

let name = "ip6-options"
let gate = Gate.Ip_options
let description = "IPv6 hop-by-hop option processing"

let process t m =
  t.packets <- t.packets + 1;
  let verdict = ref Plugin.Continue in
  List.iter
    (fun opt ->
      match !verdict with
      | Plugin.Drop _ | Plugin.Consumed -> ()
      | Plugin.Continue ->
        (match opt with
         | Ipv6_header.Option_tlv.Pad1 | Ipv6_header.Option_tlv.Padn _ -> ()
         | Ipv6_header.Option_tlv.Router_alert _ ->
           t.alerts <- t.alerts + 1;
           Mbuf.add_tag m "router-alert"
         | Ipv6_header.Option_tlv.Jumbo_payload _ -> t.jumbos <- t.jumbos + 1
         | Ipv6_header.Option_tlv.Unknown (ty, _) ->
           (match ty lsr 6 with
            | 0 -> t.unknown_skipped <- t.unknown_skipped + 1
            | 1 ->
              t.discards <- t.discards + 1;
              verdict := Plugin.Drop "unknown hop-by-hop option (01)"
            | 2 | 3 ->
              t.discards <- t.discards + 1;
              t.icmp_errors <- t.icmp_errors + 1;
              verdict := Plugin.Drop "unknown hop-by-hop option (1x)"
            | _ -> assert false)))
    m.Mbuf.options;
  !verdict

let create_instance ~instance_id ~code ~config =
  let t =
    {
      packets = 0;
      alerts = 0;
      jumbos = 0;
      unknown_skipped = 0;
      discards = 0;
      icmp_errors = 0;
    }
  in
  Hashtbl.replace instance_totals instance_id t;
  Ok
    (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
       ~describe:(fun () ->
         Printf.sprintf "ip6-options: %d pkts, %d alerts, %d discards"
           t.packets t.alerts t.discards)
       (fun _ctx m -> process t m))

let message key _payload =
  match key with
  | "plugin-info" -> Ok description
  | _ -> Error (Printf.sprintf "ip6-options: unknown message %s" key)
