open Rp_pkt

type action =
  | Continue
  | Drop of string
  | Consumed

type ctx = {
  now_ns : int64;
  binding : t Rp_classifier.Flow_table.binding option;
}

and t = {
  code : int;
  instance_id : int;
  plugin_name : string;
  gate : Gate.t;
  config : (string * string) list;
  handle : ctx -> Mbuf.t -> action;
  scheduler : scheduler option;
  on_flow_evict : (t Rp_classifier.Flow_table.binding -> unit) option;
  describe : unit -> string;
}

and scheduler = {
  enqueue :
    now:int64 -> Mbuf.t -> t Rp_classifier.Flow_table.binding option ->
    enq_result;
  dequeue : now:int64 -> Mbuf.t option;
  backlog : unit -> int;
  sched_stats : unit -> (string * string) list;
}

and enq_result =
  | Enqueued
  | Rejected of string

module type PLUGIN = sig
  val name : string
  val gate : Gate.t
  val description : string

  val create_instance :
    instance_id:int -> code:int -> config:(string * string) list ->
    (t, string) result

  val message : string -> string -> (string, string) result
end

let pp ppf t =
  Format.fprintf ppf "%s#%d@%s" t.plugin_name t.instance_id (Gate.name t.gate)

let code ~gate ~impl = (Gate.to_int gate lsl 16) lor (impl land 0xFFFF)
let gate_of_code c = Gate.of_int (c lsr 16)
let impl_of_code c = c land 0xFFFF

let simple ~instance_id ~code ~plugin_name ~gate ?(config = [])
    ?describe handle =
  let describe =
    match describe with
    | Some d -> d
    | None -> fun () -> Printf.sprintf "%s instance %d" plugin_name instance_id
  in
  {
    code;
    instance_id;
    plugin_name;
    gate;
    config;
    handle;
    scheduler = None;
    on_flow_evict = None;
    describe;
  }
