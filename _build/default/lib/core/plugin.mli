(** Plugins and plugin instances (paper, section 4).

    A {e plugin} is a loadable code module implementing one network
    function (one gate / plugin type).  An {e instance} is a specific
    run-time configuration of a plugin; instances are what filters
    bind flows to, and what gates call on the data path.

    Every plugin is identified by a 32-bit {e plugin code}: the upper
    16 bits are the plugin type (the gate), the lower 16 bits identify
    the implementation among plugins of that type. *)

open Rp_pkt

(** Verdict of an instance's packet handler. *)
type action =
  | Continue  (** processing proceeds to the next gate *)
  | Drop of string  (** packet discarded, with a reason *)
  | Consumed
      (** the plugin took ownership of the packet (e.g. buffered a
          fragment for reassembly); the core stops processing it
          without counting a drop *)

(** Context passed to a packet handler at a gate. *)
type ctx = {
  now_ns : int64;
  binding : t Rp_classifier.Flow_table.binding option;
      (** the flow-record binding that routed the packet here; its
          [soft] slot holds the plugin's per-flow state *)
}

(** A plugin instance.  [handle] is "the main packet processing
    function which is called at the gate" (section 4); [scheduler] is
    present on packet-scheduling instances and drives an output queue
    instead of the inline handler. *)
and t = {
  code : int;  (** plugin code: [gate lsl 16 lor impl] *)
  instance_id : int;
  plugin_name : string;
  gate : Gate.t;
  config : (string * string) list;
  handle : ctx -> Mbuf.t -> action;
  scheduler : scheduler option;
  on_flow_evict : (t Rp_classifier.Flow_table.binding -> unit) option;
      (** called by the AIU when a flow record bound to this instance
          is evicted, so per-flow soft state can be released *)
  describe : unit -> string;
}

(** Output-queue interface of scheduling instances.  [enqueue] is
    called at the scheduling gate with the packet's flow binding (per-
    flow queues live in the binding's soft state); [dequeue] is called
    by the interface driver when the link can transmit. *)
and scheduler = {
  enqueue :
    now:int64 -> Mbuf.t -> t Rp_classifier.Flow_table.binding option ->
    enq_result;
  dequeue : now:int64 -> Mbuf.t option;
  backlog : unit -> int;  (** packets currently queued *)
  sched_stats : unit -> (string * string) list;
}

and enq_result =
  | Enqueued
  | Rejected of string  (** queue full / policy drop *)

(** The module interface a loadable plugin implements — the analogue
    of the registration callback a NetBSD plugin hands the PCU at
    [modload] time. *)
module type PLUGIN = sig
  val name : string
  val gate : Gate.t
  val description : string

  (** [create_instance ~instance_id ~code ~config] allocates an
      instance.  Configuration is a key/value list (e.g.
      [("iface", "1"); ("bandwidth", "1000000")]). *)
  val create_instance :
    instance_id:int -> code:int -> config:(string * string) list ->
    (t, string) result

  (** Plugin-specific control messages ([message key payload]). *)
  val message : string -> string -> (string, string) result
end

val pp : Format.formatter -> t -> unit

(** [code ~gate ~impl] packs a plugin code. *)
val code : gate:Gate.t -> impl:int -> int

val gate_of_code : int -> Gate.t option
val impl_of_code : int -> int

(** Convenience for plugins without per-flow state or scheduling. *)
val simple :
  instance_id:int -> code:int -> plugin_name:string -> gate:Gate.t ->
  ?config:(string * string) list -> ?describe:(unit -> string) ->
  (ctx -> Mbuf.t -> action) -> t
