(** Routing plugin — the paper's L4 switching / QoS-based routing
    (sections 4 and 8: "we plan to also add support for a Routing
    plugin, which would allow routing table lookups to be based on the
    flow classification that is performed by the AIU ... By unifying
    routing and packet classification, we get QoS-based routing/Level 4
    switching for free").

    An instance is a forwarding decision: an output interface and an
    optional next hop.  Binding instances to six-tuple filters routes
    by {e flow class} rather than destination alone — policy routing,
    per-application paths, QoS routing.  Because decisions ride the
    flow cache like any other gate binding, a cached packet's route
    costs one indirect call; the per-destination LPM in the core is
    only the fallback for unbound flows.

    Config: [iface=<n>] (required), [nexthop=<addr>], or
    [action=blackhole] to discard matching flows (null routing). *)

open Rp_pkt

type decision =
  | Forward of {
      out_iface : int;
      next_hop : Ipaddr.t option;
    }
  | Blackhole

type totals = {
  mutable routed : int;
  mutable blackholed : int;
}

let instance_totals : (int, totals) Hashtbl.t = Hashtbl.create 8

let totals_of ~instance_id = Hashtbl.find_opt instance_totals instance_id

let name = "l4-route"
let gate = Gate.Routing
let description = "per-flow forwarding decisions (L4 switching)"

let apply t decision (m : Mbuf.t) =
  match decision with
  | Blackhole ->
    t.blackholed <- t.blackholed + 1;
    Plugin.Drop "null route"
  | Forward { out_iface; next_hop } ->
    t.routed <- t.routed + 1;
    m.Mbuf.out_iface <- Some out_iface;
    m.Mbuf.next_hop <-
      (match next_hop with
       | Some _ as nh -> nh
       | None -> Some m.Mbuf.key.Flow_key.dst);
    Plugin.Continue

let create_instance ~instance_id ~code ~config =
  let decision =
    match List.assoc_opt "action" config with
    | Some "blackhole" -> Ok Blackhole
    | Some other -> Error (Printf.sprintf "l4-route: unknown action %S" other)
    | None ->
      (match List.assoc_opt "iface" config with
       | None -> Error "l4-route: config must set iface=<n> or action=blackhole"
       | Some s ->
         (match int_of_string_opt s with
          | None -> Error (Printf.sprintf "l4-route: bad iface %S" s)
          | Some out_iface ->
            let next_hop =
              Option.bind (List.assoc_opt "nexthop" config) Ipaddr.of_string_opt
            in
            Ok (Forward { out_iface; next_hop })))
  in
  Result.map
    (fun decision ->
      let t = { routed = 0; blackholed = 0 } in
      Hashtbl.replace instance_totals instance_id t;
      Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
        ~describe:(fun () ->
          match decision with
          | Blackhole -> Printf.sprintf "l4-route: blackhole (%d dropped)" t.blackholed
          | Forward { out_iface; next_hop } ->
            Printf.sprintf "l4-route: -> if%d%s (%d routed)" out_iface
              (match next_hop with
               | Some a -> " via " ^ Ipaddr.to_string a
               | None -> "")
              t.routed)
        (fun _ctx m -> apply t decision m))
    decision

let message key _ =
  match key with
  | "plugin-info" -> Ok description
  | _ -> Error (Printf.sprintf "l4-route: unknown message %s" key)
