(** The routing table: longest-prefix match over destination prefixes,
    built on a pluggable BMP engine (the paper's BMP plugins serve both
    the classifier and routing — "Routing ... is packet classification
    with only one field", section 5.1). *)

open Rp_pkt

type route = {
  prefix : Prefix.t;
  next_hop : Ipaddr.t option;  (** [None] = directly connected *)
  iface : int;
  metric : int;
}

type t

val create : ?engine:Rp_lpm.Engines.t -> unit -> t

(** [add t route] installs [route], replacing an existing route for the
    same prefix only if the new metric is not worse. *)
val add : t -> route -> unit

val remove : t -> Prefix.t -> unit

(** [lookup t dst] is the best (longest-prefix) route for [dst]. *)
val lookup : t -> Ipaddr.t -> route option

val length : t -> int
val iter : (route -> unit) -> t -> unit
val pp_route : Format.formatter -> route -> unit
