(** Statistics-gathering plugin — one of the plugin types the paper
    motivates for network management ("to monitor transit traffic at
    routers ... and to gather and report various statistics thereof",
    section 2).

    Aggregate counters live in the instance; per-flow counters live in
    flow-record soft state, so changing what is collected (or
    removing collection entirely) never touches the forwarding code. *)

open Rp_pkt
open Rp_classifier

type flow_stat = {
  key : Flow_key.t;
  mutable f_packets : int;
  mutable f_bytes : int;
  mutable first_ns : int64;
  mutable last_ns : int64;
}

type Flow_table.soft += Stat of flow_stat

type totals = {
  mutable packets : int;
  mutable bytes : int;
  mutable flows_seen : int;
  mutable flows_closed : int;
  (* Completed flows' stats, most recent first, bounded. *)
  mutable history : flow_stat list;
  history_limit : int;
}

let instance_totals : (int, totals) Hashtbl.t = Hashtbl.create 8

let totals_of ~instance_id = Hashtbl.find_opt instance_totals instance_id

let name = "stats"
let gate = Gate.Stats
let description = "per-flow and aggregate traffic statistics"

let record t (ctx : Plugin.ctx) m =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + m.Mbuf.len;
  (match ctx.Plugin.binding with
   | None -> ()
   | Some b ->
     let fs =
       match b.Flow_table.soft with
       | Some (Stat fs) -> fs
       | Some _ | None ->
         let fs =
           {
             key = m.Mbuf.key;
             f_packets = 0;
             f_bytes = 0;
             first_ns = ctx.Plugin.now_ns;
             last_ns = ctx.Plugin.now_ns;
           }
         in
         b.Flow_table.soft <- Some (Stat fs);
         t.flows_seen <- t.flows_seen + 1;
         fs
     in
     fs.f_packets <- fs.f_packets + 1;
     fs.f_bytes <- fs.f_bytes + m.Mbuf.len;
     fs.last_ns <- ctx.Plugin.now_ns);
  Plugin.Continue

let on_flow_evict t (b : Plugin.t Flow_table.binding) =
  match b.Flow_table.soft with
  | Some (Stat fs) ->
    t.flows_closed <- t.flows_closed + 1;
    let keep = t.history_limit - 1 in
    t.history <-
      fs :: (if List.length t.history > keep
             then List.filteri (fun i _ -> i < keep) t.history
             else t.history);
    b.Flow_table.soft <- None
  | Some _ | None -> ()

let create_instance ~instance_id ~code ~config =
  let history_limit =
    match List.assoc_opt "history" config with
    | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 64)
    | None -> 64
  in
  let t =
    {
      packets = 0;
      bytes = 0;
      flows_seen = 0;
      flows_closed = 0;
      history = [];
      history_limit;
    }
  in
  Hashtbl.replace instance_totals instance_id t;
  let base =
    Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
      ~describe:(fun () ->
        Printf.sprintf "stats: %d pkts / %d bytes over %d flows" t.packets
          t.bytes t.flows_seen)
      (fun _ _ -> Plugin.Continue)
  in
  Ok
    {
      base with
      Plugin.handle = (fun ctx m -> record t ctx m);
      on_flow_evict = Some (on_flow_evict t);
    }

let message key payload =
  match key with
  | "plugin-info" -> Ok description
  | "report" ->
    (match int_of_string_opt payload with
     | None -> Error "report expects an instance id"
     | Some id ->
       (match totals_of ~instance_id:id with
        | None -> Error (Printf.sprintf "no stats instance %d" id)
        | Some t ->
          Ok
            (Printf.sprintf "packets=%d bytes=%d flows=%d closed=%d" t.packets
               t.bytes t.flows_seen t.flows_closed)))
  | _ -> Error (Printf.sprintf "stats: unknown message %s" key)
