lib/crypto/hmac.ml: Bytes Char Md5 String
