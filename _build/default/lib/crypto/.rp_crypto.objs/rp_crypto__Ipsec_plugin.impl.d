lib/crypto/ipsec_plugin.ml: Bytes Flow_key Format Frag Gate Hashtbl Hmac Int32 Ipv4_header Ipv6_header List Mbuf Plugin Printf Proto Rc4 Result Rp_core Rp_pkt Sa String Udp_header
