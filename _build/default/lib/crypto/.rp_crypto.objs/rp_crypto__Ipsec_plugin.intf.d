lib/crypto/ipsec_plugin.mli: Rp_core Sa
