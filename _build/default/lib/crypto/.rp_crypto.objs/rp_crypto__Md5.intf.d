lib/crypto/md5.mli: Bytes
