lib/crypto/sa.ml: Format Int64 Printf Rc4
