lib/crypto/sa.mli: Format Rc4
