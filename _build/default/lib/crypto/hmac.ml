let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Md5.digest_string key else key in
  key ^ String.make (block_size - String.length key) '\000'

let xor_pad key byte =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))

let md5_bytes ~key buf off len =
  let key = normalize_key key in
  let inner = Md5.init () in
  Md5.update_string inner (xor_pad key 0x36);
  Md5.update inner buf off len;
  let inner_digest = Md5.final inner in
  let outer = Md5.init () in
  Md5.update_string outer (xor_pad key 0x5C);
  Md5.update_string outer inner_digest;
  Md5.final outer

let md5 ~key data = md5_bytes ~key (Bytes.unsafe_of_string data) 0 (String.length data)

let md5_96 ~key data = String.sub (md5 ~key data) 0 12

let verify ~expected mac =
  String.length expected = String.length mac
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code mac.[i])) expected;
  !diff = 0
