(** HMAC-MD5 (RFC 2104). *)

(** [md5 ~key data] is the 16-byte HMAC-MD5 of [data]. *)
val md5 : key:string -> string -> string

(** [md5_bytes ~key buf off len] — over a byte range. *)
val md5_bytes : key:string -> Bytes.t -> int -> int -> string

(** [md5_96 ~key data] — the 12-byte truncation used as the IPsec
    authenticator (HMAC-MD5-96). *)
val md5_96 : key:string -> string -> string

(** Constant-time comparison of two MACs. *)
val verify : expected:string -> string -> bool
