open Rp_pkt
open Rp_core

let sa_table : (string, Sa.t) Hashtbl.t = Hashtbl.create 8

let add_sa ~name sa = Hashtbl.replace sa_table name sa
let find_sa ~name = Hashtbl.find_opt sa_table name

let trailer_len = 8  (* SPI + sequence *)
let icv_len = 12  (* HMAC-MD5-96 *)
let overhead = trailer_len + icv_len

(* Payload region of a raw UDP datagram: after the IP and UDP
   headers.  Returns (payload_off, ip_version). *)
let payload_off (m : Mbuf.t) =
  if m.Mbuf.key.Flow_key.proto <> Proto.udp then None
  else
    match m.Mbuf.version with
    | Mbuf.V4 -> Some (Ipv4_header.size + Udp_header.size, `V4)
    | Mbuf.V6 -> Some (Ipv6_header.size + Udp_header.size, `V6)

(* Rewrite the length fields (and the IPv4 header checksum) after the
   datagram grew or shrank by [delta] bytes. *)
let fix_lengths raw version delta =
  match version with
  | `V4 ->
    (match Ipv4_header.parse raw 0 with
     | Ok h ->
       Ipv4_header.serialize
         { h with Ipv4_header.total_length = h.Ipv4_header.total_length + delta }
         raw 0
     | Error _ -> ());
    (match Udp_header.parse raw Ipv4_header.size with
     | Ok u ->
       Udp_header.serialize
         { u with Udp_header.length = u.Udp_header.length + delta; checksum = 0 }
         raw Ipv4_header.size
     | Error _ -> ())
  | `V6 ->
    (match Ipv6_header.parse raw 0 with
     | Ok h ->
       Ipv6_header.serialize
         { h with Ipv6_header.payload_length = h.Ipv6_header.payload_length + delta }
         raw 0
     | Error _ -> ());
    (match Udp_header.parse raw Ipv6_header.size with
     | Ok u ->
       Udp_header.serialize
         { u with Udp_header.length = u.Udp_header.length + delta; checksum = 0 }
         raw Ipv6_header.size
     | Error _ -> ())

let tag_prefix = "ipsec:"

(* --- outbound -------------------------------------------------------- *)

let protect sa (m : Mbuf.t) =
  let seq = Sa.next_seq sa in
  (match m.Mbuf.raw, payload_off m with
   | Some raw, Some (off, version) ->
     let old_len = Bytes.length raw in
     let plen = old_len - off in
     let grown = Bytes.create (old_len + overhead) in
     Bytes.blit raw 0 grown 0 old_len;
     (* Encrypt the payload in place (ESP only). *)
     (match sa.Sa.transform with
      | Sa.Esp ->
        let cipher = Sa.packet_cipher sa ~seq in
        Rc4.apply cipher grown off plen
      | Sa.Ah -> ());
     (* Trailer: SPI and sequence. *)
     Bytes.set_int32_be grown old_len sa.Sa.spi;
     Bytes.set_int32_be grown (old_len + 4) (Int32.of_int seq);
     (* ICV over payload + trailer. *)
     let icv =
       Hmac.md5_bytes ~key:sa.Sa.auth_key grown off (plen + trailer_len)
     in
     Bytes.blit_string icv 0 grown (old_len + trailer_len) icv_len;
     fix_lengths grown version overhead;
     m.Mbuf.raw <- Some grown
   | _, _ ->
     (* Synthetic packet: carry the transform as metadata. *)
     Mbuf.add_tag m (Printf.sprintf "%s%ld:%d" tag_prefix sa.Sa.spi seq));
  m.Mbuf.len <- m.Mbuf.len + overhead;
  Plugin.Continue

(* --- inbound --------------------------------------------------------- *)

type in_state = {
  mutable bad_icv : int;
  mutable replays : int;
  mutable reassembled : int;
  reasm : Frag.Reassembly.t;
}

let in_instances : (int, in_state) Hashtbl.t = Hashtbl.create 8

let in_failures ~instance_id =
  match Hashtbl.find_opt in_instances instance_id with
  | Some st -> Some (st.bad_icv, st.replays)
  | None -> None

let in_reassembled ~instance_id =
  match Hashtbl.find_opt in_instances instance_id with
  | Some st -> Some st.reassembled
  | None -> None

(* AH/ESP verification needs the whole datagram: fragments of a
   protected packet are buffered and the verification runs on the
   reassembled datagram (RFC 1825: reassembly precedes AH/ESP
   processing at the receiver). *)
let reassemble_first st (ctx : Plugin.ctx) (m : Mbuf.t) =
  match m.Mbuf.frag with
  | None -> `Whole
  | Some _ ->
    (match Frag.Reassembly.offer st.reasm ~now:ctx.Plugin.now_ns m with
     | None -> `Buffered
     | Some whole ->
       st.reassembled <- st.reassembled + 1;
       (* Continue processing the rebuilt datagram in place. *)
       m.Mbuf.len <- whole.Mbuf.len;
       m.Mbuf.raw <- whole.Mbuf.raw;
       m.Mbuf.frag <- None;
       `Whole)

let find_tag (m : Mbuf.t) =
  List.find_opt
    (fun t ->
      String.length t > String.length tag_prefix
      && String.sub t 0 (String.length tag_prefix) = tag_prefix)
    m.Mbuf.tags

let unprotect st sa (m : Mbuf.t) =
  match m.Mbuf.raw, payload_off m with
  | Some raw, Some (off, version) ->
    let total = Bytes.length raw in
    let plen = total - off - overhead in
    if plen < 0 then Plugin.Drop "ipsec: packet too short"
    else begin
      let spi = Bytes.get_int32_be raw (off + plen) in
      let seq = Int32.to_int (Bytes.get_int32_be raw (off + plen + 4)) in
      let icv = Bytes.sub_string raw (off + plen + trailer_len) icv_len in
      let expected =
        String.sub (Hmac.md5_bytes ~key:sa.Sa.auth_key raw off (plen + trailer_len))
          0 icv_len
      in
      if spi <> sa.Sa.spi then Plugin.Drop "ipsec: unknown SPI"
      else if not (Hmac.verify ~expected icv) then begin
        st.bad_icv <- st.bad_icv + 1;
        Plugin.Drop "ipsec: bad ICV"
      end
      else if not (Sa.replay_check sa seq) then begin
        st.replays <- st.replays + 1;
        Plugin.Drop "ipsec: replayed sequence"
      end
      else begin
        (match sa.Sa.transform with
         | Sa.Esp ->
           let cipher = Sa.packet_cipher sa ~seq in
           Rc4.apply cipher raw off plen
         | Sa.Ah -> ());
        let shrunk = Bytes.sub raw 0 (total - overhead) in
        fix_lengths shrunk version (-overhead);
        m.Mbuf.raw <- Some shrunk;
        m.Mbuf.len <- m.Mbuf.len - overhead;
        Plugin.Continue
      end
    end
  | _, _ ->
    (match find_tag m with
     | None -> Plugin.Drop "ipsec: expected protected packet"
     | Some tag ->
       (match
          String.split_on_char ':'
            (String.sub tag (String.length tag_prefix)
               (String.length tag - String.length tag_prefix))
        with
        | [ spi_s; seq_s ] ->
          let spi = Int32.of_string_opt spi_s and seq = int_of_string_opt seq_s in
          (match spi, seq with
           | Some spi, Some seq when spi = sa.Sa.spi ->
             if Sa.replay_check sa seq then begin
               m.Mbuf.tags <- List.filter (fun t -> t <> tag) m.Mbuf.tags;
               m.Mbuf.len <- m.Mbuf.len - overhead;
               Plugin.Continue
             end
             else begin
               st.replays <- st.replays + 1;
               Plugin.Drop "ipsec: replayed sequence"
             end
           | Some _, Some _ -> Plugin.Drop "ipsec: unknown SPI"
           | _, _ -> Plugin.Drop "ipsec: malformed tag")
        | _ -> Plugin.Drop "ipsec: malformed tag"))

(* --- plugin modules -------------------------------------------------- *)

let sa_of_config config =
  match List.assoc_opt "sa" config with
  | None -> Error "ipsec: config must name an SA (sa=<name>)"
  | Some name ->
    (match find_sa ~name with
     | Some sa -> Ok sa
     | None -> Error (Printf.sprintf "ipsec: no SA %S" name))

module Out = struct
  let name = "ipsec-out"
  let gate = Gate.Security_out
  let description = "AH/ESP protection of outbound flows"

  let create_instance ~instance_id ~code ~config =
    Result.map
      (fun sa ->
        Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
          ~describe:(fun () -> Format.asprintf "ipsec-out %a" Sa.pp sa)
          (fun _ctx m -> protect sa m))
      (sa_of_config config)

  let message key _ =
    match key with
    | "plugin-info" -> Ok description
    | _ -> Error (Printf.sprintf "ipsec-out: unknown message %s" key)
end

module In = struct
  let name = "ipsec-in"
  let gate = Gate.Security_in
  let description = "AH/ESP verification of inbound flows"

  let create_instance ~instance_id ~code ~config =
    Result.map
      (fun sa ->
        let st =
          { bad_icv = 0; replays = 0; reassembled = 0;
            reasm = Frag.Reassembly.create () }
        in
        Hashtbl.replace in_instances instance_id st;
        Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
          ~describe:(fun () ->
            Format.asprintf "ipsec-in %a (bad-icv=%d replays=%d reasm=%d)"
              Sa.pp sa st.bad_icv st.replays st.reassembled)
          (fun ctx m ->
            match reassemble_first st ctx m with
            | `Buffered -> Plugin.Consumed
            | `Whole -> unprotect st sa m))
      (sa_of_config config)

  let message key _ =
    match key with
    | "plugin-info" -> Ok description
    | _ -> Error (Printf.sprintf "ipsec-in: unknown message %s" key)
end
