(** IP security plugins (paper, section 4: "Our implementation
    currently supports four types of plugins", IP security being one;
    the security architecture is RFC 1825).

    {!Out} (at the security-out gate) applies an SA's transform to
    departing packets of bound flows; {!In} (at the security-in gate)
    verifies/decrypts arriving packets, enforcing integrity and
    anti-replay, and drops failures.

    Transform layout, relative to the real protocols (documented
    substitution — see DESIGN.md): the transform covers the UDP
    payload and appends an 8-byte (SPI, sequence) trailer plus a
    12-byte HMAC-MD5-96 ICV; IP and UDP headers stay in the clear and
    their length fields are rewritten.  This keeps the five-tuple
    stable through the router's own gates while exercising real keyed
    crypto, SA lookup, sequence numbers, and replay windows
    end-to-end.  Packets without materialized bytes (synthetic
    benchmark traffic) carry the transform as a tag and the same
    length change.

    SAs are created once with {!add_sa} and referenced from instance
    config as [sa=<name>]; both endpoints of a simulated tunnel
    reference the same SA, as they would share keys in reality. *)

val add_sa : name:string -> Sa.t -> unit
val find_sa : name:string -> Sa.t option

(** Bytes the transform adds to a packet (trailer + ICV). *)
val overhead : int

module Out : Rp_core.Plugin.PLUGIN

module In : Rp_core.Plugin.PLUGIN

(** Drop counters of the input side (bad ICV, replays), per instance. *)
val in_failures : instance_id:int -> (int * int) option

(** Datagrams the input side reassembled from fragments before
    verification (reassembly precedes AH/ESP at the receiver). *)
val in_reassembled : instance_id:int -> int option
