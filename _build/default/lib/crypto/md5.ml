(* RFC 1321, transliterated.  All arithmetic is on Int32. *)

let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

(* K[i] = floor(2^32 * abs(sin(i+1))), precomputed per the RFC. *)
let k =
  [|
    0xd76aa478l; 0xe8c7b756l; 0x242070dbl; 0xc1bdceeel; 0xf57c0fafl;
    0x4787c62al; 0xa8304613l; 0xfd469501l; 0x698098d8l; 0x8b44f7afl;
    0xffff5bb1l; 0x895cd7bel; 0x6b901122l; 0xfd987193l; 0xa679438el;
    0x49b40821l; 0xf61e2562l; 0xc040b340l; 0x265e5a51l; 0xe9b6c7aal;
    0xd62f105dl; 0x02441453l; 0xd8a1e681l; 0xe7d3fbc8l; 0x21e1cde6l;
    0xc33707d6l; 0xf4d50d87l; 0x455a14edl; 0xa9e3e905l; 0xfcefa3f8l;
    0x676f02d9l; 0x8d2a4c8al; 0xfffa3942l; 0x8771f681l; 0x6d9d6122l;
    0xfde5380cl; 0xa4beea44l; 0x4bdecfa9l; 0xf6bb4b60l; 0xbebfbc70l;
    0x289b7ec6l; 0xeaa127fal; 0xd4ef3085l; 0x04881d05l; 0xd9d4d039l;
    0xe6db99e5l; 0x1fa27cf8l; 0xc4ac5665l; 0xf4292244l; 0x432aff97l;
    0xab9423a7l; 0xfc93a039l; 0x655b59c3l; 0x8f0ccc92l; 0xffeff47dl;
    0x85845dd1l; 0x6fa87e4fl; 0xfe2ce6e0l; 0xa3014314l; 0x4e0811a1l;
    0xf7537e82l; 0xbd3af235l; 0x2ad7d2bbl; 0xeb86d391l;
  |]

type ctx = {
  mutable a : int32;
  mutable b : int32;
  mutable c : int32;
  mutable d : int32;
  mutable total : int64;  (* bytes processed *)
  buf : Bytes.t;  (* 64-byte block buffer *)
  mutable buf_len : int;
}

let init () =
  {
    a = 0x67452301l;
    b = 0xefcdab89l;
    c = 0x98badcfel;
    d = 0x10325476l;
    total = 0L;
    buf = Bytes.create 64;
    buf_len = 0;
  }

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let process_block ctx block off =
  let m = Array.init 16 (fun i -> Bytes.get_int32_le block (off + (i * 4))) in
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then
        (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
      else if i < 32 then
        (Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c),
         ((5 * i) + 1) mod 16)
      else if i < 48 then
        (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
      else
        (Int32.logxor !c (Int32.logor !b (Int32.lognot !d)), (7 * i) mod 16)
    in
    let tmp = !d in
    d := !c;
    c := !b;
    let sum = Int32.add (Int32.add !a f) (Int32.add k.(i) m.(g)) in
    b := Int32.add !b (rotl sum s.(i));
    a := tmp
  done;
  ctx.a <- Int32.add ctx.a !a;
  ctx.b <- Int32.add ctx.b !b;
  ctx.c <- Int32.add ctx.c !c;
  ctx.d <- Int32.add ctx.d !d

let update ctx data off len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Md5.update: bad range";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Top up a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit data !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      process_block ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    process_block ctx data !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit data !pos ctx.buf ctx.buf_len !remaining;
    ctx.buf_len <- ctx.buf_len + !remaining
  end

let update_string ctx str =
  update ctx (Bytes.unsafe_of_string str) 0 (String.length str)

let final ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, then the 64-bit little-endian length. *)
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  update ctx padding 0 pad_len;
  let length_block = Bytes.create 8 in
  Bytes.set_int64_le length_block 0 bit_len;
  update ctx length_block 0 8;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 16 in
  Bytes.set_int32_le out 0 ctx.a;
  Bytes.set_int32_le out 4 ctx.b;
  Bytes.set_int32_le out 8 ctx.c;
  Bytes.set_int32_le out 12 ctx.d;
  Bytes.to_string out

let digest_bytes b =
  let ctx = init () in
  update ctx b 0 (Bytes.length b);
  final ctx

let digest_string str = digest_bytes (Bytes.of_string str)

let to_hex raw =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length raw) (String.get raw)))
