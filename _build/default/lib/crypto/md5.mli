(** MD5 (RFC 1321), implemented from the specification.

    MD5 is the authentication transform of the paper's era
    (AH-with-keyed-MD5, RFC 1828, is the mandatory transform of the
    IPsec the paper integrates).  It is used here for packet
    authentication in the security plugins — not as a modern
    collision-resistant hash. *)

type ctx

val init : unit -> ctx
val update : ctx -> Bytes.t -> int -> int -> unit
val update_string : ctx -> string -> unit

(** [final ctx] returns the 16-byte digest; the context must not be
    used afterwards. *)
val final : ctx -> string

(** One-shot digests. *)

val digest_string : string -> string
val digest_bytes : Bytes.t -> string

(** Lowercase hex of a raw digest. *)
val to_hex : string -> string
