type t = {
  s : int array;  (* permutation of 0..255 *)
  mutable i : int;
  mutable j : int;
}

let create key =
  let klen = String.length key in
  if klen < 1 || klen > 256 then invalid_arg "Rc4.create: key length";
  let s = Array.init 256 (fun i -> i) in
  let j = ref 0 in
  for i = 0 to 255 do
    j := (!j + s.(i) + Char.code key.[i mod klen]) land 0xFF;
    let tmp = s.(i) in
    s.(i) <- s.(!j);
    s.(!j) <- tmp
  done;
  { s; i = 0; j = 0 }

let next_byte t =
  t.i <- (t.i + 1) land 0xFF;
  t.j <- (t.j + t.s.(t.i)) land 0xFF;
  let tmp = t.s.(t.i) in
  t.s.(t.i) <- t.s.(t.j);
  t.s.(t.j) <- tmp;
  t.s.((t.s.(t.i) + t.s.(t.j)) land 0xFF)

let keystream t n =
  Bytes.init n (fun _ -> Char.chr (next_byte t))

let apply t buf off len =
  for pos = off to off + len - 1 do
    Bytes.set buf pos
      (Char.chr (Char.code (Bytes.get buf pos) lxor next_byte t))
  done

let apply_string t s =
  let buf = Bytes.of_string s in
  apply t buf 0 (Bytes.length buf);
  Bytes.to_string buf
