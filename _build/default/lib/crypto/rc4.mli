(** RC4 stream cipher — the fast software cipher of the paper's era,
    used here as the ESP-style confidentiality transform.  Not suitable
    for new designs; part of this reproduction's period-accurate IPsec
    substrate. *)

type t

(** [create key] initializes the key schedule.  Key length 1-256
    bytes. *)
val create : string -> t

(** [keystream t n] produces the next [n] keystream bytes. *)
val keystream : t -> int -> Bytes.t

(** [apply t buf off len] XORs the keystream into [buf] in place
    (encryption and decryption are the same operation). *)
val apply : t -> Bytes.t -> int -> int -> unit

(** [apply_string t s] — convenience over an immutable string. *)
val apply_string : t -> string -> string
