type transform =
  | Ah
  | Esp

type t = {
  spi : int32;
  transform : transform;
  auth_key : string;
  enc_key : string;
  mutable seq : int;
  mutable replay_right : int;
  mutable replay_window : int64;
}

let create ~spi ~transform ~auth_key ?(enc_key = "") () =
  if auth_key = "" then invalid_arg "Sa.create: empty auth key";
  (match transform with
   | Esp when enc_key = "" -> invalid_arg "Sa.create: ESP needs an enc key"
   | Esp | Ah -> ());
  {
    spi;
    transform;
    auth_key;
    enc_key;
    seq = 0;
    replay_right = 0;
    replay_window = 0L;
  }

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let window_size = 64

let replay_check t seq =
  if seq <= 0 then false
  else if seq > t.replay_right then begin
    (* Slide the window right. *)
    let shift = seq - t.replay_right in
    t.replay_window <-
      (if shift >= window_size then 0L
       else Int64.shift_left t.replay_window shift);
    t.replay_window <- Int64.logor t.replay_window 1L;  (* bit 0 = seq *)
    t.replay_right <- seq;
    true
  end
  else begin
    let offset = t.replay_right - seq in
    if offset >= window_size then false  (* too old *)
    else
      let bit = Int64.shift_left 1L offset in
      if Int64.logand t.replay_window bit <> 0L then false  (* replay *)
      else begin
        t.replay_window <- Int64.logor t.replay_window bit;
        true
      end
  end

let packet_cipher t ~seq =
  Rc4.create (Printf.sprintf "%s|%ld|%d" t.enc_key t.spi seq)

let pp ppf t =
  Format.fprintf ppf "SA(spi=%ld, %s, seq=%d)" t.spi
    (match t.transform with Ah -> "AH" | Esp -> "ESP")
    t.seq
