(** Security Associations (RFC 1825 model): the keyed state shared by
    the two endpoints of an AH or ESP transform, identified by an SPI.
    Includes the sender's sequence counter and the receiver's
    anti-replay window. *)

type transform =
  | Ah  (** authentication only (HMAC-MD5-96) *)
  | Esp  (** RC4 confidentiality + HMAC-MD5-96 integrity *)

type t = {
  spi : int32;
  transform : transform;
  auth_key : string;
  enc_key : string;  (** unused for [Ah] *)
  mutable seq : int;  (** sender side: last sequence number sent *)
  mutable replay_right : int;  (** receiver: highest sequence accepted *)
  mutable replay_window : int64;  (** 64-bit sliding bitmap *)
}

val create : spi:int32 -> transform:transform -> auth_key:string ->
  ?enc_key:string -> unit -> t

(** [next_seq t] increments and returns the sender sequence number. *)
val next_seq : t -> int

(** [replay_check t seq] — receiver side: [true] if [seq] is fresh
    (not seen, within the 64-entry window), in which case the window
    is advanced.  Duplicate or too-old sequence numbers return
    [false]. *)
val replay_check : t -> int -> bool

(** Per-packet cipher keyed by (enc_key, spi, seq) so every packet has
    an independent keystream. *)
val packet_cipher : t -> seq:int -> Rc4.t

val pp : Format.formatter -> t -> unit
