lib/lpm/access.ml:
