lib/lpm/access.mli:
