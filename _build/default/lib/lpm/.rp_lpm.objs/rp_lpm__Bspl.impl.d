lib/lpm/bspl.ml: Access Array Hashtbl Int Ipaddr List Patricia Prefix Rp_pkt
