lib/lpm/cpe.ml: Access Array Hashtbl Ipaddr List Prefix Rp_pkt
