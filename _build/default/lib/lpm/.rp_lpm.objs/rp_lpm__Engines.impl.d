lib/lpm/engines.ml: Bspl Cpe Linear List Lpm_intf Patricia
