lib/lpm/linear.ml: Access List Prefix Rp_pkt
