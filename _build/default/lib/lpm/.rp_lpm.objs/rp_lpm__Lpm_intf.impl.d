lib/lpm/lpm_intf.ml: Ipaddr Prefix Rp_pkt
