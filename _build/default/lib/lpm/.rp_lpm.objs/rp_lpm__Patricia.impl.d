lib/lpm/patricia.ml: Access Ipaddr Prefix Rp_pkt
