let counter = ref 0
let enabled = ref true

let charge n = if !enabled then counter := !counter + n
let reset () = counter := 0
let get () = !counter

let measure f =
  let before = !counter in
  let result = f () in
  (result, !counter - before)

let set_enabled b = enabled := b
let is_enabled () = !enabled
