(** Binary Search on Prefix Lengths (Waldvogel et al., SIGCOMM '97) —
    the paper's fast BMP plugin ("binary search on prefix length [30]",
    section 5.1.1).

    One hash table per distinct prefix length; a balanced binary search
    tree over those lengths drives the search.  A hit at length [m]
    (real prefix or marker) carries the precomputed best-matching real
    prefix of its bit string, so the search never backtracks: worst
    case is one hash probe per search-tree level, i.e. ~log2 of the
    number of distinct lengths — 5 probes for IPv4 and 7 for IPv6 with
    fully diverse length sets, matching Table 2 of the paper.

    Mutations mark the structure dirty; it is rebuilt lazily at the
    next lookup (filter tables install in batches, so the rebuild is
    amortized over many lookups; the paper's structure was likewise
    precomputed). *)

open Rp_pkt

module Prefix_tbl = Hashtbl.Make (struct
  type t = Prefix.t

  let equal = Prefix.equal
  let hash = Prefix.hash
end)

module Addr_tbl = Hashtbl.Make (struct
  type t = Ipaddr.t

  let equal = Ipaddr.equal
  let hash = Ipaddr.hash
end)

type 'a slot = {
  mutable bmp : (Prefix.t * 'a) option;
      (** best matching real prefix of this (possibly marker) string *)
}

(* Node of the binary search tree over prefix lengths. *)
type 'a level = {
  len : int;
  table : 'a slot Addr_tbl.t;
  shorter : 'a level option;
  longer : 'a level option;
}

type 'a family = {
  mutable tree : 'a level option;
  mutable default : (Prefix.t * 'a) option;  (** the /0 entry *)
}

type 'a t = {
  real : 'a Prefix_tbl.t;
  mutable dirty : bool;
  mutable v4 : 'a family;
  mutable v6 : 'a family;
}

let name = "bspl"

let empty_family () = { tree = None; default = None }

let create () =
  {
    real = Prefix_tbl.create 64;
    dirty = false;
    v4 = empty_family ();
    v6 = empty_family ();
  }

let insert t p v =
  Prefix_tbl.replace t.real p v;
  t.dirty <- true

let remove t p =
  if Prefix_tbl.mem t.real p then begin
    Prefix_tbl.remove t.real p;
    t.dirty <- true
  end

let find_exact t p = Prefix_tbl.find_opt t.real p
let iter f t = Prefix_tbl.iter f t.real
let length t = Prefix_tbl.length t.real

let rebuild_family entries =
  let family = empty_family () in
  let default =
    List.find_opt (fun (p, _) -> p.Prefix.len = 0) entries
  in
  family.default <- default;
  let nonzero = List.filter (fun (p, _) -> p.Prefix.len > 0) entries in
  if nonzero = [] then family
  else begin
    let lengths =
      List.sort_uniq Int.compare (List.map (fun (p, _) -> p.Prefix.len) nonzero)
      |> Array.of_list
    in
    let rec build lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        Some
          {
            len = lengths.(mid);
            table = Addr_tbl.create 256;
            shorter = build lo (mid - 1);
            longer = build (mid + 1) hi;
          }
    in
    family.tree <- build 0 (Array.length lengths - 1);
    (* Patricia over the real prefixes, for BMP precomputation. *)
    let pat = Patricia.create () in
    List.iter (fun (p, v) -> Patricia.insert pat p v) nonzero;
    (match default with
     | Some (p, v) -> Patricia.insert pat p v
     | None -> ());
    let ensure_slot level addr =
      match Addr_tbl.find_opt level.table addr with
      | Some s -> s
      | None ->
        let s = { bmp = None } in
        Addr_tbl.add level.table addr s;
        s
    in
    (* Insert each real prefix, dropping markers along the BST path. *)
    let insert_one (p, _) =
      let rec walk = function
        | None -> ()
        | Some level ->
          if level.len < p.Prefix.len then begin
            let marker = Ipaddr.prefix_bits p.Prefix.addr level.len in
            ignore (ensure_slot level marker);
            walk level.longer
          end
          else if level.len > p.Prefix.len then walk level.shorter
          else ignore (ensure_slot level p.Prefix.addr)
      in
      walk family.tree
    in
    List.iter insert_one nonzero;
    (* Precompute each slot's BMP: the longest real prefix of the
       slot's bit string (length-capped Patricia lookup). *)
    let rec fill = function
      | None -> ()
      | Some level ->
        Addr_tbl.iter
          (fun addr slot -> slot.bmp <- Patricia.lookup_upto pat addr level.len)
          level.table;
        fill level.shorter;
        fill level.longer
    in
    fill family.tree;
    family
  end

let rebuild t =
  let v4_entries = ref [] and v6_entries = ref [] in
  Prefix_tbl.iter
    (fun p v ->
      if Ipaddr.width p.Prefix.addr = 32 then v4_entries := (p, v) :: !v4_entries
      else v6_entries := (p, v) :: !v6_entries)
    t.real;
  (* Suspend accounting: the rebuild's Patricia walks are construction
     cost, not lookup cost. *)
  let was_enabled = Access.is_enabled () in
  Access.set_enabled false;
  t.v4 <- rebuild_family !v4_entries;
  t.v6 <- rebuild_family !v6_entries;
  Access.set_enabled was_enabled;
  t.dirty <- false

let lookup t a =
  if t.dirty then rebuild t;
  let family = if Ipaddr.width a = 32 then t.v4 else t.v6 in
  let rec search best = function
    | None -> best
    | Some level ->
      Access.charge 1;
      let masked = Ipaddr.prefix_bits a level.len in
      (match Addr_tbl.find_opt level.table masked with
       | Some slot ->
         let best = match slot.bmp with Some _ as b -> b | None -> best in
         search best level.longer
       | None -> search best level.shorter)
  in
  search family.default family.tree

(* Worst-case number of hash probes for a lookup in the current
   structure (the depth of the length search tree). *)
let worst_case_probes t family =
  if t.dirty then rebuild t;
  let f = match family with `V4 -> t.v4 | `V6 -> t.v6 in
  let rec depth = function
    | None -> 0
    | Some level -> 1 + max (depth level.shorter) (depth level.longer)
  in
  depth f.tree
