(** Controlled Prefix Expansion (Srinivasan & Varghese, SIGMETRICS '98)
    — a fixed-stride multibit trie.  Prefixes are expanded to the next
    stride boundary; a lookup inspects one trie node per stride, so the
    worst case is [width / stride] memory accesses regardless of the
    number of prefixes ("state-of-the-art best matching prefix
    algorithm (e.g., controlled prefix expansion)", paper section
    5.1.2).

    Like {!Bspl}, the structure is rebuilt lazily after mutations. *)

open Rp_pkt

module Prefix_tbl = Hashtbl.Make (struct
  type t = Prefix.t

  let equal = Prefix.equal
  let hash = Prefix.hash
end)

type 'a node = {
  (* Per slot: best prefix covering the slot (after expansion), and an
     optional child for longer prefixes. *)
  bmps : (Prefix.t * 'a) option array;
  children : 'a node option array;
}

type 'a t = {
  stride : int;
  real : 'a Prefix_tbl.t;
  mutable dirty : bool;
  mutable v4_root : 'a node option;
  mutable v6_root : 'a node option;
  mutable v4_default : (Prefix.t * 'a) option;
  mutable v6_default : (Prefix.t * 'a) option;
}

let name = "cpe"

let default_stride = 8

let create () =
  {
    stride = default_stride;
    real = Prefix_tbl.create 64;
    dirty = false;
    v4_root = None;
    v6_root = None;
    v4_default = None;
    v6_default = None;
  }

let insert t p v =
  Prefix_tbl.replace t.real p v;
  t.dirty <- true

let remove t p =
  if Prefix_tbl.mem t.real p then begin
    Prefix_tbl.remove t.real p;
    t.dirty <- true
  end

let find_exact t p = Prefix_tbl.find_opt t.real p
let iter f t = Prefix_tbl.iter f t.real
let length t = Prefix_tbl.length t.real

let new_node stride =
  let slots = 1 lsl stride in
  { bmps = Array.make slots None; children = Array.make slots None }

(* Bits [off .. off+n-1] of an address as an integer (n <= stride <= 16). *)
let bits_at a off n =
  let rec gather acc i =
    if i = n then acc
    else
      let b = if off + i < Ipaddr.width a && Ipaddr.bit a (off + i) then 1 else 0 in
      gather ((acc lsl 1) lor b) (i + 1)
  in
  gather 0 0

let insert_built t root (p, v) =
  let stride = t.stride in
  let rec descend node depth =
    if p.Prefix.len > depth + stride then begin
      (* Full stride consumed: descend (create child) on the slot. *)
      let idx = bits_at p.Prefix.addr depth stride in
      let child =
        match node.children.(idx) with
        | Some c -> c
        | None ->
          let c = new_node stride in
          node.children.(idx) <- Some c;
          c
      in
      descend child (depth + stride)
    end
    else begin
      (* Expand: the prefix covers slots [base, base + 2^(spare)). *)
      let rem = p.Prefix.len - depth in
      let spare = stride - rem in
      let base = bits_at p.Prefix.addr depth rem lsl spare in
      for idx = base to base + (1 lsl spare) - 1 do
        match node.bmps.(idx) with
        | Some (q, _) when q.Prefix.len >= p.Prefix.len -> ()
        | Some _ | None -> node.bmps.(idx) <- Some (p, v)
      done
    end
  in
  descend root 0

let rebuild t =
  let v4 = ref [] and v6 = ref [] in
  t.v4_default <- None;
  t.v6_default <- None;
  Prefix_tbl.iter
    (fun p v ->
      if p.Prefix.len = 0 then begin
        if Ipaddr.width p.Prefix.addr = 32 then t.v4_default <- Some (p, v)
        else t.v6_default <- Some (p, v)
      end
      else if Ipaddr.width p.Prefix.addr = 32 then v4 := (p, v) :: !v4
      else v6 := (p, v) :: !v6)
    t.real;
  let build entries =
    if entries = [] then None
    else begin
      let root = new_node t.stride in
      List.iter (insert_built t root) entries;
      Some root
    end
  in
  t.v4_root <- build !v4;
  t.v6_root <- build !v6;
  t.dirty <- false

let lookup t a =
  if t.dirty then rebuild t;
  let root, default =
    if Ipaddr.width a = 32 then t.v4_root, t.v4_default
    else t.v6_root, t.v6_default
  in
  let width = Ipaddr.width a in
  let rec walk best node depth =
    match node with
    | None -> best
    | Some n ->
      Access.charge 1;
      let idx = bits_at a depth t.stride in
      let best = match n.bmps.(idx) with Some _ as b -> b | None -> best in
      if depth + t.stride >= width then best
      else walk best n.children.(idx) (depth + t.stride)
  in
  walk default root 0
