(** Registry of the available BMP engines, as first-class modules.

    The classifier's address levels select an engine by name — this is
    how the paper's "best-matching prefix plugins" are swapped without
    touching the DAG code. *)

type t = (module Lpm_intf.S)

let linear : t = (module Linear)
let patricia : t = (module Patricia)
let bspl : t = (module Bspl)
let cpe : t = (module Cpe)

let all = [ ("linear", linear); ("patricia", patricia); ("bspl", bspl); ("cpe", cpe) ]

let find name = List.assoc_opt name all

let names = List.map fst all
