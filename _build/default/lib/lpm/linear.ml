(** Reference BMP engine: an association list scanned in full.

    O(n) per lookup — this is the behaviour of the "typical filter
    algorithms used in existing implementations" the paper compares
    against (section 5.1.2), and the oracle our property tests check
    the real engines against. *)

open Rp_pkt

type 'a t = {
  mutable entries : (Prefix.t * 'a) list;
}

let name = "linear"

let create () = { entries = [] }

let insert t p v =
  t.entries <- (p, v) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) t.entries

let remove t p =
  t.entries <- List.filter (fun (q, _) -> not (Prefix.equal p q)) t.entries

let lookup t a =
  List.fold_left
    (fun acc (p, v) ->
      Access.charge 1;
      if Prefix.matches p a then
        match acc with
        | Some (bp, _) when bp.Prefix.len >= p.Prefix.len -> acc
        | Some _ | None -> Some (p, v)
      else acc)
    None t.entries

let find_exact t p =
  List.find_map (fun (q, v) -> if Prefix.equal p q then Some v else None) t.entries

let iter f t = List.iter (fun (p, v) -> f p v) t.entries
let length t = List.length t.entries
