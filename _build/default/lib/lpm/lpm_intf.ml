(** Common signature of every best-matching-prefix (BMP) engine.

    The paper treats the BMP algorithm used inside the classifier's DAG
    as a plugin in its own right (section 5.1.1: "The matching function
    itself ... is implemented as a plugin in our framework"); this
    signature is the contract those plugins implement. *)

open Rp_pkt

module type S = sig
  type 'a t

  (** Engine name, e.g. ["patricia"], ["bspl"]. *)
  val name : string

  val create : unit -> 'a t

  (** [insert t p v] binds prefix [p] to [v], replacing any previous
      binding of exactly [p]. *)
  val insert : 'a t -> Prefix.t -> 'a -> unit

  (** [remove t p] removes the binding of exactly [p], if any. *)
  val remove : 'a t -> Prefix.t -> unit

  (** [lookup t a] is the longest prefix in [t] matching [a], with its
      value. *)
  val lookup : 'a t -> Ipaddr.t -> (Prefix.t * 'a) option

  (** [find_exact t p] is the value bound to exactly [p]. *)
  val find_exact : 'a t -> Prefix.t -> 'a option

  val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
  val length : 'a t -> int
end
