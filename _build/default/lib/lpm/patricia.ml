(** PATRICIA-style path-compressed binary trie.

    This is the "slower but freely available" BMP plugin of the paper
    (section 5.1.1).  Each node stores the full prefix accumulated from
    the root, so descending a compressed path costs a single comparison
    (and is charged as a single memory access).

    Invariants: a node's prefix subsumes the prefixes of all its
    descendants, and every node with two absent children carries a
    value (spliced out otherwise). *)

open Rp_pkt

type 'a node = {
  mutable prefix : Prefix.t;
  mutable value : 'a option;
  mutable left : 'a node option;
  mutable right : 'a node option;
}

type 'a t = {
  mutable v4_root : 'a node option;
  mutable v6_root : 'a node option;
  mutable size : int;
}

let name = "patricia"

let create () = { v4_root = None; v6_root = None; size = 0 }

let leaf prefix value = { prefix; value = Some value; left = None; right = None }

let child_for node bit = if bit then node.right else node.left

let set_child node bit c =
  if bit then node.right <- Some c else node.left <- Some c

(* Longest common prefix length of two (normalized) prefixes. *)
let common_len p q =
  min
    (Ipaddr.common_prefix_len p.Prefix.addr q.Prefix.addr)
    (min p.Prefix.len q.Prefix.len)

let rec insert_node t node p v =
  if node.prefix.Prefix.len = p.Prefix.len && Prefix.equal node.prefix p then begin
    if node.value = None then t.size <- t.size + 1;
    node.value <- Some v
  end
  else begin
    (* Invariant: node.prefix subsumes p here. *)
    let bit = Ipaddr.bit p.Prefix.addr node.prefix.Prefix.len in
    match child_for node bit with
    | None ->
      set_child node bit (leaf p v);
      t.size <- t.size + 1
    | Some c ->
      let common = common_len c.prefix p in
      if common = c.prefix.Prefix.len then insert_node t c p v
      else if common = p.Prefix.len then begin
        (* p sits on the path to c: make p an ancestor of c. *)
        let n = leaf p v in
        set_child n (Ipaddr.bit c.prefix.Prefix.addr p.Prefix.len) c;
        set_child node bit n;
        t.size <- t.size + 1
      end
      else begin
        (* Paths diverge below [common]: split with an internal node. *)
        let split =
          {
            prefix = Prefix.make p.Prefix.addr common;
            value = None;
            left = None;
            right = None;
          }
        in
        set_child split (Ipaddr.bit c.prefix.Prefix.addr common) c;
        set_child split (Ipaddr.bit p.Prefix.addr common) (leaf p v);
        set_child node bit split;
        t.size <- t.size + 1
      end
  end

let root_for t a =
  if Ipaddr.width a = 32 then t.v4_root else t.v6_root

let ensure_root t p =
  let wildcard =
    if Ipaddr.width p.Prefix.addr = 32 then Prefix.any_v4 else Prefix.any_v6
  in
  match root_for t p.Prefix.addr with
  | Some r -> r
  | None ->
    let r = { prefix = wildcard; value = None; left = None; right = None } in
    if Ipaddr.width p.Prefix.addr = 32 then t.v4_root <- Some r
    else t.v6_root <- Some r;
    r

let insert t p v = insert_node t (ensure_root t p) p v

let lookup t a =
  let rec walk best = function
    | None -> best
    | Some n ->
      Access.charge 1;
      if not (Prefix.matches n.prefix a) then best
      else
        let best =
          match n.value with
          | Some v -> Some (n.prefix, v)
          | None -> best
        in
        if n.prefix.Prefix.len >= Ipaddr.width a then best
        else walk best (child_for n (Ipaddr.bit a n.prefix.Prefix.len))
  in
  walk None (root_for t a)

(* Longest matching prefix of length at most [cap]; used by the BSPL
   engine to precompute marker BMPs. *)
let lookup_upto t a cap =
  let rec walk best = function
    | None -> best
    | Some n ->
      Access.charge 1;
      if n.prefix.Prefix.len > cap || not (Prefix.matches n.prefix a) then best
      else
        let best =
          match n.value with
          | Some v -> Some (n.prefix, v)
          | None -> best
        in
        if n.prefix.Prefix.len >= Ipaddr.width a then best
        else walk best (child_for n (Ipaddr.bit a n.prefix.Prefix.len))
  in
  walk None (root_for t a)

(* Structural queries used by the set-pruning DAG (not part of the
   generic LPM signature). *)

(* Every entry whose prefix is subsumed by [p] (including [p] itself),
   in O(path + subtree). *)
let iter_subtree t p f =
  let rec descend n =
    (match n.value with
     | Some v -> if Prefix.subsumes p n.prefix then f n.prefix v
     | None -> ());
    let visit = function
      | Some c ->
        (* Prune: only descend where the subtree can intersect p. *)
        if c.prefix.Prefix.len <= p.Prefix.len then begin
          if Prefix.subsumes c.prefix p then descend c
        end
        else if Prefix.subsumes p c.prefix then descend c
      | None -> ()
    in
    visit n.left;
    visit n.right
  in
  match root_for t p.Prefix.addr with
  | Some r ->
    if Prefix.subsumes r.prefix p || Prefix.subsumes p r.prefix then descend r
  | None -> ()

(* Every entry whose prefix subsumes [p] (including [p] itself), in
   O(path). *)
let fold_ancestors t p f acc =
  let rec walk acc = function
    | None -> acc
    | Some n ->
      if not (Prefix.subsumes n.prefix p) then acc
      else
        let acc =
          match n.value with
          | Some v -> f n.prefix v acc
          | None -> acc
        in
        if n.prefix.Prefix.len >= p.Prefix.len then acc
        else walk acc (child_for n (Ipaddr.bit p.Prefix.addr n.prefix.Prefix.len))
  in
  walk acc (root_for t p.Prefix.addr)

let find_exact t p =
  let rec walk = function
    | None -> None
    | Some n ->
      if Prefix.equal n.prefix p then n.value
      else if
        n.prefix.Prefix.len >= p.Prefix.len || not (Prefix.subsumes n.prefix p)
      then None
      else walk (child_for n (Ipaddr.bit p.Prefix.addr n.prefix.Prefix.len))
  in
  walk (root_for t p.Prefix.addr)

(* Splice out valueless nodes with at most one child (the root is kept
   as an anchor). *)
let rec remove_node t node p =
  if Prefix.equal node.prefix p then begin
    if node.value <> None then t.size <- t.size - 1;
    node.value <- None
  end
  else if node.prefix.Prefix.len < p.Prefix.len && Prefix.subsumes node.prefix p
  then begin
    let bit = Ipaddr.bit p.Prefix.addr node.prefix.Prefix.len in
    (match child_for node bit with
     | None -> ()
     | Some c ->
       remove_node t c p;
       if c.value = None then begin
         match c.left, c.right with
         | None, None -> if bit then node.right <- None else node.left <- None
         | Some only, None | None, Some only -> set_child node bit only
         | Some _, Some _ -> ()
       end)
  end

let remove t p =
  match root_for t p.Prefix.addr with
  | None -> ()
  | Some r -> remove_node t r p

let iter f t =
  let rec walk = function
    | None -> ()
    | Some n ->
      (match n.value with Some v -> f n.prefix v | None -> ());
      walk n.left;
      walk n.right
  in
  walk t.v4_root;
  walk t.v6_root

let length t = t.size
