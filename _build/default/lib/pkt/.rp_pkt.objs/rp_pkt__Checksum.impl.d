lib/pkt/checksum.ml: Bytes Char
