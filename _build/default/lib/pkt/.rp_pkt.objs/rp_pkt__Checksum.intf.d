lib/pkt/checksum.mli: Bytes
