lib/pkt/flow_key.ml: Format Int Ipaddr Printf Proto
