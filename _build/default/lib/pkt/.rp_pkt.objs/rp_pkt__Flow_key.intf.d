lib/pkt/flow_key.mli: Format Ipaddr
