lib/pkt/frag.ml: Bytes Flow_key Hashtbl Int Int64 Ipaddr Ipv4_header Ipv6_header List Mbuf Option
