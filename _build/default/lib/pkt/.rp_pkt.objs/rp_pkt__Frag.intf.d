lib/pkt/frag.mli: Ipaddr Mbuf
