lib/pkt/icmp.ml: Bytes Char Checksum Format Option Printf String
