lib/pkt/ipaddr.ml: Array Buffer Bytes Format Int32 Int64 List Printf String
