lib/pkt/ipaddr.mli: Bytes Format
