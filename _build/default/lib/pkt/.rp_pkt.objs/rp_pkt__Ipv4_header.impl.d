lib/pkt/ipv4_header.ml: Bytes Char Checksum Format Ipaddr Proto
