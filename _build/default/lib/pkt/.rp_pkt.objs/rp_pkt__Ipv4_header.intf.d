lib/pkt/ipv4_header.mli: Bytes Format Ipaddr
