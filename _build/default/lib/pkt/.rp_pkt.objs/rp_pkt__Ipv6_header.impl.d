lib/pkt/ipv6_header.ml: Bytes Char Format Ipaddr List Proto String
