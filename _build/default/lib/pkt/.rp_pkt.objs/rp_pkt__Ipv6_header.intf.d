lib/pkt/ipv6_header.mli: Bytes Format Ipaddr
