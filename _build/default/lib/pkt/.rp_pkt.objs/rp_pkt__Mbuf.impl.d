lib/pkt/mbuf.ml: Bytes Char Flow_key Format Ipaddr Ipv4_header Ipv6_header List Printf Proto Result String Tcp_header Udp_header
