lib/pkt/mbuf.mli: Bytes Flow_key Format Ipaddr Ipv4_header Ipv6_header Tcp_header Udp_header
