lib/pkt/prefix.ml: Format Int Ipaddr Printf String
