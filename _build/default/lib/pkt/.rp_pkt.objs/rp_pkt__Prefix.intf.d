lib/pkt/prefix.mli: Format Ipaddr
