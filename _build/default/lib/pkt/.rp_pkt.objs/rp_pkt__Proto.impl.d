lib/pkt/proto.ml: Format
