lib/pkt/proto.mli: Format
