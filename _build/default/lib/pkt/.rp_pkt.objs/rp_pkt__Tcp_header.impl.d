lib/pkt/tcp_header.ml: Bytes Char Format
