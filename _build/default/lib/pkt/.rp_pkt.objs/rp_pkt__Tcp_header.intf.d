lib/pkt/tcp_header.mli: Bytes Format
