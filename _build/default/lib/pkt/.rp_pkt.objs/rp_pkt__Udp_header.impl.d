lib/pkt/udp_header.ml: Bytes Char Checksum Format Ipaddr Proto
