lib/pkt/udp_header.mli: Bytes Format Ipaddr
