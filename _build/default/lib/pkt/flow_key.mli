(** The fully specified six-tuple identifying an end-to-end flow:
    [<source address, destination address, protocol, source port,
    destination port, incoming interface>] (paper, section 3).

    Flow-table entries are keyed by this tuple with no wildcards. *)

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
}

val make :
  src:Ipaddr.t -> dst:Ipaddr.t -> proto:int -> sport:int -> dport:int ->
  iface:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Deliberately cheap hash over the five header fields (the paper's
    flow-table hash runs in 17 cycles on a Pentium; see section 5.2).
    The incoming interface is not hashed, matching the paper's use of
    the five-tuple for the hash index. *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
