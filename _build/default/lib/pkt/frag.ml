let header_size (m : Mbuf.t) =
  match m.Mbuf.version with
  | Mbuf.V4 -> Ipv4_header.size
  | Mbuf.V6 -> Ipv6_header.size

let needs_fragmentation (m : Mbuf.t) ~mtu = m.Mbuf.len > mtu

let fragment (m : Mbuf.t) ~mtu =
  if not (needs_fragmentation m ~mtu) then Ok [ m ]
  else
    match m.Mbuf.version with
    | Mbuf.V6 -> Error `V6_never_fragments
    | Mbuf.V4 when m.Mbuf.dont_fragment -> Error `Dont_fragment
    | Mbuf.V4 ->
      let hdr = header_size m in
      let payload_len = m.Mbuf.len - hdr in
      (* Per-fragment payload: multiple of 8, at least 8. *)
      let chunk = max 8 ((mtu - hdr) land lnot 7) in
      let base_offset, last_has_more =
        match m.Mbuf.frag with
        | Some f -> (f.Mbuf.offset, f.Mbuf.more)
        | None -> (0, false)
      in
      let rec split acc off =
        if off >= payload_len then List.rev acc
        else
          let this = min chunk (payload_len - off) in
          let more = off + this < payload_len || last_has_more in
          let fm = Mbuf.synth ~ttl:m.Mbuf.ttl ~tos:m.Mbuf.tos ~key:m.Mbuf.key
              ~len:(hdr + this) ()
          in
          fm.Mbuf.ident <- m.Mbuf.ident;
          fm.Mbuf.seq <- m.Mbuf.seq;
          fm.Mbuf.out_iface <- m.Mbuf.out_iface;
          fm.Mbuf.next_hop <- m.Mbuf.next_hop;
          fm.Mbuf.birth_ns <- m.Mbuf.birth_ns;
          fm.Mbuf.tags <- m.Mbuf.tags;
          fm.Mbuf.frag <- Some { Mbuf.offset = base_offset + off; more };
          (match m.Mbuf.raw with
           | Some raw ->
             (* Real wire fragment: fresh IPv4 header + payload slice. *)
             let buf = Bytes.create (hdr + this) in
             let h =
               Ipv4_header.default ~tos:m.Mbuf.tos ~ident:m.Mbuf.ident
                 ~ttl:m.Mbuf.ttl ~total_length:(hdr + this)
                 ~proto:m.Mbuf.key.Flow_key.proto ~src:m.Mbuf.key.Flow_key.src
                 ~dst:m.Mbuf.key.Flow_key.dst ()
             in
             Ipv4_header.serialize
               {
                 h with
                 Ipv4_header.more_fragments = more;
                 fragment_offset = (base_offset + off) / 8;
               }
               buf 0;
             Bytes.blit raw (hdr + off) buf hdr this;
             fm.Mbuf.raw <- Some buf
           | None -> ());
          split (fm :: acc) (off + this)
      in
      Ok (split [] 0)

module Reassembly = struct
  type datagram = {
    mutable chunks : (int * int * Bytes.t option) list;
        (** (offset, payload length, wire payload) *)
    mutable total : int option;  (** known once the last fragment arrives *)
    mutable first_seen_ns : int64;
    template : Mbuf.t;  (** header fields for the rebuilt datagram *)
  }

  type key = {
    src : Ipaddr.t;
    dst : Ipaddr.t;
    proto : int;
    ident : int;
  }

  module KT = Hashtbl.Make (struct
    type t = key

    let equal a b =
      a.proto = b.proto && a.ident = b.ident && Ipaddr.equal a.src b.src
      && Ipaddr.equal a.dst b.dst

    let hash k = Ipaddr.hash k.src lxor (Ipaddr.hash k.dst * 3) lxor (k.ident * 65537) lxor k.proto
  end)

  type t = {
    timeout_ns : int64;
    table : datagram KT.t;
  }

  let create ?(timeout_ns = 30_000_000_000L) () =
    { timeout_ns; table = KT.create 32 }

  let key_of (m : Mbuf.t) =
    {
      src = m.Mbuf.key.Flow_key.src;
      dst = m.Mbuf.key.Flow_key.dst;
      proto = m.Mbuf.key.Flow_key.proto;
      ident = m.Mbuf.ident;
    }

  let pending t = KT.length t.table

  (* Is [0, total) fully covered by the chunks? *)
  let complete d =
    match d.total with
    | None -> false
    | Some total ->
      let sorted = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) d.chunks in
      let rec walk edge = function
        | [] -> edge >= total
        | (off, len, _) :: rest ->
          if off > edge then false else walk (max edge (off + len)) rest
      in
      walk 0 sorted

  let rebuild d =
    let total = Option.get d.total in
    let hdr = header_size d.template in
    let m =
      Mbuf.synth ~ttl:d.template.Mbuf.ttl ~tos:d.template.Mbuf.tos
        ~key:d.template.Mbuf.key ~len:(hdr + total) ()
    in
    m.Mbuf.ident <- d.template.Mbuf.ident;
    m.Mbuf.seq <- d.template.Mbuf.seq;
    m.Mbuf.birth_ns <- d.template.Mbuf.birth_ns;
    m.Mbuf.tags <- d.template.Mbuf.tags;
    (* Rebuild wire bytes when every chunk carried them. *)
    if List.for_all (fun (_, _, b) -> b <> None) d.chunks then begin
      let buf = Bytes.create (hdr + total) in
      let h =
        Ipv4_header.default ~tos:d.template.Mbuf.tos
          ~ident:d.template.Mbuf.ident ~ttl:d.template.Mbuf.ttl
          ~total_length:(hdr + total) ~proto:d.template.Mbuf.key.Flow_key.proto
          ~src:d.template.Mbuf.key.Flow_key.src
          ~dst:d.template.Mbuf.key.Flow_key.dst ()
      in
      Ipv4_header.serialize h buf 0;
      List.iter
        (fun (off, len, bytes) ->
          match bytes with
          | Some b -> Bytes.blit b 0 buf (hdr + off) len
          | None -> ())
        d.chunks;
      m.Mbuf.raw <- Some buf
    end;
    m

  let offer t ~now (m : Mbuf.t) =
    match m.Mbuf.frag with
    | None -> Some m
    | Some f ->
      let k = key_of m in
      let d =
        match KT.find_opt t.table k with
        | Some d -> d
        | None ->
          let d =
            { chunks = []; total = None; first_seen_ns = now; template = m }
          in
          KT.add t.table k d;
          d
      in
      let hdr = header_size m in
      let plen = m.Mbuf.len - hdr in
      let payload =
        Option.map (fun raw -> Bytes.sub raw hdr plen) m.Mbuf.raw
      in
      (* Duplicate fragments are replaced, not double counted. *)
      d.chunks <-
        (f.Mbuf.offset, plen, payload)
        :: List.filter (fun (off, _, _) -> off <> f.Mbuf.offset) d.chunks;
      if not f.Mbuf.more then d.total <- Some (f.Mbuf.offset + plen);
      if complete d then begin
        KT.remove t.table k;
        Some (rebuild d)
      end
      else None

  let expire t ~now =
    let stale = ref [] in
    KT.iter
      (fun k d ->
        if Int64.sub now d.first_seen_ns > t.timeout_ns then stale := k :: !stale)
      t.table;
    List.iter (KT.remove t.table) !stale;
    List.length !stale
end
