(** IPv4 fragmentation and reassembly.

    Routers fragment IPv4 datagrams that exceed the egress MTU (unless
    DF is set); IPv6 routers never fragment — the source must.  The
    reassembler is the endpoint-side counterpart, keyed by
    (source, destination, protocol, identification), with a timeout. *)

open! Ipaddr

(** [fragment m ~mtu] splits [m] into fragments that fit [mtu].
    Fragment payload sizes are multiples of 8 bytes except the last.
    Fails when the datagram cannot be fragmented (IPv6, or DF set).
    The input must itself be unfragmented or a fragment — offsets
    compose.  When [m.raw] is present, real per-fragment wire bytes
    (with correct IPv4 headers) are produced. *)
val fragment :
  Mbuf.t -> mtu:int -> (Mbuf.t list, [ `Dont_fragment | `V6_never_fragments ]) result

(** [needs_fragmentation m ~mtu]. *)
val needs_fragmentation : Mbuf.t -> mtu:int -> bool

module Reassembly : sig
  type t

  (** [create ()] — [timeout_ns] defaults to 30 s (the classic
      reassembly timer). *)
  val create : ?timeout_ns:int64 -> unit -> t

  (** [offer t ~now m] accepts a packet.  Unfragmented packets are
      returned immediately; fragments are buffered, and the completed
      datagram is returned when the last hole closes. *)
  val offer : t -> now:int64 -> Mbuf.t -> Mbuf.t option

  (** Datagrams currently incomplete. *)
  val pending : t -> int

  (** Drop incomplete datagrams older than the timeout; returns how
      many were discarded. *)
  val expire : t -> now:int64 -> int
end
