type message =
  | Echo_request of { ident : int; seq : int }
  | Echo_reply of { ident : int; seq : int }
  | Dest_unreachable of unreachable_code
  | Time_exceeded
  | Packet_too_big of int
  | Param_problem of int

and unreachable_code =
  | Net_unreachable
  | Host_unreachable
  | Proto_unreachable
  | Port_unreachable
  | Admin_prohibited

let unreachable_code_v4 = function
  | Net_unreachable -> 0
  | Host_unreachable -> 1
  | Proto_unreachable -> 2
  | Port_unreachable -> 3
  | Admin_prohibited -> 13

let unreachable_of_v4 = function
  | 0 -> Some Net_unreachable
  | 1 -> Some Host_unreachable
  | 2 -> Some Proto_unreachable
  | 3 -> Some Port_unreachable
  | 13 -> Some Admin_prohibited
  | _ -> None

let unreachable_code_v6 = function
  | Net_unreachable -> 0
  | Admin_prohibited -> 1
  | Host_unreachable -> 3
  | Port_unreachable -> 4
  | Proto_unreachable -> 4
  (* v6 folds protocol into port unreachable *)

let unreachable_of_v6 = function
  | 0 -> Some Net_unreachable
  | 1 -> Some Admin_prohibited
  | 3 -> Some Host_unreachable
  | 4 -> Some Port_unreachable
  | _ -> None

let type_code ~family m =
  match family, m with
  | `V4, Echo_request _ -> (8, 0)
  | `V4, Echo_reply _ -> (0, 0)
  | `V4, Dest_unreachable c -> (3, unreachable_code_v4 c)
  | `V4, Time_exceeded -> (11, 0)
  | `V4, Packet_too_big _ -> (3, 4)  (* fragmentation needed and DF set *)
  | `V4, Param_problem _ -> (12, 0)
  | `V6, Echo_request _ -> (128, 0)
  | `V6, Echo_reply _ -> (129, 0)
  | `V6, Dest_unreachable c -> (1, unreachable_code_v6 c)
  | `V6, Time_exceeded -> (3, 0)
  | `V6, Packet_too_big _ -> (2, 0)
  | `V6, Param_problem _ -> (4, 0)

let of_type_code ~family ty code ~ident ~seq ~mtu ~pointer =
  match family, ty, code with
  | `V4, 8, 0 -> Some (Echo_request { ident; seq })
  | `V4, 0, 0 -> Some (Echo_reply { ident; seq })
  | `V4, 3, 4 -> Some (Packet_too_big mtu)
  | `V4, 3, c -> Option.map (fun u -> Dest_unreachable u) (unreachable_of_v4 c)
  | `V4, 11, _ -> Some Time_exceeded
  | `V4, 12, _ -> Some (Param_problem pointer)
  | `V6, 128, 0 -> Some (Echo_request { ident; seq })
  | `V6, 129, 0 -> Some (Echo_reply { ident; seq })
  | `V6, 1, c -> Option.map (fun u -> Dest_unreachable u) (unreachable_of_v6 c)
  | `V6, 2, _ -> Some (Packet_too_big mtu)
  | `V6, 3, _ -> Some Time_exceeded
  | `V6, 4, _ -> Some (Param_problem pointer)
  | _, _, _ -> None

type t = {
  message : message;
  payload : string;
}

type error = Truncated | Bad_checksum | Unknown_type of int * int

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated ICMP message"
  | Bad_checksum -> Format.pp_print_string ppf "bad ICMP checksum"
  | Unknown_type (t, c) -> Format.fprintf ppf "unknown ICMP type %d code %d" t c

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let u16 buf off =
  Char.code (Bytes.get buf off) * 256 + Char.code (Bytes.get buf (off + 1))

(* The second 32-bit word carries the type-specific data. *)
let word2 = function
  | Echo_request { ident; seq } | Echo_reply { ident; seq } ->
    (ident lsl 16) lor (seq land 0xFFFF)
  | Dest_unreachable _ | Time_exceeded -> 0
  | Packet_too_big mtu -> mtu land 0xFFFFFFFF
  | Param_problem ptr -> (ptr land 0xFF) lsl 24

let serialize ~family t =
  let ty, code = type_code ~family t.message in
  let len = 8 + String.length t.payload in
  let buf = Bytes.create len in
  Bytes.set buf 0 (Char.chr ty);
  Bytes.set buf 1 (Char.chr code);
  set_u16 buf 2 0;
  let w2 = word2 t.message in
  set_u16 buf 4 ((w2 lsr 16) land 0xFFFF);
  set_u16 buf 6 (w2 land 0xFFFF);
  Bytes.blit_string t.payload 0 buf 8 (String.length t.payload);
  set_u16 buf 2 (Checksum.compute buf 0 len);
  buf

let parse ~family buf =
  if Bytes.length buf < 8 then Error Truncated
  else if not (Checksum.valid buf 0 (Bytes.length buf)) then Error Bad_checksum
  else begin
    let ty = Char.code (Bytes.get buf 0) in
    let code = Char.code (Bytes.get buf 1) in
    let hi = u16 buf 4 and lo = u16 buf 6 in
    let mtu = (hi lsl 16) lor lo in
    match
      of_type_code ~family ty code ~ident:hi ~seq:lo ~mtu ~pointer:(hi lsr 8)
    with
    | Some message ->
      Ok { message; payload = Bytes.sub_string buf 8 (Bytes.length buf - 8) }
    | None -> Error (Unknown_type (ty, code))
  end

let pp ppf t =
  let s =
    match t.message with
    | Echo_request { ident; seq } -> Printf.sprintf "echo request %d/%d" ident seq
    | Echo_reply { ident; seq } -> Printf.sprintf "echo reply %d/%d" ident seq
    | Dest_unreachable Net_unreachable -> "net unreachable"
    | Dest_unreachable Host_unreachable -> "host unreachable"
    | Dest_unreachable Proto_unreachable -> "protocol unreachable"
    | Dest_unreachable Port_unreachable -> "port unreachable"
    | Dest_unreachable Admin_prohibited -> "administratively prohibited"
    | Time_exceeded -> "time exceeded"
    | Packet_too_big mtu -> Printf.sprintf "packet too big (mtu %d)" mtu
    | Param_problem p -> Printf.sprintf "parameter problem at %d" p
  in
  Format.pp_print_string ppf s
