(** ICMP / ICMPv6 error and echo messages (RFC 792 / RFC 1885) — the
    control messages a router generates when it drops traffic (TTL
    exceeded, no route, administratively prohibited, fragmentation
    needed). *)

type message =
  | Echo_request of { ident : int; seq : int }
  | Echo_reply of { ident : int; seq : int }
  | Dest_unreachable of unreachable_code
  | Time_exceeded
  | Packet_too_big of int  (** next-hop MTU *)
  | Param_problem of int  (** pointer/offset into the offending packet *)

and unreachable_code =
  | Net_unreachable
  | Host_unreachable
  | Proto_unreachable
  | Port_unreachable
  | Admin_prohibited

(** Wire type/code for the given family. *)
val type_code : family:[ `V4 | `V6 ] -> message -> int * int

val of_type_code : family:[ `V4 | `V6 ] -> int -> int -> ident:int -> seq:int -> mtu:int -> pointer:int -> message option

type t = {
  message : message;
  (* First bytes of the packet that triggered the error (errors only;
     empty for echo). *)
  payload : string;
}

type error = Truncated | Bad_checksum | Unknown_type of int * int

val pp_error : Format.formatter -> error -> unit

(** Serialize/parse.  The checksum covers the whole ICMP message; for
    ICMPv6 a pseudo-header would also be included on a real wire — we
    follow the v4 rule in both families, documented simplification. *)
val serialize : family:[ `V4 | `V6 ] -> t -> Bytes.t

val parse : family:[ `V4 | `V6 ] -> Bytes.t -> (t, error) result

val pp : Format.formatter -> t -> unit
