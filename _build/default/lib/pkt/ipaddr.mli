(** IPv4 and IPv6 addresses.

    Addresses are immutable values.  IPv4 addresses are stored in a
    host-order [int32]; IPv6 addresses as two host-order [int64] words
    (high 64 bits first).  Bit 0 of an address is the most significant
    bit of the first octet, matching the usual prefix notation. *)

type t =
  | V4 of int32
  | V6 of int64 * int64  (** [(hi, lo)] *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [width a] is the number of bits of the address: 32 or 128. *)
val width : t -> int

(** [bit a i] is bit [i] of [a], where bit 0 is the most significant
    bit.  @raise Invalid_argument if [i] is out of range. *)
val bit : t -> int -> bool

(** [prefix_bits a n] keeps the first [n] bits of [a] and zeroes the
    rest.  @raise Invalid_argument if [n] is out of range. *)
val prefix_bits : t -> int -> t

(** [common_prefix_len a b] is the length of the longest common prefix
    of [a] and [b].  @raise Invalid_argument if the families differ. *)
val common_prefix_len : t -> t -> int

val v4 : int -> int -> int -> int -> t

(** [v6 w0 w1 w2 w3] builds an IPv6 address from four 32-bit groups,
    most significant first. *)
val v6 : int32 -> int32 -> int32 -> int32 -> t

val v4_of_int32 : int32 -> t
val is_v4 : t -> bool
val is_v6 : t -> bool

(** Textual conversion.  IPv4 uses dotted-quad notation; IPv6 uses
    colon-hex with [::] compression of the longest zero run. *)
val to_string : t -> string

(** [of_string s] parses either family.  Raises [Invalid_argument] on
    malformed input; see {!of_string_opt} for the non-raising variant. *)
val of_string : string -> t

val of_string_opt : string -> t option
val pp : Format.formatter -> t -> unit

(** Serialization to/from network-order bytes (4 or 16 octets). *)

val to_bytes : t -> Bytes.t
val write : t -> Bytes.t -> int -> unit
val read_v4 : Bytes.t -> int -> t
val read_v6 : Bytes.t -> int -> t

(** The all-zero address of each family. *)

val zero_v4 : t
val zero_v6 : t
