type t = {
  tos : int;
  total_length : int;
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  fragment_offset : int;
  ttl : int;
  proto : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
}

let size = 20

type error =
  | Truncated
  | Bad_version of int
  | Bad_ihl of int
  | Bad_checksum
  | Bad_length of int

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated IPv4 header"
  | Bad_version v -> Format.fprintf ppf "bad IP version %d" v
  | Bad_ihl i -> Format.fprintf ppf "unsupported IHL %d" i
  | Bad_checksum -> Format.pp_print_string ppf "bad IPv4 header checksum"
  | Bad_length l -> Format.fprintf ppf "bad total length %d" l

let u8 buf off = Char.code (Bytes.get buf off)
let u16 buf off = Char.code (Bytes.get buf off) * 256 + Char.code (Bytes.get buf (off + 1))

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let parse buf off =
  if Bytes.length buf - off < size then Error Truncated
  else
    let vihl = u8 buf off in
    let version = vihl lsr 4 in
    let ihl = vihl land 0xF in
    if version <> 4 then Error (Bad_version version)
    else if ihl <> 5 then Error (Bad_ihl ihl)
    else if not (Checksum.valid buf off size) then Error Bad_checksum
    else
      let total_length = u16 buf (off + 2) in
      if total_length < size then Error (Bad_length total_length)
      else
        let flags_frag = u16 buf (off + 6) in
        Ok
          {
            tos = u8 buf (off + 1);
            total_length;
            ident = u16 buf (off + 4);
            dont_fragment = flags_frag land 0x4000 <> 0;
            more_fragments = flags_frag land 0x2000 <> 0;
            fragment_offset = flags_frag land 0x1FFF;
            ttl = u8 buf (off + 8);
            proto = u8 buf (off + 9);
            src = Ipaddr.read_v4 buf (off + 12);
            dst = Ipaddr.read_v4 buf (off + 16);
          }

let serialize t buf off =
  Bytes.set buf off (Char.chr 0x45);
  Bytes.set buf (off + 1) (Char.chr (t.tos land 0xFF));
  set_u16 buf (off + 2) t.total_length;
  set_u16 buf (off + 4) t.ident;
  let flags =
    (if t.dont_fragment then 0x4000 else 0)
    lor (if t.more_fragments then 0x2000 else 0)
    lor (t.fragment_offset land 0x1FFF)
  in
  set_u16 buf (off + 6) flags;
  Bytes.set buf (off + 8) (Char.chr (t.ttl land 0xFF));
  Bytes.set buf (off + 9) (Char.chr (t.proto land 0xFF));
  set_u16 buf (off + 10) 0;
  Ipaddr.write t.src buf (off + 12);
  Ipaddr.write t.dst buf (off + 16);
  set_u16 buf (off + 10) (Checksum.compute buf off size)

let default ?(tos = 0) ?(ident = 0) ?(ttl = 64) ~total_length ~proto ~src ~dst () =
  if not (Ipaddr.is_v4 src && Ipaddr.is_v4 dst) then
    invalid_arg "Ipv4_header.default: addresses must be IPv4";
  {
    tos;
    total_length;
    ident;
    dont_fragment = false;
    more_fragments = false;
    fragment_offset = 0;
    ttl;
    proto;
    src;
    dst;
  }

let pp ppf t =
  Format.fprintf ppf "IPv4{%a -> %a proto=%a len=%d ttl=%d}" Ipaddr.pp t.src
    Ipaddr.pp t.dst Proto.pp t.proto t.total_length t.ttl
