(** IPv4 header (RFC 791), without options (IHL = 5). *)

type t = {
  tos : int;
  total_length : int;
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  fragment_offset : int;  (** in 8-byte units *)
  ttl : int;
  proto : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
}

val size : int
(** Header size in bytes (20). *)

type error =
  | Truncated
  | Bad_version of int
  | Bad_ihl of int
  | Bad_checksum
  | Bad_length of int

val pp_error : Format.formatter -> error -> unit

(** [parse buf off] reads and validates a header (including its
    checksum) at [off]. *)
val parse : Bytes.t -> int -> (t, error) result

(** [serialize t buf off] writes the header, computing the checksum.
    [buf] must have at least {!size} bytes at [off]. *)
val serialize : t -> Bytes.t -> int -> unit

val default :
  ?tos:int -> ?ident:int -> ?ttl:int -> total_length:int -> proto:int ->
  src:Ipaddr.t -> dst:Ipaddr.t -> unit -> t

val pp : Format.formatter -> t -> unit
