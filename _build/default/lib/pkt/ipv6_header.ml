type t = {
  traffic_class : int;
  flow_label : int;
  payload_length : int;
  next_header : int;
  hop_limit : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
}

let size = 40

type error =
  | Truncated
  | Bad_version of int
  | Bad_option_length

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated IPv6 header"
  | Bad_version v -> Format.fprintf ppf "bad IP version %d" v
  | Bad_option_length -> Format.pp_print_string ppf "bad option length"

let u8 buf off = Char.code (Bytes.get buf off)
let u16 buf off = u8 buf off * 256 + u8 buf (off + 1)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let parse buf off =
  if Bytes.length buf - off < size then Error Truncated
  else
    let b0 = u8 buf off in
    let version = b0 lsr 4 in
    if version <> 6 then Error (Bad_version version)
    else
      let b1 = u8 buf (off + 1) in
      Ok
        {
          traffic_class = ((b0 land 0xF) lsl 4) lor (b1 lsr 4);
          flow_label = ((b1 land 0xF) lsl 16) lor u16 buf (off + 2);
          payload_length = u16 buf (off + 4);
          next_header = u8 buf (off + 6);
          hop_limit = u8 buf (off + 7);
          src = Ipaddr.read_v6 buf (off + 8);
          dst = Ipaddr.read_v6 buf (off + 24);
        }

let serialize t buf off =
  Bytes.set buf off (Char.chr (0x60 lor ((t.traffic_class lsr 4) land 0xF)));
  Bytes.set buf (off + 1)
    (Char.chr (((t.traffic_class land 0xF) lsl 4) lor ((t.flow_label lsr 16) land 0xF)));
  set_u16 buf (off + 2) (t.flow_label land 0xFFFF);
  set_u16 buf (off + 4) t.payload_length;
  Bytes.set buf (off + 6) (Char.chr (t.next_header land 0xFF));
  Bytes.set buf (off + 7) (Char.chr (t.hop_limit land 0xFF));
  Ipaddr.write t.src buf (off + 8);
  Ipaddr.write t.dst buf (off + 24)

let default ?(traffic_class = 0) ?(flow_label = 0) ?(hop_limit = 64)
    ~payload_length ~next_header ~src ~dst () =
  if not (Ipaddr.is_v6 src && Ipaddr.is_v6 dst) then
    invalid_arg "Ipv6_header.default: addresses must be IPv6";
  { traffic_class; flow_label; payload_length; next_header; hop_limit; src; dst }

let pp ppf t =
  Format.fprintf ppf "IPv6{%a -> %a nh=%a plen=%d hl=%d fl=%#x}" Ipaddr.pp
    t.src Ipaddr.pp t.dst Proto.pp t.next_header t.payload_length t.hop_limit
    t.flow_label

module Option_tlv = struct
  type t =
    | Pad1
    | Padn of int
    | Router_alert of int
    | Jumbo_payload of int
    | Unknown of int * string

  let type_pad1 = 0
  let type_padn = 1
  let type_router_alert = 5
  let type_jumbo = 0xC2

  let option_type = function
    | Pad1 -> type_pad1
    | Padn _ -> type_padn
    | Router_alert _ -> type_router_alert
    | Jumbo_payload _ -> type_jumbo
    | Unknown (ty, _) -> ty

  let serialized_length = function
    | Pad1 -> 1
    | Padn n -> n
    | Router_alert _ -> 4
    | Jumbo_payload _ -> 6
    | Unknown (_, body) -> 2 + String.length body

  let parse_all buf off len =
    let last = off + len in
    let rec loop acc i =
      if i >= last then Ok (List.rev acc)
      else
        let ty = u8 buf i in
        if ty = type_pad1 then loop (Pad1 :: acc) (i + 1)
        else if i + 1 >= last then Error Bad_option_length
        else
          let olen = u8 buf (i + 1) in
          if i + 2 + olen > last then Error Bad_option_length
          else
            let opt =
              if ty = type_padn then Some (Padn (olen + 2))
              else if ty = type_router_alert && olen = 2 then
                Some (Router_alert (u16 buf (i + 2)))
              else if ty = type_jumbo && olen = 4 then
                Some
                  (Jumbo_payload
                     ((u16 buf (i + 2) lsl 16) lor u16 buf (i + 4)))
              else Some (Unknown (ty, Bytes.sub_string buf (i + 2) olen))
            in
            (match opt with
             | Some o -> loop (o :: acc) (i + 2 + olen)
             | None -> Error Bad_option_length)
    in
    loop [] off

  let serialize_one buf off = function
    | Pad1 ->
      Bytes.set buf off '\000';
      1
    | Padn n ->
      Bytes.set buf off (Char.chr type_padn);
      Bytes.set buf (off + 1) (Char.chr (n - 2));
      for i = 2 to n - 1 do
        Bytes.set buf (off + i) '\000'
      done;
      n
    | Router_alert v ->
      Bytes.set buf off (Char.chr type_router_alert);
      Bytes.set buf (off + 1) '\002';
      set_u16 buf (off + 2) v;
      4
    | Jumbo_payload v ->
      Bytes.set buf off (Char.chr type_jumbo);
      Bytes.set buf (off + 1) '\004';
      set_u16 buf (off + 2) ((v lsr 16) land 0xFFFF);
      set_u16 buf (off + 4) (v land 0xFFFF);
      6
    | Unknown (ty, body) ->
      Bytes.set buf off (Char.chr (ty land 0xFF));
      Bytes.set buf (off + 1) (Char.chr (String.length body land 0xFF));
      Bytes.blit_string body 0 buf (off + 2) (String.length body);
      2 + String.length body

  let serialize_all opts =
    let len = List.fold_left (fun acc o -> acc + serialized_length o) 0 opts in
    let buf = Bytes.create len in
    let off = List.fold_left (fun off o -> off + serialize_one buf off o) 0 opts in
    assert (off = len);
    buf

  let pp ppf = function
    | Pad1 -> Format.pp_print_string ppf "Pad1"
    | Padn n -> Format.fprintf ppf "PadN(%d)" n
    | Router_alert v -> Format.fprintf ppf "RouterAlert(%d)" v
    | Jumbo_payload v -> Format.fprintf ppf "Jumbo(%d)" v
    | Unknown (ty, body) -> Format.fprintf ppf "Opt(%d,%d bytes)" ty (String.length body)
end

module Hop_by_hop = struct
  type hbh = {
    next_header : int;
    options : Option_tlv.t list;
  }

  type t = hbh = {
    next_header : int;
    options : Option_tlv.t list;
  }

  let options_length t =
    List.fold_left (fun acc o -> acc + Option_tlv.serialized_length o) 0 t.options

  let wire_length t =
    let raw = 2 + options_length t in
    (raw + 7) / 8 * 8

  let parse buf off =
    if Bytes.length buf - off < 8 then Error Truncated
    else
      let next_header = u8 buf off in
      let hdr_ext_len = u8 buf (off + 1) in
      let total = (hdr_ext_len + 1) * 8 in
      if Bytes.length buf - off < total then Error Truncated
      else
        match Option_tlv.parse_all buf (off + 2) (total - 2) with
        | Ok options -> Ok ({ next_header; options }, total)
        | Error e -> Error e

  let serialize t buf off =
    let total = wire_length t in
    let pad = total - 2 - options_length t in
    let options =
      if pad = 0 then t.options
      else if pad = 1 then t.options @ [ Option_tlv.Pad1 ]
      else t.options @ [ Option_tlv.Padn pad ]
    in
    Bytes.set buf off (Char.chr (t.next_header land 0xFF));
    Bytes.set buf (off + 1) (Char.chr (total / 8 - 1));
    let body = Option_tlv.serialize_all options in
    Bytes.blit body 0 buf (off + 2) (Bytes.length body);
    total
end
