(** IPv6 header (RFC 1883 — the version the paper deployed) and
    hop-by-hop options.

    The paper's "IPv6 option plugins" process options from the
    hop-by-hop extension header; {!Option_tlv} models the option TLVs
    that such plugins consume. *)

type t = {
  traffic_class : int;
  flow_label : int;
  payload_length : int;  (** bytes following this header *)
  next_header : int;
  hop_limit : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
}

val size : int
(** Fixed header size in bytes (40). *)

type error =
  | Truncated
  | Bad_version of int
  | Bad_option_length

val pp_error : Format.formatter -> error -> unit

val parse : Bytes.t -> int -> (t, error) result
val serialize : t -> Bytes.t -> int -> unit

val default :
  ?traffic_class:int -> ?flow_label:int -> ?hop_limit:int ->
  payload_length:int -> next_header:int -> src:Ipaddr.t -> dst:Ipaddr.t ->
  unit -> t

val pp : Format.formatter -> t -> unit

(** Hop-by-hop option TLVs (RFC 1883 section 4.2). *)
module Option_tlv : sig
  type t =
    | Pad1
    | Padn of int          (** total option size in bytes, >= 2 *)
    | Router_alert of int  (** RFC 2113-style alert value *)
    | Jumbo_payload of int
    | Unknown of int * string  (** type, body *)

  val option_type : t -> int

  (** [parse_all buf off len] decodes the option area of a hop-by-hop
      header (after its 2-byte preamble). *)
  val parse_all : Bytes.t -> int -> int -> (t list, error) result

  val serialized_length : t -> int
  val serialize_all : t list -> Bytes.t

  val pp : Format.formatter -> t -> unit
end

(** A complete hop-by-hop extension header. *)
module Hop_by_hop : sig
  type t = {
    next_header : int;
    options : Option_tlv.t list;
  }

  (** Total wire length, always a multiple of 8 (padding is the
      caller's responsibility; [serialize] pads with PadN). *)
  val wire_length : t -> int

  val parse : Bytes.t -> int -> (t * int, error) result
  (** Returns the header and its wire length. *)

  val serialize : t -> Bytes.t -> int -> int
  (** Writes the header (adding trailing padding to an 8-byte multiple)
      and returns the number of bytes written. *)
end
