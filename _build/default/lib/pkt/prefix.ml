type t = {
  addr : Ipaddr.t;
  len : int;
}

let make addr len =
  if len < 0 || len > Ipaddr.width addr then
    invalid_arg
      (Printf.sprintf "Prefix.make: /%d out of range for %s" len
         (Ipaddr.to_string addr));
  { addr = Ipaddr.prefix_bits addr len; len }

let host addr = { addr; len = Ipaddr.width addr }

let any_v4 = { addr = Ipaddr.zero_v4; len = 0 }
let any_v6 = { addr = Ipaddr.zero_v6; len = 0 }

let compare a b =
  let c = Ipaddr.compare a.addr b.addr in
  if c <> 0 then c else Int.compare a.len b.len

let equal a b = compare a b = 0
let hash p = Ipaddr.hash p.addr lxor (p.len * 0x45D9F3B)

let matches p a =
  Ipaddr.width p.addr = Ipaddr.width a
  && (p.len = 0 || Ipaddr.equal (Ipaddr.prefix_bits a p.len) p.addr)

let subsumes p q =
  Ipaddr.width p.addr = Ipaddr.width q.addr
  && p.len <= q.len
  && matches p q.addr

let is_wildcard p = p.len = 0

let to_string p =
  if p.len = Ipaddr.width p.addr then Ipaddr.to_string p.addr
  else Printf.sprintf "%s/%d" (Ipaddr.to_string p.addr) p.len

let of_string_opt s =
  match String.index_opt s '/' with
  | None ->
    (match Ipaddr.of_string_opt s with
     | Some a -> Some (host a)
     | None -> None)
  | Some i ->
    let astr = String.sub s 0 i in
    let lstr = String.sub s (i + 1) (String.length s - i - 1) in
    (match Ipaddr.of_string_opt astr, int_of_string_opt lstr with
     | Some a, Some len when len >= 0 && len <= Ipaddr.width a ->
       Some (make a len)
     | _, _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let pp ppf p = Format.pp_print_string ppf (to_string p)
