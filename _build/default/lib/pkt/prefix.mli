(** Address prefixes ([addr/len]) with partial-wildcard semantics.

    A prefix of length 0 matches every address of its family and plays
    the role of the fully wildcarded address field in a filter
    specification (paper, section 3). *)

type t = private {
  addr : Ipaddr.t;  (** normalized: bits beyond [len] are zero *)
  len : int;
}

(** [make addr len] normalizes [addr] to [len] bits.
    @raise Invalid_argument if [len] is out of range for the family. *)
val make : Ipaddr.t -> int -> t

(** Host prefix: full length of the family (32 or 128). *)
val host : Ipaddr.t -> t

(** Family wildcard ([0.0.0.0/0] resp. [::/0]). *)
val any_v4 : t
val any_v6 : t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [matches p a] is true iff the first [p.len] bits of [a] equal
    [p.addr].  Addresses of the other family never match. *)
val matches : t -> Ipaddr.t -> bool

(** [subsumes p q] is true iff every address matched by [q] is matched
    by [p] (i.e. [p] is a — not necessarily proper — prefix of [q]). *)
val subsumes : t -> t -> bool

(** [is_wildcard p] is true iff [p.len = 0]. *)
val is_wildcard : t -> bool

(** Parse ["129.0.0.0/8"], ["192.94.233.10"] (host), ["*"] is not
    accepted here — filter syntax handles wildcards. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
