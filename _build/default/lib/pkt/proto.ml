let icmp = 1
let tcp = 6
let udp = 17
let ipv6_hop_by_hop = 0
let esp = 50
let ah = 51
let icmpv6 = 58
let rsvp = 46
let ssp = 253

let name p =
  if p = icmp then "ICMP"
  else if p = tcp then "TCP"
  else if p = udp then "UDP"
  else if p = esp then "ESP"
  else if p = ah then "AH"
  else if p = icmpv6 then "ICMPv6"
  else if p = rsvp then "RSVP"
  else if p = ssp then "SSP"
  else string_of_int p

let pp ppf p = Format.pp_print_string ppf (name p)
