(** IP protocol numbers used throughout the router. *)

val icmp : int
val tcp : int
val udp : int
val ipv6_hop_by_hop : int
val esp : int
val ah : int
val icmpv6 : int

(** RSVP (RFC 2205's protocol number). *)
val rsvp : int

(** Protocol number we assign to SSP, the simplified RSVP of the paper
    (an experimental number from the IANA range). *)
val ssp : int

val name : int -> string
val pp : Format.formatter -> int -> unit
