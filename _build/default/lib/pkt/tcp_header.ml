type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

let no_flags =
  { fin = false; syn = false; rst = false; psh = false; ack = false; urg = false }

type t = {
  sport : int;
  dport : int;
  seq : int32;
  ack_seq : int32;
  flags : flags;
  window : int;
  checksum : int;
  urgent : int;
}

let size = 20

type error = Truncated | Bad_offset of int

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated TCP header"
  | Bad_offset o -> Format.fprintf ppf "unsupported data offset %d" o

let u16 buf off =
  Char.code (Bytes.get buf off) * 256 + Char.code (Bytes.get buf (off + 1))

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let flags_of_byte b =
  {
    fin = b land 0x01 <> 0;
    syn = b land 0x02 <> 0;
    rst = b land 0x04 <> 0;
    psh = b land 0x08 <> 0;
    ack = b land 0x10 <> 0;
    urg = b land 0x20 <> 0;
  }

let byte_of_flags f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let parse buf off =
  if Bytes.length buf - off < size then Error Truncated
  else
    let offset = Char.code (Bytes.get buf (off + 12)) lsr 4 in
    if offset <> 5 then Error (Bad_offset offset)
    else
      Ok
        {
          sport = u16 buf off;
          dport = u16 buf (off + 2);
          seq = Bytes.get_int32_be buf (off + 4);
          ack_seq = Bytes.get_int32_be buf (off + 8);
          flags = flags_of_byte (Char.code (Bytes.get buf (off + 13)));
          window = u16 buf (off + 14);
          checksum = u16 buf (off + 16);
          urgent = u16 buf (off + 18);
        }

let serialize t buf off =
  set_u16 buf off t.sport;
  set_u16 buf (off + 2) t.dport;
  Bytes.set_int32_be buf (off + 4) t.seq;
  Bytes.set_int32_be buf (off + 8) t.ack_seq;
  Bytes.set buf (off + 12) (Char.chr 0x50);
  Bytes.set buf (off + 13) (Char.chr (byte_of_flags t.flags));
  set_u16 buf (off + 14) t.window;
  set_u16 buf (off + 16) t.checksum;
  set_u16 buf (off + 18) t.urgent

let pp ppf t =
  Format.fprintf ppf "TCP{%d -> %d seq=%ld%s%s}" t.sport t.dport t.seq
    (if t.flags.syn then " SYN" else "")
    (if t.flags.ack then " ACK" else "")
