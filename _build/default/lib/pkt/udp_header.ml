type t = {
  sport : int;
  dport : int;
  length : int;
  checksum : int;
}

let size = 8

type error = Truncated | Bad_length of int

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated UDP header"
  | Bad_length l -> Format.fprintf ppf "bad UDP length %d" l

let u16 buf off =
  Char.code (Bytes.get buf off) * 256 + Char.code (Bytes.get buf (off + 1))

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let parse buf off =
  if Bytes.length buf - off < size then Error Truncated
  else
    let length = u16 buf (off + 4) in
    if length < size then Error (Bad_length length)
    else
      Ok
        {
          sport = u16 buf off;
          dport = u16 buf (off + 2);
          length;
          checksum = u16 buf (off + 6);
        }

let serialize t buf off =
  set_u16 buf off t.sport;
  set_u16 buf (off + 2) t.dport;
  set_u16 buf (off + 4) t.length;
  set_u16 buf (off + 6) t.checksum

let pseudo_header_sum ~src ~dst ~proto ~len =
  let addr_sum a =
    let b = Ipaddr.to_bytes a in
    Checksum.sum b 0 (Bytes.length b)
  in
  addr_sum src + addr_sum dst + proto + len

let compute_checksum ~src ~dst buf off len =
  (* Sum the datagram with the checksum field masked to zero. *)
  let s = ref (pseudo_header_sum ~src ~dst ~proto:Proto.udp ~len) in
  s := !s + Checksum.sum buf off 6;
  if len > size then s := !s + Checksum.sum buf (off + size) (len - size);
  let c = Checksum.finish !s in
  if c = 0 then 0xFFFF else c

let pp ppf t =
  Format.fprintf ppf "UDP{%d -> %d len=%d}" t.sport t.dport t.length
