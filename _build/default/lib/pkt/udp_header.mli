(** UDP header (RFC 768).  Checksum handling uses the IPv4/IPv6
    pseudo-header. *)

type t = {
  sport : int;
  dport : int;
  length : int;  (** header + payload, bytes *)
  checksum : int;
}

val size : int

type error = Truncated | Bad_length of int

val pp_error : Format.formatter -> error -> unit

val parse : Bytes.t -> int -> (t, error) result

(** [serialize t buf off] writes the header with [t.checksum] as-is.
    Use {!compute_checksum} first when a valid checksum is wanted. *)
val serialize : t -> Bytes.t -> int -> unit

(** [compute_checksum ~src ~dst buf off len] computes the UDP checksum
    over the pseudo-header plus the datagram ([len] bytes at [off],
    with the checksum field zeroed by the caller or present — the field
    at [off+6] is treated as zero). *)
val compute_checksum :
  src:Ipaddr.t -> dst:Ipaddr.t -> Bytes.t -> int -> int -> int

val pp : Format.formatter -> t -> unit
