lib/sched/drr_plugin.ml: Cost Flow_key Flow_table Gate Hashtbl List Mbuf Plugin Printf Queue Result Rp_classifier Rp_core Rp_pkt
