lib/sched/drr_plugin.mli: Flow_key Gate Plugin Rp_core Rp_pkt
