lib/sched/fifo_plugin.ml: Gate List Mbuf Plugin Printf Queue Rp_core Rp_pkt
