lib/sched/hfsc_plugin.ml: Cost Flow_key Flow_table Gate Hashtbl Int64 List Mbuf Option Plugin Printf Queue Rp_classifier Rp_core Rp_pkt Service_curve String
