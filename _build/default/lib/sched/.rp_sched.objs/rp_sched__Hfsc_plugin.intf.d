lib/sched/hfsc_plugin.mli: Flow_key Gate Plugin Rp_core Rp_pkt Service_curve
