lib/sched/red_plugin.ml: Gate Hashtbl Int64 List Mbuf Plugin Printf Queue Random Rp_core Rp_pkt
