lib/sched/service_curve.ml: Format
