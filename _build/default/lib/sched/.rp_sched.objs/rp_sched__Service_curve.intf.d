lib/sched/service_curve.mli: Format
