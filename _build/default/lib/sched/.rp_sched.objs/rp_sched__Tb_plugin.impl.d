lib/sched/tb_plugin.ml: Float Flow_table Gate Hashtbl Int64 List Mbuf Option Plugin Printf Rp_classifier Rp_core Rp_pkt
