open Rp_pkt
open Rp_core
open Rp_classifier

let name = "drr"
let gate = Gate.Scheduling
let description = "weighted Deficit Round Robin fair queueing"

module FK = Hashtbl.Make (struct
  type t = Flow_key.t

  let equal = Flow_key.equal
  let hash = Flow_key.hash
end)

type flow_q = {
  fkey : Flow_key.t;
  q : Mbuf.t Queue.t;
  mutable deficit : int;
  mutable weight : int;
  mutable on_ring : bool;
  mutable evicted : bool;
  mutable sent_pkts : int;
  mutable sent_bytes : int;
}

type Flow_table.soft += Drr_flow of flow_q

type state = {
  instance_id : int;
  quantum : int;
  flow_limit : int;
  ring : flow_q Queue.t;
  flows : flow_q FK.t;
  reservations : int FK.t;  (** flow key -> reserved rate (bps) *)
  mutable backlog : int;
  mutable dropped : int;
}

let instances : (int, state) Hashtbl.t = Hashtbl.create 8

(* Reserved weights are recalculated relative to the smallest live
   reservation whenever the reservation set changes (paper: weights
   are "dynamically recalculated for reserved flows if a new reserved
   flow is added"). *)
let recompute_weights st =
  let min_rate = FK.fold (fun _ r acc -> min r acc) st.reservations max_int in
  let weight_of_key k =
    match FK.find_opt st.reservations k with
    | Some rate -> max 1 (rate / max 1 min_rate)
    | None -> 1
  in
  FK.iter (fun k fq -> fq.weight <- weight_of_key k) st.flows

let weight_for st k =
  let min_rate = FK.fold (fun _ r acc -> min r acc) st.reservations max_int in
  match FK.find_opt st.reservations k with
  | Some rate -> max 1 (rate / max 1 min_rate)
  | None -> 1

let new_flow st k =
  let fq =
    {
      fkey = k;
      q = Queue.create ();
      deficit = 0;
      weight = weight_for st k;
      on_ring = false;
      evicted = false;
      sent_pkts = 0;
      sent_bytes = 0;
    }
  in
  FK.replace st.flows k fq;
  fq

let flow_of st binding (m : Mbuf.t) =
  match binding with
  | Some (b : Plugin.t Flow_table.binding) ->
    (match b.Flow_table.soft with
     | Some (Drr_flow fq) when not fq.evicted -> fq
     | Some _ | None ->
       let fq = new_flow st m.Mbuf.key in
       b.Flow_table.soft <- Some (Drr_flow fq);
       fq)
  | None ->
    (* Monolithic mode: no AIU binding, classify internally by
       hashing the flow key — the ALTQ comparison path of Table 3. *)
    Cost.charge Cost.monolithic_classifier;
    (match FK.find_opt st.flows m.Mbuf.key with
     | Some fq when not fq.evicted -> fq
     | Some _ | None -> new_flow st m.Mbuf.key)

let enqueue st ~now:_ m binding =
  let fq = flow_of st binding m in
  if Queue.length fq.q >= st.flow_limit then begin
    st.dropped <- st.dropped + 1;
    Plugin.Rejected "per-flow queue full"
  end
  else begin
    Queue.push m fq.q;
    st.backlog <- st.backlog + 1;
    if not fq.on_ring then begin
      fq.deficit <- 0;
      fq.on_ring <- true;
      Queue.push fq st.ring
    end;
    Cost.charge Cost.drr_enqueue;
    Plugin.Enqueued
  end

let dequeue st ~now:_ =
  let rec loop () =
    match Queue.peek st.ring with
    | exception Queue.Empty -> None
    | fq ->
      if fq.evicted || Queue.is_empty fq.q then begin
        ignore (Queue.pop st.ring);
        fq.on_ring <- false;
        fq.deficit <- 0;
        loop ()
      end
      else begin
        let head_len = (Queue.peek fq.q).Mbuf.len in
        if fq.deficit >= head_len then begin
          let m = Queue.pop fq.q in
          fq.deficit <- fq.deficit - head_len;
          fq.sent_pkts <- fq.sent_pkts + 1;
          fq.sent_bytes <- fq.sent_bytes + m.Mbuf.len;
          st.backlog <- st.backlog - 1;
          if Queue.is_empty fq.q then begin
            ignore (Queue.pop st.ring);
            fq.on_ring <- false;
            fq.deficit <- 0
          end;
          Cost.charge Cost.drr_dequeue;
          Some m
        end
        else begin
          (* The round-robin pointer visits this flow: top up its
             deficit by one (weighted) quantum and move on. *)
          fq.deficit <- fq.deficit + (st.quantum * fq.weight);
          ignore (Queue.pop st.ring);
          Queue.push fq st.ring;
          loop ()
        end
      end
  in
  loop ()

let on_flow_evict st (b : Plugin.t Flow_table.binding) =
  match b.Flow_table.soft with
  | Some (Drr_flow fq) ->
    (* Queued packets of an evicted flow are lost; account for them. *)
    st.dropped <- st.dropped + Queue.length fq.q;
    st.backlog <- st.backlog - Queue.length fq.q;
    Queue.clear fq.q;
    fq.evicted <- true;
    FK.remove st.flows fq.fkey;
    b.Flow_table.soft <- None
  | Some _ | None -> ()

let int_config config key ~default =
  match List.assoc_opt key config with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let create_instance ~instance_id ~code ~config =
  let st =
    {
      instance_id;
      quantum = int_config config "quantum" ~default:512;
      flow_limit = int_config config "flow-limit" ~default:128;
      ring = Queue.create ();
      flows = FK.create 64;
      reservations = FK.create 16;
      backlog = 0;
      dropped = 0;
    }
  in
  Hashtbl.replace instances instance_id st;
  let scheduler =
    {
      Plugin.enqueue = (fun ~now m binding -> enqueue st ~now m binding);
      dequeue = (fun ~now -> dequeue st ~now);
      backlog = (fun () -> st.backlog);
      sched_stats =
        (fun () ->
          [
            ("backlog", string_of_int st.backlog);
            ("dropped", string_of_int st.dropped);
            ("flows", string_of_int (FK.length st.flows));
            ("quantum", string_of_int st.quantum);
          ]);
    }
  in
  let base =
    Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
      ~describe:(fun () ->
        Printf.sprintf "drr: quantum=%d flows=%d backlog=%d" st.quantum
          (FK.length st.flows) st.backlog)
      (fun _ _ -> Plugin.Continue)
  in
  Ok
    {
      base with
      Plugin.scheduler = Some scheduler;
      on_flow_evict = Some (on_flow_evict st);
    }

let state_of instance_id =
  match Hashtbl.find_opt instances instance_id with
  | Some st -> Ok st
  | None -> Error (Printf.sprintf "drr: no instance %d" instance_id)

let reserve ~instance_id ~key ~rate_bps =
  if rate_bps <= 0 then Error "drr: reservation rate must be positive"
  else
    Result.map
      (fun st ->
        FK.replace st.reservations key rate_bps;
        recompute_weights st)
      (state_of instance_id)

let unreserve ~instance_id ~key =
  Result.map
    (fun st ->
      FK.remove st.reservations key;
      recompute_weights st)
    (state_of instance_id)

let weight_of ~instance_id ~key =
  match state_of instance_id with
  | Error _ -> None
  | Ok st ->
    (match FK.find_opt st.flows key with
     | Some fq -> Some fq.weight
     | None -> Some (weight_for st key))

let flow_counters ~instance_id ~key =
  match state_of instance_id with
  | Error _ -> None
  | Ok st ->
    (match FK.find_opt st.flows key with
     | Some fq -> Some (fq.sent_pkts, fq.sent_bytes)
     | None -> None)

let drop_count ~instance_id =
  match state_of instance_id with Ok st -> st.dropped | Error _ -> 0

let message key payload =
  match key with
  | "plugin-info" -> Ok description
  | "stats" ->
    (match int_of_string_opt payload with
     | None -> Error "stats expects an instance id"
     | Some id ->
       (match state_of id with
        | Error e -> Error e
        | Ok st ->
          Ok
            (Printf.sprintf "flows=%d backlog=%d dropped=%d"
               (FK.length st.flows) st.backlog st.dropped)))
  | _ -> Error (Printf.sprintf "drr: unknown message %s" key)
