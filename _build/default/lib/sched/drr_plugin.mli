(** The weighted Deficit Round Robin scheduling plugin (paper,
    section 6.1; DRR is Shreedhar & Varghese, SIGCOMM '95).

    Per-flow queues live in flow-record soft state ("it was
    straightforward to add a queue per flow which guarantees perfectly
    fair queuing for all flows").  Weights are 1 for best-effort flows
    and are recalculated from the reserved rates whenever a
    reservation is added or removed, reproducing the paper's weighted
    variant.

    When a packet arrives with no flow binding (the monolithic/ALTQ
    comparison mode of Table 3), the plugin classifies internally by
    hashing the flow key — and charges
    {!Rp_core.Cost.monolithic_classifier} for it.

    Config keys: [quantum] (bytes per round per weight unit, default
    512), [flow-limit] (packets per flow queue, default 128),
    [iface] (informational). *)

open Rp_pkt
open Rp_core

val name : string
val gate : Gate.t
val description : string

val create_instance :
  instance_id:int -> code:int -> config:(string * string) list ->
  (Plugin.t, string) result

val message : string -> string -> (string, string) result

(** Control interface used by daemons (SSP) and tests. *)

(** [reserve ~instance_id ~key ~rate_bps] gives the flow [key] a
    bandwidth reservation; all reserved weights are recalculated
    relative to the smallest live reservation. *)
val reserve : instance_id:int -> key:Flow_key.t -> rate_bps:int -> (unit, string) result

val unreserve : instance_id:int -> key:Flow_key.t -> (unit, string) result

(** [weight_of ~instance_id ~key] — current weight (1 = best effort). *)
val weight_of : instance_id:int -> key:Flow_key.t -> int option

(** Per-flow (packets, bytes) sent so far. *)
val flow_counters : instance_id:int -> key:Flow_key.t -> (int * int) option

(** Packets dropped because a per-flow queue overflowed, plus packets
    lost to flow-record eviction. *)
val drop_count : instance_id:int -> int
