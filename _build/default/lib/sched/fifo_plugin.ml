(** Plain FIFO scheduling plugin: the degenerate qdisc, useful as a
    baseline and for exercising the scheduling gate without any
    policy.  Config: [limit] (packets, default 512). *)

open Rp_pkt
open Rp_core

let name = "fifo"
let gate = Gate.Scheduling
let description = "single FIFO output queue"

type state = {
  q : Mbuf.t Queue.t;
  limit : int;
  mutable dropped : int;
}

let create_instance ~instance_id ~code ~config =
  let limit =
    match List.assoc_opt "limit" config with
    | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 512)
    | None -> 512
  in
  let st = { q = Queue.create (); limit; dropped = 0 } in
  let scheduler =
    {
      Plugin.enqueue =
        (fun ~now:_ m _binding ->
          if Queue.length st.q >= st.limit then begin
            st.dropped <- st.dropped + 1;
            Plugin.Rejected "fifo full"
          end
          else begin
            Queue.push m st.q;
            Plugin.Enqueued
          end);
      dequeue =
        (fun ~now:_ ->
          match Queue.pop st.q with
          | m -> Some m
          | exception Queue.Empty -> None);
      backlog = (fun () -> Queue.length st.q);
      sched_stats =
        (fun () ->
          [ ("backlog", string_of_int (Queue.length st.q));
            ("dropped", string_of_int st.dropped) ]);
    }
  in
  let base =
    Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
      (fun _ _ -> Plugin.Continue)
  in
  Ok { base with Plugin.scheduler = Some scheduler }

let message key _ =
  match key with
  | "plugin-info" -> Ok description
  | _ -> Error (Printf.sprintf "fifo: unknown message %s" key)
