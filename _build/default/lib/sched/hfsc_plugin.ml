open Rp_pkt
open Rp_core
open Rp_classifier

let name = "hfsc"
let gate = Gate.Scheduling
let description = "Hierarchical Fair Service Curve scheduling"

module FK = Hashtbl.Make (struct
  type t = Flow_key.t

  let equal = Flow_key.equal
  let hash = Flow_key.hash
end)

(* Leaf queueing discipline (the paper's HSF future work, section 6:
   "DRR could be used to do fair queuing for all flows ending in the
   same H-FSC leaf node" — plain H-FSC uses FIFO per leaf, "which may
   result in unfair service to different flows"). *)
type leaf_q =
  | Fifo_q of Mbuf.t Queue.t
  | Drr_q of drr_leaf

and drr_leaf = {
  quantum : int;
  ring : sub_flow Queue.t;
  mutable subs : (Flow_key.t * sub_flow) list;
  mutable dqlen : int;
}

and sub_flow = {
  skey : Flow_key.t;
  sq : Mbuf.t Queue.t;
  mutable deficit : int;
  mutable on_ring : bool;
}

type class_t = {
  cname : string;
  parent : class_t option;
  mutable children : class_t list;
  rsc : Service_curve.t option;
  fsc : Service_curve.t;
  usc : Service_curve.t option;  (** upper-limit curve: service cap *)
  limit : int;
  q : leaf_q;  (** leaf queue *)
  mutable rt_curve : Service_curve.anchored option;
  mutable ul_curve : Service_curve.anchored option;
  mutable cumul_rt : float;  (** bytes served, for the rt criterion *)
  mutable cumul_total : float;  (** bytes served, all criteria (for ul) *)
  mutable vt : float;  (** virtual time among siblings *)
  mutable sent_pkts : int;
  mutable sent_bytes : int;
}

(* --- leaf queue operations ------------------------------------------- *)

let leaf_len = function
  | Fifo_q q -> Queue.length q
  | Drr_q d -> d.dqlen

let leaf_is_empty q = leaf_len q = 0

let leaf_push q (m : Mbuf.t) =
  match q with
  | Fifo_q fq -> Queue.push m fq
  | Drr_q d ->
    let sub =
      match List.assoc_opt m.Mbuf.key d.subs with
      | Some s -> s
      | None ->
        let s = { skey = m.Mbuf.key; sq = Queue.create (); deficit = 0; on_ring = false } in
        d.subs <- (m.Mbuf.key, s) :: d.subs;
        s
    in
    Queue.push m sub.sq;
    d.dqlen <- d.dqlen + 1;
    if not sub.on_ring then begin
      sub.deficit <- 0;
      sub.on_ring <- true;
      Queue.push sub d.ring
    end

(* Length of the packet a pop would return — for DRR leaves this is
   approximated by the ring head's head packet (the rt criterion only
   needs a deadline estimate; intra-leaf order is fairness, not
   guarantee). *)
let leaf_peek_len q =
  match q with
  | Fifo_q fq -> (match Queue.peek fq with m -> Some m.Mbuf.len | exception Queue.Empty -> None)
  | Drr_q d ->
    Queue.fold
      (fun acc sub ->
        match acc with
        | Some _ -> acc
        | None ->
          (match Queue.peek sub.sq with
           | m -> Some m.Mbuf.len
           | exception Queue.Empty -> None))
      None d.ring

let leaf_pop q =
  match q with
  | Fifo_q fq -> (match Queue.pop fq with m -> Some m | exception Queue.Empty -> None)
  | Drr_q d ->
    let rec loop () =
      match Queue.peek d.ring with
      | exception Queue.Empty -> None
      | sub ->
        if Queue.is_empty sub.sq then begin
          ignore (Queue.pop d.ring);
          sub.on_ring <- false;
          sub.deficit <- 0;
          loop ()
        end
        else
          let head_len = (Queue.peek sub.sq).Mbuf.len in
          if sub.deficit >= head_len then begin
            let m = Queue.pop sub.sq in
            sub.deficit <- sub.deficit - head_len;
            d.dqlen <- d.dqlen - 1;
            if Queue.is_empty sub.sq then begin
              ignore (Queue.pop d.ring);
              sub.on_ring <- false;
              sub.deficit <- 0
            end;
            Some m
          end
          else begin
            sub.deficit <- sub.deficit + d.quantum;
            ignore (Queue.pop d.ring);
            Queue.push sub d.ring;
            loop ()
          end
    in
    loop ()

type Flow_table.soft += Hfsc_flow of class_t

type state = {
  instance_id : int;
  root : class_t;
  mutable classes : (string * class_t) list;
  assignments : class_t FK.t;
  default_limit : int;
  mutable backlog : int;
  mutable dropped : int;
}

let instances : (int, state) Hashtbl.t = Hashtbl.create 8

let mk_class ~cname ~parent ~rsc ~fsc ?usc ~limit ?(leaf = `Fifo) () =
  {
    cname;
    parent;
    children = [];
    rsc;
    fsc;
    usc;
    limit;
    q =
      (match leaf with
       | `Fifo -> Fifo_q (Queue.create ())
       | `Drr quantum ->
         Drr_q { quantum; ring = Queue.create (); subs = []; dqlen = 0 });
    rt_curve = None;
    ul_curve = None;
    cumul_rt = 0.0;
    cumul_total = 0.0;
    vt = 0.0;
    sent_pkts = 0;
    sent_bytes = 0;
  }

let is_leaf c = c.children = []

(* Packets queued anywhere in the subtree. *)
let rec subtree_backlog c =
  leaf_len c.q + List.fold_left (fun acc k -> acc + subtree_backlog k) 0 c.children

let leaves st =
  List.filter_map (fun (_, c) -> if is_leaf c then Some c else None) st.classes

let sec_of_ns ns = Int64.to_float ns /. 1e9

(* --- enqueue --------------------------------------------------------- *)

let leaf_for st binding (m : Mbuf.t) =
  let from_table () =
    match FK.find_opt st.assignments m.Mbuf.key with
    | Some c -> c
    | None -> List.assoc "default" st.classes
  in
  match binding with
  | Some (b : Plugin.t Flow_table.binding) ->
    (match b.Flow_table.soft with
     | Some (Hfsc_flow c) -> c
     | Some _ | None ->
       let c = from_table () in
       b.Flow_table.soft <- Some (Hfsc_flow c);
       c)
  | None -> from_table ()

let enqueue st ~now m binding =
  let leaf = leaf_for st binding m in
  if leaf_len leaf.q >= leaf.limit then begin
    st.dropped <- st.dropped + 1;
    Plugin.Rejected "class queue full"
  end
  else begin
    if leaf_is_empty leaf.q then begin
      (* New backlogged period: re-anchor the deadline curve at the
         current (time, service) point so the m1 segment applies. *)
      (match leaf.rsc with
       | Some sc ->
         leaf.rt_curve <-
           Some (Service_curve.anchor sc ~x:(sec_of_ns now) ~y:leaf.cumul_rt)
       | None -> ());
      (match leaf.usc with
       | Some sc when leaf.ul_curve = None ->
         (* The upper limit anchors once, at the first backlogged
            period, so the cap holds across bursts. *)
         leaf.ul_curve <-
           Some (Service_curve.anchor sc ~x:(sec_of_ns now) ~y:leaf.cumul_total)
       | Some _ | None -> ());
      (* Virtual-time catch-up: a newly backlogged class must not
         carry credit from its idle period. *)
      let siblings =
        match leaf.parent with Some p -> p.children | None -> []
      in
      let min_vt =
        List.fold_left
          (fun acc s ->
            if s != leaf && subtree_backlog s > 0 then min acc s.vt else acc)
          infinity siblings
      in
      if min_vt < infinity then leaf.vt <- max leaf.vt min_vt
    end;
    leaf_push leaf.q m;
    st.backlog <- st.backlog + 1;
    Cost.charge Cost.hfsc_enqueue;
    Plugin.Enqueued
  end

(* --- dequeue --------------------------------------------------------- *)

(* Real-time criterion: among backlogged leaves with an RSC whose
   eligible time has arrived, pick the earliest deadline. *)
let rt_candidate st ~now =
  let t = sec_of_ns now in
  List.fold_left
    (fun best leaf ->
      match leaf.rt_curve with
      | Some a when not (leaf_is_empty leaf.q) ->
        let eligible = Service_curve.anchored_inverse a leaf.cumul_rt in
        if eligible <= t then begin
          let head_len =
            float_of_int (Option.value (leaf_peek_len leaf.q) ~default:0)
          in
          let deadline =
            Service_curve.anchored_inverse a (leaf.cumul_rt +. head_len)
          in
          match best with
          | Some (_, d) when d <= deadline -> best
          | Some _ | None -> Some (leaf, deadline)
        end
        else best
      | Some _ | None -> best)
    None (leaves st)

(* Is the class allowed more service at time [t] under its upper
   limit? *)
let under_limit c ~t =
  match c.ul_curve with
  | None -> true
  | Some a -> c.cumul_total < Service_curve.anchored_value a t

(* Link-sharing criterion: descend from the root following minimal
   virtual time among backlogged, non-rate-capped children. *)
let rec ls_candidate ~t c =
  if is_leaf c then if leaf_is_empty c.q then None else Some c
  else
    let best =
      List.fold_left
        (fun acc k ->
          if subtree_backlog k = 0 || not (under_limit k ~t) then acc
          else
            match acc with
            | Some b when b.vt <= k.vt -> acc
            | Some _ | None -> Some k)
        None c.children
    in
    match best with
    | Some k -> ls_candidate ~t k
    | None -> None

let serve st leaf ~rt =
  match leaf_pop leaf.q with
  | None -> None
  | Some m ->
  let len = m.Mbuf.len in
  leaf.sent_pkts <- leaf.sent_pkts + 1;
  leaf.sent_bytes <- leaf.sent_bytes + len;
  leaf.cumul_total <- leaf.cumul_total +. float_of_int len;
  st.backlog <- st.backlog - 1;
  if rt then leaf.cumul_rt <- leaf.cumul_rt +. float_of_int len;
  (* Advance virtual times along the path (link-sharing accounting
     happens for every transmission, whichever criterion chose it). *)
  let rec advance c =
    let share = max 1.0 c.fsc.Service_curve.m2 in
    c.vt <- c.vt +. (float_of_int len /. share);
    match c.parent with
    | Some p when p != st.root -> advance p
    | Some _ | None -> ()
  in
  advance leaf;
  Cost.charge Cost.hfsc_dequeue;
  Some m

let dequeue st ~now =
  match rt_candidate st ~now with
  | Some (leaf, _deadline) -> serve st leaf ~rt:true
  | None ->
    (match ls_candidate ~t:(sec_of_ns now) st.root with
     | Some leaf -> serve st leaf ~rt:false
     | None -> None)

(* --- control --------------------------------------------------------- *)

let state_of instance_id =
  match Hashtbl.find_opt instances instance_id with
  | Some st -> Ok st
  | None -> Error (Printf.sprintf "hfsc: no instance %d" instance_id)

let add_class ~instance_id ~cname ?parent ?rsc ?fsc ?usc ?limit ?leaf () =
  match state_of instance_id with
  | Error _ as e -> e
  | Ok st ->
    if List.mem_assoc cname st.classes then
      Error (Printf.sprintf "hfsc: class %s exists" cname)
    else begin
      let parent_c =
        match parent with
        | None -> Some st.root
        | Some p -> List.assoc_opt p st.classes
      in
      match parent_c with
      | None -> Error (Printf.sprintf "hfsc: no parent class %s" (Option.value parent ~default:"?"))
      | Some p when not (leaf_is_empty p.q) ->
        Error "hfsc: cannot add a child to a backlogged leaf"
      | Some p ->
        let c =
          mk_class ~cname ~parent:(Some p)
            ~rsc
            ~fsc:(Option.value fsc ~default:(Service_curve.linear 1.0))
            ?usc
            ~limit:(Option.value limit ~default:st.default_limit)
            ?leaf ()
        in
        p.children <- p.children @ [ c ];
        st.classes <- st.classes @ [ (cname, c) ];
        Ok ()
    end

let assign ~instance_id ~key ~cname =
  match state_of instance_id with
  | Error _ as e -> e
  | Ok st ->
    (match List.assoc_opt cname st.classes with
     | None -> Error (Printf.sprintf "hfsc: no class %s" cname)
     | Some c when not (is_leaf c) -> Error "hfsc: flows attach to leaves"
     | Some c ->
       FK.replace st.assignments key c;
       Ok ())

let class_counters ~instance_id ~cname =
  match state_of instance_id with
  | Error _ -> None
  | Ok st ->
    (match List.assoc_opt cname st.classes with
     | Some c -> Some (c.sent_pkts, c.sent_bytes)
     | None -> None)

let drop_count ~instance_id =
  match state_of instance_id with Ok st -> st.dropped | Error _ -> 0

let int_config config key ~default =
  match List.assoc_opt key config with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let on_flow_evict (b : Plugin.t Flow_table.binding) =
  match b.Flow_table.soft with
  | Some (Hfsc_flow _) -> b.Flow_table.soft <- None
  | Some _ | None -> ()

let create_instance ~instance_id ~code ~config =
  let default_limit = int_config config "class-limit" ~default:256 in
  let root =
    mk_class ~cname:"root" ~parent:None ~rsc:None
      ~fsc:(Service_curve.linear 1.0) ~limit:default_limit ()
  in
  let default_leaf =
    mk_class ~cname:"default" ~parent:(Some root) ~rsc:None
      ~fsc:(Service_curve.linear 1.0) ~limit:default_limit ()
  in
  root.children <- [ default_leaf ];
  let st =
    {
      instance_id;
      root;
      classes = [ ("root", root); ("default", default_leaf) ];
      assignments = FK.create 64;
      default_limit;
      backlog = 0;
      dropped = 0;
    }
  in
  Hashtbl.replace instances instance_id st;
  let scheduler =
    {
      Plugin.enqueue = (fun ~now m binding -> enqueue st ~now m binding);
      dequeue = (fun ~now -> dequeue st ~now);
      backlog = (fun () -> st.backlog);
      sched_stats =
        (fun () ->
          ("backlog", string_of_int st.backlog)
          :: ("dropped", string_of_int st.dropped)
          :: List.filter_map
               (fun (n, c) ->
                 if is_leaf c then
                   Some (n, Printf.sprintf "%dpkt/%dB" c.sent_pkts c.sent_bytes)
                 else None)
               st.classes);
    }
  in
  let base =
    Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
      ~describe:(fun () ->
        Printf.sprintf "hfsc: %d classes, backlog=%d" (List.length st.classes)
          st.backlog)
      (fun _ _ -> Plugin.Continue)
  in
  Ok
    {
      base with
      Plugin.scheduler = Some scheduler;
      on_flow_evict = Some on_flow_evict;
    }

(* Message syntax: "add-class <instance> <name> [parent=<p>]
   [rsc=m1:d:m2] [fsc=m1:d:m2] [limit=<n>]" and
   "assign <instance> <class> <filter six-tuple without spaces>". *)
let parse_curve s =
  match String.split_on_char ':' s with
  | [ m1; d; m2 ] ->
    (match float_of_string_opt m1, float_of_string_opt d, float_of_string_opt m2 with
     | Some m1, Some d, Some m2 -> Some (Service_curve.make ~m1 ~d ~m2)
     | _, _, _ -> None)
  | _ -> None

let message key payload =
  match key with
  | "plugin-info" -> Ok description
  | "add-class" ->
    (match String.split_on_char ' ' payload with
     | instance :: cname :: opts ->
       (match int_of_string_opt instance with
        | None -> Error "add-class: bad instance id"
        | Some instance_id ->
          let find_opt prefix =
            List.find_map
              (fun o ->
                let p = prefix ^ "=" in
                if String.length o > String.length p
                   && String.sub o 0 (String.length p) = p
                then Some (String.sub o (String.length p) (String.length o - String.length p))
                else None)
              opts
          in
          let parent = find_opt "parent" in
          let rsc = Option.bind (find_opt "rsc") parse_curve in
          let fsc = Option.bind (find_opt "fsc") parse_curve in
          let usc = Option.bind (find_opt "ul") parse_curve in
          let limit = Option.bind (find_opt "limit") int_of_string_opt in
          let leaf =
            match find_opt "leaf" with
            | Some "fifo" -> Some `Fifo
            | Some s when String.length s > 4 && String.sub s 0 4 = "drr:" ->
              Option.map (fun q -> `Drr q)
                (int_of_string_opt (String.sub s 4 (String.length s - 4)))
            | Some "drr" -> Some (`Drr 512)
            | Some _ | None -> None
          in
          (match add_class ~instance_id ~cname ?parent ?rsc ?fsc ?usc ?limit ?leaf () with
           | Ok () -> Ok (Printf.sprintf "class %s added" cname)
           | Error e -> Error e))
     | _ -> Error "add-class: expected '<instance> <name> [options]'")
  | "stats" ->
    (match int_of_string_opt payload with
     | None -> Error "stats expects an instance id"
     | Some id ->
       (match state_of id with
        | Error e -> Error e
        | Ok st ->
          Ok (Printf.sprintf "classes=%d backlog=%d dropped=%d"
                (List.length st.classes) st.backlog st.dropped)))
  | _ -> Error (Printf.sprintf "hfsc: unknown message %s" key)
