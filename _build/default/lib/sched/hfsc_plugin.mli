(** Hierarchical Fair Service Curve scheduling plugin — the port of
    CMU's H-FSC the paper describes in section 6 ("we believe that
    H-FSC represents the state-of-the-art in packet scheduling").

    The implementation follows the two-criteria structure of the
    algorithm (Stoica, Zhang & Ng, SIGCOMM '97):

    - the {e real-time} criterion guarantees leaf service curves:
      every backlogged leaf with an RSC has an eligible time and a
      deadline derived from its anchored curve; eligible leaves are
      served earliest-deadline-first;
    - the {e link-sharing} criterion distributes remaining capacity
      hierarchically by virtual time: the scheduler descends from the
      root picking the backlogged child with the smallest virtual
      time, which it advances by [bytes / fsc-share] after service.

    Compared to the full algorithm, the deadline curve is re-anchored
    at each new backlogged period rather than merged with the history
    curve — the standard simplification, which preserves the property
    the paper demonstrates: delay (m1, d) decoupled from long-term
    bandwidth share (m2).

    Flows map to leaf classes via {!assign} (or the flow binding's
    soft state); unassigned flows use the ["default"] leaf. *)

open Rp_pkt
open Rp_core

val name : string
val gate : Gate.t
val description : string

val create_instance :
  instance_id:int -> code:int -> config:(string * string) list ->
  (Plugin.t, string) result

val message : string -> string -> (string, string) result

(** Hierarchy construction.  [parent] defaults to the root.  [rsc]
    (real-time) is only meaningful on leaves; [fsc] defaults to a
    linear curve of slope 1.

    [leaf] selects the intra-leaf queueing discipline — the paper's
    Hierarchical Scheduling Framework (section 6 future work): [`Fifo]
    (plain H-FSC, default) or [`Drr quantum], which runs deficit round
    robin across the flows sharing the leaf so they divide the class's
    service fairly.

    [usc] is the upper-limit service curve: a hard cap on the class's
    service (H-FSC's third curve).  The cap applies to the
    link-sharing criterion; real-time guarantees are expected to stay
    below it (configure rsc <= usc).  Shaping is approximate between
    dequeue opportunities — the scheduler is only consulted when the
    link asks for a packet. *)
val add_class :
  instance_id:int -> cname:string -> ?parent:string ->
  ?rsc:Service_curve.t -> ?fsc:Service_curve.t -> ?usc:Service_curve.t ->
  ?limit:int -> ?leaf:[ `Fifo | `Drr of int ] -> unit ->
  (unit, string) result

(** [assign ~instance_id ~key ~cname] maps flow [key] to leaf class
    [cname]. *)
val assign :
  instance_id:int -> key:Flow_key.t -> cname:string -> (unit, string) result

(** Per-class (packets, bytes) served. *)
val class_counters : instance_id:int -> cname:string -> (int * int) option

val drop_count : instance_id:int -> int
