(** Random Early Detection queue-management plugin (Floyd & Jacobson;
    the paper lists RED among the protocol enhancements plugins should
    deliver).

    A FIFO queue whose enqueue applies the RED drop test: the average
    queue length is tracked with an EWMA; between [min-th] and
    [max-th] arrivals are dropped with probability growing to [max-p]
    (with the count-based correction from the RED paper), and above
    [max-th] every arrival is dropped.

    Config: [limit] (packets, default 512), [min-th] (default 5),
    [max-th] (default 15), [max-p] (default 0.1), [wq] (EWMA weight,
    default 0.002), [seed] (deterministic PRNG seed). *)

open Rp_pkt
open Rp_core

let name = "red"
let gate = Gate.Scheduling
let description = "RED (random early detection) queue management"

type state = {
  q : Mbuf.t Queue.t;
  limit : int;
  min_th : float;
  max_th : float;
  max_p : float;
  wq : float;
  rng : Random.State.t;
  mutable avg : float;
  mutable count : int;  (** packets since last drop *)
  mutable idle_since : int64 option;
  mutable early_drops : int;
  mutable forced_drops : int;
}

let instances : (int, state) Hashtbl.t = Hashtbl.create 8

(* RED while-idle correction: when the queue has been empty, age the
   average as if small packets had departed. *)
let update_avg st ~now =
  let qlen = float_of_int (Queue.length st.q) in
  (match st.idle_since with
   | Some since when Queue.is_empty st.q ->
     let idle_s = Int64.to_float (Int64.sub now since) /. 1e9 in
     let departures = idle_s *. 1000.0 in
     st.avg <- st.avg *. ((1.0 -. st.wq) ** departures);
     st.idle_since <- None
   | Some _ | None -> ());
  st.avg <- ((1.0 -. st.wq) *. st.avg) +. (st.wq *. qlen)

let drop_test st =
  if st.avg >= st.max_th then `Forced
  else if st.avg >= st.min_th then begin
    let pb = st.max_p *. (st.avg -. st.min_th) /. (st.max_th -. st.min_th) in
    let pa =
      let denom = 1.0 -. (float_of_int st.count *. pb) in
      if denom <= 0.0 then 1.0 else pb /. denom
    in
    if Random.State.float st.rng 1.0 < pa then `Early else `Pass
  end
  else `Pass

let enqueue st ~now m =
  update_avg st ~now;
  let verdict =
    if Queue.length st.q >= st.limit then `Forced else drop_test st
  in
  match verdict with
  | `Forced ->
    st.forced_drops <- st.forced_drops + 1;
    st.count <- 0;
    Plugin.Rejected "red: forced drop"
  | `Early ->
    st.early_drops <- st.early_drops + 1;
    st.count <- 0;
    Plugin.Rejected "red: early drop"
  | `Pass ->
    st.count <- st.count + 1;
    Queue.push m st.q;
    Plugin.Enqueued

let dequeue st ~now =
  match Queue.pop st.q with
  | m ->
    if Queue.is_empty st.q then st.idle_since <- Some now;
    Some m
  | exception Queue.Empty -> None

let float_config config key ~default =
  match List.assoc_opt key config with
  | Some s -> (match float_of_string_opt s with Some f when f >= 0.0 -> f | _ -> default)
  | None -> default

let int_config config key ~default =
  match List.assoc_opt key config with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let create_instance ~instance_id ~code ~config =
  let min_th = float_config config "min-th" ~default:5.0 in
  let max_th = float_config config "max-th" ~default:15.0 in
  if min_th >= max_th then Error "red: min-th must be below max-th"
  else begin
    let st =
      {
        q = Queue.create ();
        limit = int_config config "limit" ~default:512;
        min_th;
        max_th;
        max_p = float_config config "max-p" ~default:0.1;
        wq = float_config config "wq" ~default:0.002;
        rng = Random.State.make [| int_config config "seed" ~default:42 |];
        avg = 0.0;
        count = 0;
        idle_since = None;
        early_drops = 0;
        forced_drops = 0;
      }
    in
    Hashtbl.replace instances instance_id st;
    let scheduler =
      {
        Plugin.enqueue = (fun ~now m _binding -> enqueue st ~now m);
        dequeue = (fun ~now -> dequeue st ~now);
        backlog = (fun () -> Queue.length st.q);
        sched_stats =
          (fun () ->
            [
              ("backlog", string_of_int (Queue.length st.q));
              ("avg", Printf.sprintf "%.2f" st.avg);
              ("early-drops", string_of_int st.early_drops);
              ("forced-drops", string_of_int st.forced_drops);
            ]);
      }
    in
    let base =
      Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
        ~describe:(fun () ->
          Printf.sprintf "red: avg=%.2f early=%d forced=%d" st.avg
            st.early_drops st.forced_drops)
        (fun _ _ -> Plugin.Continue)
    in
    Ok { base with Plugin.scheduler = Some scheduler }
  end

let drops ~instance_id =
  match Hashtbl.find_opt instances instance_id with
  | Some st -> (st.early_drops, st.forced_drops)
  | None -> (0, 0)

let message key payload =
  match key with
  | "plugin-info" -> Ok description
  | "stats" ->
    (match int_of_string_opt payload with
     | None -> Error "stats expects an instance id"
     | Some id ->
       (match Hashtbl.find_opt instances id with
        | None -> Error (Printf.sprintf "red: no instance %d" id)
        | Some st ->
          Ok
            (Printf.sprintf "avg=%.2f backlog=%d early=%d forced=%d" st.avg
               (Queue.length st.q) st.early_drops st.forced_drops)))
  | _ -> Error (Printf.sprintf "red: unknown message %s" key)
