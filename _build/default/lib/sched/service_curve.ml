type t = {
  m1 : float;
  d : float;
  m2 : float;
}

let linear rate = { m1 = rate; d = 0.0; m2 = rate }

let make ~m1 ~d ~m2 =
  if m1 < 0.0 || m2 < 0.0 || d < 0.0 then
    invalid_arg "Service_curve.make: negative parameter";
  { m1; d; m2 }

let value c t =
  if t <= 0.0 then 0.0
  else if t <= c.d then c.m1 *. t
  else (c.m1 *. c.d) +. (c.m2 *. (t -. c.d))

let inverse c y =
  if y <= 0.0 then 0.0
  else
    let knee = c.m1 *. c.d in
    if y <= knee then if c.m1 > 0.0 then y /. c.m1 else infinity
    else if c.m2 > 0.0 then c.d +. ((y -. knee) /. c.m2)
    else infinity

type anchored = {
  curve : t;
  x : float;
  y : float;
}

let anchor curve ~x ~y = { curve; x; y }

let anchored_value a t = a.y +. value a.curve (t -. a.x)

let anchored_inverse a y =
  if y <= a.y then a.x else a.x +. inverse a.curve (y -. a.y)

let pp ppf c =
  Format.fprintf ppf "sc(m1=%.0f,d=%.3f,m2=%.0f)" c.m1 c.d c.m2
