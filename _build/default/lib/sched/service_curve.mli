(** Two-piece linear service curves, the building block of H-FSC
    (Stoica, Zhang & Ng, SIGCOMM '97).

    A curve [{ m1; d; m2 }] guarantees slope [m1] (bytes/sec) for the
    first [d] seconds of a backlogged period and slope [m2] afterwards.
    [m1 > m2] gives a {e concave} curve (low delay, e.g. real-time
    video); [m1 < m2] a convex one.  H-FSC's key property — decoupling
    delay from bandwidth — comes from choosing [m1]/[d] independently
    of [m2]. *)

type t = {
  m1 : float;  (** bytes per second *)
  d : float;  (** seconds *)
  m2 : float;  (** bytes per second *)
}

(** [linear rate] — a one-piece curve of slope [rate] bytes/sec. *)
val linear : float -> t

val make : m1:float -> d:float -> m2:float -> t

(** [value c t] — cumulative service (bytes) the curve allows after
    [t] seconds of backlog ([t >= 0]). *)
val value : t -> float -> float

(** [inverse c y] — the earliest time at which the curve reaches [y]
    bytes ([infinity] if it never does). *)
val inverse : t -> float -> float

(** A runtime curve: [c] anchored at time [x] (seconds) and cumulative
    service [y] (bytes) — the (x, y)-shifted curves H-FSC maintains
    per backlogged period. *)
type anchored = {
  curve : t;
  x : float;
  y : float;
}

val anchor : t -> x:float -> y:float -> anchored

(** [anchored_value a t] / [anchored_inverse a y] — same as
    {!value}/{!inverse} on the shifted curve. *)
val anchored_value : anchored -> float -> float

val anchored_inverse : anchored -> float -> float

val pp : Format.formatter -> t -> unit
