(** Token-bucket policing plugin, at the congestion gate.

    This is the edge-router profile enforcement the paper motivates
    ("modern edge routers ... enforcing the configured profiles of
    differential service flows", section 2): each bound flow gets a
    token bucket in its flow-record soft state; non-conforming packets
    are dropped (or, with [action=mark], have their TOS/traffic-class
    marked instead).

    Config: [rate] (bytes/sec, default 125000), [burst] (bytes,
    default 16384), [action] (["drop"] | ["mark"], default drop),
    [dscp] (TOS value used by mark, default 1). *)

open Rp_pkt
open Rp_core
open Rp_classifier

let name = "token-bucket"
let gate = Gate.Congestion
let description = "per-flow token-bucket profile enforcement"

type bucket = {
  mutable tokens : float;
  mutable last_ns : int64;
}

type Flow_table.soft += Bucket of bucket

type state = {
  rate : float;  (** bytes per second *)
  burst : float;
  action : [ `Drop | `Mark ];
  dscp : int;
  mutable conformed : int;
  mutable exceeded : int;
}

let instances : (int, state) Hashtbl.t = Hashtbl.create 8

let refill st b ~now =
  let dt = Int64.to_float (Int64.sub now b.last_ns) /. 1e9 in
  if dt > 0.0 then begin
    b.tokens <- Float.min st.burst (b.tokens +. (dt *. st.rate));
    b.last_ns <- now
  end

let handle st (ctx : Plugin.ctx) (m : Mbuf.t) =
  match ctx.Plugin.binding with
  | None ->
    (* Unbound packets are out of scope for this profile. *)
    Plugin.Continue
  | Some b ->
    let bucket =
      match b.Flow_table.soft with
      | Some (Bucket bk) -> bk
      | Some _ | None ->
        let bk = { tokens = st.burst; last_ns = ctx.Plugin.now_ns } in
        b.Flow_table.soft <- Some (Bucket bk);
        bk
    in
    refill st bucket ~now:ctx.Plugin.now_ns;
    let need = float_of_int m.Mbuf.len in
    if bucket.tokens >= need then begin
      bucket.tokens <- bucket.tokens -. need;
      st.conformed <- st.conformed + 1;
      Plugin.Continue
    end
    else begin
      st.exceeded <- st.exceeded + 1;
      match st.action with
      | `Drop -> Plugin.Drop "token bucket exceeded"
      | `Mark ->
        m.Mbuf.tos <- st.dscp;
        Mbuf.add_tag m "out-of-profile";
        Plugin.Continue
    end

let create_instance ~instance_id ~code ~config =
  let float_config key ~default =
    match List.assoc_opt key config with
    | Some s -> (match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> default)
    | None -> default
  in
  let action =
    match List.assoc_opt "action" config with
    | Some "mark" -> Ok `Mark
    | Some "drop" | None -> Ok `Drop
    | Some other -> Error (Printf.sprintf "token-bucket: unknown action %S" other)
  in
  match action with
  | Error _ as e -> e
  | Ok action ->
    let st =
      {
        rate = float_config "rate" ~default:125_000.0;
        burst = float_config "burst" ~default:16_384.0;
        action;
        dscp =
          (match List.assoc_opt "dscp" config with
           | Some s -> Option.value (int_of_string_opt s) ~default:1
           | None -> 1);
        conformed = 0;
        exceeded = 0;
      }
    in
    Hashtbl.replace instances instance_id st;
    Ok
      (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
         ~describe:(fun () ->
           Printf.sprintf "token-bucket: rate=%.0fB/s conformed=%d exceeded=%d"
             st.rate st.conformed st.exceeded)
         (fun ctx m -> handle st ctx m))

let counters ~instance_id =
  match Hashtbl.find_opt instances instance_id with
  | Some st -> Some (st.conformed, st.exceeded)
  | None -> None

let message key payload =
  match key with
  | "plugin-info" -> Ok description
  | "stats" ->
    (match int_of_string_opt payload with
     | None -> Error "stats expects an instance id"
     | Some id ->
       (match Hashtbl.find_opt instances id with
        | None -> Error (Printf.sprintf "token-bucket: no instance %d" id)
        | Some st ->
          Ok (Printf.sprintf "conformed=%d exceeded=%d" st.conformed st.exceeded)))
  | _ -> Error (Printf.sprintf "token-bucket: unknown message %s" key)
