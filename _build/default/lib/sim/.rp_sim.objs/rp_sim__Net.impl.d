lib/sim/net.ml: Array Cost Flow_key Iface Int64 Ip_core List Mbuf Router Rp_core Rp_pkt Sim Sink
