lib/sim/net.mli: Mbuf Router Rp_core Rp_pkt Sim Sink
