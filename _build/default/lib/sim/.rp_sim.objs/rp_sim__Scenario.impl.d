lib/sim/scenario.ml: Flow_key Gate Iface Int64 Ipaddr List Net Prefix Proto Router Rp_core Rp_pkt Sim Sink Traffic
