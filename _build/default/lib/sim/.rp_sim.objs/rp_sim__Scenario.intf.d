lib/sim/scenario.mli: Flow_key Gate Net Router Rp_core Rp_lpm Rp_pkt Sim Sink Traffic
