lib/sim/sim.ml: Array Int64 Printf
