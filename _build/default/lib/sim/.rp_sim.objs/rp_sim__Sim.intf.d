lib/sim/sim.mli:
