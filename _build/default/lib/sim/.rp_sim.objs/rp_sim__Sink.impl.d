lib/sim/sink.ml: Flow_key Hashtbl Int64 Mbuf Rp_pkt
