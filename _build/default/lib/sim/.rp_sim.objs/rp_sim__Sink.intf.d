lib/sim/sink.mli: Flow_key Mbuf Rp_pkt
