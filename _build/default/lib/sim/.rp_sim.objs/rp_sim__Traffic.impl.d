lib/sim/traffic.ml: Flow_key Int64 Ipaddr Mbuf Net Proto Random Rp_pkt Sim
