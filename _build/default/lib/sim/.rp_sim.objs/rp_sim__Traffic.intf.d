lib/sim/traffic.mli: Flow_key Ipaddr Net Rp_pkt Sim
