(** The network model: routers as simulation nodes, links between
    interfaces, packet injection, and per-node accounting.

    Transmission follows the usual store-and-forward model: when an
    interface has backlog and the link is idle, the next packet is
    dequeued (through the interface's qdisc), occupies the link for
    [len * 8 / bandwidth], then arrives at the peer after the
    propagation delay.  All data-path cycle charges (the IP core's and
    the schedulers') are attributed to the processing node. *)

open Rp_pkt
open Rp_core

type node

type endpoint =
  | To_node of node * int  (** peer node, ingress interface id *)
  | To_sink of Sink.t

type node_stats = {
  mutable received : int;
  mutable forwarded : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable drop_reasons : (string * int) list;
  mutable cycles : int;  (** data-path cycles attributed to this node *)
}

val add_router : Sim.t -> Router.t -> node
val router : node -> Router.t
val stats : node -> node_stats

(** [connect node ~iface endpoint ~prop_ns] attaches the link leaving
    [iface].  Bandwidth comes from the interface. *)
val connect : node -> iface:int -> endpoint -> prop_ns:int64 -> unit

(** [inject node m ~at] delivers [m] to the node's data path at [at];
    [m.key.iface] names the receiving interface and [birth_ns] is
    stamped. *)
val inject : node -> Mbuf.t -> at:int64 -> unit

(** Mean data-path cycles per received packet. *)
val cycles_per_packet : node -> float
