open Rp_pkt
open Rp_core

type t = {
  sim : Sim.t;
  node : Net.node;
  router : Router.t;
  sink : Sink.t;
  out_iface : int;
}

let sink_key ?(proto = Proto.udp) ?(iface = 0) ~id () =
  Flow_key.make
    ~src:(Ipaddr.v4 10 0 (id lsr 8 land 0xFF) (id land 0xFF))
    ~dst:(Ipaddr.v4 192 168 1 (1 + (id mod 250)))
    ~proto
    ~sport:(1024 + (id mod 60000))
    ~dport:9000 ~iface

let single_router ?(mode = Router.Plugins) ?(gates = Gate.all) ?engine
    ?(in_ifaces = 2) ?(out_bandwidth_bps = 155_000_000L) ?flow_max () =
  let sim = Sim.create () in
  let ifaces =
    List.init (in_ifaces + 1) (fun id ->
        if id < in_ifaces then Iface.create ~id ()
        else Iface.create ~id ~bandwidth_bps:out_bandwidth_bps ())
  in
  let router = Router.create ~mode ~gates ?engine ?flow_max ~ifaces () in
  let out_iface = in_ifaces in
  Router.add_route router (Prefix.of_string "192.168.0.0/16") ~iface:out_iface ();
  Router.add_route router (Prefix.of_string "2001:db8::/32") ~iface:out_iface ();
  let node = Net.add_router sim router in
  let sink = Sink.create () in
  Net.connect node ~iface:out_iface (Net.To_sink sink) ~prop_ns:10_000L;
  { sim; node; router; sink; out_iface }

let add_flow t flow = Traffic.install t.sim t.node flow

let run t ~seconds = ignore (Sim.run ~until:(Sim.ns_of_sec seconds) t.sim)

(* Table 3: "We sent 8 KByte UDP/IPv6 datagrams ... belonging to three
   different flows concurrently through our router ... a total of 100
   packets per flow."  Packets are injected back to back so the
   processing path, not the arrival pattern, dominates. *)
let table3_workload t ?(flows = 3) ?(per_flow = 100) ?(pkt_len = 8192) () =
  for id = 0 to flows - 1 do
    ignore
      (add_flow t
         {
           Traffic.key = sink_key ~id ();
           pkt_len;
           pattern = Traffic.Cbr 25_000.0;
           start_ns = 1_000L;
           stop_ns = Int64.add 1_000L (Int64.of_float (float_of_int per_flow *. 4e4));
           seed = id;
         })
  done
