(** Canned experiment topologies shared by the benchmarks, the tests,
    and the examples. *)

open Rp_pkt
open Rp_core

(** One router, [in_ifaces] ingress interfaces (ids [0 ..
    in_ifaces-1]), one egress interface (id [in_ifaces]) leading to a
    sink.  Destinations in 192.168.0.0/16 and 2001:db8::/32 are routed
    to the egress. *)
type t = {
  sim : Sim.t;
  node : Net.node;
  router : Router.t;
  sink : Sink.t;
  out_iface : int;
}

val single_router :
  ?mode:Router.mode -> ?gates:Gate.t list -> ?engine:Rp_lpm.Engines.t ->
  ?in_ifaces:int -> ?out_bandwidth_bps:int64 -> ?flow_max:int -> unit -> t

(** [add_flow t flow] installs a generator (see {!Traffic.install});
    returns the injected-count cell. *)
val add_flow : t -> Traffic.flow -> int ref

(** [run t ~seconds] runs the simulation for that much simulated
    time. *)
val run : t -> seconds:float -> unit

(** The canonical Table 3 workload: [flows] UDP flows of [pkt_len]-
    byte datagrams, [per_flow] packets each, injected back to back on
    interface 0. *)
val table3_workload :
  t -> ?flows:int -> ?per_flow:int -> ?pkt_len:int -> unit -> unit

(** Deterministic key for flow [id] destined to the scenario sink. *)
val sink_key : ?proto:int -> ?iface:int -> id:int -> unit -> Flow_key.t
