(* Binary min-heap of events ordered by (time, seq). *)

type event = {
  time : int64;
  seq : int;
  run : unit -> unit;
}

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : int64;
  mutable next_seq : int;
}

let dummy = { time = 0L; seq = 0; run = (fun () -> ()) }

let create () = { heap = Array.make 256 dummy; size = 0; clock = 0L; next_seq = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: %Ld is in the past (now %Ld)" time t.clock);
  let ev = { time; seq = t.next_seq; run = f } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let after t delay f =
  if delay < 0L then invalid_arg "Sim.after: negative delay";
  at t (Int64.add t.clock delay) f

let run ?until t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    match t.heap, t.size with
    | _, 0 -> continue := false
    | _, _ ->
      let head = t.heap.(0) in
      (match until with
       | Some stop when head.time > stop ->
         t.clock <- stop;
         continue := false
       | Some _ | None ->
         (match pop t with
          | Some ev ->
            t.clock <- ev.time;
            ev.run ();
            incr executed
          | None -> continue := false))
  done;
  !executed

let pending t = t.size

let ns_of_ms ms = Int64.of_float (ms *. 1e6)
let ns_of_sec s = Int64.of_float (s *. 1e9)
let sec_of_ns ns = Int64.to_float ns /. 1e9
