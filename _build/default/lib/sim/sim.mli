(** Discrete-event simulation engine.

    Time is in integer nanoseconds.  Events scheduled for the same
    instant fire in scheduling order (a stable tie-break), which keeps
    runs deterministic. *)

type t

val create : unit -> t

(** Current simulation time (ns). *)
val now : t -> int64

(** [at t time f] schedules [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)
val at : t -> int64 -> (unit -> unit) -> unit

(** [after t delay f] schedules [f] at [now + delay]. *)
val after : t -> int64 -> (unit -> unit) -> unit

(** [run t] processes events until the queue is empty or [until]
    (inclusive) is passed; returns the number of events executed. *)
val run : ?until:int64 -> t -> int

(** Pending event count. *)
val pending : t -> int

(** Nanosecond helpers. *)

val ns_of_ms : float -> int64
val ns_of_sec : float -> int64
val sec_of_ns : int64 -> float
