open Rp_pkt

type flow_stats = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_ns : int64;
  mutable last_ns : int64;
  mutable latency_sum_ns : int64;
  mutable latency_max_ns : int64;
}

module FK = Hashtbl.Make (struct
  type t = Flow_key.t

  let equal = Flow_key.equal
  let hash = Flow_key.hash
end)

type t = {
  sink_name : string;
  table : flow_stats FK.t;
  mutable packets : int;
  mutable bytes : int;
}

let create ?(name = "sink") () =
  { sink_name = name; table = FK.create 64; packets = 0; bytes = 0 }

let name t = t.sink_name

(* Statistics are keyed by the originating flow regardless of ingress
   interface, so a flow is identified the same way at every hop. *)
let normalize key = { key with Flow_key.iface = 0 }

let receive t ~now m =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + m.Mbuf.len;
  let key = normalize m.Mbuf.key in
  let fs =
    match FK.find_opt t.table key with
    | Some fs -> fs
    | None ->
      let fs =
        {
          packets = 0;
          bytes = 0;
          first_ns = now;
          last_ns = now;
          latency_sum_ns = 0L;
          latency_max_ns = 0L;
        }
      in
      FK.add t.table key fs;
      fs
  in
  fs.packets <- fs.packets + 1;
  fs.bytes <- fs.bytes + m.Mbuf.len;
  fs.last_ns <- now;
  let lat = Int64.sub now m.Mbuf.birth_ns in
  fs.latency_sum_ns <- Int64.add fs.latency_sum_ns lat;
  if lat > fs.latency_max_ns then fs.latency_max_ns <- lat

let total_packets t = t.packets
let total_bytes t = t.bytes

let flow t key = FK.find_opt t.table (normalize key)

let flows t = FK.fold (fun k v acc -> (k, v) :: acc) t.table []

let latency (fs : flow_stats) =
  let mean =
    if fs.packets = 0 then 0.0
    else Int64.to_float fs.latency_sum_ns /. float_of_int fs.packets /. 1e9
  in
  (mean, Int64.to_float fs.latency_max_ns /. 1e9)

let goodput_bps (fs : flow_stats) =
  let dur = Int64.to_float (Int64.sub fs.last_ns fs.first_ns) /. 1e9 in
  if dur <= 0.0 then 0.0 else float_of_int (fs.bytes * 8) /. dur
