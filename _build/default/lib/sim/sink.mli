(** Traffic sinks: terminal endpoints that collect per-flow delivery
    statistics (throughput, loss inferred by the caller, and one-way
    latency from the mbuf's birth timestamp). *)

open Rp_pkt

type flow_stats = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_ns : int64;
  mutable last_ns : int64;
  mutable latency_sum_ns : int64;
  mutable latency_max_ns : int64;
}

type t

val create : ?name:string -> unit -> t
val name : t -> string

(** Called by the network model on delivery. *)
val receive : t -> now:int64 -> Mbuf.t -> unit

val total_packets : t -> int
val total_bytes : t -> int

val flow : t -> Flow_key.t -> flow_stats option

(** All flows seen, unordered. *)
val flows : t -> (Flow_key.t * flow_stats) list

(** Mean and max one-way latency of a flow, seconds. *)
val latency : flow_stats -> float * float

(** Mean goodput of a flow in bits/sec over its active interval. *)
val goodput_bps : flow_stats -> float
