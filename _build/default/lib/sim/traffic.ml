open Rp_pkt

type pattern =
  | Cbr of float
  | Poisson of float
  | On_off of {
      rate_pps : float;
      on_ns : int64;
      off_ns : int64;
    }
  | Single_burst of {
      count : int;
      gap_ns : int64;
    }

type flow = {
  key : Flow_key.t;
  pkt_len : int;
  pattern : pattern;
  start_ns : int64;
  stop_ns : int64;
  seed : int;
}

let interval_ns rate_pps =
  if rate_pps <= 0.0 then invalid_arg "Traffic: rate must be positive";
  Int64.of_float (1e9 /. rate_pps)

let exp_sample rng mean_ns =
  let u = Random.State.float rng 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  Int64.of_float (-.mean_ns *. log u)

let install sim node flow =
  let injected = ref 0 in
  let mk_packet seq =
    let m = Mbuf.synth ~key:flow.key ~len:flow.pkt_len () in
    m.Mbuf.seq <- seq;
    m
  in
  let fire time =
    if time < flow.stop_ns then begin
      Net.inject node (mk_packet !injected) ~at:time;
      incr injected
    end
  in
  (match flow.pattern with
   | Cbr rate ->
     let gap = interval_ns rate in
     let rec plan time =
       if time < flow.stop_ns then
         Sim.at sim time (fun () ->
             fire time;
             plan (Int64.add time gap))
     in
     plan flow.start_ns
   | Poisson rate ->
     let rng = Random.State.make [| flow.seed |] in
     let mean_ns = 1e9 /. rate in
     let rec plan time =
       if time < flow.stop_ns then
         Sim.at sim time (fun () ->
             fire time;
             plan (Int64.add time (exp_sample rng mean_ns)))
     in
     plan (Int64.add flow.start_ns (exp_sample rng mean_ns))
   | On_off { rate_pps; on_ns; off_ns } ->
     let gap = interval_ns rate_pps in
     let rec plan time period_end =
       if time < flow.stop_ns then
         Sim.at sim time (fun () ->
             fire time;
             let next = Int64.add time gap in
             if next < period_end then plan next period_end
             else
               let on_start = Int64.add period_end off_ns in
               plan on_start (Int64.add on_start on_ns))
     in
     plan flow.start_ns (Int64.add flow.start_ns on_ns)
   | Single_burst { count; gap_ns } ->
     let rec plan i time =
       if i < count && time < flow.stop_ns then
         Sim.at sim time (fun () ->
             fire time;
             plan (i + 1) (Int64.add time gap_ns))
     in
     plan 0 flow.start_ns);
  injected

let flow_key ?src ?dst ?(proto = Proto.udp) ?(iface = 0) ~id () =
  let src =
    match src with
    | Some a -> a
    | None -> Ipaddr.v4 10 0 (id lsr 8 land 0xFF) (id land 0xFF)
  in
  let dst =
    match dst with
    | Some a -> a
    | None -> Ipaddr.v4 192 168 1 (1 + (id mod 250))
  in
  Flow_key.make ~src ~dst ~proto ~sport:(1024 + (id mod 60000))
    ~dport:9000 ~iface
