(** Workload generators.  All patterns schedule their injections
    lazily (each firing schedules the next), so long runs don't
    materialize their whole arrival sequence up front.  Poisson and
    on-off use an explicitly seeded PRNG; runs are deterministic.

    These generators stand in for the paper's testbed traffic sources
    (see DESIGN.md, substitutions): the experiments depend on flow
    structure — packet size, burst length, flow count and lifetime —
    which the parameters expose directly. *)

open Rp_pkt

type pattern =
  | Cbr of float  (** packets per second, evenly spaced *)
  | Poisson of float  (** mean packets per second *)
  | On_off of {
      rate_pps : float;  (** rate while on *)
      on_ns : int64;
      off_ns : int64;
    }
  | Single_burst of {
      count : int;
      gap_ns : int64;  (** spacing inside the burst *)
    }

type flow = {
  key : Flow_key.t;
  pkt_len : int;  (** wire length, bytes *)
  pattern : pattern;
  start_ns : int64;
  stop_ns : int64;  (** no packets at or after this time *)
  seed : int;
}

(** [install sim node flow] schedules the flow's arrivals into
    [node].  Returns a counter cell holding the number of packets
    injected so far. *)
val install : Sim.t -> Net.node -> flow -> int ref

(** [flow_key ~id ()] — convenience six-tuple for test traffic: flow
    [id] maps to distinct addresses/ports deterministically. *)
val flow_key :
  ?src:Ipaddr.t -> ?dst:Ipaddr.t -> ?proto:int -> ?iface:int -> id:int ->
  unit -> Flow_key.t
