(* A minimal dynamically loadable plugin: tags every packet of its
   bound flows.  Loading this object file announces the plugin to the
   host (see Rp_control.Dynload). *)

open Rp_core

module Hello : Plugin.PLUGIN = struct
  let name = "hello-dyn"
  let gate = Gate.Stats
  let description = "dynamically loaded demo plugin (tags packets)"

  let create_instance ~instance_id ~code ~config =
    let count = ref 0 in
    Ok
      (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
         ~describe:(fun () -> Printf.sprintf "hello-dyn: %d packets tagged" !count)
         (fun _ctx m ->
           incr count;
           Rp_pkt.Mbuf.add_tag m "hello-from-dynlink";
           Plugin.Continue))

  let message key _ =
    match key with
    | "plugin-info" -> Ok description
    | _ -> Error "hello-dyn: unknown message"
end

(* Registration side effect on load. *)
let () = Rp_control.Dynload.announce (module Hello)
