test/test_crypto.ml: Alcotest Bytes Char Flow_key Hashtbl Hmac Ipaddr Ipsec_plugin Ipv4_header List Mbuf Md5 Printf Proto QCheck2 QCheck_alcotest Rc4 Rp_core Rp_crypto Rp_pkt Sa String Udp_header
