test/test_dynload.ml: Alcotest Flow_key Iface Ip_core Ipaddr List Mbuf Pcu Plugin Prefix Proto Router Rp_classifier Rp_control Rp_core Rp_pkt Sys
