test/test_dynload.mli:
