test/test_lpm.ml: Alcotest Array Int32 Ipaddr List Prefix Printf QCheck2 QCheck_alcotest Rp_lpm Rp_pkt
