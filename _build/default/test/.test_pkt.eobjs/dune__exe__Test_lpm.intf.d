test/test_lpm.mli:
