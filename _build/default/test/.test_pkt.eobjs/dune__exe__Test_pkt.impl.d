test/test_pkt.ml: Alcotest Bytes Char Checksum Flow_key Hop_by_hop Int32 Ipaddr Ipv4_header Ipv6_header List Mbuf Option_tlv Prefix Printf Proto QCheck2 QCheck_alcotest Rp_pkt Tcp_header Udp_header
