test/test_pkt.mli:
