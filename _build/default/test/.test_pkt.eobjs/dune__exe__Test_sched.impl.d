test/test_sched.ml: Alcotest Flow_key Gate Hashtbl Int32 Int64 Ipaddr List Mbuf Option Plugin Printf Proto QCheck2 QCheck_alcotest Rp_classifier Rp_core Rp_pkt Rp_sched
