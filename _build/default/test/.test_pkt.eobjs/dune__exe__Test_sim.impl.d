test/test_sim.ml: Alcotest Flow_key Iface Int64 Ipaddr List Mbuf Prefix Printf Proto QCheck2 QCheck_alcotest Router Rp_core Rp_pkt Rp_sim
