(* Tests for the security substrate: MD5 against the RFC 1321 test
   suite, HMAC-MD5 against RFC 2202, RC4 against the classic vectors,
   SA replay windows, and the IPsec plugins end to end (raw-bytes and
   synthetic paths, including tamper and replay rejection). *)

open Rp_pkt
open Rp_crypto

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- MD5 -------------------------------------------------------------- *)

(* RFC 1321, appendix A.5. *)
let md5_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let test_md5_rfc_vectors () =
  List.iter
    (fun (input, expect) ->
      check string_t
        (Printf.sprintf "md5(%S)" input)
        expect
        (Md5.to_hex (Md5.digest_string input)))
    md5_vectors

let prop_md5_incremental =
  qtest "md5: incremental = one-shot at any split"
    QCheck2.Gen.(pair (string_size (int_range 0 300)) (int_bound 300))
    (fun (s, split) ->
      let split = min split (String.length s) in
      let ctx = Md5.init () in
      Md5.update_string ctx (String.sub s 0 split);
      Md5.update_string ctx (String.sub s split (String.length s - split));
      Md5.final ctx = Md5.digest_string s)

let test_md5_block_boundaries () =
  (* Lengths around the 55/56/64 padding edges are the classic MD5
     implementation traps. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Md5.init () in
      String.iter (fun c -> Md5.update_string ctx (String.make 1 c)) s;
      check string_t
        (Printf.sprintf "byte-at-a-time, len %d" n)
        (Md5.to_hex (Md5.digest_string s))
        (Md5.to_hex (Md5.final ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

(* --- HMAC-MD5 ----------------------------------------------------------- *)

(* RFC 2202, test cases 1-3 and 6 (long key). *)
let test_hmac_rfc2202 () =
  let cases =
    [
      (String.make 16 '\x0b', "Hi There", "9294727a3638bb1c13f48ef8158bfc9d");
      ("Jefe", "what do ya want for nothing?", "750c783e6ab0b503eaa86e310a5db738");
      ( String.make 16 '\xaa',
        String.make 50 '\xdd',
        "56be34521d144c88dbb8c733f0e8b3f6" );
      ( String.make 80 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd" );
    ]
  in
  List.iter
    (fun (key, data, expect) ->
      check string_t "hmac-md5" expect (Md5.to_hex (Hmac.md5 ~key data)))
    cases

let test_hmac_verify () =
  let mac = Hmac.md5 ~key:"k" "data" in
  check bool_t "accepts equal" true (Hmac.verify ~expected:mac mac);
  let bad = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) mac in
  check bool_t "rejects different" false (Hmac.verify ~expected:mac bad);
  check bool_t "rejects length mismatch" false (Hmac.verify ~expected:mac "short")

let prop_hmac_key_sensitivity =
  qtest "hmac: different keys give different macs"
    QCheck2.Gen.(triple (string_size (int_range 1 40)) (string_size (int_range 1 40)) string)
    (fun (k1, k2, data) ->
      QCheck2.assume (k1 <> k2);
      Hmac.md5 ~key:k1 data <> Hmac.md5 ~key:k2 data)

(* --- RC4 ------------------------------------------------------------------ *)

let test_rc4_vectors () =
  (* Classic vectors (e.g. from the original posting / RFC 6229 spirit). *)
  let hex s = Md5.to_hex s in
  let ks key n = hex (Bytes.to_string (Rc4.keystream (Rc4.create key) n)) in
  check string_t "key 'Key'" "eb9f7781b734ca72a719" (ks "Key" 10);
  check string_t "key 'Wiki'" "6044db6d41b7" (ks "Wiki" 6);
  check string_t "key 'Secret'" "04d46b053ca87b59" (ks "Secret" 8);
  (* Plaintext XOR: 'Plaintext' under 'Key'. *)
  let ct = Rc4.apply_string (Rc4.create "Key") "Plaintext" in
  check string_t "encrypt" "bbf316e8d940af0ad3" (hex ct)

let prop_rc4_roundtrip =
  qtest "rc4: decrypt (encrypt x) = x"
    QCheck2.Gen.(pair (string_size (int_range 1 32)) (string_size (int_range 0 200)))
    (fun (k, data) ->
      let ct = Rc4.apply_string (Rc4.create k) data in
      Rc4.apply_string (Rc4.create k) ct = data)

(* --- SA / replay window ----------------------------------------------------- *)

let mk_sa ?(transform = Sa.Esp) () =
  Sa.create ~spi:0xDEADBEEFl ~transform ~auth_key:"auth-key"
    ~enc_key:"enc-key" ()

let test_sa_seq () =
  let sa = mk_sa () in
  check int_t "first" 1 (Sa.next_seq sa);
  check int_t "second" 2 (Sa.next_seq sa)

let test_replay_window () =
  let sa = mk_sa () in
  check bool_t "fresh 1" true (Sa.replay_check sa 1);
  check bool_t "fresh 2" true (Sa.replay_check sa 2);
  check bool_t "replay 2" false (Sa.replay_check sa 2);
  check bool_t "replay 1" false (Sa.replay_check sa 1);
  (* Out of order within the window. *)
  check bool_t "jump to 70" true (Sa.replay_check sa 70);
  check bool_t "late 50" true (Sa.replay_check sa 50);
  check bool_t "replay 50" false (Sa.replay_check sa 50);
  (* Older than the 64-wide window. *)
  check bool_t "too old 5" false (Sa.replay_check sa 5);
  check bool_t "zero invalid" false (Sa.replay_check sa 0)

let prop_replay_no_double_accept =
  qtest ~count:100 "replay window: no sequence accepted twice"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 1 80))
    (fun seqs ->
      let sa = mk_sa () in
      let accepted = Hashtbl.create 32 in
      List.for_all
        (fun seq ->
          let fresh = Sa.replay_check sa seq in
          if fresh && Hashtbl.mem accepted seq then false
          else begin
            if fresh then Hashtbl.add accepted seq ();
            true
          end)
        seqs)

(* --- IPsec plugins ------------------------------------------------------------ *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let mk_pair ~sa_name ~transform =
  Ipsec_plugin.add_sa ~name:sa_name
    (Sa.create ~spi:77l ~transform ~auth_key:("ak-" ^ sa_name)
       ~enc_key:("ek-" ^ sa_name) ());
  let out =
    ok
      (Ipsec_plugin.Out.create_instance ~instance_id:10 ~code:0
         ~config:[ ("sa", sa_name) ])
  in
  let inp =
    ok
      (Ipsec_plugin.In.create_instance ~instance_id:11 ~code:0
         ~config:[ ("sa", sa_name) ])
  in
  (out, inp)

let ctx : Rp_core.Plugin.ctx = { Rp_core.Plugin.now_ns = 0L; binding = None }

let mk_raw_packet payload =
  Mbuf.udp_v4 ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 10 0 0 2) ~sport:4000
    ~dport:5000 ~iface:0 ~payload ()

let payload_of (m : Mbuf.t) =
  match m.Mbuf.raw with
  | Some raw ->
    let off = Ipv4_header.size + Udp_header.size in
    Bytes.sub_string raw off (Bytes.length raw - off)
  | None -> Alcotest.fail "no raw bytes"

let test_esp_roundtrip_raw () =
  let out, inp = mk_pair ~sa_name:"esp-rt" ~transform:Sa.Esp in
  let secret = "attack at dawn, attack at dawn!" in
  let m = mk_raw_packet secret in
  let original_len = m.Mbuf.len in
  (match out.Rp_core.Plugin.handle ctx m with
   | Rp_core.Plugin.Continue | Rp_core.Plugin.Consumed -> ()
   | Rp_core.Plugin.Drop r -> Alcotest.failf "protect dropped: %s" r);
  check int_t "grew by overhead" (original_len + Ipsec_plugin.overhead) m.Mbuf.len;
  (* Ciphertext: the cleartext payload must not appear on the wire. *)
  let wire = payload_of m in
  check bool_t "payload encrypted" false
    (String.length wire >= String.length secret
     && String.sub wire 0 (String.length secret) = secret);
  (* The wire packet still parses (headers were rewritten). *)
  (match m.Mbuf.raw with
   | Some raw ->
     (match Mbuf.of_bytes ~iface:0 raw with
      | Ok m' -> check int_t "wire length consistent" m.Mbuf.len m'.Mbuf.len
      | Error e -> Alcotest.failf "wire reparse: %a" Mbuf.pp_error e)
   | None -> Alcotest.fail "no raw");
  (match inp.Rp_core.Plugin.handle ctx m with
   | Rp_core.Plugin.Continue | Rp_core.Plugin.Consumed -> ()
   | Rp_core.Plugin.Drop r -> Alcotest.failf "unprotect dropped: %s" r);
  check int_t "length restored" original_len m.Mbuf.len;
  check string_t "plaintext back" secret (payload_of m)

let test_esp_tamper_detected () =
  let out, inp = mk_pair ~sa_name:"esp-tamper" ~transform:Sa.Esp in
  let m = mk_raw_packet "integrity matters" in
  ignore (out.Rp_core.Plugin.handle ctx m);
  (match m.Mbuf.raw with
   | Some raw ->
     let pos = Ipv4_header.size + Udp_header.size + 3 in
     Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0xFF))
   | None -> Alcotest.fail "no raw");
  match inp.Rp_core.Plugin.handle ctx m with
  | Rp_core.Plugin.Drop reason ->
    check string_t "bad icv" "ipsec: bad ICV" reason;
    (match Ipsec_plugin.in_failures ~instance_id:11 with
     | Some (bad_icv, _) -> check int_t "counted" 1 bad_icv
     | None -> Alcotest.fail "no failure counters")
  | Rp_core.Plugin.Consumed | Rp_core.Plugin.Continue -> Alcotest.fail "tampered packet accepted"

let test_esp_replay_detected () =
  let out, inp = mk_pair ~sa_name:"esp-replay" ~transform:Sa.Esp in
  let m = mk_raw_packet "once only" in
  ignore (out.Rp_core.Plugin.handle ctx m);
  let replayed =
    match m.Mbuf.raw with
    | Some raw ->
      let copy = Mbuf.synth ~key:m.Mbuf.key ~len:m.Mbuf.len () in
      copy.Mbuf.raw <- Some (Bytes.copy raw);
      copy
    | None -> Alcotest.fail "no raw"
  in
  (match inp.Rp_core.Plugin.handle ctx m with
   | Rp_core.Plugin.Continue | Rp_core.Plugin.Consumed -> ()
   | Rp_core.Plugin.Drop r -> Alcotest.failf "first copy dropped: %s" r);
  match inp.Rp_core.Plugin.handle ctx replayed with
  | Rp_core.Plugin.Drop reason -> check string_t "replay" "ipsec: replayed sequence" reason
  | Rp_core.Plugin.Consumed | Rp_core.Plugin.Continue -> Alcotest.fail "replay accepted"

let test_ah_authenticates_without_encrypting () =
  let out, inp = mk_pair ~sa_name:"ah-rt" ~transform:Sa.Ah in
  let text = "authentic cleartext" in
  let m = mk_raw_packet text in
  ignore (out.Rp_core.Plugin.handle ctx m);
  let wire = payload_of m in
  check bool_t "payload in clear under AH" true
    (String.sub wire 0 (String.length text) = text);
  match inp.Rp_core.Plugin.handle ctx m with
  | Rp_core.Plugin.Continue -> check string_t "payload intact" text (payload_of m)
  | Rp_core.Plugin.Consumed -> Alcotest.fail "AH consumed the packet"
  | Rp_core.Plugin.Drop r -> Alcotest.failf "AH verify failed: %s" r

let test_ipsec_synthetic_path () =
  let out, inp = mk_pair ~sa_name:"esp-synth" ~transform:Sa.Esp in
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 10 0 0 2)
      ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0
  in
  let m = Mbuf.synth ~key ~len:500 () in
  ignore (out.Rp_core.Plugin.handle ctx m);
  check int_t "len grew" (500 + Ipsec_plugin.overhead) m.Mbuf.len;
  check bool_t "tagged" true (m.Mbuf.tags <> []);
  (match inp.Rp_core.Plugin.handle ctx m with
   | Rp_core.Plugin.Continue | Rp_core.Plugin.Consumed -> ()
   | Rp_core.Plugin.Drop r -> Alcotest.failf "synthetic unprotect: %s" r);
  check int_t "len restored" 500 m.Mbuf.len;
  (* An unprotected packet at the inbound gate is rejected. *)
  let naked = Mbuf.synth ~key ~len:100 () in
  match inp.Rp_core.Plugin.handle ctx naked with
  | Rp_core.Plugin.Drop _ -> ()
  | Rp_core.Plugin.Consumed | Rp_core.Plugin.Continue -> Alcotest.fail "unprotected packet accepted"

let test_sa_config_errors () =
  (match Ipsec_plugin.Out.create_instance ~instance_id:1 ~code:0 ~config:[] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing sa accepted");
  match
    Ipsec_plugin.Out.create_instance ~instance_id:1 ~code:0
      ~config:[ ("sa", "no-such-sa") ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown sa accepted"

let prop_esp_roundtrip_random_payloads =
  qtest ~count:60 "esp: protect then unprotect restores any payload"
    QCheck2.Gen.(string_size (int_range 0 512))
    (fun payload ->
      let name = "esp-prop" in
      Ipsec_plugin.add_sa ~name
        (Sa.create ~spi:5l ~transform:Sa.Esp ~auth_key:"a" ~enc_key:"e" ());
      match
        ( Ipsec_plugin.Out.create_instance ~instance_id:20 ~code:0
            ~config:[ ("sa", name) ],
          Ipsec_plugin.In.create_instance ~instance_id:21 ~code:0
            ~config:[ ("sa", name) ] )
      with
      | Ok out, Ok inp ->
        let m = mk_raw_packet payload in
        (match out.Rp_core.Plugin.handle ctx m with
         | Rp_core.Plugin.Continue ->
           (match inp.Rp_core.Plugin.handle ctx m with
            | Rp_core.Plugin.Continue -> payload_of m = payload
            | Rp_core.Plugin.Drop _ | Rp_core.Plugin.Consumed -> false)
         | Rp_core.Plugin.Drop _ | Rp_core.Plugin.Consumed -> false)
      | _, _ -> false)

let () =
  Alcotest.run "rp_crypto"
    [
      ( "md5",
        [
          Alcotest.test_case "rfc 1321 vectors" `Quick test_md5_rfc_vectors;
          Alcotest.test_case "block boundaries" `Quick test_md5_block_boundaries;
          prop_md5_incremental;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc 2202 vectors" `Quick test_hmac_rfc2202;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          prop_hmac_key_sensitivity;
        ] );
      ( "rc4",
        [
          Alcotest.test_case "known vectors" `Quick test_rc4_vectors;
          prop_rc4_roundtrip;
        ] );
      ( "sa",
        [
          Alcotest.test_case "sequence numbers" `Quick test_sa_seq;
          Alcotest.test_case "replay window" `Quick test_replay_window;
          prop_replay_no_double_accept;
        ] );
      ( "ipsec",
        [
          Alcotest.test_case "esp roundtrip (raw)" `Quick test_esp_roundtrip_raw;
          Alcotest.test_case "esp tamper detected" `Quick test_esp_tamper_detected;
          Alcotest.test_case "esp replay detected" `Quick test_esp_replay_detected;
          Alcotest.test_case "ah cleartext auth" `Quick
            test_ah_authenticates_without_encrypting;
          Alcotest.test_case "synthetic path" `Quick test_ipsec_synthetic_path;
          Alcotest.test_case "config errors" `Quick test_sa_config_errors;
          prop_esp_roundtrip_random_payloads;
        ] );
    ]
