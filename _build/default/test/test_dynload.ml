(* Dynamic plugin loading: the literal `modload file.o` of the paper,
   via OCaml's Dynlink.  The hello_dyn plugin lives in plugins/ and is
   not linked into this binary; it is loaded from its .cmxs at run
   time, registered with the PCU, instantiated, bound to a flow, and
   exercised on the data path. *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let plugin_path =
  (* Under `dune runtest` the cwd is _build/default/test; under
     `dune exec` it is the invocation directory. *)
  List.find_opt Sys.file_exists
    [
      "../plugins/hello_dyn/hello_dyn.cmxs";
      "_build/default/plugins/hello_dyn/hello_dyn.cmxs";
      "plugins/hello_dyn/hello_dyn.cmxs";
    ]

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_modload_file () =
  match plugin_path with
  | None -> Alcotest.skip ()
  | Some plugin_path ->
    let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
    let r = Router.create ~ifaces () in
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    let names = ok (Rp_control.Dynload.modload_file r.Router.pcu plugin_path) in
    check bool_t "announced hello-dyn" true (names = [ "hello-dyn" ]);
    check bool_t "pcu sees it" true (Pcu.is_loaded r.Router.pcu "hello-dyn");
    (* The loaded plugin behaves like any built-in: instantiate, bind,
       process. *)
    let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:"hello-dyn" []) in
    ok
      (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
         (Rp_classifier.Filter.v4 ()));
    let m =
      Mbuf.synth
        ~key:
          (Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
             ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0)
        ~len:100 ()
    in
    (match Ip_core.process r ~now:0L m with
     | Ip_core.Enqueued 1 -> ()
     | v -> Alcotest.failf "expected forward, got %a" Ip_core.pp_verdict v);
    check bool_t "dynamically loaded handler ran" true
      (Mbuf.has_tag m "hello-from-dynlink");
    check string_t "plugin message answered"
      "dynamically loaded demo plugin (tags packets)"
      (ok (Pcu.message r.Router.pcu ~plugin:"hello-dyn" "plugin-info" ""));
    (* Double-load of the same object file is rejected cleanly. *)
    (match Rp_control.Dynload.modload_file r.Router.pcu plugin_path with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "double modload accepted")

let test_modload_missing_file () =
  let ifaces = [ Iface.create ~id:0 () ] in
  let r = Router.create ~ifaces () in
  match Rp_control.Dynload.modload_file r.Router.pcu "no-such-plugin.cmxs" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let () =
  Alcotest.run "dynload"
    [
      ( "dynlink",
        [
          Alcotest.test_case "modload .cmxs end to end" `Quick test_modload_file;
          Alcotest.test_case "missing file" `Quick test_modload_missing_file;
        ] );
    ]
