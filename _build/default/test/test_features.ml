(* Tests for the extension features: ICMP generation, IPv4
   fragmentation/reassembly, and the L4-switching routing plugin
   (the paper's section 8 future work). *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* --- ICMP wire format -------------------------------------------------- *)

let test_icmp_roundtrip () =
  let cases =
    [
      Icmp.Echo_request { ident = 42; seq = 7 };
      Icmp.Echo_reply { ident = 42; seq = 7 };
      Icmp.Dest_unreachable Icmp.Net_unreachable;
      Icmp.Dest_unreachable Icmp.Port_unreachable;
      Icmp.Dest_unreachable Icmp.Admin_prohibited;
      Icmp.Time_exceeded;
      Icmp.Packet_too_big 1500;
      Icmp.Param_problem 8;
    ]
  in
  List.iter
    (fun family ->
      List.iter
        (fun message ->
          let t = { Icmp.message; payload = "original header bytes here.." } in
          let wire = Icmp.serialize ~family t in
          match Icmp.parse ~family wire with
          | Ok t' ->
            check bool_t
              (Format.asprintf "%a roundtrip" Icmp.pp t)
              true
              (t'.Icmp.message = message && t'.Icmp.payload = t.Icmp.payload)
          | Error e -> Alcotest.failf "parse: %a" Icmp.pp_error e)
        cases)
    [ `V4; `V6 ]

let test_icmp_checksum_detects () =
  let wire =
    Icmp.serialize ~family:`V4
      { Icmp.message = Icmp.Time_exceeded; payload = "xyz" }
  in
  Bytes.set wire 9 'Q';
  check bool_t "corruption detected" true
    (match Icmp.parse ~family:`V4 wire with
     | Error Icmp.Bad_checksum -> true
     | Ok _ | Error _ -> false)

(* --- ICMP generation by the core --------------------------------------- *)

let mk_router ?(mtu1 = 9180) () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 ~mtu:mtu1 () ] in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  (* Route back to sources, and a local address to send errors from. *)
  Router.add_route r (Prefix.of_string "10.0.0.0/8") ~iface:0 ();
  Router.add_local_addr r (Ipaddr.v4 172 31 0 1);
  r

let mk_pkt ?(ttl = 64) ?(len = 1000) ?(dst = "192.168.1.1") () =
  Mbuf.synth ~ttl
    ~key:
      (Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.of_string dst)
         ~proto:Proto.udp ~sport:5000 ~dport:9000 ~iface:0)
    ~len ()

let test_icmp_ttl_exceeded () =
  let r = mk_router () in
  (match Ip_core.process r ~now:0L (mk_pkt ~ttl:1 ()) with
   | Ip_core.Dropped _ -> ()
   | v -> Alcotest.failf "expected drop, got %a" Ip_core.pp_verdict v);
  check int_t "icmp generated" 1 r.Router.icmp_sent;
  (* The error went out toward the source (if0). *)
  match Iface.dequeue (Router.iface r 0) ~now:0L with
  | Some icmp_pkt ->
    check int_t "icmp proto" Proto.icmp icmp_pkt.Mbuf.key.Flow_key.proto;
    check bool_t "addressed to source" true
      (Ipaddr.equal icmp_pkt.Mbuf.key.Flow_key.dst (Ipaddr.v4 10 0 0 1));
    (match icmp_pkt.Mbuf.raw with
     | Some body ->
       (match Icmp.parse ~family:`V4 body with
        | Ok { Icmp.message = Icmp.Time_exceeded; _ } -> ()
        | Ok t -> Alcotest.failf "wrong message: %a" Icmp.pp t
        | Error e -> Alcotest.failf "parse: %a" Icmp.pp_error e)
     | None -> Alcotest.fail "no body")
  | None -> Alcotest.fail "no icmp on if0"

let test_icmp_no_route () =
  let r = mk_router () in
  (match Ip_core.process r ~now:0L (mk_pkt ~dst:"8.8.8.8" ()) with
   | Ip_core.Dropped _ -> ()
   | v -> Alcotest.failf "expected drop, got %a" Ip_core.pp_verdict v);
  check int_t "icmp generated" 1 r.Router.icmp_sent;
  match Iface.dequeue (Router.iface r 0) ~now:0L with
  | Some icmp_pkt ->
    (match icmp_pkt.Mbuf.raw with
     | Some body ->
       (match Icmp.parse ~family:`V4 body with
        | Ok { Icmp.message = Icmp.Dest_unreachable Icmp.Net_unreachable; _ } -> ()
        | Ok t -> Alcotest.failf "wrong message: %a" Icmp.pp t
        | Error e -> Alcotest.failf "parse: %a" Icmp.pp_error e)
     | None -> Alcotest.fail "no body")
  | None -> Alcotest.fail "no icmp on if0"

let test_icmp_never_about_icmp () =
  let r = mk_router () in
  let m = mk_pkt ~dst:"8.8.8.8" () in
  m.Mbuf.key <- { m.Mbuf.key with Flow_key.proto = Proto.icmp };
  ignore (Ip_core.process r ~now:0L m);
  check int_t "no icmp about icmp" 0 r.Router.icmp_sent

let test_icmp_needs_local_addr () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  ignore (Ip_core.process r ~now:0L (mk_pkt ~ttl:1 ()));
  check int_t "silent without local address" 0 r.Router.icmp_sent

let test_icmp_echo_responder () =
  let r = mk_router () in
  let router_addr = Ipaddr.v4 172 31 0 1 in
  let body =
    Icmp.serialize ~family:`V4
      { Icmp.message = Icmp.Echo_request { ident = 5; seq = 2 };
        payload = "ping payload" }
  in
  let m =
    Mbuf.synth
      ~key:
        (Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:router_addr
           ~proto:Proto.icmp ~sport:0 ~dport:0 ~iface:0)
      ~len:(Ipv4_header.size + Bytes.length body) ()
  in
  m.Mbuf.raw <- Some body;
  (match Ip_core.process r ~now:0L m with
   | Ip_core.Delivered_local -> ()
   | v -> Alcotest.failf "expected local delivery, got %a" Ip_core.pp_verdict v);
  (* The reply went back out toward the source. *)
  match Iface.dequeue (Router.iface r 0) ~now:0L with
  | Some reply ->
    check bool_t "to the pinger" true
      (Ipaddr.equal reply.Mbuf.key.Flow_key.dst (Ipaddr.v4 10 0 0 1));
    (match reply.Mbuf.raw with
     | Some raw ->
       (match Icmp.parse ~family:`V4 raw with
        | Ok { Icmp.message = Icmp.Echo_reply { ident = 5; seq = 2 }; payload } ->
          check bool_t "payload echoed" true (payload = "ping payload")
        | Ok t -> Alcotest.failf "wrong reply: %a" Icmp.pp t
        | Error e -> Alcotest.failf "parse: %a" Icmp.pp_error e)
     | None -> Alcotest.fail "no reply body")
  | None -> Alcotest.fail "no echo reply sent"

(* --- fragmentation ------------------------------------------------------ *)

let test_fragment_basic () =
  let m = mk_pkt ~len:4020 () in
  m.Mbuf.ident <- 777;
  match Frag.fragment m ~mtu:1500 with
  | Error _ -> Alcotest.fail "should fragment"
  | Ok frags ->
    check int_t "three fragments" 3 (List.length frags);
    List.iter
      (fun (f : Mbuf.t) ->
        check bool_t "fits mtu" true (f.Mbuf.len <= 1500);
        check int_t "ident inherited" 777 f.Mbuf.ident)
      frags;
    (* Offsets contiguous, multiple of 8, last has more=false. *)
    let infos = List.filter_map (fun (f : Mbuf.t) -> f.Mbuf.frag) frags in
    check int_t "all marked" 3 (List.length infos);
    let payload_total = 4020 - Ipv4_header.size in
    let covered =
      List.fold_left
        (fun acc (f : Mbuf.t) -> acc + (f.Mbuf.len - Ipv4_header.size))
        0 frags
    in
    check int_t "payload conserved" payload_total covered;
    (match List.rev infos with
     | last :: earlier ->
       check bool_t "last not more" false last.Mbuf.more;
       List.iter (fun i -> check bool_t "more set" true i.Mbuf.more) earlier
     | [] -> Alcotest.fail "no fragments");
    List.iter
      (fun i -> check int_t "8-aligned" 0 (i.Mbuf.offset mod 8))
      infos

let test_fragment_df_and_v6 () =
  let m = mk_pkt ~len:4020 () in
  m.Mbuf.dont_fragment <- true;
  check bool_t "df refused" true (Frag.fragment m ~mtu:1500 = Error `Dont_fragment);
  let k6 =
    Flow_key.make ~src:(Ipaddr.of_string "2001:db8::1")
      ~dst:(Ipaddr.of_string "2001:db8::2") ~proto:Proto.udp ~sport:1 ~dport:2
      ~iface:0
  in
  let m6 = Mbuf.synth ~key:k6 ~len:4020 () in
  check bool_t "v6 refused" true
    (Frag.fragment m6 ~mtu:1500 = Error `V6_never_fragments);
  (* Small packets pass through untouched. *)
  let small = mk_pkt ~len:500 () in
  check bool_t "no-op" true (Frag.fragment small ~mtu:1500 = Ok [ small ])

let test_fragment_raw_bytes () =
  let payload = String.init 3000 (fun i -> Char.chr (i land 0xFF)) in
  let m =
    Mbuf.udp_v4 ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
      ~sport:1 ~dport:2 ~iface:0 ~payload ()
  in
  m.Mbuf.ident <- 4242;
  let frags = ok (Result.map_error (fun _ -> "frag") (Frag.fragment m ~mtu:576)) in
  (* Every fragment is a valid IPv4 packet on the wire. *)
  List.iter
    (fun (f : Mbuf.t) ->
      match f.Mbuf.raw with
      | Some raw ->
        (match Ipv4_header.parse raw 0 with
         | Ok h ->
           check int_t "wire length" f.Mbuf.len h.Ipv4_header.total_length;
           check int_t "ident" 4242 h.Ipv4_header.ident
         | Error e -> Alcotest.failf "fragment header: %a" Ipv4_header.pp_error e)
      | None -> Alcotest.fail "fragment lost raw bytes")
    frags;
  (* Reassembly restores the exact original bytes. *)
  let reasm = Frag.Reassembly.create () in
  let result =
    List.fold_left
      (fun acc f ->
        match Frag.Reassembly.offer reasm ~now:0L f with
        | Some whole -> Some whole
        | None -> acc)
      None frags
  in
  match result, m.Mbuf.raw with
  | Some whole, Some original ->
    check int_t "length restored" m.Mbuf.len whole.Mbuf.len;
    (match whole.Mbuf.raw with
     | Some rebuilt ->
       (* Headers differ in flags/checksum/udp-checksum treatment only
          beyond the IP header; compare payloads. *)
       check bool_t "payload bytes restored" true
         (Bytes.sub rebuilt Ipv4_header.size (Bytes.length rebuilt - Ipv4_header.size)
          = Bytes.sub original Ipv4_header.size (Bytes.length original - Ipv4_header.size))
     | None -> Alcotest.fail "no rebuilt bytes")
  | None, _ -> Alcotest.fail "reassembly incomplete"
  | _, None -> Alcotest.fail "no original bytes"

let prop_fragment_reassemble =
  qtest ~count:200 "fragment + reassemble (any order) = identity"
    QCheck2.Gen.(
      triple (int_range 1300 9000) (int_range 600 1500) (int_range 0 1000))
    (fun (len, mtu, shuffle_seed) ->
      let m = mk_pkt ~len () in
      m.Mbuf.ident <- 9;
      match Frag.fragment m ~mtu with
      | Error _ -> false
      | Ok frags ->
        let rng = Random.State.make [| shuffle_seed |] in
        let shuffled =
          List.map (fun f -> (Random.State.bits rng, f)) frags
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.map snd
        in
        let reasm = Frag.Reassembly.create () in
        let complete = ref None in
        let premature = ref false in
        List.iteri
          (fun i f ->
            match Frag.Reassembly.offer reasm ~now:0L f with
            | Some whole ->
              if i < List.length shuffled - 1 then premature := false;
              complete := Some whole
            | None -> ())
          shuffled;
        (not !premature)
        &&
        (match !complete with
         | Some whole ->
           whole.Mbuf.len = len && Frag.Reassembly.pending reasm = 0
         | None -> List.length frags = 1))

let test_reassembly_timeout () =
  let reasm = Frag.Reassembly.create ~timeout_ns:1000L () in
  let m = mk_pkt ~len:3000 () in
  let frags = ok (Result.map_error (fun _ -> "frag") (Frag.fragment m ~mtu:1500)) in
  (match frags with
   | first :: _ -> ignore (Frag.Reassembly.offer reasm ~now:0L first)
   | [] -> Alcotest.fail "no fragments");
  check int_t "pending" 1 (Frag.Reassembly.pending reasm);
  check int_t "expired" 1 (Frag.Reassembly.expire reasm ~now:5000L);
  check int_t "gone" 0 (Frag.Reassembly.pending reasm)

let test_router_fragments_at_egress () =
  (* Egress MTU 1500, 4 KB datagrams: the router fragments; DF makes
     it drop with an ICMP packet-too-big. *)
  let r = mk_router ~mtu1:1500 () in
  (match Ip_core.process r ~now:0L (mk_pkt ~len:4000 ()) with
   | Ip_core.Enqueued 1 -> ()
   | v -> Alcotest.failf "expected enqueue, got %a" Ip_core.pp_verdict v);
  check int_t "three fragments queued" 3 (Iface.backlog (Router.iface r 1));
  let df = mk_pkt ~len:4000 () in
  df.Mbuf.dont_fragment <- true;
  (match Ip_core.process r ~now:0L df with
   | Ip_core.Dropped "needs fragmentation" -> ()
   | v -> Alcotest.failf "expected df drop, got %a" Ip_core.pp_verdict v);
  check int_t "icmp too-big sent" 1 r.Router.icmp_sent

(* --- L4 routing plugin --------------------------------------------------- *)

let test_l4_policy_routing () =
  (* Default route sends everything to if1; a routing-plugin binding
     steers one application flow to if2 (policy routing). *)
  let ifaces = List.init 3 (fun id -> Iface.create ~id ()) in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  ok (Pcu.modload r.Router.pcu (module Route_plugin));
  let via2 =
    ok
      (Pcu.create_instance r.Router.pcu ~plugin:"l4-route"
         [ ("iface", "2"); ("nexthop", "172.16.0.9") ])
  in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:via2.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.udp ~dport:(Rp_classifier.Filter.Port 4433) ()));
  (* The special flow goes to if2 with the configured next hop... *)
  let special = mk_pkt () in
  special.Mbuf.key <- { special.Mbuf.key with Flow_key.dport = 4433 };
  (match Ip_core.process r ~now:0L special with
   | Ip_core.Enqueued 2 -> ()
   | v -> Alcotest.failf "expected if2, got %a" Ip_core.pp_verdict v);
  check bool_t "next hop set" true
    (match special.Mbuf.next_hop with
     | Some a -> Ipaddr.equal a (Ipaddr.v4 172 16 0 9)
     | None -> false);
  (* ...ordinary traffic still follows the table. *)
  match Ip_core.process r ~now:0L (mk_pkt ()) with
  | Ip_core.Enqueued 1 -> ()
  | v -> Alcotest.failf "expected if1, got %a" Ip_core.pp_verdict v

let test_l4_blackhole () =
  let r = mk_router () in
  ok (Pcu.modload r.Router.pcu (module Route_plugin));
  let bh =
    ok
      (Pcu.create_instance r.Router.pcu ~plugin:"l4-route"
         [ ("action", "blackhole") ])
  in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:bh.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~src:(Prefix.of_string "10.0.0.0/24") ()));
  (match Ip_core.process r ~now:0L (mk_pkt ()) with
   | Ip_core.Dropped "null route" -> ()
   | v -> Alcotest.failf "expected blackhole, got %a" Ip_core.pp_verdict v);
  match Route_plugin.totals_of ~instance_id:bh.Plugin.instance_id with
  | Some t -> check int_t "counted" 1 t.Route_plugin.blackholed
  | None -> Alcotest.fail "no totals"

let test_l4_route_cached () =
  (* Second packet of the flow routes via the FIX — no extra filter
     lookups. *)
  let ifaces = List.init 3 (fun id -> Iface.create ~id ()) in
  let r = Router.create ~gates:[ Gate.Routing ] ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  ok (Pcu.modload r.Router.pcu (module Route_plugin));
  let via2 = ok (Pcu.create_instance r.Router.pcu ~plugin:"l4-route" [ ("iface", "2") ]) in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:via2.Plugin.instance_id
       (Rp_classifier.Filter.v4 ()));
  ignore (Ip_core.process r ~now:0L (mk_pkt ()));
  let ft = Rp_classifier.Aiu.flow_table (Router.aiu r) in
  let misses_before = (Rp_classifier.Flow_table.stats ft).Rp_classifier.Flow_table.misses in
  (match Ip_core.process r ~now:1L (mk_pkt ()) with
   | Ip_core.Enqueued 2 -> ()
   | v -> Alcotest.failf "expected if2, got %a" Ip_core.pp_verdict v);
  let misses_after = (Rp_classifier.Flow_table.stats ft).Rp_classifier.Flow_table.misses in
  check int_t "no new classification misses" misses_before misses_after

let test_l4_config_errors () =
  (match Route_plugin.create_instance ~instance_id:1 ~code:0 ~config:[] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing iface accepted");
  (match
     Route_plugin.create_instance ~instance_id:1 ~code:0
       ~config:[ ("action", "teleport") ]
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad action accepted");
  match
    Route_plugin.create_instance ~instance_id:1 ~code:0
      ~config:[ ("iface", "zero") ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad iface accepted"

(* --- data-path conservation ---------------------------------------------- *)

(* Whatever the configuration, every received packet is accounted for
   exactly once: enqueued, delivered locally, absorbed, or dropped —
   and everything enqueued is either still backlogged or transmitted. *)
let prop_packet_conservation =
  qtest ~count:150 "ip_core: every packet accounted exactly once"
    QCheck2.Gen.(
      triple (int_bound 2) (list_size (int_range 1 40) (pair (int_bound 7) (int_bound 3)))
        (int_bound 2))
    (fun (config, packets, _salt) ->
      let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:8 () ] in
      let r = Router.create ~ifaces () in
      Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
      Router.add_local_addr r (Ipaddr.v4 172 31 0 1);
      (* Configurations: plain, deny-some firewall, ipsec-in expecting
         protection (drops everything unprotected). *)
      (match config with
       | 1 ->
         (match Pcu.modload r.Router.pcu (module Firewall_plugin) with
          | Ok () ->
            (match
               Pcu.create_instance r.Router.pcu ~plugin:"firewall"
                 [ ("policy", "deny") ]
             with
             | Ok inst ->
               ignore
                 (Pcu.register_instance r.Router.pcu
                    ~instance:inst.Plugin.instance_id
                    (Rp_classifier.Filter.v4 ~proto:Proto.tcp ()))
             | Error _ -> ())
          | Error _ -> ())
       | 2 ->
         Rp_crypto.Ipsec_plugin.add_sa ~name:"conserve"
           (Rp_crypto.Sa.create ~spi:1l ~transform:Rp_crypto.Sa.Ah
              ~auth_key:"k" ());
         (match Pcu.modload r.Router.pcu (module Rp_crypto.Ipsec_plugin.In) with
          | Ok () ->
            (match
               Pcu.create_instance r.Router.pcu ~plugin:"ipsec-in"
                 [ ("sa", "conserve") ]
             with
             | Ok inst ->
               ignore
                 (Pcu.register_instance r.Router.pcu
                    ~instance:inst.Plugin.instance_id
                    (Rp_classifier.Filter.v4 ~proto:Proto.udp ()))
             | Error _ -> ())
          | Error _ -> ())
       | _ -> ());
      let enqueued = ref 0 and delivered = ref 0 and dropped = ref 0
      and absorbed = ref 0 in
      List.iter
        (fun (i, proto_sel) ->
          let proto =
            match proto_sel with
            | 0 -> Proto.udp
            | 1 -> Proto.tcp
            | _ -> Proto.icmp
          in
          let dst =
            if i = 7 then Ipaddr.v4 8 8 8 8  (* no route *)
            else Ipaddr.v4 192 168 1 (1 + i)
          in
          let m =
            Mbuf.synth
              ~key:
                (Flow_key.make ~src:(Ipaddr.v4 10 0 0 (1 + i)) ~dst ~proto
                   ~sport:(1000 + i) ~dport:2000 ~iface:0)
              ~len:500 ()
          in
          match Ip_core.process r ~now:0L m with
          | Ip_core.Enqueued _ -> incr enqueued
          | Ip_core.Delivered_local -> incr delivered
          | Ip_core.Absorbed -> incr absorbed
          | Ip_core.Dropped _ -> incr dropped)
        packets;
      let accounted = !enqueued + !delivered + !dropped + !absorbed in
      (* ICMP errors are self-generated extras on if0/if1; drain both
         queues and check the data-plane totals stay consistent. *)
      let drained = ref 0 in
      List.iter
        (fun ifc ->
          let continue = ref true in
          while !continue do
            match Iface.dequeue ifc ~now:0L with
            | Some _ -> incr drained
            | None -> continue := false
          done)
        [ Router.iface r 0; Router.iface r 1 ];
      accounted = List.length packets && !drained >= !enqueued - 8 (* fifo_limit drops *))

let () =
  Alcotest.run "features"
    [
      ( "icmp",
        [
          Alcotest.test_case "wire roundtrip" `Quick test_icmp_roundtrip;
          Alcotest.test_case "checksum" `Quick test_icmp_checksum_detects;
          Alcotest.test_case "ttl exceeded" `Quick test_icmp_ttl_exceeded;
          Alcotest.test_case "no route" `Quick test_icmp_no_route;
          Alcotest.test_case "never about icmp" `Quick test_icmp_never_about_icmp;
          Alcotest.test_case "needs local addr" `Quick test_icmp_needs_local_addr;
          Alcotest.test_case "echo responder" `Quick test_icmp_echo_responder;
        ] );
      ( "frag",
        [
          Alcotest.test_case "basic split" `Quick test_fragment_basic;
          Alcotest.test_case "df and v6 refused" `Quick test_fragment_df_and_v6;
          Alcotest.test_case "raw wire fragments" `Quick test_fragment_raw_bytes;
          prop_fragment_reassemble;
          Alcotest.test_case "reassembly timeout" `Quick test_reassembly_timeout;
          Alcotest.test_case "router fragments at egress" `Quick
            test_router_fragments_at_egress;
        ] );
      ( "conservation",
        [ prop_packet_conservation ] );
      ( "l4-route",
        [
          Alcotest.test_case "policy routing" `Quick test_l4_policy_routing;
          Alcotest.test_case "blackhole" `Quick test_l4_blackhole;
          Alcotest.test_case "route decision cached" `Quick test_l4_route_cached;
          Alcotest.test_case "config errors" `Quick test_l4_config_errors;
        ] );
    ]
