(* Integration tests: complete EISR configurations under simulated
   traffic — per-flow plugin selection across several gates, a VPN
   between two routers, SSP-driven reservations shaping bandwidth, hot
   rebinding under traffic, and flow-cache churn with recycling. *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let pmgr r cmd = ok (Rp_control.Pmgr.exec r cmd)

(* --- per-flow plugin selection (the SEC1/SEC2 picture of Figure 3) --- *)

let test_per_flow_instances () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  let r = s.Rp_sim.Scenario.router in
  (* Two stats instances, one per department prefix. *)
  ignore (pmgr r "modload stats");
  ignore (pmgr r "create stats");
  ignore (pmgr r "create stats");
  ignore (pmgr r "bind 1 <10.0.1.0/24, *, *, *, *, *>");
  ignore (pmgr r "bind 2 <10.0.2.0/24, *, *, *, *, *>");
  let inject id src n =
    for i = 0 to n - 1 do
      let key =
        Flow_key.make ~src ~dst:(Ipaddr.v4 192 168 1 1) ~proto:Proto.udp
          ~sport:(1000 + id) ~dport:9000 ~iface:0
      in
      let m = Mbuf.synth ~key ~len:100 () in
      Rp_sim.Net.inject s.Rp_sim.Scenario.node m
        ~at:(Int64.of_int ((i * 1000) + id))
    done
  in
  inject 1 (Ipaddr.v4 10 0 1 5) 7;
  inject 2 (Ipaddr.v4 10 0 2 5) 11;
  inject 3 (Ipaddr.v4 10 0 3 5) 3;  (* matches neither *)
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  (match Stats_plugin.totals_of ~instance_id:1 with
   | Some t ->
     check int_t "instance 1 saw dept-1 only" 7 t.Stats_plugin.packets
   | None -> Alcotest.fail "no totals for instance 1");
  (match Stats_plugin.totals_of ~instance_id:2 with
   | Some t ->
     check int_t "instance 2 saw dept-2 only" 11 t.Stats_plugin.packets
   | None -> Alcotest.fail "no totals for instance 2");
  check int_t "everything still forwarded" 21
    (Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink)

(* --- VPN: encrypt at one router, decrypt at the next ------------------ *)

let test_vpn_two_routers () =
  let sim = Rp_sim.Sim.create () in
  let mk name =
    Router.create ~name
      ~ifaces:[ Iface.create ~id:0 (); Iface.create ~id:1 () ]
      ()
  in
  let r1 = mk "vpn-a" and r2 = mk "vpn-b" in
  Router.add_route r1 (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  Router.add_route r2 (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let n1 = Rp_sim.Net.add_router sim r1 in
  let n2 = Rp_sim.Net.add_router sim r2 in
  let sink = Rp_sim.Sink.create () in
  Rp_sim.Net.connect n1 ~iface:1 (Rp_sim.Net.To_node (n2, 0)) ~prop_ns:1000L;
  Rp_sim.Net.connect n2 ~iface:1 (Rp_sim.Net.To_sink sink) ~prop_ns:1000L;
  (* Shared SA; egress protection on r1, ingress verification on r2. *)
  Rp_crypto.Ipsec_plugin.add_sa ~name:"tunnel"
    (Rp_crypto.Sa.create ~spi:9l ~transform:Rp_crypto.Sa.Esp
       ~auth_key:"integration-auth" ~enc_key:"integration-enc" ());
  ignore (pmgr r1 "modload ipsec-out");
  ignore (pmgr r1 "create ipsec-out sa=tunnel");
  ignore (pmgr r1 "bind 1 <10.0.0.0/8, 192.168.0.0/16, UDP, *, *, *>");
  ignore (pmgr r2 "modload ipsec-in");
  ignore (pmgr r2 "create ipsec-in sa=tunnel");
  ignore (pmgr r2 "bind 1 <10.0.0.0/8, 192.168.0.0/16, UDP, *, *, *>");
  let secret = "the plans for the fourth quarter" in
  let observed_ciphertext = ref false in
  for i = 0 to 9 do
    let m =
      Mbuf.udp_v4 ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
        ~sport:5000 ~dport:9000 ~iface:0 ~payload:secret ()
    in
    m.Mbuf.seq <- i;
    Rp_sim.Net.inject n1 m ~at:(Int64.of_int (i * 100_000));
    ignore observed_ciphertext
  done;
  ignore (Rp_sim.Sim.run sim);
  check int_t "all delivered" 10 (Rp_sim.Sink.total_packets sink);
  (* r2 received protected packets (longer by the ipsec overhead) and
     stripped them; the sink sees original-size datagrams. *)
  let fs =
    match Rp_sim.Sink.flows sink with
    | [ (_, fs) ] -> fs
    | l -> Alcotest.failf "expected one flow at sink, got %d" (List.length l)
  in
  let clear_len = Ipv4_header.size + Udp_header.size + String.length secret in
  check int_t "sink sees cleartext size" (10 * clear_len) fs.Rp_sim.Sink.bytes;
  let r2_rx = (Router.iface r2 0).Iface.counters.Iface.rx_bytes in
  check int_t "middle link carried protected size"
    (10 * (clear_len + Rp_crypto.Ipsec_plugin.overhead))
    r2_rx

(* VPN across a small-MTU middle link: ESP inflation pushes packets
   past the MTU, gw-a's egress fragments, gw-b's security-in gate
   reassembles before verifying and decrypting. *)
let test_vpn_with_fragmentation () =
  let sim = Rp_sim.Sim.create () in
  let mk name mtu1 =
    Router.create ~name
      ~ifaces:[ Iface.create ~id:0 (); Iface.create ~id:1 ~mtu:mtu1 () ]
      ()
  in
  let r1 = mk "frag-a" 600 (* small MTU toward r2 *) in
  let r2 = mk "frag-b" 9180 in
  Router.add_route r1 (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  Router.add_route r2 (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let n1 = Rp_sim.Net.add_router sim r1 in
  let n2 = Rp_sim.Net.add_router sim r2 in
  let sink = Rp_sim.Sink.create () in
  Rp_sim.Net.connect n1 ~iface:1 (Rp_sim.Net.To_node (n2, 0)) ~prop_ns:1000L;
  Rp_sim.Net.connect n2 ~iface:1 (Rp_sim.Net.To_sink sink) ~prop_ns:1000L;
  Rp_crypto.Ipsec_plugin.add_sa ~name:"frag-tunnel"
    (Rp_crypto.Sa.create ~spi:31l ~transform:Rp_crypto.Sa.Esp
       ~auth_key:"fa" ~enc_key:"fe" ());
  ignore (pmgr r1 "modload ipsec-out");
  ignore (pmgr r1 "create ipsec-out sa=frag-tunnel");
  ignore (pmgr r1 "bind 1 <10.0.0.0/8, *, UDP, *, *, *>");
  ignore (pmgr r2 "modload ipsec-in");
  ignore (pmgr r2 "create ipsec-in sa=frag-tunnel");
  ignore (pmgr r2 "bind 1 <10.0.0.0/8, *, UDP, *, *, *>");
  (* 1000-byte payload: protected datagram ~1048 bytes > 600 MTU. *)
  let payload = String.init 1000 (fun i -> Char.chr (i land 0xFF)) in
  for i = 1 to 5 do
    let m =
      Mbuf.udp_v4 ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 20)
        ~sport:4433 ~dport:4433 ~iface:0 ~payload ()
    in
    m.Mbuf.ident <- i;
    m.Mbuf.seq <- i;
    Rp_sim.Net.inject n1 m ~at:(Int64.of_int (i * 1_000_000))
  done;
  ignore (Rp_sim.Sim.run sim);
  (* r2 received 2 fragments per datagram, reassembled and decrypted. *)
  check int_t "fragments on the wire" 10 (Rp_sim.Net.stats n2).Rp_sim.Net.received;
  check bool_t "reassembled at security-in" true
    (Rp_crypto.Ipsec_plugin.in_reassembled ~instance_id:1 = Some 5);
  check int_t "five datagrams delivered" 5 (Rp_sim.Sink.total_packets sink);
  match Rp_sim.Sink.flows sink with
  | [ (_, fs) ] ->
    let clear = Ipv4_header.size + Udp_header.size + String.length payload in
    check int_t "cleartext size restored" (5 * clear) fs.Rp_sim.Sink.bytes
  | l -> Alcotest.failf "expected one flow, got %d" (List.length l)

(* --- SSP reservation shapes bandwidth --------------------------------- *)

let test_ssp_reservation_bandwidth () =
  (* Slow output link; two competing CBR flows at equal offered load.
     Flow 1 reserves 3x.  Its goodput must be ~3x flow 2's. *)
  let s =
    Rp_sim.Scenario.single_router ~in_ifaces:1 ~out_bandwidth_bps:8_000_000L ()
  in
  let r = s.Rp_sim.Scenario.router in
  ignore (pmgr r "modload drr");
  ignore (pmgr r "create drr");
  ignore (pmgr r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface));
  ignore (pmgr r "bind 1 <*, *, UDP, *, *, *>");
  ignore (Rp_control.Ssp.attach r);
  let flow1 = Rp_sim.Scenario.sink_key ~id:1 () in
  let flow2 = Rp_sim.Scenario.sink_key ~id:2 () in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node
    (Rp_control.Ssp.setup_packet ~src:flow1.Flow_key.src ~flow:flow1
       ~rate_bps:6_000_000)
    ~at:0L;
  Rp_sim.Net.inject s.Rp_sim.Scenario.node
    (Rp_control.Ssp.setup_packet ~src:flow2.Flow_key.src ~flow:flow2
       ~rate_bps:2_000_000)
    ~at:10L;
  (* Offered: 2 x 8 Mb/s onto an 8 Mb/s link. *)
  List.iter
    (fun key ->
      ignore
        (Rp_sim.Scenario.add_flow s
           {
             Rp_sim.Traffic.key;
             pkt_len = 1000;
             pattern = Rp_sim.Traffic.Cbr 1000.0;
             start_ns = 1_000_000L;
             stop_ns = Rp_sim.Sim.ns_of_sec 2.0;
             seed = 0;
           }))
    [ flow1; flow2 ];
  Rp_sim.Scenario.run s ~seconds:2.5;
  let g key =
    match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink key with
    | Some fs -> Rp_sim.Sink.goodput_bps fs
    | None -> 0.0
  in
  let g1 = g flow1 and g2 = g flow2 in
  let ratio = g1 /. g2 in
  check bool_t
    (Printf.sprintf "reserved flow gets ~3x (got %.2f: %.0f vs %.0f)" ratio g1 g2)
    true
    (ratio > 2.5 && ratio < 3.5)

(* --- hot rebinding under traffic --------------------------------------- *)

let test_rebind_under_traffic () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  let r = s.Rp_sim.Scenario.router in
  ignore (pmgr r "modload firewall");
  ignore (pmgr r "create firewall policy=accept");
  ignore (pmgr r "bind 1 <*, *, UDP, *, *, *>");
  let key = Rp_sim.Scenario.sink_key ~id:1 () in
  ignore
    (Rp_sim.Scenario.add_flow s
       {
         Rp_sim.Traffic.key;
         pkt_len = 500;
         pattern = Rp_sim.Traffic.Cbr 1000.0;
         start_ns = 0L;
         stop_ns = Rp_sim.Sim.ns_of_sec 1.0;
         seed = 0;
       });
  (* Halfway through, swap the policy to deny (new instance, rebind). *)
  Rp_sim.Sim.at s.Rp_sim.Scenario.sim (Rp_sim.Sim.ns_of_sec 0.5) (fun () ->
      ignore (pmgr r "create firewall policy=deny");
      ignore (pmgr r "bind 2 <*, *, UDP, *, *, *>");
      ignore (pmgr r "unbind 1 <*, *, UDP, *, *, *>"));
  Rp_sim.Scenario.run s ~seconds:1.5;
  let delivered = Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink in
  let st = Rp_sim.Net.stats s.Rp_sim.Scenario.node in
  (* ~500 packets pass, ~500 are denied. *)
  check bool_t (Printf.sprintf "half passed (%d)" delivered) true
    (delivered > 450 && delivered < 550);
  check bool_t (Printf.sprintf "half denied (%d)" st.Rp_sim.Net.dropped) true
    (st.Rp_sim.Net.dropped > 450 && st.Rp_sim.Net.dropped < 550);
  check int_t "conservation" 1000 (delivered + st.Rp_sim.Net.dropped)

(* --- flow-cache churn with recycling ------------------------------------ *)

let test_flow_cache_churn () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 ~flow_max:64 () in
  let r = s.Rp_sim.Scenario.router in
  ignore (pmgr r "modload stats");
  ignore (pmgr r "create stats");
  ignore (pmgr r "bind 1 <*, *, *, *, *, *>");
  (* 500 distinct one-packet flows: far beyond the 64-record cap. *)
  for id = 0 to 499 do
    let m = Mbuf.synth ~key:(Rp_sim.Scenario.sink_key ~id ()) ~len:200 () in
    Rp_sim.Net.inject s.Rp_sim.Scenario.node m ~at:(Int64.of_int (id * 1000))
  done;
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  check int_t "all forwarded despite recycling" 500
    (Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink);
  let ft = Rp_classifier.Aiu.flow_table (Router.aiu r) in
  check bool_t "capacity capped" true (Rp_classifier.Flow_table.capacity ft <= 64);
  let st = Rp_classifier.Flow_table.stats ft in
  check bool_t "recycling happened" true (st.Rp_classifier.Flow_table.recycled > 300);
  (match Stats_plugin.totals_of ~instance_id:1 with
   | Some t -> check int_t "stats saw every packet" 500 t.Stats_plugin.packets
   | None -> Alcotest.fail "no stats totals")

(* --- expiry housekeeping ------------------------------------------------ *)

let test_flow_expiry_under_traffic () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  let r = s.Rp_sim.Scenario.router in
  (* Two flows: one stops early, one keeps going. *)
  List.iter
    (fun (id, stop) ->
      ignore
        (Rp_sim.Scenario.add_flow s
           {
             Rp_sim.Traffic.key = Rp_sim.Scenario.sink_key ~id ();
             pkt_len = 200;
             pattern = Rp_sim.Traffic.Cbr 100.0;
             start_ns = 0L;
             stop_ns = Rp_sim.Sim.ns_of_sec stop;
             seed = id;
           }))
    [ (1, 0.2); (2, 2.0) ];
  Rp_sim.Scenario.run s ~seconds:1.0;
  let evicted =
    Router.expire_flows r ~now:(Rp_sim.Sim.now s.Rp_sim.Scenario.sim)
      ~idle_ns:(Rp_sim.Sim.ns_of_sec 0.5)
  in
  check int_t "idle flow evicted" 1 evicted;
  let ft = Rp_classifier.Aiu.flow_table (Router.aiu r) in
  check int_t "active flow kept" 1 (Rp_classifier.Flow_table.length ft);
  (* Traffic continues unharmed after expiry. *)
  Rp_sim.Scenario.run s ~seconds:2.2;
  check bool_t "flow 2 unaffected" true
    (match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id:2 ()) with
     | Some fs -> fs.Rp_sim.Sink.packets >= 195
     | None -> false)

let () =
  Alcotest.run "integration"
    [
      ( "eisr",
        [
          Alcotest.test_case "per-flow plugin instances" `Quick
            test_per_flow_instances;
          Alcotest.test_case "vpn across two routers" `Quick test_vpn_two_routers;
          Alcotest.test_case "vpn with fragmentation" `Quick
            test_vpn_with_fragmentation;
          Alcotest.test_case "ssp reservation shapes bandwidth" `Quick
            test_ssp_reservation_bandwidth;
          Alcotest.test_case "rebind under traffic" `Quick test_rebind_under_traffic;
          Alcotest.test_case "flow-cache churn" `Quick test_flow_cache_churn;
          Alcotest.test_case "flow expiry" `Quick test_flow_expiry_under_traffic;
        ] );
    ]
