(* Tests for the BMP engines: unit tests on known prefix sets plus the
   central property — every engine agrees with the linear reference on
   random prefix sets and random queries. *)

open Rp_pkt

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_v4 =
  QCheck2.Gen.map
    (fun (a, b) ->
      Ipaddr.v4_of_int32
        (Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)))
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 0xFFFF))

let gen_v6 =
  QCheck2.Gen.map
    (fun (a, b, c, d) ->
      Ipaddr.v6 (Int32.of_int a) (Int32.of_int b) (Int32.of_int c) (Int32.of_int d))
    (QCheck2.Gen.quad (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 0xFFFF)
       (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 0xFFFF))

(* Prefixes clustered in a small address range so that subsumption and
   longest-match situations actually arise. *)
let gen_prefix_v4 =
  QCheck2.Gen.map
    (fun (a, len) -> Prefix.make a len)
    (QCheck2.Gen.pair
       (QCheck2.Gen.map
          (fun x -> Ipaddr.v4_of_int32 (Int32.of_int x))
          (QCheck2.Gen.int_bound 0xFFFF))
       (QCheck2.Gen.int_bound 32))

let gen_prefix_v6 =
  QCheck2.Gen.map
    (fun (a, len) -> Prefix.make a len)
    (QCheck2.Gen.pair gen_v6 (QCheck2.Gen.int_bound 128))

(* Queries drawn from the same clustered range plus uniform ones. *)
let gen_query_v4 =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map
        (fun x -> Ipaddr.v4_of_int32 (Int32.of_int x))
        (QCheck2.Gen.int_bound 0xFFFF);
      gen_v4;
    ]

(* --- unit tests against a fixed table ------------------------------- *)

let fixed_table =
  [
    ("0.0.0.0/0", 0);
    ("128.0.0.0/8", 1);
    ("128.252.0.0/16", 2);
    ("128.252.153.0/24", 3);
    ("128.252.153.7", 4);
    ("129.0.0.0/8", 5);
    ("10.0.0.0/8", 6);
    ("10.128.0.0/9", 7);
  ]

let fixed_cases =
  [
    ("128.252.153.7", 4);
    ("128.252.153.8", 3);
    ("128.252.100.1", 2);
    ("128.1.1.1", 1);
    ("129.99.99.99", 5);
    ("10.127.0.1", 6);
    ("10.200.0.1", 7);
    ("1.2.3.4", 0);
  ]

let unit_engine (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  List.iter (fun (p, v) -> E.insert t (Prefix.of_string p) v) fixed_table;
  check int_t "length" (List.length fixed_table) (E.length t);
  List.iter
    (fun (addr, expect) ->
      match E.lookup t (Ipaddr.of_string addr) with
      | None -> Alcotest.failf "%s: no match for %s" E.name addr
      | Some (_, v) ->
        check int_t (Printf.sprintf "%s: %s" E.name addr) expect v)
    fixed_cases

let unit_engine_remove (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  List.iter (fun (p, v) -> E.insert t (Prefix.of_string p) v) fixed_table;
  E.remove t (Prefix.of_string "128.252.153.0/24");
  (match E.lookup t (Ipaddr.of_string "128.252.153.8") with
   | Some (_, v) -> check int_t "falls back to /16" 2 v
   | None -> Alcotest.fail "no match after remove");
  E.remove t (Prefix.of_string "0.0.0.0/0");
  check bool_t "default gone" true (E.lookup t (Ipaddr.of_string "1.2.3.4") = None);
  check int_t "length after removes" (List.length fixed_table - 2) (E.length t)

let unit_engine_replace (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  let p = Prefix.of_string "10.0.0.0/8" in
  E.insert t p 1;
  E.insert t p 2;
  check int_t "replaced" 1 (E.length t);
  check bool_t "new value" true (E.find_exact t p = Some 2)

let unit_engine_v6 (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  E.insert t (Prefix.of_string "2001:db8::/32") 1;
  E.insert t (Prefix.of_string "2001:db8:1::/48") 2;
  E.insert t (Prefix.of_string "::/0") 0;
  (match E.lookup t (Ipaddr.of_string "2001:db8:1::5") with
   | Some (_, v) -> check int_t "/48 wins" 2 v
   | None -> Alcotest.fail "no v6 match");
  (match E.lookup t (Ipaddr.of_string "2001:db8:2::5") with
   | Some (_, v) -> check int_t "/32 wins" 1 v
   | None -> Alcotest.fail "no v6 match");
  match E.lookup t (Ipaddr.of_string "fe80::1") with
  | Some (_, v) -> check int_t "default" 0 v
  | None -> Alcotest.fail "no default match"

(* Mixed families in one table must not interfere. *)
let unit_engine_mixed (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  E.insert t (Prefix.of_string "0.0.0.0/0") 4;
  E.insert t (Prefix.of_string "::/0") 6;
  (match E.lookup t (Ipaddr.of_string "1.2.3.4") with
   | Some (_, v) -> check int_t "v4 default" 4 v
   | None -> Alcotest.fail "no v4");
  match E.lookup t (Ipaddr.of_string "::1") with
  | Some (_, v) -> check int_t "v6 default" 6 v
  | None -> Alcotest.fail "no v6"

(* --- equivalence property vs the linear reference ------------------- *)

let equivalence_prop (module E : Rp_lpm.Lpm_intf.S) gen_prefix gen_query =
  qtest
    (Printf.sprintf "%s = linear reference" E.name)
    QCheck2.Gen.(
      pair (list_size (int_range 0 40) gen_prefix) (list_size (int_range 1 20) gen_query))
    (fun (prefixes, queries) ->
      let reference = Rp_lpm.Linear.create () in
      let t = E.create () in
      List.iteri
        (fun i p ->
          Rp_lpm.Linear.insert reference p i;
          E.insert t p i)
        prefixes;
      List.for_all
        (fun q ->
          let expect = Rp_lpm.Linear.lookup reference q in
          let got = E.lookup t q in
          match expect, got with
          | None, None -> true
          | Some (p, _), Some (p', _) ->
            (* Values may differ when duplicate prefixes appear in the
               random list; the winning prefix must agree. *)
            Prefix.equal p p'
          | None, Some _ | Some _, None -> false)
        queries)

(* Same property after a random subset of removals. *)
let equivalence_with_removal_prop (module E : Rp_lpm.Lpm_intf.S) =
  qtest
    (Printf.sprintf "%s = linear reference after removals" E.name)
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 30) gen_prefix_v4)
        (list_size (int_range 0 10) (int_bound 29))
        (list_size (int_range 1 15) gen_query_v4))
    (fun (prefixes, removals, queries) ->
      let reference = Rp_lpm.Linear.create () in
      let t = E.create () in
      List.iteri
        (fun i p ->
          Rp_lpm.Linear.insert reference p i;
          E.insert t p i)
        prefixes;
      let arr = Array.of_list prefixes in
      List.iter
        (fun i ->
          if i < Array.length arr then begin
            Rp_lpm.Linear.remove reference arr.(i);
            E.remove t arr.(i)
          end)
        removals;
      List.for_all
        (fun q ->
          match Rp_lpm.Linear.lookup reference q, E.lookup t q with
          | None, None -> true
          | Some (p, _), Some (p', _) -> Prefix.equal p p'
          | None, Some _ | Some _, None -> false)
        queries)

(* --- BSPL-specific: probe bound ------------------------------------- *)

let test_bspl_probe_bound () =
  (* With all 32 prefix lengths present the search tree depth must be
     at most ceil(log2(33)) = 6; with lengths 1..31 it is exactly 5 —
     the figure Table 2 of the paper uses. *)
  let t = Rp_lpm.Bspl.create () in
  for len = 1 to 31 do
    Rp_lpm.Bspl.insert t (Prefix.make (Ipaddr.v4 10 0 0 0) len) len
  done;
  ignore (Rp_lpm.Bspl.lookup t (Ipaddr.v4 10 0 0 1));
  check int_t "depth over 31 lengths" 5 (Rp_lpm.Bspl.worst_case_probes t `V4);
  let t6 = Rp_lpm.Bspl.create () in
  for len = 1 to 127 do
    Rp_lpm.Bspl.insert t6 (Prefix.make (Ipaddr.of_string "2001:db8::") (min len 128)) len
  done;
  ignore (Rp_lpm.Bspl.lookup t6 (Ipaddr.of_string "2001:db8::1"));
  check int_t "depth over 127 lengths" 7 (Rp_lpm.Bspl.worst_case_probes t6 `V6)

let test_bspl_marker_correctness () =
  (* The classic marker trap: a marker must not report a match on its
     own.  128.0.0.0/1 and 128.252.0.0/16 with a query that matches the
     /1 only below the marker level. *)
  let t = Rp_lpm.Bspl.create () in
  Rp_lpm.Bspl.insert t (Prefix.of_string "128.0.0.0/1") 1;
  Rp_lpm.Bspl.insert t (Prefix.of_string "128.252.0.0/16") 16;
  (match Rp_lpm.Bspl.lookup t (Ipaddr.v4 128 252 1 1) with
   | Some (p, _) -> check string_t "longest" "128.252.0.0/16" (Prefix.to_string p)
   | None -> Alcotest.fail "no match");
  match Rp_lpm.Bspl.lookup t (Ipaddr.v4 129 0 0 1) with
  | Some (p, _) -> check string_t "bmp via marker" "128.0.0.0/1" (Prefix.to_string p)
  | None -> Alcotest.fail "marker swallowed the match"

let test_access_counting () =
  Rp_lpm.Access.reset ();
  let t = Rp_lpm.Patricia.create () in
  Rp_lpm.Patricia.insert t (Prefix.of_string "10.0.0.0/8") 1;
  let _, cost = Rp_lpm.Access.measure (fun () -> Rp_lpm.Patricia.lookup t (Ipaddr.v4 10 1 1 1)) in
  check bool_t "patricia charges accesses" true (cost > 0);
  Rp_lpm.Access.set_enabled false;
  let _, cost0 = Rp_lpm.Access.measure (fun () -> Rp_lpm.Patricia.lookup t (Ipaddr.v4 10 1 1 1)) in
  Rp_lpm.Access.set_enabled true;
  check int_t "disabled charges nothing" 0 cost0

let engine_suite name (module E : Rp_lpm.Lpm_intf.S) =
  ( name,
    [
      Alcotest.test_case "fixed table" `Quick (unit_engine (module E));
      Alcotest.test_case "remove" `Quick (unit_engine_remove (module E));
      Alcotest.test_case "replace" `Quick (unit_engine_replace (module E));
      Alcotest.test_case "ipv6" `Quick (unit_engine_v6 (module E));
      Alcotest.test_case "mixed families" `Quick (unit_engine_mixed (module E));
      equivalence_prop (module E) gen_prefix_v4 gen_query_v4;
      equivalence_prop (module E) gen_prefix_v6 gen_v6;
      equivalence_with_removal_prop (module E);
    ] )

let () =
  Alcotest.run "rp_lpm"
    [
      engine_suite "patricia" (module Rp_lpm.Patricia);
      engine_suite "bspl" (module Rp_lpm.Bspl);
      engine_suite "cpe" (module Rp_lpm.Cpe);
      ( "bspl-specific",
        [
          Alcotest.test_case "probe bound" `Quick test_bspl_probe_bound;
          Alcotest.test_case "marker correctness" `Quick test_bspl_marker_correctness;
        ] );
      ("access", [ Alcotest.test_case "counting" `Quick test_access_counting ]);
    ]
