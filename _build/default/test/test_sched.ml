(* Tests for the scheduling plugins: DRR fairness and weighting,
   service curves, H-FSC link sharing and delay decoupling, RED, the
   token-bucket policer, and FIFO. *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let key id =
  Flow_key.make ~src:(Ipaddr.v4 10 0 0 id) ~dst:(Ipaddr.v4 192 168 1 1)
    ~proto:Proto.udp ~sport:(1000 + id) ~dport:9000 ~iface:0

let pkt ?(len = 1000) id seq =
  let m = Mbuf.synth ~key:(key id) ~len () in
  m.Mbuf.seq <- seq;
  m

let scheduler_of (inst : Plugin.t) =
  match inst.Plugin.scheduler with
  | Some s -> s
  | None -> Alcotest.fail "instance has no scheduler"

let mk_instance (module P : Plugin.PLUGIN) config =
  ok (P.create_instance ~instance_id:1 ~code:0 ~config)

(* Drain [n] packets, returning the per-flow-id counts (flows are
   identified by the source's last octet). *)
let drain s n =
  let counts = Hashtbl.create 8 in
  for _ = 1 to n do
    match s.Plugin.dequeue ~now:0L with
    | Some m ->
      let id =
        match m.Mbuf.key.Flow_key.src with
        | Ipaddr.V4 x -> Int32.to_int (Int32.logand x 0xFFl)
        | Ipaddr.V6 _ -> -1
      in
      Hashtbl.replace counts id (1 + Option.value (Hashtbl.find_opt counts id) ~default:0)
    | None -> ()
  done;
  counts

let count counts id = Option.value (Hashtbl.find_opt counts id) ~default:0

(* --- FIFO ------------------------------------------------------------- *)

let test_fifo_order_and_limit () =
  let inst = mk_instance (module Rp_sched.Fifo_plugin) [ ("limit", "3") ] in
  let s = scheduler_of inst in
  for i = 0 to 2 do
    match s.Plugin.enqueue ~now:0L (pkt 1 i) None with
    | Plugin.Enqueued -> ()
    | Plugin.Rejected _ -> Alcotest.fail "premature reject"
  done;
  (match s.Plugin.enqueue ~now:0L (pkt 1 3) None with
   | Plugin.Rejected _ -> ()
   | Plugin.Enqueued -> Alcotest.fail "limit not enforced");
  check int_t "backlog" 3 (s.Plugin.backlog ());
  let seqs =
    List.init 3 (fun _ ->
        match s.Plugin.dequeue ~now:0L with
        | Some m -> m.Mbuf.seq
        | None -> -1)
  in
  check bool_t "FIFO order" true (seqs = [ 0; 1; 2 ]);
  check bool_t "empty" true (s.Plugin.dequeue ~now:0L = None)

(* --- DRR --------------------------------------------------------------- *)

(* Without bindings the DRR classifies internally (monolithic mode),
   which is convenient for unit testing the scheduling logic. *)
let test_drr_equal_fairness () =
  let inst = mk_instance (module Rp_sched.Drr_plugin) [ ("quantum", "500") ] in
  let s = scheduler_of inst in
  (* Three flows, 30 equal packets each. *)
  for seq = 0 to 29 do
    for id = 1 to 3 do
      ignore (s.Plugin.enqueue ~now:0L (pkt id seq) None)
    done
  done;
  let counts = drain s 30 in
  (* After 30 served packets, each flow must have gotten 10 ± 1. *)
  for id = 1 to 3 do
    let c = count counts id in
    check bool_t (Printf.sprintf "flow %d fair share (got %d)" id c) true
      (c >= 9 && c <= 11)
  done

let test_drr_weighted_shares () =
  let inst = mk_instance (module Rp_sched.Drr_plugin) [ ("quantum", "1000") ] in
  let s = scheduler_of inst in
  (* Flow 1 reserved at 3x the rate of flow 2. *)
  ok (Rp_sched.Drr_plugin.reserve ~instance_id:1 ~key:(key 1) ~rate_bps:3_000_000);
  ok (Rp_sched.Drr_plugin.reserve ~instance_id:1 ~key:(key 2) ~rate_bps:1_000_000);
  check bool_t "weight 3" true
    (Rp_sched.Drr_plugin.weight_of ~instance_id:1 ~key:(key 1) = Some 3);
  check bool_t "weight 1" true
    (Rp_sched.Drr_plugin.weight_of ~instance_id:1 ~key:(key 2) = Some 1);
  for seq = 0 to 79 do
    ignore (s.Plugin.enqueue ~now:0L (pkt 1 seq) None);
    ignore (s.Plugin.enqueue ~now:0L (pkt 2 seq) None)
  done;
  let counts = drain s 40 in
  let c1 = count counts 1 and c2 = count counts 2 in
  check int_t "all served" 40 (c1 + c2);
  (* 3:1 split of 40 = 30/10, allow rounding slack. *)
  check bool_t (Printf.sprintf "3:1 shares (got %d:%d)" c1 c2) true
    (c1 >= 27 && c1 <= 33)

let test_drr_mixed_packet_sizes () =
  (* Fairness is in bytes, not packets: a flow of small packets gets
     more packets through. *)
  let inst = mk_instance (module Rp_sched.Drr_plugin) [ ("quantum", "500") ] in
  let s = scheduler_of inst in
  for seq = 0 to 99 do
    ignore (s.Plugin.enqueue ~now:0L (pkt ~len:1500 1 seq) None);
    ignore (s.Plugin.enqueue ~now:0L (pkt ~len:500 2 seq) None)
  done;
  (* Serve ~60000 bytes worth. *)
  let bytes = ref 0 in
  let c1 = ref 0 and c2 = ref 0 in
  while !bytes < 60_000 do
    match s.Plugin.dequeue ~now:0L with
    | Some m ->
      bytes := !bytes + m.Mbuf.len;
      let id =
        match m.Mbuf.key.Flow_key.src with
        | Ipaddr.V4 x -> Int32.to_int (Int32.logand x 0xFFl)
        | Ipaddr.V6 _ -> -1
      in
      if id = 1 then incr c1 else incr c2
    | None -> bytes := max_int
  done;
  let b1 = !c1 * 1500 and b2 = !c2 * 500 in
  let ratio = float_of_int b1 /. float_of_int (max 1 b2) in
  check bool_t (Printf.sprintf "byte fairness (%d vs %d bytes)" b1 b2) true
    (ratio > 0.8 && ratio < 1.25)

let test_drr_per_flow_limit () =
  let inst =
    mk_instance (module Rp_sched.Drr_plugin) [ ("flow-limit", "4") ]
  in
  let s = scheduler_of inst in
  let accepted = ref 0 in
  for seq = 0 to 9 do
    match s.Plugin.enqueue ~now:0L (pkt 1 seq) None with
    | Plugin.Enqueued -> incr accepted
    | Plugin.Rejected _ -> ()
  done;
  check int_t "per-flow limit" 4 !accepted;
  check int_t "drops counted" 6 (Rp_sched.Drr_plugin.drop_count ~instance_id:1)

let prop_drr_work_conserving =
  qtest ~count:100 "drr: work conserving (dequeues everything enqueued)"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 1 4) (int_range 64 1500)))
    (fun arrivals ->
      match
        Rp_sched.Drr_plugin.create_instance ~instance_id:99 ~code:0 ~config:[]
      with
      | Error _ -> false
      | Ok inst ->
        let s = scheduler_of inst in
        List.iteri
          (fun seq (id, len) -> ignore (s.Plugin.enqueue ~now:0L (pkt ~len id seq) None))
          arrivals;
        let n = ref 0 in
        let continue = ref true in
        while !continue do
          match s.Plugin.dequeue ~now:0L with
          | Some _ -> incr n
          | None -> continue := false
        done;
        !n = List.length arrivals && s.Plugin.backlog () = 0)

(* --- Service curves ----------------------------------------------------- *)

let test_service_curve_math () =
  let sc = Rp_sched.Service_curve.make ~m1:2000.0 ~d:0.5 ~m2:1000.0 in
  let feq name a b = check bool_t name true (abs_float (a -. b) < 1e-6) in
  feq "value at 0" 0.0 (Rp_sched.Service_curve.value sc 0.0);
  feq "m1 segment" 500.0 (Rp_sched.Service_curve.value sc 0.25);
  feq "knee" 1000.0 (Rp_sched.Service_curve.value sc 0.5);
  feq "m2 segment" 1500.0 (Rp_sched.Service_curve.value sc 1.0);
  feq "inverse on m1" 0.25 (Rp_sched.Service_curve.inverse sc 500.0);
  feq "inverse on m2" 1.0 (Rp_sched.Service_curve.inverse sc 1500.0);
  let a = Rp_sched.Service_curve.anchor sc ~x:10.0 ~y:5000.0 in
  feq "anchored value" 5500.0 (Rp_sched.Service_curve.anchored_value a 10.25);
  feq "anchored inverse" 10.25 (Rp_sched.Service_curve.anchored_inverse a 5500.0)

let prop_service_curve_inverse =
  qtest "service curve: inverse (value t) <= t (and tight off plateaus)"
    QCheck2.Gen.(
      tup4 (float_range 100.0 10000.0) (float_range 0.0 2.0)
        (float_range 100.0 10000.0) (float_range 0.0 5.0))
    (fun (m1, d, m2, t) ->
      let sc = Rp_sched.Service_curve.make ~m1 ~d ~m2 in
      let y = Rp_sched.Service_curve.value sc t in
      let t' = Rp_sched.Service_curve.inverse sc y in
      t' <= t +. 1e-9
      && Rp_sched.Service_curve.value sc t' >= y -. 1e-6)

(* --- H-FSC --------------------------------------------------------------- *)

let mk_hfsc ?(config = []) () =
  let inst = mk_instance (module Rp_sched.Hfsc_plugin) config in
  (inst, scheduler_of inst)

let test_hfsc_link_share_ratio () =
  let _inst, s = mk_hfsc () in
  (* Two leaves sharing 3:1. *)
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"gold"
       ~fsc:(Rp_sched.Service_curve.linear 3000.0) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"bronze"
       ~fsc:(Rp_sched.Service_curve.linear 1000.0) ());
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"gold");
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 2) ~cname:"bronze");
  for seq = 0 to 79 do
    ignore (s.Plugin.enqueue ~now:0L (pkt 1 seq) None);
    ignore (s.Plugin.enqueue ~now:0L (pkt 2 seq) None)
  done;
  let counts = drain s 40 in
  let c1 = count counts 1 and c2 = count counts 2 in
  check bool_t (Printf.sprintf "3:1 link share (got %d:%d)" c1 c2) true
    (c1 + c2 = 40 && c1 >= 27 && c1 <= 33)

let test_hfsc_hierarchy () =
  (* Two agencies split 1:1; agency A subdivides 2:1 internally. *)
  let _inst, s = mk_hfsc () in
  let sc r = Rp_sched.Service_curve.linear r in
  ok (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"agencyA" ~fsc:(sc 1000.0) ());
  ok (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"agencyB" ~fsc:(sc 1000.0) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"a-video"
       ~parent:"agencyA" ~fsc:(sc 2000.0) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"a-data"
       ~parent:"agencyA" ~fsc:(sc 1000.0) ());
  ok (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"b-all" ~parent:"agencyB"
        ~fsc:(sc 1000.0) ());
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"a-video");
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 2) ~cname:"a-data");
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 3) ~cname:"b-all");
  for seq = 0 to 119 do
    for id = 1 to 3 do
      ignore (s.Plugin.enqueue ~now:0L (pkt id seq) None)
    done
  done;
  let counts = drain s 60 in
  let c1 = count counts 1 and c2 = count counts 2 and c3 = count counts 3 in
  (* Agencies split 30/30; inside A, video:data = 2:1 = 20/10. *)
  check bool_t (Printf.sprintf "agency split (got %d+%d vs %d)" c1 c2 c3) true
    (abs (c1 + c2 - 30) <= 3 && abs (c3 - 30) <= 3);
  check bool_t (Printf.sprintf "intra-agency 2:1 (got %d:%d)" c1 c2) true
    (c1 > c2 && abs (c1 - 20) <= 4)

let test_hfsc_realtime_priority () =
  (* A leaf with a concave RSC (m1 >> m2) must be served ahead of a
     pure link-share leaf right after becoming backlogged, even though
     its long-term share is small: delay decoupled from bandwidth. *)
  let _inst, s = mk_hfsc () in
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"voice"
       ~rsc:(Rp_sched.Service_curve.make ~m1:1_000_000.0 ~d:0.1 ~m2:1000.0)
       ~fsc:(Rp_sched.Service_curve.linear 1000.0) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"bulk"
       ~fsc:(Rp_sched.Service_curve.linear 100_000.0) ());
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"voice");
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 2) ~cname:"bulk");
  (* Bulk already backlogged, voice packet arrives. *)
  for seq = 0 to 9 do
    ignore (s.Plugin.enqueue ~now:1000L (pkt 2 seq) None)
  done;
  ignore (s.Plugin.enqueue ~now:2000L (pkt ~len:200 1 0) None);
  (match s.Plugin.dequeue ~now:3000L with
   | Some m ->
     check bool_t "voice served first" true
       (Flow_key.equal m.Mbuf.key (key 1))
   | None -> Alcotest.fail "nothing dequeued");
  (* But over the long run bulk dominates (voice m2 is tiny). *)
  for seq = 10 to 29 do
    ignore (s.Plugin.enqueue ~now:4000L (pkt 2 seq) None)
  done;
  for seq = 1 to 5 do
    ignore (s.Plugin.enqueue ~now:4000L (pkt ~len:200 1 seq) None)
  done;
  let counts = drain s 20 in
  check bool_t "bulk gets the long-run share" true (count counts 2 >= 14)

(* HSF: DRR inside an H-FSC leaf — flows sharing a leaf divide its
   service fairly instead of FIFO's arrival-order capture. *)
let test_hfsc_drr_leaf_fairness () =
  let run leaf =
    let _inst, s = mk_hfsc () in
    ok (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"shared"
          ~fsc:(Rp_sched.Service_curve.linear 1000.0) ~leaf ());
    ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"shared");
    ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 2) ~cname:"shared");
    (* Flow 1 floods the leaf before flow 2's packets arrive. *)
    for seq = 0 to 59 do
      ignore (s.Plugin.enqueue ~now:0L (pkt 1 seq) None)
    done;
    for seq = 0 to 19 do
      ignore (s.Plugin.enqueue ~now:0L (pkt 2 seq) None)
    done;
    let counts = drain s 40 in
    (count counts 1, count counts 2)
  in
  let fifo1, fifo2 = run `Fifo in
  (* FIFO: flow 1's head-of-line burst takes everything. *)
  check bool_t (Printf.sprintf "fifo capture (%d:%d)" fifo1 fifo2) true
    (fifo1 = 40 && fifo2 = 0);
  let drr1, drr2 = run (`Drr 500) in
  (* DRR leaf: both flows share the leaf's service ~equally. *)
  check bool_t (Printf.sprintf "drr leaf fairness (%d:%d)" drr1 drr2) true
    (drr1 + drr2 = 40 && abs (drr1 - drr2) <= 2)

let test_hfsc_drr_leaf_via_message () =
  let _inst, _s = mk_hfsc () in
  (match Rp_sched.Hfsc_plugin.message "add-class" "1 premium fsc=2000:0:2000 leaf=drr:256" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "message add-class: %s" e);
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"premium")

let test_hfsc_upper_limit () =
  (* Two greedy classes; one capped at ~1 MB/s by an upper-limit
     curve.  Over one simulated second of continuous dequeues, the
     capped class must get ~1 MB while the other takes the rest. *)
  let _inst, s = mk_hfsc () in
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"capped"
       ~fsc:(Rp_sched.Service_curve.linear 5_000_000.0)
       ~usc:(Rp_sched.Service_curve.linear 1_000_000.0)
       ~limit:100_000 ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"open"
       ~fsc:(Rp_sched.Service_curve.linear 5_000_000.0) ~limit:100_000 ());
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"capped");
  ok (Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 2) ~cname:"open");
  (* Keep both permanently backlogged: 6000 x 1000B each. *)
  for seq = 0 to 5999 do
    ignore (s.Plugin.enqueue ~now:0L (pkt 1 seq) None);
    ignore (s.Plugin.enqueue ~now:0L (pkt 2 seq) None)
  done;
  (* A 5 MB/s link serves one 1000-byte packet every 200 us; walk one
     simulated second. *)
  let served_capped = ref 0 and served_open = ref 0 in
  for i = 0 to 4999 do
    match s.Plugin.dequeue ~now:(Int64.of_int (i * 200_000)) with
    | Some m ->
      if Flow_key.equal m.Mbuf.key (key 1) then incr served_capped
      else incr served_open
    | None -> ()
  done;
  (* capped: ~1 MB = ~1000 packets of 1000 B; open: the rest. *)
  check bool_t
    (Printf.sprintf "cap respected (%d pkts ~ 1MB)" !served_capped)
    true
    (!served_capped >= 900 && !served_capped <= 1100);
  check bool_t
    (Printf.sprintf "open class takes the remainder (%d)" !served_open)
    true
    (!served_open >= 3800)

let test_hfsc_class_errors () =
  let _inst, _ = mk_hfsc () in
  (match Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"default" () with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "duplicate class accepted");
  (match Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"x" ~parent:"ghost" () with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "missing parent accepted");
  match Rp_sched.Hfsc_plugin.assign ~instance_id:1 ~key:(key 1) ~cname:"root" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "assigning to an inner class accepted"

(* --- RED ----------------------------------------------------------------- *)

let test_red_no_drops_when_light () =
  let inst =
    mk_instance (module Rp_sched.Red_plugin)
      [ ("min-th", "5"); ("max-th", "15") ]
  in
  let s = scheduler_of inst in
  (* Alternate enqueue/dequeue: queue stays short, no early drops. *)
  for seq = 0 to 199 do
    (match s.Plugin.enqueue ~now:(Int64.of_int (seq * 1000)) (pkt 1 seq) None with
     | Plugin.Enqueued -> ()
     | Plugin.Rejected r -> Alcotest.failf "unexpected drop: %s" r);
    ignore (s.Plugin.dequeue ~now:(Int64.of_int (seq * 1000)))
  done

let test_red_drops_when_congested () =
  let inst =
    mk_instance (module Rp_sched.Red_plugin)
      [ ("min-th", "5"); ("max-th", "15"); ("wq", "0.2") ]
  in
  let s = scheduler_of inst in
  let dropped = ref 0 in
  for seq = 0 to 199 do
    match s.Plugin.enqueue ~now:0L (pkt 1 seq) None with
    | Plugin.Enqueued -> ()
    | Plugin.Rejected _ -> incr dropped
  done;
  check bool_t (Printf.sprintf "congestion causes drops (%d)" !dropped) true
    (!dropped > 50);
  (* The average tracked above max-th forces drops; backlog stays
     bounded near max-th rather than at the hard limit. *)
  check bool_t "backlog bounded by RED, not the hard limit" true
    (s.Plugin.backlog () < 100)

(* --- Token bucket ---------------------------------------------------------- *)

let mk_binding () : Plugin.t Rp_classifier.Flow_table.binding option =
  (* A standalone binding record to carry soft state in tests. *)
  let dummy_instance =
    Plugin.simple ~instance_id:0 ~code:0 ~plugin_name:"x" ~gate:Gate.Congestion
      (fun _ _ -> Plugin.Continue)
  in
  Some { Rp_classifier.Flow_table.instance = dummy_instance; filter = None; soft = None }

let test_token_bucket_conformance () =
  let inst =
    mk_instance (module Rp_sched.Tb_plugin)
      [ ("rate", "10000"); ("burst", "5000") ]
  in
  let binding = mk_binding () in
  let ctx now : Plugin.ctx = { Plugin.now_ns = now; binding } in
  (* Burst of 5 x 1000B conforms (burst = 5000). *)
  for i = 0 to 4 do
    match inst.Plugin.handle (ctx 0L) (pkt 1 i) with
    | Plugin.Continue | Plugin.Consumed -> ()
    | Plugin.Drop r -> Alcotest.failf "conforming packet dropped: %s" r
  done;
  (* The sixth is out of profile. *)
  (match inst.Plugin.handle (ctx 0L) (pkt 1 5) with
   | Plugin.Drop _ -> ()
   | Plugin.Continue | Plugin.Consumed -> Alcotest.fail "non-conforming packet passed");
  (* After a second, 10000 bytes of tokens refill (capped at burst):
     5 more packets pass. *)
  let passed = ref 0 in
  for i = 6 to 12 do
    match inst.Plugin.handle (ctx 1_000_000_000L) (pkt 1 i) with
    | Plugin.Continue -> incr passed
    | Plugin.Drop _ | Plugin.Consumed -> ()
  done;
  check int_t "refill honours burst cap" 5 !passed

let test_token_bucket_mark_action () =
  let inst =
    mk_instance (module Rp_sched.Tb_plugin)
      [ ("rate", "1000"); ("burst", "1000"); ("action", "mark"); ("dscp", "7") ]
  in
  let binding = mk_binding () in
  let ctx : Plugin.ctx = { Plugin.now_ns = 0L; binding } in
  ignore (inst.Plugin.handle ctx (pkt ~len:1000 1 0));
  let m = pkt ~len:1000 1 1 in
  (match inst.Plugin.handle ctx m with
   | Plugin.Continue | Plugin.Consumed -> ()
   | Plugin.Drop _ -> Alcotest.fail "mark action must not drop");
  check int_t "dscp marked" 7 m.Mbuf.tos;
  check bool_t "tagged" true (Mbuf.has_tag m "out-of-profile")

let () =
  Alcotest.run "rp_sched"
    [
      ("fifo", [ Alcotest.test_case "order and limit" `Quick test_fifo_order_and_limit ]);
      ( "drr",
        [
          Alcotest.test_case "equal fairness" `Quick test_drr_equal_fairness;
          Alcotest.test_case "weighted shares" `Quick test_drr_weighted_shares;
          Alcotest.test_case "byte fairness" `Quick test_drr_mixed_packet_sizes;
          Alcotest.test_case "per-flow limit" `Quick test_drr_per_flow_limit;
          prop_drr_work_conserving;
        ] );
      ( "service_curve",
        [
          Alcotest.test_case "two-piece math" `Quick test_service_curve_math;
          prop_service_curve_inverse;
        ] );
      ( "hfsc",
        [
          Alcotest.test_case "link share ratio" `Quick test_hfsc_link_share_ratio;
          Alcotest.test_case "hierarchy" `Quick test_hfsc_hierarchy;
          Alcotest.test_case "realtime priority" `Quick test_hfsc_realtime_priority;
          Alcotest.test_case "HSF: drr leaf fairness" `Quick test_hfsc_drr_leaf_fairness;
          Alcotest.test_case "HSF: drr leaf via message" `Quick test_hfsc_drr_leaf_via_message;
          Alcotest.test_case "upper-limit curve" `Quick test_hfsc_upper_limit;
          Alcotest.test_case "class errors" `Quick test_hfsc_class_errors;
        ] );
      ( "red",
        [
          Alcotest.test_case "no drops when light" `Quick test_red_no_drops_when_light;
          Alcotest.test_case "drops when congested" `Quick test_red_drops_when_congested;
        ] );
      ( "token_bucket",
        [
          Alcotest.test_case "conformance" `Quick test_token_bucket_conformance;
          Alcotest.test_case "mark action" `Quick test_token_bucket_mark_action;
        ] );
    ]
