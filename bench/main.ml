(* Benchmark harness: regenerates every evaluation artifact of the
   paper (see EXPERIMENTS.md for the index and the paper-vs-measured
   discussion).

     table2          worst-case memory accesses of a filter lookup
     table3          per-packet processing cost of the four kernels
     fig-classifier  filter-table lookup vs number of filters (§7.1)
     fig-flowtable   flow-table behaviour vs concurrent flows (§7.2)
     fig-drr         weighted DRR link sharing (§6.1 demonstration)
     fig-hfsc        H-FSC hierarchy + delay/bandwidth decoupling (§6)
     fig-gates       framework overhead vs number of gates (§3.2 claim)
     fig-cache       flow-cache hit rate vs cache size (§3 premise)
     fig-l4          L4 switching through the classifier (§8)
     fig-collapse    wildcard-chain collapsing ablation (§5.1.2)
     fig-grid        grid-of-tries vs set pruning, 2D filters (§5.1.2)
     fig-shard       multicore engine throughput scaling, 1..4 domains
     fig-trace       hot-path tracing overhead vs sampling period
     fig-churn       control-plane churn: delta publication vs recompile
     fig-batch       batched zero-copy data path throughput time series
     fig-coldstart   cold-start classification, compiled vs per-gate
     fig-session     unified session subsystem: NAT+conntrack+QoS per-hit cost
     fig-latency     end-to-end latency SLOs: quantiles, exemplars, T3 identity
     fig-zipf        million-flow Zipf long-haul soak (arrival/expiry churn)
     micro           Bechamel wall-clock micro-benchmarks

   Run all sections: [dune exec bench/main.exe]; or name the sections
   to run, e.g. [dune exec bench/main.exe -- table3 fig-drr]. *)

open Rp_pkt
open Rp_core
open Bench_util

let ok = function
  | Ok v -> v
  | Error e -> failwith e

let pmgr r cmd = ok (Rp_control.Pmgr.exec r cmd)

(* ---------------------------------------------------------------------- *)
(* Table 2: memory accesses for a worst-case filter lookup.               *)
(* ---------------------------------------------------------------------- *)

let table2 () =
  section "Table 2: memory accesses for a filter lookup (worst case)";
  Printf.printf
    "Filter tables use the BSPL (binary search on prefix lengths) BMP\n\
     plugin; the 'ladder' filter set installs one filter per prefix\n\
     length so the address search must cover every length.\n";
  let run ~family ~bulk ~paper_total =
    let name = match family with `V4 -> "IPv4" | `V6 -> "IPv6" in
    let dag = Workloads.build_dag ~ladder:true ~family bulk in
    let key =
      match family with
      | `V4 -> Workloads.ladder_key_v4
      | `V6 -> Workloads.ladder_key_v6
    in
    (* Warm: BSPL structures build lazily on first use. *)
    ignore (Rp_classifier.Dag.lookup dag key);
    Rp_lpm.Access.reset ();
    let result, accesses =
      Rp_lpm.Access.measure (fun () -> Rp_classifier.Dag.lookup dag key)
    in
    (match result with
     | Some _ -> ()
     | None -> Printf.printf "  (!) ladder key unexpectedly missed\n");
    (* Worst case over random traffic too. *)
    let worst = ref accesses in
    for _ = 1 to 5000 do
      let k =
        match family with
        | `V4 -> Workloads.random_key_v4 ()
        | `V6 -> Workloads.ladder_key_v6
      in
      let _, a = Rp_lpm.Access.measure (fun () -> Rp_classifier.Dag.lookup dag k) in
      if a > !worst then worst := a
    done;
    Printf.printf
      "  %s: %d filters installed, %d trie nodes\n" name
      (Rp_classifier.Dag.length dag)
      (Rp_classifier.Dag.node_count dag);
    Printf.printf
      "  %s full-walk accesses: %d   worst observed: %d   paper: %d\n" name
      accesses !worst paper_total;
    Printf.printf "  %s worst-case lookup time at 60 ns/access: %.2f us (paper: %.1f us)\n"
      name
      (float_of_int !worst *. 60.0 /. 1000.0)
      (float_of_int paper_total *. 60.0 /. 1000.0);
    (* CI regression gate reads these from the --metrics-out JSON. *)
    let slug = String.lowercase_ascii name in
    Rp_obs.Registry.set
      (Printf.sprintf "bench.table2.%s.worst_accesses" slug)
      (float_of_int !worst);
    Rp_obs.Registry.set
      (Printf.sprintf "bench.table2.%s.full_walk_accesses" slug)
      (float_of_int accesses);
    Gc.full_major ()
  in
  Printf.printf
    "\n  %-44s %6s %6s\n" "breakdown (paper Table 2)" "IPv4" "IPv6";
  Printf.printf "  %-44s %6d %6d\n" "BMP function pointer" 1 1;
  Printf.printf "  %-44s %6d %6d\n" "index hash function pointer" 1 1;
  Printf.printf "  %-44s %6d %6d\n" "IP address lookups (2 x log2 W / 2)" 10 14;
  Printf.printf "  %-44s %6d %6d\n" "port number lookups" 2 2;
  Printf.printf "  %-44s %6d %6d\n" "DAG edges" 6 6;
  Printf.printf "  %-44s %6d %6d\n" "total (paper)" 20 24;
  Printf.printf "\nmeasured on this implementation:\n";
  run ~family:`V4 ~bulk:30_000 ~paper_total:20;
  run ~family:`V6 ~bulk:15_000 ~paper_total:24

(* ---------------------------------------------------------------------- *)
(* Table 3: overall packet processing time, four kernels.                 *)
(* ---------------------------------------------------------------------- *)

(* Extra inert filters so "the system had 16 filters installed". *)
let install_extra_filters r ~gate ~upto =
  let aiu = Router.aiu r in
  for i = 1 to upto do
    let f =
      Rp_classifier.Filter.v4
        ~src:(Prefix.make (Ipaddr.v4 172 16 i 0) 24)
        ~proto:Proto.tcp ()
    in
    Rp_classifier.Aiu.bind aiu ~gate f
      (Plugin.simple ~instance_id:(9000 + i) ~code:0 ~plugin_name:"inert"
         ~gate:(Option.get (Gate.of_int gate))
         (fun _ _ -> Plugin.Continue))
  done

let table3_run ~label ~slug ~configure () =
  let s =
    configure ()
  in
  Rp_sim.Scenario.table3_workload s ~flows:3 ~per_flow:2000 ~pkt_len:8192 ();
  Rp_sim.Scenario.run s ~seconds:1.0;
  let node = s.Rp_sim.Scenario.node in
  let cycles = Rp_sim.Net.cycles_per_packet node in
  Rp_obs.Registry.set (Printf.sprintf "bench.table3.%s.cycles" slug) cycles;
  let st = Rp_sim.Net.stats node in
  (label, cycles, st.Rp_sim.Net.received, st.Rp_sim.Net.forwarded)

let table3 () =
  section "Table 3: overall packet processing time (4 kernels)";
  Printf.printf
    "Workload: 3 concurrent UDP flows of 8 KB datagrams (no\n\
     fragmentation), 2000 packets/flow, 16 filters installed, cycle\n\
     cost model calibrated to the paper's P6/233 (see Cost).\n\n";
  let fast_out = 10_000_000_000L in
  let mk_scn ~mode ~gates () =
    Rp_sim.Scenario.single_router ~mode ~gates ~in_ifaces:1
      ~out_bandwidth_bps:fast_out ()
  in
  let best_effort () = mk_scn ~mode:Router.Best_effort ~gates:[] () in
  let plugins_3gates () =
    let gates = [ Gate.Ip_options; Gate.Security_in; Gate.Stats ] in
    let s = mk_scn ~mode:Router.Plugins ~gates () in
    let r = s.Rp_sim.Scenario.router in
    List.iter
      (fun (g, n) ->
        ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:g ~name:n));
        ignore (pmgr r (Printf.sprintf "create %s" n));
        ())
      [ (Gate.Ip_options, "e-opt"); (Gate.Security_in, "e-sec"); (Gate.Stats, "e-stat") ];
    ignore (pmgr r "bind 1 <*, *, *, *, *, *>");
    ignore (pmgr r "bind 2 <*, *, *, *, *, *>");
    ignore (pmgr r "bind 3 <*, *, *, *, *, *>");
    install_extra_filters r ~gate:(Gate.to_int Gate.Ip_options) ~upto:13;
    s
  in
  let monolithic_drr () =
    let s = mk_scn ~mode:Router.Best_effort ~gates:[] () in
    let r = s.Rp_sim.Scenario.router in
    ignore (pmgr r "modload drr");
    ignore (pmgr r "create drr");
    ignore (pmgr r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface));
    s
  in
  let plugins_drr () =
    let s = mk_scn ~mode:Router.Plugins ~gates:[ Gate.Scheduling ] () in
    let r = s.Rp_sim.Scenario.router in
    ignore (pmgr r "modload drr");
    ignore (pmgr r "create drr");
    ignore (pmgr r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface));
    ignore (pmgr r "bind 1 <*, *, UDP, *, *, *>");
    install_extra_filters r ~gate:(Gate.to_int Gate.Scheduling) ~upto:15;
    s
  in
  let rows =
    [
      table3_run ~label:"unmodified best-effort kernel" ~slug:"best_effort"
        ~configure:best_effort ();
      table3_run ~label:"plugin framework (3 gates, empty plugins)"
        ~slug:"plugins_3gates" ~configure:plugins_3gates ();
      table3_run ~label:"monolithic kernel + built-in DRR (ALTQ-like)"
        ~slug:"monolithic_drr" ~configure:monolithic_drr ();
      table3_run ~label:"plugin framework + DRR plugin (1 gate)"
        ~slug:"plugins_drr" ~configure:plugins_drr ();
    ]
  in
  let paper = [ (6460, 27.73); (6970, 29.91); (8160, 35.0); (8110, 34.8) ] in
  let base_cycles =
    match rows with (_, c, _, _) :: _ -> c | [] -> 1.0
  in
  Printf.printf "  %-45s %9s %8s %9s %11s %14s\n" "kernel" "cycles" "us" "overhead"
    "pkts/s" "paper(cyc/us)";
  List.iter2
    (fun (label, cycles, received, _forwarded) (p_cyc, p_us) ->
      let us = Cost.us_of_cycles (int_of_float cycles) in
      let overhead = (cycles -. base_cycles) /. base_cycles *. 100.0 in
      Printf.printf "  %-45s %9.0f %8.2f %+8.1f%% %11.0f   %6d/%.2f\n" label
        cycles us overhead (1e6 /. us) p_cyc p_us;
      ignore received)
    rows paper;
  Printf.printf
    "\n  shape check: plugin overhead %.1f%% (paper: 8%%); DRR-over-best-effort\n\
    \  %.1f%% (paper: ~26%%); plugin DRR vs monolithic DRR: %+.1f%% (paper: -0.6%%)\n"
    (let (_, c, _, _) = List.nth rows 1 in
     (c -. base_cycles) /. base_cycles *. 100.0)
    (let (_, c, _, _) = List.nth rows 2 in
     (c -. base_cycles) /. base_cycles *. 100.0)
    (let (_, c3, _, _) = List.nth rows 3 in
     let (_, c2, _, _) = List.nth rows 2 in
     (c3 -. c2) /. c2 *. 100.0)

(* ---------------------------------------------------------------------- *)
(* §7.1: classifier scaling with the number of filters.                   *)
(* ---------------------------------------------------------------------- *)

let key_matching (f : Rp_classifier.Filter.t) =
  let addr_of p = p.Prefix.addr in
  Flow_key.make ~src:(addr_of f.Rp_classifier.Filter.src)
    ~dst:(addr_of f.Rp_classifier.Filter.dst)
    ~proto:
      (match f.Rp_classifier.Filter.proto with
       | Rp_classifier.Filter.Num p -> p
       | Rp_classifier.Filter.Any_num -> Proto.udp)
    ~sport:
      (match f.Rp_classifier.Filter.sport with
       | Rp_classifier.Filter.Port p -> p
       | Rp_classifier.Filter.Port_range (lo, _) -> lo
       | Rp_classifier.Filter.Any_port -> 4321)
    ~dport:
      (match f.Rp_classifier.Filter.dport with
       | Rp_classifier.Filter.Port p -> p
       | Rp_classifier.Filter.Port_range (lo, _) -> lo
       | Rp_classifier.Filter.Any_port -> 4321)
    ~iface:0

let fig_classifier () =
  section "Figure (7.1): filter-table lookup vs number of filters";
  Printf.printf
    "Queries are drawn from the installed filters (hits) plus random\n\
     traffic (mostly misses).  The paper's claim: lookup cost is\n\
     O(fields), independent of the number of filters.\n\n";
  Printf.printf "  %-10s %8s %12s %12s %12s %14s\n" "engine" "filters"
    "avg access" "worst" "ns/lookup" "trie nodes";
  List.iter
    (fun engine ->
      let module E = (val engine : Rp_lpm.Lpm_intf.S) in
      List.iter
        (fun n ->
          let dag = Workloads.build_dag ~engine ~family:`V4 n in
          let filters = ref [] in
          Rp_classifier.Dag.iter (fun f _ -> filters := f :: !filters) dag;
          let filters = Array.of_list !filters in
          let queries =
            Array.init 4000 (fun i ->
                if i land 1 = 0 then
                  key_matching filters.(i * 7919 mod Array.length filters)
                else Workloads.random_key_v4 ())
          in
          (* Warm up lazily-built structures. *)
          Array.iter (fun k -> ignore (Rp_classifier.Dag.lookup dag k)) queries;
          Rp_lpm.Access.reset ();
          let worst = ref 0 and total = ref 0 in
          Array.iter
            (fun k ->
              let _, a =
                Rp_lpm.Access.measure (fun () -> Rp_classifier.Dag.lookup dag k)
              in
              worst := max !worst a;
              total := !total + a)
            queries;
          Rp_lpm.Access.set_enabled false;
          let idx = ref 0 in
          let ns =
            time_ns 20000 (fun () ->
                ignore (Rp_classifier.Dag.lookup dag queries.(!idx));
                idx := (!idx + 1) land 4095 mod Array.length queries)
          in
          Rp_lpm.Access.set_enabled true;
          Printf.printf "  %-10s %8d %12.1f %12d %12.1f %14d\n" E.name n
            (float_of_int !total /. float_of_int (Array.length queries))
            !worst ns
            (Rp_classifier.Dag.node_count dag);
          Gc.full_major ())
        [ 16; 256; 1024; 4096; 16384; 50_000 ])
    [ Rp_lpm.Engines.patricia; Rp_lpm.Engines.bspl; Rp_lpm.Engines.cpe ];
  (* The baseline the paper contrasts with: O(n) linear classifiers. *)
  subsection "linear-scan baseline (the 'typical filter algorithm')";
  Printf.printf "  %-10s %8s %12s\n" "engine" "filters" "ns/lookup";
  List.iter
    (fun n ->
      let linear = Rp_classifier.Linear_ref.create () in
      for i = 0 to n - 1 do
        Rp_classifier.Linear_ref.insert linear (Workloads.bulk_filter_v4 ()) i
      done;
      Rp_lpm.Access.set_enabled false;
      let ns =
        time_ns
          (max 200 (200_000 / n))
          (fun () ->
            ignore
              (Rp_classifier.Linear_ref.classify linear (Workloads.random_key_v4 ())))
      in
      Rp_lpm.Access.set_enabled true;
      Printf.printf "  %-10s %8d %12.1f\n" "linear" n ns)
    [ 16; 256; 1024; 4096 ]

(* ---------------------------------------------------------------------- *)
(* §7.2: flow table behaviour.                                            *)
(* ---------------------------------------------------------------------- *)

let fig_flowtable () =
  section "Figure (7.2): flow table (cache) behaviour";
  Printf.printf
    "32768 buckets (the kernel default); records from the exponential\n\
     free list.  Cycle model: 17-cycle hash + 14 cycles (60 ns) per\n\
     dependent access; the paper reports 1.3 us best case for a cached\n\
     IPv6 flow lookup on the P6/233.\n\n";
  Printf.printf "  %-9s %7s %12s %10s %12s %12s %11s\n" "flows" "load"
    "avg access" "max chain" "model us" "hit ns" "miss ns";
  List.iter
    (fun n ->
      let ft = Rp_classifier.Flow_table.create ~gates:1 () in
      let keys =
        Array.init n (fun i ->
            Flow_key.make
              ~src:(Ipaddr.v4 10 (i lsr 16 land 0xFF) (i lsr 8 land 0xFF) (i land 0xFF))
              ~dst:(Ipaddr.v4 192 168 1 1) ~proto:Proto.udp
              ~sport:(i land 0xFFFF) ~dport:9000 ~iface:0)
      in
      Array.iter (fun k -> ignore (Rp_classifier.Flow_table.insert ft k ~now:0L)) keys;
      Rp_lpm.Access.reset ();
      let total = ref 0 in
      let probes = 20_000 in
      for i = 0 to probes - 1 do
        let k = keys.(i * 104729 mod n) in
        let _, a =
          Rp_lpm.Access.measure (fun () ->
              Rp_classifier.Flow_table.lookup ft k ~now:1L)
        in
        total := !total + a
      done;
      let stats = Rp_classifier.Flow_table.stats ft in
      let avg_access = float_of_int !total /. float_of_int probes in
      let model_cycles = 17.0 +. (avg_access *. 14.0) in
      Rp_lpm.Access.set_enabled false;
      let i = ref 0 in
      let hit_ns =
        time_ns 50_000 (fun () ->
            ignore (Rp_classifier.Flow_table.lookup ft keys.(!i * 31 mod n) ~now:2L);
            incr i)
      in
      let miss_key =
        Flow_key.make ~src:(Ipaddr.v4 1 2 3 4) ~dst:(Ipaddr.v4 5 6 7 8)
          ~proto:Proto.tcp ~sport:1 ~dport:1 ~iface:0
      in
      let miss_ns =
        time_ns 50_000 (fun () ->
            ignore (Rp_classifier.Flow_table.lookup ft miss_key ~now:2L))
      in
      Rp_lpm.Access.set_enabled true;
      Printf.printf "  %-9d %7.2f %12.2f %10d %12.2f %12.1f %11.1f\n" n
        (float_of_int n /. 32768.0)
        avg_access stats.Rp_classifier.Flow_table.chain_max
        (Cost.us_of_cycles (int_of_float model_cycles))
        hit_ns miss_ns)
    [ 1024; 8192; 32768; 131_072 ];
  Printf.printf
    "\n  (model us is the paper's metric; 1.3 us ~ a cached lookup with a\n\
    \   short chain on the P6/233)\n"

(* ---------------------------------------------------------------------- *)
(* §6.1: weighted DRR link sharing.                                       *)
(* ---------------------------------------------------------------------- *)

let fig_drr () =
  section "Figure (6.1): weighted DRR link sharing";
  let out_bw = 8_000_000L in
  let weights = [ (1, 1); (2, 1); (3, 2); (4, 4) ] in
  let run_with ~qdisc =
    let s =
      Rp_sim.Scenario.single_router ~in_ifaces:1 ~out_bandwidth_bps:out_bw ()
    in
    let r = s.Rp_sim.Scenario.router in
    (match qdisc with
     | `Drr ->
       ignore (pmgr r "modload drr");
       ignore (pmgr r "create drr");
       ignore (pmgr r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface));
       ignore (pmgr r "bind 1 <*, *, UDP, *, *, *>");
       List.iter
         (fun (id, w) ->
           if w > 1 then
             ok
               (Rp_sched.Drr_plugin.reserve ~instance_id:1
                  ~key:(Rp_sim.Scenario.sink_key ~id ())
                  ~rate_bps:(w * 1_000_000)))
         weights;
       (* weight-1 flows: reserve the base rate so weights are 1,1,2,4 *)
       List.iter
         (fun (id, w) ->
           if w = 1 then
             ok
               (Rp_sched.Drr_plugin.reserve ~instance_id:1
                  ~key:(Rp_sim.Scenario.sink_key ~id ())
                  ~rate_bps:1_000_000))
         weights
     | `Fifo -> ());
    (* Each flow offers 4 Mb/s: 16 Mb/s onto an 8 Mb/s link. *)
    List.iter
      (fun (id, _) ->
        ignore
          (Rp_sim.Scenario.add_flow s
             {
               Rp_sim.Traffic.key = Rp_sim.Scenario.sink_key ~id ();
               pkt_len = 1000;
               pattern = Rp_sim.Traffic.Cbr 500.0;
               start_ns = 0L;
               stop_ns = Rp_sim.Sim.ns_of_sec 4.0;
               seed = id;
             }))
      weights;
    Rp_sim.Scenario.run s ~seconds:5.0;
    List.map
      (fun (id, w) ->
        let g =
          match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id ()) with
          | Some fs -> Rp_sim.Sink.goodput_bps fs
          | None -> 0.0
        in
        (id, w, g))
      weights
  in
  Printf.printf
    "4 UDP flows, each offering 4 Mb/s to an 8 Mb/s link (2x overload);\n\
     reservations give weights 1:1:2:4.\n\n";
  let drr = run_with ~qdisc:`Drr in
  let total_w = List.fold_left (fun a (_, w, _) -> a + w) 0 drr in
  Printf.printf "  weighted DRR:\n";
  Printf.printf "  %-6s %7s %14s %9s %10s\n" "flow" "weight" "goodput Mb/s"
    "share" "expected";
  let total_g = List.fold_left (fun a (_, _, g) -> a +. g) 0.0 drr in
  List.iter
    (fun (id, w, g) ->
      Printf.printf "  %-6d %7d %14.2f %8.1f%% %9.1f%%\n" id w (mbps g)
        (g /. total_g *. 100.0)
        (float_of_int w /. float_of_int total_w *. 100.0))
    drr;
  let fifo = run_with ~qdisc:`Fifo in
  let total_gf = List.fold_left (fun a (_, _, g) -> a +. g) 0.0 fifo in
  Printf.printf "\n  FIFO baseline (no isolation):\n";
  Printf.printf "  %-6s %7s %14s %9s\n" "flow" "weight" "goodput Mb/s" "share";
  List.iter
    (fun (id, w, g) ->
      Printf.printf "  %-6d %7d %14.2f %8.1f%%\n" id w (mbps g)
        (g /. total_gf *. 100.0))
    fifo

(* ---------------------------------------------------------------------- *)
(* §6: H-FSC hierarchy and delay/bandwidth decoupling.                    *)
(* ---------------------------------------------------------------------- *)

let fig_hfsc () =
  section "Figure (6.2): H-FSC hierarchical link sharing";
  let out_bw = 10_000_000L in
  let link_Bps = Int64.to_float out_bw /. 8.0 in
  let s =
    Rp_sim.Scenario.single_router ~in_ifaces:1 ~out_bandwidth_bps:out_bw ()
  in
  let r = s.Rp_sim.Scenario.router in
  ignore (pmgr r "modload hfsc");
  ignore (pmgr r "create hfsc");
  ignore (pmgr r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface));
  ignore (pmgr r "bind 1 <*, *, UDP, *, *, *>");
  let sc = Rp_sched.Service_curve.linear in
  ok (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"agencyA" ~fsc:(sc (0.6 *. link_Bps)) ());
  ok (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"agencyB" ~fsc:(sc (0.4 *. link_Bps)) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"A-voice"
       ~parent:"agencyA"
       ~rsc:(Rp_sched.Service_curve.make ~m1:(2.0 *. link_Bps /. 10.0) ~d:0.02
               ~m2:(0.05 *. link_Bps))
       ~fsc:(sc (0.1 *. link_Bps)) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"A-data"
       ~parent:"agencyA" ~fsc:(sc (0.9 *. link_Bps)) ());
  ok
    (Rp_sched.Hfsc_plugin.add_class ~instance_id:1 ~cname:"B-bulk"
       ~parent:"agencyB" ~fsc:(sc link_Bps) ());
  let assign id cname =
    ok
      (Rp_sched.Hfsc_plugin.assign ~instance_id:1
         ~key:(Rp_sim.Scenario.sink_key ~id ())
         ~cname)
  in
  assign 1 "A-voice";
  assign 2 "A-data";
  assign 3 "B-bulk";
  (* Voice: 64 kb/s of small packets; data and bulk: 12 Mb/s each
     (heavy overload). *)
  let add id ~len ~pps =
    ignore
      (Rp_sim.Scenario.add_flow s
         {
           Rp_sim.Traffic.key = Rp_sim.Scenario.sink_key ~id ();
           pkt_len = len;
           pattern = Rp_sim.Traffic.Cbr pps;
           start_ns = 0L;
           stop_ns = Rp_sim.Sim.ns_of_sec 4.0;
           seed = id;
         })
  in
  add 1 ~len:200 ~pps:40.0;
  add 2 ~len:1000 ~pps:1500.0;
  add 3 ~len:1000 ~pps:1500.0;
  Rp_sim.Scenario.run s ~seconds:5.0;
  let report id cname =
    match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id ()) with
    | Some fs ->
      let mean, mx = Rp_sim.Sink.latency fs in
      Printf.printf "  %-8s %14.3f %14.2f %12.2f\n" cname
        (mbps (Rp_sim.Sink.goodput_bps fs))
        (mean *. 1000.0) (mx *. 1000.0)
    | None -> Printf.printf "  %-8s (no packets delivered)\n" cname
  in
  Printf.printf
    "10 Mb/s link; agencies share 60/40; inside A, voice has a concave\n\
     RSC (m1 = 2 Mb/s for 20 ms, m2 = 0.5 Mb/s) but only a 10%% fair\n\
     share.  Voice offers 64 kb/s; data and bulk offer 12 Mb/s each.\n\n";
  Printf.printf "  %-8s %14s %14s %12s\n" "class" "goodput Mb/s" "mean lat ms" "max lat ms";
  report 1 "A-voice";
  report 2 "A-data";
  report 3 "B-bulk";
  Printf.printf
    "\n  expectation: voice gets its full 64 kb/s with millisecond-scale\n\
    \  latency (RSC decouples delay from its small share); data:bulk\n\
    \  split the rest roughly (0.6*10-0.064):(0.4*10) Mb/s.\n"

(* ---------------------------------------------------------------------- *)
(* §3.2: gate scaling — overhead vs number of gates.                      *)
(* ---------------------------------------------------------------------- *)

let fig_gates () =
  section "Figure (3.2 claim): overhead vs number of gates";
  Printf.printf
    "Cached packets pay one indirect call per gate; only the first\n\
     packet of a flow pays the per-gate filter-table lookups.\n\n";
  Printf.printf "  %-7s %16s %16s %18s\n" "gates" "uncached cycles"
    "cached cycles" "cached extra/gate";
  let all = Array.of_list Gate.all in
  List.iter
    (fun n ->
      let gates = Array.to_list (Array.sub all 0 n) in
      let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
      let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
      Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
      List.iteri
        (fun i g ->
          let name = Printf.sprintf "empty-%d" i in
          ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:g ~name));
          let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
          ok
            (Pcu.register_instance r.Router.pcu
               ~instance:inst.Plugin.instance_id
               (Rp_classifier.Filter.v4 ())))
        gates;
      let key id =
        Flow_key.make ~src:(Ipaddr.v4 10 0 0 id) ~dst:(Ipaddr.v4 192 168 1 1)
          ~proto:Proto.udp ~sport:1000 ~dport:9000 ~iface:0
      in
      let process m =
        let v, c = Cost.measure (fun () -> Ip_core.process r ~now:0L m) in
        (match v with
         | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
         | Ip_core.Delivered_local | Ip_core.Absorbed | Ip_core.Dropped _ -> ());
        c
      in
      let uncached = process (Mbuf.synth ~key:(key 1) ~len:1000 ()) in
      (* average the cached cost over a few packets *)
      let cached_total = ref 0 in
      for _ = 1 to 50 do
        cached_total := !cached_total + process (Mbuf.synth ~key:(key 1) ~len:1000 ())
      done;
      let cached = float_of_int !cached_total /. 50.0 in
      Printf.printf "  %-7d %16d %16.0f %18.1f\n" n uncached cached
        ((cached -. float_of_int Cost.base_forward) /. float_of_int (max 1 n)))
    [ 1; 2; 3; 4; 6; 8 ]

(* ---------------------------------------------------------------------- *)
(* Flow-cache effectiveness under realistic (heavy-tailed) traffic.       *)
(* ---------------------------------------------------------------------- *)

(* The paper's performance premise: "caching that exploits the
   flow-like characteristics of Internet traffic".  Heavy-tailed flow
   sizes + temporal locality mean even a small flow cache absorbs most
   packets. *)
let fig_cache () =
  section "Figure (premise): flow-cache hit rate vs cache size";
  Printf.printf
    "20000 flows with Pareto(alpha=1.2) sizes (1..2000 packets),\n\
     interleaved over a 64-flow concurrency window; 3 gates enabled.\n\n";
  let rng = Random.State.make [| 77 |] in
  let pareto () =
    let u = Random.State.float rng 1.0 in
    let u = if u < 1e-9 then 1e-9 else u in
    min 2000 (int_of_float (1.0 /. (u ** (1.0 /. 1.2))))
  in
  let n_flows = 20_000 in
  let sizes = Array.init n_flows (fun _ -> pareto ()) in
  let total_packets = Array.fold_left ( + ) 0 sizes in
  (* Interleave: a window of 64 concurrently active flows; each step
     emits one packet from a random active flow. *)
  let sequence = ref [] in
  let window = Queue.create () in
  let next_flow = ref 0 in
  let active = ref [] in
  let refill () =
    while List.length !active < 64 && !next_flow < n_flows do
      active := (!next_flow, ref sizes.(!next_flow)) :: !active;
      incr next_flow
    done
  in
  ignore window;
  refill ();
  while !active <> [] do
    let idx = Random.State.int rng (List.length !active) in
    let id, remaining = List.nth !active idx in
    sequence := id :: !sequence;
    decr remaining;
    if !remaining = 0 then begin
      active := List.filter (fun (i, _) -> i <> id) !active;
      refill ()
    end
  done;
  let sequence = Array.of_list (List.rev !sequence) in
  Printf.printf "  %d packets over %d flows (mean flow %.1f pkts)\n\n"
    total_packets n_flows
    (float_of_int total_packets /. float_of_int n_flows);
  Printf.printf "  %-12s %10s %10s %12s %14s\n" "cache size" "hit rate"
    "recycled" "cycles/pkt" "vs infinite";
  let run cache_size =
    let gates = [ Gate.Ip_options; Gate.Security_in; Gate.Stats ] in
    let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:max_int () ] in
    let r =
      Router.create ~mode:Router.Plugins ~gates ~flow_max:cache_size ~ifaces ()
    in
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    List.iter
      (fun (g, n) ->
        ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:g ~name:n));
        let i = ok (Pcu.create_instance r.Router.pcu ~plugin:n []) in
        ok
          (Pcu.register_instance r.Router.pcu ~instance:i.Plugin.instance_id
             (Rp_classifier.Filter.v4 ())))
      [ (Gate.Ip_options, "ce0"); (Gate.Security_in, "ce1"); (Gate.Stats, "ce2") ];
    Cost.reset ();
    Array.iteri
      (fun t id ->
        let key =
          Flow_key.make
            ~src:(Ipaddr.v4 10 (id lsr 16 land 0xFF) (id lsr 8 land 0xFF) (id land 0xFF))
            ~dst:(Ipaddr.v4 192 168 1 1) ~proto:Proto.udp
            ~sport:(1024 + (id land 0x3FFF)) ~dport:9000 ~iface:0
        in
        let m = Mbuf.synth ~key ~len:500 () in
        (match Ip_core.process r ~now:(Int64.of_int t) m with
         | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
         | Ip_core.Delivered_local | Ip_core.Absorbed | Ip_core.Dropped _ -> ()))
      sequence;
    let cycles = float_of_int (Cost.get ()) /. float_of_int total_packets in
    let st = Rp_classifier.Flow_table.stats (Rp_classifier.Aiu.flow_table (Router.aiu r)) in
    let hit_rate =
      float_of_int st.Rp_classifier.Flow_table.hits
      /. float_of_int st.Rp_classifier.Flow_table.lookups
    in
    (hit_rate, st.Rp_classifier.Flow_table.recycled, cycles)
  in
  let _, _, infinite_cycles = run max_int in
  List.iter
    (fun size ->
      let hit, recycled, cycles = run size in
      Printf.printf "  %-12s %9.1f%% %10d %12.0f %+13.1f%%\n"
        (if size = max_int then "unbounded" else string_of_int size)
        (hit *. 100.0) recycled cycles
        ((cycles -. infinite_cycles) /. infinite_cycles *. 100.0))
    [ 64; 128; 256; 1024; 8192; max_int ]

(* ---------------------------------------------------------------------- *)
(* L4 switching: flow-cached routing vs per-packet LPM (§8).              *)
(* ---------------------------------------------------------------------- *)

let fig_l4 () =
  section "Figure (8): L4 switching — routing through the classifier";
  Printf.printf
    "The paper's future work: \"by unifying routing and packet\n\
     classification, we get QoS-based routing/Level 4 switching for\n\
     free\".  Policy routes are l4-route plugin bindings; cached\n\
     packets route with the FIX indirect call regardless of how many\n\
     policies are installed.\n\n";
  Printf.printf "  %-10s %18s %18s\n" "policies" "uncached cycles" "cached cycles";
  List.iter
    (fun n_policies ->
      let ifaces = List.init 4 (fun id -> Iface.create ~id ()) in
      let r = Router.create ~gates:[ Gate.Routing ] ~ifaces () in
      Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
      ok (Pcu.modload r.Router.pcu (module Route_plugin));
      for i = 0 to n_policies - 1 do
        let inst =
          ok
            (Pcu.create_instance r.Router.pcu ~plugin:"l4-route"
               [ ("iface", string_of_int (2 + (i land 1))) ])
        in
        ok
          (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
             (Rp_classifier.Filter.v4
                ~src:(Prefix.make (Ipaddr.v4 10 (i lsr 8) (i land 0xFF) 0) 24)
                ~proto:Proto.udp ()))
      done;
      let key =
        Flow_key.make ~src:(Ipaddr.v4 10 0 1 7) ~dst:(Ipaddr.v4 192 168 1 1)
          ~proto:Proto.udp ~sport:5000 ~dport:9000 ~iface:0
      in
      let process () =
        let m = Mbuf.synth ~key ~len:500 () in
        let v, c = Cost.measure (fun () -> Ip_core.process r ~now:0L m) in
        (match v with
         | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
         | Ip_core.Delivered_local | Ip_core.Absorbed | Ip_core.Dropped _ -> ());
        c
      in
      let uncached = process () in
      let cached_total = ref 0 in
      for _ = 1 to 20 do
        cached_total := !cached_total + process ()
      done;
      Printf.printf "  %-10d %18d %18.0f\n" n_policies uncached
        (float_of_int !cached_total /. 20.0);
      Gc.full_major ())
    [ 1; 64; 1024; 16384 ]

(* ---------------------------------------------------------------------- *)
(* Ablation: wildcard-chain collapsing (§5.1.2 optimization).             *)
(* ---------------------------------------------------------------------- *)

let fig_collapse () =
  section "Ablation (5.1.2): wildcard-chain collapsing";
  Printf.printf
    "Filter sets where protocol/ports/interface are wildcarded leave\n\
     single-wildcard-edge chains in the trie; Dag.optimize jumps them\n\
     in one access.\n\n";
  Printf.printf "  %-10s %16s %16s %14s\n" "filters" "plain access"
    "collapsed access" "saved";
  List.iter
    (fun n ->
      let dag = Rp_classifier.Dag.create ~engine:Rp_lpm.Engines.bspl () in
      for i = 0 to n - 1 do
        (* Address-only filters: everything else wildcarded. *)
        Rp_classifier.Dag.insert dag
          (Rp_classifier.Filter.v4
             ~src:(Prefix.make (Ipaddr.v4 10 (i lsr 8 land 0xFF) (i land 0xFF) 0) 24)
             ~dst:(Prefix.make (Ipaddr.v4 172 16 (i land 0xFF) 0) 24)
             ())
          i
      done;
      let keys =
        Array.init 1000 (fun i ->
            Flow_key.make
              ~src:(Ipaddr.v4 10 (i lsr 8 land 0xFF) (i land 0xFF) 7)
              ~dst:(Ipaddr.v4 172 16 (i land 0xFF) 9) ~proto:Proto.udp
              ~sport:1 ~dport:2 ~iface:0)
      in
      Array.iter (fun k -> ignore (Rp_classifier.Dag.lookup dag k)) keys;
      let measure () =
        let total = ref 0 in
        Array.iter
          (fun k ->
            let _, a =
              Rp_lpm.Access.measure (fun () -> Rp_classifier.Dag.lookup dag k)
            in
            total := !total + a)
          keys;
        float_of_int !total /. float_of_int (Array.length keys)
      in
      let plain = measure () in
      Rp_classifier.Dag.optimize dag;
      let collapsed = measure () in
      Printf.printf "  %-10d %16.1f %16.1f %13.1f%%\n" n plain collapsed
        ((plain -. collapsed) /. plain *. 100.0);
      Gc.full_major ())
    [ 16; 256; 4096 ]

(* ---------------------------------------------------------------------- *)
(* Grid-of-tries vs set pruning on two-dimensional filters (§5.1.2).     *)
(* ---------------------------------------------------------------------- *)

let fig_grid () =
  section "Comparison (5.1.2): grid-of-tries vs set-pruning DAG (2D filters)";
  Printf.printf
    "The paper: grid-of-tries gives \"better memory utilization without\n\
     sacrificing performance, but work[s] only in the special case of\n\
     two-dimensional filters\".  Same (src, dst) filter sets in both\n\
     structures; queries half hits, half random.\n\n";
  Printf.printf "  %-9s %14s %14s %16s %16s\n" "filters" "GoT nodes"
    "DAG nodes" "GoT avg access" "DAG avg access";
  List.iter
    (fun n ->
      let rng = Random.State.make [| 99 |] in
      let addr () =
        Ipaddr.v4 (Random.State.int rng 64) (Random.State.int rng 16)
          (Random.State.int rng 4) 0
      in
      let pairs =
        List.init n (fun _ ->
            ( Prefix.make (addr ()) (8 + Random.State.int rng 17),
              Prefix.make (addr ()) (8 + Random.State.int rng 17) ))
      in
      let got = Rp_classifier.Grid_of_tries.create () in
      let dag = Rp_classifier.Dag.create ~engine:Rp_lpm.Engines.bspl () in
      List.iteri
        (fun i (src, dst) ->
          Rp_classifier.Grid_of_tries.insert got ~src ~dst i;
          Rp_classifier.Dag.insert dag (Rp_classifier.Filter.v4 ~src ~dst ()) i)
        pairs;
      let arr = Array.of_list pairs in
      let queries =
        Array.init 2000 (fun i ->
            if i land 1 = 0 then
              let src, dst = arr.(i * 7919 mod n) in
              (src.Prefix.addr, dst.Prefix.addr)
            else (addr (), addr ()))
      in
      (* Warm lazy structures. *)
      Array.iter
        (fun (src, dst) ->
          ignore (Rp_classifier.Grid_of_tries.lookup got ~src ~dst);
          ignore
            (Rp_classifier.Dag.lookup dag
               (Flow_key.make ~src ~dst ~proto:Proto.udp ~sport:1 ~dport:2
                  ~iface:0)))
        queries;
      let measure f =
        let total = ref 0 in
        Array.iter
          (fun q ->
            let _, a = Rp_lpm.Access.measure (fun () -> f q) in
            total := !total + a)
          queries;
        float_of_int !total /. float_of_int (Array.length queries)
      in
      let got_acc =
        measure (fun (src, dst) -> Rp_classifier.Grid_of_tries.lookup got ~src ~dst)
      in
      let dag_acc =
        measure (fun (src, dst) ->
            Rp_classifier.Dag.lookup dag
              (Flow_key.make ~src ~dst ~proto:Proto.udp ~sport:1 ~dport:2
                 ~iface:0))
      in
      Printf.printf "  %-9d %14d %14d %16.1f %16.1f\n" n
        (Rp_classifier.Grid_of_tries.node_count got)
        (Rp_classifier.Dag.node_count dag)
        got_acc dag_acc;
      Gc.full_major ())
    [ 256; 1024; 4096; 16384 ]

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks.                                             *)
(* ---------------------------------------------------------------------- *)

let micro () =
  section "Bechamel micro-benchmarks (wall clock, this machine)";
  Rp_lpm.Access.set_enabled false;
  let open Bechamel in
  (* classifier lookups, one per engine, 1024 bulk filters *)
  let dag_tests =
    List.map
      (fun engine ->
        let module E = (val engine : Rp_lpm.Lpm_intf.S) in
        let dag = Workloads.build_dag ~engine ~family:`V4 1024 in
        let keys = Array.init 256 (fun _ -> Workloads.random_key_v4 ()) in
        Array.iter (fun k -> ignore (Rp_classifier.Dag.lookup dag k)) keys;
        let i = ref 0 in
        Test.make
          ~name:(Printf.sprintf "dag-lookup-%s-1k-filters" E.name)
          (Staged.stage (fun () ->
               incr i;
               ignore (Rp_classifier.Dag.lookup dag keys.(!i land 255)))))
      [ Rp_lpm.Engines.patricia; Rp_lpm.Engines.bspl; Rp_lpm.Engines.cpe ]
  in
  (* flow table hit *)
  let ft = Rp_classifier.Flow_table.create ~gates:1 () in
  let ft_keys =
    Array.init 4096 (fun i ->
        Flow_key.make ~src:(Ipaddr.v4 10 1 (i lsr 8) (i land 0xFF))
          ~dst:(Ipaddr.v4 192 168 1 1) ~proto:Proto.udp ~sport:i ~dport:53
          ~iface:0)
  in
  Array.iter (fun k -> ignore (Rp_classifier.Flow_table.insert ft k ~now:0L)) ft_keys;
  let fi = ref 0 in
  let ft_test =
    Test.make ~name:"flow-table-hit"
      (Staged.stage (fun () ->
           incr fi;
           ignore (Rp_classifier.Flow_table.lookup ft ft_keys.(!fi land 4095) ~now:1L)))
  in
  (* full cached data path *)
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0
  in
  let m = Mbuf.synth ~key ~len:1000 () in
  ignore (Ip_core.process r ~now:0L m);
  ignore (Iface.dequeue (Router.iface r 1) ~now:0L);
  let process_test =
    Test.make ~name:"ip-core-process-cached"
      (Staged.stage (fun () ->
           let m = Mbuf.synth ~key ~len:1000 () in
           (match Ip_core.process r ~now:0L m with
            | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
            | Ip_core.Delivered_local | Ip_core.Absorbed | Ip_core.Dropped _ -> ())))
  in
  (* crypto *)
  let block = Bytes.make 1500 'x' in
  let md5_test =
    Test.make ~name:"md5-1500B" (Staged.stage (fun () -> ignore (Rp_crypto.Md5.digest_bytes block)))
  in
  let hmac_test =
    Test.make ~name:"hmac-md5-1500B"
      (Staged.stage (fun () -> ignore (Rp_crypto.Hmac.md5_bytes ~key:"k" block 0 1500)))
  in
  let rc4 = Rp_crypto.Rc4.create "bench-key" in
  let rc4_test =
    Test.make ~name:"rc4-1500B" (Staged.stage (fun () -> Rp_crypto.Rc4.apply rc4 block 0 1500))
  in
  let grouped =
    Test.make_grouped ~name:"rp"
      (dag_tests @ [ ft_test; process_test; md5_test; hmac_test; rc4_test ])
  in
  run_bechamel grouped;
  Rp_lpm.Access.set_enabled true

(* ---------------------------------------------------------------------- *)
(* Multicore engine: aggregate throughput scaling across domains.         *)
(* ---------------------------------------------------------------------- *)

(* Classifier-heavy workload (three gates with bound plugins plus the
   Table-3 inert filter load) pumped through the sharded engine at
   1, 2 and 4 worker domains.  Throughput is the cycle model's:
   aggregate mpps = packets / (slowest shard's charged cycles / Hz) —
   shards run flow-disjoint traffic concurrently, so the makespan is
   the busiest shard.  Wall-clock mpps is reported as an informational
   column (it depends on the host's core count, which CI does not
   control). *)
let fig_shard () =
  section "fig-shard: engine throughput scaling across worker domains";
  let flows = 64 and per_flow = 200 in
  Printf.printf
    "%d flows x %d packets through the sharded engine; per-flow state\n\
     and flow caches are domain-private, RSS distribution by flow hash.\n\n"
    flows per_flow;
  let run domains =
    let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
    let r = s.Rp_sim.Scenario.router in
    List.iteri
      (fun i gate ->
        let name = Printf.sprintf "shard-empty-%d" i in
        ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate ~name));
        let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
        ok
          (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
             (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
        install_extra_filters r ~gate:(Gate.to_int gate) ~upto:13)
      [ Gate.Ip_options; Gate.Firewall; Gate.Stats ];
    let e = Rp_engine.Engine.create (Rp_engine.Engine.Sharded domains) r in
    let drained = ref 0 in
    let record _ = incr drained in
    let t0 = Unix.gettimeofday () in
    for f = 0 to flows - 1 do
      let key = Rp_sim.Scenario.sink_key ~id:(100 + f) () in
      for _ = 1 to per_flow do
        let m = Mbuf.synth ~key ~len:1000 () in
        while not (Rp_engine.Engine.submit e ~now:0L m) do
          ignore (Rp_engine.Engine.drain e ~f:record)
        done
      done
    done;
    ignore (Rp_engine.Engine.flush e ~f:record);
    let wall_s = Unix.gettimeofday () -. t0 in
    let max_cycles = ref 0 in
    for i = 0 to domains - 1 do
      let c = Rp_engine.Engine.shard_cycles e i in
      if c > !max_cycles then max_cycles := c
    done;
    Rp_engine.Engine.stop e;
    let hz = Cost.cpu_mhz *. 1e6 in
    let mpps =
      float_of_int !drained /. (float_of_int !max_cycles /. hz) /. 1e6
    in
    let wall_mpps = float_of_int !drained /. wall_s /. 1e6 in
    (mpps, wall_mpps, !drained, !max_cycles)
  in
  Printf.printf "  %-8s %12s %14s %16s %12s\n" "domains" "packets"
    "model mpps" "busiest cycles" "wall mpps";
  let results =
    List.map
      (fun d ->
        let ((mpps, wall_mpps, drained, max_cycles) as res) = run d in
        Printf.printf "  %-8d %12d %14.3f %16d %12.3f\n" d drained mpps
          max_cycles wall_mpps;
        Rp_obs.Registry.set
          (Printf.sprintf "bench.fig_shard.domains%d.mpps" d)
          mpps;
        Rp_obs.Registry.set
          (Printf.sprintf "bench.fig_shard.domains%d.wall_mpps" d)
          wall_mpps;
        (d, res))
      [ 1; 2; 4 ]
  in
  let mpps_of d =
    match List.assoc_opt d results with
    | Some (mpps, _, _, _) -> mpps
    | None -> 0.0
  in
  let speedup = if mpps_of 1 > 0.0 then mpps_of 4 /. mpps_of 1 else 0.0 in
  Rp_obs.Registry.set "bench.fig_shard.speedup_4v1" speedup;
  Printf.printf "\n  aggregate speedup at 4 domains vs 1: %.2fx\n" speedup

(* ---------------------------------------------------------------------- *)
(* Hot-path tracing overhead vs sampling period.                           *)
(* ---------------------------------------------------------------------- *)

(* The telemetry design claim: tracing never charges the cycle cost
   model (model results are identical traced or untraced — the CI gate
   ci/check_trace_overhead.sh pins that on the Table-3 kernels), and
   the *real* recording cost is a few stores per sampled event, so
   wall-clock overhead falls away with the sampling period. *)
let fig_trace () =
  section "fig-trace: hot-path tracing overhead vs sampling period";
  Printf.printf
    "Cached 3-gate data path under sampling off / 1-in-1 / 1-in-16 /\n\
     1-in-256.  Model cycles must not move with sampling (tracing is\n\
     outside the cost model); wall-clock ns/packet shows the real\n\
     event-recording cost on this machine.\n\n";
  let gates = [ Gate.Ip_options; Gate.Security_in; Gate.Stats ] in
  let ifaces =
    [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:max_int () ]
  in
  let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  List.iter
    (fun (g, n) ->
      ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:g ~name:n));
      let i = ok (Pcu.create_instance r.Router.pcu ~plugin:n []) in
      ok
        (Pcu.register_instance r.Router.pcu ~instance:i.Plugin.instance_id
           (Rp_classifier.Filter.v4 ())))
    [ (Gate.Ip_options, "tr0"); (Gate.Security_in, "tr1"); (Gate.Stats, "tr2") ];
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:1000 ~dport:9000 ~iface:0
  in
  let process () =
    let m = Mbuf.synth ~key ~len:1000 () in
    match Ip_core.process r ~now:0L m with
    | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
    | Ip_core.Delivered_local | Ip_core.Absorbed | Ip_core.Dropped _ -> ()
  in
  (* Warm the flow cache so every measured packet takes the FIX path. *)
  process ();
  let measure slug every =
    (match every with
     | 0 -> Rp_obs.Telemetry.disable ()
     | n -> Rp_obs.Telemetry.enable ~every:n);
    let cycles =
      let _, c = Cost.measure (fun () -> for _ = 1 to 200 do process () done) in
      float_of_int c /. 200.0
    in
    let ns = time_ns 30_000 process in
    Rp_obs.Telemetry.disable ();
    Rp_obs.Registry.set (Printf.sprintf "bench.fig_trace.%s.cycles" slug) cycles;
    Rp_obs.Registry.set (Printf.sprintf "bench.fig_trace.%s.wall_ns" slug) ns;
    (every, cycles, ns)
  in
  let rows =
    [ measure "off" 0; measure "s1" 1; measure "s16" 16; measure "s256" 256 ]
  in
  let base_ns = match rows with (_, _, ns) :: _ -> ns | [] -> 1.0 in
  Printf.printf "  %-10s %14s %12s %14s\n" "sampling" "model cyc/pkt"
    "wall ns/pkt" "wall overhead";
  List.iter
    (fun (every, cycles, ns) ->
      Printf.printf "  %-10s %14.0f %12.1f %+13.1f%%\n"
        (if every = 0 then "off" else Printf.sprintf "1-in-%d" every)
        cycles ns
        ((ns -. base_ns) /. base_ns *. 100.0))
    rows;
  Printf.printf
    "\n  ci/check_trace_overhead.sh gates the same property on the Table-3\n\
    \  kernels: traced model cycles within 5%% of untraced.\n"

(* ---------------------------------------------------------------------- *)
(* Control-plane churn: delta publication vs full recompilation.           *)
(* ---------------------------------------------------------------------- *)

(* Sustained filter update rate with ~512 background filters installed
   and warm per-shard flow caches.  Each update registers or
   deregisters one /24-source filter, publishes, and brings four
   shards up to the new generation.  The shards are synced
   synchronously on this domain (the exact [Shard.sync] code the
   workers run) so the measurement captures the per-update *work* —
   delta replay with selective invalidation vs recompiling the
   513-filter classifier and flushing the flow cache — rather than
   cross-domain scheduling noise, which on a single-core CI box drowns
   the signal.  Three configurations: the inline engine (direct
   mutation, the latency floor), four shards replaying deltas, and
   four shards with delta recording off (every publication recompiles
   from scratch — the previous behavior).  The CI gate
   ci/check_churn.sh requires the delta path to sustain >= 10x the
   full-recompile update rate. *)
let fig_churn () =
  section "fig-churn: control-plane churn — delta publication vs recompile";
  let updates = 200 and background = 512 and flows = 32 in
  Printf.printf
    "%d background filters, %d warm flows per shard; %d single-filter\n\
     updates (bind/unbind alternating), each published and applied to\n\
     4 shards via Shard.sync on this domain (scheduler-free).\n\n"
    background flows updates;
  let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let shard_flushes n =
    let t = ref 0 in
    for i = 0 to n - 1 do
      t := !t + counter (Printf.sprintf "engine.shard%d.flow_flushes" i)
    done;
    !t
  in
  let run ~slug ~sync_shards ~deltas =
    let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
    let r = s.Rp_sim.Scenario.router in
    let name = "churn-fw" in
    ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:Gate.Firewall ~name));
    let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
    let id = inst.Plugin.instance_id in
    ok
      (Pcu.register_instance r.Router.pcu ~instance:id
         (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
    (* Background filter load (the "16 filters installed" idea at
       fig-churn scale); bound before the engine exists, so they are
       part of the base snapshot, not the delta stream. *)
    let aiu = Router.aiu r in
    for i = 1 to background do
      Rp_classifier.Aiu.bind aiu ~gate:(Gate.to_int Gate.Firewall)
        (Rp_classifier.Filter.v4
           ~src:
             (Prefix.make (Ipaddr.v4 172 (16 + (i lsr 8)) (i land 0xFF) 0) 24)
           ~proto:Proto.tcp ())
        (Plugin.simple ~instance_id:(9000 + i) ~code:0 ~plugin_name:"inert"
           ~gate:Gate.Firewall
           (fun _ _ -> Plugin.Continue))
    done;
    (* The inline engine is the snapshot publisher: its AIU listener
       records the mutation deltas exactly as in sharded mode. *)
    let e = Rp_engine.Engine.create Rp_engine.Engine.Inline r in
    Rp_engine.Engine.set_deltas e deltas;
    Rp_engine.Engine.publish e;
    let shards =
      List.init sync_shards (fun i ->
          Rp_engine.Shard.create ~index:i (Rp_engine.Engine.snapshot e))
    in
    let flushes0 = shard_flushes sync_shards in
    (* Warm every shard's private flow cache (and the router's own, for
       the inline row). *)
    for f = 0 to flows - 1 do
      let key = Rp_sim.Scenario.sink_key ~id:(300 + f) () in
      if sync_shards = 0 then
        ignore (Ip_core.process r ~now:0L (Mbuf.synth ~key ~len:1000 ()))
      else
        List.iter
          (fun sh ->
            ignore
              (Rp_engine.Shard.dispatch sh ~now:0L
                 (Mbuf.synth ~key ~len:1000 ())))
          shards
    done;
    let churn_filter i =
      Rp_classifier.Filter.v4
        ~src:(Prefix.make (Ipaddr.v4 10 200 (i land 0xFF) 0) 24)
        ~proto:Proto.udp ()
    in
    let lat = Array.make updates 0.0 in
    let churn_s = ref 0.0 in
    for u = 0 to updates - 1 do
      let f = churn_filter (u / 2) in
      let t0 = Unix.gettimeofday () in
      (if u land 1 = 0 then
         ok (Pcu.register_instance r.Router.pcu ~instance:id f)
       else ok (Pcu.deregister_instance r.Router.pcu ~instance:id f));
      Rp_engine.Engine.publish e;
      let snap = Rp_engine.Engine.snapshot e in
      List.iter (fun sh -> Rp_engine.Shard.sync sh snap) shards;
      let dt = Unix.gettimeofday () -. t0 in
      lat.(u) <- dt;
      churn_s := !churn_s +. dt
    done;
    let flushes = shard_flushes sync_shards - flushes0 in
    Rp_engine.Engine.stop e;
    Array.sort compare lat;
    let us p = lat.(min (updates - 1) (p * updates / 100)) *. 1e6 in
    let ups = float_of_int updates /. !churn_s in
    Rp_obs.Registry.set (Printf.sprintf "bench.churn.%s.updates_per_s" slug)
      ups;
    Rp_obs.Registry.set (Printf.sprintf "bench.churn.%s.setup_us_p50" slug)
      (us 50);
    Rp_obs.Registry.set (Printf.sprintf "bench.churn.%s.setup_us_p99" slug)
      (us 99);
    Gc.full_major ();
    (ups, us 50, us 99, flushes)
  in
  Printf.printf "  %-22s %12s %12s %12s %14s\n" "configuration" "updates/s"
    "p50 us" "p99 us" "flow flushes";
  let report label (ups, p50, p99, flushes) =
    Printf.printf "  %-22s %12.0f %12.1f %12.1f %14d\n" label ups p50 p99
      flushes
  in
  let inline = run ~slug:"inline" ~sync_shards:0 ~deltas:true in
  report "inline (direct)" inline;
  let delta = run ~slug:"sharded4.delta" ~sync_shards:4 ~deltas:true in
  report "sharded:4 delta" delta;
  let full = run ~slug:"sharded4.full" ~sync_shards:4 ~deltas:false in
  report "sharded:4 recompile" full;
  let ups (u, _, _, _) = u in
  let speedup = if ups full > 0.0 then ups delta /. ups full else 0.0 in
  Rp_obs.Registry.set "bench.churn.delta_speedup_4" speedup;
  Printf.printf
    "\n  delta-over-recompile update-rate speedup at 4 shards: %.1fx\n\
    \  (ci/check_churn.sh gates >= 10x and byte-identical Table-3 cycles)\n"
    speedup

(* ---------------------------------------------------------------------- *)
(* Batched zero-copy data path: pool + links + synth generator.            *)
(* ---------------------------------------------------------------------- *)

(* [--csv-out FILE] destination for the fig-batch time series (the CI
   artifact check_batch.sh inspects alongside the JSON metrics). *)
let csv_out : string option ref = ref None

(* The snabb-style pump: a Synth generator allocates from a packet
   Pool onto a Link; the pump pulls fixed-size batches off the link,
   pushes them through the engine's batched path, and recycles every
   drained descriptor back into the pool — steady state runs entirely
   on preallocated memory.  Throughput is the cycle model's (packets
   over charged cycles; for sharded engines the busiest shard is the
   makespan), reported as a CSV time series with one row per
   [interval] packets so CI can gate the steady-state rows and spot
   warm-up-only performance. *)
let fig_batch () =
  section "fig-batch: batched zero-copy data path (pool + link + synth)";
  let total = 30_000 and interval = 3_000 and batch = 32 in
  let flows = 64 in
  Printf.printf
    "Synth generator (%d flows, IMIX sizes) -> pool/link -> batched\n\
     dispatch, %d packets per engine, one CSV row per %d packets.\n\
     Mpps is model throughput (charged cycles at %.0f MHz); the first\n\
     row is warm-up (cold flow cache), the rest are steady state.\n\n"
    flows total interval Cost.cpu_mhz;
  let csv =
    Option.map
      (fun path ->
        Rp_obs.Csv_stats.to_file ~path
          ~columns:
            [
              "engine"; "row"; "packets"; "cum_packets"; "model_s";
              "model_mpps"; "wall_mpps"; "pool_free"; "link_txdrops";
            ])
      !csv_out
  in
  let run ~slug ~label ~mode =
    let gates = [ Gate.Ip_options; Gate.Firewall; Gate.Stats ] in
    let ifaces =
      [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:max_int () ]
    in
    let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    List.iteri
      (fun i gate ->
        let name = Printf.sprintf "batch-empty-%d" i in
        ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate ~name));
        let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
        ok
          (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
             (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
        install_extra_filters r ~gate:(Gate.to_int gate) ~upto:13)
      gates;
    let e = Rp_engine.Engine.create mode r in
    let pool = Pool.create ~capacity:4096 () in
    let link = Link.create ~capacity:512 () in
    let synth = Rp_sim.Synth.create ~flows ~pool () in
    let scratch = Array.make batch (Mbuf.synth ~key:(Rp_sim.Traffic.flow_key ~id:0 ()) ~len:0 ()) in
    let drained = ref 0 in
    let recycle (res : Rp_engine.Shard.result) =
      Pool.free pool res.Rp_engine.Shard.m;
      incr drained
    in
    let domains = match mode with
      | Rp_engine.Engine.Inline -> 1
      | Rp_engine.Engine.Sharded n -> n
    in
    let model_cycles () =
      match mode with
      | Rp_engine.Engine.Inline -> Cost.get ()
      | Rp_engine.Engine.Sharded _ ->
        let mx = ref 0 in
        for i = 0 to domains - 1 do
          let c = Rp_engine.Engine.shard_cycles e i in
          if c > !mx then mx := c
        done;
        !mx
    in
    let hz = Cost.cpu_mhz *. 1e6 in
    let row_idx = ref 0 in
    let last_cycles = ref (model_cycles ()) in
    let cycles0 = !last_cycles in
    let last_wall = ref (Unix.gettimeofday ()) in
    let last_drained = ref 0 in
    let steady_sum = ref 0.0 and steady_rows = ref 0 in
    let report () =
      let cycles = model_cycles () in
      let wall = Unix.gettimeofday () in
      let pkts = !drained - !last_drained in
      let dcyc = cycles - !last_cycles in
      let mpps =
        if dcyc > 0 then float_of_int pkts /. (float_of_int dcyc /. hz) /. 1e6
        else 0.0
      in
      let wall_mpps =
        let dt = wall -. !last_wall in
        if dt > 0.0 then float_of_int pkts /. dt /. 1e6 else 0.0
      in
      if !row_idx > 0 then begin
        (* Row 0 is warm-up: cold flow caches, first-packet filter
           walks.  Steady state is everything after it. *)
        steady_sum := !steady_sum +. mpps;
        incr steady_rows
      end;
      Printf.printf "  %-10s %4d %10d %12d %10.4f %12.4f %10.3f\n" label
        !row_idx pkts !drained
        (float_of_int (cycles - cycles0) /. hz)
        mpps wall_mpps;
      (match csv with
       | Some c ->
         Rp_obs.Csv_stats.row c
           [
             label;
             Rp_obs.Csv_stats.i !row_idx;
             Rp_obs.Csv_stats.i pkts;
             Rp_obs.Csv_stats.i !drained;
             Rp_obs.Csv_stats.f6 (float_of_int (cycles - cycles0) /. hz);
             Rp_obs.Csv_stats.f6 mpps;
             Rp_obs.Csv_stats.f6 wall_mpps;
             Rp_obs.Csv_stats.i (Pool.available pool);
             Rp_obs.Csv_stats.i (Link.txdrops link);
           ]
       | None -> ());
      incr row_idx;
      last_cycles := cycles;
      last_wall := wall;
      last_drained := !drained
    in
    Printf.printf "  %-10s %4s %10s %12s %10s %12s %10s\n" "engine" "row"
      "packets" "cum_packets" "model_s" "model_mpps" "wall_mpps";
    let next_report = ref interval in
    let submitted = ref 0 in
    while !drained < total do
      if !submitted < total then begin
        ignore (Rp_sim.Synth.pull synth ~now_ns:0L link ~max:(2 * batch));
        let n = Link.receive_batch link ~max:(min batch (total - !submitted)) scratch in
        if n > 0 then begin
          (match mode with
           | Rp_engine.Engine.Inline ->
             ignore (Rp_engine.Engine.submit_batch e ~now:0L scratch ~n)
           | Rp_engine.Engine.Sharded _ ->
             for i = 0 to n - 1 do
               while not (Rp_engine.Engine.submit e ~now:0L scratch.(i)) do
                 ignore (Rp_engine.Engine.drain e ~f:recycle)
               done
             done);
          submitted := !submitted + n
        end
      end;
      ignore (Rp_engine.Engine.drain e ~f:recycle);
      if !submitted >= total && !drained < total then
        ignore (Rp_engine.Engine.flush e ~f:recycle);
      while !drained >= !next_report do
        report ();
        next_report := !next_report + interval
      done
    done;
    Rp_engine.Engine.stop e;
    let steady =
      if !steady_rows > 0 then !steady_sum /. float_of_int !steady_rows
      else 0.0
    in
    let ps = Pool.stats pool in
    Printf.printf
      "  %-10s steady-state %.4f model mpps/domain; pool allocs=%d frees=%d \
       exhausted=%d\n\n"
      label steady ps.Pool.allocs ps.Pool.frees ps.Pool.exhausted;
    Rp_obs.Registry.set
      (Printf.sprintf "bench.fig_batch.%s.steady_mpps" slug)
      steady;
    Rp_obs.Registry.set
      (Printf.sprintf "bench.fig_batch.%s.rows" slug)
      (float_of_int !row_idx);
    Rp_obs.Registry.set
      (Printf.sprintf "bench.fig_batch.%s.pool_exhausted" slug)
      (float_of_int ps.Pool.exhausted);
    Rp_obs.Registry.set
      (Printf.sprintf "bench.fig_batch.%s.generated" slug)
      (float_of_int (Rp_sim.Synth.generated synth));
    Gc.full_major ();
    steady
  in
  let inline =
    run ~slug:"inline" ~label:"inline" ~mode:Rp_engine.Engine.Inline
  in
  let sharded =
    run ~slug:"sharded4" ~label:"sharded:4"
      ~mode:(Rp_engine.Engine.Sharded 4)
  in
  (match csv with Some c -> Rp_obs.Csv_stats.close c | None -> ());
  Printf.printf
    "  steady-state model mpps/domain: inline %.4f, sharded:4 %.4f\n\
    \  (ci/check_batch.sh gates the floor and Table-3 byte-identity)\n"
    inline sharded

(* ---------------------------------------------------------------------- *)
(* fig-coldstart: compiled cross-gate classification.                     *)
(* ---------------------------------------------------------------------- *)

(* Cold-start cost of the two classifier modes.  Per-gate is the
   paper's section 3.2 behaviour — "the processing of the first packet
   of a new flow with n gates involves n filter table lookups" — while
   compiled resolves every gate's binding in one traversal of the
   cross-gate structure.  Traffic carries as many flow keys as packets
   (all-new flows), so nearly every packet is a cold start and the
   per-miss access count dominates.  The micro part pins the headline
   claim: with identical filter tables installed at every gate, the
   compiled walk's access count does not change with the gate count,
   while the per-gate walk grows linearly. *)
let fig_coldstart () =
  section "fig-coldstart: cold-start classification, compiled vs per-gate";
  let total = 8_192 and batch = 32 in
  Printf.printf
    "Synth traffic, %d flows over %d packets (all-new flows: the flow\n\
     cache misses on ~every first packet).  'cold acc/walk' is\n\
     aiu.miss_accesses / aiu.full_walks — memory accesses charged to\n\
     resolve one cold start across all gates.\n\n"
    total total;
  let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let run ~eng_slug ~label ~mode ~classifier =
    let gates = [ Gate.Ip_options; Gate.Firewall; Gate.Stats ] in
    let ifaces =
      [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:max_int () ]
    in
    let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    List.iteri
      (fun i gate ->
        let name = Printf.sprintf "cold-empty-%d" i in
        ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate ~name));
        let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
        ok
          (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
             (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
        install_extra_filters r ~gate:(Gate.to_int gate) ~upto:13)
      gates;
    (* Before the engine captures its gen-0 snapshot, so shards compile
       with the requested mode. *)
    Rp_classifier.Aiu.set_mode (Router.aiu r) classifier;
    let e = Rp_engine.Engine.create mode r in
    let pool = Pool.create ~capacity:4096 () in
    let link = Link.create ~capacity:512 () in
    let synth = Rp_sim.Synth.create ~flows:total ~pool () in
    let scratch =
      Array.make batch
        (Mbuf.synth ~key:(Rp_sim.Traffic.flow_key ~id:0 ()) ~len:0 ())
    in
    let drained = ref 0 in
    let recycle (res : Rp_engine.Shard.result) =
      Pool.free pool res.Rp_engine.Shard.m;
      incr drained
    in
    let model_cycles () =
      match mode with
      | Rp_engine.Engine.Inline -> Cost.get ()
      | Rp_engine.Engine.Sharded n ->
        let mx = ref 0 in
        for i = 0 to n - 1 do
          let c = Rp_engine.Engine.shard_cycles e i in
          if c > !mx then mx := c
        done;
        !mx
    in
    let walks0 = counter "aiu.full_walks" in
    let acc0 = counter "aiu.miss_accesses" in
    let cycles0 = model_cycles () in
    let submitted = ref 0 in
    while !drained < total do
      if !submitted < total then begin
        ignore (Rp_sim.Synth.pull synth ~now_ns:0L link ~max:(2 * batch));
        let n =
          Link.receive_batch link ~max:(min batch (total - !submitted)) scratch
        in
        if n > 0 then begin
          (match mode with
           | Rp_engine.Engine.Inline ->
             ignore (Rp_engine.Engine.submit_batch e ~now:0L scratch ~n)
           | Rp_engine.Engine.Sharded _ ->
             for i = 0 to n - 1 do
               while not (Rp_engine.Engine.submit e ~now:0L scratch.(i)) do
                 ignore (Rp_engine.Engine.drain e ~f:recycle)
               done
             done);
          submitted := !submitted + n
        end
      end;
      ignore (Rp_engine.Engine.drain e ~f:recycle);
      if !submitted >= total && !drained < total then
        ignore (Rp_engine.Engine.flush e ~f:recycle)
    done;
    Rp_engine.Engine.stop e;
    let walks = counter "aiu.full_walks" - walks0 in
    let accesses = counter "aiu.miss_accesses" - acc0 in
    let dcyc = model_cycles () - cycles0 in
    let hz = Cost.cpu_mhz *. 1e6 in
    let mpps =
      if dcyc > 0 then float_of_int total /. (float_of_int dcyc /. hz) /. 1e6
      else 0.0
    in
    let per_walk =
      if walks > 0 then float_of_int accesses /. float_of_int walks else 0.0
    in
    Printf.printf "  %-18s %11d %14d %14.2f %11.4f\n" label walks accesses
      per_walk mpps;
    let set k v =
      Rp_obs.Registry.set
        (Printf.sprintf "bench.fig_coldstart.%s.%s.%s" eng_slug
           (Rp_classifier.Aiu.mode_to_string classifier) k)
        v
    in
    set "full_walks" (float_of_int walks);
    set "cold_accesses_per_walk" per_walk;
    set "model_mpps" mpps;
    Gc.full_major ()
  in
  Printf.printf "  %-18s %11s %14s %14s %11s\n" "engine/mode" "cold_walks"
    "miss_accesses" "cold acc/walk" "model_mpps";
  run ~eng_slug:"inline" ~label:"inline/pergate" ~mode:Rp_engine.Engine.Inline
    ~classifier:`Per_gate;
  run ~eng_slug:"inline" ~label:"inline/compiled"
    ~mode:Rp_engine.Engine.Inline ~classifier:`Compiled;
  run ~eng_slug:"sharded4" ~label:"sharded4/pergate"
    ~mode:(Rp_engine.Engine.Sharded 4) ~classifier:`Per_gate;
  run ~eng_slug:"sharded4" ~label:"sharded4/compiled"
    ~mode:(Rp_engine.Engine.Sharded 4) ~classifier:`Compiled;
  (* Gate-count independence: the same filter table at every gate, 2 vs
     8 gates, one cold start each.  Measured through [classify_key] so
     both modes pay their real resolution path; structures are warmed
     first (lazy BMP builds charge on first use) and the flow cache is
     flushed so the second classify is a guaranteed cold start. *)
  let filters =
    [
      Rp_classifier.Filter.v4 ();
      Rp_classifier.Filter.v4 ~proto:Proto.udp ();
      Rp_classifier.Filter.v4 ~proto:Proto.tcp ();
      Rp_classifier.Filter.v4 ~src:(Prefix.make (Ipaddr.v4 172 16 0 0) 16) ();
      Rp_classifier.Filter.v4
        ~src:(Prefix.make (Ipaddr.v4 172 16 1 0) 24)
        ~proto:Proto.tcp ();
      Rp_classifier.Filter.v4 ~dst:(Prefix.make (Ipaddr.v4 192 94 233 0) 24) ();
      Rp_classifier.Filter.v4
        ~dst:(Prefix.make (Ipaddr.v4 192 94 233 10) 32)
        ~proto:Proto.tcp
        ~dport:(Rp_classifier.Filter.Port 80) ();
      Rp_classifier.Filter.v4
        ~sport:(Rp_classifier.Filter.Port_range (1024, 2048)) ();
      Rp_classifier.Filter.v4
        ~dport:(Rp_classifier.Filter.Port_range (0, 1023)) ();
      Rp_classifier.Filter.v4 ~iface:0 ();
    ]
  in
  let probe =
    Flow_key.make ~src:(Ipaddr.v4 172 16 1 5) ~dst:(Ipaddr.v4 192 94 233 10)
      ~proto:Proto.tcp ~sport:1500 ~dport:80 ~iface:0
  in
  let cold_walk ~classifier ~gates =
    let aiu = Rp_classifier.Aiu.create ~gates () in
    List.iteri
      (fun i f ->
        for g = 0 to gates - 1 do
          Rp_classifier.Aiu.bind aiu ~gate:g f i
        done)
      filters;
    Rp_classifier.Aiu.set_mode aiu classifier;
    ignore (Rp_classifier.Aiu.classify_key aiu probe ~gate:0 ~now:0L);
    Rp_classifier.Aiu.flush_flows aiu;
    let _, a =
      Rp_lpm.Access.measure (fun () ->
          Rp_classifier.Aiu.classify_key aiu probe ~gate:0 ~now:0L)
    in
    a
  in
  Printf.printf
    "\n  identical %d-filter table at every gate, one cold start:\n"
    (List.length filters);
  Printf.printf "  %-10s %10s %10s\n" "mode" "2 gates" "8 gates";
  let micro slug classifier =
    let g2 = cold_walk ~classifier ~gates:2 in
    let g8 = cold_walk ~classifier ~gates:8 in
    Printf.printf "  %-10s %10d %10d\n"
      (Rp_classifier.Aiu.mode_to_string classifier)
      g2 g8;
    Rp_obs.Registry.set
      (Printf.sprintf "bench.fig_coldstart.micro.%s_g2" slug)
      (float_of_int g2);
    Rp_obs.Registry.set
      (Printf.sprintf "bench.fig_coldstart.micro.%s_g8" slug)
      (float_of_int g8)
  in
  micro "pergate" `Per_gate;
  micro "compiled" `Compiled;
  Printf.printf
    "  (ci/check_coldstart.sh gates compiled < per-gate on the macro\n\
    \   runs and compiled g2 == g8 — accesses independent of gates)\n"

(* ---------------------------------------------------------------------- *)
(* fig-session: unified session subsystem — NAT + conntrack + QoS.        *)
(* ---------------------------------------------------------------------- *)

(* Three configurations over identical bidirectional NAT'd UDP
   traffic on the inline engine:

     fix      bare FIX fast path, the session library compiled in but
              no session plugin bound (the Table-3 baseline shape);
     cached   nat / conntrack / nat-out bound with the soft-slot
              session cache on — steady state charges exactly ONE
              session access per packet, and the cached next-hop
              skips the LPM walk;
     nocache  the same plugins with cache=off: every session gate
              pays a full striped-table lookup (the naive feature
              layering this subsystem replaces).

   'accesses/pkt' is the charged memory-access meter (Rp_lpm.Access)
   over the steady phase; cycles come from the deterministic cost
   model, so both figures are byte-stable across runs and machines.
   ci/check_session.sh gates cached <= fix + 1 (the one charged
   session access), zero steady-state table lookups, and cached
   strictly below nocache. *)
let fig_session () =
  section "fig-session: NAT + conntrack + QoS in one flow-table hit";
  let flows = 8 and steady = 4_000 in
  let nat_addr = Ipaddr.v4 198 51 100 7 in
  let fwd_key f =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 (1 + f)) ~dst:(Ipaddr.v4 192 168 1 9)
      ~proto:Proto.udp ~sport:(4000 + f) ~dport:80 ~iface:0
  in
  (* the reply's ingress tuple: addressed to the (address-only) SNAT
     mapping, distinguished per flow by the untouched source port *)
  let rev_key f =
    Flow_key.make ~src:(Ipaddr.v4 192 168 1 9) ~dst:nat_addr ~proto:Proto.udp
      ~sport:80 ~dport:(4000 + f) ~iface:1
  in
  Printf.printf
    "Bidirectional NAT'd UDP, %d flows, %d steady packets after warm-up.\n\n"
    flows steady;
  Printf.printf "  %-10s %14s %14s %12s %14s %14s\n" "config" "accesses/pkt"
    "cycles/pkt" "model_mpps" "tbl lookups" "cached hits";
  let run ~slug ~session =
    let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
    let r = Router.create ~gates:Gate.all ~ifaces () in
    Router.add_route r (Prefix.of_string "10.0.0.0/8") ~iface:0 ();
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    let table =
      match session with
      | None -> None
      | Some cache ->
        let tname = "fig-" ^ slug in
        let t = Rp_session.Session.Table.get tname in
        ignore (Rp_session.Session.Table.flush t);
        Rp_session.Session.Table.add_rule t
          {
            Rp_session.Session.Table.kind = `Snat;
            filter = Rp_classifier.Filter.v4 ();
            addr = nat_addr;
            port = None;
            tos = Some 0x28;
          };
        List.iter
          (fun plugin ->
            let m = Option.get (Rp_control.Plugin_lib.find plugin) in
            ok (Pcu.modload r.Router.pcu m);
            let i =
              ok
                (Pcu.create_instance r.Router.pcu ~plugin
                   [ ("table", tname); ("cache", (if cache then "on" else "off")) ])
            in
            ok
              (Pcu.register_instance r.Router.pcu
                 ~instance:i.Plugin.instance_id
                 (Rp_classifier.Filter.v4 ())))
          [ "nat"; "conntrack"; "nat-out" ];
        Some t
    in
    let e = Rp_engine.Engine.create Rp_engine.Engine.Inline r in
    let sink _ = () in
    let shoot now m =
      ignore (Rp_engine.Engine.submit e ~now m);
      ignore (Rp_engine.Engine.flush e ~f:sink)
    in
    (* warm: create every session and learn both routes *)
    for f = 0 to flows - 1 do
      shoot (Int64.of_int (f * 10)) (Mbuf.synth ~key:(fwd_key f) ~len:512 ());
      shoot (Int64.of_int ((f * 10) + 5)) (Mbuf.synth ~key:(rev_key f) ~len:512 ())
    done;
    let stats0 = Option.map Rp_session.Session.Table.stats table in
    let cycles0 = Cost.get () in
    Rp_lpm.Access.set_enabled true;
    let (), accesses =
      Rp_lpm.Access.measure (fun () ->
          for i = 0 to steady - 1 do
            let f = i mod flows in
            let key = if i land 1 = 0 then fwd_key f else rev_key f in
            shoot (Int64.of_int (1000 + i)) (Mbuf.synth ~key ~len:512 ())
          done)
    in
    let dcyc = Cost.get () - cycles0 in
    Rp_engine.Engine.stop e;
    let per_pkt = float_of_int accesses /. float_of_int steady in
    let cyc_pkt = float_of_int dcyc /. float_of_int steady in
    let hz = Cost.cpu_mhz *. 1e6 in
    let mpps = if dcyc > 0 then hz /. cyc_pkt /. 1e6 else 0.0 in
    let lookups, cached_hits =
      match (stats0, Option.map Rp_session.Session.Table.stats table) with
      | Some s0, Some s1 ->
        ( s1.Rp_session.Session.Table.lookups - s0.Rp_session.Session.Table.lookups,
          s1.Rp_session.Session.Table.cached_hits
          - s0.Rp_session.Session.Table.cached_hits )
      | _ -> (0, 0)
    in
    Printf.printf "  %-10s %14.3f %14.1f %12.4f %14d %14d\n" slug per_pkt
      cyc_pkt mpps lookups cached_hits;
    let set k v =
      Rp_obs.Registry.set (Printf.sprintf "bench.fig_session.%s.%s" slug k) v
    in
    set "steady_accesses_per_pkt" per_pkt;
    set "cycles_per_pkt" cyc_pkt;
    set "model_mpps" mpps;
    (match session with
     | Some _ ->
       set "steady_table_lookups" (float_of_int lookups);
       set "cached_hits_per_pkt" (float_of_int cached_hits /. float_of_int steady)
     | None -> ());
    (match table with
     | Some t -> ignore (Rp_session.Session.Table.flush t)
     | None -> ());
    Gc.full_major ()
  in
  run ~slug:"fix" ~session:None;
  run ~slug:"cached" ~session:(Some true);
  run ~slug:"nocache" ~session:(Some false);
  Printf.printf
    "\n  (ci/check_session.sh gates cached <= fix + 1 access/pkt, zero\n\
    \   steady-state table lookups, and Table-3 byte-identity with the\n\
    \   session subsystem compiled in but unbound)\n"

(* ---------------------------------------------------------------------- *)
(* fig-latency: end-to-end latency SLOs on the model clock.               *)
(* ---------------------------------------------------------------------- *)

(* Ingress→verdict latency from the SLO layer: the inline engine's
   cached 3-gate path (per-packet spans), the sharded engine at 4
   domains with paced submission (one packet in flight, so worker
   batches stay at 1 and spans remain per-packet), exemplar capture
   under an armed threshold, and the Table-3 identity check — the same
   fixed workload charged with stamping on vs off must agree to the
   cycle (the SLO layer only reads the clock).  All latency figures
   are model cycles: byte-stable across runs and machines.
   ci/check_latency.sh gates the p99s, the identity, and at least one
   resolvable exemplar. *)
let fig_latency () =
  section "fig-latency: end-to-end latency SLOs (model cycles)";
  let agg () =
    Rp_obs.Registry.histogram ~bounds:Rp_obs.Slo.latency_bounds
      "slo.latency.cycles"
  in
  (* Earlier sections already pushed packets through the data path;
     start each phase from empty distributions. *)
  let reset_slo () =
    Rp_obs.Histogram.reset (agg ());
    List.iter
      (fun (_, _, h) -> Rp_obs.Histogram.reset h)
      (Rp_obs.Slo.shard_table ());
    Rp_obs.Slo.clear_exemplars ()
  in
  let mk_router () =
    let gates = [ Gate.Ip_options; Gate.Security_in; Gate.Stats ] in
    let ifaces =
      [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:max_int () ]
    in
    let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    List.iter
      (fun (g, n) ->
        ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:g ~name:n));
        let i = ok (Pcu.create_instance r.Router.pcu ~plugin:n []) in
        ok
          (Pcu.register_instance r.Router.pcu ~instance:i.Plugin.instance_id
             (Rp_classifier.Filter.v4 ())))
      [ (Gate.Ip_options, "lat0"); (Gate.Security_in, "lat1");
        (Gate.Stats, "lat2") ];
    r
  in
  let flow_key f =
    Flow_key.make
      ~src:(Ipaddr.v4 10 0 (f lsr 8 land 0xFF) (f land 0xFF))
      ~dst:(Ipaddr.v4 192 168 1 1) ~proto:Proto.udp ~sport:(1000 + f)
      ~dport:9000 ~iface:0
  in
  let process r key =
    let m = Mbuf.synth ~key ~len:1000 () in
    match Ip_core.process r ~now:0L m with
    | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
    | Ip_core.Delivered_local | Ip_core.Absorbed | Ip_core.Dropped _ -> ()
  in
  let quantiles h =
    ( Rp_obs.Histogram.quantile h 0.5,
      Rp_obs.Histogram.quantile h 0.99,
      Rp_obs.Histogram.quantile h 0.999 )
  in
  Rp_obs.Slo.set_stamping true;
  Rp_obs.Slo.set_threshold 0;

  (* Inline: per-packet ingress→verdict spans on the cached path. *)
  reset_slo ();
  let r = mk_router () in
  process r (flow_key 0);
  for _ = 1 to 2000 do
    process r (flow_key 0)
  done;
  let p50, p99, p999 = quantiles (agg ()) in
  Printf.printf "  %-12s %9s %9s %9s %9s\n" "engine" "packets" "p50" "p99"
    "p999";
  Printf.printf "  %-12s %9d %9.0f %9.0f %9.0f\n" "inline"
    (Rp_obs.Histogram.total (agg ()))
    p50 p99 p999;
  Rp_obs.Registry.set "bench.latency.inline.p50" p50;
  Rp_obs.Registry.set "bench.latency.inline.p99" p99;
  Rp_obs.Registry.set "bench.latency.inline.p999" p999;

  (* Exemplars: arm a 1-cycle threshold so every packet breaches, then
     check each retained exemplar resolves to a flow key and a
     per-gate cycle breakdown. *)
  Rp_obs.Slo.set_threshold 1;
  for _ = 1 to 32 do
    process r (flow_key 0)
  done;
  Rp_obs.Slo.set_threshold 0;
  let exemplars = Rp_obs.Slo.exemplars () in
  let resolvable =
    List.filter
      (fun (e : Rp_obs.Slo.exemplar) -> e.key <> "" && e.gates <> [])
      exemplars
  in
  Printf.printf "\n  exemplars captured: %d retained, %d resolvable\n"
    (List.length exemplars) (List.length resolvable);
  (match resolvable with
   | e :: _ -> Printf.printf "    %s\n" (Rp_obs.Slo.exemplar_to_string e)
   | [] -> ());
  Rp_obs.Registry.set "bench.latency.exemplars"
    (float_of_int (List.length resolvable));

  (* Sharded:4 — paced submission (wait for each result) keeps worker
     batches at one packet, so the spans are comparable to inline. *)
  reset_slo ();
  let r = mk_router () in
  let e = Rp_engine.Engine.create (Rp_engine.Engine.Sharded 4) r in
  let flows = 64 and per_flow = 40 in
  for f = 0 to flows - 1 do
    let key = flow_key (256 + f) in
    for _ = 1 to per_flow do
      let m = Mbuf.synth ~key ~len:1000 () in
      while not (Rp_engine.Engine.submit e ~now:0L m) do
        ignore (Rp_engine.Engine.drain e ~f:(fun _ -> ()))
      done;
      let got = ref 0 in
      while !got = 0 do
        got := Rp_engine.Engine.drain e ~f:(fun _ -> ())
      done
    done
  done;
  ignore (Rp_engine.Engine.flush e ~f:(fun _ -> ()));
  Rp_engine.Engine.stop e;
  let shard_rows =
    List.filter
      (fun (_, cls, h) ->
        cls = Rp_obs.Slo.Fwd && Rp_obs.Histogram.total h > 0)
      (Rp_obs.Slo.shard_table ())
  in
  let max_p99 =
    List.fold_left
      (fun acc (shard, _, h) ->
        let p50, p99, p999 = quantiles h in
        Printf.printf "  %-12s %9d %9.0f %9.0f %9.0f\n"
          (Printf.sprintf "shard%d" shard)
          (Rp_obs.Histogram.total h) p50 p99 p999;
        max acc p99)
      0.0 shard_rows
  in
  Rp_obs.Registry.set "bench.latency.sharded4.max_p99" max_p99;
  Rp_obs.Registry.set "bench.latency.sharded4.shards"
    (float_of_int (List.length shard_rows));

  (* Table-3 identity: the same fixed workload, stamping on vs off,
     must charge exactly the same cycles — the SLO layer never touches
     the model. *)
  let t3 stamping =
    Rp_obs.Slo.set_stamping stamping;
    let r = mk_router () in
    let c0 = Cost.get () in
    for _ = 1 to 500 do
      process r (flow_key 7)
    done;
    Cost.get () - c0
  in
  let t3_on = t3 true in
  let t3_off = t3 false in
  Rp_obs.Slo.set_stamping true;
  Printf.printf
    "\n  Table-3 identity: %d cycles stamped, %d unstamped (%s)\n" t3_on
    t3_off
    (if t3_on = t3_off then "identical" else "MISMATCH");
  Rp_obs.Registry.set "bench.latency.t3_on_cycles" (float_of_int t3_on);
  Rp_obs.Registry.set "bench.latency.t3_off_cycles" (float_of_int t3_off)

(* ---------------------------------------------------------------------- *)
(* fig-zipf: million-flow Zipf long-haul soak.                            *)
(* ---------------------------------------------------------------------- *)

(* The "millions of users" scale test (ROADMAP item 4): 10^6 concurrent
   flows across 4 shards, Zipf(0.99) packet popularity over the flow
   ranks, Pareto heavy-tailed per-flow packet budgets so flows retire
   and fresh ones arrive continuously, and periodic idle-window expiry
   passes — recycling, expiry and the probe index all run hot for
   minutes of simulated time.  ci/check_zipf.sh gates the metrics. *)
let fig_zipf () =
  section "fig-zipf: million-flow Zipf long-haul soak (sharded:4)";
  let flows = 1_000_000 in
  let batch = 64 in
  let steady_total = 3_000_000 in
  (* 8 ms of simulated time per batch: the steady phase spans ~375 s
     of router time while staying a few million packets of real work. *)
  let dt_batch = 8_000_000L in
  let idle_sim_ns = 300_000_000_000L in
  (* Keepalive every 2nd packet bounds any live flow's idle gap at
     2 * flows packets = ~250 s sim < idle_sim_ns, so expiry culls
     only retired flows, never the cold-but-live Zipf tail. *)
  let keepalive_every = 2 in
  let pause_every = 4096 (* batches between idle expiry pauses *) in
  Printf.printf
    "Zipf(0.99) popularity over %d flow ranks, Pareto(1.2, 4) per-flow\n\
     packet budgets (flows retire, fresh ones take over the rank),\n\
     one-packet-per-rank seed sweep, then %d steady packets with an\n\
     expiry pass every %d batches (idle threshold %.0f s sim).\n\n"
    flows steady_total pause_every
    (Int64.to_float idle_sim_ns /. 1e9);
  let counter_get name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let acc_p0 = counter_get "flow_table.accounted_packets" in
  let acc_b0 = counter_get "flow_table.accounted_bytes" in
  let exp_p0 = counter_get "flow_export.packets" in
  let exp_b0 = counter_get "flow_export.bytes" in
  let gates = [ Gate.Ip_options; Gate.Firewall; Gate.Stats ] in
  let ifaces =
    [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:max_int () ]
  in
  let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  List.iteri
    (fun i gate ->
      let name = Printf.sprintf "zipf-empty-%d" i in
      ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate ~name));
      let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
      ok
        (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
           (Rp_classifier.Filter.v4 ~proto:Proto.udp ())))
    gates;
  let e = Rp_engine.Engine.create (Rp_engine.Engine.Sharded 4) r in
  let pool = Pool.create ~capacity:8192 () in
  let link = Link.create ~capacity:1024 () in
  let synth =
    Rp_sim.Synth.create ~flows ~pool ~popularity:(Rp_sim.Synth.Zipf 0.99)
      ~flow_packets:(Rp_sim.Synth.Pareto (1.2, 4.0))
      ~sweep:true ~keepalive_every ()
  in
  let scratch =
    Array.make batch
      (Mbuf.synth ~key:(Rp_sim.Traffic.flow_key ~id:0 ()) ~len:0 ())
  in
  let drained = ref 0 in
  let recycle (res : Rp_engine.Shard.result) =
    Pool.free pool res.Rp_engine.Shard.m;
    incr drained
  in
  let now = ref 0L in
  let pump ~upto =
    (* One pump iteration: refill the link, push one batch into the
       engine (retrying ring-full shards against a drain), collect
       results.  Returns packets submitted. *)
    ignore (Rp_sim.Synth.pull synth ~now_ns:!now link ~max:(2 * batch));
    let n = Link.receive_batch link ~max:(min batch upto) scratch in
    for i = 0 to n - 1 do
      while not (Rp_engine.Engine.submit e ~now:!now scratch.(i)) do
        ignore (Rp_engine.Engine.drain e ~f:recycle)
      done
    done;
    ignore (Rp_engine.Engine.drain e ~f:recycle);
    n
  in
  let flow_total () =
    let s = ref 0 in
    for i = 0 to 3 do
      s := !s + Rp_engine.Engine.shard_flow_count e i
    done;
    !s
  in
  (* Phase 1 — seed sweep: one packet per rank, flow-setup latency
     stamped into the PR 9 SLO histograms (every packet is a miss). *)
  Rp_obs.Histogram.reset
    (Rp_obs.Registry.histogram ~bounds:Rp_obs.Slo.latency_bounds
       "slo.latency.cycles");
  List.iter
    (fun (_, _, h) -> Rp_obs.Histogram.reset h)
    (Rp_obs.Slo.shard_table ());
  Rp_obs.Slo.clear_exemplars ();
  Rp_obs.Slo.set_stamping true;
  Rp_obs.Slo.set_threshold 0;
  let t_sweep0 = Unix.gettimeofday () in
  let submitted = ref 0 in
  while !submitted < flows do
    submitted := !submitted + pump ~upto:(flows - !submitted)
  done;
  ignore (Rp_engine.Engine.flush e ~f:recycle);
  Rp_obs.Slo.set_stamping false;
  let p99_setup =
    List.fold_left
      (fun acc (_, cls, h) ->
        if cls = Rp_obs.Slo.Fwd && Rp_obs.Histogram.total h > 0 then
          max acc (Rp_obs.Histogram.quantile h 0.99)
        else acc)
      0.0
      (Rp_obs.Slo.shard_table ())
  in
  let high_water = flow_total () in
  Printf.printf
    "  sweep: %d flows seeded in %.1f s wall, %d concurrent, p99 \
     flow-setup %.0f cycles\n"
    flows
    (Unix.gettimeofday () -. t_sweep0)
    high_water p99_setup;
  (* Phase 2 — steady churn: Zipf + keepalive traffic with the sim
     clock advancing, pausing every [pause_every] batches to sample
     concurrency and run an idle-window expiry pass. *)
  let cycles0 =
    let mx = ref 0 in
    for i = 0 to 3 do
      mx := max !mx (Rp_engine.Engine.shard_cycles e i)
    done;
    !mx
  in
  let t_steady0 = Unix.gettimeofday () in
  let steady_sent = ref 0 in
  let batches = ref 0 in
  let min_sustained = ref high_water in
  let expired = ref 0 in
  while !steady_sent < steady_total do
    now := Int64.add !now dt_batch;
    steady_sent := !steady_sent + pump ~upto:(steady_total - !steady_sent);
    incr batches;
    if !batches mod pause_every = 0 then begin
      ignore (Rp_engine.Engine.flush e ~f:recycle);
      let live = flow_total () in
      if live < !min_sustained then min_sustained := live;
      expired := !expired + Rp_engine.Engine.expire_flows e ~now:!now
                              ~idle_ns:idle_sim_ns
    end
  done;
  ignore (Rp_engine.Engine.flush e ~f:recycle);
  let live_end = flow_total () in
  if live_end < !min_sustained then min_sustained := live_end;
  expired := !expired + Rp_engine.Engine.expire_flows e ~now:!now
                          ~idle_ns:idle_sim_ns;
  let cycles1 =
    let mx = ref 0 in
    for i = 0 to 3 do
      mx := max !mx (Rp_engine.Engine.shard_cycles e i)
    done;
    !mx
  in
  let chain_max =
    let mx = ref 0 in
    for i = 0 to 3 do
      mx := max !mx (Rp_engine.Engine.shard_flow_stats e i).Rp_classifier
              .Flow_table.chain_max
    done;
    !mx
  in
  let hz = Cost.cpu_mhz *. 1e6 in
  let steady_mpps =
    let dcyc = cycles1 - cycles0 in
    if dcyc > 0 then
      float_of_int !steady_sent /. (float_of_int dcyc /. hz) /. 1e6
    else 0.0
  in
  let sim_seconds = Int64.to_float !now /. 1e9 in
  Printf.printf
    "  steady: %d packets over %.0f s sim (%.1f s wall), %.4f model \
     mpps/domain\n\
    \  arrivals=%d expired=%d min_sustained=%d probe chain_max=%d\n"
    !steady_sent sim_seconds
    (Unix.gettimeofday () -. t_steady0)
    steady_mpps
    (Rp_sim.Synth.arrivals synth)
    !expired !min_sustained chain_max;
  (* Wind down: the pump pulls up to [2 * batch] packets per iteration
     but submits at most [batch], so a link's worth of generated
     packets can still be queued when the steady loop exits — feed
     them through before reconciling, else they read as lost. *)
  let rec drain_link () =
    let n = Link.receive_batch link ~max:batch scratch in
    if n > 0 then begin
      for i = 0 to n - 1 do
        while not (Rp_engine.Engine.submit e ~now:!now scratch.(i)) do
          ignore (Rp_engine.Engine.drain e ~f:recycle)
        done
      done;
      ignore (Rp_engine.Engine.drain e ~f:recycle);
      drain_link ()
    end
  in
  drain_link ();
  ignore (Rp_engine.Engine.flush e ~f:recycle);
  (* Export every remaining record, then reconcile the export-side
     packet/byte counters against the accounting-side ones — exact
     equality means every accounted packet left the table in exactly
     one flow record. *)
  Rp_engine.Engine.stop e;
  Rp_engine.Engine.flush_flows e;
  let recon_packets =
    counter_get "flow_table.accounted_packets" - acc_p0
    - (counter_get "flow_export.packets" - exp_p0)
  in
  let recon_bytes =
    counter_get "flow_table.accounted_bytes" - acc_b0
    - (counter_get "flow_export.bytes" - exp_b0)
  in
  let lost = Rp_sim.Synth.generated synth - !drained in
  Printf.printf
    "  reconcile: accounted-vs-exported packets %+d bytes %+d, \
     generated-vs-drained %+d\n"
    recon_packets recon_bytes lost;
  (* Phase 3 — insert storm against a bounded table: a max_records
     table under key pressure must degrade by recycling its oldest
     records, never by failing or growing past the bound. *)
  let storm_cap = 65_536 in
  let aiu =
    Rp_classifier.Aiu.create ~initial_records:1024 ~max_records:storm_cap
      ~gates:1 ()
  in
  Rp_classifier.Aiu.bind aiu ~gate:0 (Rp_classifier.Filter.v4 ()) ();
  for id = 0 to (2 * storm_cap) - 1 do
    ignore
      (Rp_classifier.Aiu.classify_key aiu
         (Rp_sim.Traffic.flow_key ~id ())
         ~gate:0 ~now:0L)
  done;
  let ft = Rp_classifier.Aiu.flow_table aiu in
  let storm_stats = Rp_classifier.Flow_table.stats ft in
  Printf.printf
    "  storm: %d inserts into a %d-record table -> capacity %d, \
     recycled %d\n"
    (2 * storm_cap) storm_cap
    (Rp_classifier.Flow_table.capacity ft)
    storm_stats.Rp_classifier.Flow_table.recycled;
  let m k v = Rp_obs.Registry.set (Printf.sprintf "bench.fig_zipf.%s" k) v in
  m "flows" (float_of_int flows);
  m "high_water_flows" (float_of_int high_water);
  m "min_sustained_flows" (float_of_int !min_sustained);
  m "sim_seconds" sim_seconds;
  m "arrivals" (float_of_int (Rp_sim.Synth.arrivals synth));
  m "expired" (float_of_int !expired);
  m "steady_mpps" steady_mpps;
  m "chain_max" (float_of_int chain_max);
  m "p99_setup_cycles" p99_setup;
  m "recon_packets" (float_of_int recon_packets);
  m "recon_bytes" (float_of_int recon_bytes);
  m "lost_packets" (float_of_int lost);
  m "storm.capacity" (float_of_int (Rp_classifier.Flow_table.capacity ft));
  m "storm.recycled"
    (float_of_int storm_stats.Rp_classifier.Flow_table.recycled)

(* ---------------------------------------------------------------------- *)

let sections =
  [
    ("table2", table2);
    ("table3", table3);
    ("fig-classifier", fig_classifier);
    ("fig-flowtable", fig_flowtable);
    ("fig-drr", fig_drr);
    ("fig-hfsc", fig_hfsc);
    ("fig-gates", fig_gates);
    ("fig-cache", fig_cache);
    ("fig-l4", fig_l4);
    ("fig-collapse", fig_collapse);
    ("fig-grid", fig_grid);
    ("fig-shard", fig_shard);
    ("fig-trace", fig_trace);
    ("fig-churn", fig_churn);
    ("fig-batch", fig_batch);
    ("fig-coldstart", fig_coldstart);
    ("fig-session", fig_session);
    ("fig-latency", fig_latency);
    ("fig-zipf", fig_zipf);
    ("micro", micro);
  ]

let () =
  (* [--metrics-out FILE] and [--trace-sample N] may appear anywhere
     among the section names: the former dumps the metric registry
     (bench gauges included) as JSON at the end of the run; the latter
     runs the sections with hot-path tracing on, sampling 1-in-N — the
     trace-overhead CI gate compares a traced table3 run against an
     untraced one with it. *)
  let rec split_args acc metrics trace = function
    | [] -> (List.rev acc, metrics, trace)
    | "--metrics-out" :: path :: rest -> split_args acc (Some path) trace rest
    | "--csv-out" :: path :: rest ->
      csv_out := Some path;
      split_args acc metrics trace rest
    | "--trace-sample" :: n :: rest ->
      split_args acc metrics (int_of_string_opt n) rest
    | x :: rest -> split_args (x :: acc) metrics trace rest
  in
  let names, metrics_out, trace_sample =
    split_args [] None None (List.tl (Array.to_list Sys.argv))
  in
  (match trace_sample with
   | Some n when n >= 1 ->
     Rp_obs.Telemetry.enable ~every:n;
     Printf.printf "(tracing on, sampling 1-in-%d)\n" n
   | Some _ ->
     prerr_endline "--trace-sample: expected a positive sampling period";
     exit 2
   | None -> ());
  let requested =
    match names with [] -> List.map fst sections | names -> names
  in
  Printf.printf
    "Router Plugins benchmark harness — reproducing the evaluation of\n\
     Decasper, Dittia, Parulkar & Plattner, SIGCOMM '98.\n\
     Cost model: %d-cycle best-effort base path, %d cycles/memory\n\
     access (60 ns @ %.0f MHz).  See EXPERIMENTS.md.\n"
    Cost.base_forward Cost.mem_access Cost.cpu_mhz;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
        f ();
        Gc.full_major ()
      | None ->
        Printf.printf "unknown section %S; available: %s\n" name
          (String.concat ", " (List.map fst sections)))
    requested;
  match metrics_out with
  | Some path ->
    Rp_obs.Registry.write_json path;
    Printf.printf "\nmetrics written to %s\n" path
  | None -> ()
