(* fault_soak — the fault-isolation soak scenario run by CI.

   Drives a single-router scenario with the deterministic
   fault-injection plugin bound to all IPv4 traffic, in two phases:

   1. a plugin that raises on every packet: the router must survive
      the whole run, auto-quarantine the instance after the
      consecutive-fault threshold, and keep forwarding the remaining
      traffic on the gate's default path;
   2. a plugin that burns cycles past the router's per-invocation
      budget: same containment, same quarantine.

   Exits 0 only if every assertion holds — "zero crashes and a clean
   quarantine". *)

open Rp_core

let failures = ref 0

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let check label ok =
  if ok then Printf.printf "ok   %s\n" label
  else begin
    Printf.printf "FAIL %s\n" label;
    incr failures
  end

let run_phase ~label ~fault_config ?cycle_budget () =
  Printf.printf "== %s ==\n" label;
  Rp_obs.Registry.reset ();
  let s = Rp_sim.Scenario.single_router () in
  let router = s.Rp_sim.Scenario.router in
  (match cycle_budget with
   | Some b -> router.Router.cycle_budget <- Some b
   | None -> ());
  let script =
    String.concat "\n"
      [ "modload fault-firewall";
        "create fault-firewall " ^ fault_config;
        "bind 1 <*, *, UDP, *, *, *>" ]
  in
  (match Rp_control.Pmgr.exec_script router script with
   | Ok _ -> ()
   | Error e ->
     Printf.printf "FAIL setup: %s\n" e;
     incr failures);
  Rp_sim.Scenario.table3_workload s ();
  (* The soak itself: any exception escaping [process] ends the run. *)
  (match Rp_sim.Scenario.run s ~seconds:2.0 with
   | () -> check (label ^ ": simulation completed without a crash") true
   | exception e ->
     check
       (Printf.sprintf "%s: simulation crashed: %s" label
          (Printexc.to_string e))
       false);
  let faults = Rp_obs.Counter.get (Gate.faults Gate.Firewall) in
  let threshold = Pcu.quarantine_threshold router.Router.pcu in
  check
    (Printf.sprintf "%s: faults contained and counted (%d)" label faults)
    (faults >= threshold);
  check
    (Printf.sprintf "%s: faults stopped at the quarantine threshold (%d)"
       label threshold)
    (faults = threshold);
  check (label ^ ": instance auto-quarantined")
    (Pcu.is_quarantined router.Router.pcu 1);
  let delivered = Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink in
  check
    (Printf.sprintf "%s: traffic degraded to the default path (%d delivered)"
       label delivered)
    (delivered > 0);
  (* The quarantine is visible and reversible from the control plane. *)
  (match Rp_control.Pmgr.exec router "faults show" with
   | Ok out ->
     check (label ^ ": faults show reports the quarantine")
       (contains ~needle:"QUARANTINED" out)
   | Error e ->
     Printf.printf "FAIL %s: faults show: %s\n" label e;
     incr failures);
  match Rp_control.Pmgr.exec router "plugin restore 1" with
  | Ok _ ->
    check (label ^ ": restore succeeds")
      (not (Pcu.is_quarantined router.Router.pcu 1))
  | Error e ->
    Printf.printf "FAIL %s: restore: %s\n" label e;
    incr failures

let () =
  run_phase ~label:"raise on every packet" ~fault_config:"mode=raise every=1"
    ();
  run_phase ~label:"cycle-budget burn" ~fault_config:"mode=burn every=1"
    ~cycle_budget:50_000 ();
  if !failures = 0 then print_endline "fault soak: all checks passed"
  else begin
    Printf.printf "fault soak: %d check(s) failed\n" !failures;
    exit 1
  end
