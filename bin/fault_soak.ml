(* fault_soak — the fault-isolation soak scenario run by CI.

   Drives a single-router scenario with the deterministic
   fault-injection plugin bound to all IPv4 traffic, in two phases:

   1. a plugin that raises on every packet: the router must survive
      the whole run, auto-quarantine the instance after the
      consecutive-fault threshold, and keep forwarding the remaining
      traffic on the gate's default path;
   2. a plugin that burns cycles past the router's per-invocation
      budget: same containment, same quarantine.

   A third, telemetry phase runs clean traffic with sampled tracing on
   and asserts the NetFlow-style flow records reconcile exactly with
   the gate dispatch and flow-accounting counters, writing the trace
   and flow log out for CI to archive.  With [--engine sharded N] all
   phases also run through the multicore engine.

   Exits 0 only if every assertion holds — "zero crashes and a clean
   quarantine". *)

open Rp_core

let failures = ref 0

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let check label ok =
  if ok then Printf.printf "ok   %s\n" label
  else begin
    Printf.printf "FAIL %s\n" label;
    incr failures
  end

(* Drop conservation under the unified taxonomy: every Dropped verdict
   lands under exactly one drops.by_reason.* counter, so the verdict
   reasons must sum to the engines' dropped counters ([shards] = 0 for
   the inline phases), the family total must equal the sum over all
   reasons, and engine backpressure must be attributed to its reason.
   (Registry.reset at phase start zeroes every counter, so these are
   absolute comparisons within the phase.) *)
let check_drop_conservation ~label ~shards () =
  let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let sum reasons =
    List.fold_left (fun acc r -> acc + Rp_obs.Drop_reason.get r) 0 reasons
  in
  let verdict_drops = sum Rp_obs.Drop_reason.verdict_reasons in
  let engine_drops =
    let n = ref (counter "ip_core.dropped") in
    for i = 0 to shards - 1 do
      n := !n + counter (Printf.sprintf "engine.shard%d.dropped" i)
    done;
    !n
  in
  check
    (Printf.sprintf
       "%s: verdict drop reasons (%d) reconcile with engine drops (%d)" label
       verdict_drops engine_drops)
    (verdict_drops = engine_drops);
  check
    (Printf.sprintf "%s: drops.total (%d) = sum over reasons" label
       (Rp_obs.Drop_reason.total ()))
    (Rp_obs.Drop_reason.total () = sum Rp_obs.Drop_reason.all);
  check (label ^ ": backpressure drops attributed to their reason")
    (Rp_obs.Drop_reason.get Rp_obs.Drop_reason.Backpressure
     = counter "engine.backpressure_drops")

let run_phase ~label ~fault_config ?cycle_budget () =
  Printf.printf "== %s ==\n" label;
  Rp_obs.Registry.reset ();
  let s = Rp_sim.Scenario.single_router () in
  let router = s.Rp_sim.Scenario.router in
  (match cycle_budget with
   | Some b -> router.Router.cycle_budget <- Some b
   | None -> ());
  let script =
    String.concat "\n"
      [ "modload fault-firewall";
        "create fault-firewall " ^ fault_config;
        "bind 1 <*, *, UDP, *, *, *>" ]
  in
  (match Rp_control.Pmgr.exec_script router script with
   | Ok _ -> ()
   | Error e ->
     Printf.printf "FAIL setup: %s\n" e;
     incr failures);
  Rp_sim.Scenario.table3_workload s ();
  (* The soak itself: any exception escaping [process] ends the run. *)
  (match Rp_sim.Scenario.run s ~seconds:2.0 with
   | () -> check (label ^ ": simulation completed without a crash") true
   | exception e ->
     check
       (Printf.sprintf "%s: simulation crashed: %s" label
          (Printexc.to_string e))
       false);
  let faults = Rp_obs.Counter.get (Gate.faults Gate.Firewall) in
  let threshold = Pcu.quarantine_threshold router.Router.pcu in
  check
    (Printf.sprintf "%s: faults contained and counted (%d)" label faults)
    (faults >= threshold);
  check
    (Printf.sprintf "%s: faults stopped at the quarantine threshold (%d)"
       label threshold)
    (faults = threshold);
  check (label ^ ": instance auto-quarantined")
    (Pcu.is_quarantined router.Router.pcu 1);
  let delivered = Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink in
  check
    (Printf.sprintf "%s: traffic degraded to the default path (%d delivered)"
       label delivered)
    (delivered > 0);
  check_drop_conservation ~label ~shards:0 ();
  (* The quarantine is visible and reversible from the control plane. *)
  (match Rp_control.Pmgr.exec router "faults show" with
   | Ok out ->
     check (label ^ ": faults show reports the quarantine")
       (contains ~needle:"QUARANTINED" out)
   | Error e ->
     Printf.printf "FAIL %s: faults show: %s\n" label e;
     incr failures);
  match Rp_control.Pmgr.exec router "plugin restore 1" with
  | Ok _ ->
    check (label ^ ": restore succeeds")
      (not (Pcu.is_quarantined router.Router.pcu 1))
  | Error e ->
    Printf.printf "FAIL %s: restore: %s\n" label e;
    incr failures

(* Sharded soak: same fault plugin, but the traffic runs through the
   multicore engine.  Faults are contained on worker domains and
   attributed on drain; under concurrency more than [threshold] faults
   may land before every shard observes the quarantine snapshot, so
   the count is checked as a lower bound (the inline phases above keep
   the exact-equality check).  Also asserts the engine's counters are
   internally consistent and that no flow is cached off its owning
   shard. *)
let run_sharded_phase ~label ~shards ~fault_config ?cycle_budget () =
  let open Rp_engine in
  Printf.printf "== %s (sharded %d) ==\n" label shards;
  Rp_obs.Registry.reset ();
  let s = Rp_sim.Scenario.single_router () in
  let router = s.Rp_sim.Scenario.router in
  (match cycle_budget with
   | Some b -> router.Router.cycle_budget <- Some b
   | None -> ());
  let script =
    String.concat "\n"
      [ "modload fault-firewall";
        "create fault-firewall " ^ fault_config;
        "bind 1 <*, *, UDP, *, *, *>" ]
  in
  (match Rp_control.Pmgr.exec_script router script with
   | Ok _ -> ()
   | Error e ->
     Printf.printf "FAIL setup: %s\n" e;
     incr failures);
  let e = Engine.create (Engine.Sharded shards) router in
  let forwarded = ref 0 and dropped = ref 0 in
  let record (res : Rp_engine.Shard.result) =
    match res.Shard.outcome with
    | Shard.Forwarded _ -> incr forwarded
    | Shard.Dropped _ -> incr dropped
    | Shard.Absorbed -> ()
  in
  let accepted = ref 0 in
  let pump flows per_flow =
    for f = 0 to flows - 1 do
      for _ = 1 to per_flow do
        let key = Rp_sim.Scenario.sink_key ~id:(1000 + f) () in
        let m = Rp_pkt.Mbuf.synth ~key ~len:1000 () in
        while not (Engine.submit e ~now:0L m) do
          ignore (Engine.drain e ~f:record)
        done;
        incr accepted
      done
    done;
    ignore (Engine.flush e ~f:record)
  in
  (match pump 32 50 with
   | () -> check (label ^ ": sharded soak completed without a crash") true
   | exception ex ->
     check
       (Printf.sprintf "%s: sharded soak crashed: %s" label
          (Printexc.to_string ex))
       false);
  let faults = Rp_obs.Counter.get (Gate.faults Gate.Firewall) in
  let threshold = Pcu.quarantine_threshold router.Router.pcu in
  check
    (Printf.sprintf "%s: faults contained and counted (%d >= %d)" label faults
       threshold)
    (faults >= threshold);
  check (label ^ ": instance auto-quarantined from the drain path")
    (Pcu.is_quarantined router.Router.pcu 1);
  (* After every shard has synced past the quarantine, traffic must
     forward on the default path. *)
  let spins = ref 0 in
  while (not (Engine.synced e)) && !spins < 100_000_000 do
    incr spins;
    Domain.cpu_relax ()
  done;
  check (label ^ ": shards synced to the quarantine snapshot")
    (Engine.synced e);
  let fwd_before = !forwarded in
  pump 32 10;
  check
    (Printf.sprintf "%s: traffic degraded to the default path (%d forwarded)"
       label (!forwarded - fwd_before))
    (!forwarded - fwd_before = 320);
  (* Counter consistency: nothing lost, nothing double-counted. *)
  let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let rx_sum = ref 0 in
  for i = 0 to shards - 1 do
    rx_sum := !rx_sum + counter (Printf.sprintf "engine.shard%d.rx" i)
  done;
  check
    (Printf.sprintf "%s: sum of shard rx (%d) = accepted submissions (%d)"
       label !rx_sum !accepted)
    (!rx_sum = !accepted);
  check
    (Printf.sprintf "%s: drained results (%d) = dispatched packets" label
       (!forwarded + !dropped))
    (!forwarded + !dropped = !accepted);
  check
    (Printf.sprintf "%s: submitted counter agrees (%d)" label
       (counter "engine.submitted"))
    (counter "engine.submitted" = !accepted);
  check_drop_conservation ~label ~shards ();
  (* No cross-shard flow-state access: every cached flow key hashes to
     the shard caching it. *)
  let misplaced = ref 0 in
  for i = 0 to shards - 1 do
    List.iter
      (fun key ->
        if Rp_pkt.Flow_key.hash key land max_int mod shards <> i then
          incr misplaced)
      (Engine.shard_flow_keys e i)
  done;
  check (label ^ ": no flow cached off its owning shard") (!misplaced = 0);
  (match Rp_control.Pmgr.exec router "engine stats" with
   | Ok out ->
     check (label ^ ": pmgr engine stats reports the engine")
       (contains ~needle:"mode=sharded" out)
   | Error e ->
     Printf.printf "FAIL %s: engine stats: %s\n" label e;
     incr failures);
  (match Rp_control.Pmgr.exec router "plugin restore 1" with
   | Ok _ ->
     check (label ^ ": restore succeeds")
       (not (Pcu.is_quarantined router.Router.pcu 1))
   | Error e ->
     Printf.printf "FAIL %s: restore: %s\n" label e;
     incr failures);
  Engine.stop e

(* Churn regression: a quarantine's unbinds must travel the snapshot
   delta log — every shard replays them on its private classifier
   without recompiling — and once the shards have synced, the
   quarantined instance must never be dispatched again: the gate's
   fault counter has to stay exactly where the quarantine left it. *)
let run_sharded_churn_phase ~shards () =
  let open Rp_engine in
  let label = "post-quarantine silence" in
  Printf.printf "== %s (sharded %d) ==\n" label shards;
  Rp_obs.Registry.reset ();
  let s = Rp_sim.Scenario.single_router () in
  let router = s.Rp_sim.Scenario.router in
  let script =
    String.concat "\n"
      [ "modload fault-firewall";
        "create fault-firewall mode=raise every=1";
        "bind 1 <*, *, UDP, *, *, *>" ]
  in
  (match Rp_control.Pmgr.exec_script router script with
   | Ok _ -> ()
   | Error e ->
     Printf.printf "FAIL setup: %s\n" e;
     incr failures);
  let e = Engine.create (Engine.Sharded shards) router in
  let record (_ : Shard.result) = () in
  let pump flows per_flow base =
    for f = 0 to flows - 1 do
      for _ = 1 to per_flow do
        let key = Rp_sim.Scenario.sink_key ~id:(base + f) () in
        let m = Rp_pkt.Mbuf.synth ~key ~len:1000 () in
        while not (Engine.submit e ~now:0L m) do
          ignore (Engine.drain e ~f:record)
        done
      done
    done;
    ignore (Engine.flush e ~f:record)
  in
  pump 32 50 3000;
  check (label ^ ": instance auto-quarantined")
    (Pcu.is_quarantined router.Router.pcu 1);
  let spins = ref 0 in
  while (not (Engine.synced e)) && !spins < 100_000_000 do
    incr spins;
    Domain.cpu_relax ()
  done;
  check (label ^ ": shards synced to the quarantine snapshot")
    (Engine.synced e);
  let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let flushes = ref 0 and deltas = ref 0 in
  for i = 0 to shards - 1 do
    flushes := !flushes + counter (Printf.sprintf "engine.shard%d.flow_flushes" i);
    deltas := !deltas + counter (Printf.sprintf "engine.shard%d.delta_applies" i)
  done;
  check
    (Printf.sprintf
       "%s: quarantine unbind replayed as deltas on every shard (%d)" label
       !deltas)
    (!deltas >= shards);
  check (label ^ ": no shard recompiled (flow caches kept)") (!flushes = 0);
  let faults_at_q = Rp_obs.Counter.get (Gate.faults Gate.Firewall) in
  pump 32 10 5000;
  let faults_after = Rp_obs.Counter.get (Gate.faults Gate.Firewall) in
  check
    (Printf.sprintf "%s: zero post-quarantine dispatches (%d = %d)" label
       faults_after faults_at_q)
    (faults_after = faults_at_q);
  Engine.stop e

(* --- telemetry phases ----------------------------------------------- *)

(* Every packet of every flow must be accounted exactly once: the sum
   of exported NetFlow-style record packet/byte totals has to equal
   both the flow table's always-on accounting counters and the
   dispatch count of the first gate on the path (each packet enters
   ip-options exactly once).  Tracing runs sampled (1-in-4) on top to
   exercise the event rings; the trace and flow log are written out
   for the CI soak job to upload as artifacts. *)

let trace_file = "soak-trace.json"
let flow_log_file = "soak-flows.log"

let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name)

let write_flow_log records =
  let oc = open_out flow_log_file in
  List.iter
    (fun r ->
      output_string oc (Rp_obs.Flowlog.to_json_line r);
      output_char oc '\n')
    records;
  close_out oc

let gate_name g =
  match Gate.of_int g with Some g -> Gate.name g | None -> string_of_int g

let reconcile ~label ~dispatch records =
  let pkts = List.fold_left (fun a (r : Rp_obs.Flowlog.record) -> a + r.packets) 0 records in
  let bytes = List.fold_left (fun a (r : Rp_obs.Flowlog.record) -> a + r.bytes) 0 records in
  let acc_pkts = counter "flow_table.accounted_packets" in
  let acc_bytes = counter "flow_table.accounted_bytes" in
  check
    (Printf.sprintf "%s: flow-record packets (%d) = accounted packets (%d)"
       label pkts acc_pkts)
    (pkts = acc_pkts);
  check
    (Printf.sprintf "%s: flow-record bytes (%d) = accounted bytes (%d)" label
       bytes acc_bytes)
    (bytes = acc_bytes);
  check
    (Printf.sprintf "%s: flow-record packets (%d) = ip-options dispatches (%d)"
       label pkts dispatch)
    (pkts = dispatch)

let run_telemetry_phase () =
  let label = "telemetry reconcile" in
  Printf.printf "== %s ==\n" label;
  Rp_obs.Registry.reset ();
  Rp_obs.Flowlog.clear ();
  Rp_obs.Telemetry.enable ~every:4;
  let s = Rp_sim.Scenario.single_router () in
  let router = s.Rp_sim.Scenario.router in
  Rp_sim.Scenario.table3_workload s ();
  (match Rp_sim.Scenario.run s ~seconds:2.0 with
   | () -> check (label ^ ": simulation completed without a crash") true
   | exception e ->
     check
       (Printf.sprintf "%s: simulation crashed: %s" label
          (Printexc.to_string e))
       false);
  Rp_obs.Telemetry.disable ();
  (* Export the still-live flow-cache entries so the log is complete. *)
  Rp_classifier.Aiu.flush_flows (Router.aiu router);
  let records = Rp_obs.Flowlog.drain () in
  check
    (Printf.sprintf "%s: flow records exported (%d)" label
       (List.length records))
    (records <> []);
  reconcile ~label ~dispatch:(counter "gate.ip-options.dispatch") records;
  check
    (Printf.sprintf "%s: events recorded (%d)" label
       (Rp_obs.Telemetry.recorded ()))
    (Rp_obs.Telemetry.recorded () > 0);
  Rp_obs.Telemetry.write_chrome_json ~gate_name ~mhz:Cost.cpu_mhz trace_file;
  write_flow_log records;
  Printf.printf "     (wrote %s, %s)\n" trace_file flow_log_file

let run_sharded_telemetry_phase ~shards () =
  let open Rp_engine in
  let label = "telemetry reconcile" in
  Printf.printf "== %s (sharded %d) ==\n" label shards;
  Rp_obs.Registry.reset ();
  Rp_obs.Flowlog.clear ();
  Rp_obs.Telemetry.enable ~every:4;
  let s = Rp_sim.Scenario.single_router () in
  let router = s.Rp_sim.Scenario.router in
  let e = Engine.create (Engine.Sharded shards) router in
  let drained = ref 0 in
  let record (_ : Shard.result) = incr drained in
  (match
     for f = 0 to 31 do
       for _ = 1 to 50 do
         let key = Rp_sim.Scenario.sink_key ~id:(2000 + f) () in
         let m = Rp_pkt.Mbuf.synth ~key ~len:1000 () in
         while not (Engine.submit e ~now:0L m) do
           ignore (Engine.drain e ~f:record)
         done
       done
     done;
     ignore (Engine.flush e ~f:record)
   with
   | () -> check (label ^ ": sharded soak completed without a crash") true
   | exception ex ->
     check
       (Printf.sprintf "%s: sharded soak crashed: %s" label
          (Printexc.to_string ex))
       false);
  Rp_obs.Telemetry.disable ();
  Engine.stop e;
  (* Workers joined: flushing the domain-private shard flow caches is
     now safe, and exports every still-live record. *)
  Engine.flush_flows e;
  let records = Rp_obs.Flowlog.drain () in
  check
    (Printf.sprintf "%s: flow records exported (%d)" label
       (List.length records))
    (records <> []);
  let dispatch = ref 0 in
  for i = 0 to shards - 1 do
    dispatch :=
      !dispatch + counter (Printf.sprintf "engine.shard%d.gate.ip-options.dispatch" i)
  done;
  reconcile ~label ~dispatch:!dispatch records;
  check
    (Printf.sprintf "%s: events recorded across worker rings (%d)" label
       (Rp_obs.Telemetry.recorded ()))
    (Rp_obs.Telemetry.recorded () > 0);
  Rp_obs.Telemetry.write_chrome_json ~gate_name ~mhz:Cost.cpu_mhz trace_file;
  write_flow_log records;
  Printf.printf "     (wrote %s, %s)\n" trace_file flow_log_file

(* Plain argv parsing: [--engine sharded N] or [--engine sharded:N]
   adds the multicore phases; the default run is unchanged. *)
let sharded_domains () =
  let argv = Array.to_list Sys.argv in
  let rec find = function
    | "--engine" :: "sharded" :: n :: _ -> int_of_string_opt n
    | "--engine" :: spec :: _ -> (
        match Rp_engine.Engine.mode_of_string spec with
        | Ok (Rp_engine.Engine.Sharded n) -> Some n
        | Ok Rp_engine.Engine.Inline | Error _ -> None)
    | _ :: rest -> find rest
    | [] -> None
  in
  find argv

let () =
  run_phase ~label:"raise on every packet" ~fault_config:"mode=raise every=1"
    ();
  run_phase ~label:"cycle-budget burn" ~fault_config:"mode=burn every=1"
    ~cycle_budget:50_000 ();
  run_telemetry_phase ();
  (match sharded_domains () with
   | Some n ->
     run_sharded_phase ~label:"raise on every packet" ~shards:n
       ~fault_config:"mode=raise every=1" ();
     run_sharded_phase ~label:"cycle-budget burn" ~shards:n
       ~fault_config:"mode=burn every=1" ~cycle_budget:50_000 ();
     run_sharded_churn_phase ~shards:n ();
     run_sharded_telemetry_phase ~shards:n ()
   | None -> ());
  if !failures = 0 then print_endline "fault soak: all checks passed"
  else begin
    Printf.printf "fault soak: %d check(s) failed\n" !failures;
    exit 1
  end
