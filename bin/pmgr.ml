(* pmgr — the Plugin Manager command-line utility (paper, section 3.1).

   Drives a demonstration router instance: commands come from the
   command line, a script file, or an interactive prompt.  This is the
   user-space side of the control path; the same command language is
   scriptable against any router embedded through the library (see
   Rp_control.Pmgr). *)

open Cmdliner

let make_router ifaces =
  let ifc = List.init ifaces (fun id -> Rp_core.Iface.create ~id ()) in
  Rp_core.Router.create ~name:"pmgr-demo" ~ifaces:ifc ()

let run_line router line =
  match Rp_control.Pmgr.exec router line with
  | Ok "" -> ()
  | Ok out -> print_endline out
  | Error e -> Printf.eprintf "error: %s\n%!" e

let repl router =
  print_endline "pmgr interactive mode — ctrl-D to exit.";
  (try
     while true do
       print_string "pmgr> ";
       let line = read_line () in
       if String.trim line <> "" then run_line router line
     done
   with End_of_file -> ());
  print_newline ()

let main script commands ifaces =
  let router = make_router ifaces in
  (match script with
   | Some path ->
     let ic = open_in path in
     let len = in_channel_length ic in
     let text = really_input_string ic len in
     close_in ic;
     (match Rp_control.Pmgr.exec_script router text with
      | Ok outputs -> List.iter (fun o -> if o <> "" then print_endline o) outputs
      | Error e ->
        Printf.eprintf "script error: %s\n%!" e;
        exit 1)
   | None -> ());
  match commands with
  | [] -> if script = None then repl router
  | _ -> run_line router (String.concat " " commands)

let script_arg =
  let doc = "Execute the pmgr commands in $(docv) first." in
  Arg.(value & opt (some file) None & info [ "f"; "script" ] ~docv:"FILE" ~doc)

let commands_arg =
  let doc = "A single pmgr command (e.g. $(b,modload drr))." in
  Arg.(value & pos_all string [] & info [] ~docv:"COMMAND" ~doc)

let ifaces_arg =
  let doc = "Number of interfaces on the demonstration router." in
  Arg.(value & opt int 4 & info [ "ifaces" ] ~docv:"N" ~doc)

let cmd =
  let doc = "plugin manager for the router plugins framework" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Configures a router plugins kernel: loads plugins, creates and \
         binds instances, installs routes, and queries state.  With no \
         command and no script, starts an interactive prompt.";
      `S "COMMANDS";
      `P "modload/modunload PLUGIN; create PLUGIN [k=v ...]; free N;";
      `P "bind N <FILTER>; unbind N <FILTER>; attach N IFACE; detach IFACE;";
      `P "reserve N RATE <FILTER>; message PLUGIN KEY [PAYLOAD];";
      `P "route add PREFIX IFACE [NEXTHOP]; route del PREFIX;";
      `P "show plugins|instances|ifaces|routes|flows;";
      `P "stats show|json [PATTERN]; stats reset;";
      `P "faults show; plugin quarantine N; plugin restore N;";
      `P "fault policy drop|continue|unbind; fault budget N|off;";
      `P "fault threshold N;";
      `P "slo show|set N|clear|on|off; slo exemplars [N]; slo reset;";
      `P "drops show; health show|sample|reset-hwm; top";
    ]
  in
  Cmd.v
    (Cmd.info "pmgr" ~version:"1.0" ~doc ~man)
    Term.(const main $ script_arg $ commands_arg $ ifaces_arg)

let () = exit (Cmd.eval cmd)
