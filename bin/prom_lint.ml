(* prom_lint — validate a Prometheus text exposition file.

   Checks what a scraper would choke on: name/value syntax, samples
   appearing under a declared # TYPE, cumulative bucket monotonicity,
   +Inf presence, _count agreement.  Exit 0 with a sample count on
   success; exit 1 naming the offending line otherwise.  CI runs this
   over rp_router --prom-out output. *)

let () =
  match Sys.argv with
  | [| _; path |] ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    (match Rp_obs.Prom.lint text with
     | Ok n -> Printf.printf "%s: ok (%d samples)\n" path n
     | Error e ->
       Printf.eprintf "%s: %s\n" path e;
       exit 1)
  | _ ->
    prerr_endline "usage: prom_lint FILE";
    exit 2
