(* rp_router — run a simulated router under synthetic traffic.

   The router starts as a single-router scenario (N ingress
   interfaces, one egress into a measurement sink), is configured with
   an optional pmgr script, and carries the flows described on the
   command line.  At the end, per-flow goodput/latency, interface
   counters, flow-cache statistics and the cycle cost model's
   per-packet figure are printed.

   Example:
     rp_router --script qos.pmgr \
       --flow id=1,rate=1000,len=1000 --flow id=2,rate=500,len=500 \
       --seconds 2 *)

open Cmdliner

type flow_spec = {
  id : int;
  rate : float;
  len : int;
  pattern : [ `Cbr | `Poisson | `Onoff ];
}

let parse_flow s =
  let fields = String.split_on_char ',' s in
  let get key default conv =
    List.find_map
      (fun f ->
        match String.index_opt f '=' with
        | Some i when String.sub f 0 i = key ->
          conv (String.sub f (i + 1) (String.length f - i - 1))
        | Some _ | None -> None)
      fields
    |> Option.value ~default
  in
  let id = get "id" 1 int_of_string_opt in
  let rate = get "rate" 100.0 float_of_string_opt in
  let len = get "len" 1000 int_of_string_opt in
  let pattern =
    get "pattern" `Cbr (function
      | "cbr" -> Some `Cbr
      | "poisson" -> Some `Poisson
      | "onoff" -> Some `Onoff
      | _ -> None)
  in
  { id; rate; len; pattern }

let gate_name g =
  match Rp_core.Gate.of_int g with
  | Some g -> Rp_core.Gate.name g
  | None -> string_of_int g

let write_trace_out path =
  Rp_obs.Telemetry.write_chrome_json ~gate_name ~mhz:Rp_core.Cost.cpu_mhz path;
  Printf.printf "trace written to %s (%d events recorded, %d overwritten)\n"
    path
    (Rp_obs.Telemetry.recorded ())
    (Rp_obs.Telemetry.overwritten ())

let write_flow_log path =
  let records = Rp_obs.Flowlog.drain () in
  let oc = open_out path in
  List.iter
    (fun r ->
      output_string oc (Rp_obs.Flowlog.to_json_line r);
      output_char oc '\n')
    records;
  close_out oc;
  Printf.printf "flow log written to %s (%d records)\n" path
    (List.length records)

(* A unix-socket exposition endpoint: each connection gets one
   rendered Prometheus text page and is closed.  The accept loop runs
   on its own domain and dies with the process. *)
let start_prom_sock path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  ignore
    (Domain.spawn (fun () ->
         while true do
           let c, _ = Unix.accept sock in
           (try
              let text = Rp_obs.Prom.text () in
              let n = String.length text in
              let off = ref 0 in
              while !off < n do
                off := !off + Unix.write_substring c text !off (n - !off)
              done
            with _ -> ());
           try Unix.close c with _ -> ()
         done));
  Printf.printf "prometheus exposition on %s\n%!" path

(* Sharded-engine run: instead of the event-driven simulator, the
   flows' packets are pregenerated and pumped through the multicore
   engine; throughput is reported from the cycle model (aggregate =
   packets / slowest shard's charged cycles) with wall-clock mpps as
   an informational figure (wall clock depends on host core count). *)
let stats_columns =
  [
    "t_s"; "packets"; "cum_packets"; "model_mpps"; "wall_mpps";
    "p50_cycles"; "p99_cycles";
  ]

(* The aggregate end-to-end latency histogram the data path feeds
   (Registry get-or-create is idempotent, so this is the same
   histogram Slo.observe writes). *)
let slo_hist () =
  Rp_obs.Registry.histogram ~bounds:Rp_obs.Slo.latency_bounds
    "slo.latency.cycles"

let run_sharded router n specs seconds coalesce metrics_out trace_out flow_log
    stats_csv prom_out =
  let open Rp_engine in
  let e = Engine.create (Engine.Sharded n) router in
  (match coalesce with
   | Some (count, window_s) -> Engine.set_coalesce e ~count ?window_s ()
   | None -> ());
  let forwarded = ref 0 and dropped = ref 0 and absorbed = ref 0 in
  let hz = Rp_core.Cost.cpu_mhz *. 1e6 in
  let busiest_cycles () =
    let mx = ref 0 in
    for i = 0 to n - 1 do
      let c = Engine.shard_cycles e i in
      if c > !mx then mx := c
    done;
    !mx
  in
  (* Periodic reporter: one CSV row per [interval] completed packets
     (a tenth of the offered load), same model-throughput math as the
     final summary. *)
  let csv =
    Option.map (fun path -> Rp_obs.Csv_stats.to_file ~path ~columns:stats_columns)
      stats_csv
  in
  let total_offered =
    List.fold_left
      (fun acc spec -> acc + int_of_float (spec.rate *. seconds))
      0 specs
  in
  let interval = max 1 (total_offered / 10) in
  let completed = ref 0 in
  let last_done = ref 0 and last_cycles = ref 0 and next_report = ref interval in
  let wall0 = Unix.gettimeofday () in
  let last_wall = ref wall0 in
  let report () =
    Rp_obs.Health.sample ();
    Option.iter (fun p -> Rp_obs.Prom.write p) prom_out;
    match csv with
    | None -> ()
    | Some c ->
      let cycles = busiest_cycles () in
      let wall = Unix.gettimeofday () in
      let pkts = !completed - !last_done in
      let dcyc = cycles - !last_cycles in
      let mpps =
        if dcyc > 0 then float_of_int pkts /. (float_of_int dcyc /. hz) /. 1e6
        else 0.0
      in
      let wall_mpps =
        let dt = wall -. !last_wall in
        if dt > 0.0 then float_of_int pkts /. dt /. 1e6 else 0.0
      in
      let h = slo_hist () in
      Rp_obs.Csv_stats.row c
        [
          Rp_obs.Csv_stats.f3 (wall -. wall0);
          Rp_obs.Csv_stats.i pkts;
          Rp_obs.Csv_stats.i !completed;
          Rp_obs.Csv_stats.f6 mpps;
          Rp_obs.Csv_stats.f6 wall_mpps;
          Rp_obs.Csv_stats.f3 (Rp_obs.Histogram.quantile h 0.5);
          Rp_obs.Csv_stats.f3 (Rp_obs.Histogram.quantile h 0.99);
        ];
      last_done := !completed;
      last_cycles := cycles;
      last_wall := wall
  in
  let record (res : Shard.result) =
    (match res.Shard.outcome with
     | Shard.Forwarded _ -> incr forwarded
     | Shard.Dropped _ -> incr dropped
     | Shard.Absorbed -> incr absorbed);
    incr completed;
    if !completed >= !next_report then begin
      report ();
      next_report := !next_report + interval
    end
  in
  let submitted = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun spec ->
      let pkts = int_of_float (spec.rate *. seconds) in
      let key = Rp_sim.Scenario.sink_key ~id:spec.id () in
      for _ = 1 to pkts do
        let m = Rp_pkt.Mbuf.synth ~key ~len:spec.len () in
        incr submitted;
        (* Full ring: drain results until the worker frees a slot. *)
        while not (Engine.submit e ~now:0L m) do
          ignore (Engine.drain e ~f:record)
        done
      done)
    specs;
  ignore (Engine.flush e ~f:record);
  if !completed > !last_done then report ()
  else begin
    Rp_obs.Health.sample ();
    Option.iter (fun p -> Rp_obs.Prom.write p) prom_out
  end;
  (match csv with
   | Some c ->
     Rp_obs.Csv_stats.close c;
     Printf.printf "stats time series written (%d rows)\n"
       (Rp_obs.Csv_stats.rows c)
   | None -> ());
  let wall_s = Unix.gettimeofday () -. t0 in
  let max_cycles = busiest_cycles () in
  let model_s = float_of_int max_cycles /. hz in
  let total = !forwarded + !dropped + !absorbed in
  let mpps_model = if model_s > 0.0 then float_of_int total /. model_s /. 1e6 else 0.0 in
  let mpps_wall = if wall_s > 0.0 then float_of_int total /. wall_s /. 1e6 else 0.0 in
  Printf.printf "\n== sharded engine (%d domains) ==\n" n;
  Printf.printf "packets: submitted %d, forwarded %d, dropped %d, absorbed %d\n"
    !submitted !forwarded !dropped !absorbed;
  Printf.printf "aggregate throughput (P6/233 model): %.3f mpps\n" mpps_model;
  Printf.printf "wall-clock throughput (informational): %.3f mpps\n" mpps_wall;
  (match Rp_control.Pmgr.exec router "engine stats" with
   | Ok out -> print_string out
   | Error _ -> ());
  Rp_obs.Registry.set "engine.mpps_model" mpps_model;
  Rp_obs.Registry.set "engine.mpps_wall" mpps_wall;
  Engine.stop e;
  (* Workers have joined: the shards' domain-private flow caches are
     safe to flush, so the flow log covers still-live flows too. *)
  if flow_log <> None then Engine.flush_flows e;
  Option.iter write_trace_out trace_out;
  Option.iter write_flow_log flow_log;
  Option.iter
    (fun p ->
      Rp_obs.Prom.write p;
      Printf.printf "prometheus exposition written to %s\n" p)
    prom_out;
  match metrics_out with
  | Some path ->
    Rp_obs.Registry.write_json path;
    Printf.printf "\nmetrics written to %s\n" path
  | None -> ()

(* "N" or "N:MS" — publication coalescing batch size and optional
   wall-clock window in milliseconds. *)
let parse_coalesce s =
  let conv count ms =
    match (count, ms) with
    | Some c, Some w when c >= 1 && w >= 0.0 -> Some (c, Some (w /. 1e3))
    | Some c, None when c >= 1 -> Some (c, None)
    | _ -> None
  in
  match String.index_opt s ':' with
  | Some i ->
    conv
      (int_of_string_opt (String.sub s 0 i))
      (float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> conv (int_of_string_opt s) None

let main script flows seconds in_ifaces bandwidth_mbps mode_str engine_str
    classifier_str coalesce_str metrics_out trace trace_out trace_sample
    flow_log stats_csv slo_str prom_out prom_sock =
  Rp_obs.Trace.enabled := trace;
  (match slo_str with
   | None -> ()
   | Some "off" -> Rp_obs.Slo.set_stamping false
   | Some s ->
     (match int_of_string_opt s with
      | Some n when n > 0 -> Rp_obs.Slo.set_threshold n
      | Some _ | None ->
        Printf.eprintf "--slo: expected off or a positive cycle count\n%!";
        exit 2));
  Option.iter start_prom_sock prom_sock;
  if trace_sample < 1 then begin
    Printf.eprintf "--trace-sample: expected a positive sampling period\n%!";
    exit 2
  end;
  if trace_out <> None then Rp_obs.Telemetry.enable ~every:trace_sample;
  let mode =
    match mode_str with
    | "best-effort" -> Rp_core.Router.Best_effort
    | _ -> Rp_core.Router.Plugins
  in
  let engine_mode =
    match Rp_engine.Engine.mode_of_string engine_str with
    | Ok m -> m
    | Error e ->
      Printf.eprintf "--engine: %s\n%!" e;
      exit 2
  in
  let classifier_mode =
    match Rp_classifier.Aiu.mode_of_string classifier_str with
    | Ok m -> m
    | Error e ->
      Printf.eprintf "--classifier: %s\n%!" e;
      exit 2
  in
  let coalesce =
    match coalesce_str with
    | None -> None
    | Some s ->
      (match parse_coalesce s with
       | Some _ as c -> c
       | None ->
         Printf.eprintf "--coalesce: expected N or N:MS (N >= 1)\n%!";
         exit 2)
  in
  let s =
    Rp_sim.Scenario.single_router ~mode ~in_ifaces
      ~out_bandwidth_bps:(Int64.of_float (bandwidth_mbps *. 1e6))
      ()
  in
  let router = s.Rp_sim.Scenario.router in
  (* Before any engine snapshot or script runs, so shards compile with
     the requested mode and a script's `classifier` command can still
     override it. *)
  Rp_classifier.Aiu.set_mode (Rp_core.Router.aiu router) classifier_mode;
  (match script with
   | Some path ->
     let ic = open_in path in
     let text = really_input_string ic (in_channel_length ic) in
     close_in ic;
     (match Rp_control.Pmgr.exec_script router text with
      | Ok outs -> List.iter (fun o -> if o <> "" then print_endline o) outs
      | Error e ->
        Printf.eprintf "script error: %s\n%!" e;
        exit 1)
   | None -> ());
  let specs = List.map parse_flow flows in
  let specs = if specs = [] then [ { id = 1; rate = 100.0; len = 1000; pattern = `Cbr } ] else specs in
  (match engine_mode with
   | Rp_engine.Engine.Sharded n ->
     run_sharded router n specs seconds coalesce metrics_out trace_out
       flow_log stats_csv prom_out;
     exit 0
   | Rp_engine.Engine.Inline ->
     (* The default: the deterministic single-domain simulator path
        below, bit-for-bit identical to previous releases. *)
     ());
  List.iter
    (fun spec ->
      let pattern =
        match spec.pattern with
        | `Cbr -> Rp_sim.Traffic.Cbr spec.rate
        | `Poisson -> Rp_sim.Traffic.Poisson spec.rate
        | `Onoff ->
          Rp_sim.Traffic.On_off
            { rate_pps = spec.rate; on_ns = 100_000_000L; off_ns = 100_000_000L }
      in
      ignore
        (Rp_sim.Scenario.add_flow s
           {
             Rp_sim.Traffic.key = Rp_sim.Scenario.sink_key ~id:spec.id ();
             pkt_len = spec.len;
             pattern;
             start_ns = 0L;
             stop_ns = Rp_sim.Sim.ns_of_sec seconds;
             seed = spec.id;
           }))
    specs;
  (* Periodic stats reporter on the simulator clock: a row per tenth
     of the traffic duration, throughput from the cycle model (the
     sim's time axis), wall clock informational. *)
  let stats =
    Option.map
      (fun path -> Rp_obs.Csv_stats.to_file ~path ~columns:stats_columns)
      stats_csv
  in
  if Option.is_some stats || Option.is_some prom_out then begin
    let interval_ns = Rp_sim.Sim.ns_of_sec (seconds /. 10.0) in
    let stop_ns = Rp_sim.Sim.ns_of_sec seconds in
    let hz = Rp_core.Cost.cpu_mhz *. 1e6 in
    let last_pkts = ref 0 in
    let last_cycles = ref (Rp_core.Cost.get ()) in
    let last_wall = ref (Unix.gettimeofday ()) in
    let rec plan t =
      Rp_sim.Sim.at s.Rp_sim.Scenario.sim t (fun () ->
          Rp_obs.Health.sample ();
          Option.iter (fun p -> Rp_obs.Prom.write p) prom_out;
          (match stats with
           | None -> ()
           | Some c ->
             let st = Rp_sim.Net.stats s.Rp_sim.Scenario.node in
             let cycles = Rp_core.Cost.get () in
             let wall = Unix.gettimeofday () in
             let pkts = st.Rp_sim.Net.received - !last_pkts in
             let dcyc = cycles - !last_cycles in
             let mpps =
               if dcyc > 0 then
                 float_of_int pkts /. (float_of_int dcyc /. hz) /. 1e6
               else 0.0
             in
             let wall_mpps =
               let dt = wall -. !last_wall in
               if dt > 0.0 then float_of_int pkts /. dt /. 1e6 else 0.0
             in
             let h = slo_hist () in
             Rp_obs.Csv_stats.row c
               [
                 Rp_obs.Csv_stats.f3 (Int64.to_float t /. 1e9);
                 Rp_obs.Csv_stats.i pkts;
                 Rp_obs.Csv_stats.i st.Rp_sim.Net.received;
                 Rp_obs.Csv_stats.f6 mpps;
                 Rp_obs.Csv_stats.f6 wall_mpps;
                 Rp_obs.Csv_stats.f3 (Rp_obs.Histogram.quantile h 0.5);
                 Rp_obs.Csv_stats.f3 (Rp_obs.Histogram.quantile h 0.99);
               ];
             last_pkts := st.Rp_sim.Net.received;
             last_cycles := cycles;
             last_wall := wall);
          if t < stop_ns then plan (Int64.add t interval_ns))
    in
    plan interval_ns
  end;
  Rp_sim.Scenario.run s ~seconds:(seconds +. 1.0);
  (match stats with
   | Some c ->
     Rp_obs.Csv_stats.close c;
     Printf.printf "stats time series written (%d rows)\n"
       (Rp_obs.Csv_stats.rows c)
   | None -> ());
  (* Report. *)
  Printf.printf "\n== per-flow results (%.1f s simulated) ==\n" seconds;
  Printf.printf "%-6s %12s %12s %12s %12s\n" "flow" "packets" "Mb/s" "mean ms" "max ms";
  List.iter
    (fun spec ->
      match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink (Rp_sim.Scenario.sink_key ~id:spec.id ()) with
      | Some fs ->
        let mean, mx = Rp_sim.Sink.latency fs in
        Printf.printf "%-6d %12d %12.3f %12.3f %12.3f\n" spec.id
          fs.Rp_sim.Sink.packets
          (Rp_sim.Sink.goodput_bps fs /. 1e6)
          (mean *. 1e3) (mx *. 1e3)
      | None -> Printf.printf "%-6d (nothing delivered)\n" spec.id)
    specs;
  let st = Rp_sim.Net.stats s.Rp_sim.Scenario.node in
  Printf.printf "\n== router ==\n";
  Printf.printf "received %d, forwarded %d, dropped %d, delivered-local %d\n"
    st.Rp_sim.Net.received st.Rp_sim.Net.forwarded st.Rp_sim.Net.dropped
    st.Rp_sim.Net.delivered;
  List.iter
    (fun (reason, n) -> Printf.printf "  drop[%s] = %d\n" reason n)
    st.Rp_sim.Net.drop_reasons;
  Printf.printf "cycles/packet (P6/233 model): %.0f (= %.2f us)\n"
    (Rp_sim.Net.cycles_per_packet s.Rp_sim.Scenario.node)
    (Rp_core.Cost.us_of_cycles
       (int_of_float (Rp_sim.Net.cycles_per_packet s.Rp_sim.Scenario.node)));
  (match Rp_control.Pmgr.exec router "show flows" with
   | Ok out -> Printf.printf "flow cache: %s\n" out
   | Error _ -> ());
  Array.iter
    (fun ifc -> Format.printf "%a@." Rp_core.Iface.pp ifc)
    router.Rp_core.Router.ifaces;
  if trace then begin
    Printf.printf "\n== last %d trace spans ==\n" (Rp_obs.Trace.recorded ());
    List.iter
      (fun s -> Format.printf "%a@." Rp_obs.Trace.pp_span s)
      (Rp_obs.Trace.spans ())
  end;
  (* Flush live flow-cache entries through the exporter before writing
     the flow log and metrics, so both cover in-flight flows. *)
  if flow_log <> None then
    Rp_classifier.Aiu.flush_flows (Rp_core.Router.aiu router);
  Option.iter write_trace_out trace_out;
  Option.iter write_flow_log flow_log;
  Rp_obs.Health.sample ();
  Option.iter
    (fun p ->
      Rp_obs.Prom.write p;
      Printf.printf "prometheus exposition written to %s\n" p)
    prom_out;
  match metrics_out with
  | Some path ->
    Rp_obs.Registry.write_json path;
    Printf.printf "\nmetrics written to %s\n" path
  | None -> ()

let script_arg =
  Arg.(value & opt (some file) None
       & info [ "script" ] ~docv:"FILE" ~doc:"pmgr configuration script.")

let flow_arg =
  Arg.(value & opt_all string []
       & info [ "flow" ]
           ~docv:"SPEC"
           ~doc:"Flow spec: id=N,rate=PPS,len=BYTES,pattern=cbr|poisson|onoff.")

let seconds_arg =
  Arg.(value & opt float 1.0 & info [ "seconds" ] ~docv:"S" ~doc:"Traffic duration.")

let ifaces_arg =
  Arg.(value & opt int 2 & info [ "in-ifaces" ] ~docv:"N" ~doc:"Ingress interfaces.")

let bw_arg =
  Arg.(value & opt float 155.0
       & info [ "bandwidth" ] ~docv:"MBPS" ~doc:"Egress link rate, Mb/s.")

let mode_arg =
  Arg.(value & opt string "plugins"
       & info [ "mode" ] ~docv:"MODE" ~doc:"plugins (default) or best-effort.")

let engine_arg =
  Arg.(value & opt string "inline"
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Packet engine: $(b,inline) (default; deterministic \
                 single-domain simulator) or $(b,sharded:N) (pump the \
                 flows through N worker domains and report throughput).")

let classifier_arg =
  Arg.(value & opt string "pergate"
       & info [ "classifier" ] ~docv:"MODE"
           ~doc:"Cold-start classification: $(b,pergate) (default; one \
                 DAG walk per gate, the paper's behavior) or \
                 $(b,compiled) (one cross-gate FDD traversal resolves \
                 every gate).")

let coalesce_arg =
  Arg.(value & opt (some string) None
       & info [ "coalesce" ] ~docv:"N[:MS]"
           ~doc:"With $(b,--engine sharded:K): coalesce control-plane \
                 publications — defer until $(docv) mutations are \
                 pending, or the optional wall-clock window of MS \
                 milliseconds has elapsed since the first deferred one \
                 (same knob as $(b,pmgr engine coalesce)).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the metric registry as JSON (schema rp-metrics/3) \
                 to $(docv) on exit.")

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Record per-gate trace spans and print the tail of the \
                 ring buffer.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable hot-path event tracing and write a Chrome \
                 trace-event JSON file (loadable in Perfetto / \
                 about:tracing) to $(docv) on exit.")

let trace_sample_arg =
  Arg.(value & opt int 1
       & info [ "trace-sample" ] ~docv:"N"
           ~doc:"With $(b,--trace-out), sample one packet in $(docv) \
                 (default 1 = every packet).")

let stats_csv_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-csv" ] ~docv:"FILE"
           ~doc:"Write a periodic throughput time series (CSV: one row \
                 per tenth of the traffic duration — packets, model \
                 mpps, wall mpps) to $(docv).  Works with both \
                 $(b,--engine inline) (simulator clock) and \
                 $(b,sharded:N) (completed-packet count).")

let flow_log_arg =
  Arg.(value & opt (some string) None
       & info [ "flow-log" ] ~docv:"FILE"
           ~doc:"Write NetFlow-style flow records (JSON lines, one \
                 object per evicted/flushed flow) to $(docv) on exit.")

let slo_arg =
  Arg.(value & opt (some string) None
       & info [ "slo" ] ~docv:"CYCLES|off"
           ~doc:"Latency SLO on the model clock: a positive cycle count \
                 sets the breach threshold and arms exemplar capture \
                 ($(b,pmgr slo exemplars)); $(b,off) disables ingress \
                 stamping entirely.  Default: stamping on, no threshold.")

let prom_out_arg =
  Arg.(value & opt (some string) None
       & info [ "prom-out" ] ~docv:"FILE"
           ~doc:"Rewrite $(docv) with the Prometheus text exposition of \
                 the metric registry every reporting interval (atomic \
                 write-then-rename) and on exit.")

let prom_sock_arg =
  Arg.(value & opt (some string) None
       & info [ "prom-sock" ] ~docv:"PATH"
           ~doc:"Serve the Prometheus text exposition on a unix stream \
                 socket at $(docv): each connection receives one page \
                 and is closed.")

let cmd =
  let doc = "simulate a router plugins EISR under synthetic traffic" in
  Cmd.v
    (Cmd.info "rp_router" ~version:"1.0" ~doc)
    Term.(const main $ script_arg $ flow_arg $ seconds_arg $ ifaces_arg
          $ bw_arg $ mode_arg $ engine_arg $ classifier_arg $ coalesce_arg
          $ metrics_arg $ trace_arg $ trace_out_arg $ trace_sample_arg
          $ flow_log_arg $ stats_csv_arg $ slo_arg $ prom_out_arg
          $ prom_sock_arg)

let () = exit (Cmd.eval cmd)
