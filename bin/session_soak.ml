(* session_soak — the session-subsystem soak scenario run by CI.

   Drives NAT'd bidirectional UDP traffic through the unified session
   subsystem (nat / conntrack / nat-out on one shared table) on both
   the inline and the sharded:4 engine, under control-plane churn:
   the conntrack binding is removed and re-added and the NAT plugin
   quarantined and restored mid-traffic, with a flush + snapshot-sync
   barrier around every control action so the harness knows exactly
   which packets the session layer was bound for.

   Asserts, per engine mode:

   - exact packet AND byte reconciliation in both directions: the
     session table's per-direction counters equal the harness tally
     of every packet offered while conntrack was bound — nothing
     lost, nothing double-counted, across stripes and worker domains;
   - the flow-export records emitted when the table is torn down
     reconcile with the same tally (with the translated tuple on
     every NAT'd record);
   - every offered packet came back forwarded (UDP sessions never
     close, and both directions stay routable through the NAT);

   and across modes: the sharded engine forwarded exactly the packets
   the inline engine forwarded.  Writes session-soak.json
   (rp-metrics/1) for ci/check_session.sh. *)

open Rp_pkt
open Rp_core

let failures = ref 0

let check label ok =
  if ok then Printf.printf "ok   %s\n" label
  else begin
    Printf.printf "FAIL %s\n" label;
    incr failures
  end

let ok = function Ok v -> v | Error e -> failwith e

let nat_addr = Ipaddr.v4 198 51 100 7

let fwd_key f =
  Flow_key.make ~src:(Ipaddr.v4 10 0 0 (1 + f)) ~dst:(Ipaddr.v4 192 168 1 9)
    ~proto:Proto.udp ~sport:(4000 + f) ~dport:80 ~iface:0

let rev_key f =
  Flow_key.make ~src:(Ipaddr.v4 192 168 1 9) ~dst:nat_addr ~proto:Proto.udp
    ~sport:80 ~dport:(4000 + f) ~iface:1

let mk_router () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~gates:Gate.all ~ifaces () in
  Router.add_route r (Prefix.of_string "10.0.0.0/8") ~iface:0 ();
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  (* the NAT pool prefix: keeps replies routable (back out if1) even
     while the NAT plugin is quarantined and the rewrite is bypassed *)
  Router.add_route r (Prefix.of_string "198.51.100.0/24") ~iface:1 ();
  r

let setup_session_plugins r ~table =
  let inst plugin =
    let m = Option.get (Rp_control.Plugin_lib.find plugin) in
    ok (Pcu.modload r.Router.pcu m);
    let i = ok (Pcu.create_instance r.Router.pcu ~plugin [ ("table", table) ]) in
    ok
      (Pcu.register_instance r.Router.pcu ~instance:i.Plugin.instance_id
         (Rp_classifier.Filter.v4 ()));
    i.Plugin.instance_id
  in
  (inst "nat", inst "conntrack", inst "nat-out")

let await_sync e =
  while not (Rp_engine.Engine.synced e) do
    Domain.cpu_relax ()
  done

(* The churn schedule: a fixed LCG so every run (and both engine
   modes) sees the identical op sequence.  ~400 bursts of 1..16
   packets across 6 flows, interleaved with conntrack bind churn and
   NAT quarantine flaps. *)
type op = Burst of bool * int * int | Unbind_ct | Rebind_ct | Quar_nat | Restore_nat

let schedule =
  let seed = ref 0x5e551011 in
  let rand m =
    seed := (!seed * 1103515245) + 12345;
    (!seed lsr 8) mod m
  in
  List.init 400 (fun _ ->
      match rand 20 with
      | 0 -> Unbind_ct
      | 1 -> Rebind_ct
      | 2 -> Quar_nat
      | 3 -> Restore_nat
      | _ -> Burst (rand 2 = 0, rand 6, 1 + rand 16))

type tally = {
  mutable fwd_pkts : int;
  mutable fwd_bytes : int;
  mutable rev_pkts : int;
  mutable rev_bytes : int;
}

let run_mode ~label mode =
  Printf.printf "== session soak: %s ==\n" label;
  let table = "soak-" ^ label in
  let r = mk_router () in
  let t = Rp_session.Session.Table.get table in
  ignore (Rp_session.Session.Table.flush t);
  Rp_session.Session.Table.add_rule t
    {
      Rp_session.Session.Table.kind = `Snat;
      filter = Rp_classifier.Filter.v4 ();
      addr = nat_addr;
      port = None;
      tos = Some 0x28;
    };
  let nat_id, ct_id, _ = setup_session_plugins r ~table in
  let e = Rp_engine.Engine.create mode r in
  let ct_filter = Rp_classifier.Filter.to_string (Rp_classifier.Filter.v4 ()) in
  let expected = { fwd_pkts = 0; fwd_bytes = 0; rev_pkts = 0; rev_bytes = 0 } in
  let offered = ref 0 and forwarded = ref 0 and dropped = ref 0 in
  let outcomes = Buffer.create 4096 in
  let collect (res : Rp_engine.Shard.result) =
    (match res.Rp_engine.Shard.outcome with
    | Rp_engine.Shard.Forwarded i ->
      incr forwarded;
      Buffer.add_string outcomes
        (Printf.sprintf "%d:f%d;" res.Rp_engine.Shard.m.Mbuf.seq i)
    | Rp_engine.Shard.Absorbed ->
      Buffer.add_string outcomes
        (Printf.sprintf "%d:a;" res.Rp_engine.Shard.m.Mbuf.seq)
    | Rp_engine.Shard.Dropped _ ->
      incr dropped;
      Buffer.add_string outcomes
        (Printf.sprintf "%d:d;" res.Rp_engine.Shard.m.Mbuf.seq))
  in
  let ct_bound = ref true in
  let now = ref 0L and seq = ref 0 in
  let burst ~fwd ~flow ~count =
    for i = 1 to count do
      now := Int64.add !now 1_000_000L;
      incr seq;
      incr offered;
      let len = 64 + (16 * (i mod 24)) in
      let key = if fwd then fwd_key flow else rev_key flow in
      let m = Mbuf.synth ~key ~len () in
      m.Mbuf.seq <- !seq;
      if not (Rp_engine.Engine.submit e ~now:!now m) then
        check "submit accepted (ring never full at this burst size)" false;
      if !ct_bound then
        if fwd then begin
          expected.fwd_pkts <- expected.fwd_pkts + 1;
          expected.fwd_bytes <- expected.fwd_bytes + len
        end
        else begin
          expected.rev_pkts <- expected.rev_pkts + 1;
          expected.rev_bytes <- expected.rev_bytes + len
        end
    done;
    ignore (Rp_engine.Engine.flush e ~f:collect)
  in
  (* warm every flow forward-first so each session's direction labels
     are anchored to the true initiator before any churn *)
  for f = 0 to 5 do
    burst ~fwd:true ~flow:f ~count:1;
    burst ~fwd:false ~flow:f ~count:1
  done;
  let exec cmd = ignore (Rp_control.Pmgr.exec r cmd) in
  List.iter
    (fun op ->
      match op with
      | Burst (fwd, flow, count) -> burst ~fwd ~flow ~count
      | Unbind_ct ->
        exec (Printf.sprintf "unbind %d %s" ct_id ct_filter);
        await_sync e;
        ct_bound := false
      | Rebind_ct ->
        if not !ct_bound then begin
          exec (Printf.sprintf "bind %d %s" ct_id ct_filter);
          await_sync e;
          ct_bound := true
        end
      | Quar_nat ->
        exec (Printf.sprintf "plugin quarantine %d" nat_id);
        await_sync e
      | Restore_nat ->
        exec (Printf.sprintf "plugin restore %d" nat_id);
        await_sync e)
    schedule;
  (* quiesce, then reconcile the session table against the tally *)
  ignore (Rp_engine.Engine.flush e ~f:collect);
  let m_fwd_pkts = ref 0 and m_fwd_bytes = ref 0 in
  let m_rev_pkts = ref 0 and m_rev_bytes = ref 0 in
  let sessions = ref 0 in
  Rp_session.Session.Table.iter
    (fun s ->
      incr sessions;
      m_fwd_pkts := !m_fwd_pkts + Atomic.get s.Rp_session.Session.fwd_pkts;
      m_fwd_bytes := !m_fwd_bytes + Atomic.get s.Rp_session.Session.fwd_bytes;
      m_rev_pkts := !m_rev_pkts + Atomic.get s.Rp_session.Session.rev_pkts;
      m_rev_bytes := !m_rev_bytes + Atomic.get s.Rp_session.Session.rev_bytes)
    t;
  let recon_error =
    abs (!m_fwd_pkts - expected.fwd_pkts)
    + abs (!m_fwd_bytes - expected.fwd_bytes)
    + abs (!m_rev_pkts - expected.rev_pkts)
    + abs (!m_rev_bytes - expected.rev_bytes)
  in
  Printf.printf
    "  offered %d (fwd %d pkts/%d B, rev %d pkts/%d B counted while bound)\n"
    !offered expected.fwd_pkts expected.fwd_bytes expected.rev_pkts
    expected.rev_bytes;
  Printf.printf "  sessions %d: fwd %d/%d B, rev %d/%d B, recon error %d\n"
    !sessions !m_fwd_pkts !m_fwd_bytes !m_rev_pkts !m_rev_bytes recon_error;
  check
    (Printf.sprintf "%s: exact packet/byte reconciliation both directions"
       label)
    (recon_error = 0);
  check
    (Printf.sprintf "%s: every offered packet forwarded (%d/%d)" label
       !forwarded !offered)
    (!forwarded = !offered && !dropped = 0);
  check (Printf.sprintf "%s: one session per flow (%d)" label !sessions)
    (!sessions = 6);
  (* tear down: the flow-export records must carry the same totals,
     with the translated tuple on every NAT'd session *)
  Rp_obs.Flowlog.clear ();
  let flushed = Rp_session.Session.Table.flush t in
  let records = Rp_obs.Flowlog.drain () in
  let x_pkts = ref 0 and x_bytes = ref 0 and translated = ref 0 in
  List.iter
    (fun (rec_ : Rp_obs.Flowlog.record) ->
      if rec_.Rp_obs.Flowlog.reason = "session-flushed" then begin
        x_pkts := !x_pkts + rec_.Rp_obs.Flowlog.packets;
        x_bytes := !x_bytes + rec_.Rp_obs.Flowlog.bytes;
        if rec_.Rp_obs.Flowlog.translated <> None then incr translated
      end)
    records;
  check
    (Printf.sprintf "%s: flow-export reconciles (%d pkts/%d B over %d records)"
       label !x_pkts !x_bytes flushed)
    (flushed = 6
    && !x_pkts = expected.fwd_pkts + expected.rev_pkts
    && !x_bytes = expected.fwd_bytes + expected.rev_bytes);
  check
    (Printf.sprintf "%s: translated tuple on every exported session" label)
    (!translated = 6);
  Rp_engine.Engine.stop e;
  let slug = match mode with
    | Rp_engine.Engine.Inline -> "inline"
    | Rp_engine.Engine.Sharded n -> Printf.sprintf "sharded%d" n
  in
  Rp_obs.Registry.set
    (Printf.sprintf "soak.session.%s.recon_error" slug)
    (float_of_int recon_error);
  Rp_obs.Registry.set
    (Printf.sprintf "soak.session.%s.offered" slug)
    (float_of_int !offered);
  Rp_obs.Registry.set
    (Printf.sprintf "soak.session.%s.forwarded" slug)
    (float_of_int !forwarded);
  Buffer.contents outcomes

let () =
  let inline = run_mode ~label:"inline" Rp_engine.Engine.Inline in
  let sharded = run_mode ~label:"sharded4" (Rp_engine.Engine.Sharded 4) in
  check "inline and sharded:4 forwarded identical packet sequences"
    (String.equal inline sharded);
  Rp_obs.Registry.set "soak.session.mode_mismatch"
    (if String.equal inline sharded then 0.0 else 1.0);
  Rp_obs.Registry.write_json "session-soak.json";
  Printf.printf "metrics written to session-soak.json\n";
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "session soak: all checks passed"
