#!/bin/sh
# Batched data-path gate, run by CI after
#   dune exec bench/main.exe -- fig-batch table3 --csv-out batch.csv --metrics-out batch.json
#   dune exec bench/main.exe -- table3 --metrics-out table3-a.json
#
# Three checks:
#
#   1. Steady-state batched throughput (mean model Mpps over the
#      post-warm-up reporting intervals) must stay above a pinned
#      floor for both the inline engine and sharded:4.  The inline
#      figure comes entirely from the deterministic cycle model, so it
#      is byte-stable across runs and machines; the sharded figure is
#      per busiest domain and noisier, so its floor is looser.
#
#   2. Pool health: on the inline engine the pool must never run dry
#      (every packet is recycled before the next batch is pulled).  On
#      sharded:4 packets are genuinely in flight on worker domains, so
#      transient starvation is expected backpressure — the pump drains
#      completions and retries — but it must stay bounded.  The time
#      series must also have its expected row count, gating the
#      reporting plumbing itself.
#
#   3. The Table-3 per-packet cycle figures from the fig-batch run
#      must be byte-identical to a standalone Table-3 run: the batch
#      machinery (pool alloc/free, link rings, gate-major dispatch)
#      must not perturb the per-packet cost model at all.
#
# The metrics files are rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

batch="${1:-batch.json}"
base="${2:-table3-a.json}"
require_files "$batch" "$base"

echo "== fig-batch: steady-state batched throughput =="
check_min "$batch" bench.fig_batch.inline.steady_mpps 0.03
check_min "$batch" bench.fig_batch.sharded4.steady_mpps 0.02

echo "== fig-batch: pool health and time-series plumbing =="
check_max "$batch" bench.fig_batch.inline.pool_exhausted 0
check_max "$batch" bench.fig_batch.sharded4.pool_exhausted 2000
check_min "$batch" bench.fig_batch.inline.rows 10
check_min "$batch" bench.fig_batch.sharded4.rows 10
check_min "$batch" bench.fig_batch.inline.generated 30000
check_min "$batch" bench.fig_batch.sharded4.generated 30000

echo "== Table 3 unchanged by the batch machinery =="
check_same "$batch" "$base" bench.table3.best_effort.cycles
check_same "$batch" "$base" bench.table3.plugins_3gates.cycles
check_same "$batch" "$base" bench.table3.monolithic_drr.cycles
check_same "$batch" "$base" bench.table3.plugins_drr.cycles

exit $fail
