#!/bin/sh
# Bench-regression gate, run by CI after
#   dune exec bench/main.exe -- table2 table3 --metrics-out bench.json
#
# Fails when the worst-case filter-lookup memory accesses regress past
# the paper's Table-2 bounds (20 for IPv4, 24 for IPv6), or when the
# Table-3 per-packet cycle figures drift from the calibrated model.
#
# The metrics file is rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu

file="${1:-bench.json}"
if [ ! -f "$file" ]; then
  echo "check_bench: $file not found" >&2
  exit 2
fi

fail=0

metric() {
  sed -n "s/^[[:space:]]*\"$1\": \([0-9][0-9.]*\),\{0,1\}[[:space:]]*$/\1/p" \
    "$file" | head -n1
}

# check_max NAME BOUND — fail when NAME is missing or exceeds BOUND.
check_max() {
  v="$(metric "$1")"
  if [ -z "$v" ]; then
    echo "FAIL $1: missing from $file"
    fail=1
  elif awk "BEGIN { exit !($v <= $2) }"; then
    echo "ok   $1 = $v (bound $2)"
  else
    echo "FAIL $1 = $v exceeds bound $2"
    fail=1
  fi
}

# check_near NAME EXPECTED TOL_PCT — fail when NAME is missing or more
# than TOL_PCT percent away from EXPECTED.
check_near() {
  v="$(metric "$1")"
  if [ -z "$v" ]; then
    echo "FAIL $1: missing from $file"
    fail=1
  elif awk "BEGIN { d = ($v - $2) / $2; if (d < 0) d = -d; \
                    exit !(d <= $3 / 100) }"; then
    echo "ok   $1 = $v (expected $2 within $3%)"
  else
    echo "FAIL $1 = $v outside $2 +/- $3%"
    fail=1
  fi
}

echo "== Table 2: worst-case filter-lookup memory accesses =="
check_max bench.table2.ipv4.worst_accesses 20
check_max bench.table2.ipv6.worst_accesses 24

echo "== Table 3: per-packet cycle model =="
check_near bench.table3.best_effort.cycles 6460 2
check_near bench.table3.plugins_3gates.cycles 6955 2
check_near bench.table3.monolithic_drr.cycles 8160 2
check_near bench.table3.plugins_drr.cycles 8105 2

exit $fail
