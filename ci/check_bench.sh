#!/bin/sh
# Bench-regression gate, run by CI after
#   dune exec bench/main.exe -- table2 table3 --metrics-out bench.json
#
# Fails when the worst-case filter-lookup memory accesses regress past
# the paper's Table-2 bounds (20 for IPv4, 24 for IPv6), or when the
# Table-3 per-packet cycle figures drift from the calibrated model.
#
# The metrics file is rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

file="${1:-bench.json}"
require_files "$file"

echo "== Table 2: worst-case filter-lookup memory accesses =="
check_max "$file" bench.table2.ipv4.worst_accesses 20
check_max "$file" bench.table2.ipv6.worst_accesses 24

echo "== Table 3: per-packet cycle model =="
check_near "$file" bench.table3.best_effort.cycles 6460 2
check_near "$file" bench.table3.plugins_3gates.cycles 6955 2
check_near "$file" bench.table3.monolithic_drr.cycles 8160 2
check_near "$file" bench.table3.plugins_drr.cycles 8105 2

exit $fail
