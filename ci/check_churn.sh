#!/bin/sh
# Control-plane churn gate, run by CI after
#   dune exec bench/main.exe -- fig-churn table3 --metrics-out churn.json
#   dune exec bench/main.exe -- table3 --metrics-out table3-a.json
#
# Two checks:
#
#   1. Delta publication must sustain >= 10x the full-recompile filter
#      update rate with 4 shards syncing and 512 background filters
#      installed.  The rates come from synchronous Shard.sync calls on
#      one domain, so the gate holds regardless of how many hardware
#      cores the CI runner exposes.
#
#   2. The Table-3 per-packet cycle figures from the churn run must be
#      byte-identical to a standalone Table-3 run: the delta machinery
#      (AIU mutation listeners, per-gate generation stamps, lazy flow
#      revalidation) must not perturb the data-path cost model at all.
#
# The metrics files are rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu

churn="${1:-churn.json}"
base="${2:-table3-a.json}"
for f in "$churn" "$base"; do
  if [ ! -f "$f" ]; then
    echo "check_churn: $f not found" >&2
    exit 2
  fi
done

fail=0

metric() { # FILE NAME
  sed -n "s/^[[:space:]]*\"$2\": \([0-9][0-9.]*\),\{0,1\}[[:space:]]*$/\1/p" \
    "$1" | head -n1
}

# check_min NAME BOUND — fail when NAME is missing or below BOUND.
check_min() {
  v="$(metric "$churn" "$1")"
  if [ -z "$v" ]; then
    echo "FAIL $1: missing from $churn"
    fail=1
  elif awk "BEGIN { exit !($v >= $2) }"; then
    echo "ok   $1 = $v (floor $2)"
  else
    echo "FAIL $1 = $v below floor $2"
    fail=1
  fi
}

# check_same NAME — fail unless NAME is present and byte-identical in
# both metrics files.
check_same() {
  a="$(metric "$churn" "$1")"
  b="$(metric "$base" "$1")"
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "FAIL $1: missing ('$a' vs '$b')"
    fail=1
  elif [ "$a" = "$b" ]; then
    echo "ok   $1 = $a (identical across runs)"
  else
    echo "FAIL $1 differs under churn: $a vs $b"
    fail=1
  fi
}

echo "== fig-churn: delta publication vs full recompile =="
check_min bench.churn.inline.updates_per_s 1
check_min bench.churn.sharded4.delta.updates_per_s 1
check_min bench.churn.sharded4.full.updates_per_s 1
check_min bench.churn.delta_speedup_4 10

echo "== Table 3 unchanged by the delta machinery =="
check_same bench.table3.best_effort.cycles
check_same bench.table3.plugins_3gates.cycles
check_same bench.table3.monolithic_drr.cycles
check_same bench.table3.plugins_drr.cycles

exit $fail
