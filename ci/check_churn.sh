#!/bin/sh
# Control-plane churn gate, run by CI after
#   dune exec bench/main.exe -- fig-churn table3 --metrics-out churn.json
#   dune exec bench/main.exe -- table3 --metrics-out table3-a.json
#
# Two checks:
#
#   1. Delta publication must sustain >= 10x the full-recompile filter
#      update rate with 4 shards syncing and 512 background filters
#      installed.  The rates come from synchronous Shard.sync calls on
#      one domain, so the gate holds regardless of how many hardware
#      cores the CI runner exposes.
#
#   2. The Table-3 per-packet cycle figures from the churn run must be
#      byte-identical to a standalone Table-3 run: the delta machinery
#      (AIU mutation listeners, per-gate generation stamps, lazy flow
#      revalidation) must not perturb the data-path cost model at all.
#
# The metrics files are rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

churn="${1:-churn.json}"
base="${2:-table3-a.json}"
require_files "$churn" "$base"

echo "== fig-churn: delta publication vs full recompile =="
check_min "$churn" bench.churn.inline.updates_per_s 1
check_min "$churn" bench.churn.sharded4.delta.updates_per_s 1
check_min "$churn" bench.churn.sharded4.full.updates_per_s 1
check_min "$churn" bench.churn.delta_speedup_4 10

echo "== Table 3 unchanged by the delta machinery =="
check_same "$churn" "$base" bench.table3.best_effort.cycles
check_same "$churn" "$base" bench.table3.plugins_3gates.cycles
check_same "$churn" "$base" bench.table3.monolithic_drr.cycles
check_same "$churn" "$base" bench.table3.plugins_drr.cycles

exit $fail
