#!/bin/sh
# Compiled cross-gate classifier gate, run by CI after
#   dune exec bench/main.exe -- fig-coldstart table3 --metrics-out coldstart.json
#   dune exec bench/main.exe -- table3 --metrics-out table3-a.json
#
# Three checks:
#
#   1. Compiled cold starts must charge strictly fewer memory accesses
#      per flow-cache miss than per-gate mode, on both the inline
#      engine and sharded:4 — the point of compiling the union of the
#      gates' filter tables is one traversal instead of n DAG walks.
#      The full-walk floors make sure the bench actually exercised
#      cold starts rather than dividing zero by zero.
#
#   2. Gate-count independence: with identical filter tables installed
#      at every gate, the compiled walk's access count must be
#      byte-identical at 2 and 8 gates (the structure's shape does not
#      depend on how many gates share it), while per-gate's must grow.
#
#   3. Per-gate mode stays the default and its cost model is
#      untouched: the Table-3 per-packet cycle figures from the
#      fig-coldstart run must be byte-identical to a standalone
#      Table-3 run — merely maintaining the compiled structure must
#      not perturb the paper's numbers.
#
# The metrics files are rp-metrics JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

cold="${1:-coldstart.json}"
base="${2:-table3-a.json}"
require_files "$cold" "$base"

echo "== fig-coldstart: compiled cold starts below per-gate =="
check_lt "$cold" bench.fig_coldstart.inline.compiled.cold_accesses_per_walk \
  bench.fig_coldstart.inline.pergate.cold_accesses_per_walk
check_lt "$cold" bench.fig_coldstart.sharded4.compiled.cold_accesses_per_walk \
  bench.fig_coldstart.sharded4.pergate.cold_accesses_per_walk
check_min "$cold" bench.fig_coldstart.inline.pergate.full_walks 4000
check_min "$cold" bench.fig_coldstart.inline.compiled.full_walks 4000
check_min "$cold" bench.fig_coldstart.sharded4.pergate.full_walks 4000
check_min "$cold" bench.fig_coldstart.sharded4.compiled.full_walks 4000

echo "== fig-coldstart: compiled accesses independent of gate count =="
check_eq "$cold" bench.fig_coldstart.micro.compiled_g2 \
  bench.fig_coldstart.micro.compiled_g8
check_lt "$cold" bench.fig_coldstart.micro.pergate_g2 \
  bench.fig_coldstart.micro.pergate_g8

echo "== Table 3 unchanged with the compiled structure maintained =="
check_same "$cold" "$base" bench.table3.best_effort.cycles
check_same "$cold" "$base" bench.table3.plugins_3gates.cycles
check_same "$cold" "$base" bench.table3.monolithic_drr.cycles
check_same "$cold" "$base" bench.table3.plugins_drr.cycles

exit $fail
