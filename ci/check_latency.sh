#!/bin/sh
# Latency-SLO gate, run by CI after
#   dune exec bench/main.exe -- fig-latency --metrics-out latency.json
#   dune exec bin/rp_router.exe -- --seconds 0.5 --slo 8000 --prom-out prom.txt
#
# Four checks:
#
#   1. p99 model-cycle latency bounds on the cached 3-gate workload,
#      inline and sharded:4 (the bench paces sharded submission so
#      worker batches stay at one packet and the spans are
#      comparable).  Latency is model cycles — byte-stable across
#      machines — so the bound catches real data-path regressions,
#      not host noise.
#
#   2. Breach exemplars resolve: with a threshold armed, every
#      retained exemplar carries a flow key and a per-gate cycle
#      breakdown (bench.latency.exemplars counts only resolvable
#      ones).
#
#   3. Table-3 byte-identity: the same fixed workload charges exactly
#      the same cycles with SLO stamping on and off — the SLO layer
#      only reads the cost-model clock, never charges it.
#
#   4. The Prometheus text exposition rp_router wrote lints clean
#      (prom_lint checks name/value syntax, TYPE coverage, cumulative
#      bucket monotonicity, +Inf presence, _count agreement).
#
# The metrics files are rp-metrics JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

latency="${1:-latency.json}"
prom="${2:-prom.txt}"
require_files "$latency" "$prom"

echo "== fig-latency: p99 model-cycle latency bounds =="
check_min "$latency" bench.latency.inline.p50 1
check_max "$latency" bench.latency.inline.p99 12000
check_max "$latency" bench.latency.sharded4.max_p99 12000
check_min "$latency" bench.latency.sharded4.shards 2

echo "== breach exemplars resolve to flow key + gate breakdown =="
check_min "$latency" bench.latency.exemplars 1

echo "== Table-3 byte-identity with SLO stamping on vs off =="
check_eq "$latency" bench.latency.t3_on_cycles bench.latency.t3_off_cycles

echo "== Prometheus exposition lints clean =="
if dune exec bin/prom_lint.exe -- "$prom"; then
  echo "ok   $prom passes prom_lint"
else
  echo "FAIL $prom fails prom_lint"
  fail=1
fi

exit $fail
