#!/bin/sh
# Session-subsystem gate, run by CI after
#   dune exec bench/main.exe -- fig-session table3 --metrics-out session.json
#   dune exec bench/main.exe -- table3 --metrics-out table3-a.json
#   dune exec bin/session_soak.exe        (writes session-soak.json)
#
# Three checks:
#
#   1. One-hit steady state: with the session cache on, NAT rewrite +
#      conntrack verdict + QoS class + cached next-hop together ride
#      on at most ONE charged memory access per packet over the bare
#      FIX fast path (in practice the total is lower — the cached
#      next-hop saves the LPM walk), with ZERO steady-state
#      session-table lookups (the soft pointer serves every packet),
#      and strictly cheaper than the naive cache=off layering where
#      every session gate pays a full table lookup.
#
#   2. The soak's invariants: exact packet AND byte reconciliation in
#      both directions under conntrack bind churn and NAT quarantine
#      flaps, on the inline engine and on sharded:4, every offered
#      packet forwarded, and the two modes' per-packet outcome
#      sequences byte-identical.
#
#   3. Table-3 byte-identity: the per-packet cycle figures must be
#      unchanged with the session subsystem compiled in but unbound —
#      sessions cost nothing until a session plugin is instantiated.
#
# The metrics files are rp-metrics JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

session="${1:-session.json}"
base="${2:-table3-a.json}"
soak="${3:-session-soak.json}"
require_files "$session" "$base" "$soak"

echo "== fig-session: one charged session access per steady packet =="
check_le_plus "$session" bench.fig_session.cached.steady_accesses_per_pkt \
  bench.fig_session.fix.steady_accesses_per_pkt 1
check_max "$session" bench.fig_session.cached.steady_table_lookups 0
check_lt "$session" bench.fig_session.cached.steady_accesses_per_pkt \
  bench.fig_session.nocache.steady_accesses_per_pkt
check_near "$session" bench.fig_session.cached.cached_hits_per_pkt 3 1

echo "== session soak: exact reconciliation, inline = sharded:4 =="
check_max "$soak" soak.session.inline.recon_error 0
check_max "$soak" soak.session.sharded4.recon_error 0
check_max "$soak" soak.session.mode_mismatch 0
check_min "$soak" soak.session.inline.offered 2000
check_eq "$soak" soak.session.inline.forwarded soak.session.inline.offered
check_eq "$soak" soak.session.sharded4.forwarded soak.session.sharded4.offered

echo "== Table 3 unchanged with sessions compiled in but unbound =="
check_same "$session" "$base" bench.table3.best_effort.cycles
check_same "$session" "$base" bench.table3.plugins_3gates.cycles
check_same "$session" "$base" bench.table3.monolithic_drr.cycles
check_same "$session" "$base" bench.table3.plugins_drr.cycles

exit $fail
