#!/bin/sh
# Multicore-scaling gate, run by CI after
#   dune exec bench/main.exe -- fig-shard --metrics-out shard.json
#
# Fails when the sharded engine's aggregate model throughput at
# 4 worker domains is less than 2x the single-domain figure on the
# classifier-heavy fig-shard workload.  The speedup is computed from
# the cycle model (busiest shard's charged cycles), so the gate holds
# regardless of how many hardware cores the CI runner exposes.
#
# The metrics file is rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu

file="${1:-shard.json}"
if [ ! -f "$file" ]; then
  echo "check_shard: $file not found" >&2
  exit 2
fi

fail=0

metric() {
  sed -n "s/^[[:space:]]*\"$1\": \([0-9][0-9.]*\),\{0,1\}[[:space:]]*$/\1/p" \
    "$file" | head -n1
}

# check_min NAME BOUND — fail when NAME is missing or below BOUND.
check_min() {
  v="$(metric "$1")"
  if [ -z "$v" ]; then
    echo "FAIL $1: missing from $file"
    fail=1
  elif awk "BEGIN { exit !($v >= $2) }"; then
    echo "ok   $1 = $v (floor $2)"
  else
    echo "FAIL $1 = $v below floor $2"
    fail=1
  fi
}

echo "== fig-shard: engine throughput scaling =="
check_min bench.fig_shard.domains1.mpps 0.001
check_min bench.fig_shard.domains4.mpps 0.001
check_min bench.fig_shard.speedup_4v1 2

exit $fail
