#!/bin/sh
# Multicore-scaling gate, run by CI after
#   dune exec bench/main.exe -- fig-shard --metrics-out shard.json
#
# Fails when the sharded engine's aggregate model throughput at
# 4 worker domains is less than 2x the single-domain figure on the
# classifier-heavy fig-shard workload.  The speedup is computed from
# the cycle model (busiest shard's charged cycles), so the gate holds
# regardless of how many hardware cores the CI runner exposes.
#
# The metrics file is rp-metrics/1 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

file="${1:-shard.json}"
require_files "$file"

echo "== fig-shard: engine throughput scaling =="
check_min "$file" bench.fig_shard.domains1.mpps 0.001
check_min "$file" bench.fig_shard.domains4.mpps 0.001
check_min "$file" bench.fig_shard.speedup_4v1 2

exit $fail
