#!/bin/sh
# Trace-overhead gate, run by CI as
#   dune exec bench/main.exe -- table3 --metrics-out table3-base.json
#   dune exec bench/main.exe -- table3 --trace-sample 1 --metrics-out table3-traced.json
#   ci/check_trace_overhead.sh table3-base.json table3-traced.json
#
# Fails when a tracing-enabled Table-3 run's per-packet model cycles
# exceed the untraced baseline by more than 5% on any kernel.  By
# design the telemetry layer never charges the cycle cost model, so
# the two runs should be byte-identical on these metrics — the gate
# exists to catch a future change that accidentally puts event
# recording inside the modeled path.
#
# The metrics files are rp-metrics/2 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

base="${1:-table3-base.json}"
traced="${2:-table3-traced.json}"
require_files "$base" "$traced"

echo "== Table 3 model cycles: traced (sampling 1-in-1) vs untraced =="
check_overhead "$base" "$traced" bench.table3.best_effort.cycles 5
check_overhead "$base" "$traced" bench.table3.plugins_3gates.cycles 5
check_overhead "$base" "$traced" bench.table3.monolithic_drr.cycles 5
check_overhead "$base" "$traced" bench.table3.plugins_drr.cycles 5

exit $fail
