#!/bin/sh
# Trace-overhead gate, run by CI as
#   dune exec bench/main.exe -- table3 --metrics-out table3-base.json
#   dune exec bench/main.exe -- table3 --trace-sample 1 --metrics-out table3-traced.json
#   ci/check_trace_overhead.sh table3-base.json table3-traced.json
#
# Fails when a tracing-enabled Table-3 run's per-packet model cycles
# exceed the untraced baseline by more than 5% on any kernel.  By
# design the telemetry layer never charges the cycle cost model, so
# the two runs should be byte-identical on these metrics — the gate
# exists to catch a future change that accidentally puts event
# recording inside the modeled path.
#
# The metrics files are rp-metrics/2 JSON, written one metric per line
# precisely so this script needs no JSON parser.
set -eu

base="${1:-table3-base.json}"
traced="${2:-table3-traced.json}"
for f in "$base" "$traced"; do
  if [ ! -f "$f" ]; then
    echo "check_trace_overhead: $f not found" >&2
    exit 2
  fi
done

fail=0

metric() {
  sed -n "s/^[[:space:]]*\"$2\": \([0-9][0-9.]*\),\{0,1\}[[:space:]]*$/\1/p" \
    "$1" | head -n1
}

# check_overhead NAME — fail when NAME is missing from either file or
# the traced value exceeds the baseline by more than 5%.
check_overhead() {
  b="$(metric "$base" "$1")"
  t="$(metric "$traced" "$1")"
  if [ -z "$b" ] || [ -z "$t" ]; then
    echo "FAIL $1: missing (base='$b' traced='$t')"
    fail=1
  elif awk "BEGIN { exit !($t <= $b * 1.05) }"; then
    echo "ok   $1: base $b, traced $t (<= 5% overhead)"
  else
    echo "FAIL $1: base $b, traced $t (> 5% overhead)"
    fail=1
  fi
}

echo "== Table 3 model cycles: traced (sampling 1-in-1) vs untraced =="
check_overhead bench.table3.best_effort.cycles
check_overhead bench.table3.plugins_3gates.cycles
check_overhead bench.table3.monolithic_drr.cycles
check_overhead bench.table3.plugins_drr.cycles

exit $fail
