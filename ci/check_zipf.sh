#!/bin/sh
# Million-flow Zipf long-haul gate, run by CI after
#   dune exec bench/main.exe -- fig-zipf table3 --metrics-out zipf.json
#   dune exec bench/main.exe -- table3 --metrics-out table3-a.json
#
# Four checks:
#
#   1. Scale: the soak must reach one million concurrent flows across
#      the four shards during the seed sweep AND sustain that full
#      population through minutes of simulated steady time with
#      continuous arrivals and expiry passes running — min_sustained
#      is sampled at every expiry pause, so a single dip fails the
#      gate.  Steady throughput (deterministic model Mpps per busiest
#      domain) has a pinned floor, flow-setup p99 a sanity band, and
#      the open-addressing probe length must stay far below anything
#      resembling a degenerate chain even at million-record load.
#
#   2. Churn really happened: Pareto-budgeted flows must retire (and
#      fresh ones arrive) in volume, and the 300 s-sim idle expiry
#      passes must actually cull retired flows — a soak where nothing
#      arrives or expires is not a long-haul test.
#
#   3. Exact accounting: export-side packet/byte totals reconcile
#      against the accounting-side counters to the packet (0 delta),
#      and every generated packet came back out of the engine.
#      The bounded-table insert storm must degrade by recycling at its
#      configured capacity, never by growing past it or failing.
#
#   4. The Table-3 per-packet cycle figures from the fig-zipf process
#      must be byte-identical to the standalone Table-3 run: the flat
#      table is a storage change, not a cost-model change.
set -eu
# shellcheck source=ci/lib.sh
. "$(dirname "$0")/lib.sh"

zipf="${1:-zipf.json}"
base="${2:-table3-a.json}"
require_files "$zipf" "$base"

echo "== fig-zipf: million-flow scale =="
check_min "$zipf" bench.fig_zipf.high_water_flows 1000000
check_min "$zipf" bench.fig_zipf.min_sustained_flows 1000000
check_min "$zipf" bench.fig_zipf.sim_seconds 120
check_min "$zipf" bench.fig_zipf.steady_mpps 0.05
check_min "$zipf" bench.fig_zipf.p99_setup_cycles 1000
check_max "$zipf" bench.fig_zipf.p99_setup_cycles 500000
check_max "$zipf" bench.fig_zipf.chain_max 128

echo "== fig-zipf: continuous arrival and expiry =="
check_min "$zipf" bench.fig_zipf.arrivals 1000
check_min "$zipf" bench.fig_zipf.expired 1000

echo "== fig-zipf: exact flow-record reconciliation =="
check_max "$zipf" bench.fig_zipf.recon_packets 0
check_min "$zipf" bench.fig_zipf.recon_packets 0
check_max "$zipf" bench.fig_zipf.recon_bytes 0
check_min "$zipf" bench.fig_zipf.recon_bytes 0
check_max "$zipf" bench.fig_zipf.lost_packets 0
check_min "$zipf" bench.fig_zipf.lost_packets 0

echo "== fig-zipf: bounded table degrades by recycling =="
check_min "$zipf" bench.fig_zipf.storm.capacity 65536
check_max "$zipf" bench.fig_zipf.storm.capacity 65536
check_min "$zipf" bench.fig_zipf.storm.recycled 1

echo "== Table 3 unchanged by the flat flow table =="
check_same "$zipf" "$base" bench.table3.best_effort.cycles
check_same "$zipf" "$base" bench.table3.plugins_3gates.cycles
check_same "$zipf" "$base" bench.table3.monolithic_drr.cycles
check_same "$zipf" "$base" bench.table3.plugins_drr.cycles

exit $fail
