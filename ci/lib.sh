# Shared helpers for the ci/check_*.sh gates, sourced with
#   . "$(dirname "$0")/lib.sh"
#
# The rp-metrics JSON files are written one metric per line precisely
# so these helpers need no JSON parser — a sed scrape is enough.  Each
# check_* prints one ok/FAIL line and sets fail=1 on failure; gate
# scripts finish with `exit $fail`.

fail=0

# metric FILE NAME — print NAME's value from FILE (empty when missing).
metric() {
  sed -n "s/^[[:space:]]*\"$2\": \([0-9][0-9.]*\),\{0,1\}[[:space:]]*$/\1/p" \
    "$1" | head -n1
}

# require_files FILE... — exit 2 when any input file is missing.
require_files() {
  for f in "$@"; do
    if [ ! -f "$f" ]; then
      echo "$(basename "$0"): $f not found" >&2
      exit 2
    fi
  done
}

# check_min FILE NAME FLOOR — fail when NAME is missing or below FLOOR.
check_min() {
  v="$(metric "$1" "$2")"
  if [ -z "$v" ]; then
    echo "FAIL $2: missing from $1"
    fail=1
  elif awk "BEGIN { exit !($v >= $3) }"; then
    echo "ok   $2 = $v (floor $3)"
  else
    echo "FAIL $2 = $v below floor $3"
    fail=1
  fi
}

# check_max FILE NAME BOUND — fail when NAME is missing or exceeds BOUND.
check_max() {
  v="$(metric "$1" "$2")"
  if [ -z "$v" ]; then
    echo "FAIL $2: missing from $1"
    fail=1
  elif awk "BEGIN { exit !($v <= $3) }"; then
    echo "ok   $2 = $v (bound $3)"
  else
    echo "FAIL $2 = $v exceeds bound $3"
    fail=1
  fi
}

# check_near FILE NAME EXPECTED TOL_PCT — fail when NAME is missing or
# more than TOL_PCT percent away from EXPECTED.
check_near() {
  v="$(metric "$1" "$2")"
  if [ -z "$v" ]; then
    echo "FAIL $2: missing from $1"
    fail=1
  elif awk "BEGIN { d = ($v - $3) / $3; if (d < 0) d = -d; \
                    exit !(d <= $4 / 100) }"; then
    echo "ok   $2 = $v (expected $3 within $4%)"
  else
    echo "FAIL $2 = $v outside $3 +/- $4%"
    fail=1
  fi
}

# check_same FILE_A FILE_B NAME — fail unless NAME is present and
# byte-identical in both metrics files.
check_same() {
  a="$(metric "$1" "$3")"
  b="$(metric "$2" "$3")"
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "FAIL $3: missing ('$a' vs '$b')"
    fail=1
  elif [ "$a" = "$b" ]; then
    echo "ok   $3 = $a (identical across runs)"
  else
    echo "FAIL $3 differs: $a vs $b"
    fail=1
  fi
}

# check_lt FILE NAME_A NAME_B — fail unless NAME_A is strictly below
# NAME_B, both read from the same FILE.
check_lt() {
  a="$(metric "$1" "$2")"
  b="$(metric "$1" "$3")"
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "FAIL $2 < $3: missing ('$a' vs '$b')"
    fail=1
  elif awk "BEGIN { exit !($a < $b) }"; then
    echo "ok   $2 = $a below $3 = $b"
  else
    echo "FAIL $2 = $a not below $3 = $b"
    fail=1
  fi
}

# check_le_plus FILE NAME_A NAME_B CONST — fail unless NAME_A is at
# most NAME_B + CONST, both metrics read from the same FILE.
check_le_plus() {
  a="$(metric "$1" "$2")"
  b="$(metric "$1" "$3")"
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "FAIL $2 <= $3 + $4: missing ('$a' vs '$b')"
    fail=1
  elif awk "BEGIN { exit !($a <= $b + $4) }"; then
    echo "ok   $2 = $a within $3 = $b plus $4"
  else
    echo "FAIL $2 = $a exceeds $3 = $b plus $4"
    fail=1
  fi
}

# check_eq FILE NAME_A NAME_B — fail unless both metrics are present
# in FILE and byte-identical.
check_eq() {
  a="$(metric "$1" "$2")"
  b="$(metric "$1" "$3")"
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "FAIL $2 = $3: missing ('$a' vs '$b')"
    fail=1
  elif [ "$a" = "$b" ]; then
    echo "ok   $2 = $3 = $a"
  else
    echo "FAIL $2 = $a differs from $3 = $b"
    fail=1
  fi
}

# check_overhead FILE_BASE FILE_OTHER NAME PCT — fail when NAME is
# missing from either file or FILE_OTHER's value exceeds FILE_BASE's
# by more than PCT percent.
check_overhead() {
  b="$(metric "$1" "$3")"
  t="$(metric "$2" "$3")"
  if [ -z "$b" ] || [ -z "$t" ]; then
    echo "FAIL $3: missing (base='$b' other='$t')"
    fail=1
  elif awk "BEGIN { exit !($t <= $b * (1 + $4 / 100)) }"; then
    echo "ok   $3: base $b, other $t (<= $4% overhead)"
  else
    echo "FAIL $3: base $b, other $t (> $4% overhead)"
    fail=1
  fi
}
