open Rp_pkt

type 'a t = {
  n_gates : int;
  tables : 'a Dag.t array;
  flows : 'a Flow_table.t;
}

let create ?engine ?buckets ?initial_records ?max_records ?on_evict ~gates () =
  if gates <= 0 then invalid_arg "Aiu.create: gates";
  {
    n_gates = gates;
    tables = Array.init gates (fun _ -> Dag.create ?engine ());
    flows =
      Flow_table.create ?buckets ?initial_records ?max_records ?on_evict
        ~gates ();
  }

let gates t = t.n_gates

let m_full_walks = Rp_obs.Registry.counter "aiu.full_walks"
let m_fix_hits = Rp_obs.Registry.counter "aiu.fix_hits"
let m_fix_stale = Rp_obs.Registry.counter "aiu.fix_stale"

let check_gate t gate =
  if gate < 0 || gate >= t.n_gates then invalid_arg "Aiu: gate out of range"

let bind t ~gate f v =
  check_gate t gate;
  Dag.insert t.tables.(gate) f v;
  (* Cached instance pointers may now be stale. *)
  Flow_table.flush t.flows

let unbind t ~gate f =
  check_gate t gate;
  Dag.remove t.tables.(gate) f;
  Flow_table.flush t.flows

let filter_table t ~gate =
  check_gate t gate;
  t.tables.(gate)

let flow_table t = t.flows

(* Uncached path: consult every gate's filter table once and cache the
   results in a fresh flow record. *)
let classify_miss t key ~now =
  Rp_obs.Counter.inc m_full_walks;
  let record = Flow_table.insert t.flows key ~now in
  for g = 0 to t.n_gates - 1 do
    match Dag.lookup t.tables.(g) key with
    | Some (filter, v) -> Flow_table.set_binding t.flows record ~gate:g ~filter v
    | None -> ()
  done;
  record

let instance_of record ~gate =
  match Flow_table.binding record ~gate with
  | Some b -> Some (b.Flow_table.instance, record)
  | None -> None

let classify_key t key ~gate ~now =
  check_gate t gate;
  let record =
    match Flow_table.lookup t.flows key ~now with
    | Some r -> r
    | None -> classify_miss t key ~now
  in
  instance_of record ~gate

let classify t mbuf ~gate ~now =
  check_gate t gate;
  let record =
    match mbuf.Mbuf.fix with
    | Some fix ->
      (match Flow_table.find_fix t.flows fix with
       | Some r ->
         Rp_obs.Counter.inc m_fix_hits;
         Some r
       | None ->
         (* Stale FIX (row recycled): drop it and reclassify. *)
         Rp_obs.Counter.inc m_fix_stale;
         mbuf.Mbuf.fix <- None;
         None)
    | None -> None
  in
  let record =
    match record with
    | Some r -> r
    | None ->
      let r =
        match Flow_table.lookup t.flows mbuf.Mbuf.key ~now with
        | Some r -> r
        | None -> classify_miss t mbuf.Mbuf.key ~now
      in
      mbuf.Mbuf.fix <- Some (Flow_table.fix_of_record r);
      r
  in
  instance_of record ~gate

let flush_flows t = Flow_table.flush t.flows
let expire_flows t ~now ~idle_ns = Flow_table.expire t.flows ~now ~idle_ns
