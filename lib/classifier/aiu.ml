open Rp_pkt

(* Control-path mutation events, published to an optional listener so
   a snapshot publisher (the multicore engine) can log them as deltas
   instead of re-reading the whole AIU. *)
type 'a event =
  | Bound of int * Filter.t * 'a
  | Unbound of int * Filter.t
  | Flushed

type mode =
  [ `Per_gate  (** cold start walks every gate's DAG — the paper's n
                   filter-table lookups *)
  | `Compiled  (** cold start takes one {!Compiled} traversal *) ]

type 'a t = {
  n_gates : int;
  tables : 'a Dag.t array;
  compiled : 'a Compiled.t;
  flows : 'a Flow_table.t;
  mutable mode : mode;
  mutable listener : ('a event -> unit) option;
}

let create ?engine ?buckets ?initial_records ?max_records ?on_evict ~gates () =
  if gates <= 0 then invalid_arg "Aiu.create: gates";
  {
    n_gates = gates;
    tables = Array.init gates (fun _ -> Dag.create ?engine ());
    compiled = Compiled.create ?engine ~gates ();
    flows =
      Flow_table.create ?buckets ?initial_records ?max_records ?on_evict
        ~gates ();
    mode = `Per_gate;
    listener = None;
  }

let gates t = t.n_gates
let mode t = t.mode

let mode_to_string = function
  | `Per_gate -> "pergate"
  | `Compiled -> "compiled"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "pergate" | "per-gate" | "per_gate" -> Ok `Per_gate
  | "compiled" -> Ok `Compiled
  | s -> Error (Printf.sprintf "unknown classifier mode %S (compiled | pergate)" s)

let set_mode t m =
  t.mode <- m;
  (* Entering compiled mode after churn: compile now, outside any
     measured data-path window. *)
  if m = `Compiled then Compiled.prepare t.compiled

let compiled t = t.compiled
let set_listener t fn = t.listener <- Some fn
let clear_listener t = t.listener <- None
let notify t ev = match t.listener with Some fn -> fn ev | None -> ()

let m_full_walks = Rp_obs.Registry.counter "aiu.full_walks"
let m_miss_accesses = Rp_obs.Registry.counter "aiu.miss_accesses"
let m_compiled_walks = Rp_obs.Registry.counter "aiu.compiled_walks"
let m_fix_hits = Rp_obs.Registry.counter "aiu.fix_hits"
let m_fix_stale = Rp_obs.Registry.counter "aiu.fix_stale"
let m_invalidated = Rp_obs.Registry.counter "aiu.invalidated"
let m_gate_bumps = Rp_obs.Registry.counter "aiu.gate_bumps"
let m_revalidations = Rp_obs.Registry.counter "aiu.revalidations"

let check_gate t gate =
  if gate < 0 || gate >= t.n_gates then invalid_arg "Aiu: gate out of range"

(* Selective invalidation: a filter change at one gate only concerns
   flows the filter could match, so instead of flushing the whole flow
   cache (which costs every unrelated flow its FIX fast path) evict
   exactly the matching records.  A filter with both addresses
   wildcarded can match almost anything — for those, bump the gate's
   generation in O(1) and let the data path revalidate cached bindings
   lazily, one DAG lookup per touched flow. *)
let addr_wild (f : Filter.t) =
  f.Filter.src.Prefix.len = 0 && f.Filter.dst.Prefix.len = 0

let invalidate_for t ~gate f =
  if addr_wild f then begin
    Flow_table.bump_gate t.flows ~gate;
    Rp_obs.Counter.inc m_gate_bumps
  end
  else
    Rp_obs.Counter.add m_invalidated
      (Flow_table.invalidate t.flows ~matches:(fun k -> Filter.matches f k))

(* Both classifier representations are maintained on every mutation:
   the per-gate DAGs stay the source of truth (revalidation, delta
   replay and introspection read them in either mode), while the
   compiled union only marks itself dirty — it recompiles lazily, so a
   burst of control-plane churn costs one compile. *)
let bind t ~gate f v =
  check_gate t gate;
  Dag.insert t.tables.(gate) f v;
  Compiled.bind t.compiled ~gate f v;
  (* Cached instance pointers for flows this filter matches may now be
     stale. *)
  invalidate_for t ~gate f;
  notify t (Bound (gate, f, v))

let unbind t ~gate f =
  check_gate t gate;
  Dag.remove t.tables.(gate) f;
  Compiled.unbind t.compiled ~gate f;
  invalidate_for t ~gate f;
  notify t (Unbound (gate, f))

let filter_table t ~gate =
  check_gate t gate;
  t.tables.(gate)

let flow_table t = t.flows

(* Uncached path: resolve every gate's binding once and cache the
   results in a fresh flow record.  Per-gate mode consults each gate's
   filter table (the paper's n lookups for n gates); compiled mode
   takes one {!Compiled} traversal whose leaf carries the full
   instance vector.  [aiu.miss_accesses] meters exactly this
   resolution cost, so cold-start accesses per walk are directly
   comparable across modes. *)
let classify_miss t key ~now =
  Rp_obs.Counter.inc m_full_walks;
  let record = Flow_table.insert t.flows key ~now in
  let (), accesses =
    Rp_lpm.Access.measure (fun () ->
        match t.mode with
        | `Compiled -> (
          Rp_obs.Counter.inc m_compiled_walks;
          match Compiled.lookup t.compiled key with
          | Some winners ->
            for g = 0 to t.n_gates - 1 do
              match winners.(g) with
              | Some (filter, v) ->
                Flow_table.set_binding t.flows record ~gate:g ~filter v
              | None -> ()
            done
          | None -> ())
        | `Per_gate ->
          for g = 0 to t.n_gates - 1 do
            match Dag.lookup t.tables.(g) key with
            | Some (filter, v) ->
              Flow_table.set_binding t.flows record ~gate:g ~filter v
            | None -> ()
          done)
  in
  Rp_obs.Counter.add m_miss_accesses accesses;
  record

let instance_of record ~gate =
  match Flow_table.binding record ~gate with
  | Some b -> Some (b.Flow_table.instance, record)
  | None -> None

(* Lazy revalidation after a gate-generation bump: re-resolve this
   record's binding at [gate] with one DAG lookup, then re-stamp it.
   Only runs for flows actually touched after a wildcard filter
   change; steady-state traffic never reaches it. *)
let revalidate t record ~gate =
  if Flow_table.gate_stale t.flows record ~gate then begin
    Flow_table.clear_binding t.flows record ~gate;
    (match Dag.lookup t.tables.(gate) (Flow_table.key record) with
     | Some (filter, v) -> Flow_table.set_binding t.flows record ~gate ~filter v
     | None -> ());
    Flow_table.revalidated t.flows record ~gate;
    Rp_obs.Counter.inc m_revalidations
  end

let classify_key t key ~gate ~now =
  check_gate t gate;
  let record =
    match Flow_table.lookup t.flows key ~now with
    | Some r -> r
    | None -> classify_miss t key ~now
  in
  revalidate t record ~gate;
  instance_of record ~gate

let classify t mbuf ~gate ~now =
  check_gate t gate;
  let record =
    match mbuf.Mbuf.fix with
    | Some fix ->
      (match Flow_table.find_fix t.flows fix with
       | Some r ->
         Rp_obs.Counter.inc m_fix_hits;
         Some r
       | None ->
         (* Stale FIX (row recycled): drop it and reclassify. *)
         Rp_obs.Counter.inc m_fix_stale;
         mbuf.Mbuf.fix <- None;
         None)
    | None -> None
  in
  let record =
    match record with
    | Some r -> r
    | None ->
      let r =
        match Flow_table.lookup t.flows mbuf.Mbuf.key ~now with
        | Some r -> r
        | None -> classify_miss t mbuf.Mbuf.key ~now
      in
      mbuf.Mbuf.fix <- Some (Flow_table.fix_of_record r);
      r
  in
  revalidate t record ~gate;
  instance_of record ~gate

let flush_flows t =
  Flow_table.flush t.flows;
  notify t Flushed
let expire_flows t ~now ~idle_ns = Flow_table.expire t.flows ~now ~idle_ns
