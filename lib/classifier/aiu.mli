(** The Association Identification Unit (paper, sections 3.2 and 5):
    packet classifier, flow cache, and the binding between filters and
    plugin instances.

    There is one filter table (a {!Dag.t}) per gate and a single shared
    flow table.  The data path is exactly the paper's:

    - a gate asks for the instance bound to the packet's flow;
    - if the packet carries a valid flow index (FIX), the record is
      dereferenced directly — an indirect call's worth of work;
    - else the flow table is probed by the five/six-tuple;
    - on a miss, {e every} gate's filter table is consulted once and a
      fresh flow record caching all the instance pointers is installed
      ("the processing of the first packet of a new flow with n gates
      involves n filter table lookups", section 3.2).

    Mutating a filter table invalidates {e selectively}: only flow
    records the changed filter could match are evicted (or, when the
    filter wildcards both addresses, the gate's generation is bumped
    and cached bindings revalidate lazily on next use), so unrelated
    flows keep their FIX fast path across control-plane churn. *)

open Rp_pkt

type 'a t

(** Control-path mutation event, reported to the optional listener —
    the multicore engine uses this to build snapshot delta logs. *)
type 'a event =
  | Bound of int * Filter.t * 'a  (** gate, filter, instance *)
  | Unbound of int * Filter.t
  | Flushed  (** whole flow cache flushed (e.g. routing change) *)

(** How a flow-cache miss resolves the per-gate instance vector.  Both
    representations are maintained on every bind/unbind; the mode only
    selects which one the cold-start path consults, so switching is
    O(1) (plus one lazy compile on first compiled-mode use) and always
    yields the same bindings (most specific filter per gate). *)
type mode =
  [ `Per_gate  (** one DAG walk per gate — the paper's cold start *)
  | `Compiled  (** one {!Compiled} traversal resolves every gate *) ]

val mode : 'a t -> mode

(** [set_mode t m] switches the cold-start resolution strategy.
    Cached flow records are untouched: both modes agree on bindings,
    so no invalidation is needed. *)
val set_mode : 'a t -> mode -> unit

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

(** The compiled cross-gate structure (introspection/benchmarks). *)
val compiled : 'a t -> 'a Compiled.t

(** [create ~gates ()] builds an AIU with [gates] filter tables.
    [engine] selects the BMP plugin used by the DAGs' address levels;
    flow-table sizing options are passed through to
    {!Flow_table.create}. *)
val create :
  ?engine:Rp_lpm.Engines.t -> ?buckets:int -> ?initial_records:int ->
  ?max_records:int -> ?on_evict:(gate:int -> 'a Flow_table.binding -> unit) ->
  gates:int -> unit -> 'a t

val gates : 'a t -> int

(** Control path: bind / unbind a filter to an instance at a gate. *)

val bind : 'a t -> gate:int -> Filter.t -> 'a -> unit
val unbind : 'a t -> gate:int -> Filter.t -> unit
val filter_table : 'a t -> gate:int -> 'a Dag.t
val flow_table : 'a t -> 'a Flow_table.t

(** [set_listener t fn] registers [fn] to observe every bind/unbind
    and flow-cache flush on this AIU (at most one listener). *)
val set_listener : 'a t -> ('a event -> unit) -> unit

val clear_listener : 'a t -> unit

(** Data path.  [classify t mbuf ~gate ~now] returns the record and the
    instance bound at [gate] for this packet's flow ([None] if no
    filter at that gate matches the flow).  Side effects: on a flow
    miss the flow record is created and populated for {e all} gates;
    the packet's FIX is set. *)
val classify :
  'a t -> Mbuf.t -> gate:int -> now:int64 ->
  ('a * 'a Flow_table.record) option

(** [classify_key] is [classify] for callers that have no mbuf (control
    plane, tests); no FIX caching happens. *)
val classify_key :
  'a t -> Flow_key.t -> gate:int -> now:int64 ->
  ('a * 'a Flow_table.record) option

(** [flush_flows t] empties the flow cache (e.g. after a routing
    change). *)
val flush_flows : 'a t -> unit

(** Periodic housekeeping: evict flows idle longer than [idle_ns]. *)
val expire_flows : 'a t -> now:int64 -> idle_ns:int64 -> int
