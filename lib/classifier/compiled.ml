open Rp_pkt

(* One (gate, filter, value) binding of the union.  [uid] is the
   hash-consing identity: subtree construction is memoized on the
   (level, residual uid set) pair, so equal residual sets — which is
   where cross-gate sharing happens, wildcard-heavy filters surviving
   down many paths — build one shared node. *)
type 'a entry = {
  uid : int;
  gate : int;
  filter : Filter.t;
  inst : 'a;
}

type 'a winners = (Filter.t * 'a) option array

(* Same closure trick as {!Dag.addr_matcher_of_engine}: the BMP engine
   module's type parameter is fixed at wrapper creation, letting a
   runtime-selected engine hold nodes of this structure.  Lookups feed
   the same per-engine meters as the DAG's, so Table-2 style engine
   accounting aggregates both classifiers. *)
type 'a addr_matcher = {
  am_insert : Prefix.t -> 'a -> unit;
  am_lookup : Ipaddr.t -> (Prefix.t * 'a) option;
}

let addr_matcher_of_engine (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  let m_lookups = Rp_obs.Registry.counter ("lpm." ^ E.name ^ ".lookups") in
  let m_accesses = Rp_obs.Registry.counter ("lpm." ^ E.name ^ ".accesses") in
  {
    am_insert = (fun p v -> E.insert t p v);
    am_lookup =
      (fun a ->
        Rp_obs.Counter.inc m_lookups;
        let r, accesses = Rp_lpm.Access.measure (fun () -> E.lookup t a) in
        Rp_obs.Counter.add m_accesses accesses;
        r);
  }

(* Decision nodes, one constructor per DAG level kind.  Levels where
   every residual filter is wildcarded are elided entirely (the FDD
   analogue of the DAG's wildcard-chain collapsing), except the source
   level: a lone v4 wildcard edge must still reject v6 keys, and the
   address matcher is what discriminates families. *)
type 'a node =
  | Leaf of 'a winners
  | Addr of { a_level : int; a_matcher : 'a node addr_matcher }
  | Ports of {
      p_level : int;
      intervals : (int * int * 'a node) array;  (* disjoint, sorted *)
      pwild : 'a node option;
    }
  | Exact of {
      x_level : int;
      table : (int, 'a node) Hashtbl.t;
      xwild : 'a node option;
    }

type 'a t = {
  engine : Rp_lpm.Engines.t;
  n_gates : int;
  mutable entries : 'a entry list;  (* newest first *)
  mutable next_uid : int;
  mutable root : 'a node;
  mutable dirty : bool;
  mutable nodes : int;  (* distinct nodes in the current build *)
  mutable shared : int;  (* memo hits in the last build *)
  mutable n_builds : int;
}

let n_levels = 6

let m_lookups = Rp_obs.Registry.counter "compiled.lookups"
let m_matches = Rp_obs.Registry.counter "compiled.matches"
let m_rebuilds = Rp_obs.Registry.counter "compiled.rebuilds"

let create ?(engine = Rp_lpm.Engines.patricia) ~gates () =
  if gates <= 0 then invalid_arg "Compiled.create: gates";
  {
    engine;
    n_gates = gates;
    entries = [];
    next_uid = 0;
    (* Placeholder; [dirty] forces the canonical (empty) build on
       first use, so an empty structure uniformly misses every key. *)
    root = Leaf (Array.make gates None);
    dirty = true;
    nodes = 0;
    shared = 0;
    n_builds = 0;
  }

let gates t = t.n_gates

(* --- field projections (same level order as {!Dag}) ----------------- *)

let addr_label (f : Filter.t) level =
  if level = 0 then f.Filter.src else f.Filter.dst

let addr_value (k : Flow_key.t) level =
  if level = 0 then k.Flow_key.src else k.Flow_key.dst

let port_label (f : Filter.t) level =
  if level = 3 then f.Filter.sport else f.Filter.dport

let port_value (k : Flow_key.t) level =
  if level = 3 then k.Flow_key.sport else k.Flow_key.dport

let exact_label (f : Filter.t) level =
  if level = 2 then f.Filter.proto else f.Filter.iface

let exact_value (k : Flow_key.t) level =
  if level = 2 then k.Flow_key.proto else k.Flow_key.iface

let wild_at level e =
  match level with
  | 0 | 1 -> Prefix.is_wildcard (addr_label e.filter level)
  | 2 | 5 -> exact_label e.filter level = Filter.Any_num
  | 3 | 4 -> port_label e.filter level = Filter.Any_port
  | _ -> assert false

(* --- control path ---------------------------------------------------- *)

let check_gate t gate =
  if gate < 0 || gate >= t.n_gates then
    invalid_arg "Compiled: gate out of range"

let bind t ~gate f v =
  check_gate t gate;
  t.entries <-
    { uid = t.next_uid; gate; filter = f; inst = v }
    :: List.filter
         (fun e -> not (e.gate = gate && Filter.equal e.filter f))
         t.entries;
  t.next_uid <- t.next_uid + 1;
  t.dirty <- true

let unbind t ~gate f =
  check_gate t gate;
  t.entries <-
    List.filter
      (fun e -> not (e.gate = gate && Filter.equal e.filter f))
      t.entries;
  t.dirty <- true

let clear t =
  t.entries <- [];
  t.dirty <- true

let length t = List.length t.entries
let node_count t = t.nodes
let shared_count t = t.shared
let builds t = t.n_builds

(* --- compilation ------------------------------------------------------ *)

(* Top-down set-pruning build over the residual entry set.  Every
   subset is taken with [List.filter] from the canonically (uid-)
   sorted parent list, so equal subsets produce equal memo keys. *)
let rebuild_inner t =
  t.n_builds <- t.n_builds + 1;
  Rp_obs.Counter.inc m_rebuilds;
  t.nodes <- 0;
  t.shared <- 0;
  let memo : (string, 'a node) Hashtbl.t = Hashtbl.create 256 in
  let all = List.sort (fun a b -> Int.compare a.uid b.uid) t.entries in
  let key_of level es =
    let b = Buffer.create 64 in
    Buffer.add_string b (string_of_int level);
    List.iter
      (fun e ->
        Buffer.add_char b ',';
        Buffer.add_string b (string_of_int e.uid))
      es;
    Buffer.contents b
  in
  let rec build level es =
    if level < n_levels && level > 0 && es <> []
       && List.for_all (wild_at level) es
    then build (level + 1) es  (* elide an all-wildcard level *)
    else begin
      let k = key_of level es in
      match Hashtbl.find_opt memo k with
      | Some n ->
        t.shared <- t.shared + 1;
        n
      | None ->
        let n = make level es in
        Hashtbl.add memo k n;
        t.nodes <- t.nodes + 1;
        n
    end
  and make level es =
    if level >= n_levels then begin
      (* Leaf: per-gate most specific entry.  [compare_specificity]
         is total with structural tie-break, and one gate never holds
         two structurally equal filters, so the winner is unique —
         independent of insertion order, matching the DAG's leaf. *)
      let w = Array.make t.n_gates None in
      List.iter
        (fun e ->
          match w.(e.gate) with
          | Some (g, _) when Filter.compare_specificity e.filter g <= 0 -> ()
          | Some _ | None -> w.(e.gate) <- Some (e.filter, e.inst))
        es;
      Leaf w
    end
    else
      match level with
      | 0 | 1 ->
        (* Edges are the distinct labels; edge [p] carries every entry
           whose label subsumes [p] (labels matching one address form
           a chain, so following the longest matching edge keeps all
           shorter matching labels reachable — set pruning). *)
        let labels =
          List.sort_uniq Prefix.compare
            (List.map (fun e -> addr_label e.filter level) es)
        in
        let am = addr_matcher_of_engine t.engine () in
        List.iter
          (fun p ->
            let subset =
              List.filter
                (fun e -> Prefix.subsumes (addr_label e.filter level) p)
                es
            in
            am.am_insert p (build (level + 1) subset))
          labels;
        Addr { a_level = level; a_matcher = am }
      | 2 | 5 ->
        let wilds = List.filter (wild_at level) es in
        let nums =
          List.sort_uniq Int.compare
            (List.filter_map
               (fun e ->
                 match exact_label e.filter level with
                 | Filter.Num n -> Some n
                 | Filter.Any_num -> None)
               es)
        in
        let table = Hashtbl.create (max 8 (List.length nums)) in
        List.iter
          (fun n ->
            let subset =
              List.filter
                (fun e ->
                  match exact_label e.filter level with
                  | Filter.Any_num -> true
                  | Filter.Num m -> m = n)
                es
            in
            Hashtbl.replace table n (build (level + 1) subset))
          nums;
        let xwild =
          if wilds = [] then None else Some (build (level + 1) wilds)
        in
        Exact { x_level = level; table; xwild }
      | 3 | 4 ->
        (* Elementary disjoint intervals from the range endpoints; an
           interval exists only where at least one ranged entry covers
           it, so values in the gaps fall through to the wildcard
           child — the same reachability as the DAG's incremental
           splitting produces. *)
        let wilds = List.filter (wild_at level) es in
        let bounds_of e =
          match port_label e.filter level with
          | Filter.Port q -> Some (q, q)
          | Filter.Port_range (lo, hi) -> Some (lo, hi)
          | Filter.Any_port -> None
        in
        let ranged = List.filter_map bounds_of es in
        let cuts =
          List.sort_uniq Int.compare
            (List.concat_map (fun (lo, hi) -> [ lo; hi + 1 ]) ranged)
        in
        let rec elementary = function
          | a :: (b :: _ as rest) -> (a, b - 1) :: elementary rest
          | [ _ ] | [] -> []
        in
        let covered (a, b) =
          List.exists (fun (lo, hi) -> lo <= a && b <= hi) ranged
        in
        let intervals =
          List.filter covered (elementary cuts)
          |> List.map (fun (a, b) ->
                 let subset =
                   List.filter
                     (fun e ->
                       match bounds_of e with
                       | None -> true  (* wildcard: reachable everywhere *)
                       | Some (lo, hi) -> lo <= a && b <= hi)
                     es
                 in
                 (a, b, build (level + 1) subset))
          |> Array.of_list
        in
        let pwild =
          if wilds = [] then None else Some (build (level + 1) wilds)
        in
        Ports { p_level = level; intervals; pwild }
      | _ -> assert false
  in
  t.root <- build 0 all

(* Compile-time accesses (engine inserts) must not leak into the data
   path's meter — cancel whatever the build charged. *)
let rebuild t =
  let (), charged = Rp_lpm.Access.measure (fun () -> rebuild_inner t) in
  if charged <> 0 then Rp_lpm.Access.charge (-charged);
  t.dirty <- false

let prepare t = if t.dirty then rebuild t

(* --- lookup ----------------------------------------------------------- *)

(* Charges mirror {!Dag.lookup} exactly — 2 up front for the BMP/hash
   function pointers, the engine's own charges plus 1 edge per address
   level, 1 probe plus 1 edge per port level, 1 edge per exact level —
   so one compiled traversal accounts like one per-gate walk. *)
let lookup t key =
  if t.dirty then rebuild t;
  Rp_obs.Counter.inc m_lookups;
  Rp_lpm.Access.charge 2;
  let rec walk node =
    match node with
    | Leaf w ->
      Rp_obs.Counter.inc m_matches;
      Some w
    | Addr a -> (
        match a.a_matcher.am_lookup (addr_value key a.a_level) with
        | Some (_, child) ->
          Rp_lpm.Access.charge 1;
          walk child
        | None -> None)
    | Ports p -> (
        Rp_lpm.Access.charge 1;
        let v = port_value key p.p_level in
        let n = Array.length p.intervals in
        let rec find i =
          if i >= n then p.pwild
          else
            let a, b, c = p.intervals.(i) in
            if v < a then p.pwild else if v <= b then Some c else find (i + 1)
        in
        match find 0 with
        | Some child ->
          Rp_lpm.Access.charge 1;
          walk child
        | None -> None)
    | Exact e -> (
        let v = exact_value key e.x_level in
        let child =
          match Hashtbl.find_opt e.table v with
          | Some _ as c -> c
          | None -> e.xwild
        in
        match child with
        | Some child ->
          Rp_lpm.Access.charge 1;
          walk child
        | None -> None)
  in
  walk t.root
