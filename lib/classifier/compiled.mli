(** Cross-gate compiled classifier: one decision structure for the
    union of {e all} gates' filter tables.

    The per-gate {!Dag} tables charge a cold-start packet one full
    walk per gate — n filter-table lookups for n gates (paper, section
    3.2).  This module compiles the union of every gate's bindings
    into a single FDD-style decision structure (in the mold of the
    NetKAT compiler's forwarding decision diagrams): nodes test the
    six flow-key fields in the same fixed order as the DAG levels,
    equal residual filter sets share one hash-consed subtree, and each
    leaf carries the {e full per-gate winner vector}.  A cold-start
    lookup then resolves every gate in one traversal, so its memory
    accesses are independent of the gate count.

    The structure is rebuilt lazily: {!bind}/{!unbind} only update the
    union list and mark it dirty, and the next {!lookup} (or
    {!prepare}) recompiles — so a burst of control-plane deltas is
    coalesced into one compile.  Compile-time memory accesses are
    never charged to the {!Rp_lpm.Access} meter; lookups charge
    exactly like one {!Dag.lookup} (2 for the function pointers, 1 per
    edge, 1 per port-level probe, plus the BMP engine's own charges),
    so compiled and per-gate cold starts are directly comparable. *)

open Rp_pkt

type 'a t

(** Per-gate resolution: [winners.(g)] is the most specific filter
    bound at gate [g] matching the looked-up key, with its value. *)
type 'a winners = (Filter.t * 'a) option array

(** [create ~gates ()] — [engine] selects the BMP plugin used by the
    address levels (default PATRICIA, as in {!Dag.create}). *)
val create : ?engine:Rp_lpm.Engines.t -> gates:int -> unit -> 'a t

val gates : 'a t -> int

(** [bind t ~gate f v] adds [f -> v] to gate [gate]'s slice of the
    union, replacing a structurally equal filter at that gate.
    O(installed filters); the compiled structure is only marked
    dirty. *)
val bind : 'a t -> gate:int -> Filter.t -> 'a -> unit

(** [unbind t ~gate f] removes the filter structurally equal to [f]
    from gate [gate]'s slice. *)
val unbind : 'a t -> gate:int -> Filter.t -> unit

val clear : 'a t -> unit

(** [lookup t k] resolves every gate's most specific match for [k] in
    one traversal; [None] when no gate has a matching filter.  The
    returned vector is owned by the structure — read it before the
    next mutation, don't stash it. *)
val lookup : 'a t -> Flow_key.t -> 'a winners option

(** [prepare t] forces the lazy recompile now (e.g. before a
    measurement window), so the next lookup pays no compile. *)
val prepare : 'a t -> unit

(** Number of installed (gate, filter) bindings. *)
val length : 'a t -> int

(** Distinct nodes in the current compiled structure (after sharing). *)
val node_count : 'a t -> int

(** Subtree constructions avoided by hash-consing in the last
    compile. *)
val shared_count : 'a t -> int

(** Compiles performed since [create]. *)
val builds : 'a t -> int
