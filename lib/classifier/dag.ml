open Rp_pkt

(* Address-level matcher: a BMP engine instance wrapped in closures so
   a runtime-selected engine can hold nodes of this DAG (the engine's
   type parameter is fixed at wrapper-creation time). *)
type 'a addr_matcher = {
  am_name : string;
  am_insert : Prefix.t -> 'a -> unit;
  am_find : Prefix.t -> 'a option;
  am_lookup : Ipaddr.t -> (Prefix.t * 'a) option;
  am_iter : (Prefix.t -> 'a -> unit) -> unit;
}

module Prefix_tbl = Hashtbl.Make (struct
  type t = Prefix.t

  let equal = Prefix.equal
  let hash = Prefix.hash
end)

module Filter_tbl = Hashtbl.Make (struct
  type t = Filter.t

  let equal = Filter.equal
  let hash = Filter.hash
end)

let addr_matcher_of_engine (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  (* Per-engine meters: every address lookup through this wrapper
     counts once, and its [Access]-metered memory accesses are
     attributed to the engine by name. *)
  let m_lookups = Rp_obs.Registry.counter ("lpm." ^ E.name ^ ".lookups") in
  let m_accesses = Rp_obs.Registry.counter ("lpm." ^ E.name ^ ".accesses") in
  {
    am_name = E.name;
    am_insert = (fun p v -> E.insert t p v);
    am_find = (fun p -> E.find_exact t p);
    am_lookup =
      (fun a ->
        Rp_obs.Counter.inc m_lookups;
        let r, accesses = Rp_lpm.Access.measure (fun () -> E.lookup t a) in
        Rp_obs.Counter.add m_accesses accesses;
        r);
    am_iter = (fun f -> E.iter f t);
  }

type 'a node = {
  level : int;
  (* Every filter inserted into this subtree; used to seed newly
     created sibling-subsuming edges (set pruning) and to copy
     subtrees when a port interval is split. *)
  mutable filters : (Filter.t * 'a) list;
  mutable kids : 'a kids;
  (* Wildcard-chain collapsing (paper, section 5.1.2): when this node's
     only edge is the wildcard — and so on transitively — [skip] jumps
     straight to the end of the chain, costing one access instead of
     one per level.  Set by {!optimize}; cleared by inserts. *)
  mutable skip : 'a node option;
}

and 'a kids =
  | Leaf of 'a leaf
  | Addr of 'a addr
  | Ports of 'a ports
  | Exact of 'a exact

and 'a leaf = { mutable best : (Filter.t * 'a) option }

(* An address level keeps two indexes over the same edges: the
   pluggable BMP engine (charged on the lookup path) and a PATRICIA
   used for the structural queries set-pruning insertion needs
   (ancestor labels for seeding, descendant labels for replication) in
   O(path + matches) instead of O(filters). *)
and 'a addr = {
  matcher : 'a node addr_matcher;
  structure : 'a node Rp_lpm.Patricia.t;
  label_filters : (Filter.t * 'a) list ref Prefix_tbl.t;
      (** filters inserted at this node, grouped by their label *)
}

and 'a ports = {
  (* Disjoint, sorted by lower bound. *)
  mutable intervals : (int * int * 'a node) list;
  mutable wild : 'a node option;
  mutable pwild_filters : (Filter.t * 'a) list;
      (** filters with a wildcard port label at this node *)
}

and 'a exact = {
  table : (int, 'a node) Hashtbl.t;
  mutable ewild : 'a node option;
  mutable xwild_filters : (Filter.t * 'a) list;
}

type 'a t = {
  engine : Rp_lpm.Engines.t;
  nodes : int ref;
  mutable root : 'a node;
  mutable installed : (Filter.t * 'a) list;
  installed_tbl : 'a Filter_tbl.t;  (** same contents, O(1) membership *)
}

let n_levels = 6

(* Lookup-path meters, mirroring the Table-2 decomposition: per-level
   accesses spent inside each level's index structure, plus the edge
   follows between levels.  These observe the same [Access] meter the
   cost model reads; they never charge it. *)
let level_names = [| "src"; "dst"; "proto"; "sport"; "dport"; "iface" |]

let m_level_accesses =
  Array.init n_levels (fun i ->
      Rp_obs.Registry.counter ("dag.level." ^ level_names.(i) ^ ".accesses"))

let m_lookups = Rp_obs.Registry.counter "dag.lookups"
let m_matches = Rp_obs.Registry.counter "dag.matches"
let m_edges = Rp_obs.Registry.counter "dag.edge_accesses"
let m_skips = Rp_obs.Registry.counter "dag.skip_jumps"

let mk_node engine nodes level =
  incr nodes;
  let kids =
    if level >= n_levels then Leaf { best = None }
    else
      match level with
      | 0 | 1 ->
        Addr
          {
            matcher = addr_matcher_of_engine engine ();
            structure = Rp_lpm.Patricia.create ();
            label_filters = Prefix_tbl.create 8;
          }
      | 2 | 5 -> Exact { table = Hashtbl.create 8; ewild = None; xwild_filters = [] }
      | 3 | 4 -> Ports { intervals = []; wild = None; pwild_filters = [] }
      | _ -> assert false
  in
  { level; filters = []; kids; skip = None }

let new_node t level = mk_node t.engine t.nodes level

let create ?(engine = Rp_lpm.Engines.patricia) () =
  let nodes = ref 0 in
  {
    engine;
    nodes;
    root = mk_node engine nodes 0;
    installed = [];
    installed_tbl = Filter_tbl.create 64;
  }

let engine_name t =
  let module E = (val t.engine : Rp_lpm.Lpm_intf.S) in
  E.name

(* --- field projections --------------------------------------------- *)

let addr_label (f : Filter.t) level =
  if level = 0 then f.Filter.src else f.Filter.dst

let addr_value (k : Flow_key.t) level =
  if level = 0 then k.Flow_key.src else k.Flow_key.dst

let port_label (f : Filter.t) level =
  if level = 3 then f.Filter.sport else f.Filter.dport

let port_value (k : Flow_key.t) level =
  if level = 3 then k.Flow_key.sport else k.Flow_key.dport

let exact_label (f : Filter.t) level =
  if level = 2 then f.Filter.proto else f.Filter.iface

let exact_value (k : Flow_key.t) level =
  if level = 2 then k.Flow_key.proto else k.Flow_key.iface

(* --- insertion (set pruning) --------------------------------------- *)

let more_specific (f : Filter.t) (g : Filter.t) = Filter.compare_specificity f g > 0

let rec insert_into t node ((f, _v) as fv) =
  node.filters <- fv :: node.filters;
  node.skip <- None;
  match node.kids with
  | Leaf l ->
    (match l.best with
     | Some (g, _) when not (more_specific f g) -> ()
     | Some _ | None -> l.best <- Some fv)
  | Addr a -> insert_addr t a node.level fv
  | Ports p -> insert_ports t p node.level fv
  | Exact e -> insert_exact t e node.level fv

and make_child t level seeds =
  let child = new_node t level in
  List.iter (fun gv -> insert_into t child gv) seeds;
  child

and insert_addr t a level ((f, _) as fv) =
  let lab = addr_label f level in
  let child =
    match a.matcher.am_find lab with
    | Some c -> c
    | None ->
      (* Seed the new edge with every filter whose label subsumes it:
         those filters must remain reachable when a lookup follows
         this more specific edge.  Candidate labels are exactly the
         ancestors of [lab] among existing edge labels. *)
      let seeds =
        Rp_lpm.Patricia.fold_ancestors a.structure lab
          (fun p _child acc ->
            match Prefix_tbl.find_opt a.label_filters p with
            | Some l -> List.rev_append !l acc
            | None -> acc)
          []
      in
      let c = make_child t (level + 1) seeds in
      a.matcher.am_insert lab c;
      Rp_lpm.Patricia.insert a.structure lab c;
      c
  in
  (match Prefix_tbl.find_opt a.label_filters lab with
   | Some l -> l := fv :: !l
   | None -> Prefix_tbl.add a.label_filters lab (ref [ fv ]));
  insert_into t child fv;
  (* Replicate into every strictly more specific existing edge
     (descendant labels of [lab]). *)
  Rp_lpm.Patricia.iter_subtree a.structure lab (fun p c ->
      if not (Prefix.equal p lab) then insert_into t c fv)

and insert_exact t e level ((f, _) as fv) =
  match exact_label f level with
  | Filter.Any_num ->
    let child =
      match e.ewild with
      | Some c -> c
      | None ->
        let c = make_child t (level + 1) (List.rev e.xwild_filters) in
        e.ewild <- Some c;
        c
    in
    e.xwild_filters <- fv :: e.xwild_filters;
    insert_into t child fv;
    Hashtbl.iter (fun _ c -> insert_into t c fv) e.table
  | Filter.Num n ->
    let child =
      match Hashtbl.find_opt e.table n with
      | Some c -> c
      | None ->
        (* Only wildcard labels subsume an exact label. *)
        let c = make_child t (level + 1) (List.rev e.xwild_filters) in
        Hashtbl.add e.table n c;
        c
    in
    insert_into t child fv

and insert_ports t p level ((f, _) as fv) =
  match port_label f level with
  | Filter.Any_port ->
    let child =
      match p.wild with
      | Some c -> c
      | None ->
        let c = make_child t (level + 1) (List.rev p.pwild_filters) in
        p.wild <- Some c;
        c
    in
    p.pwild_filters <- fv :: p.pwild_filters;
    insert_into t child fv;
    List.iter (fun (_, _, c) -> insert_into t c fv) p.intervals
  | Filter.Port q -> insert_port_range t p level fv q q
  | Filter.Port_range (lo, hi) -> insert_port_range t p level fv lo hi

(* Maintain the disjoint-interval decomposition: split any existing
   interval that partially overlaps [lo, hi] (copying its subtree into
   each piece), create elementary edges for the uncovered gaps (seeded
   from wildcard-port filters), then insert the filter into every
   interval inside [lo, hi]. *)
and insert_port_range t p level fv lo hi =
  (* Rebuild a subtree identical to [c] at the same level. *)
  let copy_subtree c =
    let fresh = new_node t c.level in
    List.iter (fun gv -> insert_into t fresh gv) (List.rev c.filters);
    fresh
  in
  let split =
    List.concat_map
      (fun (a, b, c) ->
        if b < lo || a > hi then [ (a, b, c) ]
        else begin
          (* Pieces strictly before, inside, and after [lo, hi]. *)
          let pieces = ref [] in
          if a < lo then pieces := (a, lo - 1) :: !pieces;
          pieces := (max a lo, min b hi) :: !pieces;
          if b > hi then pieces := (hi + 1, b) :: !pieces;
          match List.rev !pieces with
          | [ _ ] -> [ (a, b, c) ]  (* fully inside: no split needed *)
          | first :: rest ->
            (fst first, snd first, c)
            :: List.map (fun (x, y) -> (x, y, copy_subtree c)) rest
          | [] -> assert false
        end)
      p.intervals
  in
  let split = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) split in
  (* Gaps of [lo, hi] not covered by existing intervals; only
     wildcard-port filters can subsume a fresh elementary interval
     (previously inserted ranges are unions of existing intervals). *)
  let wild_seeds () = List.rev p.pwild_filters in
  let gaps = ref [] in
  let cursor = ref lo in
  List.iter
    (fun (a, b, _) ->
      if a > hi || b < lo then ()
      else begin
        if a > !cursor then gaps := (!cursor, a - 1) :: !gaps;
        cursor := max !cursor (b + 1)
      end)
    split;
  if !cursor <= hi then gaps := (!cursor, hi) :: !gaps;
  let new_edges =
    List.map (fun (a, b) -> (a, b, make_child t (level + 1) (wild_seeds ()))) !gaps
  in
  let intervals =
    List.sort
      (fun (a, _, _) (b, _, _) -> Int.compare a b)
      (split @ new_edges)
  in
  p.intervals <- intervals;
  List.iter
    (fun (a, b, c) -> if a >= lo && b <= hi then insert_into t c fv)
    intervals

let insert t f v =
  let already = Filter_tbl.mem t.installed_tbl f in
  Filter_tbl.replace t.installed_tbl f v;
  if already then begin
    (* Replacing a binding: rebuild from scratch (rare control-path
       operation). *)
    t.installed <-
      (f, v) :: List.filter (fun (g, _) -> not (Filter.equal f g)) t.installed;
    t.nodes := 0;
    t.root <- new_node t 0;
    List.iter (fun fv -> insert_into t t.root fv) (List.rev t.installed)
  end
  else begin
    t.installed <- (f, v) :: t.installed;
    insert_into t t.root (f, v)
  end

(* --- removal (incremental) ------------------------------------------ *)

(* Size of a detached subtree, so pruning keeps [node_count] honest. *)
let rec subtree_nodes node =
  1
  + (match node.kids with
     | Leaf _ -> 0
     | Addr a ->
       let n = ref 0 in
       a.matcher.am_iter (fun _ c -> n := !n + subtree_nodes c);
       !n
     | Ports p ->
       List.fold_left
         (fun acc (_, _, c) -> acc + subtree_nodes c)
         (match p.wild with Some c -> subtree_nodes c | None -> 0)
         p.intervals
     | Exact e ->
       Hashtbl.fold
         (fun _ c acc -> acc + subtree_nodes c)
         e.table
         (match e.ewild with Some c -> subtree_nodes c | None -> 0))

let prune t node = t.nodes := !(t.nodes) - subtree_nodes node
let node_empty node = node.filters = []
let drop_filter f l = List.filter (fun (g, _) -> not (Filter.equal f g)) l

(* Remove [f] everywhere it was inserted or seeded under [node],
   restoring the structure a fresh build without [f] would produce:
   the filter leaves every per-node list ([filters], the leaf [best],
   the [label_filters]/[xwild_filters]/[pwild_filters] seed lists so it
   cannot resurrect in children created by later inserts), emptied
   port intervals and exact edges are pruned (an empty interval would
   shadow the port wildcard), and memoized [skip] chains along the
   path are cleared because they may point into a pruned subtree. *)
let rec remove_from t node f =
  node.filters <- drop_filter f node.filters;
  node.skip <- None;
  match node.kids with
  | Leaf l ->
    (* Replay the insert-time best-so-far fold over the survivors in
       arrival order. *)
    l.best <-
      List.fold_left
        (fun acc ((g, _) as gv) ->
          match acc with
          | Some (h, _) when not (more_specific g h) -> acc
          | Some _ | None -> Some gv)
        None
        (List.rev node.filters)
  | Addr a -> remove_addr t a node.level f
  | Ports p -> remove_ports t p node.level f
  | Exact e -> remove_exact t e node.level f

and remove_addr t a level f =
  let lab = addr_label f level in
  (match Prefix_tbl.find_opt a.label_filters lab with
   | Some l ->
     l := drop_filter f !l;
     if !l = [] then Prefix_tbl.remove a.label_filters lab
   | None -> ());
  (* [f] lives in the edge labelled [lab] and in every strictly more
     specific edge it was replicated into — exactly subtree(lab).
     Address edges themselves are not pruned (BMP engines have no
     delete); an emptied edge is behaviourally equivalent to an absent
     one because any shorter matching edge's filters were replicated
     into it, so both resolve to the same (empty) answer. *)
  Rp_lpm.Patricia.iter_subtree a.structure lab (fun _ c -> remove_from t c f)

and remove_exact t e level f =
  match exact_label f level with
  | Filter.Any_num ->
    e.xwild_filters <- drop_filter f e.xwild_filters;
    (match e.ewild with
     | Some c ->
       remove_from t c f;
       if node_empty c then begin
         e.ewild <- None;
         prune t c
       end
     | None -> ());
    let dead = ref [] in
    Hashtbl.iter
      (fun n c ->
        remove_from t c f;
        if node_empty c then dead := (n, c) :: !dead)
      e.table;
    List.iter
      (fun (n, c) ->
        Hashtbl.remove e.table n;
        prune t c)
      !dead
  | Filter.Num n ->
    (match Hashtbl.find_opt e.table n with
     | Some c ->
       remove_from t c f;
       if node_empty c then begin
         Hashtbl.remove e.table n;
         prune t c
       end
     | None -> ())

and remove_ports t p level f =
  (* Visit the intervals [sel] covers and drop the ones this removal
     empties: a surviving empty interval would shadow [p.wild]. *)
  let sweep sel =
    p.intervals <-
      List.filter
        (fun (a, b, c) ->
          if sel a b then begin
            remove_from t c f;
            if node_empty c then begin
              prune t c;
              false
            end
            else true
          end
          else true)
        p.intervals
  in
  match port_label f level with
  | Filter.Any_port ->
    p.pwild_filters <- drop_filter f p.pwild_filters;
    (match p.wild with
     | Some c ->
       remove_from t c f;
       if node_empty c then begin
         p.wild <- None;
         prune t c
       end
     | None -> ());
    sweep (fun _ _ -> true)
  | Filter.Port q -> sweep (fun a b -> a >= q && b <= q)
  | Filter.Port_range (lo, hi) ->
    (* Insertion placed [f] into every elementary interval inside
       [lo, hi]; later splits only subdivide those, never widen them. *)
    sweep (fun a b -> a >= lo && b <= hi)

let remove t f =
  if Filter_tbl.mem t.installed_tbl f then begin
    Filter_tbl.remove t.installed_tbl f;
    t.installed <- drop_filter f t.installed;
    remove_from t t.root f
  end

let clear t =
  Filter_tbl.reset t.installed_tbl;
  t.installed <- [];
  t.nodes := 0;
  t.root <- new_node t 0

(* --- lookup --------------------------------------------------------- *)

(* Collapse wildcard-only chains: a Ports/Exact node whose only edge
   is the wildcard forwards every packet to the same child, so chains
   of such nodes can be jumped in one access.  (Address levels are not
   collapsed: a lone v4 wildcard edge must still reject v6 packets.) *)
let optimize t =
  let rec visit node =
    (match node.kids with
     | Leaf _ -> ()
     | Addr a -> a.matcher.am_iter (fun _ c -> visit c)
     | Ports p ->
       List.iter (fun (_, _, c) -> visit c) p.intervals;
       Option.iter visit p.wild
     | Exact e ->
       Hashtbl.iter (fun _ c -> visit c) e.table;
       Option.iter visit e.ewild);
    node.skip <-
      (match node.kids with
       | Ports { intervals = []; wild = Some c; _ } ->
         Some (Option.value c.skip ~default:c)
       | Exact { table; ewild = Some c; _ } when Hashtbl.length table = 0 ->
         Some (Option.value c.skip ~default:c)
       | Leaf _ | Addr _ | Ports _ | Exact _ -> None)
  in
  visit t.root

let lookup t key =
  Rp_obs.Counter.inc m_lookups;
  (* Function-pointer fetches for the BMP and index-hash functions
     (Table 2, rows 1-2). *)
  Rp_lpm.Access.charge 2;
  let rec walk node =
    match node.skip with
    | Some target ->
      Rp_lpm.Access.charge 1;
      Rp_obs.Counter.inc m_skips;
      Rp_obs.Counter.inc m_edges;
      walk_kids target
    | None -> walk_kids node

  and walk_kids node =
    match node.kids with
    | Leaf l ->
      (match l.best with
       | Some _ as best ->
         Rp_obs.Counter.inc m_matches;
         best
       | None -> None)
    | Addr a ->
      let result, accesses =
        Rp_lpm.Access.measure (fun () ->
            a.matcher.am_lookup (addr_value key node.level))
      in
      Rp_obs.Counter.add m_level_accesses.(node.level) accesses;
      (match result with
       | Some (_, child) ->
         Rp_lpm.Access.charge 1;
         Rp_obs.Counter.inc m_edges;
         walk child
       | None -> None)
    | Ports p ->
      Rp_lpm.Access.charge 1;
      Rp_obs.Counter.inc m_level_accesses.(node.level);
      let v = port_value key node.level in
      let rec find = function
        | [] -> p.wild
        | (a, b, c) :: rest ->
          if v < a then p.wild else if v <= b then Some c else find rest
      in
      (match find p.intervals with
       | Some child ->
         Rp_lpm.Access.charge 1;
         Rp_obs.Counter.inc m_edges;
         walk child
       | None -> None)
    | Exact e ->
      let v = exact_value key node.level in
      let child =
        match Hashtbl.find_opt e.table v with
        | Some _ as c -> c
        | None -> e.ewild
      in
      (match child with
       | Some child ->
         Rp_lpm.Access.charge 1;
         Rp_obs.Counter.inc m_edges;
         walk child
       | None -> None)
  in
  walk t.root

let find t f = Filter_tbl.find_opt t.installed_tbl f

let length t = List.length t.installed
let iter f t = List.iter (fun (flt, v) -> f flt v) t.installed
let node_count t = !(t.nodes)
