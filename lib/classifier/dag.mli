(** The DAG-based filter table (paper, section 5.1).

    One filter table exists per gate.  It stores bindings from filters
    to values (plugin instances) and finds, for a packet's six-tuple,
    the {e most specific} matching filter in O(number of fields) —
    independent of the number of installed filters.

    The structure is a {e set-pruning trie}: at insertion time a filter
    is replicated beneath every more specific edge it subsumes, so a
    lookup follows a single best-matching edge per level with no
    backtracking.  Memory can grow combinatorially with many ambiguous
    filters — the trade-off the paper accepts (section 5.1.2).

    Levels, in order: source address (longest-prefix match, via a
    pluggable BMP engine), destination address (same), protocol (exact
    or wildcard), source port (exact/range/wildcard; ranges are
    maintained as disjoint elementary intervals), destination port
    (same), incoming interface (exact or wildcard).

    Memory-access accounting (see {!Rp_lpm.Access}) mirrors Table 2 of
    the paper: 2 accesses per lookup for the BMP/hash function
    pointers, 1 per edge traversal (6 per full walk), 1 per port-level
    probe, and whatever the configured BMP engine charges per address
    level. *)

open Rp_pkt

type 'a t

(** [create ()] uses the PATRICIA engine for address levels; pass
    [~engine] (e.g. [Rp_lpm.Engines.bspl]) to select another BMP
    plugin. *)
val create : ?engine:Rp_lpm.Engines.t -> unit -> 'a t

val engine_name : 'a t -> string

(** [insert t f v] installs filter [f] bound to [v], replacing the
    binding of a structurally equal filter if present. *)
val insert : 'a t -> Filter.t -> 'a -> unit

(** [remove t f] uninstalls the filter structurally equal to [f],
    incrementally: the filter is deleted from every node it was
    inserted or seeded into, emptied port intervals and exact edges
    are pruned, and memoized wildcard-chain jumps along the path are
    cleared, leaving the trie equivalent to one built without [f]. *)
val remove : 'a t -> Filter.t -> unit

(** [lookup t k] is the most specific installed filter matching [k]
    (see {!Filter.compare_specificity}), with its bound value. *)
val lookup : 'a t -> Flow_key.t -> (Filter.t * 'a) option

(** [find t f] is the value currently bound to the filter structurally
    equal to [f], if installed. *)
val find : 'a t -> Filter.t -> 'a option

val length : 'a t -> int
val iter : (Filter.t -> 'a -> unit) -> 'a t -> unit
val clear : 'a t -> unit

(** Number of trie nodes currently allocated (memory diagnostics). *)
val node_count : 'a t -> int

(** [optimize t] applies the paper's wildcard-chain collapsing
    (section 5.1.2): consecutive levels whose only edge is the
    wildcard are jumped in a single access.  Purely a lookup-cost
    optimization; results are unchanged.  Inserting new filters
    un-collapses the affected paths — call [optimize] again after a
    batch of changes. *)
val optimize : 'a t -> unit
