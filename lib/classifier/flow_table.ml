open Rp_pkt

type soft = ..

type 'a binding = {
  instance : 'a;
  mutable filter : Filter.t option;
  mutable soft : soft option;
}

(* Flat storage: every fixed-size per-record field lives in one native
   int Bigarray, [hot], at [slot * stride + field].  The first eight
   fields of a slot share one 64-byte cache line, ordered so a probe
   touches only the front of the line (hash, packed tuple, generation,
   liveness) and leaves accounting in the back half.  Nothing in [hot]
   is an OCaml block, so steady-state lookup/insert/evict/account
   traffic allocates no heap words and gives the GC nothing to scan. *)

let stride = 16

(* hot line (offsets 0-7) *)
let f_hash = 0 (* Flow_key.hash, cached for probes and index removal *)
let f_meta = 1 (* packed proto/sport/dport/iface, a one-word prefilter *)
let f_gen = 2 (* per-slot generation; FIX validity *)
let f_in_use = 3
let f_last = 4 (* last_use_ns as a native int *)
let f_created = 5
let f_live_pos = 6 (* position in the dense live-slot array *)

(* accounting (offsets 8-12) *)
let f_packets = 8
let f_bytes = 9
let f_fwd = 10
let f_dropped = 11
let f_absorbed = 12

type flat = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type 'a t = {
  gates : int;
  (* Table-wide per-gate generation, bumped when a wildcard-ish filter
     change at that gate makes every cached binding there suspect. *)
  gate_gens : int array;
  mutable hot : flat;  (** [stride] ints per slot; see the f_* offsets *)
  mutable slot_gate_gens : flat;  (** per-slot per-gate stamps, [slot*gates+g] *)
  mutable bindings : 'a binding option array;  (** [slot*gates+g] *)
  mutable keys : Flow_key.t array;  (** boxed key per slot (dummy when free) *)
  mutable handles : 'a record array;  (** one preallocated handle per slot *)
  mutable some_handles : 'a record option array;
      (** [Some handles.(i)], preallocated so lookups return without
          allocating *)
  mutable allocated : int;
  max_records : int;
  (* Open-addressing index: power-of-two array of [slot + 1] entries
     (0 = empty), linear probing, kept at least twice the record
     capacity so the load factor never exceeds 1/2.  Deletion is
     backward-shift (no tombstones), using the home hash cached in
     [hot]. *)
  mutable index : flat;
  mutable mask : int;
  (* Free slots: a preallocated int-array stack (no cons cells). *)
  mutable free : int array;
  mutable free_top : int;
  (* Dense array of the live slots, for O(live) maintenance sweeps;
     each slot's position is mirrored in [f_live_pos]. *)
  mutable live_slots : int array;
  mutable live : int;
  (* Recycling FIFO: an int ring of (slot, gen) in insertion order;
     gen detects entries whose record was evicted out of band.  The
     scratch arrays make compaction in-place and allocation-free. *)
  mutable ring_slot : int array;
  mutable ring_gen : int array;
  mutable ring_scratch_slot : int array;
  mutable ring_scratch_gen : int array;
  mutable ring_head : int;
  mutable ring_len : int;
  mutable fifo_stale : int;
  on_evict : gate:int -> 'a binding -> unit;
  mutable exporter : (reason:string -> 'a record -> unit) option;
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_recycled : int;
  mutable s_chain_max : int;
  mutable s_maint_visited : int;
}

(* A record is a stable handle onto a slot: one is preallocated per
   slot and reused for every flow that ever occupies it, so the data
   path never constructs one. *)
and 'a record = { r_tab : 'a t; r_slot : int }

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  recycled : int;
  chain_max : int;
  fifo_depth : int;
  maint_visited : int;
}

let dummy_key =
  Flow_key.make ~src:Ipaddr.zero_v4 ~dst:Ipaddr.zero_v4 ~proto:0 ~sport:0
    ~dport:0 ~iface:0

(* Process-wide counters (all tables aggregated); the per-table [stats]
   record remains the precise per-instance view. *)
let m_lookups = Rp_obs.Registry.counter "flow_table.lookups"
let m_hits = Rp_obs.Registry.counter "flow_table.hits"
let m_misses = Rp_obs.Registry.counter "flow_table.misses"
let m_inserts = Rp_obs.Registry.counter "flow_table.inserts"
let m_evictions = Rp_obs.Registry.counter "flow_table.evictions"
let m_recycled = Rp_obs.Registry.counter "flow_table.recycled"
let m_expired = Rp_obs.Registry.counter "flow_table.expired"

let default_buckets = 32768
let default_initial = 1024

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let[@inline] get t slot field =
  Bigarray.Array1.unsafe_get t.hot ((slot * stride) + field)

let[@inline] set t slot field v =
  Bigarray.Array1.unsafe_set t.hot ((slot * stride) + field) v

let flat_make n =
  let a = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout n in
  Bigarray.Array1.fill a 0;
  a

(* Pack the non-address tuple fields into one word: equal metas plus
   equal cached hashes make a full (boxed) key comparison almost
   certainly a match, so probes stay in flat memory until then. *)
let[@inline] meta_of (k : Flow_key.t) =
  k.Flow_key.proto land 0xFF
  lor ((k.Flow_key.sport land 0xFFFF) lsl 8)
  lor ((k.Flow_key.dport land 0xFFFF) lsl 24)
  lor (k.Flow_key.iface lsl 40)

let create ?(buckets = default_buckets) ?(initial_records = default_initial)
    ?(max_records = max_int) ?(on_evict = fun ~gate:_ _ -> ()) ~gates () =
  if buckets <= 0 then invalid_arg "Flow_table.create: buckets";
  let n = min initial_records max_records in
  let n = max n 0 in
  let index_size = next_pow2 (max buckets (2 * max n 1)) in
  let t =
    {
      gates;
      gate_gens = Array.make gates 0;
      hot = flat_make (n * stride);
      slot_gate_gens = flat_make (n * gates);
      bindings = Array.make (n * gates) None;
      keys = Array.make n dummy_key;
      handles = [||];
      some_handles = [||];
      allocated = n;
      max_records;
      index = flat_make index_size;
      mask = index_size - 1;
      free = Array.make (max n 1) 0;
      free_top = n;
      live_slots = Array.make (max n 1) 0;
      live = 0;
      ring_slot = Array.make (next_pow2 (max n 1)) 0;
      ring_gen = Array.make (next_pow2 (max n 1)) 0;
      ring_scratch_slot = Array.make (next_pow2 (max n 1)) 0;
      ring_scratch_gen = Array.make (next_pow2 (max n 1)) 0;
      ring_head = 0;
      ring_len = 0;
      fifo_stale = 0;
      on_evict;
      exporter = None;
      s_lookups = 0;
      s_hits = 0;
      s_misses = 0;
      s_evictions = 0;
      s_recycled = 0;
      s_chain_max = 0;
      s_maint_visited = 0;
    }
  in
  t.handles <- Array.init n (fun i -> { r_tab = t; r_slot = i });
  t.some_handles <- Array.init n (fun i -> Some t.handles.(i));
  (* Free stack popping 0, 1, 2, ... first, like the seed free list. *)
  for i = 0 to n - 1 do
    t.free.(i) <- n - 1 - i
  done;
  t

(* --- record accessors ------------------------------------------------ *)

let slot (r : 'a record) = r.r_slot
let gen (r : 'a record) = get r.r_tab r.r_slot f_gen
let key (r : 'a record) = r.r_tab.keys.(r.r_slot)
let packets (r : 'a record) = get r.r_tab r.r_slot f_packets
let bytes (r : 'a record) = get r.r_tab r.r_slot f_bytes
let fwd (r : 'a record) = get r.r_tab r.r_slot f_fwd
let dropped (r : 'a record) = get r.r_tab r.r_slot f_dropped
let absorbed (r : 'a record) = get r.r_tab r.r_slot f_absorbed
let created_ns (r : 'a record) = Int64.of_int (get r.r_tab r.r_slot f_created)
let last_use_ns (r : 'a record) = Int64.of_int (get r.r_tab r.r_slot f_last)

let binding (r : 'a record) ~gate =
  r.r_tab.bindings.((r.r_slot * r.r_tab.gates) + gate)

let iter_bindings (r : 'a record) f =
  let base = r.r_slot * r.r_tab.gates in
  for g = 0 to r.r_tab.gates - 1 do
    match r.r_tab.bindings.(base + g) with
    | Some b -> f ~gate:g b
    | None -> ()
  done

(* --- the open-addressing index ---------------------------------------

   Every loop below is a top-level recursive function taking its whole
   state as arguments: a nested [let rec] with free variables is a
   heap-allocated closure per call in OCaml's non-flambda compiler
   (and so is a [ref] loop counter), which would put minor-heap words
   on every packet — the one thing this table exists to avoid. *)

let rec idx_ins_loop t slot i =
  if Bigarray.Array1.unsafe_get t.index i = 0 then
    Bigarray.Array1.unsafe_set t.index i (slot + 1)
  else idx_ins_loop t slot ((i + 1) land t.mask)

let index_insert t slot = idx_ins_loop t slot (get t slot f_hash land t.mask)

let rec idx_find t slot i =
  if Bigarray.Array1.unsafe_get t.index i = slot + 1 then i
  else idx_find t slot ((i + 1) land t.mask)

(* Backward-shift deletion: refill the hole at [i] from the rest of
   its probe run so no tombstones accumulate.  An entry at [j] whose
   home bucket is [home] may move into the hole at [i] exactly when
   [i] lies on the cyclic path from [home] to [j]. *)
let rec idx_shift t i j =
  let j = (j + 1) land t.mask in
  let e = Bigarray.Array1.unsafe_get t.index j in
  if e = 0 then Bigarray.Array1.unsafe_set t.index i 0
  else begin
    let home = get t (e - 1) f_hash land t.mask in
    if (j - home) land t.mask >= (j - i) land t.mask then begin
      Bigarray.Array1.unsafe_set t.index i e;
      idx_shift t j j
    end
    else idx_shift t i j
  end

let index_remove t slot =
  let i = idx_find t slot (get t slot f_hash land t.mask) in
  idx_shift t i i

(* --- lookup ---------------------------------------------------------- *)

(* Charge model (mirrors the chained table so the Table-3 cost figures
   are unchanged): one access for the home-bucket read, plus one per
   occupied slot inspected along the probe run — a collision-free hit
   costs 2, a miss on an empty home bucket costs 1.  The probe run
   plays the role of the old bucket chain; empty index entries beyond
   the first read are not charged. *)
let rec lookup_probe t key h meta now i inspected =
  let e = Bigarray.Array1.unsafe_get t.index i in
  if e = 0 then begin
    t.s_misses <- t.s_misses + 1;
    Rp_obs.Counter.inc m_misses;
    if inspected > t.s_chain_max then t.s_chain_max <- inspected;
    None
  end
  else begin
    let slot = e - 1 in
    Rp_lpm.Access.charge 1;
    let inspected = inspected + 1 in
    if
      get t slot f_hash = h
      && get t slot f_meta = meta
      && Flow_key.equal (Array.unsafe_get t.keys slot) key
    then begin
      t.s_hits <- t.s_hits + 1;
      Rp_obs.Counter.inc m_hits;
      if inspected > t.s_chain_max then t.s_chain_max <- inspected;
      set t slot f_last (Int64.to_int now);
      Array.unsafe_get t.some_handles slot
    end
    else lookup_probe t key h meta now ((i + 1) land t.mask) inspected
  end

let lookup t key ~now =
  t.s_lookups <- t.s_lookups + 1;
  Rp_obs.Counter.inc m_lookups;
  Rp_lpm.Access.charge 1;
  let h = Flow_key.hash key in
  lookup_probe t key h (meta_of key) now (h land t.mask) 0

(* Uninstrumented probe for internal use (insert's duplicate scan):
   no stats, no access charges; returns the slot or -1. *)
let rec pfind_loop t key h meta i =
  let e = Bigarray.Array1.unsafe_get t.index i in
  if e = 0 then -1
  else
    let slot = e - 1 in
    if
      get t slot f_hash = h
      && get t slot f_meta = meta
      && Flow_key.equal t.keys.(slot) key
    then slot
    else pfind_loop t key h meta ((i + 1) land t.mask)

let probe_find t key ~hash:h = pfind_loop t key h (meta_of key) (h land t.mask)

let find_fix t (fix : Mbuf.fix) =
  if fix.Mbuf.slot < 0 || fix.Mbuf.slot >= t.allocated then None
  else if
    get t fix.Mbuf.slot f_in_use = 1 && get t fix.Mbuf.slot f_gen = fix.Mbuf.gen
  then Array.unsafe_get t.some_handles fix.Mbuf.slot
  else None

let fix_of_record (r : 'a record) = { Mbuf.slot = r.r_slot; gen = gen r }

(* --- recycling FIFO -------------------------------------------------- *)

(* Every in-use record has exactly one live [(slot, gen)] entry in the
   ring (pushed by [insert]).  Evicting outside the recycle path
   strands that entry; [mark_stale] accounts for it and compacts the
   ring once stale entries outnumber live ones, so the FIFO stays
   O(live records) under insert/remove churn even with the default
   unbounded [max_records].  Compaction copies the live entries into
   the preallocated scratch arrays and swaps, so it allocates
   nothing. *)
let rec compact_copy t cap k w =
  if k >= t.ring_len then w
  else begin
    let idx = (t.ring_head + k) land (cap - 1) in
    let s = t.ring_slot.(idx) and g = t.ring_gen.(idx) in
    if get t s f_in_use = 1 && get t s f_gen = g then begin
      t.ring_scratch_slot.(w) <- s;
      t.ring_scratch_gen.(w) <- g;
      compact_copy t cap (k + 1) (w + 1)
    end
    else compact_copy t cap (k + 1) w
  end

let compact t =
  let w = compact_copy t (Array.length t.ring_slot) 0 0 in
  let ts = t.ring_slot and tg = t.ring_gen in
  t.ring_slot <- t.ring_scratch_slot;
  t.ring_gen <- t.ring_scratch_gen;
  t.ring_scratch_slot <- ts;
  t.ring_scratch_gen <- tg;
  t.ring_head <- 0;
  t.ring_len <- w;
  t.fifo_stale <- 0

let mark_stale t =
  t.fifo_stale <- t.fifo_stale + 1;
  if 2 * t.fifo_stale > t.ring_len then compact t

let ring_push t slot g =
  let cap = Array.length t.ring_slot in
  if t.ring_len = cap then begin
    (* Double, unwrapping to head = 0.  Growth only (never steady
       state): the ring is bounded by the record capacity plus stale
       entries, which compaction keeps at O(live). *)
    let ncap = cap * 2 in
    let ns = Array.make ncap 0 and ng = Array.make ncap 0 in
    for k = 0 to t.ring_len - 1 do
      let idx = (t.ring_head + k) land (cap - 1) in
      ns.(k) <- t.ring_slot.(idx);
      ng.(k) <- t.ring_gen.(idx)
    done;
    t.ring_slot <- ns;
    t.ring_gen <- ng;
    t.ring_scratch_slot <- Array.make ncap 0;
    t.ring_scratch_gen <- Array.make ncap 0;
    t.ring_head <- 0
  end;
  let cap = Array.length t.ring_slot in
  let tail = (t.ring_head + t.ring_len) land (cap - 1) in
  t.ring_slot.(tail) <- slot;
  t.ring_gen.(tail) <- g;
  t.ring_len <- t.ring_len + 1

(* --- eviction -------------------------------------------------------- *)

let free_push t slot =
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

let evict ?(reason = "evicted") t slot =
  if get t slot f_in_use = 1 then begin
    (* Export the flow record first, while key/accounting/bindings are
       still intact — this is the NetFlow emission point. *)
    (match t.exporter with
     | Some f -> f ~reason t.handles.(slot)
     | None -> ());
    let base = slot * t.gates in
    for g = 0 to t.gates - 1 do
      match t.bindings.(base + g) with
      | Some b -> t.on_evict ~gate:g b
      | None -> ()
    done;
    Array.fill t.bindings base t.gates None;
    index_remove t slot;
    set t slot f_in_use 0;
    t.keys.(slot) <- dummy_key;
    (* Swap-remove from the dense live set. *)
    let p = get t slot f_live_pos in
    let last = t.live - 1 in
    let moved = t.live_slots.(last) in
    t.live_slots.(p) <- moved;
    set t moved f_live_pos p;
    t.live <- last;
    t.s_evictions <- t.s_evictions + 1;
    Rp_obs.Counter.inc m_evictions
  end

(* Grow the record pool exponentially (1024, 2048, 4096, ...), as the
   paper's implementation does, bounded by [max_records].  Existing
   handles are kept (callers hold them), flat storage is blitted, and
   the index is rebuilt at the next power of two whenever doubling the
   records would push its load factor past 1/2. *)
let grow t =
  let current = t.allocated in
  let target = min t.max_records (max 1 (current * 2)) in
  if target > current then begin
    let nhot = flat_make (target * stride) in
    if current > 0 then
      Bigarray.Array1.blit t.hot
        (Bigarray.Array1.sub nhot 0 (current * stride));
    t.hot <- nhot;
    let ngg = flat_make (target * t.gates) in
    if current * t.gates > 0 then
      Bigarray.Array1.blit t.slot_gate_gens
        (Bigarray.Array1.sub ngg 0 (current * t.gates));
    t.slot_gate_gens <- ngg;
    let nb = Array.make (target * t.gates) None in
    Array.blit t.bindings 0 nb 0 (current * t.gates);
    t.bindings <- nb;
    let nk = Array.make target dummy_key in
    Array.blit t.keys 0 nk 0 current;
    t.keys <- nk;
    let nh =
      Array.init target (fun i ->
          if i < current then t.handles.(i) else { r_tab = t; r_slot = i })
    in
    let nsh =
      Array.init target (fun i ->
          if i < current then t.some_handles.(i) else Some nh.(i))
    in
    t.handles <- nh;
    t.some_handles <- nsh;
    let nf = Array.make target 0 in
    Array.blit t.free 0 nf 0 t.free_top;
    t.free <- nf;
    (* New slots pop lowest-first: current, current+1, ... *)
    for s = target - 1 downto current do
      free_push t s
    done;
    let nl = Array.make target 0 in
    Array.blit t.live_slots 0 nl 0 t.live;
    t.live_slots <- nl;
    t.allocated <- target;
    if 2 * target > Bigarray.Array1.dim t.index then begin
      let size = next_pow2 (2 * target) in
      t.index <- flat_make size;
      t.mask <- size - 1;
      for li = 0 to t.live - 1 do
        index_insert t t.live_slots.(li)
      done
    end
  end

(* Pop the oldest still-live (slot, gen) from the recycling ring,
   skipping entries whose record was already evicted out of band. *)
let rec ring_pop t =
  if t.ring_len = 0 then invalid_arg "Flow_table: no record to recycle"
  else begin
    let cap = Array.length t.ring_slot in
    let s = t.ring_slot.(t.ring_head) and g = t.ring_gen.(t.ring_head) in
    t.ring_head <- (t.ring_head + 1) land (cap - 1);
    t.ring_len <- t.ring_len - 1;
    if get t s f_in_use = 1 && get t s f_gen = g then s
    else begin
      t.fifo_stale <- t.fifo_stale - 1;
      ring_pop t
    end
  end

let rec allocate t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else if t.allocated < t.max_records then begin
    grow t;
    allocate t
  end
  else begin
    (* Recycle the oldest record (paper: "the oldest flow records
       are recycled"). *)
    let s = ring_pop t in
    evict ~reason:"recycled" t s;
    t.s_recycled <- t.s_recycled + 1;
    t.s_evictions <- t.s_evictions - 1;
    Rp_obs.Counter.inc m_recycled;
    Rp_obs.Counter.add m_evictions (-1);
    s
  end

let insert t key ~now =
  let h = Flow_key.hash key in
  (* Silent duplicate scan: no stats or access charges, the caller has
     already paid for its miss. *)
  (match probe_find t key ~hash:h with
   | old when old >= 0 ->
     evict ~reason:"replaced" t old;
     free_push t old;
     mark_stale t
   | _ -> ());
  let slot = allocate t in
  t.keys.(slot) <- key;
  set t slot f_hash h;
  set t slot f_meta (meta_of key);
  set t slot f_gen (get t slot f_gen + 1);
  for g = 0 to t.gates - 1 do
    Bigarray.Array1.unsafe_set t.slot_gate_gens ((slot * t.gates) + g)
      t.gate_gens.(g)
  done;
  set t slot f_in_use 1;
  set t slot f_last (Int64.to_int now);
  set t slot f_created (Int64.to_int now);
  set t slot f_packets 0;
  set t slot f_bytes 0;
  set t slot f_fwd 0;
  set t slot f_dropped 0;
  set t slot f_absorbed 0;
  index_insert t slot;
  set t slot f_live_pos t.live;
  t.live_slots.(t.live) <- slot;
  t.live <- t.live + 1;
  Rp_obs.Counter.inc m_inserts;
  ring_push t slot (get t slot f_gen);
  t.handles.(slot)

let remove t (r : 'a record) =
  if get t r.r_slot f_in_use = 1 then begin
    evict ~reason:"removed" t r.r_slot;
    free_push t r.r_slot;
    mark_stale t
  end

(* Maintenance sweeps walk the dense live set downward: evicting the
   current slot swap-removes it by pulling in an already-visited slot
   from the tail, so the walk neither skips nor revisits anyone.  Cost
   is O(live), never O(allocated) — a table grown to millions of slots
   with a handful of live flows pays for the handful. *)

let rec expire_loop t now_i idle_i i count =
  if i < 0 then count
  else begin
    let slot = t.live_slots.(i) in
    t.s_maint_visited <- t.s_maint_visited + 1;
    let count =
      if now_i - get t slot f_last > idle_i then begin
        evict ~reason:"expired" t slot;
        free_push t slot;
        mark_stale t;
        Rp_obs.Counter.inc m_expired;
        count + 1
      end
      else count
    in
    expire_loop t now_i idle_i (i - 1) count
  end

let expire t ~now ~idle_ns =
  expire_loop t (Int64.to_int now) (Int64.to_int idle_ns) (t.live - 1) 0

let rec flush_loop t i =
  if i >= 0 then begin
    let slot = t.live_slots.(i) in
    t.s_maint_visited <- t.s_maint_visited + 1;
    evict ~reason:"flushed" t slot;
    free_push t slot;
    flush_loop t (i - 1)
  end

let flush t =
  flush_loop t (t.live - 1);
  t.ring_head <- 0;
  t.ring_len <- 0;
  t.fifo_stale <- 0

let set_exporter t f = t.exporter <- Some f

(* Per-packet flow accounting, keyed off the packet's flow index so it
   costs one generation-checked flat read on top of the field bumps.
   Done once per packet at verdict time; a packet whose record was
   recycled mid-flight (only possible with a bounded table under
   pressure) is simply not attributed. *)
let m_acc_packets = Rp_obs.Registry.counter "flow_table.accounted_packets"
let m_acc_bytes = Rp_obs.Registry.counter "flow_table.accounted_bytes"

let account t (m : Mbuf.t) ~verdict =
  match m.Mbuf.fix with
  | None -> ()
  | Some fix ->
    if
      fix.Mbuf.slot >= 0
      && fix.Mbuf.slot < t.allocated
      && get t fix.Mbuf.slot f_in_use = 1
      && get t fix.Mbuf.slot f_gen = fix.Mbuf.gen
    then begin
      let slot = fix.Mbuf.slot in
      set t slot f_packets (get t slot f_packets + 1);
      set t slot f_bytes (get t slot f_bytes + m.Mbuf.len);
      (match verdict with
       | `Fwd -> set t slot f_fwd (get t slot f_fwd + 1)
       | `Drop -> set t slot f_dropped (get t slot f_dropped + 1)
       | `Absorb -> set t slot f_absorbed (get t slot f_absorbed + 1));
      Rp_obs.Counter.inc m_acc_packets;
      Rp_obs.Counter.add m_acc_bytes m.Mbuf.len
    end

let set_binding t (r : 'a record) ~gate ?filter instance =
  if gate < 0 || gate >= t.gates then invalid_arg "Flow_table.set_binding: gate";
  t.bindings.((r.r_slot * t.gates) + gate) <- Some { instance; filter; soft = None }

(* --- selective invalidation ----------------------------------------- *)

let m_invalidated = Rp_obs.Registry.counter "flow_table.invalidated"

let bump_gate t ~gate =
  if gate < 0 || gate >= t.gates then invalid_arg "Flow_table.bump_gate: gate";
  t.gate_gens.(gate) <- t.gate_gens.(gate) + 1

let gate_stale t (r : 'a record) ~gate =
  Bigarray.Array1.unsafe_get t.slot_gate_gens ((r.r_slot * t.gates) + gate)
  <> t.gate_gens.(gate)

let revalidated t (r : 'a record) ~gate =
  Bigarray.Array1.unsafe_set t.slot_gate_gens ((r.r_slot * t.gates) + gate)
    t.gate_gens.(gate)

let clear_binding t (r : 'a record) ~gate =
  match t.bindings.((r.r_slot * t.gates) + gate) with
  | Some b ->
    t.on_evict ~gate b;
    t.bindings.((r.r_slot * t.gates) + gate) <- None
  | None -> ()

(* Evict only the records whose key [matches] (a changed filter); each
   goes through the common [evict] path, so it is exported exactly once
   (the in-use guard) even if its (slot, gen) entry is still queued
   in the recycling FIFO — the stranded entry is accounted stale via
   [mark_stale], exactly as on the remove/expire paths. *)
let rec invalidate_loop t matches i count =
  if i < 0 then count
  else begin
    let slot = t.live_slots.(i) in
    t.s_maint_visited <- t.s_maint_visited + 1;
    let count =
      if matches t.keys.(slot) then begin
        evict ~reason:"invalidated" t slot;
        free_push t slot;
        mark_stale t;
        Rp_obs.Counter.inc m_invalidated;
        count + 1
      end
      else count
    in
    invalidate_loop t matches (i - 1) count
  end

let invalidate t ~matches = invalidate_loop t matches (t.live - 1) 0

let length t = t.live
let capacity t = t.allocated

let stats t =
  {
    lookups = t.s_lookups;
    hits = t.s_hits;
    misses = t.s_misses;
    evictions = t.s_evictions;
    recycled = t.s_recycled;
    chain_max = t.s_chain_max;
    fifo_depth = t.ring_len;
    maint_visited = t.s_maint_visited;
  }

let rec iter_loop f t i =
  if i >= 0 then begin
    let slot = t.live_slots.(i) in
    if get t slot f_in_use = 1 then f t.handles.(slot);
    iter_loop f t (i - 1)
  end

let iter f t = iter_loop f t (t.live - 1)
