open Rp_pkt

type soft = ..

type 'a binding = {
  instance : 'a;
  mutable filter : Filter.t option;
  mutable soft : soft option;
}

type 'a record = {
  mutable key : Flow_key.t;
  mutable gen : int;
  slot : int;
  bindings : 'a binding option array;
  (* Per-gate generation stamp, copied from the table at insert time
     and re-stamped when a gate's binding is revalidated; a gate whose
     table-wide generation has moved past the record's stamp holds a
     possibly-stale binding (see {!bump_gate}). *)
  gate_gens : int array;
  mutable in_use : bool;
  mutable last_use_ns : int64;
  mutable created_ns : int64;
  mutable next : 'a record option;
  (* NetFlow-style per-flow accounting, reset when the slot is
     (re-)inserted and exported when the record leaves the table. *)
  mutable packets : int;
  mutable bytes : int;
  mutable fwd : int;
  mutable dropped : int;
  mutable absorbed : int;
}

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  recycled : int;
  chain_max : int;
  fifo_depth : int;
}

type 'a t = {
  gates : int;
  (* Table-wide per-gate generation, bumped when a wildcard-ish filter
     change at that gate makes every cached binding there suspect. *)
  gate_gens : int array;
  buckets : 'a record option array;
  mutable records : 'a record array;  (** all allocated records, by slot *)
  mutable allocated : int;  (** prefix of [records] actually initialized *)
  mutable free : int list;  (** free slots *)
  max_records : int;
  mutable fifo : (int * int) Queue.t;
      (** (slot, gen) in insertion order, for recycling; gen detects stale entries *)
  mutable fifo_stale : int;
      (** entries in [fifo] whose record has since been evicted; kept
          so the queue can be compacted before stale entries dominate *)
  on_evict : gate:int -> 'a binding -> unit;
  mutable exporter : (reason:string -> 'a record -> unit) option;
  mutable live : int;
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_recycled : int;
  mutable s_chain_max : int;
}

let dummy_key =
  Flow_key.make ~src:Ipaddr.zero_v4 ~dst:Ipaddr.zero_v4 ~proto:0 ~sport:0
    ~dport:0 ~iface:0

(* Process-wide counters (all tables aggregated); the per-table [stats]
   record remains the precise per-instance view. *)
let m_lookups = Rp_obs.Registry.counter "flow_table.lookups"
let m_hits = Rp_obs.Registry.counter "flow_table.hits"
let m_misses = Rp_obs.Registry.counter "flow_table.misses"
let m_inserts = Rp_obs.Registry.counter "flow_table.inserts"
let m_evictions = Rp_obs.Registry.counter "flow_table.evictions"
let m_recycled = Rp_obs.Registry.counter "flow_table.recycled"
let m_expired = Rp_obs.Registry.counter "flow_table.expired"

let default_buckets = 32768
let default_initial = 1024

let create ?(buckets = default_buckets) ?(initial_records = default_initial)
    ?(max_records = max_int) ?(on_evict = fun ~gate:_ _ -> ()) ~gates () =
  if buckets <= 0 then invalid_arg "Flow_table.create: buckets";
  let mk_record slot =
    {
      key = dummy_key;
      gen = 0;
      slot;
      bindings = Array.make gates None;
      gate_gens = Array.make gates 0;
      in_use = false;
      last_use_ns = 0L;
      created_ns = 0L;
      next = None;
      packets = 0;
      bytes = 0;
      fwd = 0;
      dropped = 0;
      absorbed = 0;
    }
  in
  let n = min initial_records max_records in
  {
    gates;
    gate_gens = Array.make gates 0;
    buckets = Array.make buckets None;
    records = Array.init n mk_record;
    allocated = n;
    free = List.init n (fun i -> i);
    max_records;
    fifo = Queue.create ();
    fifo_stale = 0;
    on_evict;
    exporter = None;
    live = 0;
    s_lookups = 0;
    s_hits = 0;
    s_misses = 0;
    s_evictions = 0;
    s_recycled = 0;
    s_chain_max = 0;
  }

let bucket_of t key = Flow_key.hash key mod Array.length t.buckets

let lookup t key ~now =
  t.s_lookups <- t.s_lookups + 1;
  Rp_obs.Counter.inc m_lookups;
  Rp_lpm.Access.charge 1;
  let rec walk depth = function
    | None ->
      t.s_misses <- t.s_misses + 1;
      Rp_obs.Counter.inc m_misses;
      t.s_chain_max <- max t.s_chain_max depth;
      None
    | Some r ->
      Rp_lpm.Access.charge 1;
      if r.in_use && Flow_key.equal r.key key then begin
        t.s_hits <- t.s_hits + 1;
        Rp_obs.Counter.inc m_hits;
        t.s_chain_max <- max t.s_chain_max (depth + 1);
        r.last_use_ns <- now;
        Some r
      end
      else walk (depth + 1) r.next
  in
  walk 0 t.buckets.(bucket_of t key)

let find_fix t (fix : Mbuf.fix) =
  if fix.Mbuf.slot < 0 || fix.Mbuf.slot >= t.allocated then None
  else
    let r = t.records.(fix.Mbuf.slot) in
    if r.in_use && r.gen = fix.Mbuf.gen then Some r else None

let fix_of_record r = { Mbuf.slot = r.slot; gen = r.gen }

(* Unlink [r] from its hash chain. *)
let unlink t r =
  let b = bucket_of t r.key in
  let rec remove = function
    | None -> None
    | Some x when x == r -> x.next
    | Some x ->
      x.next <- remove x.next;
      Some x
  in
  t.buckets.(b) <- remove t.buckets.(b)

(* Every in-use record has exactly one live [(slot, gen)] entry in the
   recycling FIFO (pushed by [insert]).  Evicting outside the recycle
   path strands that entry; [mark_stale] accounts for it and compacts
   the queue once stale entries outnumber live ones, so the FIFO stays
   O(live records) under insert/remove churn even with the default
   unbounded [max_records]. *)
let compact t =
  let fresh = Queue.create () in
  Queue.iter
    (fun ((slot, gen) as e) ->
      let r = t.records.(slot) in
      if r.in_use && r.gen = gen then Queue.push e fresh)
    t.fifo;
  t.fifo <- fresh;
  t.fifo_stale <- 0

let mark_stale t =
  t.fifo_stale <- t.fifo_stale + 1;
  if 2 * t.fifo_stale > Queue.length t.fifo then compact t

let evict ?(reason = "evicted") t r =
  if r.in_use then begin
    (* Export the flow record first, while key/accounting/bindings are
       still intact — this is the NetFlow emission point. *)
    (match t.exporter with Some f -> f ~reason r | None -> ());
    Array.iteri
      (fun gate binding ->
        match binding with
        | Some b -> t.on_evict ~gate b
        | None -> ())
      r.bindings;
    Array.fill r.bindings 0 (Array.length r.bindings) None;
    unlink t r;
    r.in_use <- false;
    r.next <- None;
    t.live <- t.live - 1;
    t.s_evictions <- t.s_evictions + 1;
    Rp_obs.Counter.inc m_evictions
  end

(* Grow the record pool exponentially (1024, 2048, 4096, ...), as the
   paper's implementation does, bounded by [max_records]. *)
let grow t =
  let current = t.allocated in
  let target = min t.max_records (max 1 (current * 2)) in
  if target > current then begin
    let mk_record slot =
      {
        key = dummy_key;
        gen = 0;
        slot;
        bindings = Array.make t.gates None;
        gate_gens = Array.make t.gates 0;
        in_use = false;
        last_use_ns = 0L;
        created_ns = 0L;
        next = None;
        packets = 0;
        bytes = 0;
        fwd = 0;
        dropped = 0;
        absorbed = 0;
      }
    in
    let bigger =
      Array.init target (fun i -> if i < current then t.records.(i) else mk_record i)
    in
    t.records <- bigger;
    t.allocated <- target;
    t.free <- List.init (target - current) (fun i -> current + i)
  end

let rec allocate t =
  match t.free with
  | slot :: rest ->
    t.free <- rest;
    t.records.(slot)
  | [] ->
    if t.allocated < t.max_records then begin
      grow t;
      allocate t
    end
    else begin
      (* Recycle the oldest record (paper: "the oldest flow records
         are recycled"). *)
      let rec pop () =
        if Queue.is_empty t.fifo then
          invalid_arg "Flow_table: no record to recycle"
        else
          let slot, gen = Queue.pop t.fifo in
          let r = t.records.(slot) in
          if r.in_use && r.gen = gen then r
          else begin
            t.fifo_stale <- t.fifo_stale - 1;
            pop ()
          end
      in
      let r = pop () in
      evict ~reason:"recycled" t r;
      t.s_recycled <- t.s_recycled + 1;
      t.s_evictions <- t.s_evictions - 1;
      Rp_obs.Counter.inc m_recycled;
      Rp_obs.Counter.add m_evictions (-1);
      r
    end

let insert t key ~now =
  (* Silent duplicate scan: no stats or access charges, the caller has
     already paid for its miss. *)
  let rec find = function
    | None -> None
    | Some r when r.in_use && Flow_key.equal r.key key -> Some r
    | Some r -> find r.next
  in
  (match find t.buckets.(bucket_of t key) with
   | Some old ->
     evict ~reason:"replaced" t old;
     t.free <- old.slot :: t.free;
     mark_stale t
   | None -> ());
  let r = allocate t in
  r.key <- key;
  r.gen <- r.gen + 1;
  Array.blit t.gate_gens 0 r.gate_gens 0 t.gates;
  r.in_use <- true;
  r.last_use_ns <- now;
  r.created_ns <- now;
  r.packets <- 0;
  r.bytes <- 0;
  r.fwd <- 0;
  r.dropped <- 0;
  r.absorbed <- 0;
  let b = bucket_of t key in
  r.next <- t.buckets.(b);
  t.buckets.(b) <- Some r;
  t.live <- t.live + 1;
  Rp_obs.Counter.inc m_inserts;
  Queue.push (r.slot, r.gen) t.fifo;
  r

let remove t r =
  if r.in_use then begin
    evict ~reason:"removed" t r;
    t.free <- r.slot :: t.free;
    mark_stale t
  end

let expire t ~now ~idle_ns =
  let count = ref 0 in
  for slot = 0 to t.allocated - 1 do
    let r = t.records.(slot) in
    if r.in_use && Int64.sub now r.last_use_ns > idle_ns then begin
      evict ~reason:"expired" t r;
      t.free <- r.slot :: t.free;
      mark_stale t;
      Rp_obs.Counter.inc m_expired;
      incr count
    end
  done;
  !count

let flush t =
  for slot = 0 to t.allocated - 1 do
    let r = t.records.(slot) in
    if r.in_use then begin
      evict ~reason:"flushed" t r;
      t.free <- r.slot :: t.free
    end
  done;
  Queue.clear t.fifo;
  t.fifo_stale <- 0

let set_exporter t f = t.exporter <- Some f

(* Per-packet flow accounting, keyed off the packet's flow index so it
   costs one generation-checked array read on top of the field bumps.
   Done once per packet at verdict time; a packet whose record was
   recycled mid-flight (only possible with a bounded table under
   pressure) is simply not attributed. *)
let m_acc_packets = Rp_obs.Registry.counter "flow_table.accounted_packets"
let m_acc_bytes = Rp_obs.Registry.counter "flow_table.accounted_bytes"

let account t (m : Mbuf.t) ~verdict =
  match m.Mbuf.fix with
  | None -> ()
  | Some fix -> (
      match find_fix t fix with
      | None -> ()
      | Some r ->
        r.packets <- r.packets + 1;
        r.bytes <- r.bytes + m.Mbuf.len;
        (match verdict with
         | `Fwd -> r.fwd <- r.fwd + 1
         | `Drop -> r.dropped <- r.dropped + 1
         | `Absorb -> r.absorbed <- r.absorbed + 1);
        Rp_obs.Counter.inc m_acc_packets;
        Rp_obs.Counter.add m_acc_bytes m.Mbuf.len)

let set_binding t r ~gate ?filter instance =
  if gate < 0 || gate >= t.gates then invalid_arg "Flow_table.set_binding: gate";
  r.bindings.(gate) <- Some { instance; filter; soft = None }

let binding r ~gate = r.bindings.(gate)

(* --- selective invalidation ----------------------------------------- *)

let m_invalidated = Rp_obs.Registry.counter "flow_table.invalidated"

let bump_gate t ~gate =
  if gate < 0 || gate >= t.gates then invalid_arg "Flow_table.bump_gate: gate";
  t.gate_gens.(gate) <- t.gate_gens.(gate) + 1

let gate_stale t (r : 'a record) ~gate = r.gate_gens.(gate) <> t.gate_gens.(gate)
let revalidated t (r : 'a record) ~gate = r.gate_gens.(gate) <- t.gate_gens.(gate)

let clear_binding t r ~gate =
  match r.bindings.(gate) with
  | Some b ->
    t.on_evict ~gate b;
    r.bindings.(gate) <- None
  | None -> ()

(* Evict only the records whose key [matches] (a changed filter); each
   goes through the common [evict] path, so it is exported exactly once
   (the [in_use] guard) even if its (slot, gen) entry is still queued
   in the recycling FIFO — the stranded entry is accounted stale via
   [mark_stale], exactly as on the remove/expire paths. *)
let invalidate t ~matches =
  let count = ref 0 in
  for slot = 0 to t.allocated - 1 do
    let r = t.records.(slot) in
    if r.in_use && matches r.key then begin
      evict ~reason:"invalidated" t r;
      t.free <- r.slot :: t.free;
      mark_stale t;
      Rp_obs.Counter.inc m_invalidated;
      incr count
    end
  done;
  !count

let length t = t.live
let capacity t = t.allocated

let stats t =
  {
    lookups = t.s_lookups;
    hits = t.s_hits;
    misses = t.s_misses;
    evictions = t.s_evictions;
    recycled = t.s_recycled;
    chain_max = t.s_chain_max;
    fifo_depth = Queue.length t.fifo;
  }

let iter f t =
  for slot = 0 to t.allocated - 1 do
    let r = t.records.(slot) in
    if r.in_use then f r
  done
