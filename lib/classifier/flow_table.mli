(** The flow table — the AIU's cache of per-flow state (paper,
    section 5.2).

    Each entry corresponds to one fully specified flow and stores, for
    every gate, the bound plugin instance plus a slot of per-flow
    plugin-private "soft" state (e.g. the DRR plugin keeps its per-flow
    packet queue there).  Lookups hash the five-tuple; collisions chain
    in the bucket.  Records come from a free list that grows
    exponentially (1024, 2048, 4096, …) up to a configurable maximum,
    after which the oldest records are recycled.

    Records are addressed by a {e flow index} (slot + generation); the
    generation guards against a recycled slot being mistaken for the
    original flow. *)

open Rp_pkt

(** Plugin-private per-flow soft state.  Plugins extend this type with
    their own constructors (e.g. [type Flow_table.soft += Drr_queue of
    ...]). *)
type soft = ..

type 'a binding = {
  instance : 'a;
  mutable filter : Filter.t option;  (** filter this binding came from *)
  mutable soft : soft option;
}

type 'a record = {
  mutable key : Flow_key.t;
  mutable gen : int;
  slot : int;
  bindings : 'a binding option array;  (** indexed by gate *)
  gate_gens : int array;
      (** per-gate generation stamps (see {!bump_gate}/{!gate_stale}) *)
  mutable in_use : bool;
  mutable last_use_ns : int64;
  mutable created_ns : int64;
  mutable next : 'a record option;  (** hash-chain link *)
  mutable packets : int;  (** packets attributed via {!account} *)
  mutable bytes : int;
  mutable fwd : int;  (** per-verdict counts: forwarded, *)
  mutable dropped : int;  (** dropped, *)
  mutable absorbed : int;  (** absorbed / delivered locally *)
}

type 'a t

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  recycled : int;
  chain_max : int;  (** longest bucket chain encountered *)
  fifo_depth : int;
      (** current recycling-FIFO length; stays O(live records) because
          stale entries are compacted away when they outnumber live
          ones *)
}

(** [create ~gates ()] — [gates] is the number of gates whose bindings
    each record holds.  Defaults follow the paper: [buckets = 32768],
    [initial_records = 1024], unbounded unless [max_records] given.
    [on_evict] is called for each populated gate binding whenever a
    record is evicted, recycled, or flushed, so plugins can release
    per-flow soft state. *)
val create :
  ?buckets:int -> ?initial_records:int -> ?max_records:int ->
  ?on_evict:(gate:int -> 'a binding -> unit) -> gates:int -> unit -> 'a t

(** [lookup t key ~now] finds the record for [key], refreshing its
    last-use time.  Charges one memory access for the bucket probe plus
    one per chained record traversed. *)
val lookup : 'a t -> Flow_key.t -> now:int64 -> 'a record option

(** [find_fix t fix] dereferences a flow index, validating the
    generation; [None] if the slot was recycled since. *)
val find_fix : 'a t -> Mbuf.fix -> 'a record option

val fix_of_record : 'a record -> Mbuf.fix

(** [insert t key ~now] allocates (or recycles) a record for [key].
    Any previous record for the same key is replaced. *)
val insert : 'a t -> Flow_key.t -> now:int64 -> 'a record

val remove : 'a t -> 'a record -> unit

(** [expire t ~now ~idle_ns] evicts every record idle longer than
    [idle_ns].  O(capacity); meant for periodic housekeeping. *)
val expire : 'a t -> now:int64 -> idle_ns:int64 -> int

(** [flush t] evicts everything (used when filter tables change, so no
    stale binding survives). *)
val flush : 'a t -> unit

(** [set_exporter t f] registers the NetFlow-style emission hook:
    [f ~reason r] is called {e exactly once} whenever an in-use record
    leaves the table — [reason] is one of ["replaced"], ["recycled"],
    ["removed"], ["expired"], ["flushed"], ["invalidated"] — while the
    record's key, accounting fields and bindings are still intact. *)
val set_exporter : 'a t -> (reason:string -> 'a record -> unit) -> unit

(** [account t m ~verdict] attributes one packet (and [m.len] bytes)
    to the record referenced by [m]'s flow index, bumping the verdict
    count; a packet without a (still-valid) flow index is not
    attributed.  Also bumps the process-wide
    [flow_table.accounted_packets] / [flow_table.accounted_bytes]
    counters, against which exported flow records reconcile. *)
val account :
  'a t -> Mbuf.t -> verdict:[ `Fwd | `Drop | `Absorb ] -> unit

val set_binding : 'a t -> 'a record -> gate:int -> ?filter:Filter.t -> 'a -> unit
val binding : 'a record -> gate:int -> 'a binding option

(** Selective invalidation (control-plane churn support).

    [invalidate t ~matches] evicts every in-use record whose key
    satisfies [matches] (reason ["invalidated"]), returning the count.
    Each record is exported exactly once even if a stale entry for it
    remains in the recycling FIFO.

    [bump_gate t ~gate] advances the table-wide generation for [gate]
    — used when a wildcard filter change makes every cached binding at
    that gate suspect without naming the affected flows.
    [gate_stale t r ~gate] tests whether [r]'s binding at [gate]
    predates the last bump; [revalidated t r ~gate] re-stamps it after
    the caller re-resolved the binding.  [clear_binding t r ~gate]
    drops one gate's binding (firing [on_evict] for its soft state)
    without touching the rest of the record. *)
val invalidate : 'a t -> matches:(Flow_key.t -> bool) -> int

val bump_gate : 'a t -> gate:int -> unit
val gate_stale : 'a t -> 'a record -> gate:int -> bool
val revalidated : 'a t -> 'a record -> gate:int -> unit
val clear_binding : 'a t -> 'a record -> gate:int -> unit

val length : 'a t -> int
val capacity : 'a t -> int
val stats : 'a t -> stats
val iter : ('a record -> unit) -> 'a t -> unit
