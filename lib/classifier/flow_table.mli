(** The flow table — the AIU's cache of per-flow state (paper,
    section 5.2).

    Each entry corresponds to one fully specified flow and stores, for
    every gate, the bound plugin instance plus a slot of per-flow
    plugin-private "soft" state (e.g. the DRR plugin keeps its per-flow
    packet queue there).

    Storage is flat: every fixed-size per-record field (cached key
    hash, packed tuple, generation, gate-generation stamps, timestamps,
    packet/byte/verdict accounting) lives in native-int Bigarrays
    indexed by slot, with the hot fields of a slot sharing one cache
    line; only the per-gate [binding] payloads and the boxed keys
    remain on the OCaml heap, in parallel plain arrays.  The key index
    is open-addressing with linear probing over a power-of-two array
    kept at no more than half load (it is resized with the record
    pool), so probe runs stay short at any scale; deletion is
    backward-shift, leaving no tombstones.  Free slots live in a
    preallocated int-array stack and the recycling FIFO is an int
    ring, so steady-state operation — lookup, insert, evict, recycle,
    account, expire — allocates nothing on the OCaml heap.

    Records come from a pool that grows exponentially (1024, 2048,
    4096, …) up to a configurable maximum, after which the oldest
    records are recycled.  Records are addressed by a {e flow index}
    (slot + generation); the generation guards against a recycled slot
    being mistaken for the original flow. *)

open Rp_pkt

(** Plugin-private per-flow soft state.  Plugins extend this type with
    their own constructors (e.g. [type Flow_table.soft += Drr_queue of
    ...]). *)
type soft = ..

type 'a binding = {
  instance : 'a;
  mutable filter : Filter.t option;  (** filter this binding came from *)
  mutable soft : soft option;
}

(** A handle onto one table slot.  Handles are preallocated (one per
    slot) and reused across the flows that occupy the slot, so holding
    one across an eviction is only meaningful together with its
    generation (see {!fix_of_record} / {!find_fix}).  Field access
    goes through the accessors below; none of them allocate except
    {!key} (returns the boxed key), {!created_ns} and {!last_use_ns}
    (box an int64). *)
type 'a record

type 'a t

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  recycled : int;
  chain_max : int;
      (** most slots inspected by any single lookup — the open-addressing
          analogue of the longest bucket chain.  Counted uniformly on
          both paths as {e occupied slots inspected}: a hit at probe
          depth d (d slots skipped) records d+1 (the match is
          inspected too); a miss that skipped d occupied slots before
          hitting an empty one records d.  This matches the number of
          per-slot memory accesses charged (see {!lookup}). *)
  fifo_depth : int;
      (** current recycling-FIFO length; stays O(live records) because
          stale entries are compacted away when they outnumber live
          ones *)
  maint_visited : int;
      (** cumulative slots visited by the maintenance sweeps
          ({!expire}, {!flush}, {!invalidate}, {!iter}) — these walk
          the dense live set, so the figure grows with live records
          per sweep, never with grown capacity *)
}

(** [create ~gates ()] — [gates] is the number of gates whose bindings
    each record holds.  Defaults follow the paper: [buckets = 32768]
    (now the initial size hint for the probe index, which additionally
    never holds more than half its capacity in records),
    [initial_records = 1024], unbounded unless [max_records] given.
    [on_evict] is called for each populated gate binding whenever a
    record is evicted, recycled, or flushed, so plugins can release
    per-flow soft state. *)
val create :
  ?buckets:int -> ?initial_records:int -> ?max_records:int ->
  ?on_evict:(gate:int -> 'a binding -> unit) -> gates:int -> unit -> 'a t

(** [lookup t key ~now] finds the record for [key], refreshing its
    last-use time.  Charges one memory access for the home-bucket read
    plus one per occupied slot inspected along the probe run (the
    probe run plays the role of the old bucket chain; the empty slot
    that terminates a miss is covered by the upfront charge).  A
    collision-free hit therefore costs 2 accesses and a miss on an
    empty home bucket costs 1 — identical to the chained table. *)
val lookup : 'a t -> Flow_key.t -> now:int64 -> 'a record option

(** [find_fix t fix] dereferences a flow index, validating the
    generation; [None] if the slot was recycled since.  Does not
    allocate. *)
val find_fix : 'a t -> Mbuf.fix -> 'a record option

val fix_of_record : 'a record -> Mbuf.fix

(** [insert t key ~now] allocates (or recycles) a record for [key].
    Any previous record for the same key is replaced. *)
val insert : 'a t -> Flow_key.t -> now:int64 -> 'a record

val remove : 'a t -> 'a record -> unit

(** [expire t ~now ~idle_ns] evicts every record idle strictly longer
    than [idle_ns].  O(live records) — dead grown capacity costs
    nothing; meant for periodic housekeeping. *)
val expire : 'a t -> now:int64 -> idle_ns:int64 -> int

(** [flush t] evicts everything (used when filter tables change, so no
    stale binding survives).  O(live records). *)
val flush : 'a t -> unit

(** [set_exporter t f] registers the NetFlow-style emission hook:
    [f ~reason r] is called {e exactly once} whenever an in-use record
    leaves the table — [reason] is one of ["replaced"], ["recycled"],
    ["removed"], ["expired"], ["flushed"], ["invalidated"] — while the
    record's key, accounting fields and bindings are still intact. *)
val set_exporter : 'a t -> (reason:string -> 'a record -> unit) -> unit

(** [account t m ~verdict] attributes one packet (and [m.len] bytes)
    to the record referenced by [m]'s flow index, bumping the verdict
    count; a packet without a (still-valid) flow index is not
    attributed.  Also bumps the process-wide
    [flow_table.accounted_packets] / [flow_table.accounted_bytes]
    counters, against which exported flow records reconcile. *)
val account :
  'a t -> Mbuf.t -> verdict:[ `Fwd | `Drop | `Absorb ] -> unit

val set_binding : 'a t -> 'a record -> gate:int -> ?filter:Filter.t -> 'a -> unit
val binding : 'a record -> gate:int -> 'a binding option

(** [iter_bindings r f] calls [f ~gate b] for each populated gate
    binding of [r], in gate order. *)
val iter_bindings : 'a record -> (gate:int -> 'a binding -> unit) -> unit

(** Selective invalidation (control-plane churn support).

    [invalidate t ~matches] evicts every in-use record whose key
    satisfies [matches] (reason ["invalidated"]), returning the count.
    Each record is exported exactly once even if a stale entry for it
    remains in the recycling FIFO.  O(live records).

    [bump_gate t ~gate] advances the table-wide generation for [gate]
    — used when a wildcard filter change makes every cached binding at
    that gate suspect without naming the affected flows.
    [gate_stale t r ~gate] tests whether [r]'s binding at [gate]
    predates the last bump; [revalidated t r ~gate] re-stamps it after
    the caller re-resolved the binding.  [clear_binding t r ~gate]
    drops one gate's binding (firing [on_evict] for its soft state)
    without touching the rest of the record. *)
val invalidate : 'a t -> matches:(Flow_key.t -> bool) -> int

val bump_gate : 'a t -> gate:int -> unit
val gate_stale : 'a t -> 'a record -> gate:int -> bool
val revalidated : 'a t -> 'a record -> gate:int -> unit
val clear_binding : 'a t -> 'a record -> gate:int -> unit

(** Record field accessors. *)

val key : 'a record -> Flow_key.t
val slot : 'a record -> int
val gen : 'a record -> int
val packets : 'a record -> int
val bytes : 'a record -> int
val fwd : 'a record -> int
val dropped : 'a record -> int
val absorbed : 'a record -> int
val created_ns : 'a record -> int64
val last_use_ns : 'a record -> int64

val length : 'a t -> int
val capacity : 'a t -> int
val stats : 'a t -> stats
val iter : ('a record -> unit) -> 'a t -> unit
