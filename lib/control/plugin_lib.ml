(** The library of loadable plugins shipped with this distribution —
    what sits on disk as [.o] files next to the paper's NetBSD kernel,
    addressed by name through [modload]. *)

open Rp_core

let available : (string * (module Plugin.PLUGIN)) list =
  [
    ("ip6-options", (module Opt_plugin));
    ("stats", (module Stats_plugin));
    ("firewall", (module Firewall_plugin));
    ("l4-route", (module Route_plugin));
    ("fifo", (module Rp_sched.Fifo_plugin));
    ("drr", (module Rp_sched.Drr_plugin));
    ("hfsc", (module Rp_sched.Hfsc_plugin));
    ("red", (module Rp_sched.Red_plugin));
    ("token-bucket", (module Rp_sched.Tb_plugin));
    ("ipsec-in", (module Rp_crypto.Ipsec_plugin.In));
    ("ipsec-out", (module Rp_crypto.Ipsec_plugin.Out));
    (* Unified session subsystem: NAT rewrite (+ QoS class + cached
       next-hop) before routing, conntrack verdict at the firewall
       gate, route learning after routing. *)
    ("nat", (module Rp_session.Nat_plugin.In));
    ("nat-out", (module Rp_session.Nat_plugin.Out));
    ("conntrack", (module Rp_session.Conntrack_plugin));
    (* No-op plugins for framework-overhead experiments (Table 3). *)
    ("empty-options", Empty_plugin.make ~gate:Gate.Ip_options ~name:"empty-options");
    ("empty-security", Empty_plugin.make ~gate:Gate.Security_in ~name:"empty-security");
    ("empty-stats", Empty_plugin.make ~gate:Gate.Stats ~name:"empty-stats");
    (* Deterministic fault injectors — test vehicles for the
       fault-isolation layer (exception / cycle-budget containment). *)
    ("fault-firewall", Fault_plugin.make ~gate:Gate.Firewall ~name:"fault-firewall");
    ("fault-options", Fault_plugin.make ~gate:Gate.Ip_options ~name:"fault-options");
    ("fault-stats", Fault_plugin.make ~gate:Gate.Stats ~name:"fault-stats");
  ]

let find name = List.assoc_opt name available
let names = List.map fst available
