open Rp_pkt
open Rp_core
open Rp_classifier

let ( let* ) r f = Result.bind r f

(* Tokenize a command line, keeping a <...> filter specification as a
   single token. *)
let tokenize line =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
  let rec loop acc i =
    let i = skip i in
    if i >= n then Ok (List.rev acc)
    else if line.[i] = '<' then
      match String.index_from_opt line i '>' with
      | Some j -> loop (String.sub line i (j - i + 1) :: acc) (j + 1)
      | None -> Error "unterminated filter specification"
    else
      let j =
        match String.index_from_opt line i ' ' with Some j -> j | None -> n
      in
      loop (String.sub line i (j - i) :: acc) j
  in
  loop [] 0

let parse_filter tok =
  Result.map_error (fun e -> "bad filter: " ^ e) (Filter.of_string tok)

(* A fully specified filter (no wildcards) denotes a single flow. *)
let key_of_filter (f : Filter.t) =
  let addr_of p =
    if p.Prefix.len = Ipaddr.width p.Prefix.addr then Ok p.Prefix.addr
    else Error "filter field is not fully specified"
  in
  let* src = addr_of f.Filter.src in
  let* dst = addr_of f.Filter.dst in
  let* proto =
    match f.Filter.proto with
    | Filter.Num p -> Ok p
    | Filter.Any_num -> Error "protocol must be fully specified"
  in
  let port = function
    | Filter.Port p -> Ok p
    | Filter.Any_port | Filter.Port_range _ -> Error "port must be fully specified"
  in
  let* sport = port f.Filter.sport in
  let* dport = port f.Filter.dport in
  let* iface =
    match f.Filter.iface with
    | Filter.Num i -> Ok i
    | Filter.Any_num -> Error "interface must be fully specified"
  in
  Ok (Flow_key.make ~src ~dst ~proto ~sport ~dport ~iface)

let parse_config tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> (tok, ""))
    tokens

let int_arg name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let instance_arg router s =
  let* id = int_arg "instance" s in
  match Pcu.find_instance router.Router.pcu id with
  | Some inst -> Ok inst
  | None -> Error (Printf.sprintf "no instance %d" id)

let show router what =
  match what with
  | "plugins" ->
    Ok
      (String.concat "\n"
         (List.sort String.compare (Pcu.plugin_names router.Router.pcu)))
  | "instances" ->
    Ok
      (String.concat "\n"
         (List.map
            (fun (i : Plugin.t) ->
              Printf.sprintf "%d: %s@%s — %s" i.Plugin.instance_id
                i.Plugin.plugin_name (Gate.name i.Plugin.gate)
                (i.Plugin.describe ()))
            (List.sort
               (fun (a : Plugin.t) b -> compare a.Plugin.instance_id b.Plugin.instance_id)
               (Pcu.instances router.Router.pcu))))
  | "ifaces" ->
    Ok
      (String.concat "\n"
         (Array.to_list
            (Array.map (Format.asprintf "%a" Iface.pp) router.Router.ifaces)))
  | "routes" ->
    let routes = ref [] in
    Route_table.iter (fun r -> routes := Format.asprintf "%a" Route_table.pp_route r :: !routes)
      router.Router.routes;
    Ok (String.concat "\n" (List.sort String.compare !routes))
  | "flows" ->
    let ft = Aiu.flow_table (Router.aiu router) in
    let s = Flow_table.stats ft in
    Ok
      (Printf.sprintf
         "live=%d capacity=%d lookups=%d hits=%d misses=%d evictions=%d recycled=%d"
         (Flow_table.length ft) (Flow_table.capacity ft) s.Flow_table.lookups
         s.Flow_table.hits s.Flow_table.misses s.Flow_table.evictions
         s.Flow_table.recycled)
  | _ -> Error (Printf.sprintf "show: unknown object %S" what)

let show_faults router =
  let pcu = router.Router.pcu in
  let header =
    Printf.sprintf "policy=%s budget=%s threshold=%d"
      (Fault.policy_name router.Router.fault_policy)
      (match router.Router.cycle_budget with
       | Some b -> string_of_int b
       | None -> "unlimited")
      (Pcu.quarantine_threshold pcu)
  in
  let lines =
    List.map
      (fun (i : Pcu.fault_info) ->
        Printf.sprintf "%d: %s@%s faults=%d consecutive=%d%s%s"
          i.Pcu.instance.Plugin.instance_id
          i.Pcu.instance.Plugin.plugin_name
          (Gate.name i.Pcu.instance.Plugin.gate)
          i.Pcu.total_faults i.Pcu.consecutive_faults
          (if i.Pcu.quarantined then " QUARANTINED" else "")
          (if i.Pcu.last_fault = "" then ""
           else Printf.sprintf " last=%S" i.Pcu.last_fault))
      (Pcu.fault_report pcu)
  in
  Ok (String.concat "\n" (header :: lines))

let gate_name_of_int g =
  match Gate.of_int g with Some g -> Gate.name g | None -> string_of_int g

let trace_json () =
  Rp_obs.Telemetry.to_chrome_json ~gate_name:gate_name_of_int ~mhz:Cost.cpu_mhz
    ()

(* Top-N flows by bytes: buffered export records plus the live entries
   still sitting in the inline flow table, so the view covers both
   finished and in-flight flows.  (Sharded workers' private tables are
   domain-private and not read here; their records appear once
   exported.) *)
let flows_top router n =
  let live = ref [] in
  Flow_table.iter
    (fun r ->
      if Flow_table.packets r > 0 then
        live := Flow_export.record_of ~reason:"live" r :: !live)
    (Aiu.flow_table (Router.aiu router));
  let all = List.rev_append !live (Rp_obs.Flowlog.peek ()) in
  let all =
    List.sort
      (fun (a : Rp_obs.Flowlog.record) b ->
        compare (b.bytes, b.packets) (a.bytes, a.packets))
      all
  in
  let top = List.filteri (fun i _ -> i < n) all in
  let header =
    Printf.sprintf "%-44s %8s %10s %6s %6s %6s  %s" "flow" "pkts" "bytes"
      "fwd" "drop" "abs" "state"
  in
  let row (r : Rp_obs.Flowlog.record) =
    Printf.sprintf "%-44s %8d %10d %6d %6d %6d  %s"
      (Rp_obs.Flowlog.key_string r)
      r.packets r.bytes r.forwarded r.dropped r.absorbed r.reason
  in
  Ok (String.concat "\n" (header :: List.map row top))

let session_table_arg rest =
  match rest with
  | [] -> Ok (Rp_session.Session.Table.get "default")
  | [ name ] -> Ok (Rp_session.Session.Table.get name)
  | _ -> Error "expected at most one table name"

let session_line (s : Rp_session.Session.t) =
  let open Rp_session.Session in
  let xlat =
    if s.nat then
      Printf.sprintf " => %s:%d -> %s:%d"
        (Ipaddr.to_string s.xlat_src) s.xlat_sport
        (Ipaddr.to_string s.xlat_dst) s.xlat_dport
    else ""
  in
  Printf.sprintf "%d: %s %s:%d -> %s:%d if%d%s state=%s fwd=%d/%dB rev=%d/%dB drops=%d%s"
    s.id (Proto.name s.proto)
    (Ipaddr.to_string s.orig_src) s.orig_sport
    (Ipaddr.to_string s.orig_dst) s.orig_dport
    s.iface xlat (state_name s)
    (Atomic.get s.fwd_pkts) (Atomic.get s.fwd_bytes)
    (Atomic.get s.rev_pkts) (Atomic.get s.rev_bytes)
    (Atomic.get s.drops)
    (match s.qos with Some q -> Printf.sprintf " tos=%d" q | None -> "")

(* One screen of router health: packet totals, per-shard latency
   quantiles (model cycles), nonzero drop reasons, and the health
   probes with their watermarks.  Everything here is a read — safe to
   poll from a watch loop. *)
let top router =
  let c name = Rp_obs.Counter.get (Rp_obs.Registry.counter name) in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "packets=%d forwarded=%d local=%d absorbed=%d dropped=%d\n"
       (c "ip_core.packets") (c "ip_core.forwarded")
       (c "ip_core.delivered_local") (c "ip_core.absorbed")
       (c "ip_core.dropped"));
  (match Rp_engine.Engine.find router with
   | Some e -> Buffer.add_string b (Rp_engine.Engine.stats_string e ^ "\n")
   | None -> Buffer.add_string b "engine: none attached (inline data path)\n");
  Buffer.add_string b (Rp_obs.Slo.status () ^ "\n");
  (match Rp_obs.Slo.shard_table () with
   | [] -> ()
   | rows ->
     Buffer.add_string b
       (Printf.sprintf "%-6s %-7s %9s %9s %9s %9s\n" "shard" "class" "count"
          "p50" "p99" "p999");
     List.iter
       (fun (shard, cls, h) ->
         Buffer.add_string b
           (Printf.sprintf "%-6d %-7s %9d %9.0f %9.0f %9.0f\n" shard
              (Rp_obs.Slo.cls_name cls)
              (Rp_obs.Histogram.total h)
              (Rp_obs.Histogram.quantile h 0.5)
              (Rp_obs.Histogram.quantile h 0.99)
              (Rp_obs.Histogram.quantile h 0.999)))
       rows);
  Buffer.add_string b (Rp_obs.Drop_reason.to_string () ^ "\n");
  Buffer.add_string b (Rp_obs.Health.to_string ());
  Ok (Buffer.contents b)

(* Commands that change what the sharded engine's workers classify or
   route against: after one succeeds, an attached engine must
   republish its snapshot so the shards replay the deltas (or
   recompile).  [stats reset] and pure introspection are not here;
   neither are attach/detach (the qdisc runs on the control domain,
   outside the snapshot). *)
let mutates_classifier tokens =
  match tokens with
  | ("bind" | "unbind" | "free" | "reserve" | "modunload") :: _ -> true
  | "route" :: ("add" | "del") :: _ -> true
  | "plugin" :: ("quarantine" | "restore") :: _ -> true
  | "fault" :: ("policy" | "budget" | "threshold") :: _ -> true
  | "classifier" :: "compiled" :: _ -> true
  | _ -> false

let exec_tokens router tokens =
  match tokens with
  | [] -> Ok ""
  | [ "modload"; p ] ->
    (match Plugin_lib.find p with
     | None -> Error (Printf.sprintf "no plugin %S in the plugin library" p)
     | Some m ->
       let* () = Pcu.modload router.Router.pcu m in
       Ok (Printf.sprintf "loaded %s" p))
  | [ "modload-file"; path ] ->
    let* names = Dynload.modload_file router.Router.pcu path in
    Ok (Printf.sprintf "loaded %s from %s" (String.concat ", " names) path)
  | [ "modunload"; p ] ->
    let* () = Pcu.modunload router.Router.pcu p in
    Ok (Printf.sprintf "unloaded %s" p)
  | "create" :: p :: config ->
    let* inst = Pcu.create_instance router.Router.pcu ~plugin:p (parse_config config) in
    Ok (Printf.sprintf "instance %d" inst.Plugin.instance_id)
  | [ "free"; id ] ->
    let* id = int_arg "instance" id in
    let* () = Pcu.free_instance router.Router.pcu id in
    Ok (Printf.sprintf "freed %d" id)
  | [ "bind"; id; filter ] ->
    let* id = int_arg "instance" id in
    let* f = parse_filter filter in
    let* () = Pcu.register_instance router.Router.pcu ~instance:id f in
    Ok (Printf.sprintf "bound %s to instance %d" (Filter.to_string f) id)
  | [ "unbind"; id; filter ] ->
    let* id = int_arg "instance" id in
    let* f = parse_filter filter in
    let* () = Pcu.deregister_instance router.Router.pcu ~instance:id f in
    Ok "unbound"
  | [ "attach"; id; ifc ] ->
    let* inst = instance_arg router id in
    let* ifc = int_arg "iface" ifc in
    if inst.Plugin.scheduler = None then
      Error (Printf.sprintf "instance %d is not a scheduler" inst.Plugin.instance_id)
    else begin
      Iface.attach_scheduler (Router.iface router ifc) inst;
      Ok (Printf.sprintf "if%d qdisc = %s#%d" ifc inst.Plugin.plugin_name
            inst.Plugin.instance_id)
    end
  | [ "detach"; ifc ] ->
    let* ifc = int_arg "iface" ifc in
    Iface.detach_scheduler (Router.iface router ifc);
    Ok (Printf.sprintf "if%d qdisc = fifo" ifc)
  | [ "reserve"; id; rate; filter ] ->
    let* inst = instance_arg router id in
    let* rate_bps = int_arg "rate" rate in
    let* f = parse_filter filter in
    let* key = key_of_filter f in
    if inst.Plugin.plugin_name <> "drr" then
      Error "reserve: only drr instances take reservations"
    else
      let* () =
        Rp_sched.Drr_plugin.reserve ~instance_id:inst.Plugin.instance_id ~key
          ~rate_bps
      in
      (* The reservation implies the flow is scheduled by this
         instance. *)
      let* () = Pcu.register_instance router.Router.pcu
          ~instance:inst.Plugin.instance_id f
      in
      Ok (Printf.sprintf "reserved %d bps for %s" rate_bps (Filter.to_string f))
  | "message" :: p :: key :: payload ->
    let* reply = Pcu.message router.Router.pcu ~plugin:p key (String.concat " " payload) in
    Ok reply
  | [ "route"; "add"; prefix; ifc ] | [ "route"; "add"; prefix; ifc; _ ] ->
    (match Prefix.of_string_opt prefix with
     | None -> Error (Printf.sprintf "bad prefix %S" prefix)
     | Some p ->
       let* ifc_id = int_arg "iface" ifc in
       let next_hop =
         match tokens with
         | [ _; _; _; _; nh ] -> Ipaddr.of_string_opt nh
         | _ -> None
       in
       Router.add_route router p ?next_hop ~iface:ifc_id ();
       Ok (Printf.sprintf "route %s -> if%d" (Prefix.to_string p) ifc_id))
  | [ "route"; "del"; prefix ] ->
    (match Prefix.of_string_opt prefix with
     | None -> Error (Printf.sprintf "bad prefix %S" prefix)
     | Some p ->
       Route_table.remove router.Router.routes p;
       Ok (Printf.sprintf "route %s removed" (Prefix.to_string p)))
  | [ "faults"; "show" ] -> show_faults router
  | [ "plugin"; "quarantine"; id ] ->
    let* id = int_arg "instance" id in
    let* () = Router.quarantine router id in
    Ok (Printf.sprintf "instance %d quarantined" id)
  | [ "plugin"; "restore"; id ] ->
    let* id = int_arg "instance" id in
    let* () = Router.restore router id in
    Ok (Printf.sprintf "instance %d restored" id)
  | [ "fault"; "policy"; p ] ->
    (match Fault.policy_of_name p with
     | Some policy ->
       router.Router.fault_policy <- policy;
       Ok (Printf.sprintf "fault policy = %s" p)
     | None -> Error "fault policy: expected drop|continue|unbind")
  | [ "fault"; "budget"; "off" ] ->
    router.Router.cycle_budget <- None;
    Ok "fault budget = unlimited"
  | [ "fault"; "budget"; n ] ->
    let* n = int_arg "budget" n in
    if n < 1 then Error "fault budget: expected a positive cycle count or off"
    else begin
      router.Router.cycle_budget <- Some n;
      Ok (Printf.sprintf "fault budget = %d cycles" n)
    end
  | [ "fault"; "threshold"; n ] ->
    let* n = int_arg "threshold" n in
    if n < 1 then Error "fault threshold: expected a positive count"
    else begin
      Pcu.set_quarantine_threshold router.Router.pcu n;
      Ok (Printf.sprintf "fault threshold = %d consecutive" n)
    end
  | "fault" :: _ -> Error "usage: fault policy drop|continue|unbind | fault budget N|off | fault threshold N"
  | [ "show"; what ] -> show router what
  (* The metric registry: the same snapshot the --metrics-out flags
     write.  [pattern] is a substring filter over metric names. *)
  | [ "stats"; "show" ] -> Ok (Rp_obs.Registry.dump ())
  | [ "stats"; "show"; pattern ] -> Ok (Rp_obs.Registry.dump ~pattern ())
  | [ "stats"; "json" ] -> Ok (Rp_obs.Registry.dump_json ())
  | [ "stats"; "json"; pattern ] -> Ok (Rp_obs.Registry.dump_json ~pattern ())
  | [ "stats"; "reset" ] ->
    Rp_obs.Registry.reset ();
    Ok "counters reset"
  | "stats" :: _ -> Error "usage: stats show|json [pattern] | stats reset"
  | [ "engine"; "stats" ] ->
    (match Rp_engine.Engine.find router with
     | Some e -> Ok (Rp_engine.Engine.stats_string e)
     | None -> Ok "engine: none attached (inline data path)")
  (* Delta-publication knobs.  [coalesce N [MS]] batches mutations:
     classifier-changing commands publish only once N are pending (or
     MS milliseconds passed since the first); [coalesce off] restores
     publish-per-mutation.  [backlog N] bounds the delta log shards
     can replay from; [delta on|off] toggles delta recording entirely
     (off = every publication recompiles, the pre-delta behavior);
     [publish] forces out anything pending right now. *)
  | [ "engine"; "coalesce"; "off" ] ->
    (match Rp_engine.Engine.find router with
     | Some e ->
       Rp_engine.Engine.set_coalesce e ~count:1 ();
       Ok "coalescing off (publish per mutation)"
     | None -> Error "engine coalesce: no engine attached")
  | "engine" :: "coalesce" :: n :: rest ->
    let* n = int_arg "mutation count" n in
    let* window_s =
      match rest with
      | [] -> Ok None
      | [ ms ] ->
        let* ms = int_arg "window (ms)" ms in
        if ms < 1 then Error "engine coalesce: window must be positive"
        else Ok (Some (float_of_int ms /. 1000.))
      | _ -> Error "usage: engine coalesce N [MS] | engine coalesce off"
    in
    if n < 1 then Error "engine coalesce: count must be positive"
    else
      (match Rp_engine.Engine.find router with
       | Some e ->
         Rp_engine.Engine.set_coalesce e ~count:n ?window_s ();
         Ok
           (Printf.sprintf "coalescing %d mutation(s)%s" n
              (match window_s with
               | Some w -> Printf.sprintf " or %.0f ms" (w *. 1000.)
               | None -> ""))
       | None -> Error "engine coalesce: no engine attached")
  | [ "engine"; "backlog"; n ] ->
    let* n = int_arg "backlog" n in
    if n < 1 then Error "engine backlog: expected a positive limit"
    else
      (match Rp_engine.Engine.find router with
       | Some e ->
         Rp_engine.Engine.set_backlog e n;
         Ok (Printf.sprintf "delta backlog = %d entries" n)
       | None -> Error "engine backlog: no engine attached")
  | [ "engine"; "delta"; ("on" | "off") as v ] ->
    (match Rp_engine.Engine.find router with
     | Some e ->
       Rp_engine.Engine.set_deltas e (v = "on");
       Ok (Printf.sprintf "delta publication %s" v)
     | None -> Error "engine delta: no engine attached")
  | [ "engine"; "publish" ] ->
    (match Rp_engine.Engine.find router with
     | Some e ->
       Rp_engine.Engine.publish e;
       Ok (Printf.sprintf "published generation %d"
             (Rp_engine.Engine.generation e))
     | None -> Error "engine publish: no engine attached")
  | "engine" :: _ ->
    Error
      "usage: engine stats | engine coalesce N [MS]|off | engine backlog N | \
       engine delta on|off | engine publish"
  (* Hot-path event tracing (per-domain event rings). *)
  | [ "trace"; "on" ] ->
    Rp_obs.Telemetry.enable ~every:1;
    Ok "tracing on (sampling 1-in-1)"
  | [ "trace"; "on"; n ] ->
    let* n = int_arg "sampling period" n in
    if n < 1 then Error "trace on: expected a positive sampling period"
    else begin
      Rp_obs.Telemetry.enable ~every:n;
      Ok (Printf.sprintf "tracing on (sampling 1-in-%d)" n)
    end
  | [ "trace"; "off" ] ->
    Rp_obs.Telemetry.disable ();
    Ok "tracing off"
  | [ "trace"; "status" ] -> Ok (Rp_obs.Telemetry.status ())
  | [ "trace"; "dump" ] -> Ok (trace_json ())
  | [ "trace"; "dump"; path ] ->
    Rp_obs.Telemetry.write_chrome_json ~gate_name:gate_name_of_int
      ~mhz:Cost.cpu_mhz path;
    Ok (Printf.sprintf "trace written to %s" path)
  | "trace" :: _ -> Error "usage: trace on [N] | trace off | trace status | trace dump [FILE]"
  (* NetFlow-style flow records. *)
  | [ "flows"; "top" ] -> flows_top router 10
  | [ "flows"; "top"; n ] ->
    let* n = int_arg "count" n in
    if n < 1 then Error "flows top: expected a positive count"
    else flows_top router n
  | "flows" :: _ -> Error "usage: flows top [N]"
  (* The session subsystem (NAT + conntrack + QoS).  Tables are named,
     created on first use; plugin instances select theirs with
     [table=NAME] (default "default"). *)
  | "sessions" :: "show" :: rest ->
    let* t = session_table_arg rest in
    let st = Rp_session.Session.Table.stats t in
    let lines = ref [] in
    Rp_session.Session.Table.iter
      (fun s -> lines := session_line s :: !lines)
      t;
    Ok
      (String.concat "\n"
         (Printf.sprintf
            "table=%s live=%d created=%d expired=%d lookups=%d hits=%d \
             misses=%d cached=%d rewrites=%d ct-drops=%d conflicts=%d"
            (Rp_session.Session.Table.name t)
            st.Rp_session.Session.Table.live st.created st.expired st.lookups
            st.hits st.misses st.cached_hits st.rewrites st.ct_drops
            st.key_conflicts
         :: List.sort String.compare !lines))
  | "sessions" :: "top" :: rest ->
    let* n, rest =
      match rest with
      | n :: rest when int_of_string_opt n <> None ->
        let* n = int_arg "count" n in
        Ok (n, rest)
      | rest -> Ok (10, rest)
    in
    if n < 1 then Error "sessions top: expected a positive count"
    else
      let* t = session_table_arg rest in
      let all = ref [] in
      Rp_session.Session.Table.iter (fun s -> all := s :: !all) t;
      let bytes (s : Rp_session.Session.t) =
        Atomic.get s.Rp_session.Session.fwd_bytes
        + Atomic.get s.Rp_session.Session.rev_bytes
      in
      let sorted =
        List.sort (fun a b -> compare (bytes b, b.Rp_session.Session.id)
                     (bytes a, a.Rp_session.Session.id)) !all
      in
      Ok
        (String.concat "\n"
           (List.map session_line (List.filteri (fun i _ -> i < n) sorted)))
  | "sessions" :: "timeout" :: cls :: secs :: rest ->
    let* cls =
      match cls with
      | "tcp-syn" -> Ok `Tcp_syn
      | "tcp-est" -> Ok `Tcp_est
      | "tcp-fin" -> Ok `Tcp_fin
      | "udp" -> Ok `Udp
      | "other" -> Ok `Other
      | _ -> Error "sessions timeout: class is tcp-syn|tcp-est|tcp-fin|udp|other"
    in
    let* secs = int_arg "seconds" secs in
    if secs < 1 then Error "sessions timeout: expected a positive duration"
    else
      let* t = session_table_arg rest in
      Rp_session.Session.Table.set_timeout t cls
        (Int64.mul (Int64.of_int secs) 1_000_000_000L);
      Ok (Printf.sprintf "timeout = %d s" secs)
  | "sessions" :: "expire" :: now_s :: rest ->
    let* now_s = int_arg "now (seconds)" now_s in
    let* t = session_table_arg rest in
    let n =
      Rp_session.Session.Table.expire t
        ~now:(Int64.mul (Int64.of_int now_s) 1_000_000_000L)
    in
    Ok (Printf.sprintf "expired %d session(s)" n)
  | "sessions" :: "flush" :: rest ->
    let* t = session_table_arg rest in
    Ok (Printf.sprintf "flushed %d session(s)" (Rp_session.Session.Table.flush t))
  | "sessions" :: _ ->
    Error
      "usage: sessions show [TABLE] | sessions top [N] [TABLE] | sessions \
       timeout CLASS SECS [TABLE] | sessions expire NOW_S [TABLE] | sessions \
       flush [TABLE]"
  | "nat" :: "add" :: kind :: filter :: addr :: config ->
    let* kind =
      match kind with
      | "snat" -> Ok `Snat
      | "dnat" -> Ok `Dnat
      | _ -> Error "nat add: kind is snat|dnat"
    in
    let* f = parse_filter filter in
    (match Ipaddr.of_string_opt addr with
     | None -> Error (Printf.sprintf "nat add: bad address %S" addr)
     | Some a when Filter.is_v4 f <> Ipaddr.is_v4 a ->
       Error "nat add: address family does not match the filter"
     | Some addr ->
       let config = parse_config config in
       let opt_int key =
         match List.assoc_opt key config with
         | None -> Ok None
         | Some v ->
           let* v = int_arg key v in
           Ok (Some v)
       in
       let* port = opt_int "port" in
       let* tos = opt_int "tos" in
       let t =
         Rp_session.Session.Table.get
           (Option.value (List.assoc_opt "table" config) ~default:"default")
       in
       Rp_session.Session.Table.add_rule t
         { Rp_session.Session.Table.kind; filter = f; addr; port; tos };
       Ok
         (Printf.sprintf "nat rule %d"
            (List.length (Rp_session.Session.Table.rules t) - 1)))
  | "nat" :: "del" :: i :: rest ->
    let* i = int_arg "rule" i in
    let* t = session_table_arg rest in
    let* () = Rp_session.Session.Table.del_rule t i in
    Ok (Printf.sprintf "deleted nat rule %d" i)
  | "nat" :: "show" :: rest ->
    let* t = session_table_arg rest in
    Ok
      (String.concat "\n"
         (List.mapi
            (fun i (r : Rp_session.Session.Table.nat_rule) ->
              Printf.sprintf "%d: %s %s -> %s%s%s" i
                (match r.kind with `Snat -> "snat" | `Dnat -> "dnat")
                (Filter.to_string r.filter)
                (Ipaddr.to_string r.addr)
                (match r.port with
                 | Some p -> Printf.sprintf ":%d" p
                 | None -> "")
                (match r.tos with
                 | Some q -> Printf.sprintf " tos=%d" q
                 | None -> ""))
            (Rp_session.Session.Table.rules t)))
  | "nat" :: _ ->
    Error
      "usage: nat add snat|dnat <FILTER> ADDR [port=N] [tos=N] [table=NAME] \
       | nat del N [TABLE] | nat show [TABLE]"
  (* Cold-start classification strategy: per-gate DAG walks (the
     paper's n lookups, the default) or the compiled cross-gate
     structure (one traversal for all gates).  Counted as a
     classifier-mutating command so an attached engine republishes and
     the shards pick the mode up from the snapshot. *)
  | [ "classifier"; "compiled"; ("on" | "off") as v ] ->
    let mode = if v = "on" then `Compiled else `Per_gate in
    Aiu.set_mode (Router.aiu router) mode;
    Ok (Printf.sprintf "classifier = %s" (Aiu.mode_to_string mode))
  | [ "classifier"; "show" ] ->
    Ok (Aiu.mode_to_string (Aiu.mode (Router.aiu router)))
  | "classifier" :: _ ->
    Error "usage: classifier compiled on|off | classifier show"
  (* Latency SLOs on the deterministic model clock.  [set N] arms
     exemplar capture; [off] stops stamping entirely (for A/B runs —
     Table-3 cycles are identical either way). *)
  | [ "slo"; "show" ] -> Ok (Rp_obs.Slo.status ())
  | [ "slo"; "set"; n ] ->
    let* n = int_arg "threshold (cycles)" n in
    if n < 1 then Error "slo set: expected a positive cycle count"
    else begin
      Rp_obs.Slo.set_threshold n;
      Ok (Printf.sprintf "slo = %d model cycles (exemplar capture armed)" n)
    end
  | [ "slo"; "clear" ] ->
    Rp_obs.Slo.set_threshold 0;
    Ok "slo threshold cleared (exemplar capture disarmed)"
  | [ "slo"; ("on" | "off") as v ] ->
    Rp_obs.Slo.set_stamping (v = "on");
    Ok (Printf.sprintf "slo stamping %s" v)
  | "slo" :: "exemplars" :: rest ->
    let* limit =
      match rest with
      | [] -> Ok 10
      | [ n ] -> int_arg "count" n
      | _ -> Error "usage: slo exemplars [N]"
    in
    if limit < 1 then Error "slo exemplars: expected a positive count"
    else
      (match Rp_obs.Slo.exemplars ~limit () with
       | [] -> Ok "no exemplars captured"
       | es ->
         Ok (String.concat "\n" (List.map Rp_obs.Slo.exemplar_to_string es)))
  | [ "slo"; "reset" ] ->
    Rp_obs.Slo.clear_exemplars ();
    Ok "exemplars cleared"
  | "slo" :: _ ->
    Error
      "usage: slo show | slo set N | slo clear | slo on|off | slo exemplars \
       [N] | slo reset"
  (* The unified drop-reason taxonomy (Σ per-reason == drops.total). *)
  | [ "drops"; "show" ] ->
    let rows =
      List.map
        (fun (r, n) ->
          Printf.sprintf "%-16s %d" (Rp_obs.Drop_reason.name r) n)
        (Rp_obs.Drop_reason.table ())
    in
    Ok
      (String.concat "\n"
         (rows
          @ [ Printf.sprintf "%-16s %d" "total" (Rp_obs.Drop_reason.total ()) ]))
  | "drops" :: _ -> Error "usage: drops show"
  (* The health probe sampler (last value + high-water mark). *)
  | [ "health"; "show" ] -> Ok (Rp_obs.Health.to_string ())
  | [ "health"; "sample" ] ->
    Rp_obs.Health.sample ();
    Ok (Rp_obs.Health.to_string ())
  | [ "health"; "reset-hwm" ] ->
    Rp_obs.Health.reset_hwm ();
    Ok "watermarks reset"
  | "health" :: _ -> Error "usage: health show | health sample | health reset-hwm"
  | [ "top" ] -> top router
  | "top" :: _ -> Error "usage: top"
  | cmd :: _ -> Error (Printf.sprintf "unknown command %S" cmd)

let exec router line =
  let* tokens = tokenize line in
  let* out = exec_tokens router tokens in
  (* Control-plane changes reach running worker domains only through a
     snapshot publication — same path as the programmatic API.  Goes
     through the coalescing gate, so setup bursts can be batched into
     one publication (see [engine coalesce]). *)
  if mutates_classifier tokens then
    (match Rp_engine.Engine.find router with
     | Some e -> Rp_engine.Engine.maybe_publish e
     | None -> ());
  Ok out

let exec_script router text =
  let lines = String.split_on_char '\n' text in
  let rec loop acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then loop acc (lineno + 1) rest
      else
        (match exec router trimmed with
         | Ok out -> loop (out :: acc) (lineno + 1) rest
         | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  loop [] 1 lines
