(** The Plugin Manager: the paper's [pmgr] user-space utility plus the
    Router Plugin Library it is built on (section 3.1).  "It is a
    simple application which takes arguments from the command line and
    translates them into calls" against the kernel components — here,
    against a {!Rp_core.Router.t}.

    Command language (one command per call / per script line):

    {v
    modload <plugin>                      load from the plugin library
    modload-file <path.cmxs>              dynamically load an object file
    modunload <plugin>
    create <plugin> [k=v ...]             -> "instance <id>"
    free <instance>
    bind <instance> <filter>              register filter with the AIU
    unbind <instance> <filter>
    attach <instance> <iface>             scheduler instance -> qdisc
    detach <iface>
    reserve <instance> <rate_bps> <filter>  DRR reservation (exact filter)
    message <plugin> <key> [payload]
    route add <prefix> <iface> [<next-hop>]
    route del <prefix>
    show plugins | instances | ifaces | routes | flows
    faults show                           per-instance fault/quarantine state
    plugin quarantine <instance>          tear down bindings, degrade to default
    plugin restore <instance>             re-bind a quarantined instance
    fault policy drop|continue|unbind     packet fate on a contained fault
    fault budget <cycles>|off             per-invocation handler cycle budget
    fault threshold <n>                   consecutive faults before quarantine
    engine stats                          sharded-engine state, if one is attached
    stats show|json [pattern]             metric registry snapshot
    stats reset                           zero all counters/histograms
    trace on [N]                          hot-path tracing, sampling 1-in-N (default 1)
    trace off | trace status
    trace dump [FILE]                     Chrome trace-event JSON (Perfetto-loadable)
    flows top [N]                         top flows by bytes (live + exported records)
    v}

    When a {!Rp_engine.Engine.t} is attached to the router, every
    command that mutates classification or routing state republishes
    the engine's snapshot so worker shards pick the change up.

    Filters use the paper's six-tuple syntax, e.g.
    [<129.0.0.0/8, 192.94.233.10, TCP, *, *, *>]. *)

open Rp_core

(** [exec router line] executes one command, returning its output. *)
val exec : Router.t -> string -> (string, string) result

(** [exec_script router text] runs commands line by line (['#']
    comments and blank lines skipped), stopping at the first error,
    which is reported with its line number. *)
val exec_script : Router.t -> string -> (string list, string) result
