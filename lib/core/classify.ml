open Rp_pkt

(* The one classify-and-charge implementation: [Ip_core.classify_at]
   and [Rp_engine.Shard]'s data path both delegate here, so the two
   engines cannot drift (a regression test pins cycle-for-cycle
   equality).  Nothing here depends on which classifier mode the AIU
   runs — the accesses are measured, not modeled. *)
let at aiu ~now ~gate m =
  let had_fix = m.Mbuf.fix <> None in
  let result, accesses =
    Rp_lpm.Access.measure (fun () ->
        Rp_classifier.Aiu.classify aiu m ~gate:(Gate.to_int gate) ~now)
  in
  if not had_fix then Cost.charge Cost.flow_hash;
  Cost.charge_mem accesses;
  Cost.charge Cost.gate_invoke;
  if m.Mbuf.tseq <> 0 then
    Rp_obs.Telemetry.record ~ts:(Cost.get ()) ~kind:Rp_obs.Telemetry.Classify
      ~gate:(Gate.to_int gate) ~pkt:m.Mbuf.tseq ~arg:accesses;
  result
