(** The single classification entry point shared by every engine.

    Both the inline data path ({!Ip_core}) and the sharded workers
    ([Rp_engine.Shard]) must charge a gate's classification
    identically — the flow hash on the packet's first AIU consult, the
    measured memory accesses of whatever lookups the AIU performed,
    one gate-invocation overhead — or the Table-3 model figures drift
    between engines.  Those two call sites used to be hand-kept
    copies; this module is the one implementation they now share. *)

open Rp_pkt

(** [at aiu ~now ~gate m] classifies [m] at [gate] against [aiu],
    charging the framework costs: {!Cost.flow_hash} the first time
    this packet consults the AIU (no FIX yet), the measured memory
    accesses of the classification, and {!Cost.gate_invoke}.  Emits a
    [Classify] telemetry event for sampled packets. *)
val at :
  Plugin.t Rp_classifier.Aiu.t ->
  now:int64 ->
  gate:Gate.t ->
  Mbuf.t ->
  (Plugin.t * Plugin.t Rp_classifier.Flow_table.record) option
