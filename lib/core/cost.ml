let cpu_mhz = 233.0

let mem_access = 14
let flow_hash = 17
let base_forward = 6460
let gate_invoke = 150
let flow_detect = 45
let monolithic_classifier = 250
let drr_enqueue = 750
let drr_dequeue = 700
let hfsc_enqueue = 1150
let hfsc_dequeue = 1100

(* Domain-local counter: each engine shard accounts its own model
   cycles without racing the others, and the single-domain case keeps
   the plain-ref cost (DLS lookup + ref bump, no atomics). *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let[@inline] cur () = Domain.DLS.get counter

let charge n = let c = cur () in c := !c + n
let charge_mem n = let c = cur () in c := !c + (n * mem_access)
let reset () = cur () := 0
let get () = !(cur ())

let measure f =
  let c = cur () in
  let before = !c in
  let result = f () in
  (result, !c - before)

let ns_of_cycles c = float_of_int c *. 1000.0 /. cpu_mhz
let us_of_cycles c = ns_of_cycles c /. 1000.0
