(** Cycle cost model, calibrated to the paper's measurement platform
    (a 233 MHz Pentium II — "P6/233" — with 60 ns memory).

    The paper reports its evaluation in processor cycles per packet
    (Table 3).  This module is the reproduction's analogue of the
    Pentium cycle counter: data-path components charge cycles as they
    run, and the benchmarks read the counter.  The per-operation
    constants are calibrated so the composed totals land where the
    paper's measurements do — e.g. a best-effort forward costs 6460
    cycles, the plugin framework with three gates adds ≈500, DRR adds
    ≈1650 — while the {e structure} of the charges (what is charged
    where) follows the actual code path taken. *)

val cpu_mhz : float
(** 233. *)

(** Constants (cycles). *)

val mem_access : int
(** 14 — one 60 ns memory access at 233 MHz (Table 2's conversion). *)

val flow_hash : int
(** 17 — the flow-table hash function (section 5.2). *)

val base_forward : int
(** 6460 — the unmodified best-effort kernel's per-packet path
    (device driver, header validation, route lookup, transmit). *)

val gate_invoke : int
(** 150 — one gate: the macro, the AIU/FIX dereference, and the
    indirect call into the plugin instance. *)

val flow_detect : int
(** 45 — first-gate flow detection on the cached path: the 17-cycle
    hash plus two dependent memory accesses (bucket, record). *)

val monolithic_classifier : int
(** 250 — the ALTQ-style built-in classifier of the monolithic
    comparison kernel (slower hash; Table 3 discussion). *)

val drr_enqueue : int
val drr_dequeue : int
(** 750 / 700 — queue manipulation of the DRR scheduler; their sum is
    the ≈1650-cycle scheduling overhead visible in Table 3. *)

val hfsc_enqueue : int
val hfsc_dequeue : int
(** 1150 / 1100 — H-FSC's service-curve bookkeeping (the paper cites
    25-37 % overhead for H-FSC vs 20 % for DRR). *)

(** Counter.

    The counter is domain-local: each domain (e.g. an engine shard)
    charges and reads its own meter, so concurrent shards account
    their model cycles independently and without races.  [reset]/[get]
    likewise act on the calling domain's meter only. *)

val charge : int -> unit

(** [charge_mem n] charges [n] memory accesses ([n * mem_access]
    cycles). *)
val charge_mem : int -> unit

val reset : unit -> unit
val get : unit -> int

(** [measure f] returns [f ()] and the cycles charged during the call. *)
val measure : (unit -> 'a) -> 'a * int

(** [ns_of_cycles c] converts to nanoseconds at {!cpu_mhz}. *)
val ns_of_cycles : int -> float

val us_of_cycles : int -> float
