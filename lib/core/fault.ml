type policy =
  | Drop_packet
  | Continue_packet
  | Unbind

type reason =
  | Exn of string
  | Budget of int

let policy_name = function
  | Drop_packet -> "drop"
  | Continue_packet -> "continue"
  | Unbind -> "unbind"

let policy_of_name = function
  | "drop" -> Some Drop_packet
  | "continue" -> Some Continue_packet
  | "unbind" -> Some Unbind
  | _ -> None

let reason_to_string = function
  | Exn e -> Printf.sprintf "exception: %s" e
  | Budget c -> Printf.sprintf "cycle budget exceeded (%d cycles)" c

let pp_policy ppf p = Format.pp_print_string ppf (policy_name p)
let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)
