(** Fault isolation for plugin invocations.

    The paper's promise is that plugins run "as fast as kernel code"
    without destabilizing the router — which requires that a
    misbehaving plugin cannot crash the data path.  Every gate
    dispatch is wrapped (see {!Ip_core}): an exception escaping a
    handler, or a per-invocation cycle-budget overrun, becomes a
    {e fault}.  Faults are counted, attributed to the plugin instance
    in the {!Pcu}, and converted to a configurable policy; an instance
    faulting too many times in a row is auto-quarantined. *)

(** What the data path does with a packet whose handler faulted. *)
type policy =
  | Drop_packet  (** discard the packet (fail-closed; the default) *)
  | Continue_packet  (** pretend the handler returned [Continue] (fail-open) *)
  | Unbind
      (** quarantine the faulting instance immediately and continue
          the packet on the gate's default path *)

type reason =
  | Exn of string  (** an exception escaped the handler *)
  | Budget of int  (** handler burned this many cycles, over the budget *)

val policy_name : policy -> string
val policy_of_name : string -> policy option
val reason_to_string : reason -> string
val pp_policy : Format.formatter -> policy -> unit
val pp_reason : Format.formatter -> reason -> unit
