(** Deterministic fault-injection plugin — the test vehicle for the
    fault-isolation layer.

    Config:
    - [every=N] fault on every Nth packet (default 1: every packet);
    - [mode=raise|burn] what a fault looks like: raise an exception
      (default), or burn cycles to trip the router's per-invocation
      cycle budget;
    - [burn=CYCLES] cycles charged in burn mode (default 100000).

    Like {!Empty_plugin}, [make ~gate ~name] manufactures one module
    per gate, since a plugin's type is fixed by its gate. *)

exception Injected of string

let make ~gate ~name : (module Plugin.PLUGIN) =
  (module struct
    let name = name
    let gate = gate
    let description = "deterministic fault injection (exception or cycle burn)"

    let create_instance ~instance_id ~code ~config =
      let int_cfg key default =
        match List.assoc_opt key config with
        | None -> Ok default
        | Some s -> (
            match int_of_string_opt s with
            | Some v when v > 0 -> Ok v
            | Some _ | None ->
              Error (Printf.sprintf "%s: %s must be a positive number" name key))
      in
      match int_cfg "every" 1 with
      | Error _ as e -> e
      | Ok every -> (
        match int_cfg "burn" 100_000 with
        | Error _ as e -> e
        | Ok burn ->
          let mode =
            match List.assoc_opt "mode" config with
            | None | Some "raise" -> Ok `Raise
            | Some "burn" -> Ok `Burn
            | Some other ->
              Error (Printf.sprintf "%s: unknown mode %S" name other)
          in
          match mode with
          | Error e -> Error e
          | Ok mode ->
            let seen = ref 0 in
            Ok
              (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
                 ~describe:(fun () ->
                   Printf.sprintf
                     "fault injector: every %d pkt(s), mode=%s, %d pkts seen"
                     every
                     (match mode with `Raise -> "raise" | `Burn -> "burn")
                     !seen)
                 (fun _ctx _m ->
                   incr seen;
                   if !seen mod every = 0 then
                     match mode with
                     | `Raise ->
                       raise
                         (Injected
                            (Printf.sprintf "%s#%d packet %d" name instance_id
                               !seen))
                     | `Burn ->
                       Cost.charge burn;
                       Plugin.Continue
                   else Plugin.Continue)))

    let message key _payload =
      match key with
      | "plugin-info" -> Ok description
      | _ -> Error (Printf.sprintf "%s: unknown message %s" name key)
  end)
