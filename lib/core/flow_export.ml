(* Bridge from the flow table's eviction hook to the obs flow-record
   ring: renders the typed flow-table record (addresses, gate
   bindings) into the string-keyed export form obs can hold without
   depending on lib/pkt or the plugin types.

   Installed on every AIU that carries live traffic — the router's own
   (inline path) and each shard's domain-private one — so a record
   leaving any flow table for any reason (recycled, expired, replaced,
   removed, flushed) becomes one NetFlow-style export record.  Flows
   that never carried an accounted packet (e.g. control-plane test
   classifications) are skipped. *)

open Rp_pkt
module Ft = Rp_classifier.Flow_table

(* The session layer (lib/session) knows whether a flow record's soft
   state points at a NAT'd session; this module cannot depend on it,
   so the translated-tuple extraction is a registered hook.  Absent
   (the default), every record exports with [translated = None] — the
   pre-session schema. *)
let translated_of : (Plugin.t Ft.record -> Rp_obs.Flowlog.xlate option) ref =
  ref (fun _ -> None)

let set_translated_of f = translated_of := f

(* Export-side reconciliation counters: every packet/byte attributed
   to a flow record eventually leaves the table inside exactly one
   export record, so after a flush these match the
   [flow_table.accounted_*] counters exactly. *)
let m_packets = Rp_obs.Registry.counter "flow_export.packets"
let m_bytes = Rp_obs.Registry.counter "flow_export.bytes"

let record_of ~reason (r : Plugin.t Ft.record) =
  let key = Ft.key r in
  let bindings =
    let acc = ref [] in
    Ft.iter_bindings r (fun ~gate (b : Plugin.t Ft.binding) ->
        let name =
          match Gate.of_int gate with
          | Some g -> Gate.name g
          | None -> string_of_int gate
        in
        acc := (name, b.Ft.instance.Plugin.instance_id) :: !acc);
    List.rev !acc
  in
  {
    Rp_obs.Flowlog.src = Ipaddr.to_string key.Flow_key.src;
    dst = Ipaddr.to_string key.Flow_key.dst;
    proto = key.Flow_key.proto;
    sport = key.Flow_key.sport;
    dport = key.Flow_key.dport;
    iface = key.Flow_key.iface;
    packets = Ft.packets r;
    bytes = Ft.bytes r;
    forwarded = Ft.fwd r;
    dropped = Ft.dropped r;
    absorbed = Ft.absorbed r;
    created_ns = Ft.created_ns r;
    last_ns = Ft.last_use_ns r;
    bindings;
    reason;
    translated = !translated_of r;
  }

let install (aiu : Plugin.t Rp_classifier.Aiu.t) =
  Ft.set_exporter (Rp_classifier.Aiu.flow_table aiu) (fun ~reason r ->
      if Ft.packets r > 0 then begin
        Rp_obs.Counter.add m_packets (Ft.packets r);
        Rp_obs.Counter.add m_bytes (Ft.bytes r);
        Rp_obs.Flowlog.emit (record_of ~reason r)
      end)
