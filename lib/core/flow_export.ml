(* Bridge from the flow table's eviction hook to the obs flow-record
   ring: renders the typed flow-table record (addresses, gate
   bindings) into the string-keyed export form obs can hold without
   depending on lib/pkt or the plugin types.

   Installed on every AIU that carries live traffic — the router's own
   (inline path) and each shard's domain-private one — so a record
   leaving any flow table for any reason (recycled, expired, replaced,
   removed, flushed) becomes one NetFlow-style export record.  Flows
   that never carried an accounted packet (e.g. control-plane test
   classifications) are skipped. *)

open Rp_pkt

(* The session layer (lib/session) knows whether a flow record's soft
   state points at a NAT'd session; this module cannot depend on it,
   so the translated-tuple extraction is a registered hook.  Absent
   (the default), every record exports with [translated = None] — the
   pre-session schema. *)
let translated_of :
    (Plugin.t Rp_classifier.Flow_table.record -> Rp_obs.Flowlog.xlate option)
    ref =
  ref (fun _ -> None)

let set_translated_of f = translated_of := f

let record_of ~reason (r : Plugin.t Rp_classifier.Flow_table.record) =
  let key = r.Rp_classifier.Flow_table.key in
  let bindings =
    List.rev
      (snd
         (Array.fold_left
            (fun (gate, acc) b ->
              match b with
              | None -> (gate + 1, acc)
              | Some (b : Plugin.t Rp_classifier.Flow_table.binding) ->
                let name =
                  match Gate.of_int gate with
                  | Some g -> Gate.name g
                  | None -> string_of_int gate
                in
                ( gate + 1,
                  (name,
                   b.Rp_classifier.Flow_table.instance.Plugin.instance_id)
                  :: acc ))
            (0, []) r.Rp_classifier.Flow_table.bindings))
  in
  {
    Rp_obs.Flowlog.src = Ipaddr.to_string key.Flow_key.src;
    dst = Ipaddr.to_string key.Flow_key.dst;
    proto = key.Flow_key.proto;
    sport = key.Flow_key.sport;
    dport = key.Flow_key.dport;
    iface = key.Flow_key.iface;
    packets = r.Rp_classifier.Flow_table.packets;
    bytes = r.Rp_classifier.Flow_table.bytes;
    forwarded = r.Rp_classifier.Flow_table.fwd;
    dropped = r.Rp_classifier.Flow_table.dropped;
    absorbed = r.Rp_classifier.Flow_table.absorbed;
    created_ns = r.Rp_classifier.Flow_table.created_ns;
    last_ns = r.Rp_classifier.Flow_table.last_use_ns;
    bindings;
    reason;
    translated = !translated_of r;
  }

let install (aiu : Plugin.t Rp_classifier.Aiu.t) =
  Rp_classifier.Flow_table.set_exporter
    (Rp_classifier.Aiu.flow_table aiu)
    (fun ~reason r ->
      if r.Rp_classifier.Flow_table.packets > 0 then
        Rp_obs.Flowlog.emit (record_of ~reason r))
