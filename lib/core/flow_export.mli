(** NetFlow-style flow-record emission.

    Installs {!Rp_obs.Flowlog} export on an AIU's flow table: every
    in-use record leaving the table (recycled / expired / replaced /
    removed / flushed) that carried at least one accounted packet is
    rendered — 5-tuple, packet/byte and per-verdict totals, lifetime,
    bound plugin instances per gate, eviction reason — and pushed onto
    the export ring.  {!Router.create} installs it on the inline
    path's AIU; each engine shard installs it on its domain-private
    AIU. *)

(** Install the exporter (replaces any previous one on this table). *)
val install : Plugin.t Rp_classifier.Aiu.t -> unit

(** The rendering itself, exposed for tests and custom sinks. *)
val record_of :
  reason:string ->
  Plugin.t Rp_classifier.Flow_table.record ->
  Rp_obs.Flowlog.record

(** Register the translated-tuple extractor: called once per exported
    record; [Some] marks the flow as NAT'd and adds the post-rewrite
    tuple to its export record.  Installed by the session layer
    (which owns the NAT state); defaults to [fun _ -> None]. *)
val set_translated_of :
  (Plugin.t Rp_classifier.Flow_table.record -> Rp_obs.Flowlog.xlate option) ->
  unit
