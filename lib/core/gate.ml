type t =
  | Ip_options
  | Security_in
  | Firewall
  | Routing
  | Congestion
  | Security_out
  | Scheduling
  | Stats

let all =
  [ Ip_options; Security_in; Firewall; Routing; Congestion; Security_out;
    Scheduling; Stats ]

let count = List.length all

let to_int = function
  | Ip_options -> 0
  | Security_in -> 1
  | Firewall -> 2
  | Routing -> 3
  | Congestion -> 4
  | Security_out -> 5
  | Scheduling -> 6
  | Stats -> 7

let of_int = function
  | 0 -> Some Ip_options
  | 1 -> Some Security_in
  | 2 -> Some Firewall
  | 3 -> Some Routing
  | 4 -> Some Congestion
  | 5 -> Some Security_out
  | 6 -> Some Scheduling
  | 7 -> Some Stats
  | _ -> None

let name = function
  | Ip_options -> "ip-options"
  | Security_in -> "security-in"
  | Firewall -> "firewall"
  | Routing -> "routing"
  | Congestion -> "congestion"
  | Security_out -> "security-out"
  | Scheduling -> "scheduling"
  | Stats -> "stats"

let of_name s =
  List.find_opt (fun g -> name g = s) all

let pp ppf g = Format.pp_print_string ppf (name g)
let equal a b = to_int a = to_int b

(* Per-gate data-path meters, indexed by [to_int]; created at load
   time so a metrics dump always carries the full gate schema, zeros
   included.  All IP-core call sites (inline gates, the routing gate,
   the scheduling classification at enqueue) share these. *)
let per_gate suffix =
  Array.of_list
    (List.map
       (fun g -> Rp_obs.Registry.counter ("gate." ^ name g ^ "." ^ suffix))
       all)

let m_dispatch = per_gate "dispatch"
let m_cycles = per_gate "cycles"
let m_drops = per_gate "drops"
let m_faults = per_gate "faults"

let dispatch g = m_dispatch.(to_int g)
let cycles g = m_cycles.(to_int g)
let drops g = m_drops.(to_int g)
let faults g = m_faults.(to_int g)
