type t =
  | Ip_options
  | Security_in
  | Firewall
  | Routing
  | Congestion
  | Security_out
  | Scheduling
  | Stats

let all =
  [ Ip_options; Security_in; Firewall; Routing; Congestion; Security_out;
    Scheduling; Stats ]

let count = List.length all

let to_int = function
  | Ip_options -> 0
  | Security_in -> 1
  | Firewall -> 2
  | Routing -> 3
  | Congestion -> 4
  | Security_out -> 5
  | Scheduling -> 6
  | Stats -> 7

let of_int = function
  | 0 -> Some Ip_options
  | 1 -> Some Security_in
  | 2 -> Some Firewall
  | 3 -> Some Routing
  | 4 -> Some Congestion
  | 5 -> Some Security_out
  | 6 -> Some Scheduling
  | 7 -> Some Stats
  | _ -> None

let name = function
  | Ip_options -> "ip-options"
  | Security_in -> "security-in"
  | Firewall -> "firewall"
  | Routing -> "routing"
  | Congestion -> "congestion"
  | Security_out -> "security-out"
  | Scheduling -> "scheduling"
  | Stats -> "stats"

let of_name s =
  List.find_opt (fun g -> name g = s) all

let pp ppf g = Format.pp_print_string ppf (name g)
let equal a b = to_int a = to_int b

(* Per-gate data-path meters, indexed by [to_int]; created eagerly so
   a metrics dump always carries the full gate schema, zeros included.
   [Meters.default] (prefix "gate.") is shared by every single-domain
   IP-core call site; each engine shard creates its own set under an
   "engine.shard<i>." prefix so per-shard traffic is attributable. *)
module Meters = struct
  type t = {
    dispatch : Rp_obs.Counter.t array;
    cycles : Rp_obs.Counter.t array;
    drops : Rp_obs.Counter.t array;
    faults : Rp_obs.Counter.t array;
  }

  let per_gate prefix suffix =
    Array.of_list
      (List.map
         (fun g ->
           Rp_obs.Registry.counter (prefix ^ "gate." ^ name g ^ "." ^ suffix))
         all)

  let create ~prefix =
    {
      dispatch = per_gate prefix "dispatch";
      cycles = per_gate prefix "cycles";
      drops = per_gate prefix "drops";
      faults = per_gate prefix "faults";
    }

  let default = create ~prefix:""

  let dispatch t g = t.dispatch.(to_int g)
  let cycles t g = t.cycles.(to_int g)
  let drops t g = t.drops.(to_int g)
  let faults t g = t.faults.(to_int g)
end

let dispatch g = Meters.dispatch Meters.default g
let cycles g = Meters.cycles Meters.default g
let drops g = Meters.drops Meters.default g
let faults g = Meters.faults Meters.default g

(* Per-gate invocation-latency histograms (model cycles), fed by the
   telemetry layer for sampled packets.  One process-wide set — the
   histograms are multicore-safe, and per-shard quantiles would
   multiply the dump eightfold for little insight; per-shard *counts*
   remain available through each shard's Meters. *)
let span_bounds = [| 50; 100; 150; 250; 500; 1_000; 2_500; 5_000; 10_000 |]

let spans =
  Array.of_list
    (List.map
       (fun g ->
         Rp_obs.Registry.histogram ~bounds:span_bounds
           ("telemetry.gate." ^ name g ^ ".cycles"))
       all)

let span g = spans.(to_int g)
