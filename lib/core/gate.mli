(** Gates — the points in the IP core where execution branches off to
    a plugin instance (paper, section 3.2).

    The first four are the gates of the paper's implementation (IPv6
    option processing, IP security on the input and output paths,
    packet scheduling); the remainder are the plugin types the paper
    lists as envisioned (routing, congestion control, statistics,
    firewall), which this reproduction also implements. *)

type t =
  | Ip_options
  | Security_in
  | Firewall
  | Routing
  | Congestion
  | Security_out
  | Scheduling
  | Stats

(** Gates in data-path order. *)
val all : t list

(** Number of gates; AIU filter tables and flow-record binding arrays
    are indexed [0 .. count-1]. *)
val count : int

val to_int : t -> int
val of_int : int -> t option
val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Per-gate observability counters.  A {!Meters.t} is one full set of
    per-gate dispatch/cycles/drops/faults counters under a registry
    prefix: {!Meters.default} (prefix [""], names
    [gate.<name>.<suffix>]) is shared by the single-domain data path,
    and each engine shard creates its own set (e.g. prefix
    ["engine.shard0."]) so per-shard traffic is attributable. *)
module Meters : sig
  type gate := t
  type t

  (** [create ~prefix] registers (or reuses) the [prefix ^
      "gate.<name>.<suffix>"] counters for every gate. *)
  val create : prefix:string -> t

  (** The unprefixed set used by the inline data path. *)
  val default : t

  val dispatch : t -> gate -> Rp_obs.Counter.t
  val cycles : t -> gate -> Rp_obs.Counter.t
  val drops : t -> gate -> Rp_obs.Counter.t
  val faults : t -> gate -> Rp_obs.Counter.t
end

(** Shorthands for {!Meters.default} ([gate.<name>.dispatch] /
    [.cycles] / [.drops] / [.faults]), shared by every single-domain
    data-path call site that traverses the gate. *)

val dispatch : t -> Rp_obs.Counter.t
val cycles : t -> Rp_obs.Counter.t
val drops : t -> Rp_obs.Counter.t
val faults : t -> Rp_obs.Counter.t

(** Per-gate invocation-latency histogram
    ([telemetry.gate.<name>.cycles], model cycles), observed for
    sampled packets when tracing is enabled; process-wide (shared by
    the inline path and all shards). *)
val span : t -> Rp_obs.Histogram.t
