(** Gates — the points in the IP core where execution branches off to
    a plugin instance (paper, section 3.2).

    The first four are the gates of the paper's implementation (IPv6
    option processing, IP security on the input and output paths,
    packet scheduling); the remainder are the plugin types the paper
    lists as envisioned (routing, congestion control, statistics,
    firewall), which this reproduction also implements. *)

type t =
  | Ip_options
  | Security_in
  | Firewall
  | Routing
  | Congestion
  | Security_out
  | Scheduling
  | Stats

(** Gates in data-path order. *)
val all : t list

(** Number of gates; AIU filter tables and flow-record binding arrays
    are indexed [0 .. count-1]. *)
val count : int

val to_int : t -> int
val of_int : int -> t option
val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Per-gate observability counters ([gate.<name>.dispatch] /
    [.cycles] / [.drops] / [.faults] in the {!Rp_obs.Registry}),
    shared by every data-path call site that traverses the gate. *)

val dispatch : t -> Rp_obs.Counter.t
val cycles : t -> Rp_obs.Counter.t
val drops : t -> Rp_obs.Counter.t
val faults : t -> Rp_obs.Counter.t
