open Rp_pkt

type counters = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;
}

(* Aggregated over all interfaces; the per-interface [counters] record
   stays the precise view.  "sched.drops" counts qdisc rejections,
   "iface.fifo.drops" the default FIFO's tail drops — together they
   are every output-queue drop in the system. *)
let m_rx_packets = Rp_obs.Registry.counter "iface.rx_packets"
let m_rx_bytes = Rp_obs.Registry.counter "iface.rx_bytes"
let m_tx_packets = Rp_obs.Registry.counter "iface.tx_packets"
let m_tx_bytes = Rp_obs.Registry.counter "iface.tx_bytes"
let m_fifo_drops = Rp_obs.Registry.counter "iface.fifo.drops"
let m_sched_drops = Rp_obs.Registry.counter "sched.drops"

type t = {
  id : int;
  name : string;
  mtu : int;
  bandwidth_bps : int64;
  fifo_limit : int;
  fifo : Mbuf.t Queue.t;
  mutable qdisc : Plugin.t option;
  counters : counters;
  mutable up : bool;
}

let create ?name ?(mtu = 9180) ?(bandwidth_bps = 155_000_000L)
    ?(fifo_limit = 512) ~id () =
  {
    id;
    name = (match name with Some n -> n | None -> Printf.sprintf "if%d" id);
    mtu;
    bandwidth_bps;
    fifo_limit;
    fifo = Queue.create ();
    qdisc = None;
    counters =
      { rx_packets = 0; rx_bytes = 0; tx_packets = 0; tx_bytes = 0; drops = 0 };
    up = true;
  }

let attach_scheduler t inst =
  match inst.Plugin.scheduler with
  | None -> invalid_arg "Iface.attach_scheduler: instance has no scheduler"
  | Some _ -> t.qdisc <- Some inst

let detach_scheduler t = t.qdisc <- None

let enqueue t ~now ~binding m =
  match t.qdisc with
  | Some inst ->
    (match inst.Plugin.scheduler with
     | Some s ->
       (match s.Plugin.enqueue ~now m binding with
        | Plugin.Enqueued -> true
        | Plugin.Rejected _ ->
          t.counters.drops <- t.counters.drops + 1;
          Rp_obs.Counter.inc m_sched_drops;
          false)
     | None ->
       (* attach_scheduler guarantees this cannot happen *)
       assert false)
  | None ->
    if Queue.length t.fifo >= t.fifo_limit then begin
      t.counters.drops <- t.counters.drops + 1;
      Rp_obs.Counter.inc m_fifo_drops;
      false
    end
    else begin
      Queue.push m t.fifo;
      true
    end

let dequeue t ~now =
  match t.qdisc with
  | Some inst ->
    (match inst.Plugin.scheduler with
     | Some s -> s.Plugin.dequeue ~now
     | None -> assert false)
  | None -> (
      match Queue.pop t.fifo with
      | m -> Some m
      | exception Queue.Empty -> None)

let backlog t =
  match t.qdisc with
  | Some inst ->
    (match inst.Plugin.scheduler with
     | Some s -> s.Plugin.backlog ()
     | None -> assert false)
  | None -> Queue.length t.fifo

let count_tx t m =
  t.counters.tx_packets <- t.counters.tx_packets + 1;
  t.counters.tx_bytes <- t.counters.tx_bytes + m.Mbuf.len;
  Rp_obs.Counter.inc m_tx_packets;
  Rp_obs.Counter.add m_tx_bytes m.Mbuf.len

let count_rx t m =
  t.counters.rx_packets <- t.counters.rx_packets + 1;
  t.counters.rx_bytes <- t.counters.rx_bytes + m.Mbuf.len;
  Rp_obs.Counter.inc m_rx_packets;
  Rp_obs.Counter.add m_rx_bytes m.Mbuf.len

let pp ppf t =
  Format.fprintf ppf "%s: rx %d/%dB tx %d/%dB drops %d backlog %d%s" t.name
    t.counters.rx_packets t.counters.rx_bytes t.counters.tx_packets
    t.counters.tx_bytes t.counters.drops (backlog t)
    (match t.qdisc with
     | Some i -> Printf.sprintf " qdisc=%s#%d" i.Plugin.plugin_name i.Plugin.instance_id
     | None -> " qdisc=fifo")
