open Rp_pkt

type verdict =
  | Enqueued of int
  | Delivered_local
  | Absorbed  (** a plugin consumed the packet (e.g. reassembly) *)
  | Dropped of string

let pp_verdict ppf = function
  | Enqueued i -> Format.fprintf ppf "enqueued on if%d" i
  | Delivered_local -> Format.pp_print_string ppf "delivered locally"
  | Absorbed -> Format.pp_print_string ppf "consumed by a plugin"
  | Dropped why -> Format.fprintf ppf "dropped (%s)" why

(* Verdict counters over every [process] invocation, self-generated
   ICMP traffic included (unlike the per-node simulator stats, which
   count injected packets only). *)
let m_packets = Rp_obs.Registry.counter "ip_core.packets"
let m_forwarded = Rp_obs.Registry.counter "ip_core.forwarded"
let m_delivered = Rp_obs.Registry.counter "ip_core.delivered_local"
let m_absorbed = Rp_obs.Registry.counter "ip_core.absorbed"
let m_dropped = Rp_obs.Registry.counter "ip_core.dropped"

(* Classify at [gate], charging the framework costs: the flow hash the
   first time this packet consults the AIU, one gate's invocation
   overhead, and the measured memory accesses of whatever lookups the
   AIU performed (a cached flow costs ~2; the first packet of a flow
   pays the full filter-table walks). *)
let classify_at router ~now ~gate m =
  let aiu = Router.aiu router in
  let had_fix = m.Mbuf.fix <> None in
  let result, accesses =
    Rp_lpm.Access.measure (fun () ->
        Rp_classifier.Aiu.classify aiu m ~gate:(Gate.to_int gate) ~now)
  in
  if not had_fix then Cost.charge Cost.flow_hash;
  Cost.charge_mem accesses;
  Cost.charge Cost.gate_invoke;
  result

let binding_of record ~gate =
  Rp_classifier.Flow_table.binding record ~gate:(Gate.to_int gate)

(* One gate traversal: dispatch count, cycle cost attributed to the
   gate, and (behind the flag) a trace span.  The meters only observe
   the existing [Cost] / [Access] counters — nothing here charges the
   cost model, so Table-3 figures are untouched. *)
let invoke_gate router ~now ~gate m =
  Rp_obs.Counter.inc (Gate.dispatch gate);
  let (verdict, cycles), accesses =
    Rp_lpm.Access.measure (fun () ->
        Cost.measure (fun () ->
            match classify_at router ~now ~gate m with
            | None -> Plugin.Continue
            | Some (inst, record) ->
              let binding = binding_of record ~gate in
              inst.Plugin.handle { Plugin.now_ns = now; binding } m))
  in
  Rp_obs.Counter.add (Gate.cycles gate) cycles;
  if !Rp_obs.Trace.enabled then
    Rp_obs.Trace.record ~name:("gate." ^ Gate.name gate) ~cycles ~accesses;
  (match verdict with
   | Plugin.Drop _ -> Rp_obs.Counter.inc (Gate.drops gate)
   | Plugin.Continue | Plugin.Consumed -> ());
  verdict

(* Gates traversed inline, in data-path order (scheduling is handled
   at enqueue time, routing right after the punt check). *)
let inline_gates_pre = [ Gate.Ip_options; Gate.Security_in; Gate.Firewall ]
let inline_gates_post = [ Gate.Congestion; Gate.Security_out; Gate.Stats ]

(* A drop, optionally accompanied by an ICMP error to the source. *)
exception Dropped_exn of string * Icmp.message option

exception Consumed_exn

let run_gates router ~now m gates =
  List.iter
    (fun gate ->
      if Router.gate_enabled router gate then
        match invoke_gate router ~now ~gate m with
        | Plugin.Continue -> ()
        | Plugin.Consumed -> raise Consumed_exn
        | Plugin.Drop why -> raise (Dropped_exn (why, None)))
    gates

let route router ~now m =
  (* A routing-gate plugin may have fixed the output interface (L4
     switching); otherwise consult the routing table. *)
  (if Router.gate_enabled router Gate.Routing then
     match invoke_gate router ~now ~gate:Gate.Routing m with
     | Plugin.Continue -> ()
     | Plugin.Consumed -> raise Consumed_exn
     | Plugin.Drop why -> raise (Dropped_exn (why, None)));
  match m.Mbuf.out_iface with
  | Some i -> i
  | None -> (
      match Route_table.lookup router.Router.routes m.Mbuf.key.Flow_key.dst with
      | Some r ->
        m.Mbuf.out_iface <- Some r.Route_table.iface;
        m.Mbuf.next_hop <-
          (match r.Route_table.next_hop with
           | Some _ as nh -> nh
           | None -> Some m.Mbuf.key.Flow_key.dst);
        r.Route_table.iface
      | None ->
        raise
          (Dropped_exn
             ( "no route to destination",
               Some (Icmp.Dest_unreachable Icmp.Net_unreachable) )))

(* Queue one (possibly fragmented) packet on the egress interface.
   Fragmentation happens here, after all gates: a datagram larger than
   the egress MTU is split (IPv4 without DF), or dropped with an ICMP
   "packet too big" error. *)
let rec enqueue router ~now m out =
  let ifc = Router.iface router out in
  let binding =
    if Router.gate_enabled router Gate.Scheduling then begin
      Rp_obs.Counter.inc (Gate.dispatch Gate.Scheduling);
      let b, cycles =
        Cost.measure (fun () ->
            match classify_at router ~now ~gate:Gate.Scheduling m with
            | Some (_inst, record) -> binding_of record ~gate:Gate.Scheduling
            | None -> None)
      in
      Rp_obs.Counter.add (Gate.cycles Gate.Scheduling) cycles;
      b
    end
    else None
  in
  if not (Frag.needs_fragmentation m ~mtu:ifc.Iface.mtu) then begin
    if Iface.enqueue ifc ~now ~binding m then Enqueued out
    else Dropped "output queue"
  end
  else
    match Frag.fragment m ~mtu:ifc.Iface.mtu with
    | Ok fragments ->
      let accepted =
        List.fold_left
          (fun acc f -> if Iface.enqueue ifc ~now ~binding f then acc + 1 else acc)
          0 fragments
      in
      if accepted > 0 then Enqueued out else Dropped "output queue"
    | Error (`Dont_fragment | `V6_never_fragments) ->
      raise
        (Dropped_exn
           ("needs fragmentation", Some (Icmp.Packet_too_big ifc.Iface.mtu)))

and process router ~now m =
  Rp_obs.Counter.inc m_packets;
  let verdict = process_inner router ~now m in
  (match verdict with
   | Enqueued _ -> Rp_obs.Counter.inc m_forwarded
   | Delivered_local -> Rp_obs.Counter.inc m_delivered
   | Absorbed -> Rp_obs.Counter.inc m_absorbed
   | Dropped _ -> Rp_obs.Counter.inc m_dropped);
  verdict

and process_inner router ~now m =
  Cost.charge Cost.base_forward;
  Iface.count_rx (Router.iface router m.Mbuf.key.Flow_key.iface) m;
  if m.Mbuf.ttl <= 1 then begin
    icmp_error router ~now m Icmp.Time_exceeded;
    Dropped "ttl expired"
  end
  else begin
    m.Mbuf.ttl <- m.Mbuf.ttl - 1;
    try
      run_gates router ~now m inline_gates_pre;
      (* Local punt: protocols handled by a daemon on this router
         (e.g. SSP).  The handler decides whether the packet also
         continues downstream. *)
      let consumed =
        match Hashtbl.find_opt router.Router.punts m.Mbuf.key.Flow_key.proto with
        | Some handler -> handler ~now m = Router.Punt_consume
        | None -> false
      in
      if consumed then Delivered_local
      else if Router.is_local router m.Mbuf.key.Flow_key.dst then begin
        answer_echo router ~now m;
        Delivered_local
      end
      else begin
        let out = route router ~now m in
        run_gates router ~now m inline_gates_post;
        enqueue router ~now m out
      end
    with
    | Dropped_exn (why, icmp) ->
      (match icmp with
       | Some message -> icmp_error router ~now m message
       | None -> ());
      Dropped why
    | Consumed_exn -> Absorbed
  end

(* Answer ICMP echo requests addressed to the router itself (so the
   router is pingable end to end). *)
and answer_echo router ~now (m : Mbuf.t) =
  let proto = m.Mbuf.key.Flow_key.proto in
  let family =
    match m.Mbuf.version with Mbuf.V4 -> `V4 | Mbuf.V6 -> `V6
  in
  if proto = Proto.icmp || proto = Proto.icmpv6 then
    match m.Mbuf.raw with
    | None -> ()
    | Some raw ->
      (match Icmp.parse ~family raw with
       | Ok { Icmp.message = Icmp.Echo_request { ident; seq }; payload } ->
         let body =
           Icmp.serialize ~family
             { Icmp.message = Icmp.Echo_reply { ident; seq }; payload }
         in
         let key =
           Flow_key.make ~src:m.Mbuf.key.Flow_key.dst
             ~dst:m.Mbuf.key.Flow_key.src ~proto ~sport:0 ~dport:0
             ~iface:m.Mbuf.key.Flow_key.iface
         in
         let hdr = match family with `V4 -> Ipv4_header.size | `V6 -> Ipv6_header.size in
         let reply = Mbuf.synth ~key ~len:(hdr + Bytes.length body) () in
         reply.Mbuf.raw <- Some body;
         ignore (process router ~now reply)
       | Ok _ | Error _ -> ())

(* Generate an ICMP error about [orig] back toward its source, routed
   through this router's own data path.  Per the RFC rules: never
   about ICMP itself, and only when the router has an address of the
   right family to source it from. *)
and icmp_error router ~now (orig : Mbuf.t) message =
  let proto = orig.Mbuf.key.Flow_key.proto in
  if proto <> Proto.icmp && proto <> Proto.icmpv6 then
    match Router.local_addr_for router orig.Mbuf.key.Flow_key.src with
    | None -> ()
    | Some src ->
      let family, icmp_proto, hdr =
        match orig.Mbuf.version with
        | Mbuf.V4 -> (`V4, Proto.icmp, Ipv4_header.size)
        | Mbuf.V6 -> (`V6, Proto.icmpv6, Ipv6_header.size)
      in
      let payload =
        match orig.Mbuf.raw with
        | Some raw -> Bytes.sub_string raw 0 (min 28 (Bytes.length raw))
        | None -> ""
      in
      let body = Icmp.serialize ~family { Icmp.message; payload } in
      let key =
        Flow_key.make ~src ~dst:orig.Mbuf.key.Flow_key.src ~proto:icmp_proto
          ~sport:0 ~dport:0 ~iface:orig.Mbuf.key.Flow_key.iface
      in
      let m = Mbuf.synth ~key ~len:(hdr + Bytes.length body) () in
      m.Mbuf.raw <- Some body;
      router.Router.icmp_sent <- router.Router.icmp_sent + 1;
      ignore (process router ~now m)
