open Rp_pkt

type verdict =
  | Enqueued of int
  | Delivered_local
  | Absorbed  (** a plugin consumed the packet (e.g. reassembly) *)
  | Dropped of string

let pp_verdict ppf = function
  | Enqueued i -> Format.fprintf ppf "enqueued on if%d" i
  | Delivered_local -> Format.pp_print_string ppf "delivered locally"
  | Absorbed -> Format.pp_print_string ppf "consumed by a plugin"
  | Dropped why -> Format.fprintf ppf "dropped (%s)" why

(* Verdict counters over every [process] invocation, self-generated
   ICMP traffic included (unlike the per-node simulator stats, which
   count injected packets only). *)
let m_packets = Rp_obs.Registry.counter "ip_core.packets"
let m_forwarded = Rp_obs.Registry.counter "ip_core.forwarded"
let m_delivered = Rp_obs.Registry.counter "ip_core.delivered_local"
let m_absorbed = Rp_obs.Registry.counter "ip_core.absorbed"
let m_dropped = Rp_obs.Registry.counter "ip_core.dropped"

(* Fragments lost to a full output queue while siblings of the same
   datagram were accepted — the datagram itself is then reported
   [Dropped], since an incomplete fragment set cannot reassemble. *)
let m_frag_drops = Rp_obs.Registry.counter "ip_core.fragment_drops"

(* --- latency SLOs ---------------------------------------------------- *)

(* The SLO layer only *reads* the cost-model clock — [Cost.get] is
   free — so Table-3 cycles are byte-identical with stamping on or
   off.  [slo_open]/[slo_close] bracket one packet's traversal;
   [slo_attrib] accumulates per-gate cycles into the mbuf when
   exemplar capture is armed.  Shared with the sharded engine's worker
   dispatch (hence exported), which passes its own shard index. *)

let slo_class = function
  | Enqueued _ -> Rp_obs.Slo.Fwd
  | Delivered_local | Absorbed -> Rp_obs.Slo.Absorb
  | Dropped _ -> Rp_obs.Slo.Drop

let slo_open m =
  if Rp_obs.Slo.on () then begin
    m.Mbuf.ingress_cycles <- Cost.get ();
    if Rp_obs.Slo.armed () then begin
      (* The attribution array is cached on the descriptor (pooled
         descriptors allocate it once), so the armed steady state stays
         GC-silent. *)
      if Array.length m.Mbuf.gate_cycles = 0 then
        m.Mbuf.gate_cycles <- Array.make Gate.count 0
      else Array.fill m.Mbuf.gate_cycles 0 Gate.count 0
    end
  end

let slo_attrib m ~gate cycles =
  let a = m.Mbuf.gate_cycles in
  if Array.length a > 0 then begin
    let g = Gate.to_int gate in
    a.(g) <- a.(g) + cycles
  end

let slo_close ~shard m verdict =
  if Rp_obs.Slo.on () then begin
    let cls = slo_class verdict in
    let cycles = Cost.get () - m.Mbuf.ingress_cycles in
    Rp_obs.Slo.observe ~shard cls cycles;
    if Rp_obs.Slo.armed () && Rp_obs.Slo.is_breach cycles then begin
      let gates = ref [] in
      let a = m.Mbuf.gate_cycles in
      for g = Gate.count - 1 downto 0 do
        if Array.length a > 0 && a.(g) > 0 then
          let name =
            match Gate.of_int g with
            | Some gate -> Gate.name gate
            | None -> string_of_int g
          in
          gates := (name, a.(g)) :: !gates
      done;
      Rp_obs.Slo.capture ~shard ~cls ~cycles
        ~key:(Flow_key.to_string m.Mbuf.key)
        ~gates:!gates ~trace_pkt:m.Mbuf.tseq
    end
  end

(* Classify at [gate] via the engine-shared entry point ({!Classify}),
   which charges the framework costs: the flow hash the first time
   this packet consults the AIU, one gate's invocation overhead, and
   the measured memory accesses of whatever lookups the AIU performed
   (a cached flow costs ~2; the first packet of a flow pays the full
   cold-start resolution). *)
let classify_at router ~now ~gate m = Classify.at (Router.aiu router) ~now ~gate m

let binding_of record ~gate =
  Rp_classifier.Flow_table.binding record ~gate:(Gate.to_int gate)

(* Fault containment (the plugin may be third-party code the router
   does not trust): count the fault, attribute it to the instance in
   the PCU — which auto-quarantines past the consecutive-fault
   threshold — and convert it to the router's fault policy.  Nothing
   here charges the cost model. *)
let contain_fault router ~gate ~tseq inst (reason : Fault.reason) =
  Rp_obs.Counter.inc (Gate.faults gate);
  let id = inst.Plugin.instance_id in
  (* Faults are rare and diagnostic gold: when tracing is on they are
     recorded even for unsampled packets (pkt 0). *)
  if Rp_obs.Telemetry.on () then
    Rp_obs.Telemetry.record ~ts:(Cost.get ()) ~kind:Rp_obs.Telemetry.Fault
      ~gate:(Gate.to_int gate) ~pkt:tseq ~arg:id;
  Logs.warn (fun m ->
      m "ip_core: contained fault of %a at gate %s: %s" Plugin.pp inst
        (Gate.name gate) (Fault.reason_to_string reason));
  (match
     Pcu.record_fault router.Router.pcu id
       ~reason:(Fault.reason_to_string reason)
   with
   | `Quarantine -> ignore (Router.quarantine router id)
   | `Ok -> ());
  match router.Router.fault_policy with
  | Fault.Drop_packet -> Plugin.Drop "plugin fault"
  | Fault.Continue_packet -> Plugin.Continue
  | Fault.Unbind ->
    if not (Pcu.is_quarantined router.Router.pcu id) then
      ignore (Router.quarantine router id);
    Plugin.Continue

(* Run one instance's handler under containment: an escaping exception
   or a per-invocation cycle-budget overrun becomes a fault instead of
   unwinding [process].  The inner [Cost.measure] only reads the cycle
   counter, so the charged costs are exactly the handler's own. *)
let run_handler router ~now ~gate inst binding m =
  let outcome, handler_cycles =
    Cost.measure (fun () ->
        try Ok (inst.Plugin.handle { Plugin.now_ns = now; binding } m)
        with e -> Error (Fault.Exn (Printexc.to_string e)))
  in
  let tseq = m.Mbuf.tseq in
  match outcome with
  | Error reason -> contain_fault router ~gate ~tseq inst reason
  | Ok action -> (
      match router.Router.cycle_budget with
      | Some budget when handler_cycles > budget ->
        contain_fault router ~gate ~tseq inst (Fault.Budget handler_cycles)
      | _ ->
        Pcu.record_success router.Router.pcu inst.Plugin.instance_id;
        action)

(* One gate traversal: dispatch count, cycle cost attributed to the
   gate, and (behind the flag) a trace span.  Shared by [invoke_gate]
   and the scheduling classification in [enqueue], so every gate call
   site meters identically.  The meters only observe the existing
   [Cost] / [Access] counters — nothing here charges the cost model,
   so Table-3 figures are untouched. *)
let instrumented ~gate m f =
  let tseq = m.Mbuf.tseq in
  Rp_obs.Counter.inc (Gate.dispatch gate);
  if tseq <> 0 then
    Rp_obs.Telemetry.record ~ts:(Cost.get ())
      ~kind:Rp_obs.Telemetry.Gate_enter ~gate:(Gate.to_int gate) ~pkt:tseq
      ~arg:0;
  let (result, cycles), accesses =
    Rp_lpm.Access.measure (fun () -> Cost.measure f)
  in
  Rp_obs.Counter.add (Gate.cycles gate) cycles;
  slo_attrib m ~gate cycles;
  if tseq <> 0 then begin
    Rp_obs.Telemetry.record ~ts:(Cost.get ())
      ~kind:Rp_obs.Telemetry.Gate_exit ~gate:(Gate.to_int gate) ~pkt:tseq
      ~arg:accesses;
    Rp_obs.Histogram.observe (Gate.span gate) cycles
  end;
  if !Rp_obs.Trace.enabled then
    Rp_obs.Trace.record ~name:("gate." ^ Gate.name gate) ~cycles ~accesses;
  result

let invoke_gate router ~now ~gate m =
  let verdict =
    instrumented ~gate m (fun () ->
        match classify_at router ~now ~gate m with
        | None -> Plugin.Continue
        | Some (inst, record) ->
          let binding = binding_of record ~gate in
          run_handler router ~now ~gate inst binding m)
  in
  (match verdict with
   | Plugin.Drop _ -> Rp_obs.Counter.inc (Gate.drops gate)
   | Plugin.Continue | Plugin.Consumed -> ());
  verdict

(* Gates traversed inline, in data-path order (scheduling is handled
   at enqueue time, routing right after the punt check). *)
let inline_gates_pre = [ Gate.Ip_options; Gate.Security_in; Gate.Firewall ]
let inline_gates_post = [ Gate.Congestion; Gate.Security_out; Gate.Stats ]

(* A drop, optionally accompanied by an ICMP error to the source. *)
exception Dropped_exn of string * Icmp.message option

exception Consumed_exn

let run_gates router ~now m gates =
  List.iter
    (fun gate ->
      if Router.gate_enabled router gate then
        match invoke_gate router ~now ~gate m with
        | Plugin.Continue -> ()
        | Plugin.Consumed -> raise Consumed_exn
        | Plugin.Drop why -> raise (Dropped_exn (why, None)))
    gates

let route router ~now m =
  (* A routing-gate plugin may have fixed the output interface (L4
     switching); otherwise consult the routing table. *)
  (if Router.gate_enabled router Gate.Routing then
     match invoke_gate router ~now ~gate:Gate.Routing m with
     | Plugin.Continue -> ()
     | Plugin.Consumed -> raise Consumed_exn
     | Plugin.Drop why -> raise (Dropped_exn (why, None)));
  match m.Mbuf.out_iface with
  | Some i -> i
  | None -> (
      match Route_table.lookup router.Router.routes m.Mbuf.key.Flow_key.dst with
      | Some r ->
        m.Mbuf.out_iface <- Some r.Route_table.iface;
        m.Mbuf.next_hop <-
          (match r.Route_table.next_hop with
           | Some _ as nh -> nh
           | None -> Some m.Mbuf.key.Flow_key.dst);
        r.Route_table.iface
      | None ->
        raise
          (Dropped_exn
             ( "no route to destination",
               Some (Icmp.Dest_unreachable Icmp.Net_unreachable) )))

(* Hand one packet (or fragment) to the output queue, with the same
   containment as [invoke_gate]: an exception escaping an attached
   scheduler is counted at the scheduling gate, attributed to the
   qdisc instance, and treated as a queue drop (a quarantined qdisc is
   detached, so subsequent packets take the default FIFO).  Queue
   rejections count as scheduling-gate drops, matching the drop
   metering of the inline gates. *)
let queue_on router ifc ~now ~binding m =
  let sched_on = Router.gate_enabled router Gate.Scheduling in
  let ok =
    match Iface.enqueue ifc ~now ~binding m with
    | ok ->
      (match ifc.Iface.qdisc with
       | Some inst when ok ->
         Pcu.record_success router.Router.pcu inst.Plugin.instance_id
       | Some _ | None -> ());
      ok
    | exception e ->
      (match ifc.Iface.qdisc with
       | Some inst ->
         ignore
           (contain_fault router ~gate:Gate.Scheduling ~tseq:m.Mbuf.tseq inst
              (Fault.Exn (Printexc.to_string e)))
       | None -> Rp_obs.Counter.inc (Gate.faults Gate.Scheduling));
      false
  in
  if (not ok) && sched_on then
    Rp_obs.Counter.inc (Gate.drops Gate.Scheduling);
  ok

(* Queue one (possibly fragmented) packet on the egress interface.
   Fragmentation happens here, after all gates: a datagram larger than
   the egress MTU is split (IPv4 without DF), or dropped with an ICMP
   "packet too big" error. *)
let rec enqueue router ~now m out =
  let ifc = Router.iface router out in
  let binding =
    if Router.gate_enabled router Gate.Scheduling then
      instrumented ~gate:Gate.Scheduling m (fun () ->
          match classify_at router ~now ~gate:Gate.Scheduling m with
          | Some (_inst, record) -> binding_of record ~gate:Gate.Scheduling
          | None -> None)
    else None
  in
  if not (Frag.needs_fragmentation m ~mtu:ifc.Iface.mtu) then begin
    if queue_on router ifc ~now ~binding m then Enqueued out
    else Dropped "output queue"
  end
  else
    match Frag.fragment m ~mtu:ifc.Iface.mtu with
    | Ok fragments ->
      let total = List.length fragments in
      let accepted =
        List.fold_left
          (fun acc f -> if queue_on router ifc ~now ~binding f then acc + 1 else acc)
          0 fragments
      in
      let lost = total - accepted in
      if lost > 0 then Rp_obs.Counter.add m_frag_drops lost;
      if accepted = 0 then Dropped "output queue"
      else if lost > 0 then
        Dropped
          (Printf.sprintf "partial fragment loss (%d/%d fragments queued)"
             accepted total)
      else Enqueued out
    | Error (`Dont_fragment | `V6_never_fragments) ->
      raise
        (Dropped_exn
           ("needs fragmentation", Some (Icmp.Packet_too_big ifc.Iface.mtu)))

and process router ~now m =
  Rp_obs.Counter.inc m_packets;
  (* Telemetry sampling decision, made once per packet on entry.
     Self-generated packets (ICMP errors, echo replies) re-enter
     [process] on fresh mbufs and get their own decision.  Nothing in
     the telemetry path charges the cost model, so traced and
     untraced runs report identical Table-3 cycles. *)
  if Rp_obs.Telemetry.on () && m.Mbuf.tseq = 0 then
    m.Mbuf.tseq <- Rp_obs.Telemetry.sample ();
  let tseq = m.Mbuf.tseq in
  let t0 = if tseq <> 0 then Cost.get () else 0 in
  if tseq <> 0 then
    Rp_obs.Telemetry.record ~ts:t0 ~kind:Rp_obs.Telemetry.Pkt_start ~gate:(-1)
      ~pkt:tseq ~arg:m.Mbuf.len;
  slo_open m;
  let verdict = process_inner router ~now m in
  (match verdict with
   | Enqueued _ -> Rp_obs.Counter.inc m_forwarded
   | Delivered_local -> Rp_obs.Counter.inc m_delivered
   | Absorbed -> Rp_obs.Counter.inc m_absorbed
   | Dropped why ->
     Rp_obs.Counter.inc m_dropped;
     Rp_obs.Drop_reason.count_why why);
  if tseq <> 0 then begin
    let ts = Cost.get () in
    (match verdict with
     | Dropped _ ->
       Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Drop ~gate:(-1)
         ~pkt:tseq ~arg:0
     | Enqueued _ | Delivered_local | Absorbed -> ());
    Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Pkt_end ~gate:(-1)
      ~pkt:tseq ~arg:0;
    Rp_obs.Histogram.observe Rp_obs.Telemetry.packet_hist (ts - t0)
  end;
  slo_close ~shard:0 m verdict;
  (* Always-on NetFlow accounting: attribute the packet to its flow
     record (if classification gave it a flow index) at verdict time. *)
  Rp_classifier.Flow_table.account
    (Rp_classifier.Aiu.flow_table (Router.aiu router))
    m
    ~verdict:
      (match verdict with
       | Enqueued _ -> `Fwd
       | Dropped _ -> `Drop
       | Delivered_local | Absorbed -> `Absorb);
  verdict

and process_inner router ~now m =
  Cost.charge Cost.base_forward;
  Iface.count_rx (Router.iface router m.Mbuf.key.Flow_key.iface) m;
  if m.Mbuf.ttl <= 1 then begin
    icmp_error router ~now m Icmp.Time_exceeded;
    Dropped "ttl expired"
  end
  else begin
    m.Mbuf.ttl <- m.Mbuf.ttl - 1;
    try
      run_gates router ~now m inline_gates_pre;
      (* Local punt: protocols handled by a daemon on this router
         (e.g. SSP).  The handler decides whether the packet also
         continues downstream. *)
      let consumed =
        match Hashtbl.find_opt router.Router.punts m.Mbuf.key.Flow_key.proto with
        | Some handler -> handler ~now m = Router.Punt_consume
        | None -> false
      in
      if consumed then Delivered_local
      else if Router.is_local router m.Mbuf.key.Flow_key.dst then begin
        answer_echo router ~now m;
        Delivered_local
      end
      else begin
        let out = route router ~now m in
        run_gates router ~now m inline_gates_post;
        enqueue router ~now m out
      end
    with
    | Dropped_exn (why, icmp) ->
      (match icmp with
       | Some message -> icmp_error router ~now m message
       | None -> ());
      Dropped why
    | Consumed_exn -> Absorbed
  end

(* Answer ICMP echo requests addressed to the router itself (so the
   router is pingable end to end). *)
and answer_echo router ~now (m : Mbuf.t) =
  let proto = m.Mbuf.key.Flow_key.proto in
  let family =
    match m.Mbuf.version with Mbuf.V4 -> `V4 | Mbuf.V6 -> `V6
  in
  if proto = Proto.icmp || proto = Proto.icmpv6 then
    match m.Mbuf.raw with
    | None -> ()
    | Some raw ->
      (match Icmp.parse ~family raw with
       | Ok { Icmp.message = Icmp.Echo_request { ident; seq }; payload } ->
         let body =
           Icmp.serialize ~family
             { Icmp.message = Icmp.Echo_reply { ident; seq }; payload }
         in
         let key =
           Flow_key.make ~src:m.Mbuf.key.Flow_key.dst
             ~dst:m.Mbuf.key.Flow_key.src ~proto ~sport:0 ~dport:0
             ~iface:m.Mbuf.key.Flow_key.iface
         in
         let hdr = match family with `V4 -> Ipv4_header.size | `V6 -> Ipv6_header.size in
         let reply = Mbuf.synth ~key ~len:(hdr + Bytes.length body) () in
         reply.Mbuf.raw <- Some body;
         ignore (process router ~now reply)
       | Ok _ | Error _ -> ())

(* Generate an ICMP error about [orig] back toward its source, routed
   through this router's own data path.  Per the RFC rules: never
   about ICMP itself, and only when the router has an address of the
   right family to source it from. *)
and icmp_error router ~now (orig : Mbuf.t) message =
  let proto = orig.Mbuf.key.Flow_key.proto in
  if proto <> Proto.icmp && proto <> Proto.icmpv6 then
    match Router.local_addr_for router orig.Mbuf.key.Flow_key.src with
    | None -> ()
    | Some src ->
      let family, icmp_proto, hdr =
        match orig.Mbuf.version with
        | Mbuf.V4 -> (`V4, Proto.icmp, Ipv4_header.size)
        | Mbuf.V6 -> (`V6, Proto.icmpv6, Ipv6_header.size)
      in
      let payload =
        match orig.Mbuf.raw with
        | Some raw -> Bytes.sub_string raw 0 (min 28 (Bytes.length raw))
        | None -> ""
      in
      let body = Icmp.serialize ~family { Icmp.message; payload } in
      let key =
        Flow_key.make ~src ~dst:orig.Mbuf.key.Flow_key.src ~proto:icmp_proto
          ~sport:0 ~dport:0 ~iface:orig.Mbuf.key.Flow_key.iface
      in
      let m = Mbuf.synth ~key ~len:(hdr + Bytes.length body) () in
      m.Mbuf.raw <- Some body;
      router.Router.icmp_sent <- router.Router.icmp_sent + 1;
      ignore (process router ~now m)

(* --- batched dispatch ------------------------------------------------ *)

(* One gate over every still-live packet of a batch (gate-major order):
   the gate-enabled test and the dispatch/cycle/drop counter updates
   are paid once per batch instead of once per packet.  The per-packet
   work — classification, the handler under containment, cost-model
   charges, sampled telemetry, trace spans — is exactly
   [invoke_gate]'s, so a batch of n packets charges and meters
   identically to n sequential [process] calls. *)
let run_gate_batch router ~now ~gate batch verdicts n =
  let live = ref 0 and cycles_acc = ref 0 and drops = ref 0 in
  for i = 0 to n - 1 do
    match verdicts.(i) with
    | Some _ -> ()
    | None ->
      incr live;
      let m = batch.(i) in
      let tseq = m.Mbuf.tseq in
      if tseq <> 0 then
        Rp_obs.Telemetry.record ~ts:(Cost.get ())
          ~kind:Rp_obs.Telemetry.Gate_enter ~gate:(Gate.to_int gate) ~pkt:tseq
          ~arg:0;
      let (action, cycles), accesses =
        Rp_lpm.Access.measure (fun () ->
            Cost.measure (fun () ->
                match classify_at router ~now ~gate m with
                | None -> Plugin.Continue
                | Some (inst, record) ->
                  let binding = binding_of record ~gate in
                  run_handler router ~now ~gate inst binding m))
      in
      cycles_acc := !cycles_acc + cycles;
      slo_attrib m ~gate cycles;
      if tseq <> 0 then begin
        Rp_obs.Telemetry.record ~ts:(Cost.get ())
          ~kind:Rp_obs.Telemetry.Gate_exit ~gate:(Gate.to_int gate) ~pkt:tseq
          ~arg:accesses;
        Rp_obs.Histogram.observe (Gate.span gate) cycles
      end;
      if !Rp_obs.Trace.enabled then
        Rp_obs.Trace.record ~name:("gate." ^ Gate.name gate) ~cycles ~accesses;
      (match action with
       | Plugin.Continue -> ()
       | Plugin.Consumed -> verdicts.(i) <- Some Absorbed
       | Plugin.Drop why ->
         incr drops;
         verdicts.(i) <- Some (Dropped why))
  done;
  if !live > 0 then begin
    Rp_obs.Counter.add (Gate.dispatch gate) !live;
    Rp_obs.Counter.add (Gate.cycles gate) !cycles_acc
  end;
  if !drops > 0 then Rp_obs.Counter.add (Gate.drops gate) !drops

(* Batch analogue of [process]: packets advance stage by stage —
   entry/TTL, pre-routing gates (gate-major), punt/local delivery,
   routing, post-routing gates (gate-major), fragment + enqueue,
   verdict accounting — with a settled verdict parking a packet for
   the remaining stages.  Per-packet verdicts, cost-model charges and
   metric totals are identical to calling [process] on each packet in
   batch order (the qcheck equivalence test pins this); only the
   interleaving of gate invocations across packets differs, so plugins
   whose behavior depends on cross-packet invocation order may observe
   the difference.  Self-generated traffic (ICMP errors, echo replies)
   takes the per-packet path recursively, exactly as in [process]. *)
let process_batch router ?emit ~now batch ~n =
  if n < 0 || n > Array.length batch then
    invalid_arg "Ip_core.process_batch: n out of range";
  let verdicts = Array.make (max n 1) None in
  let t0s = Array.make (max n 1) 0 in
  let outs = Array.make (max n 1) (-1) in
  if n > 0 then Rp_obs.Counter.add m_packets n;
  (* Entry: sampling decision, arrival accounting, TTL. *)
  for i = 0 to n - 1 do
    let m = batch.(i) in
    if Rp_obs.Telemetry.on () && m.Mbuf.tseq = 0 then
      m.Mbuf.tseq <- Rp_obs.Telemetry.sample ();
    let tseq = m.Mbuf.tseq in
    if tseq <> 0 then begin
      let ts = Cost.get () in
      t0s.(i) <- ts;
      Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Pkt_start ~gate:(-1)
        ~pkt:tseq ~arg:m.Mbuf.len
    end;
    slo_open m;
    Cost.charge Cost.base_forward;
    Iface.count_rx (Router.iface router m.Mbuf.key.Flow_key.iface) m;
    if m.Mbuf.ttl <= 1 then begin
      icmp_error router ~now m Icmp.Time_exceeded;
      verdicts.(i) <- Some (Dropped "ttl expired")
    end
    else m.Mbuf.ttl <- m.Mbuf.ttl - 1
  done;
  List.iter
    (fun gate ->
      if Router.gate_enabled router gate then
        run_gate_batch router ~now ~gate batch verdicts n)
    inline_gates_pre;
  (* Local punt / local delivery. *)
  for i = 0 to n - 1 do
    match verdicts.(i) with
    | Some _ -> ()
    | None ->
      let m = batch.(i) in
      let consumed =
        match
          Hashtbl.find_opt router.Router.punts m.Mbuf.key.Flow_key.proto
        with
        | Some handler -> handler ~now m = Router.Punt_consume
        | None -> false
      in
      if consumed then verdicts.(i) <- Some Delivered_local
      else if Router.is_local router m.Mbuf.key.Flow_key.dst then begin
        answer_echo router ~now m;
        verdicts.(i) <- Some Delivered_local
      end
  done;
  (* Routing decision (gate, else table). *)
  for i = 0 to n - 1 do
    match verdicts.(i) with
    | Some _ -> ()
    | None -> (
        match route router ~now batch.(i) with
        | out -> outs.(i) <- out
        | exception Dropped_exn (why, icmp) ->
          (match icmp with
           | Some message -> icmp_error router ~now batch.(i) message
           | None -> ());
          verdicts.(i) <- Some (Dropped why)
        | exception Consumed_exn -> verdicts.(i) <- Some Absorbed)
  done;
  List.iter
    (fun gate ->
      if Router.gate_enabled router gate then
        run_gate_batch router ~now ~gate batch verdicts n)
    inline_gates_post;
  (* Scheduling classification, fragmentation, enqueue. *)
  for i = 0 to n - 1 do
    match verdicts.(i) with
    | Some _ -> ()
    | None ->
      let m = batch.(i) in
      let v =
        match enqueue router ~now m outs.(i) with
        | v -> v
        | exception Dropped_exn (why, icmp) ->
          (match icmp with
           | Some message -> icmp_error router ~now m message
           | None -> ());
          Dropped why
        | exception Consumed_exn -> Absorbed
      in
      verdicts.(i) <- Some v
  done;
  (* Verdict accounting, telemetry close, flow accounting. *)
  let fwd = ref 0 and del = ref 0 and abso = ref 0 and drop = ref 0 in
  let ft = Rp_classifier.Aiu.flow_table (Router.aiu router) in
  for i = 0 to n - 1 do
    let m = batch.(i) in
    let verdict =
      match verdicts.(i) with Some v -> v | None -> assert false
    in
    (match verdict with
     | Enqueued _ -> incr fwd
     | Delivered_local -> incr del
     | Absorbed -> incr abso
     | Dropped why ->
       incr drop;
       Rp_obs.Drop_reason.count_why why);
    let tseq = m.Mbuf.tseq in
    if tseq <> 0 then begin
      let ts = Cost.get () in
      (match verdict with
       | Dropped _ ->
         Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Drop ~gate:(-1)
           ~pkt:tseq ~arg:0
       | Enqueued _ | Delivered_local | Absorbed -> ());
      Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Pkt_end ~gate:(-1)
        ~pkt:tseq ~arg:0;
      Rp_obs.Histogram.observe Rp_obs.Telemetry.packet_hist (ts - t0s.(i))
    end;
    slo_close ~shard:0 m verdict;
    Rp_classifier.Flow_table.account ft m
      ~verdict:
        (match verdict with
         | Enqueued _ -> `Fwd
         | Dropped _ -> `Drop
         | Delivered_local | Absorbed -> `Absorb);
    match emit with Some f -> f m verdict | None -> ()
  done;
  if !fwd > 0 then Rp_obs.Counter.add m_forwarded !fwd;
  if !del > 0 then Rp_obs.Counter.add m_delivered !del;
  if !abso > 0 then Rp_obs.Counter.add m_absorbed !abso;
  if !drop > 0 then Rp_obs.Counter.add m_dropped !drop
