(** The IPv4/IPv6 core — the "small part of the network subsystem code
    that remains relatively stable" (paper, section 2): header/TTL
    handling, demultiplexing packets to plugin instances through the
    gates, route lookup, and handoff to the output queue.

    The per-packet path (paper, Figure 3): receive → IPv6 option gate →
    security-in gate → firewall gate → local punt check → routing
    (gate, else table) → congestion gate → security-out gate → stats
    gate → scheduling gate + enqueue.

    Each gate is a classification point: the first gate of a packet
    pays the flow-table hash (or, for the first packet of a flow, the
    full filter-table lookups for {e all} gates); subsequent gates
    dereference the FIX cached in the mbuf.  Cycle costs are charged to
    {!Cost} as described there. *)

open Rp_pkt

type verdict =
  | Enqueued of int  (** queued on output interface *)
  | Delivered_local  (** consumed by a punt handler / local address *)
  | Absorbed  (** a plugin consumed the packet (e.g. reassembly) *)
  | Dropped of string

val pp_verdict : Format.formatter -> verdict -> unit

(** [process router ~now m] runs one packet through the router's data
    path, returning what happened to it.  [m.key.iface] must identify
    the receiving interface. *)
val process : Router.t -> now:int64 -> Mbuf.t -> verdict

(** [process_batch router ~now batch ~n] runs [batch.(0 .. n-1)]
    through the data path in one gate-major sweep: each stage (entry,
    pre-routing gates, punt, routing, post-routing gates, enqueue)
    walks the whole batch before the next begins, so the gate-enabled
    checks and counter updates are amortised across the batch.
    Per-packet verdicts, cost-model charges and metric totals are
    identical to calling {!process} on each packet in batch order —
    only the interleaving of gate invocations differs.  (SLO latency
    {e distributions} are the one observable consequence: a batched
    packet's ingress→verdict span genuinely includes its batchmates'
    gate-major processing.)  [emit] is called once per packet, in
    input order, with the packet's verdict. *)
val process_batch :
  Router.t ->
  ?emit:(Mbuf.t -> verdict -> unit) ->
  now:int64 ->
  Mbuf.t array ->
  n:int ->
  unit

(** [invoke_gate router ~now ~gate m] — classification + indirect call
    for one gate, exposed for tests and micro-benchmarks.  Returns the
    handler's action ([Continue] when no instance is bound). *)
val invoke_gate : Router.t -> now:int64 -> gate:Gate.t -> Mbuf.t -> Plugin.action

(** The inline gates run before (ip-options, security-in, firewall)
    and after (congestion, security-out, stats) the routing decision —
    the gate order of Figure 3, exposed so the sharded engine's worker
    dispatch mirrors the same traversal. *)

val inline_gates_pre : Gate.t list
val inline_gates_post : Gate.t list

(** {2 Latency SLO hooks}

    Shared with the sharded engine's worker dispatch so both engines
    stamp and close identically.  All three only {e read} the {!Cost}
    clock, so Table-3 cycles are byte-identical with stamping on or
    off. *)

(** Stamp [m] with the calling domain's cycle clock (when
    {!Rp_obs.Slo.on}); when exemplar capture is armed, ensure and zero
    the mbuf's per-gate attribution array. *)
val slo_open : Mbuf.t -> unit

(** Accumulate [cycles] against [gate] in [m]'s attribution array
    (no-op until {!slo_open} armed the packet). *)
val slo_attrib : Mbuf.t -> gate:Gate.t -> int -> unit

(** Observe the ingress→verdict latency into the [shard]'s histograms
    (split by verdict class) and capture a breach exemplar when the
    configured SLO (or the top latency bucket) is exceeded. *)
val slo_close : shard:int -> Mbuf.t -> verdict -> unit
