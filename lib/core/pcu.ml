open Rp_classifier

type loaded = {
  plugin : (module Plugin.PLUGIN);
  impl : int;  (** lower 16 bits of the plugin code *)
  mutable live_instances : int;
}

(* Control-path message counters: one per PCU operation of the
   paper's standardized message set, counted on success. *)
let m_modloads = Rp_obs.Registry.counter "pcu.modloads"
let m_modunloads = Rp_obs.Registry.counter "pcu.modunloads"
let m_creates = Rp_obs.Registry.counter "pcu.instances_created"
let m_frees = Rp_obs.Registry.counter "pcu.instances_freed"
let m_registers = Rp_obs.Registry.counter "pcu.registrations"
let m_deregisters = Rp_obs.Registry.counter "pcu.deregistrations"
let m_messages = Rp_obs.Registry.counter "pcu.messages"
let m_faults = Rp_obs.Registry.counter "pcu.faults"
let m_quarantines = Rp_obs.Registry.counter "pcu.quarantines"
let m_restores = Rp_obs.Registry.counter "pcu.restores"

(* Per-instance fault bookkeeping.  [consecutive] resets on every
   successful handler return, so only an unbroken run of faults
   triggers the auto-quarantine. *)
type fault_state = {
  mutable consecutive : int;
  mutable total : int;
  mutable quarantined : bool;
  mutable last_reason : string;
  counter : Rp_obs.Counter.t;  (* plugin.<name>.<id>.faults *)
}

let default_quarantine_threshold = 3

type t = {
  plugins : (string, loaded) Hashtbl.t;
  instances : (int, Plugin.t) Hashtbl.t;
  (* instance id -> filters currently registered for it *)
  registrations : (int, Filter.t list ref) Hashtbl.t;
  faults : (int, fault_state) Hashtbl.t;
  mutable quarantine_threshold : int;
  aiu : Plugin.t Aiu.t;
  mutable next_instance : int;
  mutable next_impl : int array;  (** per gate *)
}

let create ?engine ?buckets ?initial_records ?max_records () =
  let on_evict ~gate:_ (b : Plugin.t Flow_table.binding) =
    match b.Flow_table.instance.Plugin.on_flow_evict with
    | Some f -> f b
    | None -> ()
  in
  {
    plugins = Hashtbl.create 16;
    instances = Hashtbl.create 64;
    registrations = Hashtbl.create 64;
    faults = Hashtbl.create 64;
    quarantine_threshold = default_quarantine_threshold;
    aiu =
      Aiu.create ?engine ?buckets ?initial_records ?max_records ~on_evict
        ~gates:Gate.count ();
    next_instance = 1;
    next_impl = Array.make Gate.count 1;
  }

let aiu t = t.aiu

let is_loaded t name = Hashtbl.mem t.plugins name

let modload t (module P : Plugin.PLUGIN) =
  if is_loaded t P.name then Error (Printf.sprintf "plugin %s already loaded" P.name)
  else begin
    let g = Gate.to_int P.gate in
    let impl = t.next_impl.(g) in
    t.next_impl.(g) <- impl + 1;
    Hashtbl.add t.plugins P.name
      { plugin = (module P); impl; live_instances = 0 };
    Rp_obs.Counter.inc m_modloads;
    Logs.info (fun m -> m "pcu: loaded plugin %s (gate %s, code %#x)" P.name
                  (Gate.name P.gate) (Plugin.code ~gate:P.gate ~impl));
    Ok ()
  end

let modunload t name =
  match Hashtbl.find_opt t.plugins name with
  | None -> Error (Printf.sprintf "plugin %s not loaded" name)
  | Some l when l.live_instances > 0 ->
    Error
      (Printf.sprintf "plugin %s has %d live instance(s)" name l.live_instances)
  | Some _ ->
    Hashtbl.remove t.plugins name;
    Rp_obs.Counter.inc m_modunloads;
    Ok ()

(* Scheduling plugins get per-instance queue-depth and drop gauges.
   Registered with replace semantics: a re-created instance with the
   same id takes over its names. *)
let register_sched_gauges inst =
  match inst.Plugin.scheduler with
  | None -> ()
  | Some s ->
    let prefix =
      Printf.sprintf "sched.%s.%d" inst.Plugin.plugin_name
        inst.Plugin.instance_id
    in
    Rp_obs.Registry.gauge (prefix ^ ".backlog") (fun () ->
        float_of_int (s.Plugin.backlog ()));
    Rp_obs.Registry.gauge (prefix ^ ".dropped") (fun () ->
        match List.assoc_opt "dropped" (s.Plugin.sched_stats ()) with
        | Some v -> ( try float_of_string v with _ -> 0.)
        | None -> 0.)

let create_instance t ~plugin config =
  match Hashtbl.find_opt t.plugins plugin with
  | None -> Error (Printf.sprintf "plugin %s not loaded" plugin)
  | Some l ->
    let module P = (val l.plugin : Plugin.PLUGIN) in
    let instance_id = t.next_instance in
    let code = Plugin.code ~gate:P.gate ~impl:l.impl in
    (match P.create_instance ~instance_id ~code ~config with
     | Error _ as e -> e
     | Ok inst ->
       t.next_instance <- instance_id + 1;
       l.live_instances <- l.live_instances + 1;
       Hashtbl.add t.instances instance_id inst;
       Hashtbl.add t.registrations instance_id (ref []);
       Hashtbl.add t.faults instance_id
         {
           consecutive = 0;
           total = 0;
           quarantined = false;
           last_reason = "";
           counter =
             Rp_obs.Registry.counter
               (Printf.sprintf "plugin.%s.%d.faults" P.name instance_id);
         };
       register_sched_gauges inst;
       Rp_obs.Counter.inc m_creates;
       Ok inst)

let find_instance t id = Hashtbl.find_opt t.instances id

let registrations_of t id =
  match Hashtbl.find_opt t.registrations id with
  | Some r -> r
  | None -> invalid_arg "Pcu: unknown instance"

let fault_state t id = Hashtbl.find_opt t.faults id

let is_quarantined t id =
  match fault_state t id with Some s -> s.quarantined | None -> false

let register_instance t ~instance f =
  match find_instance t instance with
  | None -> Error (Printf.sprintf "no instance %d" instance)
  | Some _ when is_quarantined t instance ->
    Error
      (Printf.sprintf "instance %d is quarantined (restore it first)" instance)
  | Some inst ->
    let gate = Gate.to_int inst.Plugin.gate in
    Aiu.bind t.aiu ~gate f inst;
    let regs = registrations_of t instance in
    if not (List.exists (Filter.equal f) !regs) then regs := f :: !regs;
    Rp_obs.Counter.inc m_registers;
    Ok ()

let deregister_instance t ~instance f =
  match find_instance t instance with
  | None -> Error (Printf.sprintf "no instance %d" instance)
  | Some inst ->
    let regs = registrations_of t instance in
    if List.exists (Filter.equal f) !regs then begin
      let gate = Gate.to_int inst.Plugin.gate in
      (* Only remove the table entry if it still points at this
         instance — a later registration may have rebound the same
         filter to another instance. *)
      (match Dag.find (Aiu.filter_table t.aiu ~gate) f with
       | Some bound when bound == inst -> Aiu.unbind t.aiu ~gate f
       | Some _ | None -> ());
      regs := List.filter (fun g -> not (Filter.equal f g)) !regs;
      Rp_obs.Counter.inc m_deregisters;
      Ok ()
    end
    else Error "filter not registered for this instance"

let free_instance t id =
  match find_instance t id with
  | None -> Error (Printf.sprintf "no instance %d" id)
  | Some inst ->
    let regs = registrations_of t id in
    List.iter
      (fun f -> Aiu.unbind t.aiu ~gate:(Gate.to_int inst.Plugin.gate) f)
      !regs;
    Hashtbl.remove t.registrations id;
    Hashtbl.remove t.instances id;
    (match fault_state t id with
     | Some s -> Rp_obs.Registry.remove (Rp_obs.Counter.name s.counter)
     | None -> ());
    Hashtbl.remove t.faults id;
    (match Hashtbl.find_opt t.plugins inst.Plugin.plugin_name with
     | Some l -> l.live_instances <- l.live_instances - 1
     | None -> ());
    (* Any remaining cached references disappear with the flush that
       Aiu.unbind already performed; if the instance had no filters,
       flush explicitly. *)
    if !regs = [] then Aiu.flush_flows t.aiu;
    Rp_obs.Counter.inc m_frees;
    Ok ()

let message t ~plugin key payload =
  match Hashtbl.find_opt t.plugins plugin with
  | None -> Error (Printf.sprintf "plugin %s not loaded" plugin)
  | Some l ->
    let module P = (val l.plugin : Plugin.PLUGIN) in
    Rp_obs.Counter.inc m_messages;
    P.message key payload

let instances t = Hashtbl.fold (fun _ i acc -> i :: acc) t.instances []
let plugin_names t = Hashtbl.fold (fun n _ acc -> n :: acc) t.plugins []

let bindings_of t ~instance =
  match Hashtbl.find_opt t.registrations instance with
  | Some r -> !r
  | None -> []

(* --- Fault isolation -------------------------------------------------- *)

let quarantine_threshold t = t.quarantine_threshold

let set_quarantine_threshold t n =
  if n < 1 then invalid_arg "Pcu.set_quarantine_threshold";
  t.quarantine_threshold <- n

(* Tear down the instance's data-path presence: every registered
   filter is unbound from its gate's table (selectively invalidating
   the flow records it could match, so no cached binding survives),
   while the registration list is kept so [restore] can rebind.
   Traffic for those flows falls back to the gate's default path. *)
let quarantine t id =
  match find_instance t id with
  | None -> Error (Printf.sprintf "no instance %d" id)
  | Some inst ->
    (match fault_state t id with
     | Some s when s.quarantined ->
       Error (Printf.sprintf "instance %d is already quarantined" id)
     | fs ->
       let gate = Gate.to_int inst.Plugin.gate in
       List.iter
         (fun f ->
           match Dag.find (Aiu.filter_table t.aiu ~gate) f with
           | Some bound when bound == inst -> Aiu.unbind t.aiu ~gate f
           | Some _ | None -> ())
         (bindings_of t ~instance:id);
       (* Flow-record bindings only ever come from DAG lookups, so the
          per-filter unbinds above (selective invalidation, and one
          delta each for the engine's log) already purged every cached
          pointer to a {e filtered} instance.  Only a filterless
          instance (e.g. an attached scheduler) can still be cached in
          flow records; flush only for those, so quarantining one
          plugin does not cost every other flow its cache entry. *)
       if bindings_of t ~instance:id = [] then Aiu.flush_flows t.aiu;
       (match fs with
        | Some s -> s.quarantined <- true
        | None -> ());
       Rp_obs.Counter.inc m_quarantines;
       Logs.warn (fun m ->
           m "pcu: quarantined %s#%d (%d filter binding(s) torn down)"
             inst.Plugin.plugin_name id
             (List.length (bindings_of t ~instance:id)));
       Ok ())

let restore t id =
  match find_instance t id with
  | None -> Error (Printf.sprintf "no instance %d" id)
  | Some inst ->
    (match fault_state t id with
     | Some s when s.quarantined ->
       let gate = Gate.to_int inst.Plugin.gate in
       List.iter
         (fun f -> Aiu.bind t.aiu ~gate f inst)
         (bindings_of t ~instance:id);
       s.quarantined <- false;
       s.consecutive <- 0;
       Rp_obs.Counter.inc m_restores;
       Logs.info (fun m ->
           m "pcu: restored %s#%d" inst.Plugin.plugin_name id);
       Ok ()
     | Some _ | None ->
       Error (Printf.sprintf "instance %d is not quarantined" id))

(* Called by the data path on every contained fault.  Returns
   [`Quarantine] when this fault crossed the consecutive-fault
   threshold; the caller performs the actual teardown (it may have
   router-level state, e.g. qdisc attachments, to detach too). *)
let record_fault t id ~reason =
  Rp_obs.Counter.inc m_faults;
  match fault_state t id with
  | None -> `Ok
  | Some s ->
    s.total <- s.total + 1;
    s.consecutive <- s.consecutive + 1;
    s.last_reason <- reason;
    Rp_obs.Counter.inc s.counter;
    if (not s.quarantined) && s.consecutive >= t.quarantine_threshold then
      `Quarantine
    else `Ok

let record_success t id =
  match fault_state t id with
  | Some s -> s.consecutive <- 0
  | None -> ()

type fault_info = {
  instance : Plugin.t;
  total_faults : int;
  consecutive_faults : int;
  quarantined : bool;
  last_fault : string;
}

let fault_report t =
  Hashtbl.fold
    (fun id s acc ->
      match find_instance t id with
      | None -> acc
      | Some inst ->
        {
          instance = inst;
          total_faults = s.total;
          consecutive_faults = s.consecutive;
          quarantined = s.quarantined;
          last_fault = s.last_reason;
        }
        :: acc)
    t.faults []
  |> List.sort (fun a b ->
         compare a.instance.Plugin.instance_id b.instance.Plugin.instance_id)
