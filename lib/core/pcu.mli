(** The Plugin Control Unit (paper, section 4): manages loaded plugins
    and dispatches all control-path messages to them.

    [modload] plays the role of the NetBSD [modload] command plus the
    plugin's registration callback; once loaded, a plugin can be asked
    to create instances, instances can be registered (bound to
    filters) with the AIU, and plugin-specific messages can be sent.

    The PCU owns the AIU, because [register_instance] /
    [deregister_instance] are PCU messages that manipulate AIU filter
    tables (paper: "This message would result in a call to a
    registration function that is published by the AIU"). *)

open Rp_classifier

type t

(** [create ()] builds a PCU with an AIU sized to {!Gate.count} gates.
    Flow-table parameters pass through to the AIU. *)
val create :
  ?engine:Rp_lpm.Engines.t -> ?buckets:int -> ?initial_records:int ->
  ?max_records:int -> unit -> t

val aiu : t -> Plugin.t Aiu.t

(** Control-path operations. *)

val modload : t -> (module Plugin.PLUGIN) -> (unit, string) result
(** Fails if a plugin with the same name is already loaded. *)

val modunload : t -> string -> (unit, string) result
(** Fails while instances of the plugin exist. *)

val is_loaded : t -> string -> bool

val create_instance :
  t -> plugin:string -> (string * string) list -> (Plugin.t, string) result

val free_instance : t -> int -> (unit, string) result
(** Unbinds all the instance's filters and evicts its cached flows. *)

val register_instance : t -> instance:int -> Filter.t -> (unit, string) result
(** Binds [Filter.t] to the instance in the filter table of the
    instance's gate.  The same instance may be registered any number of
    times with different filters. *)

val deregister_instance : t -> instance:int -> Filter.t -> (unit, string) result

val message : t -> plugin:string -> string -> string -> (string, string) result
(** Plugin-specific control message, forwarded to the plugin's
    callback. *)

(** Introspection. *)

val find_instance : t -> int -> Plugin.t option
val instances : t -> Plugin.t list
val plugin_names : t -> string list
val bindings_of : t -> instance:int -> Filter.t list

(** {2 Fault isolation}

    The data path (see {!Ip_core}) reports every contained plugin
    fault here; an instance whose {e consecutive} fault count reaches
    the threshold is flagged for quarantine.  Quarantining tears the
    instance's filter bindings out of the AIU (flushing the flow
    cache) so its traffic degrades to the gate's default path; the
    registration list is kept, so [restore] puts the bindings back. *)

val quarantine_threshold : t -> int

val set_quarantine_threshold : t -> int -> unit
(** @raise Invalid_argument if the threshold is < 1. *)

val record_fault : t -> int -> reason:string -> [ `Ok | `Quarantine ]
(** [record_fault t id ~reason] counts one fault against instance
    [id] ([pcu.faults], [plugin.<name>.<id>.faults]).  Returns
    [`Quarantine] when this fault crossed the consecutive-fault
    threshold; the caller then performs the teardown (via
    {!quarantine}, plus any router-level detach). *)

val record_success : t -> int -> unit
(** Resets the instance's consecutive-fault count. *)

val quarantine : t -> int -> (unit, string) result
(** Fails if the instance does not exist or is already quarantined. *)

val restore : t -> int -> (unit, string) result
(** Re-binds the instance's registered filters and clears the
    quarantine flag and consecutive-fault count. *)

val is_quarantined : t -> int -> bool

type fault_info = {
  instance : Plugin.t;
  total_faults : int;
  consecutive_faults : int;
  quarantined : bool;
  last_fault : string;  (** human-readable reason of the last fault *)
}

val fault_report : t -> fault_info list
(** One entry per live instance, sorted by instance id. *)
