open Rp_pkt

type route = {
  prefix : Prefix.t;
  next_hop : Ipaddr.t option;
  iface : int;
  metric : int;
}

type matcher = {
  insert : Prefix.t -> route -> unit;
  remove : Prefix.t -> unit;
  lookup : Ipaddr.t -> (Prefix.t * route) option;
  find : Prefix.t -> route option;
  iter : (Prefix.t -> route -> unit) -> unit;
  length : unit -> int;
}

let matcher_of_engine (module E : Rp_lpm.Lpm_intf.S) () =
  let t = E.create () in
  {
    insert = (fun p v -> E.insert t p v);
    remove = (fun p -> E.remove t p);
    lookup = (fun a -> E.lookup t a);
    find = (fun p -> E.find_exact t p);
    iter = (fun f -> E.iter f t);
    length = (fun () -> E.length t);
  }

type t = { m : matcher }

let create ?(engine = Rp_lpm.Engines.patricia) () =
  { m = matcher_of_engine engine () }

let add t route =
  match t.m.find route.prefix with
  | Some existing when existing.metric < route.metric -> ()
  | Some _ | None -> t.m.insert route.prefix route

let remove t prefix = t.m.remove prefix

let m_lookups = Rp_obs.Registry.counter "route_table.lookups"
let m_misses = Rp_obs.Registry.counter "route_table.misses"

let lookup t dst =
  Rp_obs.Counter.inc m_lookups;
  match t.m.lookup dst with
  | Some (_, r) -> Some r
  | None ->
    Rp_obs.Counter.inc m_misses;
    None

let length t = t.m.length ()
let iter f t = t.m.iter (fun _ r -> f r)

let pp_route ppf r =
  Format.fprintf ppf "%a -> %s dev if%d metric %d" Prefix.pp r.prefix
    (match r.next_hop with None -> "direct" | Some a -> Ipaddr.to_string a)
    r.iface r.metric
