open Rp_pkt

type mode =
  | Best_effort
  | Plugins

type punt_action = Punt_forward | Punt_consume

type t = {
  name : string;
  mode : mode;
  pcu : Pcu.t;
  routes : Route_table.t;
  ifaces : Iface.t array;
  mutable enabled_gates : Gate.t list;
  punts : (int, now:int64 -> Mbuf.t -> punt_action) Hashtbl.t;
  mutable local_addrs : Ipaddr.t list;
  mutable icmp_sent : int;
  mutable fault_policy : Fault.policy;
  mutable cycle_budget : int option;
}

let create ?(name = "router") ?(mode = Plugins) ?(gates = Gate.all) ?engine
    ?flow_buckets ?flow_max ?(fault_policy = Fault.Drop_packet) ?cycle_budget
    ?quarantine_threshold ~ifaces () =
  if ifaces = [] then invalid_arg "Router.create: no interfaces";
  let pcu = Pcu.create ?engine ?buckets:flow_buckets ?max_records:flow_max () in
  (match quarantine_threshold with
   | Some n -> Pcu.set_quarantine_threshold pcu n
   | None -> ());
  Flow_export.install (Pcu.aiu pcu);
  {
    name;
    mode;
    pcu;
    routes = Route_table.create ?engine ();
    ifaces = Array.of_list ifaces;
    enabled_gates = gates;
    punts = Hashtbl.create 8;
    local_addrs = [];
    icmp_sent = 0;
    fault_policy;
    cycle_budget;
  }

let iface t i =
  if i < 0 || i >= Array.length t.ifaces then
    invalid_arg (Printf.sprintf "Router.iface: no interface %d" i);
  t.ifaces.(i)

let aiu t = Pcu.aiu t.pcu

let gate_enabled t g =
  match t.mode with
  | Best_effort -> false
  | Plugins -> List.exists (Gate.equal g) t.enabled_gates

let enable_gates t gs = t.enabled_gates <- gs

let add_route t prefix ?next_hop ?(metric = 0) ~iface () =
  if iface < 0 || iface >= Array.length t.ifaces then
    invalid_arg (Printf.sprintf "Router.add_route: no interface %d" iface);
  Route_table.add t.routes { Route_table.prefix; next_hop; iface; metric }

let add_local_addr t a =
  if not (List.exists (Ipaddr.equal a) t.local_addrs) then
    t.local_addrs <- a :: t.local_addrs

let is_local t a = List.exists (Ipaddr.equal a) t.local_addrs

let local_addr_for t a =
  List.find_opt (fun l -> Ipaddr.width l = Ipaddr.width a) t.local_addrs

let set_punt t ~proto handler = Hashtbl.replace t.punts proto handler
let clear_punt t ~proto = Hashtbl.remove t.punts proto

let expire_flows t ~now ~idle_ns =
  Rp_classifier.Aiu.expire_flows (aiu t) ~now ~idle_ns

(* Quarantine is a PCU operation (filter-binding teardown) plus a
   router-level one: a scheduling instance attached as a qdisc must
   also be detached so the interface degrades to its default FIFO. *)
let quarantine t id =
  match Pcu.quarantine t.pcu id with
  | Error _ as e -> e
  | Ok () ->
    Array.iter
      (fun ifc ->
        match ifc.Iface.qdisc with
        | Some q when q.Plugin.instance_id = id -> Iface.detach_scheduler ifc
        | Some _ | None -> ())
      t.ifaces;
    Ok ()

(* The symmetric restore only re-binds filters; a previously attached
   qdisc is *not* re-attached automatically — the operator re-attaches
   once satisfied the plugin is healthy. *)
let restore t id = Pcu.restore t.pcu id
