open Rp_pkt
open Rp_core

type mode =
  | Inline
  | Sharded of int

let mode_to_string = function
  | Inline -> "inline"
  | Sharded n -> Printf.sprintf "sharded:%d" n

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "inline" -> Ok Inline
  | s when String.length s > 8 && String.sub s 0 8 = "sharded:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some n when n >= 1 -> Ok (Sharded n)
      | Some _ -> Error "sharded:N needs N >= 1"
      | None -> Error ("bad shard count in " ^ s))
  | _ -> Error (Printf.sprintf "unknown engine mode %S (inline | sharded:N)" s)

let batch_size = 32

type t = {
  mode : mode;
  router : Router.t;
  snapshot : Snapshot.t Atomic.t;
  shard_tbl : Shard.t array;  (* [||] for Inline *)
  rx : Mbuf.t Spsc.t array;
  tx : Shard.result Spsc.t array;
  busy : bool Atomic.t array;  (* worker mid-batch *)
  tx_ring_drops : Rp_obs.Counter.t array;
  stop_flag : bool Atomic.t;
  mutable domains : unit Domain.t array;
  inline_q : Shard.result Queue.t;
  m_submitted : Rp_obs.Counter.t;
  m_bp_drops : Rp_obs.Counter.t;
  m_drained : Rp_obs.Counter.t;
  batch_hist : Rp_obs.Histogram.t;
  mutable stopped : bool;
  (* Delta-publication state; control domain only. *)
  mutable deltas_on : bool;
  mutable backlog_limit : int;
  mutable pending : Snapshot.delta list;  (* newest first *)
  mutable pending_overflow : bool;
      (* pending grew past the backlog (or delta recording was
         toggled): the chain to older generations is unrecoverable,
         so the next publication must force a recompile *)
  mutable delta_log : (int * Snapshot.delta) list;  (* oldest first *)
  mutable coalesce_count : int;  (* publish after N pending mutations *)
  mutable coalesce_window_s : float option;  (* ... or this much wall time *)
  mutable window_start : float;  (* wall time of first deferred mutation *)
  m_publishes : Rp_obs.Counter.t;
  m_delta_publishes : Rp_obs.Counter.t;
  m_coalesced : Rp_obs.Counter.t;
  mutable rss : Flow_key.t -> int;
      (* shard-selection hash; default [Flow_key.hash].  The session
         layer swaps in the canonical-key hash so both directions of a
         conversation land on one shard. *)
}

let mode t = t.mode
let router t = t.router
let generation t = (Atomic.get t.snapshot).Snapshot.gen
let snapshot t = Atomic.get t.snapshot

let shards t = match t.mode with Inline -> 1 | Sharded n -> n

let shard_of_key t key =
  match t.mode with
  | Inline -> 0
  | Sharded n -> t.rss key land max_int mod n

(* Only safe while no traffic is in flight: packets of one flow hashed
   by two different functions could land on two shards, splitting the
   flow's cached state. *)
let set_rss t f = t.rss <- f
let rss t key = t.rss key

(* --- engine registry ------------------------------------------------ *)

let registry : (Router.t * t) list ref = ref []
let registry_lock = Mutex.create ()

let find router =
  Mutex.lock registry_lock;
  let r = List.find_opt (fun (rt, _) -> rt == router) !registry in
  Mutex.unlock registry_lock;
  Option.map snd r

let register t =
  Mutex.lock registry_lock;
  registry := (t.router, t) :: List.filter (fun (rt, _) -> rt != t.router) !registry;
  Mutex.unlock registry_lock

let deregister t =
  Mutex.lock registry_lock;
  registry := List.filter (fun (_, e) -> e != t) !registry;
  Mutex.unlock registry_lock

(* --- worker loop ---------------------------------------------------- *)

let dummy_key =
  Flow_key.make ~src:(Ipaddr.v4 0 0 0 0) ~dst:(Ipaddr.v4 0 0 0 0) ~proto:0
    ~sport:0 ~dport:0 ~iface:0

let dummy_mbuf () = Mbuf.synth ~key:dummy_key ~len:0 ()

let worker_loop t i =
  let shard = t.shard_tbl.(i) in
  let rx = t.rx.(i) and tx = t.tx.(i) in
  let busy = t.busy.(i) in
  let tx_drops = t.tx_ring_drops.(i) in
  let scratch = Array.make batch_size (dummy_mbuf ()) in
  let running = ref true in
  while !running do
    (* Pick up a new snapshot generation even when idle, so control
       waits ([synced]) terminate without traffic. *)
    Shard.sync shard (Atomic.get t.snapshot);
    let n = Spsc.pop_batch rx ~max:batch_size scratch in
    if n = 0 then begin
      if Atomic.get t.stop_flag && Spsc.is_empty rx then running := false
      else Domain.cpu_relax ()
    end
    else begin
      Atomic.set busy true;
      Rp_obs.Histogram.observe t.batch_hist n;
      let (), cycles =
        Cost.measure (fun () ->
            Shard.dispatch_batch shard scratch ~n ~emit:(fun result ->
                if not (Spsc.push tx result) then
                  Rp_obs.Counter.inc tx_drops))
      in
      Shard.add_cycles shard cycles;
      Atomic.set busy false
    end
  done

(* --- construction --------------------------------------------------- *)

let create ?(rx_capacity = 1024) ?(tx_capacity = 2048) mode router =
  (match mode with
   | Sharded n when n < 1 -> invalid_arg "Engine.create: Sharded n < 1"
   | _ -> ());
  let snap = Snapshot.capture ~gen:0 router in
  let n = match mode with Inline -> 0 | Sharded n -> n in
  let dummy_result =
    { Shard.m = dummy_mbuf (); outcome = Shard.Dropped "dummy"; faults = [] }
  in
  let t =
    {
      mode;
      router;
      snapshot = Atomic.make snap;
      shard_tbl = Array.init n (fun i -> Shard.create ~index:i snap);
      rx =
        Array.init n (fun _ ->
            Spsc.create ~capacity:rx_capacity ~dummy:(dummy_mbuf ()));
      tx =
        Array.init n (fun _ ->
            Spsc.create ~capacity:tx_capacity ~dummy:dummy_result);
      busy = Array.init n (fun _ -> Atomic.make false);
      tx_ring_drops =
        Array.init n (fun i ->
            Rp_obs.Registry.counter
              (Printf.sprintf "engine.shard%d.tx_ring_drops" i));
      stop_flag = Atomic.make false;
      domains = [||];
      inline_q = Queue.create ();
      m_submitted = Rp_obs.Registry.counter "engine.submitted";
      m_bp_drops = Rp_obs.Registry.counter "engine.backpressure_drops";
      m_drained = Rp_obs.Registry.counter "engine.drained";
      batch_hist =
        Rp_obs.Registry.histogram ~bounds:[| 1; 2; 4; 8; 16; 32 |]
          "engine.batch_size";
      stopped = false;
      deltas_on = true;
      backlog_limit = 64;
      pending = [];
      pending_overflow = false;
      delta_log = [];
      coalesce_count = 1;
      coalesce_window_s = None;
      window_start = 0.;
      m_publishes = Rp_obs.Registry.counter "engine.publishes";
      m_delta_publishes = Rp_obs.Registry.counter "engine.delta_publishes";
      m_coalesced = Rp_obs.Registry.counter "engine.coalesced";
      rss = Flow_key.hash;
    }
  in
  (* Observe every control-path AIU mutation so publications can carry
     it as a delta instead of forcing shard recompiles.  The gen-0
     snapshot above already reflects the AIU, so recording starts
     only now. *)
  Rp_classifier.Aiu.set_listener (Router.aiu router) (fun ev ->
      if t.deltas_on then begin
        if t.pending = [] then t.window_start <- Unix.gettimeofday ();
        t.pending <-
          (match ev with
           | Rp_classifier.Aiu.Bound (gate, f, inst) ->
             Snapshot.Bind (gate, f, inst)
           | Rp_classifier.Aiu.Unbound (gate, f) -> Snapshot.Unbind (gate, f)
           | Rp_classifier.Aiu.Flushed -> Snapshot.Flush)
          :: t.pending;
        if List.length t.pending > t.backlog_limit then begin
          (* More outstanding mutations than any shard could replay
             from the bounded log: give up on the chain now and let
             the next publication recompile. *)
          t.pending <- [];
          t.pending_overflow <- true
        end
      end);
  Rp_obs.Registry.gauge "engine.shards" (fun () ->
      float_of_int (shards t));
  Rp_obs.Registry.gauge "engine.generation" (fun () ->
      float_of_int (generation t));
  Array.iteri
    (fun i rx ->
      Rp_obs.Registry.gauge
        (Printf.sprintf "engine.shard%d.rx_depth" i)
        (fun () -> float_of_int (Spsc.length rx)))
    t.rx;
  Array.iteri
    (fun i tx ->
      Rp_obs.Registry.gauge
        (Printf.sprintf "engine.shard%d.tx_depth" i)
        (fun () -> float_of_int (Spsc.length tx)))
    t.tx;
  (* Health probes: sampled by the binaries' report loops, they keep a
     high-water mark, so a ring that spiked between two metric dumps
     is still visible.  Registration replaces by name — a re-created
     engine takes the probes over. *)
  let occupancy ring () =
    100. *. float_of_int (Spsc.length ring)
    /. float_of_int (Spsc.capacity ring)
  in
  Array.iteri
    (fun i rx ->
      Rp_obs.Health.register
        (Printf.sprintf "engine.shard%d.rx_pct" i)
        (occupancy rx))
    t.rx;
  Array.iteri
    (fun i tx ->
      Rp_obs.Health.register
        (Printf.sprintf "engine.shard%d.tx_pct" i)
        (occupancy tx))
    t.tx;
  Rp_obs.Health.register "engine.delta_backlog" (fun () ->
      float_of_int (List.length t.pending));
  Rp_obs.Health.register "engine.quarantined" (fun () ->
      float_of_int
        (List.length
           (List.filter
              (fun f -> f.Pcu.quarantined)
              (Pcu.fault_report router.Router.pcu))));
  t.domains <-
    Array.init n (fun i -> Domain.spawn (fun () -> worker_loop t i));
  register t;
  t

(* --- control-domain operations -------------------------------------- *)

let rec list_drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> list_drop (n - 1) tl

(* Force a publication now.  With delta recording on and an intact
   chain, the pending mutations are stamped with consecutive
   generations, appended to the log (trimmed to the newest
   [backlog_limit] entries) and shipped with the snapshot, so shards
   at most [backlog_limit] generations behind replay instead of
   recompiling.  A publication with nothing pending ships a single
   [Refresh] delta — shards pick up routes/gates/policy/budget without
   touching their classifier or flow cache. *)
let publish t =
  Rp_obs.Counter.inc t.m_publishes;
  let base = generation t in
  if (not t.deltas_on) || t.pending_overflow then begin
    (* Chain intentionally (or irrecoverably) broken: publish a bare
       snapshot with an empty log, forcing every shard to recompile. *)
    t.pending <- [];
    t.pending_overflow <- false;
    t.delta_log <- [];
    Atomic.set t.snapshot (Snapshot.capture ~gen:(base + 1) t.router)
  end
  else begin
    let ds =
      match List.rev t.pending with [] -> [ Snapshot.Refresh ] | ds -> ds
    in
    t.pending <- [];
    let stamped = List.mapi (fun i d -> (base + 1 + i, d)) ds in
    let gen = base + List.length ds in
    let log = t.delta_log @ stamped in
    let log = list_drop (List.length log - t.backlog_limit) log in
    t.delta_log <- log;
    Atomic.set t.snapshot (Snapshot.capture ~gen ~deltas:log t.router);
    Rp_obs.Counter.inc t.m_delta_publishes
  end

(* Coalescing-aware publication, used after ordinary control-plane
   mutations ([pmgr]).  Defers while fewer than [coalesce_count]
   mutations are pending and the optional wall-clock window has not
   elapsed; anything that must reach the shards now (quarantine on the
   drain path, [pmgr engine publish]) calls {!publish} directly. *)
let maybe_publish t =
  let n = List.length t.pending in
  let window_hit =
    match t.coalesce_window_s with
    | Some w -> n > 0 && Unix.gettimeofday () -. t.window_start >= w
    | None -> false
  in
  if n = 0 || t.pending_overflow || t.coalesce_count <= 1
     || n >= t.coalesce_count || window_hit
  then publish t
  else Rp_obs.Counter.inc t.m_coalesced

let set_coalesce t ~count ?window_s () =
  if count < 1 then invalid_arg "Engine.set_coalesce: count";
  t.coalesce_count <- count;
  t.coalesce_window_s <- window_s

let coalesce t = (t.coalesce_count, t.coalesce_window_s)
let pending_deltas t = List.length t.pending

let set_backlog t limit =
  if limit < 1 then invalid_arg "Engine.set_backlog: limit";
  t.backlog_limit <- limit

let backlog t = t.backlog_limit

let set_deltas t on =
  if t.deltas_on <> on then begin
    t.deltas_on <- on;
    (* Mutations made while recording was off are absent from the log;
       poison the chain so the next publication recompiles. *)
    t.pending <- [];
    t.pending_overflow <- true
  end

let deltas_enabled t = t.deltas_on

let synced t =
  match t.mode with
  | Inline -> true
  | Sharded _ ->
    let gen = generation t in
    Array.for_all (fun s -> Shard.seen_gen s = gen) t.shard_tbl

let idle t =
  match t.mode with
  | Inline -> true
  | Sharded _ ->
    Array.for_all Spsc.is_empty t.rx
    && Array.for_all (fun b -> not (Atomic.get b)) t.busy

let shard_cycles t i =
  match t.mode with Inline -> Cost.get () | Sharded _ -> Shard.cycles t.shard_tbl.(i)

let shard_flow_keys t i =
  match t.mode with
  | Inline ->
    let keys = ref [] in
    Rp_classifier.Flow_table.iter
      (fun r -> keys := Rp_classifier.Flow_table.key r :: !keys)
      (Rp_classifier.Aiu.flow_table (Router.aiu t.router));
    !keys
  | Sharded _ -> Shard.flow_keys t.shard_tbl.(i)

let verdict_to_outcome = function
  | Ip_core.Enqueued i -> Shard.Forwarded i
  | Ip_core.Delivered_local -> Shard.Absorbed
  | Ip_core.Absorbed -> Shard.Absorbed
  | Ip_core.Dropped why -> Shard.Dropped why

let submit t ~now m =
  m.Mbuf.birth_ns <- now;
  match t.mode with
  | Inline ->
    Rp_obs.Counter.inc t.m_submitted;
    let verdict = Ip_core.process t.router ~now m in
    (match verdict with
     | Ip_core.Enqueued out ->
       (* Keep the output queue from filling: the engine has no
          transmit loop, so pull what the data path queued. *)
       let ifc = Router.iface t.router out in
       let rec drain_iface () =
         match Iface.dequeue ifc ~now with
         | Some _ -> drain_iface ()
         | None -> ()
       in
       drain_iface ()
     | _ -> ());
    Queue.add
      { Shard.m; outcome = verdict_to_outcome verdict; faults = [] }
      t.inline_q;
    true
  | Sharded n ->
    let s = t.rss m.Mbuf.key land max_int mod n in
    if Spsc.push t.rx.(s) m then begin
      Rp_obs.Counter.inc t.m_submitted;
      true
    end
    else begin
      Rp_obs.Counter.inc t.m_bp_drops;
      Rp_obs.Drop_reason.count Rp_obs.Drop_reason.Backpressure;
      false
    end

(* Batched submission.  Inline: one [Ip_core.process_batch] sweep over
   the whole batch — the engine-level bookkeeping (submit counter,
   output-queue drain, inline result queue) hangs off the batch path's
   per-packet [emit].  Sharded: packets of one batch hash to different
   shards, so distribution stays per-packet pushes; the batching win
   there is on the worker side ([Shard.dispatch_batch]). *)
let submit_batch t ~now batch ~n =
  if n < 0 || n > Array.length batch then
    invalid_arg "Engine.submit_batch: n out of range";
  match t.mode with
  | Inline ->
    for i = 0 to n - 1 do
      batch.(i).Mbuf.birth_ns <- now
    done;
    if n > 0 then Rp_obs.Counter.add t.m_submitted n;
    Ip_core.process_batch t.router ~now batch ~n ~emit:(fun m verdict ->
        (match verdict with
         | Ip_core.Enqueued out ->
           let ifc = Router.iface t.router out in
           let rec drain_iface () =
             match Iface.dequeue ifc ~now with
             | Some _ -> drain_iface ()
             | None -> ()
           in
           drain_iface ()
         | _ -> ());
        Queue.add
          { Shard.m; outcome = verdict_to_outcome verdict; faults = [] }
          t.inline_q);
    n
  | Sharded _ ->
    let accepted = ref 0 in
    for i = 0 to n - 1 do
      if submit t ~now batch.(i) then incr accepted
    done;
    !accepted

(* Apply one result's contained-fault events to the shared control
   state.  Returns true when the bindings changed (a quarantine), so
   the caller republishes once per drain. *)
let apply_faults t (result : Shard.result) =
  List.fold_left
    (fun changed (id, reason) ->
      let pcu = t.router.Router.pcu in
      let changed =
        match Pcu.record_fault pcu id ~reason with
        | `Quarantine ->
          (match Router.quarantine t.router id with Ok () | Error _ -> ());
          true
        | `Ok -> changed
      in
      match t.router.Router.fault_policy with
      | Fault.Unbind when not (Pcu.is_quarantined pcu id) ->
        (match Router.quarantine t.router id with Ok () | Error _ -> ());
        true
      | _ -> changed)
    false result.Shard.faults

let drain ?(max = max_int) t ~f =
  let drained = ref 0 in
  let republish = ref false in
  let handle result =
    incr drained;
    Rp_obs.Counter.inc t.m_drained;
    if result.Shard.faults <> [] then
      if apply_faults t result then republish := true;
    f result
  in
  (match t.mode with
   | Inline ->
     while !drained < max && not (Queue.is_empty t.inline_q) do
       handle (Queue.pop t.inline_q)
     done
   | Sharded _ ->
     Array.iter
       (fun tx ->
         let continue = ref true in
         while !continue && !drained < max do
           match Spsc.pop tx with
           | Some result -> handle result
           | None -> continue := false
         done)
       t.tx);
  if !republish then publish t;
  !drained

let flush t ~f =
  let total = ref 0 in
  let quiet = ref 0 in
  (* Two consecutive quiet passes over an idle engine: the first can
     race a worker finishing its last batch, the second cannot. *)
  while !quiet < 2 do
    let n = drain t ~f in
    total := !total + n;
    if n = 0 && idle t then incr quiet else quiet := 0;
    if !quiet < 2 then Domain.cpu_relax ()
  done;
  !total

let stats_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "engine: mode=%s gen=%d synced=%b\n" (mode_to_string t.mode)
       (generation t) (synced t));
  Buffer.add_string b
    (Printf.sprintf "  submitted=%d drained=%d backpressure_drops=%d\n"
       (Rp_obs.Counter.get t.m_submitted)
       (Rp_obs.Counter.get t.m_drained)
       (Rp_obs.Counter.get t.m_bp_drops));
  Buffer.add_string b
    (Printf.sprintf
       "  deltas=%s backlog=%d coalesce=%d%s pending=%d publishes=%d \
        delta_publishes=%d coalesced=%d\n"
       (if t.deltas_on then "on" else "off")
       t.backlog_limit t.coalesce_count
       (match t.coalesce_window_s with
        | Some w -> Printf.sprintf " window=%.0fms" (w *. 1000.)
        | None -> "")
       (List.length t.pending)
       (Rp_obs.Counter.get t.m_publishes)
       (Rp_obs.Counter.get t.m_delta_publishes)
       (Rp_obs.Counter.get t.m_coalesced));
  Array.iteri
    (fun i shard ->
      let g suffix =
        Rp_obs.Counter.get
          (Rp_obs.Registry.counter (Printf.sprintf "engine.shard%d.%s" i suffix))
      in
      Buffer.add_string b
        (Printf.sprintf
           "  shard%d: rx=%d fwd=%d drop=%d absorbed=%d cycles=%d \
            rx_depth=%d tx_depth=%d flow_flushes=%d delta_applies=%d \
            tx_ring_drops=%d\n"
           i (g "rx") (g "forwarded") (g "dropped") (g "absorbed")
           (Shard.cycles shard)
           (Spsc.length t.rx.(i))
           (Spsc.length t.tx.(i))
           (g "flow_flushes") (g "delta_applies") (g "tx_ring_drops")))
    t.shard_tbl;
  Buffer.contents b

(* Flush every flow cache the engine owns, exporting records to the
   Flowlog ring: the router's own table (inline mode, or the control
   path's classifications) plus each shard's private table.  Shard
   tables are domain-private, so this must only run while the workers
   are idle (drained) or stopped — e.g. right before/after [stop], or
   after a [flush] returned with no backlog. *)
let flush_flows t =
  Rp_classifier.Aiu.flush_flows (Router.aiu t.router);
  Array.iter Shard.flush_flows t.shard_tbl

(* Same ownership contract as [flush_flows]: shard flow tables are
   domain-private, so expiry may only run while the workers are
   drained.  The fig-zipf soak calls this during its idle pauses to
   keep arrival/expiry churning at million-flow scale. *)
let expire_flows t ~now ~idle_ns =
  let n = ref (Rp_classifier.Aiu.expire_flows (Router.aiu t.router) ~now ~idle_ns) in
  Array.iter (fun s -> n := !n + Shard.expire_flows s ~now ~idle_ns) t.shard_tbl;
  !n

let shard_flow_count t i =
  match t.mode with
  | Inline ->
    Rp_classifier.Flow_table.length
      (Rp_classifier.Aiu.flow_table (Router.aiu t.router))
  | Sharded _ -> Shard.flow_count t.shard_tbl.(i)

let shard_flow_stats t i =
  match t.mode with
  | Inline ->
    Rp_classifier.Flow_table.stats
      (Rp_classifier.Aiu.flow_table (Router.aiu t.router))
  | Sharded _ -> Shard.flow_stats t.shard_tbl.(i)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Rp_classifier.Aiu.clear_listener (Router.aiu t.router);
    Atomic.set t.stop_flag true;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    deregister t
  end
