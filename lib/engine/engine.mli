(** The packet engine: single-domain inline execution or RSS-style
    sharding across OCaml 5 worker domains.

    [Sharded n] spawns [n] worker domains.  The control (main) domain
    distributes packets to per-shard SPSC RX rings by
    [Flow_key.hash mod n], so every packet of a flow lands on the same
    shard and per-flow soft state stays domain-private.  Workers run
    batched gate dispatch (default batch 32) against a read-only
    classifier {!Snapshot} published through one atomic pointer with a
    generation counter; control-plane changes (bind/unbind, route
    changes, quarantine) go through {!publish} / {!maybe_publish}.
    The engine records every AIU mutation as a {!Snapshot.delta}, so a
    shard observing a new generation normally {e replays} just the
    outstanding deltas on its private classifier — evicting only the
    flows the changed filters could match — and recompiles from
    scratch (flushing its flow cache) only when it has fallen further
    behind than the bounded delta log reaches ({!set_backlog}), or
    when delta recording is off ({!set_deltas}).  The hot path takes
    no locks.
    Results (and contained-fault events) return on per-shard TX rings;
    {!drain} applies fault attribution to the PCU on the control
    domain and republishes when a quarantine changed the bindings.

    [Inline] runs the full single-domain {!Rp_core.Ip_core} path
    synchronously in [submit] — bit-for-bit the deterministic behavior
    of the rest of the repository — so callers can treat both modes
    uniformly.

    Full rings drop rather than block ({!submit} returns [false] and
    the engine counts a backpressure drop), like a NIC RX ring. *)

open Rp_pkt
open Rp_core

type mode =
  | Inline
  | Sharded of int  (** number of worker domains (>= 1) *)

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

type t

(** [create mode router] — for [Sharded n] this captures the first
    snapshot, registers the engine's metrics and spawns the worker
    domains.  [rx_capacity] / [tx_capacity] size the per-shard rings
    (rounded up to powers of two; defaults 1024 / 2048).
    @raise Invalid_argument on [Sharded n] with [n < 1]. *)
val create : ?rx_capacity:int -> ?tx_capacity:int -> mode -> Router.t -> t

val mode : t -> mode
val router : t -> Router.t

(** Number of shards (1 for [Inline]). *)
val shards : t -> int

(** The shard [key] hashes to. *)
val shard_of_key : t -> Flow_key.t -> int

(** [set_rss t f] replaces the shard-selection hash (default
    {!Rp_pkt.Flow_key.hash}).  The session layer installs
    {!Rp_pkt.Flow_key.canonical_hash} so both directions of a
    conversation RSS to the same shard.  Only call while no traffic is
    in flight: one flow hashed by two functions would split its cached
    state across shards. *)
val set_rss : t -> (Flow_key.t -> int) -> unit

(** The current shard-selection hash applied to [key]. *)
val rss : t -> Flow_key.t -> int

(** Flow keys cached by shard [i] (test introspection). *)
val shard_flow_keys : t -> int -> Flow_key.t list

(** [submit t ~now m] hands one packet to the engine.  [Inline]: runs
    the packet synchronously and queues its result for {!drain}.
    [Sharded]: pushes to the owning shard's RX ring; [false] means the
    ring was full and the packet was dropped (counted). *)
val submit : t -> now:int64 -> Mbuf.t -> bool

(** [submit_batch t ~now batch ~n] hands [batch.(0 .. n-1)] to the
    engine at once, returning how many were accepted.  [Inline]: one
    {!Rp_core.Ip_core.process_batch} gate-major sweep (always accepts
    all [n]).  [Sharded]: per-packet RX-ring pushes (packets of one
    batch hash to different shards); rejected packets are counted as
    backpressure drops, exactly as {!submit}. *)
val submit_batch : t -> now:int64 -> Mbuf.t array -> n:int -> int

(** [drain t ~f] pulls completed results from every shard, applies
    contained-fault events to the PCU/router (auto-quarantine and the
    [Unbind] policy republish the snapshot), and calls [f] on each
    result.  Returns the number of results drained.  Control domain
    only. *)
val drain : ?max:int -> t -> f:(Shard.result -> unit) -> int

(** Current snapshot generation. *)
val generation : t -> int

(** The currently published snapshot (bench/test introspection — e.g.
    driving {!Shard.sync} synchronously without worker domains). *)
val snapshot : t -> Snapshot.t

(** Capture the router's control state and publish it as a new
    generation {e now}, shipping any pending mutation deltas with the
    snapshot (or an empty log forcing recompiles, when delta recording
    is off or the pending set overflowed the backlog).  Used for
    changes that must reach the shards immediately — quarantine on the
    drain path, [pmgr engine publish]. *)
val publish : t -> unit

(** Coalescing-aware publication for ordinary control-plane mutations:
    publishes unless fewer than the configured batch of mutations is
    pending and the optional wall-clock window has not elapsed (see
    {!set_coalesce}), in which case the mutations stay buffered for a
    later publication. *)
val maybe_publish : t -> unit

(** [set_coalesce t ~count ?window_s ()] — {!maybe_publish} defers
    until [count] mutations are pending, or [window_s] seconds have
    passed since the first deferred one.  [count = 1] (the default)
    publishes every mutation immediately. *)
val set_coalesce : t -> count:int -> ?window_s:float -> unit -> unit

(** Current (count, window) coalescing configuration. *)
val coalesce : t -> int * float option

(** Mutations recorded but not yet published. *)
val pending_deltas : t -> int

(** [set_backlog t n] bounds the published delta log to the newest [n]
    entries (default 64); a shard more than [n] generations behind
    recompiles instead of replaying. *)
val set_backlog : t -> int -> unit

val backlog : t -> int

(** [set_deltas t on] toggles delta recording.  Turning it off makes
    every publication a full-recompile one (the PR-3 behavior — used
    as the bench baseline); toggling in either direction poisons the
    current chain so the next publication recompiles. *)
val set_deltas : t -> bool -> unit

val deltas_enabled : t -> bool

(** Have all shards compiled the current generation? *)
val synced : t -> bool

(** True when no packets are in flight (all RX rings empty and every
    worker idle); results may still await {!drain}. *)
val idle : t -> bool

(** [flush t ~f] waits for in-flight packets to complete, draining
    results to [f] as it spins.  Returns the number drained. *)
val flush : t -> f:(Shard.result -> unit) -> int

(** Model cycles charged by shard [i] since creation. *)
val shard_cycles : t -> int -> int

(** Human-readable stats block (the [pmgr engine stats] payload). *)
val stats_string : t -> string

(** Flush every flow cache the engine owns (the router's table plus
    each shard's private one), exporting the records to the
    {!Rp_obs.Flowlog} ring.  Shard flow tables are domain-private:
    only call this while the workers are idle ({!flush} returned with
    no backlog) or after {!stop}. *)
val flush_flows : t -> unit

(** Expire idle records from every flow cache the engine owns (router
    table plus each shard's), exporting them with reason ["expired"];
    returns the total evicted.  Same idle-only contract as
    {!flush_flows} — the long-haul soaks call this during drained
    pauses to keep continuous arrival/expiry churn going. *)
val expire_flows : t -> now:int64 -> idle_ns:int64 -> int

(** Live flow records cached by shard [i] (inline: the router table).
    Idle-only, like {!flush_flows}. *)
val shard_flow_count : t -> int -> int

(** Flow-table stats of shard [i] (inline: the router table) — the
    soak reads [chain_max] from here to bound probe lengths.
    Idle-only, like {!flush_flows}. *)
val shard_flow_stats : t -> int -> Rp_classifier.Flow_table.stats

(** Stop the workers (joining their domains) and deregister the
    engine.  Idempotent.  Packets still in RX rings are dispatched
    before workers exit; call {!drain} afterwards to collect them. *)
val stop : t -> unit

(** {2 Engine registry}

    The control plane ([pmgr]) finds the engine attached to the router
    it operates on, so mutating commands can republish. *)

val find : Router.t -> t option
