open Rp_pkt
open Rp_core

type outcome =
  | Forwarded of int
  | Absorbed
  | Dropped of string

type result = {
  m : Mbuf.t;
  outcome : outcome;
  faults : (int * string) list;
}

type t = {
  index : int;
  meters : Gate.Meters.t;
  m_rx : Rp_obs.Counter.t;
  m_forwarded : Rp_obs.Counter.t;
  m_dropped : Rp_obs.Counter.t;
  m_absorbed : Rp_obs.Counter.t;
  m_flow_flushes : Rp_obs.Counter.t;
  m_delta_applies : Rp_obs.Counter.t;
  m_deltas_replayed : Rp_obs.Counter.t;
  seen_gen : int Atomic.t;
  cycles_acc : int Atomic.t;
  (* Domain-private compiled state; written only by [sync] on the
     shard's own domain, after which only that domain reads it. *)
  mutable aiu : Plugin.t Rp_classifier.Aiu.t;
  mutable routes : Route_table.t;
  mutable gates : Gate.t list;
  mutable policy : Fault.policy;
  mutable budget : int option;
}

let index t = t.index
let meters t = t.meters
let seen_gen t = Atomic.get t.seen_gen
let cycles t = Atomic.get t.cycles_acc
let add_cycles t n = ignore (Atomic.fetch_and_add t.cycles_acc n)

let compile snap =
  let aiu = Rp_classifier.Aiu.create ~gates:Gate.count () in
  Flow_export.install aiu;
  List.iter
    (fun (gate, filter, inst) -> Rp_classifier.Aiu.bind aiu ~gate filter inst)
    snap.Snapshot.bindings;
  Rp_classifier.Aiu.set_mode aiu snap.Snapshot.classifier;
  let routes = Route_table.create () in
  List.iter (fun r -> Route_table.add routes r) snap.Snapshot.routes;
  (aiu, routes)

let apply t (snap : Snapshot.t) =
  let aiu, routes = compile snap in
  (* Export the outgoing cache's flow records before dropping it, so a
     recompile never loses NetFlow accounting. *)
  Rp_classifier.Aiu.flush_flows t.aiu;
  t.aiu <- aiu;
  t.routes <- routes;
  t.gates <- snap.gates;
  t.policy <- snap.policy;
  t.budget <- snap.budget;
  Atomic.set t.seen_gen snap.gen

let create ~index snap =
  let prefix = Printf.sprintf "engine.shard%d." index in
  let counter suffix = Rp_obs.Registry.counter (prefix ^ suffix) in
  let t =
    {
      index;
      meters = Gate.Meters.create ~prefix;
      m_rx = counter "rx";
      m_forwarded = counter "forwarded";
      m_dropped = counter "dropped";
      m_absorbed = counter "absorbed";
      m_flow_flushes = counter "flow_flushes";
      m_delta_applies = counter "delta_applies";
      m_deltas_replayed = counter "deltas_replayed";
      seen_gen = Atomic.make (-1);
      cycles_acc = Atomic.make 0;
      aiu = Rp_classifier.Aiu.create ~gates:Gate.count ();
      routes = Route_table.create ();
      gates = [];
      policy = Fault.Drop_packet;
      budget = None;
    }
  in
  apply t snap;
  t

(* Refresh the cheap whole-value state a snapshot always carries in
   full: routes (rebuilt — route churn is orders of magnitude rarer
   than filter churn), the enabled-gate list, fault policy/budget, and
   the classifier mode (so a `pmgr classifier` toggle reaches shards
   on the delta path too, without invalidating their flow caches). *)
let refresh_control t (snap : Snapshot.t) =
  let routes = Route_table.create () in
  List.iter (fun r -> Route_table.add routes r) snap.Snapshot.routes;
  t.routes <- routes;
  t.gates <- snap.gates;
  t.policy <- snap.policy;
  t.budget <- snap.budget;
  Rp_classifier.Aiu.set_mode t.aiu snap.Snapshot.classifier

let replay_delta t = function
  | Snapshot.Bind (gate, f, inst) -> Rp_classifier.Aiu.bind t.aiu ~gate f inst
  | Snapshot.Unbind (gate, f) -> Rp_classifier.Aiu.unbind t.aiu ~gate f
  | Snapshot.Flush -> Rp_classifier.Aiu.flush_flows t.aiu
  | Snapshot.Refresh -> ()

let sync t snap =
  let seen = Atomic.get t.seen_gen in
  if snap.Snapshot.gen <> seen then begin
    (* Deltas newer than our compiled state.  Generations in the log
       are consecutive, so the chain reaches back to [seen] exactly
       when one entry exists per missed generation; otherwise the log
       was trimmed (backlog overflow) or a publication intentionally
       broke the chain, and only a recompile is sound. *)
    let pending =
      List.filter (fun (g, _) -> g > seen) snap.Snapshot.deltas
    in
    if seen >= 0 && List.length pending = snap.Snapshot.gen - seen then begin
      (* Incremental path: replay the outstanding mutations on the
         private AIU.  Selective invalidation inside [Aiu.bind]/
         [Aiu.unbind] evicts only the flows the changed filters could
         match — unrelated flows keep their records and FIX fast
         path. *)
      List.iter (fun (_, d) -> replay_delta t d) pending;
      refresh_control t snap;
      Atomic.set t.seen_gen snap.gen;
      Rp_obs.Counter.inc t.m_delta_applies;
      Rp_obs.Counter.add t.m_deltas_replayed (List.length pending)
    end
    else begin
      apply t snap;
      (* A recompile discards the private flow cache — same semantics
         as the single-domain AIU flush on any filter-table mutation. *)
      Rp_obs.Counter.inc t.m_flow_flushes
    end
  end

(* --- data path ------------------------------------------------------ *)

exception Drop_exn of string
exception Consumed_exn

(* The exact framework charges of the inline path, by construction:
   both engines call the shared {!Rp_core.Classify} entry point,
   against the shard's private AIU here. *)
let classify_at t ~now ~gate m = Classify.at t.aiu ~now ~gate m

(* Worker-side fault containment: count (shard meters and the global
   per-gate meters — counters are atomic) and record the event for the
   control domain; the PCU is never touched from here. *)
let contain t ~gate ~tseq inst (reason : Fault.reason) faults =
  Rp_obs.Counter.inc (Gate.Meters.faults t.meters gate);
  Rp_obs.Counter.inc (Gate.faults gate);
  if Rp_obs.Telemetry.on () then
    Rp_obs.Telemetry.record ~ts:(Cost.get ()) ~kind:Rp_obs.Telemetry.Fault
      ~gate:(Gate.to_int gate) ~pkt:tseq ~arg:inst.Plugin.instance_id;
  faults :=
    (inst.Plugin.instance_id, Fault.reason_to_string reason) :: !faults;
  match t.policy with
  | Fault.Drop_packet -> Plugin.Drop "plugin fault"
  | Fault.Continue_packet | Fault.Unbind -> Plugin.Continue

let invoke_gate t ~now ~gate m faults =
  Rp_obs.Counter.inc (Gate.Meters.dispatch t.meters gate);
  let tseq = m.Mbuf.tseq in
  if tseq <> 0 then
    Rp_obs.Telemetry.record ~ts:(Cost.get ())
      ~kind:Rp_obs.Telemetry.Gate_enter ~gate:(Gate.to_int gate) ~pkt:tseq
      ~arg:0;
  let action, gate_cycles =
    Cost.measure (fun () ->
        match classify_at t ~now ~gate m with
        | None -> Plugin.Continue
        | Some (inst, record) -> (
            let binding =
              Rp_classifier.Flow_table.binding record ~gate:(Gate.to_int gate)
            in
            let outcome, handler_cycles =
              Cost.measure (fun () ->
                  try
                    Ok (inst.Plugin.handle { Plugin.now_ns = now; binding } m)
                  with e -> Error (Fault.Exn (Printexc.to_string e)))
            in
            match outcome with
            | Error reason -> contain t ~gate ~tseq inst reason faults
            | Ok action -> (
                match t.budget with
                | Some budget when handler_cycles > budget ->
                  contain t ~gate ~tseq inst (Fault.Budget handler_cycles)
                    faults
                | _ -> action)))
  in
  Rp_obs.Counter.add (Gate.Meters.cycles t.meters gate) gate_cycles;
  Ip_core.slo_attrib m ~gate gate_cycles;
  if tseq <> 0 then begin
    Rp_obs.Telemetry.record ~ts:(Cost.get ())
      ~kind:Rp_obs.Telemetry.Gate_exit ~gate:(Gate.to_int gate) ~pkt:tseq
      ~arg:0;
    Rp_obs.Histogram.observe (Gate.span gate) gate_cycles
  end;
  (match action with
   | Plugin.Drop _ -> Rp_obs.Counter.inc (Gate.Meters.drops t.meters gate)
   | Plugin.Continue | Plugin.Consumed -> ());
  action

let gate_enabled t g = List.exists (Gate.equal g) t.gates

let run_gates t ~now m gates faults =
  List.iter
    (fun gate ->
      if gate_enabled t gate then
        match invoke_gate t ~now ~gate m faults with
        | Plugin.Continue -> ()
        | Plugin.Consumed -> raise Consumed_exn
        | Plugin.Drop why -> raise (Drop_exn why))
    gates

let route t ~now m faults =
  if gate_enabled t Gate.Routing then begin
    match invoke_gate t ~now ~gate:Gate.Routing m faults with
    | Plugin.Continue -> ()
    | Plugin.Consumed -> raise Consumed_exn
    | Plugin.Drop why -> raise (Drop_exn why)
  end;
  match m.Mbuf.out_iface with
  | Some i -> i
  | None -> (
      match Route_table.lookup t.routes m.Mbuf.key.Flow_key.dst with
      | Some r ->
        m.Mbuf.out_iface <- Some r.Route_table.iface;
        m.Mbuf.next_hop <-
          (match r.Route_table.next_hop with
           | Some _ as nh -> nh
           | None -> Some m.Mbuf.key.Flow_key.dst);
        r.Route_table.iface
      | None -> raise (Drop_exn "no route to destination"))

let dispatch t ~now m =
  Rp_obs.Counter.inc t.m_rx;
  (* Mirror of the inline path's telemetry in [Ip_core.process]: each
     worker samples its own packets and writes its own event ring. *)
  if Rp_obs.Telemetry.on () && m.Mbuf.tseq = 0 then
    m.Mbuf.tseq <- Rp_obs.Telemetry.sample ();
  let tseq = m.Mbuf.tseq in
  let t0 = if tseq <> 0 then Cost.get () else 0 in
  if tseq <> 0 then
    Rp_obs.Telemetry.record ~ts:t0 ~kind:Rp_obs.Telemetry.Pkt_start ~gate:(-1)
      ~pkt:tseq ~arg:m.Mbuf.len;
  Ip_core.slo_open m;
  Cost.charge Cost.base_forward;
  let faults = ref [] in
  let outcome =
    if m.Mbuf.ttl <= 1 then Dropped "ttl expired"
    else begin
      m.Mbuf.ttl <- m.Mbuf.ttl - 1;
      try
        run_gates t ~now m Ip_core.inline_gates_pre faults;
        let out = route t ~now m faults in
        run_gates t ~now m Ip_core.inline_gates_post faults;
        Forwarded out
      with
      | Drop_exn why -> Dropped why
      | Consumed_exn -> Absorbed
    end
  in
  (match outcome with
   | Forwarded _ -> Rp_obs.Counter.inc t.m_forwarded
   | Absorbed -> Rp_obs.Counter.inc t.m_absorbed
   | Dropped why ->
     Rp_obs.Counter.inc t.m_dropped;
     Rp_obs.Drop_reason.count_why why);
  if tseq <> 0 then begin
    let ts = Cost.get () in
    (match outcome with
     | Dropped _ ->
       Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Drop ~gate:(-1)
         ~pkt:tseq ~arg:0
     | Forwarded _ | Absorbed -> ());
    Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Pkt_end ~gate:(-1)
      ~pkt:tseq ~arg:0;
    Rp_obs.Histogram.observe Rp_obs.Telemetry.packet_hist (ts - t0)
  end;
  Ip_core.slo_close ~shard:t.index m
    (match outcome with
     | Forwarded i -> Ip_core.Enqueued i
     | Absorbed -> Ip_core.Absorbed
     | Dropped why -> Ip_core.Dropped why);
  Rp_classifier.Flow_table.account
    (Rp_classifier.Aiu.flow_table t.aiu)
    m
    ~verdict:
      (match outcome with
       | Forwarded _ -> `Fwd
       | Dropped _ -> `Drop
       | Absorbed -> `Absorb);
  { m; outcome; faults = List.rev !faults }

(* --- batched dispatch ----------------------------------------------- *)

(* One gate over every still-live packet (gate-major): the per-gate
   meter updates are accumulated locally and flushed once per batch —
   on the worker domains those counters are atomics, so this also
   turns per-packet atomic RMWs into one per gate per batch.  The
   per-packet inner work is exactly [invoke_gate]'s. *)
let run_gate_batch t ~gate batch outcomes pkt_faults n =
  let live = ref 0 and cycles_acc = ref 0 and drops = ref 0 in
  for i = 0 to n - 1 do
    match outcomes.(i) with
    | Some _ -> ()
    | None ->
      incr live;
      let m = batch.(i) in
      let now = m.Mbuf.birth_ns in
      let tseq = m.Mbuf.tseq in
      if tseq <> 0 then
        Rp_obs.Telemetry.record ~ts:(Cost.get ())
          ~kind:Rp_obs.Telemetry.Gate_enter ~gate:(Gate.to_int gate) ~pkt:tseq
          ~arg:0;
      let action, gate_cycles =
        Cost.measure (fun () ->
            match classify_at t ~now ~gate m with
            | None -> Plugin.Continue
            | Some (inst, record) -> (
                let binding =
                  Rp_classifier.Flow_table.binding record
                    ~gate:(Gate.to_int gate)
                in
                let outcome, handler_cycles =
                  Cost.measure (fun () ->
                      try
                        Ok
                          (inst.Plugin.handle { Plugin.now_ns = now; binding }
                             m)
                      with e -> Error (Fault.Exn (Printexc.to_string e)))
                in
                match outcome with
                | Error reason ->
                  contain t ~gate ~tseq inst reason pkt_faults.(i)
                | Ok action -> (
                    match t.budget with
                    | Some budget when handler_cycles > budget ->
                      contain t ~gate ~tseq inst (Fault.Budget handler_cycles)
                        pkt_faults.(i)
                    | _ -> action)))
      in
      cycles_acc := !cycles_acc + gate_cycles;
      Ip_core.slo_attrib m ~gate gate_cycles;
      if tseq <> 0 then begin
        Rp_obs.Telemetry.record ~ts:(Cost.get ())
          ~kind:Rp_obs.Telemetry.Gate_exit ~gate:(Gate.to_int gate) ~pkt:tseq
          ~arg:0;
        Rp_obs.Histogram.observe (Gate.span gate) gate_cycles
      end;
      (match action with
       | Plugin.Continue -> ()
       | Plugin.Consumed -> outcomes.(i) <- Some Absorbed
       | Plugin.Drop why ->
         incr drops;
         outcomes.(i) <- Some (Dropped why))
  done;
  if !live > 0 then begin
    Rp_obs.Counter.add (Gate.Meters.dispatch t.meters gate) !live;
    Rp_obs.Counter.add (Gate.Meters.cycles t.meters gate) !cycles_acc
  end;
  if !drops > 0 then Rp_obs.Counter.add (Gate.Meters.drops t.meters gate) !drops

let dispatch_batch t batch ~n ~emit =
  if n < 0 || n > Array.length batch then
    invalid_arg "Shard.dispatch_batch: n out of range";
  if n > 0 then Rp_obs.Counter.add t.m_rx n;
  let outcomes = Array.make (max n 1) None in
  let outs = Array.make (max n 1) (-1) in
  let t0s = Array.make (max n 1) 0 in
  let pkt_faults = Array.init (max n 1) (fun _ -> ref []) in
  (* Entry: sampling decision, base-forward charge, TTL. *)
  for i = 0 to n - 1 do
    let m = batch.(i) in
    if Rp_obs.Telemetry.on () && m.Mbuf.tseq = 0 then
      m.Mbuf.tseq <- Rp_obs.Telemetry.sample ();
    let tseq = m.Mbuf.tseq in
    if tseq <> 0 then begin
      let ts = Cost.get () in
      t0s.(i) <- ts;
      Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Pkt_start ~gate:(-1)
        ~pkt:tseq ~arg:m.Mbuf.len
    end;
    Ip_core.slo_open m;
    Cost.charge Cost.base_forward;
    if m.Mbuf.ttl <= 1 then outcomes.(i) <- Some (Dropped "ttl expired")
    else m.Mbuf.ttl <- m.Mbuf.ttl - 1
  done;
  List.iter
    (fun gate ->
      if gate_enabled t gate then
        run_gate_batch t ~gate batch outcomes pkt_faults n)
    Ip_core.inline_gates_pre;
  (* Routing (gate, else private table) — per packet, as in the inline
     batch path. *)
  for i = 0 to n - 1 do
    match outcomes.(i) with
    | Some _ -> ()
    | None -> (
        let m = batch.(i) in
        match route t ~now:m.Mbuf.birth_ns m pkt_faults.(i) with
        | out -> outs.(i) <- out
        | exception Drop_exn why -> outcomes.(i) <- Some (Dropped why)
        | exception Consumed_exn -> outcomes.(i) <- Some Absorbed)
  done;
  List.iter
    (fun gate ->
      if gate_enabled t gate then
        run_gate_batch t ~gate batch outcomes pkt_faults n)
    Ip_core.inline_gates_post;
  (* Outcome accounting, telemetry close, flow accounting — input
     order, one emit per packet. *)
  let fwd = ref 0 and abso = ref 0 and drop = ref 0 in
  let ft = Rp_classifier.Aiu.flow_table t.aiu in
  for i = 0 to n - 1 do
    let m = batch.(i) in
    let outcome =
      match outcomes.(i) with Some o -> o | None -> Forwarded outs.(i)
    in
    (match outcome with
     | Forwarded _ -> incr fwd
     | Absorbed -> incr abso
     | Dropped why ->
       incr drop;
       Rp_obs.Drop_reason.count_why why);
    let tseq = m.Mbuf.tseq in
    if tseq <> 0 then begin
      let ts = Cost.get () in
      (match outcome with
       | Dropped _ ->
         Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Drop ~gate:(-1)
           ~pkt:tseq ~arg:0
       | Forwarded _ | Absorbed -> ());
      Rp_obs.Telemetry.record ~ts ~kind:Rp_obs.Telemetry.Pkt_end ~gate:(-1)
        ~pkt:tseq ~arg:0;
      Rp_obs.Histogram.observe Rp_obs.Telemetry.packet_hist (ts - t0s.(i))
    end;
    Ip_core.slo_close ~shard:t.index m
      (match outcome with
       | Forwarded i -> Ip_core.Enqueued i
       | Absorbed -> Ip_core.Absorbed
       | Dropped why -> Ip_core.Dropped why);
    Rp_classifier.Flow_table.account ft m
      ~verdict:
        (match outcome with
         | Forwarded _ -> `Fwd
         | Dropped _ -> `Drop
         | Absorbed -> `Absorb);
    emit { m; outcome; faults = List.rev !(pkt_faults.(i)) }
  done;
  if !fwd > 0 then Rp_obs.Counter.add t.m_forwarded !fwd;
  if !abso > 0 then Rp_obs.Counter.add t.m_absorbed !abso;
  if !drop > 0 then Rp_obs.Counter.add t.m_dropped !drop

let flush_flows t = Rp_classifier.Aiu.flush_flows t.aiu

let expire_flows t ~now ~idle_ns =
  Rp_classifier.Aiu.expire_flows t.aiu ~now ~idle_ns

let flow_count t =
  Rp_classifier.Flow_table.length (Rp_classifier.Aiu.flow_table t.aiu)

let flow_stats t =
  Rp_classifier.Flow_table.stats (Rp_classifier.Aiu.flow_table t.aiu)

let flow_keys t =
  let keys = ref [] in
  Rp_classifier.Flow_table.iter
    (fun r -> keys := Rp_classifier.Flow_table.key r :: !keys)
    (Rp_classifier.Aiu.flow_table t.aiu);
  !keys
