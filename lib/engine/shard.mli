(** One worker shard: a domain-private slice of the data path.

    A shard owns everything its packets touch — a private AIU
    (compiled from the published {!Snapshot}), a private route table,
    a private flow cache, and its own {!Rp_core.Gate.Meters} set under
    the [engine.shard<i>.] registry prefix — so two shards never share
    mutable per-flow state.  RSS-style distribution by
    [Flow_key.hash mod shards] guarantees every packet of a flow lands
    on the same shard, keeping per-flow soft state coherent without
    locks.

    [dispatch] mirrors the single-domain {!Rp_core.Ip_core} data path
    (base-forward charge, TTL, pre gates, routing gate/table, post
    gates, fault containment) with the control-plane pieces removed:
    no fragmentation, no ICMP generation, no local punt/delivery —
    those need shared router state and stay on the control domain.
    Faults are contained locally (counted, policy applied) and
    reported in the {!result}; the control domain attributes them to
    the PCU when it drains, so workers never mutate shared state. *)

open Rp_pkt
open Rp_core

(** What the shard decided for the packet.  [Forwarded i] means the
    packet routed to interface [i]; the engine does not run interface
    queues (those live on the control domain). *)
type outcome =
  | Forwarded of int
  | Absorbed  (** a plugin consumed the packet *)
  | Dropped of string

type result = {
  m : Mbuf.t;
  outcome : outcome;
  faults : (int * string) list;
      (** (instance id, reason) per contained fault, dispatch order —
          applied to the PCU by the control domain on drain *)
}

type t

val create : index:int -> Snapshot.t -> t

val index : t -> int
val meters : t -> Gate.Meters.t

(** Snapshot generation this shard last compiled. *)
val seen_gen : t -> int

(** [sync t snap] brings the shard's private state up to [snap]'s
    generation.  When the snapshot's delta log covers every generation
    the shard missed, the mutations are replayed incrementally on the
    private AIU (selective flow invalidation only — unrelated flows
    keep their cache entries); otherwise the AIU and route table are
    recompiled from scratch, which also flushes the shard's flow
    cache.  Runs on the shard's own domain. *)
val sync : t -> Snapshot.t -> unit

(** [dispatch t ~now m] runs one packet; must only be called from the
    shard's own domain. *)
val dispatch : t -> now:int64 -> Mbuf.t -> result

(** [dispatch_batch t batch ~n ~emit] runs [batch.(0 .. n-1)] through
    the shard data path in one gate-major sweep, calling [emit] once
    per packet in input order with its {!result}.  Per-packet outcomes
    and cost-model charges are identical to [n] {!dispatch} calls
    (each packet's [birth_ns] is its [now]); the per-gate meter
    updates — atomic counters on worker domains — are batched to one
    add per gate per batch.  Must only be called from the shard's own
    domain. *)
val dispatch_batch :
  t -> Mbuf.t array -> n:int -> emit:(result -> unit) -> unit

(** Model cycles charged by this shard's dispatches so far (readable
    from any domain). *)
val cycles : t -> int

(** [add_cycles t n] accumulates into {!cycles} (worker side). *)
val add_cycles : t -> int -> unit

(** Flow keys currently cached in this shard's private flow table
    (test introspection: cross-shard ownership checks). *)
val flow_keys : t -> Flow_key.t list

(** Flush the shard's private flow cache, exporting every record to
    the {!Rp_obs.Flowlog} ring.  Only safe while the shard's worker is
    idle or stopped (the flow table is domain-private). *)
val flush_flows : t -> unit

(** Expire idle records from the shard's private flow cache (exported
    with reason ["expired"]), returning the count evicted.  Same
    idle-only contract as {!flush_flows}. *)
val expire_flows : t -> now:int64 -> idle_ns:int64 -> int

(** Live records in the shard's private flow table (idle-only, like
    {!flush_flows}). *)
val flow_count : t -> int

(** Stats snapshot of the shard's private flow table (idle-only, like
    {!flush_flows}). *)
val flow_stats : t -> Rp_classifier.Flow_table.stats
