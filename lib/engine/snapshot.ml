open Rp_core

type delta =
  | Bind of int * Rp_classifier.Filter.t * Plugin.t
  | Unbind of int * Rp_classifier.Filter.t
  | Flush
  | Refresh

type t = {
  gen : int;
  gates : Gate.t list;
  bindings : (int * Rp_classifier.Filter.t * Plugin.t) list;
  routes : Route_table.route list;
  policy : Fault.policy;
  budget : int option;
  classifier : Rp_classifier.Aiu.mode;
  deltas : (int * delta) list;
}

let capture ~gen ?(deltas = []) router =
  let aiu = Router.aiu router in
  let bindings = ref [] in
  for gate = 0 to Gate.count - 1 do
    Rp_classifier.Dag.iter
      (fun filter inst -> bindings := (gate, filter, inst) :: !bindings)
      (Rp_classifier.Aiu.filter_table aiu ~gate)
  done;
  let routes = ref [] in
  Route_table.iter (fun r -> routes := r :: !routes) router.Router.routes;
  {
    gen;
    (* via [gate_enabled] so Best_effort mode snapshots no gates *)
    gates = List.filter (Router.gate_enabled router) Gate.all;
    bindings = !bindings;
    routes = !routes;
    policy = router.Router.fault_policy;
    budget = router.Router.cycle_budget;
    classifier = Rp_classifier.Aiu.mode aiu;
    deltas;
  }

let pp ppf t =
  Format.fprintf ppf "snapshot gen=%d gates=%d bindings=%d routes=%d deltas=%d"
    t.gen
    (List.length t.gates)
    (List.length t.bindings)
    (List.length t.routes)
    (List.length t.deltas)
