(** Immutable classifier snapshot, published to worker domains.

    Workers never read the router's live AIU or routing table — the
    DAG filter tables and BMP tries build lookup structures lazily, so
    sharing them across domains would race.  Instead the control plane
    captures the {e contents} (filter bindings per gate, routes, the
    fault policy and budget, the enabled-gate set) into a plain
    immutable value, and each shard compiles its own private AIU and
    route table from it.

    Alongside the full state the snapshot carries an ordered {e delta
    log}: the tail of control-plane mutations, each stamped with the
    generation it produced.  A shard whose compiled state is only a
    few generations behind replays just the outstanding deltas on its
    private AIU — keeping its flow cache (minus selectively
    invalidated records) — and only falls back to a full recompile
    when the log no longer reaches back to its generation (backlog
    overflow, or a publication that intentionally broke the chain).

    The engine publishes a snapshot through one [Atomic.t] pointer;
    the monotonically increasing [gen] tells a shard whether its
    compiled state is current. *)

open Rp_core

(** One control-plane mutation.  [Refresh] carries no AIU change — it
    re-publishes routes/gates/policy/budget (which shards re-read on
    every delta application anyway). *)
type delta =
  | Bind of int * Rp_classifier.Filter.t * Plugin.t
  | Unbind of int * Rp_classifier.Filter.t
  | Flush  (** whole-flow-cache flush (e.g. routing change) *)
  | Refresh

type t = {
  gen : int;
  gates : Gate.t list;  (** enabled gates, data-path order *)
  bindings : (int * Rp_classifier.Filter.t * Plugin.t) list;
      (** (gate index, filter, bound instance) — quarantined instances
          are naturally absent (their filters are torn out of the AIU) *)
  routes : Route_table.route list;
  policy : Fault.policy;
  budget : int option;
  classifier : Rp_classifier.Aiu.mode;
      (** cold-start resolution strategy the control AIU runs; shards
          apply it on every sync (delta replay or recompile) *)
  deltas : (int * delta) list;
      (** (generation, mutation), oldest first; generations are
          consecutive and the last one equals [gen].  Bounded by the
          engine's backlog limit — a shard further behind than the
          oldest entry must recompile. *)
}

(** [capture ~gen ?deltas router] reads the router's current control
    state.  Runs on the control domain; cost is proportional to the
    installed filters and routes, never charged to the packet cost
    model. *)
val capture : gen:int -> ?deltas:(int * delta) list -> Router.t -> t

val pp : Format.formatter -> t -> unit
