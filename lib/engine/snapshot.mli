(** Immutable classifier snapshot, published to worker domains.

    Workers never read the router's live AIU or routing table — the
    DAG filter tables and BMP tries build lookup structures lazily, so
    sharing them across domains would race.  Instead the control plane
    captures the {e contents} (filter bindings per gate, routes, the
    fault policy and budget, the enabled-gate set) into a plain
    immutable value, and each shard compiles its own private AIU and
    route table from it on generation change.  Rebuilding from scratch
    is also what flushes the shard's flow cache — exactly the
    semantics the single-domain AIU has on any filter-table mutation.

    The engine publishes a snapshot through one [Atomic.t] pointer;
    the monotonically increasing [gen] tells a shard whether its
    compiled state is current. *)

open Rp_core

type t = {
  gen : int;
  gates : Gate.t list;  (** enabled gates, data-path order *)
  bindings : (int * Rp_classifier.Filter.t * Plugin.t) list;
      (** (gate index, filter, bound instance) — quarantined instances
          are naturally absent (their filters are torn out of the AIU) *)
  routes : Route_table.route list;
  policy : Fault.policy;
  budget : int option;
}

(** [capture ~gen router] reads the router's current control state.
    Runs on the control domain; cost is proportional to the installed
    filters and routes, never charged to the packet cost model. *)
val capture : gen:int -> Router.t -> t

val pp : Format.formatter -> t -> unit
