type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* consumer index: next slot to pop *)
  tail : int Atomic.t;  (* producer index: next slot to fill *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Spsc.create: capacity < 1";
  let cap = pow2 capacity 2 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t =
  (* Read head first: a concurrent push can only make the result
     conservative (smaller), never negative or beyond capacity. *)
  let h = Atomic.get t.head in
  let tl = Atomic.get t.tail in
  tl - h

let is_empty t = length t = 0

let push t x =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head >= capacity t then false
  else begin
    t.buf.(tl land t.mask) <- x;
    (* The seq_cst set publishes the element write above. *)
    Atomic.set t.tail (tl + 1);
    true
  end

let pop t =
  let h = Atomic.get t.head in
  if Atomic.get t.tail - h <= 0 then None
  else begin
    let x = t.buf.(h land t.mask) in
    t.buf.(h land t.mask) <- t.dummy;
    Atomic.set t.head (h + 1);
    Some x
  end

let pop_batch t ~max dst =
  if max > Array.length dst then invalid_arg "Spsc.pop_batch: dst too small";
  let h = Atomic.get t.head in
  let avail = Atomic.get t.tail - h in
  let n = if avail < max then avail else max in
  if n <= 0 then 0
  else begin
    for i = 0 to n - 1 do
      let slot = (h + i) land t.mask in
      dst.(i) <- t.buf.(slot);
      t.buf.(slot) <- t.dummy
    done;
    Atomic.set t.head (h + n);
    n
  end
