(** Single-producer single-consumer ring buffer.

    The engine's RX rings (main domain → worker) and TX rings (worker
    → main domain) are SPSC by construction, which makes the ring the
    cheapest possible lock-free queue: one atomic index per side, no
    CAS loops, no allocation per element.  Indices grow monotonically
    and are masked into a power-of-two array, so full/empty are
    distinguished without a spare slot.

    The atomics are sequentially consistent, which under the OCaml
    memory model makes the element write in [push] happen-before the
    read in [pop] that observes the advanced tail — elements are
    published safely across domains.

    A full ring makes [push] return [false]; the producer counts the
    packet as a backpressure drop rather than blocking the data path
    (drop-tail, like a NIC RX ring). *)

type 'a t

(** [create ~capacity ~dummy] — [capacity] is rounded up to a power of
    two (minimum 2); [dummy] fills empty slots so popped elements don't
    pin old values against the GC.  @raise Invalid_argument if
    [capacity < 1]. *)
val create : capacity:int -> dummy:'a -> 'a t

val capacity : 'a t -> int

(** Number of elements currently queued.  Racy by nature (either side
    may be mid-operation); used for depth gauges and idle checks. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** Producer side.  [push t x] is [false] when the ring is full. *)
val push : 'a t -> 'a -> bool

(** Consumer side. *)
val pop : 'a t -> 'a option

(** [pop_batch t ~max dst] pops up to [max] elements into [dst.(0..)]
    and returns the count, advancing the consumer index once —
    amortizing the atomic operations over the whole batch.
    @raise Invalid_argument if [max > Array.length dst]. *)
val pop_batch : 'a t -> max:int -> 'a array -> int
