(* Domain-local meter: each engine shard accounts its own lookup
   accesses; the single-domain case keeps the plain-ref cost. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)
let enabled = Domain.DLS.new_key (fun () -> ref true)

let[@inline] cur () = Domain.DLS.get counter

let charge n = if !(Domain.DLS.get enabled) then (let c = cur () in c := !c + n)
let reset () = cur () := 0
let get () = !(cur ())

let measure f =
  let c = cur () in
  let before = !c in
  let result = f () in
  (result, !c - before)

let set_enabled b = Domain.DLS.get enabled := b
let is_enabled () = !(Domain.DLS.get enabled)

(* Dump-time view of the meter itself: zero hot-path cost, the gauge
   callback reads the dumping domain's counter only when a snapshot is
   taken (dumps run on the main/control domain). *)
let () =
  Rp_obs.Registry.gauge "lpm.access.total" (fun () -> float_of_int (get ()));
  Rp_obs.Registry.gauge "lpm.access.enabled" (fun () ->
      if is_enabled () then 1.0 else 0.0)
