let counter = ref 0
let enabled = ref true

let charge n = if !enabled then counter := !counter + n
let reset () = counter := 0
let get () = !counter

let measure f =
  let before = !counter in
  let result = f () in
  (result, !counter - before)

let set_enabled b = enabled := b
let is_enabled () = !enabled

(* Dump-time view of the meter itself: zero hot-path cost, the gauge
   callback reads the raw counter only when a snapshot is taken. *)
let () =
  Rp_obs.Registry.gauge "lpm.access.total" (fun () -> float_of_int !counter);
  Rp_obs.Registry.gauge "lpm.access.enabled" (fun () ->
      if !enabled then 1.0 else 0.0)
