(** Memory-access accounting.

    The paper evaluates its classifier in {e worst-case memory
    accesses} (Table 2).  Every lookup structure in this repository
    charges this counter once per dependent memory reference
    (node/bucket/edge dereference), so the benchmarks measure the data
    structures themselves rather than a formula.

    The counter (and the [enabled] flag) are domain-local: each engine
    shard accounts — and resets — its own meter without racing the
    others. *)

(** [charge n] adds [n] memory accesses to the running counter. *)
val charge : int -> unit

val reset : unit -> unit
val get : unit -> int

(** [measure f] runs [f ()] and returns its result together with the
    number of accesses charged during the call. *)
val measure : (unit -> 'a) -> 'a * int

(** [enabled] can be cleared to make [charge] a no-op during wall-clock
    benchmarking. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool
