type t = { name : string; mutable v : int }

let make name = { name; v = 0 }
let name t = t.name
let inc t = t.v <- t.v + 1
let add t n = t.v <- t.v + n
let get t = t.v
let reset t = t.v <- 0
