(* Striped atomic cells: a domain increments the cell indexed by its
   own id, so concurrent shards almost never contend on a cache line,
   and [get] folds the stripes.  [stripes] is a power of two so the
   domain-id fold is a mask, not a modulo. *)
let stripes = 8

type t = { name : string; cells : int Atomic.t array }

let make name = { name; cells = Array.init stripes (fun _ -> Atomic.make 0) }
let name t = t.name

let[@inline] cell t =
  t.cells.((Domain.self () :> int) land (stripes - 1))

let inc t = Atomic.incr (cell t)
let add t n = ignore (Atomic.fetch_and_add (cell t) n)

let get t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells

(* Read-and-zero each stripe atomically (exchange, not read-then-set):
   an increment racing the swap either lands before the exchange and
   is included in the returned total, or lands after and survives into
   the next epoch — it is never lost, which is what makes a concurrent
   [get]/dump see a consistent (never partially-reset) value. *)
let swap t =
  Array.fold_left (fun acc c -> acc + Atomic.exchange c 0) 0 t.cells

let reset t = ignore (swap t)
