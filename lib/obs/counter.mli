(** Monotonic event counters — the data path's always-on meter.

    A counter is a small set of striped atomic cells; a domain
    increments the cell indexed by its own id, so increments are
    lock-free, never lost under concurrent domains (the sharded
    engine's requirement), and almost never contended.  [get] folds
    the stripes, so a read taken while other domains are incrementing
    is a momentary snapshot, not a serialization point.  Values wrap
    around on native-int overflow ([max_int + 1 = min_int]); at one
    increment per nanosecond that takes ~292 years on 64-bit, so
    overflow is a documented curiosity, not an error.

    Counters are normally obtained through {!Registry.counter}, which
    names them and includes them in dumps. *)

type t

(** An unregistered counter (tests, scratch use). *)
val make : string -> t

val name : t -> string
val inc : t -> unit
val add : t -> int -> unit
val get : t -> int

(** Atomically read-and-zero every stripe ([Atomic.exchange], not a
    read followed by a store) and return the removed total.  An
    increment racing the swap is either included in the returned total
    or survives into the next epoch — never lost — so resets are safe
    against concurrent [get]s and live data-path increments. *)
val swap : t -> int

(** [reset t] is [ignore (swap t)]. *)
val reset : t -> unit
