(** Monotonic event counters — the data path's always-on meter.

    A counter is a small set of striped atomic cells; a domain
    increments the cell indexed by its own id, so increments are
    lock-free, never lost under concurrent domains (the sharded
    engine's requirement), and almost never contended.  [get] folds
    the stripes, so a read taken while other domains are incrementing
    is a momentary snapshot, not a serialization point.  Values wrap
    around on native-int overflow ([max_int + 1 = min_int]); at one
    increment per nanosecond that takes ~292 years on 64-bit, so
    overflow is a documented curiosity, not an error.

    Counters are normally obtained through {!Registry.counter}, which
    names them and includes them in dumps. *)

type t

(** An unregistered counter (tests, scratch use). *)
val make : string -> t

val name : t -> string
val inc : t -> unit
val add : t -> int -> unit
val get : t -> int

(** Reset to zero — control-path only (e.g. [pmgr stats reset]); a
    reset racing live increments may drop in-flight ones. *)
val reset : t -> unit
