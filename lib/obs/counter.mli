(** Monotonic event counters — the data path's always-on meter.

    A counter is a single mutable native int; incrementing one is two
    memory operations, cheap enough to leave on in the packet path
    (the Snabb [core.counter] discipline).  Values wrap around on
    native-int overflow ([max_int + 1 = min_int]); at one increment
    per nanosecond that takes ~292 years on 64-bit, so overflow is a
    documented curiosity, not an error.

    Counters are normally obtained through {!Registry.counter}, which
    names them and includes them in dumps. *)

type t

(** An unregistered counter (tests, scratch use). *)
val make : string -> t

val name : t -> string
val inc : t -> unit
val add : t -> int -> unit
val get : t -> int

(** Reset to zero — control-path only (e.g. [pmgr stats reset]). *)
val reset : t -> unit
