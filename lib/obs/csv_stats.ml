(* Periodic CSV reporter, after snabb's csv_stats program: a fixed
   column set declared up front, one row per reporting interval,
   flushed eagerly so a partial run still leaves a usable series. *)

type t = {
  out : out_channel;
  owned : bool;  (* close the channel on [close] *)
  ncols : int;
  mutable rows : int;
  mutable closed : bool;
}

let quote field =
  if
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      field
  then begin
    let b = Buffer.create (String.length field + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      field;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else field

let write_line t fields =
  output_string t.out (String.concat "," (List.map quote fields));
  output_char t.out '\n';
  flush t.out

let create ?(owned = false) ~out ~columns () =
  if columns = [] then invalid_arg "Csv_stats.create: no columns";
  let t =
    { out; owned; ncols = List.length columns; rows = 0; closed = false }
  in
  write_line t columns;
  t

let to_file ~path ~columns =
  create ~owned:true ~out:(open_out path) ~columns ()

let row t fields =
  if t.closed then invalid_arg "Csv_stats.row: reporter closed";
  if List.length fields <> t.ncols then
    invalid_arg
      (Printf.sprintf "Csv_stats.row: %d fields for %d columns"
         (List.length fields) t.ncols);
  write_line t fields;
  t.rows <- t.rows + 1

let rows t = t.rows

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush t.out;
    if t.owned then close_out t.out
  end

let f3 x = Printf.sprintf "%.3f" x
let f6 x = Printf.sprintf "%.6f" x
let i = string_of_int
