(** Periodic CSV reporter (snabb's [csv_stats] is the model): declare
    the column set once, then emit one row per reporting interval.
    Rows are flushed eagerly, so an interrupted run still leaves a
    usable time series on disk. *)

type t

(** [create ~out ~columns ()] writes the header line immediately.
    [owned] (default false): close [out] on {!close}. *)
val create : ?owned:bool -> out:out_channel -> columns:string list -> unit -> t

(** [to_file ~path ~columns] — create + own [path]. *)
val to_file : path:string -> columns:string list -> t

(** [row t fields] appends one row.  Fields containing commas, quotes
    or newlines are quoted.
    @raise Invalid_argument on arity mismatch or after {!close}. *)
val row : t -> string list -> unit

(** Rows emitted so far (header excluded). *)
val rows : t -> int

val close : t -> unit

(** Formatting helpers: [f3]/[f6] print with 3/6 decimals, [i] an
    int. *)

val f3 : float -> string
val f6 : float -> string
val i : int -> string
