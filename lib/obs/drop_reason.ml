(* The unified drop-reason taxonomy.  Every way the router loses a
   packet — data-path verdicts, ring overflow, pool exhaustion,
   engine backpressure — funnels through [count], which bumps both
   the per-reason counter and [drops.total], so the conservation
   invariant (Σ per-reason == total) holds by construction and the
   tests only have to prove the *wiring*: that each drop site counts
   exactly once, under exactly one reason. *)

type t =
  | Ttl_expired
  | No_route
  | Fault  (** contained plugin fault under the drop policy *)
  | Queue_overflow  (** output queue / qdisc rejected the packet *)
  | Frag_loss  (** partial fragment loss at egress *)
  | Needs_frag  (** fragmentation needed but forbidden (DF / IPv6) *)
  | Conntrack  (** out-of-state drop by connection tracking *)
  | Policy  (** a plugin's deliberate deny (firewall, ipsec, ...) *)
  | Link_overflow  (** full inter-stage {!Link} ring *)
  | Pool_exhausted  (** packet {!Pool} had no free descriptor *)
  | Backpressure  (** full engine rx ring at submit time *)

let all =
  [ Ttl_expired; No_route; Fault; Queue_overflow; Frag_loss; Needs_frag;
    Conntrack; Policy; Link_overflow; Pool_exhausted; Backpressure ]

let name = function
  | Ttl_expired -> "ttl_expired"
  | No_route -> "no_route"
  | Fault -> "fault"
  | Queue_overflow -> "queue_overflow"
  | Frag_loss -> "frag_loss"
  | Needs_frag -> "needs_frag"
  | Conntrack -> "conntrack"
  | Policy -> "policy"
  | Link_overflow -> "link_overflow"
  | Pool_exhausted -> "pool_exhausted"
  | Backpressure -> "backpressure"

(* The reasons that arrive as data-path *verdicts*: their counters sum
   to exactly the engines' dropped-verdict counters
   (ip_core.dropped + Σ engine.shard<i>.dropped). *)
let verdict_reasons =
  [ Ttl_expired; No_route; Fault; Queue_overflow; Frag_loss; Needs_frag;
    Conntrack; Policy ]

(* Eager creation: a dump always shows the whole taxonomy, zeros
   included (registry convention). *)
let m_total = Registry.counter "drops.total"

let counters =
  List.map (fun r -> (r, Registry.counter ("drops.by_reason." ^ name r))) all

let counter r = List.assq r counters

let count r =
  Counter.inc (counter r);
  Counter.inc m_total

let add r n =
  if n > 0 then begin
    Counter.add (counter r) n;
    Counter.add m_total n
  end

let get r = Counter.get (counter r)
let total () = Counter.get m_total

let starts_with ~prefix s =
  let np = String.length prefix in
  String.length s >= np && String.sub s 0 np = prefix

(* Classify a [Dropped why] verdict string.  The exact strings are the
   contract between the drop sites and this table; anything a plugin
   invents (firewall deny, token bucket, ipsec, null route, unknown
   option ...) is a deliberate [Policy] deny. *)
let of_why why =
  match why with
  | "ttl expired" -> Ttl_expired
  | "no route to destination" -> No_route
  | "plugin fault" -> Fault
  | "output queue" -> Queue_overflow
  | "needs fragmentation" -> Needs_frag
  | _ when starts_with ~prefix:"partial fragment loss" why -> Frag_loss
  | _ when starts_with ~prefix:"conntrack" why -> Conntrack
  | _ -> Policy

let count_why why = count (of_why why)

let table () = List.map (fun r -> (r, get r)) all

let to_string () =
  let lines =
    List.filter_map
      (fun (r, n) ->
        if n = 0 then None else Some (Printf.sprintf "  %-16s %d" (name r) n))
      (table ())
  in
  let lines = if lines = [] then [ "  (no drops)" ] else lines in
  String.concat "\n"
    ((Printf.sprintf "drops: total=%d" (total ())) :: lines)
