(** The unified drop-reason taxonomy.

    Every site that loses a packet — a data-path [Dropped] verdict,
    a full inter-stage link ring, an exhausted packet pool, engine
    backpressure at submit time — counts the loss here under exactly
    one enumerated reason.  [count] bumps both the per-reason counter
    ([drops.by_reason.<name>]) and the family total ([drops.total]),
    so Σ per-reason == total holds by construction; the fault soak and
    the qcheck tests then only need to prove the wiring: each drop is
    counted once, under one reason, on both engines. *)

type t =
  | Ttl_expired
  | No_route
  | Fault  (** contained plugin fault under the drop policy *)
  | Queue_overflow  (** output queue / qdisc rejected the packet *)
  | Frag_loss  (** partial fragment loss at egress *)
  | Needs_frag  (** fragmentation needed but forbidden (DF / IPv6) *)
  | Conntrack  (** out-of-state drop by connection tracking *)
  | Policy  (** a plugin's deliberate deny (firewall, ipsec, ...) *)
  | Link_overflow  (** full inter-stage {!Link} ring *)
  | Pool_exhausted  (** packet {!Pool} had no free descriptor *)
  | Backpressure  (** full engine rx ring at submit time *)

val all : t list
val name : t -> string

(** The reasons produced as data-path verdicts: their counters sum to
    exactly the engines' dropped-verdict counters. *)
val verdict_reasons : t list

(** Classify a [Dropped why] verdict string.  Unrecognized strings are
    a plugin's deliberate deny and classify as [Policy]. *)
val of_why : string -> t

val count : t -> unit
val count_why : string -> unit
val add : t -> int -> unit
val get : t -> int
val total : unit -> int

(** [(reason, count)] for every reason, in [all] order. *)
val table : unit -> (t * int) list

(** Human-readable summary (nonzero reasons only). *)
val to_string : unit -> string
