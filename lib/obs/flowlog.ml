(* NetFlow-style flow-record export ring.

   Flow records are emitted by the classifier when the flow table
   evicts an entry (recycled, expired, replaced, removed, flushed) and
   buffered here until a consumer drains them to a flow log or a
   [pmgr flows top] view.  Emission happens on the data path (an
   insert can recycle), but eviction is rare relative to packets, so a
   mutex-guarded ring is cheap enough and keeps multi-domain emitters
   (sharded engine workers own private flow tables) trivially safe.

   Addresses are pre-rendered strings: obs cannot depend on lib/pkt,
   and records are export-bound anyway. *)

(* Post-rewrite tuple of a NAT'd session; absent for flows the session
   layer never translated, so the export schema is unchanged for
   them. *)
type xlate = {
  xsrc : string;
  xdst : string;
  xsport : int;
  xdport : int;
}

type record = {
  src : string;
  dst : string;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
  packets : int;
  bytes : int;
  forwarded : int;
  dropped : int;
  absorbed : int;
  created_ns : int64;
  last_ns : int64;
  bindings : (string * int) list;
  reason : string;
  translated : xlate option;
}

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let default_capacity = 4096
let buf : record option array ref = ref (Array.make default_capacity None)
let head = ref 0 (* total records ever emitted *)

let m_records = Registry.counter "telemetry.flow.records"
let m_overwritten = Registry.counter "telemetry.flow.ring_overwrites"

let emit r =
  locked (fun () ->
      let cap = Array.length !buf in
      if !head >= cap && !buf.(!head mod cap) <> None then
        Counter.inc m_overwritten;
      !buf.(!head mod cap) <- Some r;
      incr head;
      Counter.inc m_records)

let retained_unlocked () =
  let cap = Array.length !buf in
  let n = min !head cap in
  let first = !head - n in
  List.filter_map
    (fun k -> !buf.((first + k) mod cap))
    (List.init n (fun k -> k))

let peek () = locked retained_unlocked

let drain () =
  locked (fun () ->
      let out = retained_unlocked () in
      Array.fill !buf 0 (Array.length !buf) None;
      head := 0;
      out)

let clear () = ignore (drain ())

let set_capacity cap =
  if cap <= 0 then invalid_arg "Flowlog.set_capacity";
  locked (fun () ->
      buf := Array.make cap None;
      head := 0)

let capacity () = locked (fun () -> Array.length !buf)
let emitted () = Counter.get m_records
let overwritten () = Counter.get m_overwritten

let duration_ns r = Int64.max 0L (Int64.sub r.last_ns r.created_ns)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSON object per line (JSON-lines), so flow logs append and
   stream without a closing bracket. *)
let to_json_line r =
  let bindings =
    String.concat ","
      (List.map
         (fun (gate, inst) ->
           Printf.sprintf "{\"gate\":\"%s\",\"instance\":%d}"
             (json_escape gate) inst)
         r.bindings)
  in
  let translated =
    match r.translated with
    | None -> ""
    | Some x ->
      Printf.sprintf
        ",\"translated\":{\"src\":\"%s\",\"dst\":\"%s\",\"sport\":%d,\
         \"dport\":%d}"
        (json_escape x.xsrc) (json_escape x.xdst) x.xsport x.xdport
  in
  Printf.sprintf
    "{\"src\":\"%s\",\"dst\":\"%s\",\"proto\":%d,\"sport\":%d,\"dport\":%d,\
     \"iface\":%d,\"packets\":%d,\"bytes\":%d,\"forwarded\":%d,\"dropped\":%d,\
     \"absorbed\":%d,\"duration_ns\":%Ld,\"bindings\":[%s],\"reason\":\"%s\"%s}"
    (json_escape r.src) (json_escape r.dst) r.proto r.sport r.dport r.iface
    r.packets r.bytes r.forwarded r.dropped r.absorbed (duration_ns r)
    bindings (json_escape r.reason) translated

let key_string r =
  Printf.sprintf "%s:%d -> %s:%d proto=%d if=%d" r.src r.sport r.dst r.dport
    r.proto r.iface
