(** NetFlow-style flow-record export ring.

    The classifier emits a {!record} when the flow table evicts an
    entry (recycled / expired / replaced / removed / flushed); records
    buffer here — a mutex-guarded overwrite-oldest ring, safe for
    multi-domain emitters — until a consumer drains them to a flow log
    ([rp_router --flow-log]) or renders a [pmgr flows top] view.
    Addresses arrive pre-rendered as strings so obs stays free of
    lib/pkt dependencies. *)

(** Post-rewrite (NAT'd) tuple of a translated session.  [None] —
    the default for every existing emitter — leaves the export schema
    exactly as before; [Some] adds one ["translated"] object to the
    JSON line. *)
type xlate = {
  xsrc : string;
  xdst : string;
  xsport : int;
  xdport : int;
}

type record = {
  src : string;
  dst : string;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
  packets : int;
  bytes : int;
  forwarded : int;  (** packets that left on an egress interface *)
  dropped : int;
  absorbed : int;  (** delivered locally or absorbed by a plugin *)
  created_ns : int64;
  last_ns : int64;
  bindings : (string * int) list;  (** (gate name, plugin instance id) *)
  reason : string;  (** why the entry left the table *)
  translated : xlate option;  (** post-NAT tuple, when one exists *)
}

(** Append a record, overwriting the oldest when full (counted in
    [telemetry.flow.ring_overwrites]). *)
val emit : record -> unit

(** Retained records oldest-first, leaving them buffered. *)
val peek : unit -> record list

(** Retained records oldest-first, emptying the ring. *)
val drain : unit -> record list

val clear : unit -> unit

(** Replace the ring (control path only); raises on [cap <= 0]. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** Total records ever emitted ([telemetry.flow.records]). *)
val emitted : unit -> int

(** Records lost to ring overwrite. *)
val overwritten : unit -> int

val duration_ns : record -> int64

(** One JSON object (single line, JSON-lines framing) per record. *)
val to_json_line : record -> string

(** ["src:sport -> dst:dport proto=p if=i"] display key. *)
val key_string : record -> string
