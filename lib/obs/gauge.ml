type t = { name : string; read : unit -> float }

let make name read = { name; read }
let constant name v = { name; read = (fun () -> v) }
let name t = t.name
let read t = t.read ()
