(** Gauges: point-in-time values sampled at dump time.

    A gauge is a callback, so the instrumented code pays nothing per
    packet — queue depths, table occupancy and the like are read only
    when somebody asks for a snapshot. *)

type t

val make : string -> (unit -> float) -> t

(** A gauge frozen at [v] — for recording one-shot results (bench
    outcomes) into the registry. *)
val constant : string -> float -> t

val name : t -> string
val read : t -> float
