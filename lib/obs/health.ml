(* The periodic health sampler.

   Subsystems register named probes (ring occupancy, pool free %,
   quarantine count, delta backlog); [sample] reads them all and
   stores last value + high-water mark, exposed as [health.<name>] /
   [health.<name>.hwm] gauges so health rides along in every metrics
   dump and the Prometheus exposition.  Gauges alone would lose the
   watermark: a ring that spiked to 97% between two scrapes still
   shows it in the hwm.

   Probes are control-path state under a mutex; registration replaces
   by name (re-created engines re-register their shard probes, as
   scheduler depth gauges already do). *)

type probe = {
  read : unit -> float;
  mutable last : float;
  mutable hwm : float;
}

let probes : (string, probe) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let m_samples = Registry.counter "health.samples"

let register name read =
  locked (fun () ->
      let p = { read; last = 0.; hwm = 0. } in
      Hashtbl.replace probes name p;
      Registry.gauge ("health." ^ name) (fun () -> p.last);
      Registry.gauge ("health." ^ name ^ ".hwm") (fun () -> p.hwm))

let unregister name =
  locked (fun () ->
      Hashtbl.remove probes name;
      Registry.remove ("health." ^ name);
      Registry.remove ("health." ^ name ^ ".hwm"))

(* A probe that raises reads as 0 rather than killing the sampler: a
   health surface that dies on the first broken subsystem is useless
   exactly when it is needed. *)
let sample () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ p ->
          let v = try p.read () with _ -> 0. in
          p.last <- v;
          if v > p.hwm then p.hwm <- v)
        probes;
      Counter.inc m_samples)

let reset_hwm () =
  locked (fun () -> Hashtbl.iter (fun _ p -> p.hwm <- p.last) probes)

let snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun n p acc -> (n, p.last, p.hwm) :: acc) probes []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b))

let samples () = Counter.get m_samples

let to_string () =
  let rows = snapshot () in
  if rows = [] then "health: no probes registered"
  else
    String.concat "\n"
      (Printf.sprintf "health: %d probe(s), %d sample(s)" (List.length rows)
         (samples ())
      :: List.map
           (fun (n, last, hwm) ->
             Printf.sprintf "  %-28s %10.2f  hwm %10.2f" n last hwm)
           rows)
