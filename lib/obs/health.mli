(** The periodic per-shard health sampler.

    Subsystems register named probes (SPSC ring occupancy, pool
    free %, quarantine count, delta backlog); [sample] — called from
    the binaries' periodic report loops — reads every probe and keeps
    last value + high-water mark, exposed as [health.<name>] and
    [health.<name>.hwm] registry gauges.  The watermark is the point:
    a ring that spiked between two scrapes still shows it.

    Registration replaces by name, so re-created engines re-register
    their shard probes cleanly.  A probe that raises samples as 0. *)

val register : string -> (unit -> float) -> unit
val unregister : string -> unit

(** Read every probe once; update last values and watermarks. *)
val sample : unit -> unit

(** Reset every watermark to the last sampled value. *)
val reset_hwm : unit -> unit

(** [(name, last, hwm)] rows sorted by name. *)
val snapshot : unit -> (string * float * float) list

(** Total [sample] calls (the [health.samples] counter). *)
val samples : unit -> int

val to_string : unit -> string
