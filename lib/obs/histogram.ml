type t = {
  name : string;
  bounds : int array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable total : int;
  mutable sum : int;
}

let default_bounds = [| 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000 |]

let make ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then invalid_arg "Histogram.make: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Histogram.make: bounds must be strictly increasing")
    bounds;
  {
    name;
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    total = 0;
    sum = 0;
  }

let name t = t.name

(* Binary search for the first bucket whose bound is >= v; values above
   the last bound land in the trailing overflow bucket. *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if v > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t v =
  t.counts.(bucket_index t v) <- t.counts.(bucket_index t v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v

let total t = t.total
let sum t = t.sum
let bounds t = Array.copy t.bounds
let counts t = Array.copy t.counts

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0
