type t = {
  name : string;
  bounds : int array;  (* strictly increasing upper bounds *)
  counts : int Atomic.t array;
      (* length = Array.length bounds + 1; last = overflow *)
  total : int Atomic.t;
  sum : int Atomic.t;
}

let default_bounds = [| 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000 |]

let make ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then invalid_arg "Histogram.make: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Histogram.make: bounds must be strictly increasing")
    bounds;
  {
    name;
    bounds = Array.copy bounds;
    counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
  }

let name t = t.name

(* Binary search for the first bucket whose bound is >= v; values above
   the last bound land in the trailing overflow bucket. *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if v > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t v =
  Atomic.incr t.counts.(bucket_index t v);
  Atomic.incr t.total;
  ignore (Atomic.fetch_and_add t.sum v)

let total t = Atomic.get t.total
let sum t = Atomic.get t.sum

(* Quantile by linear interpolation *within* the containing bucket.
   Returning a bucket's upper bound would overstate the quantile by up
   to one bucket width; instead the rank's position inside the bucket
   is mapped linearly onto the bucket's value range [lo, hi).  The
   first bucket's lower edge is 0; the overflow bucket has no upper
   edge, so ranks landing there report the last finite bound (a
   conservative lower bound on the true value). *)
let quantile t q =
  let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
  let counts = Array.map Atomic.get t.counts in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let n = Array.length t.bounds in
    let target = q *. float_of_int total in
    let rec go i acc =
      if i >= n then float_of_int t.bounds.(n - 1)
      else begin
        let c = counts.(i) in
        let acc' = acc + c in
        if c > 0 && float_of_int acc' >= target then begin
          let lo = if i = 0 then 0.0 else float_of_int t.bounds.(i - 1) in
          let hi = float_of_int t.bounds.(i) in
          let frac = (target -. float_of_int acc) /. float_of_int c in
          let frac = if frac < 0.0 then 0.0 else frac in
          lo +. ((hi -. lo) *. frac)
        end
        else go (i + 1) acc'
      end
    in
    go 0 0
  end
let bounds t = Array.copy t.bounds
let counts t = Array.map Atomic.get t.counts

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0;
  Atomic.set t.sum 0
