type t = {
  name : string;
  bounds : int array;  (* strictly increasing upper bounds *)
  counts : int Atomic.t array;
      (* length = Array.length bounds + 1; last = overflow *)
  total : int Atomic.t;
  sum : int Atomic.t;
}

let default_bounds = [| 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000 |]

let make ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then invalid_arg "Histogram.make: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Histogram.make: bounds must be strictly increasing")
    bounds;
  {
    name;
    bounds = Array.copy bounds;
    counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
  }

let name t = t.name

(* Binary search for the first bucket whose bound is >= v; values above
   the last bound land in the trailing overflow bucket. *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if v > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t v =
  Atomic.incr t.counts.(bucket_index t v);
  Atomic.incr t.total;
  ignore (Atomic.fetch_and_add t.sum v)

let total t = Atomic.get t.total
let sum t = Atomic.get t.sum
let bounds t = Array.copy t.bounds
let counts t = Array.map Atomic.get t.counts

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0;
  Atomic.set t.sum 0
