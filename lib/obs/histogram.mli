(** Fixed-bucket histograms for latency / cost distributions.

    Buckets are defined once by an array of strictly increasing
    integer upper bounds; a trailing overflow bucket catches
    everything above the last bound.  [observe] is a binary search
    over a handful of bounds plus three atomic increments — cheap
    enough for the per-packet path, and safe from concurrent domains
    (a read concurrent with observes may see total/sum/bucket
    momentarily out of step, but nothing is ever lost).  The default
    bounds suit the repository's cycle cost model (hundreds to tens
    of thousands of cycles). *)

type t

val default_bounds : int array

(** [make ?bounds name] — raises [Invalid_argument] if [bounds] is
    empty or not strictly increasing. *)
val make : ?bounds:int array -> string -> t

val name : t -> string

(** Record one value (negative values land in the first bucket). *)
val observe : t -> int -> unit

(** Number of observations. *)
val total : t -> int

(** Sum of observed values. *)
val sum : t -> int

(** [quantile t q] estimates the [q]-quantile ([q] clamped to [0,1])
    by linear interpolation within the containing bucket: the rank's
    position inside the bucket maps linearly onto the bucket's value
    range, the first bucket's lower edge being 0.  Ranks landing in
    the overflow bucket report the last finite bound (a conservative
    lower bound).  Returns 0.0 for an empty histogram. *)
val quantile : t -> float -> float

val bounds : t -> int array

(** Per-bucket counts; length is [Array.length (bounds t) + 1], the
    last entry being the overflow bucket. *)
val counts : t -> int array

val reset : t -> unit
