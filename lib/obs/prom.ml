(* Prometheus text exposition of the registry, plus the lint the CI
   gate runs over it.

   Metric names map [a.b-c] -> [rp_a_b_c]: the [rp_] prefix namespaces
   the router, and every non-alphanumeric byte becomes an underscore
   (the repo's dotted names contain nothing else).  Counters and
   gauges render as single samples; histograms render in the standard
   cumulative form — [_bucket{le="..."}] series ending in [+Inf], then
   [_sum] and [_count].  Bucket counts and [_count] come from one
   [Histogram.counts] snapshot so a scrape is internally consistent
   even while other domains observe. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    ("rp_" ^ name)

(* Prometheus floats: plain decimal, no NaN/inf (a broken gauge reads
   0, matching the registry's JSON dump). *)
let float_str v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let text ?pattern () =
  let b = Buffer.create 8192 in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some src ->
        let pname = sanitize name in
        (match src with
         | Registry.Counter c ->
           Buffer.add_string b
             (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname
                (Counter.get c))
         | Registry.Gauge g ->
           Buffer.add_string b
             (Printf.sprintf "# TYPE %s gauge\n%s %s\n" pname pname
                (float_str (Gauge.read g)))
         | Registry.Histogram h ->
           Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
           let bounds = Histogram.bounds h and counts = Histogram.counts h in
           let acc = ref 0 in
           Array.iteri
             (fun i c ->
               acc := !acc + c;
               let le =
                 if i < Array.length bounds then string_of_int bounds.(i)
                 else "+Inf"
               in
               Buffer.add_string b
                 (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname le !acc))
             counts;
           Buffer.add_string b
             (Printf.sprintf "%s_sum %d\n%s_count %d\n" pname
                (Histogram.sum h) pname !acc)))
    (Registry.names ?pattern ());
  Buffer.contents b

let write ?pattern path =
  (* Write-then-rename so a scraper never reads a half-written file:
     the report loop rewrites this every interval while the router
     runs. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (text ?pattern ());
  close_out oc;
  Sys.rename tmp path

(* --- lint ------------------------------------------------------------ *)

(* A hand-rolled validator for the subset of the exposition format we
   emit, strict enough to catch real breakage: malformed names or
   values, samples without a preceding TYPE, non-monotone cumulative
   buckets, a missing +Inf bucket, or _count disagreeing with it.
   Returns the number of sample lines, or an error naming the line. *)

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all is_name_char s

let valid_value s = s <> "" && Float.is_finite (float_of_string s)

type hist_state = {
  mutable last_cum : int;
  mutable inf_seen : bool;
  mutable inf_value : int;
}

let lint s =
  let typed : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let hists : (string, hist_state) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  (* The base metric a sample line belongs to: strip the histogram
     series suffixes when the base is a declared histogram. *)
  let base_of name =
    let strip suffix =
      let n = String.length name and ns = String.length suffix in
      if n > ns && String.sub name (n - ns) ns = suffix then
        Some (String.sub name 0 (n - ns))
      else None
    in
    let candidate =
      match strip "_bucket" with
      | Some b -> Some (b, `Bucket)
      | None -> (
          match strip "_sum" with
          | Some b -> Some (b, `Sum)
          | None -> (
              match strip "_count" with
              | Some b -> Some (b, `Count)
              | None -> None))
    in
    match candidate with
    | Some (b, kind) when Hashtbl.find_opt typed b = Some "histogram" ->
      (b, kind)
    | _ -> (name, `Plain)
  in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (valid_name name) then
            fail lineno ("invalid metric name in TYPE: " ^ name)
          else if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail lineno ("unknown metric type: " ^ kind)
          else if Hashtbl.mem typed name then
            fail lineno ("duplicate TYPE for " ^ name)
          else begin
            Hashtbl.replace typed name kind;
            if kind = "histogram" then
              Hashtbl.replace hists name
                { last_cum = -1; inf_seen = false; inf_value = 0 }
          end
        | "#" :: ("HELP" | "EOF") :: _ -> ()
        | _ -> fail lineno "malformed comment line"
      end
      else begin
        (* name[{labels}] value *)
        let name_end =
          let n = ref 0 in
          while !n < String.length line && is_name_char line.[!n] do incr n done;
          !n
        in
        let name = String.sub line 0 name_end in
        let rest = String.sub line name_end (String.length line - name_end) in
        let labels, rest =
          if rest <> "" && rest.[0] = '{' then
            match String.index_opt rest '}' with
            | Some j ->
              ( Some (String.sub rest 1 (j - 1)),
                String.sub rest (j + 1) (String.length rest - j - 1) )
            | None -> (None, rest)
          else (None, rest)
        in
        if not (valid_name name) then
          fail lineno ("invalid sample name: " ^ String.trim line)
        else if String.length rest < 2 || rest.[0] <> ' ' then
          fail lineno ("malformed sample line: " ^ line)
        else begin
          let value = String.trim rest in
          if not (try valid_value value with _ -> false) then
            fail lineno ("invalid sample value: " ^ value)
          else begin
            incr samples;
            let base, kind = base_of name in
            (match Hashtbl.find_opt typed base with
             | None -> fail lineno ("sample without TYPE: " ^ name)
             | Some _ -> ());
            match (kind, Hashtbl.find_opt hists base) with
            | `Bucket, Some h ->
              let le =
                match labels with
                | Some l when String.length l > 4 && String.sub l 0 4 = "le=\""
                  ->
                  Some (String.sub l 4 (String.length l - 5))
                | _ -> None
              in
              let v = int_of_float (float_of_string value) in
              (match le with
               | None -> fail lineno ("bucket without le label: " ^ line)
               | Some "+Inf" ->
                 h.inf_seen <- true;
                 h.inf_value <- v;
                 if v < h.last_cum then
                   fail lineno (base ^ ": +Inf bucket below previous bucket")
               | Some _ ->
                 if v < h.last_cum then
                   fail lineno (base ^ ": cumulative buckets not monotone");
                 h.last_cum <- v)
            | `Count, Some h ->
              if not h.inf_seen then
                fail lineno (base ^ ": _count before +Inf bucket")
              else if int_of_float (float_of_string value) <> h.inf_value then
                fail lineno (base ^ ": _count disagrees with +Inf bucket")
            | _ -> ()
          end
        end
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None ->
    let missing = ref None in
    Hashtbl.iter
      (fun n h -> if (not h.inf_seen) && !missing = None then missing := Some n)
      hists;
    (match !missing with
     | Some n -> Error (n ^ ": histogram missing +Inf bucket")
     | None -> Ok !samples)
