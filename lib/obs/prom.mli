(** Prometheus text exposition of the registry.

    Names map [a.b-c] to [rp_a_b_c]; counters and gauges are single
    samples under a [# TYPE] line, histograms render in the standard
    cumulative form ([_bucket{le="..."}] ending in [+Inf], then
    [_sum]/[_count]).  [rp_router --prom-out FILE] rewrites this every
    report interval (atomically, write-then-rename) and
    [--prom-sock PATH] serves it per connection. *)

(** Render the exposition for all (or [pattern]-matching) metrics. *)
val text : ?pattern:string -> unit -> string

(** [write path] atomically replaces [path] with {!text}. *)
val write : ?pattern:string -> string -> unit

(** Exposition name for a registry metric name ([rp_] prefix,
    non-alphanumerics to underscores). *)
val sanitize : string -> string

(** Validate exposition text: name/value syntax, samples under a
    declared [# TYPE], cumulative-bucket monotonicity, [+Inf]
    presence, [_count] agreement.  Returns the number of sample lines
    or an error naming the offending line.  This is what
    [prom_lint.exe] runs in CI. *)
val lint : string -> (int, string) result
