type source =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

let tbl : (string, source) Hashtbl.t = Hashtbl.create 256

(* The table itself is control-path state (registration, dumps); the
   hot path only increments already-created counters.  A lock keeps
   concurrent registration — e.g. a shard registering its meters while
   the main domain dumps — from corrupting the hashtable. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find name = locked (fun () -> Hashtbl.find_opt tbl name)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Counter c) -> c
      | Some _ -> invalid_arg ("Registry.counter: " ^ name ^ " is not a counter")
      | None ->
        let c = Counter.make name in
        Hashtbl.replace tbl name (Counter c);
        c)

let histogram ?bounds name =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Histogram h) -> h
      | Some _ ->
        invalid_arg ("Registry.histogram: " ^ name ^ " is not a histogram")
      | None ->
        let h = Histogram.make ?bounds name in
        Hashtbl.replace tbl name (Histogram h);
        h)

(* Gauges are replaced, not get-or-created: a re-created scheduler
   instance re-registers its depth gauge under the same name and the
   stale closure (and the state it captures) is dropped. *)
let gauge name read =
  locked (fun () -> Hashtbl.replace tbl name (Gauge (Gauge.make name read)))

let set name v =
  locked (fun () -> Hashtbl.replace tbl name (Gauge (Gauge.constant name v)))

let remove name = locked (fun () -> Hashtbl.remove tbl name)

let matches pattern name =
  match pattern with
  | None -> true
  | Some p ->
    let np = String.length p and nn = String.length name in
    let rec at i = i + np <= nn && (String.sub name i np = p || at (i + 1)) in
    np = 0 || at 0

let names_unlocked ?pattern () =
  Hashtbl.fold
    (fun n _ acc -> if matches pattern n then n :: acc else acc)
    tbl []
  |> List.sort String.compare

let sources_unlocked ?pattern () =
  List.filter_map (fun n -> Hashtbl.find_opt tbl n) (names_unlocked ?pattern ())

let names ?pattern () = locked (fun () -> names_unlocked ?pattern ())

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ s ->
          match s with
          | Counter c -> Counter.reset c
          | Histogram h -> Histogram.reset h
          | Gauge _ -> ())
        tbl)

(* --- rendering ------------------------------------------------------ *)

(* JSON has no NaN/inf; a broken gauge reads as 0 rather than
   invalidating the whole dump. *)
let float_str v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Dumps render while HOLDING the registry lock: [reset] takes the
   same lock, so a dump never interleaves with a reset half-way
   through the table and reports some metrics zeroed and others not.
   (Individual counter reads racing data-path increments remain
   momentary snapshots — that is fine; partially-applied *resets* were
   the bug.)  Gauge callbacks therefore must not call back into the
   registry. *)
let dump ?pattern () =
  locked (fun () ->
      let b = Buffer.create 1024 in
      List.iter
        (fun s ->
          match s with
          | Counter c -> Buffer.add_string b
              (Printf.sprintf "%s %d\n" (Counter.name c) (Counter.get c))
          | Gauge g -> Buffer.add_string b
              (Printf.sprintf "%s %s\n" (Gauge.name g)
                 (float_str (Gauge.read g)))
          | Histogram h ->
            Buffer.add_string b
              (Printf.sprintf "%s count=%d sum=%d" (Histogram.name h)
                 (Histogram.total h) (Histogram.sum h));
            let bounds = Histogram.bounds h and counts = Histogram.counts h in
            Array.iteri
              (fun i c ->
                let label =
                  if i < Array.length bounds then string_of_int bounds.(i)
                  else "+inf"
                in
                Buffer.add_string b (Printf.sprintf " le%s=%d" label c))
              counts;
            Buffer.add_char b '\n')
        (sources_unlocked ?pattern ());
      Buffer.contents b)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Integer version for downstream consumers to switch on; the
   human-readable "schema" string stays in step.  v2 added
   [schema_version] itself and histogram p50/p90/p99 quantiles; v3
   adds the p999 tail quantile to every histogram entry (for the
   latency SLO families) alongside the drops.* and health.* metric
   families. *)
let schema_version = 3

(* One metric per line, keys sorted: dumps diff cleanly and simple
   line-oriented tools (the CI bench gate) can extract values without
   a JSON parser.  Rendered under the registry lock — see [dump]. *)
let dump_json ?pattern () =
  locked (fun () ->
      let b = Buffer.create 4096 in
      Buffer.add_string b
        (Printf.sprintf
           "{\n  \"schema\": \"rp-metrics/%d\",\n  \"schema_version\": %d,\n\
           \  \"metrics\": {\n"
           schema_version schema_version);
      let srcs = sources_unlocked ?pattern () in
      let n = List.length srcs in
      List.iteri
        (fun i s ->
          let key name = Printf.sprintf "    \"%s\": " (json_escape name) in
          (match s with
           | Counter c ->
             Buffer.add_string b (key (Counter.name c));
             Buffer.add_string b (string_of_int (Counter.get c))
           | Gauge g ->
             Buffer.add_string b (key (Gauge.name g));
             Buffer.add_string b (float_str (Gauge.read g))
           | Histogram h ->
             Buffer.add_string b (key (Histogram.name h));
             Buffer.add_string b
               (Printf.sprintf
                  "{\"count\": %d, \"sum\": %d, \"p50\": %s, \"p90\": %s, \
                   \"p99\": %s, \"p999\": %s, \"buckets\": {"
                  (Histogram.total h) (Histogram.sum h)
                  (float_str (Histogram.quantile h 0.50))
                  (float_str (Histogram.quantile h 0.90))
                  (float_str (Histogram.quantile h 0.99))
                  (float_str (Histogram.quantile h 0.999)));
             let bounds = Histogram.bounds h and counts = Histogram.counts h in
             Array.iteri
               (fun j c ->
                 let label =
                   if j < Array.length bounds then string_of_int bounds.(j)
                   else "+inf"
                 in
                 if j > 0 then Buffer.add_string b ", ";
                 Buffer.add_string b (Printf.sprintf "\"%s\": %d" label c))
               counts;
             Buffer.add_string b "}}");
          Buffer.add_string b (if i < n - 1 then ",\n" else "\n"))
        srcs;
      Buffer.add_string b "  }\n}\n";
      Buffer.contents b)

let write_json ?pattern path =
  let oc = open_out path in
  output_string oc (dump_json ?pattern ());
  close_out oc
