(** The process-wide metric registry.

    Every named metric of the data path lives here: modules create
    their counters/histograms at load time (so a dump always shows the
    full schema, zeros included), schedulers register per-instance
    depth gauges at instance creation, and the three export surfaces —
    [pmgr stats show], the [--metrics-out] flags, and tests — read the
    same table.

    Names are dotted lowercase paths ([flow_table.hits],
    [gate.routing.dispatch], [sched.drr.1.backlog]); dumps are sorted
    by name, so equal registry state yields byte-equal output. *)

type source =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

(** Get-or-create: the same name always returns the same counter.
    Raises [Invalid_argument] if the name is registered as another
    kind. *)
val counter : string -> Counter.t

(** Get-or-create; [bounds] is only used on first creation. *)
val histogram : ?bounds:int array -> string -> Histogram.t

(** Register (or replace) a callback gauge.  Replacement is deliberate:
    re-created plugin instances re-register under the same name. *)
val gauge : string -> (unit -> float) -> unit

(** Record a one-shot scalar (a bench result) as a constant gauge. *)
val set : string -> float -> unit

val find : string -> source option
val remove : string -> unit

(** Registered names containing [pattern] (substring; default all),
    sorted. *)
val names : ?pattern:string -> unit -> string list

(** Reset all counters and histograms; gauges are left alone.  Runs
    under the registry lock, and counter resets swap stripes
    atomically, so a concurrent {!dump} never observes a
    partially-reset registry. *)
val reset : unit -> unit

(** The integer schema version emitted in {!dump_json} (and mirrored
    in the ["rp-metrics/<n>"] schema string).  Bump on any change a
    line-oriented consumer could notice. *)
val schema_version : int

(** Text snapshot: one ["name value"] line per metric, sorted.
    Rendered under the registry lock (serialized against {!reset});
    gauge callbacks must not call back into the registry. *)
val dump : ?pattern:string -> unit -> string

(** JSON snapshot, schema [rp-metrics/3]: a ["schema_version"] field,
    then sorted keys one metric per line (greppable by the CI bench
    gate without a JSON parser); histograms include p50/p90/p99/p999
    from {!Histogram.quantile}.  Rendered under the registry lock. *)
val dump_json : ?pattern:string -> unit -> string

(** [write_json path] writes {!dump_json} to [path]. *)
val write_json : ?pattern:string -> string -> unit
