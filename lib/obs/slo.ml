(* End-to-end latency SLOs on the deterministic cost-model clock.

   The data path stamps each packet at ingress with its domain's Cost
   clock and calls [observe] at verdict time with the cycle delta, so
   latency is *model* latency: reproducible across runs, and — because
   the clock is only read, never charged — invisible to Table-3.

   Histograms are per shard and split by verdict class, plus one
   always-on aggregate that feeds the CSV p50/p99 columns.  When a
   threshold is configured ([set_threshold]), packets that breach it
   (or overflow the top latency bucket) capture an exemplar — flow
   key, per-gate cycle attribution, telemetry trace ref — into
   per-domain lock-free overwrite-oldest rings, the same single-writer
   idiom as Telemetry: plain stores plus one Atomic head bump. *)

type cls = Fwd | Absorb | Drop

let cls_name = function Fwd -> "fwd" | Absorb -> "absorb" | Drop -> "drop"
let cls_index = function Fwd -> 0 | Absorb -> 1 | Drop -> 2
let classes = [| Fwd; Absorb; Drop |]

(* Same bounds as telemetry.packet.cycles, so the two latency views
   (sampled trace packets vs every stamped packet) are comparable
   bucket for bucket. *)
let latency_bounds =
  [| 2_000; 4_000; 6_000; 8_000; 12_000; 16_000; 24_000; 48_000; 96_000 |]

let top_bound = latency_bounds.(Array.length latency_bounds - 1)

let aggregate = Registry.histogram ~bounds:latency_bounds "slo.latency.cycles"
let m_breaches = Registry.counter "slo.breaches"

let stamping = Atomic.make true
let threshold = Atomic.make 0

let on () = Atomic.get stamping
let set_stamping v = Atomic.set stamping v
let get_threshold () = Atomic.get threshold
let set_threshold n = Atomic.set threshold (max 0 n)

(* Exemplar capture (and the per-gate attribution it needs) only runs
   once an SLO is actually configured; pure stamping stays a two-int
   affair per packet. *)
let armed () = Atomic.get stamping && Atomic.get threshold > 0

let is_breach cycles =
  cycles > top_bound || (Atomic.get threshold > 0 && cycles >= Atomic.get threshold)

(* --- per-shard histogram families ----------------------------------- *)

let max_shards = 64

(* A plain array of families: creation races are benign because
   Registry.histogram is get-or-create under the registry lock, so two
   domains racing on the same shard index end up storing the same
   histograms. *)
let families : Histogram.t array option array = Array.make max_shards None

let family shard =
  let s =
    if shard < 0 then 0 else if shard >= max_shards then max_shards - 1
    else shard
  in
  match families.(s) with
  | Some f -> f
  | None ->
    let f =
      Array.map
        (fun c ->
          Registry.histogram ~bounds:latency_bounds
            (Printf.sprintf "slo.shard%d.%s.cycles" s (cls_name c)))
        classes
    in
    families.(s) <- Some f;
    f

let observe ~shard cls cycles =
  Histogram.observe aggregate cycles;
  Histogram.observe (family shard).(cls_index cls) cycles

(* Created families with observations, for pmgr's tables: newest
   verdict classes of each shard in [classes] order. *)
let shard_table () =
  let rows = ref [] in
  for s = max_shards - 1 downto 0 do
    match families.(s) with
    | None -> ()
    | Some f ->
      Array.iteri
        (fun i h ->
          if Histogram.total h > 0 then
            rows := (s, classes.(i), h) :: !rows)
        f
  done;
  List.rev !rows

(* --- exemplar rings -------------------------------------------------- *)

type exemplar = {
  seq : int;  (* global capture order, 1-based *)
  shard : int;
  cls : cls;
  cycles : int;
  slo : int;  (* configured threshold at capture time *)
  key : string;  (* pre-rendered flow key; obs stays free of lib/pkt *)
  gates : (string * int) list;  (* per-gate cycle attribution, nonzero *)
  trace_pkt : int;  (* telemetry packet id, 0 when the packet was unsampled *)
}

let ring_slots = 16  (* power of two; domain id folds with a mask *)
let ring_capacity = 32

type ring = { data : exemplar option array; head : int Atomic.t }

let rings =
  Array.init ring_slots (fun _ ->
      { data = Array.make ring_capacity None; head = Atomic.make 0 })

let next_seq = Atomic.make 1

let capture ~shard ~cls ~cycles ~key ~gates ~trace_pkt =
  let r = rings.((Domain.self () :> int) land (ring_slots - 1)) in
  let e =
    { seq = Atomic.fetch_and_add next_seq 1; shard; cls; cycles;
      slo = Atomic.get threshold; key; gates; trace_pkt }
  in
  let head = Atomic.get r.head in
  r.data.(head mod ring_capacity) <- Some e;
  Counter.inc m_breaches;
  Atomic.set r.head (head + 1)

let breaches () = Counter.get m_breaches

(* Newest first across all rings.  Like telemetry dumps, reading while
   workers are actively capturing may interleave with overwrites; the
   sanctioned pattern is to read at a quiescent point. *)
let exemplars ?(limit = max_int) () =
  let all =
    Array.fold_left
      (fun acc r ->
        let head = Atomic.get r.head in
        let n = min head ring_capacity in
        let rec take k acc =
          if k >= n then acc
          else
            match r.data.((head - 1 - k) mod ring_capacity) with
            | Some e -> take (k + 1) (e :: acc)
            | None -> take (k + 1) acc
        in
        take 0 acc)
      [] rings
  in
  let sorted = List.sort (fun a b -> compare b.seq a.seq) all in
  List.filteri (fun i _ -> i < limit) sorted

let clear_exemplars () =
  Array.iter
    (fun r ->
      Atomic.set r.head 0;
      Array.fill r.data 0 ring_capacity None)
    rings

let exemplar_to_string e =
  let gates =
    if e.gates = [] then "(no gate attribution)"
    else
      String.concat " "
        (List.map (fun (g, c) -> Printf.sprintf "%s=%d" g c) e.gates)
  in
  let trace =
    if e.trace_pkt = 0 then "untraced"
    else Printf.sprintf "trace pkt %d" e.trace_pkt
  in
  Printf.sprintf "#%d shard%d %s %d cycles (slo %d) %s [%s] %s" e.seq e.shard
    (cls_name e.cls) e.cycles e.slo e.key gates trace

let status () =
  Printf.sprintf
    "slo: stamping %s, threshold %s, %d breach(es) captured, %d exemplar(s) \
     retained"
    (if on () then "on" else "off")
    (let t = get_threshold () in
     if t = 0 then "unset" else Printf.sprintf "%d cycles" t)
    (breaches ())
    (List.length (exemplars ()))
