(** End-to-end latency SLOs on the deterministic cost-model clock.

    The data path stamps each packet at ingress with its domain's
    [Cost] clock and reports the ingress→verdict cycle delta here, so
    latency is {e model} latency — reproducible run to run, and
    invisible to Table-3 because the clock is only read, never
    charged.  Observations land in per-shard histograms split by
    verdict class ([slo.shard<i>.<cls>.cycles]) plus one aggregate
    ([slo.latency.cycles]) that feeds the CSV p50/p99 columns.

    Configuring a threshold arms exemplar capture: packets breaching
    the SLO (or overflowing the top latency bucket) record their flow
    key, per-gate cycle attribution, and telemetry trace ref into
    bounded per-domain lock-free rings, read by [pmgr slo exemplars].
    Flow keys arrive pre-rendered as strings so obs stays free of
    lib/pkt dependencies. *)

type cls = Fwd | Absorb | Drop

val cls_name : cls -> string

(** Histogram bucket upper bounds, shared with
    [telemetry.packet.cycles] so the two latency views compare bucket
    for bucket. *)
val latency_bounds : int array

(** Whether ingress stamping (and latency observation) is enabled.
    Default on. *)
val on : unit -> bool

val set_stamping : bool -> unit

(** The configured SLO threshold in model cycles; 0 = unset. *)
val get_threshold : unit -> int

val set_threshold : int -> unit

(** Exemplar capture is armed: stamping on and a threshold set.  Only
    then does the data path collect per-gate attribution. *)
val armed : unit -> bool

(** [is_breach cycles] — lands in the overflow latency bucket, or
    meets a configured threshold. *)
val is_breach : int -> bool

(** Record one ingress→verdict latency. *)
val observe : shard:int -> cls -> int -> unit

(** Shards with observations, as [(shard, class, histogram)] rows. *)
val shard_table : unit -> (int * cls * Histogram.t) list

type exemplar = {
  seq : int;  (** global capture order, 1-based *)
  shard : int;
  cls : cls;
  cycles : int;
  slo : int;  (** configured threshold at capture time *)
  key : string;  (** pre-rendered flow key *)
  gates : (string * int) list;  (** per-gate cycle attribution *)
  trace_pkt : int;  (** telemetry packet id, 0 when unsampled *)
}

(** Capture one breach exemplar into the calling domain's ring. *)
val capture :
  shard:int ->
  cls:cls ->
  cycles:int ->
  key:string ->
  gates:(string * int) list ->
  trace_pkt:int ->
  unit

(** Total breaches captured (the [slo.breaches] counter). *)
val breaches : unit -> int

(** Retained exemplars, newest first. *)
val exemplars : ?limit:int -> unit -> exemplar list

val clear_exemplars : unit -> unit
val exemplar_to_string : exemplar -> string
val status : unit -> string
