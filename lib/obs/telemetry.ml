(* Per-domain binary event rings behind a 1-in-N sampling gate.

   Each domain slot owns one ring: the hot path writes only to the
   ring indexed by its own domain id (masked, like Counter stripes),
   so recording is single-writer per ring and needs no lock — just
   plain int-array stores plus one Atomic head bump.  Rings are fixed
   capacity and overwrite oldest; a dump decodes whatever survived.

   Events are packed [stride] ints: cycle timestamp, kind, gate id,
   packet id, argument.  Timestamps come from the caller (the cycle
   cost model lives in lib/core; obs stays dependency-free), and the
   Chrome export converts model cycles to trace microseconds with a
   caller-supplied clock rate.

   Dumps read rings written by other domains.  Writers publish each
   event with an [Atomic.set] on the ring head (a release store), so a
   dump that reads the head first sees every slot the head covers;
   dumps taken while workers are actively tracing may still interleave
   with overwrites — the sanctioned pattern is to dump at a quiescent
   point (inline mode, or after the sharded engine drained/stopped),
   which is what pmgr and the binaries do. *)

type kind =
  | Pkt_start
  | Pkt_end
  | Classify
  | Gate_enter
  | Gate_exit
  | Drop
  | Fault
  | Rewrite

let kind_to_int = function
  | Pkt_start -> 0
  | Pkt_end -> 1
  | Classify -> 2
  | Gate_enter -> 3
  | Gate_exit -> 4
  | Drop -> 5
  | Fault -> 6
  | Rewrite -> 7

let kind_of_int = function
  | 0 -> Pkt_start
  | 1 -> Pkt_end
  | 2 -> Classify
  | 3 -> Gate_enter
  | 4 -> Gate_exit
  | 5 -> Drop
  | 7 -> Rewrite
  | _ -> Fault

let kind_name = function
  | Pkt_start -> "pkt_start"
  | Pkt_end -> "pkt_end"
  | Classify -> "classify"
  | Gate_enter -> "gate_enter"
  | Gate_exit -> "gate_exit"
  | Drop -> "drop"
  | Fault -> "fault"
  | Rewrite -> "rewrite"

let stride = 5

(* Power of two so the domain-id fold is a mask (mirrors Counter). *)
let slots = 16

type ring = {
  data : int array;
  head : int Atomic.t;  (* total events ever written to this ring *)
  mutable countdown : int;  (* sampling countdown, owner-domain only *)
}

let default_capacity = 4096

let make_ring cap =
  { data = Array.make (cap * stride) 0; head = Atomic.make 0; countdown = 0 }

let rings = ref (Array.init slots (fun _ -> make_ring default_capacity))
let capacity = ref default_capacity

(* 0 = tracing off; N = record every Nth sampled packet. *)
let sampling = Atomic.make 0

(* Globally unique positive packet ids, so spans from different
   domains never collide in the dump. *)
let next_pkt = Atomic.make 1

let events_hist_bounds =
  [| 2_000; 4_000; 6_000; 8_000; 12_000; 16_000; 24_000; 48_000; 96_000 |]

(* End-to-end packet latency in model cycles, observed at Pkt_end for
   sampled packets.  Registered so it rides along in stats dumps. *)
let packet_hist =
  Registry.histogram ~bounds:events_hist_bounds "telemetry.packet.cycles"

let m_sampled = Registry.counter "telemetry.sampled_packets"
let m_events = Registry.counter "telemetry.events"

let on () = Atomic.get sampling > 0
let sample_every () = Atomic.get sampling

let clear () =
  Array.iter
    (fun r ->
      Atomic.set r.head 0;
      r.countdown <- 0)
    !rings

let enable ~every =
  if every <= 0 then invalid_arg "Telemetry.enable: every must be positive";
  clear ();
  Atomic.set sampling every

let disable () = Atomic.set sampling 0

let set_capacity cap =
  if cap <= 0 then invalid_arg "Telemetry.set_capacity";
  capacity := cap;
  rings := Array.init slots (fun _ -> make_ring cap)

let ring_capacity () = !capacity

let[@inline] my_ring () = !rings.((Domain.self () :> int) land (slots - 1))

(* Sampling decision for one packet: returns 0 (not sampled, or
   tracing off) or a fresh packet id.  The countdown is ring-local, so
   each domain samples every Nth of *its own* packets without sharing
   a cache line. *)
let sample () =
  let every = Atomic.get sampling in
  if every = 0 then 0
  else begin
    let r = my_ring () in
    if r.countdown > 1 then begin
      r.countdown <- r.countdown - 1;
      0
    end
    else begin
      r.countdown <- every;
      Counter.inc m_sampled;
      Atomic.fetch_and_add next_pkt 1
    end
  end

let record ~ts ~kind ~gate ~pkt ~arg =
  let r = my_ring () in
  let cap = Array.length r.data / stride in
  let head = Atomic.get r.head in
  let i = head mod cap * stride in
  r.data.(i) <- ts;
  r.data.(i + 1) <- kind_to_int kind;
  r.data.(i + 2) <- gate;
  r.data.(i + 3) <- pkt;
  r.data.(i + 4) <- arg;
  Counter.inc m_events;
  Atomic.set r.head (head + 1)

type event = {
  ring : int;
  ts : int;
  kind : kind;
  gate : int;
  pkt : int;
  arg : int;
}

(* Decode one ring oldest-first: of [head] events ever written only
   the last [cap] survive. *)
let ring_events idx =
  let r = !rings.(idx) in
  let cap = Array.length r.data / stride in
  let head = Atomic.get r.head in
  let first = if head > cap then head - cap else 0 in
  List.init (head - first) (fun k ->
      let i = (first + k) mod cap * stride in
      {
        ring = idx;
        ts = r.data.(i);
        kind = kind_of_int r.data.(i + 1);
        gate = r.data.(i + 2);
        pkt = r.data.(i + 3);
        arg = r.data.(i + 4);
      })

let events () = List.concat (List.init slots ring_events)

let recorded () =
  Array.fold_left (fun acc r -> acc + Atomic.get r.head) 0 !rings

let overwritten () =
  Array.fold_left
    (fun acc r ->
      let cap = Array.length r.data / stride in
      let h = Atomic.get r.head in
      acc + if h > cap then h - cap else 0)
    0 !rings

(* --- Chrome trace-event export ------------------------------------- *)

(* One "X" (complete) event per matched enter/exit pair, one "i"
   (instant) event per classify/drop/fault; pid 0, tid = ring index,
   ts/dur in trace microseconds converted from model cycles at [mhz].
   Loadable in about:tracing and Perfetto. *)
let to_chrome_json ?(gate_name = string_of_int) ?(mhz = 233.0) () =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let us ts = float_of_int ts /. mhz in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b s
  in
  let complete ~name ~cat ~tid ~ts ~dur ~args =
    emit
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
          \"pid\":0,\"tid\":%d,\"args\":{%s}}"
         name cat (us ts) (us (dur - ts)) tid args)
  in
  let instant ~name ~cat ~tid ~ts ~args =
    emit
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\
          \"pid\":0,\"tid\":%d,\"args\":{%s}}"
         name cat (us ts) tid args)
  in
  for idx = 0 to slots - 1 do
    (* Pending opens, keyed so nested packets (ICMP generated inside a
       packet's own processing) pair correctly: packet ids are unique,
       and a (pkt, gate) pair is open at most once at a time. *)
    let open_pkts : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let open_gates : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun e ->
        match e.kind with
        | Pkt_start -> Hashtbl.replace open_pkts e.pkt e.ts
        | Pkt_end -> (
            match Hashtbl.find_opt open_pkts e.pkt with
            | Some t0 ->
              Hashtbl.remove open_pkts e.pkt;
              complete ~name:"packet" ~cat:"packet" ~tid:idx ~ts:t0
                ~dur:e.ts
                ~args:(Printf.sprintf "\"pkt\":%d" e.pkt)
            | None -> ())
        | Gate_enter -> Hashtbl.replace open_gates (e.pkt, e.gate) e.ts
        | Gate_exit -> (
            match Hashtbl.find_opt open_gates (e.pkt, e.gate) with
            | Some t0 ->
              Hashtbl.remove open_gates (e.pkt, e.gate);
              complete
                ~name:("gate." ^ gate_name e.gate)
                ~cat:"gate" ~tid:idx ~ts:t0 ~dur:e.ts
                ~args:
                  (Printf.sprintf "\"pkt\":%d,\"accesses\":%d" e.pkt e.arg)
            | None -> ())
        | Classify ->
          instant ~name:"classify" ~cat:"classify" ~tid:idx ~ts:e.ts
            ~args:(Printf.sprintf "\"pkt\":%d,\"accesses\":%d" e.pkt e.arg)
        | Drop ->
          instant ~name:"drop" ~cat:"verdict" ~tid:idx ~ts:e.ts
            ~args:(Printf.sprintf "\"pkt\":%d" e.pkt)
        | Fault ->
          instant
            ~name:("fault." ^ gate_name e.gate)
            ~cat:"fault" ~tid:idx ~ts:e.ts
            ~args:(Printf.sprintf "\"pkt\":%d,\"instance\":%d" e.pkt e.arg)
        | Rewrite ->
          instant ~name:"rewrite" ~cat:"session" ~tid:idx ~ts:e.ts
            ~args:(Printf.sprintf "\"pkt\":%d,\"session\":%d" e.pkt e.arg))
      (ring_events idx)
  done;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome_json ?gate_name ?mhz path =
  let oc = open_out path in
  output_string oc (to_chrome_json ?gate_name ?mhz ());
  close_out oc

let status () =
  let every = Atomic.get sampling in
  let state =
    if every = 0 then "off" else Printf.sprintf "on, sampling 1-in-%d" every
  in
  Printf.sprintf
    "trace: %s (capacity %d x %d rings, %d event(s) recorded, %d overwritten)"
    state !capacity slots (recorded ()) (overwritten ())
