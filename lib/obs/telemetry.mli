(** Hot-path event tracing: per-domain binary event rings behind a
    1-in-N sampling gate, exported as Chrome trace-event JSON.

    Each domain slot owns a fixed-capacity overwrite-oldest ring of
    packed integer events (cycle timestamp, kind, gate, packet id,
    argument).  Recording is single-writer per ring — plain array
    stores plus one atomic head publish — so sampled tracing costs a
    few stores per event and unsampled packets pay one atomic load
    ({!sample}) per packet.  Timestamps are caller-supplied model
    cycles; obs knows nothing about the cost model.

    Tracing does not charge the cycle cost model, so Table-3 style
    modeled results are identical with tracing on or off; the CI
    overhead gate pins that property.

    Control-path operations ({!enable}, {!set_capacity}, dumps) assume
    a quiescent data path (inline mode, or a drained/stopped sharded
    engine) — the pmgr and binary call sites guarantee that. *)

type kind =
  | Pkt_start  (** packet entered the IP core; arg = length in bytes *)
  | Pkt_end  (** verdict reached; ts - start ts = end-to-end latency *)
  | Classify  (** AIU classification done; arg = memory accesses *)
  | Gate_enter  (** gate dispatch began *)
  | Gate_exit  (** gate dispatch ended; arg = memory accesses *)
  | Drop  (** packet dropped *)
  | Fault  (** plugin fault contained; arg = instance id *)
  | Rewrite  (** session NAT header rewrite applied; arg = session id *)

val kind_name : kind -> string

(** [enable ~every] clears the rings and turns tracing on, sampling
    one packet in [every] per domain.  Raises [Invalid_argument] if
    [every <= 0]. *)
val enable : every:int -> unit

val disable : unit -> unit

(** True when tracing is on ([sample_every () > 0]). *)
val on : unit -> bool

(** Current sampling period; 0 when off. *)
val sample_every : unit -> int

(** Drop all buffered events (rings keep their capacity). *)
val clear : unit -> unit

(** Replace all rings with fresh ones of the given per-ring event
    capacity.  Control path only. *)
val set_capacity : int -> unit

val ring_capacity : unit -> int

(** Per-packet sampling decision: 0 if tracing is off or this packet
    is not sampled, otherwise a fresh globally-unique positive packet
    id to stamp on the packet and pass to {!record}. *)
val sample : unit -> int

(** Append one event to the calling domain's ring.  [ts] is a model
    cycle timestamp; [gate] is a gate id or -1; [pkt] is the id from
    {!sample} (or 0 for packet-independent events such as faults). *)
val record : ts:int -> kind:kind -> gate:int -> pkt:int -> arg:int -> unit

(** End-to-end packet latency histogram (model cycles), observed by
    callers at [Pkt_end] for sampled packets; registered as
    [telemetry.packet.cycles]. *)
val packet_hist : Histogram.t

type event = {
  ring : int;  (** ring (domain slot) index, the trace [tid] *)
  ts : int;
  kind : kind;
  gate : int;
  pkt : int;
  arg : int;
}

(** All retained events, oldest-first per ring (decode for tests and
    custom exporters). *)
val events : unit -> event list

(** Total events ever recorded (including overwritten ones). *)
val recorded : unit -> int

(** Events lost to ring overwrite. *)
val overwritten : unit -> int

(** Render retained events as Chrome trace-event JSON (loadable in
    about:tracing / Perfetto): one "X" complete event per matched
    gate-enter/exit and packet-start/end pair, one "i" instant event
    per classify/drop/fault; tid = ring index; timestamps converted
    from model cycles to microseconds at [mhz] (default 233, the
    paper's P6 clock).  [gate_name] renders gate ids. *)
val to_chrome_json :
  ?gate_name:(int -> string) -> ?mhz:float -> unit -> string

(** {!to_chrome_json} written to a file. *)
val write_chrome_json :
  ?gate_name:(int -> string) -> ?mhz:float -> string -> unit

(** One-line human-readable state for [pmgr trace status]. *)
val status : unit -> string
