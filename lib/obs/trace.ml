type span = { seq : int; name : string; cycles : int; accesses : int }

let enabled = ref false

let dummy = { seq = 0; name = ""; cycles = 0; accesses = 0 }
let buf = ref (Array.make 1024 dummy)
let next = ref 0  (* write position *)
let stored = ref 0  (* spans currently in the ring *)
let seq = ref 0  (* spans ever recorded *)

let capacity () = Array.length !buf

let clear () =
  next := 0;
  stored := 0;
  seq := 0

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity";
  buf := Array.make n dummy;
  clear ()

let record ~name ~cycles ~accesses =
  if !enabled then begin
    let b = !buf in
    b.(!next) <- { seq = !seq; name; cycles; accesses };
    incr seq;
    next := (!next + 1) mod Array.length b;
    if !stored < Array.length b then incr stored
  end

let recorded () = !seq

let spans () =
  let b = !buf in
  let n = !stored in
  let start = (!next - n + Array.length b) mod Array.length b in
  List.init n (fun i -> b.((start + i) mod Array.length b))

let pp_span ppf s =
  Format.fprintf ppf "#%d %s cycles=%d accesses=%d" s.seq s.name s.cycles
    s.accesses
