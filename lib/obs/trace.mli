(** Optional per-packet trace spans.

    Off by default: the data path guards every [record] behind the
    {!enabled} flag, so the disabled cost is one ref read per
    candidate span.  When enabled, completed spans — a name plus the
    cycle-model and memory-access deltas the caller measured — are
    kept in a bounded ring buffer, oldest spans overwritten first.

    The recorder is deliberately passive (callers measure, the ring
    stores): the obs library stays dependency-free, and the cost /
    access meters live in [Rp_core.Cost] and [Rp_lpm.Access]. *)

type span = { seq : int; name : string; cycles : int; accesses : int }

(** Master switch; flip with [pmgr stats trace on|off]. *)
val enabled : bool ref

(** Ring capacity in spans (default 1024). *)
val capacity : unit -> int

(** Resize (and clear) the ring. *)
val set_capacity : int -> unit

(** Record a completed span; no-op unless {!enabled}. *)
val record : name:string -> cycles:int -> accesses:int -> unit

(** Spans still in the ring, oldest first. *)
val spans : unit -> span list

(** Total spans ever recorded (including overwritten ones). *)
val recorded : unit -> int

val clear : unit -> unit
val pp_span : Format.formatter -> span -> unit
