let sum buf off len =
  let s = ref 0 in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    s := !s + Char.code (Bytes.get buf !i) * 256 + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < last then s := !s + (Char.code (Bytes.get buf !i) * 256);
  !s

let add a b = a + b

let finish s =
  let s = ref s in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

(* RFC 1624: HC' = ~(~HC + ~m + m').  Replacing one 16-bit word of a
   checksummed region updates the stored checksum without re-reading
   the region; multi-word substitutions (addresses) chain calls. *)
let adjust csum ~old_word ~new_word =
  finish
    ((lnot csum land 0xFFFF)
     + (lnot old_word land 0xFFFF)
     + (new_word land 0xFFFF))

let compute buf off len = finish (sum buf off len)

let valid buf off len = compute buf off len = 0
