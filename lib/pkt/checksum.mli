(** The Internet checksum (RFC 1071): one's-complement sum of 16-bit
    words, one's-complemented. *)

(** [sum buf off len] accumulates the raw one's-complement sum (not yet
    complemented) over [len] bytes of [buf] starting at [off].  A
    trailing odd byte is padded with zero on the right. *)
val sum : Bytes.t -> int -> int -> int

(** [add a b] folds two raw sums together. *)
val add : int -> int -> int

(** [finish s] folds carries and complements, yielding the 16-bit
    checksum field value. *)
val finish : int -> int

(** [adjust csum ~old_word ~new_word] incrementally updates a stored
    checksum field for the substitution of one 16-bit word
    ([HC' = ~(~HC + ~m + m')], RFC 1624) — what a NAT rewrite uses
    instead of a full-header recompute.  Chain calls for multi-word
    substitutions (addresses).  Result agrees with a full recompute up
    to the one's-complement representation of zero ([0x0000] vs
    [0xFFFF]), which only diverges for all-zero regions. *)
val adjust : int -> old_word:int -> new_word:int -> int

(** [compute buf off len] is [finish (sum buf off len)]. *)
val compute : Bytes.t -> int -> int -> int

(** [valid buf off len] is true iff the region checksums to zero
    (i.e. contains a correct embedded checksum). *)
val valid : Bytes.t -> int -> int -> bool
