type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
}

let make ~src ~dst ~proto ~sport ~dport ~iface =
  { src; dst; proto; sport; dport; iface }

let equal a b =
  a.proto = b.proto && a.sport = b.sport && a.dport = b.dport
  && a.iface = b.iface
  && Ipaddr.equal a.src b.src
  && Ipaddr.equal a.dst b.dst

let compare a b =
  let c = Ipaddr.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Ipaddr.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Int.compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = Int.compare a.sport b.sport in
        if c <> 0 then c
        else
          let c = Int.compare a.dport b.dport in
          if c <> 0 then c else Int.compare a.iface b.iface

(* Fold-and-xor over all six tuple fields (the paper classifies on the
   6-tuple, incoming interface included): a handful of ALU operations,
   mirroring the paper's 17-cycle hash.  [iface] must participate —
   [equal] distinguishes interfaces, so flows differing only by
   interface would otherwise systematically share a bucket. *)
let hash k =
  let a = Ipaddr.hash k.src in
  let b = Ipaddr.hash k.dst in
  let h =
    a lxor (b lsl 1) lxor (k.proto lsl 16) lxor (k.sport lsl 8) lxor k.dport
    lxor (k.iface lsl 5) lxor k.iface
  in
  h land max_int

let to_string k =
  Printf.sprintf "<%s, %s, %s, %d, %d, if%d>"
    (Ipaddr.to_string k.src) (Ipaddr.to_string k.dst) (Proto.name k.proto)
    k.sport k.dport k.iface

let pp ppf k = Format.pp_print_string ppf (to_string k)
