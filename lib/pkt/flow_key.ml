type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
}

let make ~src ~dst ~proto ~sport ~dport ~iface =
  { src; dst; proto; sport; dport; iface }

let equal a b =
  a.proto = b.proto && a.sport = b.sport && a.dport = b.dport
  && a.iface = b.iface
  && Ipaddr.equal a.src b.src
  && Ipaddr.equal a.dst b.dst

let compare a b =
  let c = Ipaddr.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Ipaddr.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Int.compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = Int.compare a.sport b.sport in
        if c <> 0 then c
        else
          let c = Int.compare a.dport b.dport in
          if c <> 0 then c else Int.compare a.iface b.iface

(* Fold-and-xor over all six tuple fields (the paper classifies on the
   6-tuple, incoming interface included): a handful of ALU operations,
   mirroring the paper's 17-cycle hash.  [iface] must participate —
   [equal] distinguishes interfaces, so flows differing only by
   interface would otherwise systematically share a bucket. *)
let hash k =
  let a = Ipaddr.hash k.src in
  let b = Ipaddr.hash k.dst in
  let h =
    a lxor (b lsl 1) lxor (k.proto lsl 16) lxor (k.sport lsl 8) lxor k.dport
    lxor (k.iface lsl 5) lxor k.iface
  in
  h land max_int

type direction = Fwd | Rev

let flip = function Fwd -> Rev | Rev -> Fwd
let direction_name = function Fwd -> "fwd" | Rev -> "rev"

let reverse ?iface k =
  let iface = match iface with Some i -> i | None -> k.iface in
  { src = k.dst; dst = k.src; proto = k.proto; sport = k.dport;
    dport = k.sport; iface }

(* Direction normalization: order the two endpoints (address first,
   port as tie-break) and zero the interface — the two directions of
   one conversation arrive on different interfaces, so a
   direction-independent key cannot keep it.  Both directions of a
   flow therefore canonicalize to the same key, with the direction bit
   recording which side this particular tuple was. *)
let canonical k =
  let swapped =
    let c = Ipaddr.compare k.src k.dst in
    if c < 0 then false else if c > 0 then true else k.sport > k.dport
  in
  if swapped then (reverse ~iface:0 k, Rev) else ({ k with iface = 0 }, Fwd)

let canonical_hash k = hash (fst (canonical k))

let to_string k =
  Printf.sprintf "<%s, %s, %s, %d, %d, if%d>"
    (Ipaddr.to_string k.src) (Ipaddr.to_string k.dst) (Proto.name k.proto)
    k.sport k.dport k.iface

let pp ppf k = Format.pp_print_string ppf (to_string k)
