(** The fully specified six-tuple identifying an end-to-end flow:
    [<source address, destination address, protocol, source port,
    destination port, incoming interface>] (paper, section 3).

    Flow-table entries are keyed by this tuple with no wildcards. *)

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
}

val make :
  src:Ipaddr.t -> dst:Ipaddr.t -> proto:int -> sport:int -> dport:int ->
  iface:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Deliberately cheap hash over all six tuple fields (the paper's
    flow-table hash runs in 17 cycles on a Pentium; see section 5.2).
    The incoming interface participates: {!equal} distinguishes it, so
    keys differing only by interface must not systematically collide
    into the same bucket. *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
