(** The fully specified six-tuple identifying an end-to-end flow:
    [<source address, destination address, protocol, source port,
    destination port, incoming interface>] (paper, section 3).

    Flow-table entries are keyed by this tuple with no wildcards. *)

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;
  sport : int;
  dport : int;
  iface : int;
}

val make :
  src:Ipaddr.t -> dst:Ipaddr.t -> proto:int -> sport:int -> dport:int ->
  iface:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Deliberately cheap hash over all six tuple fields (the paper's
    flow-table hash runs in 17 cycles on a Pentium; see section 5.2).
    The incoming interface participates: {!equal} distinguishes it, so
    keys differing only by interface must not systematically collide
    into the same bucket. *)
val hash : t -> int

(** Which side of a bidirectional conversation a tuple is, relative to
    its canonical form (see {!canonical}). *)
type direction = Fwd | Rev

val flip : direction -> direction
val direction_name : direction -> string

(** [reverse k] swaps source and destination (addresses and ports).
    The interface is kept unless [iface] overrides it — a reply
    arrives on a different interface than the request left from, and
    callers that know which one say so. *)
val reverse : ?iface:int -> t -> t

(** [canonical k] is the direction-normalized form of [k] plus the
    direction bit: endpoints are ordered (address, then port as the
    tie-break) and the interface zeroed, so [k] and [reverse k]
    canonicalize to the same key with opposite direction bits.  The
    session table keys on this, and canonical-hash RSS pins both
    directions of a conversation to the same shard. *)
val canonical : t -> t * direction

(** [hash (fst (canonical k))] — the RSS rehash used for session
    affinity. *)
val canonical_hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
