type t =
  | V4 of int32
  | V6 of int64 * int64

let compare a b =
  match a, b with
  | V4 x, V4 y -> Int32.unsigned_compare x y
  | V6 (h1, l1), V6 (h2, l2) ->
    let c = Int64.unsigned_compare h1 h2 in
    if c <> 0 then c else Int64.unsigned_compare l1 l2
  | V4 _, V6 _ -> -1
  | V6 _, V4 _ -> 1

(* Direct per-constructor equality: [compare] goes through
   [Int32.unsigned_compare], whose bias subtraction boxes two
   intermediate int32s per call — too hot for the flow table's probe
   loop, which must stay allocation-free. *)
let equal a b =
  match a, b with
  | V4 x, V4 y -> Int32.equal x y
  | V6 (h1, l1), V6 (h2, l2) -> Int64.equal h1 h2 && Int64.equal l1 l2
  | V4 _, V6 _ | V6 _, V4 _ -> false

(* Fibonacci-style mixing: prefix-masked addresses have long runs of
   zero low bits, so the raw value must not be used as a hash.  The
   mix runs in the native [int] domain — int64 arithmetic would box an
   intermediate per operation, and this sits on the flow table's
   per-packet path which is required to allocate nothing.  Constants
   are 62-bit odd multipliers (OCaml int literals cap at 63 bits). *)
let mix x =
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B873593A56F3C5 in
  (x lxor (x lsr 32)) land max_int

let hash = function
  | V4 x -> mix (Int32.to_int x land 0xFFFFFFFF)
  | V6 (h, l) -> mix (Int64.to_int h lxor ((Int64.to_int l * 3) + 0x1234567))

let width = function
  | V4 _ -> 32
  | V6 _ -> 128

let bit a i =
  match a with
  | V4 x ->
    if i < 0 || i > 31 then invalid_arg "Ipaddr.bit: v4 index";
    Int32.logand (Int32.shift_right_logical x (31 - i)) 1l = 1l
  | V6 (h, l) ->
    if i < 0 || i > 127 then invalid_arg "Ipaddr.bit: v6 index";
    let word, j = if i < 64 then h, i else l, i - 64 in
    Int64.logand (Int64.shift_right_logical word (63 - j)) 1L = 1L

(* Mask keeping the first [n] bits of a 32-bit word. *)
let mask32 n =
  if n <= 0 then 0l
  else if n >= 32 then 0xFFFFFFFFl
  else Int32.shift_left 0xFFFFFFFFl (32 - n)

let mask64 n =
  if n <= 0 then 0L
  else if n >= 64 then 0xFFFFFFFFFFFFFFFFL
  else Int64.shift_left 0xFFFFFFFFFFFFFFFFL (64 - n)

let prefix_bits a n =
  match a with
  | V4 x ->
    if n < 0 || n > 32 then invalid_arg "Ipaddr.prefix_bits: v4 length";
    V4 (Int32.logand x (mask32 n))
  | V6 (h, l) ->
    if n < 0 || n > 128 then invalid_arg "Ipaddr.prefix_bits: v6 length";
    V6 (Int64.logand h (mask64 n), Int64.logand l (mask64 (n - 64)))

let clz32 x =
  if x = 0l then 32
  else
    let rec loop i = if Int32.logand (Int32.shift_right_logical x (31 - i)) 1l = 1l then i else loop (i + 1) in
    loop 0

let clz64 x =
  if x = 0L then 64
  else
    let rec loop i = if Int64.logand (Int64.shift_right_logical x (63 - i)) 1L = 1L then i else loop (i + 1) in
    loop 0

let common_prefix_len a b =
  match a, b with
  | V4 x, V4 y -> min 32 (clz32 (Int32.logxor x y))
  | V6 (h1, l1), V6 (h2, l2) ->
    let ch = clz64 (Int64.logxor h1 h2) in
    if ch < 64 then ch else min 128 (64 + clz64 (Int64.logxor l1 l2))
  | V4 _, V6 _ | V6 _, V4 _ ->
    invalid_arg "Ipaddr.common_prefix_len: mixed families"

let v4 a b c d =
  let check x = if x < 0 || x > 255 then invalid_arg "Ipaddr.v4: octet" in
  check a; check b; check c; check d;
  V4
    (Int32.logor
       (Int32.shift_left (Int32.of_int a) 24)
       (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))

let v6 w0 w1 w2 w3 =
  let u32 x = Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL in
  V6
    ( Int64.logor (Int64.shift_left (u32 w0) 32) (u32 w1),
      Int64.logor (Int64.shift_left (u32 w2) 32) (u32 w3) )

let v4_of_int32 x = V4 x

let is_v4 = function V4 _ -> true | V6 _ -> false
let is_v6 = function V6 _ -> true | V4 _ -> false

let zero_v4 = V4 0l
let zero_v6 = V6 (0L, 0L)

let v6_groups (h, l) =
  let g word shift = Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) 0xFFFFL) in
  [| g h 48; g h 32; g h 16; g h 0; g l 48; g l 32; g l 16; g l 0 |]

let to_string = function
  | V4 x ->
    let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical x i) 0xFFl) in
    Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)
  | V6 (h, l) ->
    let groups = v6_groups (h, l) in
    (* Find the longest run of zero groups (length >= 2) to compress. *)
    let best_start = ref (-1) and best_len = ref 0 in
    let cur_start = ref (-1) and cur_len = ref 0 in
    for i = 0 to 7 do
      if groups.(i) = 0 then begin
        if !cur_start < 0 then cur_start := i;
        incr cur_len;
        if !cur_len > !best_len then begin
          best_len := !cur_len;
          best_start := !cur_start
        end
      end
      else begin
        cur_start := -1;
        cur_len := 0
      end
    done;
    if !best_len < 2 then
      String.concat ":" (Array.to_list (Array.map (Printf.sprintf "%x") groups))
    else begin
      let buf = Buffer.create 40 in
      let s = !best_start and e = !best_start + !best_len in
      for i = 0 to s - 1 do
        if i > 0 then Buffer.add_char buf ':';
        Buffer.add_string buf (Printf.sprintf "%x" groups.(i))
      done;
      Buffer.add_string buf "::";
      for i = e to 7 do
        if i > e then Buffer.add_char buf ':';
        Buffer.add_string buf (Printf.sprintf "%x" groups.(i))
      done;
      Buffer.contents buf
    end

let of_string_v4 s =
  match String.split_on_char '.' s with
  | [a; b; c; d] ->
    let octet x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
      | Some _ | None -> None
    in
    (match octet a, octet b, octet c, octet d with
     | Some a, Some b, Some c, Some d -> Some (v4 a b c d)
     | _, _, _, _ -> None)
  | _ -> None

let of_string_v6 s =
  let parse_groups part =
    if part = "" then Some []
    else
      let pieces = String.split_on_char ':' part in
      let group g =
        if g = "" || String.length g > 4 then None
        else
          match int_of_string_opt ("0x" ^ g) with
          | Some v when v >= 0 && v <= 0xFFFF -> Some v
          | Some _ | None -> None
      in
      let rec conv acc = function
        | [] -> Some (List.rev acc)
        | g :: rest ->
          (match group g with Some v -> conv (v :: acc) rest | None -> None)
      in
      conv [] pieces
  in
  let groups =
    match String.index_opt s ':' with
    | None -> None
    | Some _ ->
      let double = ref None in
      (* Locate "::" if present. *)
      let n = String.length s in
      let i = ref 0 in
      while !i < n - 1 do
        if s.[!i] = ':' && s.[!i + 1] = ':' then begin
          double := Some !i;
          i := n
        end
        else incr i
      done;
      (match !double with
       | None ->
         (match parse_groups s with
          | Some gs when List.length gs = 8 -> Some gs
          | Some _ | None -> None)
       | Some pos ->
         let left = String.sub s 0 pos in
         let right = String.sub s (pos + 2) (n - pos - 2) in
         (match parse_groups left, parse_groups right with
          | Some lg, Some rg ->
            let fill = 8 - List.length lg - List.length rg in
            if fill < 1 then None
            else Some (lg @ List.init fill (fun _ -> 0) @ rg)
          | _, _ -> None))
  in
  match groups with
  | Some [g0; g1; g2; g3; g4; g5; g6; g7] ->
    let w a b = Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b) in
    Some (v6 (w g0 g1) (w g2 g3) (w g4 g5) (w g6 g7))
  | Some _ | None -> None

let of_string_opt s =
  if String.contains s ':' then of_string_v6 s else of_string_v4 s

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipaddr.of_string: %S" s)

let pp ppf a = Format.pp_print_string ppf (to_string a)

let write a buf off =
  match a with
  | V4 x -> Bytes.set_int32_be buf off x
  | V6 (h, l) ->
    Bytes.set_int64_be buf off h;
    Bytes.set_int64_be buf (off + 8) l

let to_bytes a =
  let buf = Bytes.create (width a / 8) in
  write a buf 0;
  buf

let read_v4 buf off = V4 (Bytes.get_int32_be buf off)
let read_v6 buf off = V6 (Bytes.get_int64_be buf off, Bytes.get_int64_be buf (off + 8))
