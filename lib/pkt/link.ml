(* Fixed-capacity ring carrying packets between pipeline stages on one
   domain — the single-threaded analogue of the engine's SPSC ring,
   after snabb's core.link.  No atomics: a link connects stages of one
   breathe loop (generator → data path → sink), never domains. *)

exception Empty

type t = {
  buf : Mbuf.t array;
  mask : int;
  dummy : Mbuf.t;
  mutable head : int;  (* next slot to receive *)
  mutable tail : int;  (* next slot to fill *)
  mutable txpackets : int;
  mutable txdrops : int;
  mutable rxpackets : int;
}

(* Largest power of two <= n (n >= 1).  Rounding *down* keeps the
   ring within the caller's stated bound — a capacity is a budget, and
   silently doubling it (the old round-up) masked backpressure bugs by
   absorbing bursts the caller thought would drop. *)
let rec pow2_down n k = if k * 2 > n then k else pow2_down n (k * 2)

let dummy_key =
  Flow_key.make ~src:(Ipaddr.v4 0 0 0 0) ~dst:(Ipaddr.v4 0 0 0 0) ~proto:0
    ~sport:0 ~dport:0 ~iface:0

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Link.create: capacity < 1";
  let cap = pow2_down capacity 1 in
  let dummy = Mbuf.synth ~key:dummy_key ~len:0 () in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = 0;
    tail = 0;
    txpackets = 0;
    txdrops = 0;
    rxpackets = 0;
  }

let capacity t = t.mask + 1
let nreadable t = t.tail - t.head
let nwritable t = capacity t - nreadable t
let is_empty t = nreadable t = 0
let is_full t = nwritable t = 0

let transmit t m =
  if is_full t then begin
    t.txdrops <- t.txdrops + 1;
    Rp_obs.Drop_reason.count Rp_obs.Drop_reason.Link_overflow;
    false
  end
  else begin
    t.buf.(t.tail land t.mask) <- m;
    t.tail <- t.tail + 1;
    t.txpackets <- t.txpackets + 1;
    true
  end

let receive t =
  if is_empty t then raise Empty;
  let slot = t.head land t.mask in
  let m = t.buf.(slot) in
  t.buf.(slot) <- t.dummy;
  t.head <- t.head + 1;
  t.rxpackets <- t.rxpackets + 1;
  m

let receive_batch t ~max dst =
  if max > Array.length dst then
    invalid_arg "Link.receive_batch: dst too small";
  let avail = nreadable t in
  let n = if avail < max then avail else max in
  for i = 0 to n - 1 do
    let slot = (t.head + i) land t.mask in
    dst.(i) <- t.buf.(slot);
    t.buf.(slot) <- t.dummy
  done;
  t.head <- t.head + n;
  t.rxpackets <- t.rxpackets + n;
  n

let txpackets t = t.txpackets
let txdrops t = t.txdrops
let rxpackets t = t.rxpackets
