(** Fixed-capacity packet link between pipeline stages, after snabb's
    [core.link]: a bounded ring with transmit/receive counters.  A full
    link refuses the packet ([transmit] returns [false], counted in
    [txdrops]) — backpressure is the caller's policy, typically "stop
    pulling from the generator".

    Links are single-domain plumbing for one breathe loop; packets
    crossing domains go through the engine's SPSC rings instead.
    Operations are allocation-free. *)

exception Empty

type t

(** [create ~capacity ()] — the ring holds the largest power of two
    [<= capacity] (default 256), so the link never buffers more than
    the caller asked for.  [capacity] must be [>= 1]; a power of two
    is used exactly. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int
val nreadable : t -> int
val nwritable : t -> int
val is_empty : t -> bool
val is_full : t -> bool

(** [transmit t m] appends [m]; [false] (and a [txdrops] bump) when
    the link is full. *)
val transmit : t -> Mbuf.t -> bool

(** [receive t] pops the oldest packet.
    @raise Empty when the link is empty (check {!nreadable} first on
    the hot path). *)
val receive : t -> Mbuf.t

(** [receive_batch t ~max dst] pops up to [max] packets into
    [dst.(0 .. n-1)], returning [n] (possibly 0). *)
val receive_batch : t -> max:int -> Mbuf.t array -> int

val txpackets : t -> int
val txdrops : t -> int
val rxpackets : t -> int
