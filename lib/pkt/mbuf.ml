type version = V4 | V6

type fix = {
  slot : int;
  gen : int;
}

type frag_info = {
  offset : int;
  more : bool;
}

type t = {
  mutable key : Flow_key.t;
  mutable version : version;
  mutable len : int;
  mutable ttl : int;
  mutable tos : int;
  mutable flow_label : int;
  mutable options : Ipv6_header.Option_tlv.t list;
  mutable raw : Bytes.t option;
  mutable fix : fix option;
  mutable out_iface : int option;
  mutable next_hop : Ipaddr.t option;
  mutable birth_ns : int64;
  mutable seq : int;
  mutable tags : string list;
  mutable ident : int;
  mutable dont_fragment : bool;
  mutable frag : frag_info option;
  mutable tseq : int;
  mutable pool_id : int;
  mutable pool_slot : int;
  mutable tcp_flags : int;
  mutable ingress_cycles : int;
  mutable gate_cycles : int array;
}

let synth ?(ttl = 64) ?(tos = 0) ?(flow_label = 0) ?(tcp_flags = 0) ~key ~len
    () =
  {
    key;
    version = (if Ipaddr.is_v4 key.Flow_key.src then V4 else V6);
    len;
    ttl;
    tos;
    flow_label;
    options = [];
    raw = None;
    fix = None;
    out_iface = None;
    next_hop = None;
    birth_ns = 0L;
    seq = 0;
    tags = [];
    ident = 0;
    dont_fragment = false;
    frag = None;
    tseq = 0;
    pool_id = 0;
    pool_slot = -1;
    tcp_flags;
    ingress_cycles = 0;
    gate_cycles = [||];
  }

type error =
  | V4_error of Ipv4_header.error
  | V6_error of Ipv6_header.error
  | Udp_error of Udp_header.error
  | Tcp_error of Tcp_header.error
  | Empty

let pp_error ppf = function
  | V4_error e -> Ipv4_header.pp_error ppf e
  | V6_error e -> Ipv6_header.pp_error ppf e
  | Udp_error e -> Udp_header.pp_error ppf e
  | Tcp_error e -> Tcp_header.pp_error ppf e
  | Empty -> Format.pp_print_string ppf "empty packet"

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let ports_of ~proto buf off =
  if proto = Proto.udp then
    let* u = Result.map_error (fun e -> Udp_error e) (Udp_header.parse buf off) in
    Ok (u.Udp_header.sport, u.Udp_header.dport, 0)
  else if proto = Proto.tcp then
    let* t = Result.map_error (fun e -> Tcp_error e) (Tcp_header.parse buf off) in
    Ok
      ( t.Tcp_header.sport,
        t.Tcp_header.dport,
        Tcp_header.byte_of_flags t.Tcp_header.flags )
  else Ok (0, 0, 0)

let of_bytes ~iface buf =
  if Bytes.length buf = 0 then Error Empty
  else
    let version = Char.code (Bytes.get buf 0) lsr 4 in
    if version = 4 then
      let* h = Result.map_error (fun e -> V4_error e) (Ipv4_header.parse buf 0) in
      let* sport, dport, tcp_flags =
        ports_of ~proto:h.Ipv4_header.proto buf Ipv4_header.size
      in
      let key =
        Flow_key.make ~src:h.Ipv4_header.src ~dst:h.Ipv4_header.dst
          ~proto:h.Ipv4_header.proto ~sport ~dport ~iface
      in
      Ok
        {
          key;
          version = V4;
          len = h.Ipv4_header.total_length;
          ttl = h.Ipv4_header.ttl;
          tos = h.Ipv4_header.tos;
          flow_label = 0;
          options = [];
          raw = Some buf;
          fix = None;
          out_iface = None;
          next_hop = None;
          birth_ns = 0L;
          seq = 0;
          tags = [];
          ident = h.Ipv4_header.ident;
          dont_fragment = h.Ipv4_header.dont_fragment;
          frag =
            (if h.Ipv4_header.fragment_offset = 0 && not h.Ipv4_header.more_fragments
             then None
             else
               Some
                 {
                   offset = h.Ipv4_header.fragment_offset * 8;
                   more = h.Ipv4_header.more_fragments;
                 });
          tseq = 0;
          pool_id = 0;
          pool_slot = -1;
          tcp_flags;
          ingress_cycles = 0;
          gate_cycles = [||];
        }
    else if version = 6 then
      let* h = Result.map_error (fun e -> V6_error e) (Ipv6_header.parse buf 0) in
      let* options, upper_proto, upper_off =
        if h.Ipv6_header.next_header = Proto.ipv6_hop_by_hop then
          let* hbh, hbh_len =
            Result.map_error (fun e -> V6_error e)
              (Ipv6_header.Hop_by_hop.parse buf Ipv6_header.size)
          in
          (* Padding options carry no meaning past the parser. *)
          let semantic =
            List.filter
              (function
                | Ipv6_header.Option_tlv.Pad1 | Ipv6_header.Option_tlv.Padn _ ->
                  false
                | Ipv6_header.Option_tlv.Router_alert _
                | Ipv6_header.Option_tlv.Jumbo_payload _
                | Ipv6_header.Option_tlv.Unknown _ -> true)
              hbh.Ipv6_header.Hop_by_hop.options
          in
          Ok
            ( semantic,
              hbh.Ipv6_header.Hop_by_hop.next_header,
              Ipv6_header.size + hbh_len )
        else Ok ([], h.Ipv6_header.next_header, Ipv6_header.size)
      in
      let* sport, dport, tcp_flags = ports_of ~proto:upper_proto buf upper_off in
      let key =
        Flow_key.make ~src:h.Ipv6_header.src ~dst:h.Ipv6_header.dst
          ~proto:upper_proto ~sport ~dport ~iface
      in
      Ok
        {
          key;
          version = V6;
          len = Ipv6_header.size + h.Ipv6_header.payload_length;
          ttl = h.Ipv6_header.hop_limit;
          tos = h.Ipv6_header.traffic_class;
          flow_label = h.Ipv6_header.flow_label;
          options;
          raw = Some buf;
          fix = None;
          out_iface = None;
          next_hop = None;
          birth_ns = 0L;
          seq = 0;
          tags = [];
          ident = 0;
          dont_fragment = true;  (* routers never fragment IPv6 *)
          frag = None;
          tseq = 0;
          pool_id = 0;
          pool_slot = -1;
          tcp_flags;
          ingress_cycles = 0;
          gate_cycles = [||];
        }
    else Error (V4_error (Ipv4_header.Bad_version version))

let udp_v4 ?(ttl = 64) ?(tos = 0) ~src ~dst ~sport ~dport ~iface ~payload () =
  let plen = String.length payload in
  let total = Ipv4_header.size + Udp_header.size + plen in
  let buf = Bytes.create total in
  let ip =
    Ipv4_header.default ~tos ~ttl ~total_length:total ~proto:Proto.udp ~src
      ~dst ()
  in
  Ipv4_header.serialize ip buf 0;
  let udp =
    {
      Udp_header.sport;
      dport;
      length = Udp_header.size + plen;
      checksum = 0;
    }
  in
  Udp_header.serialize udp buf Ipv4_header.size;
  Bytes.blit_string payload 0 buf (Ipv4_header.size + Udp_header.size) plen;
  let csum =
    Udp_header.compute_checksum ~src ~dst buf Ipv4_header.size
      (Udp_header.size + plen)
  in
  Udp_header.serialize { udp with Udp_header.checksum = csum } buf Ipv4_header.size;
  let key = Flow_key.make ~src ~dst ~proto:Proto.udp ~sport ~dport ~iface in
  let m = synth ~ttl ~tos ~key ~len:total () in
  m.raw <- Some buf;
  m

let udp_v6 ?(hop_limit = 64) ?(traffic_class = 0) ?(flow_label = 0)
    ?(options = []) ~src ~dst ~sport ~dport ~iface ~payload () =
  let plen = String.length payload in
  let hbh =
    if options = [] then None
    else Some { Ipv6_header.Hop_by_hop.next_header = Proto.udp; options }
  in
  let hbh_len =
    match hbh with
    | None -> 0
    | Some h -> Ipv6_header.Hop_by_hop.wire_length h
  in
  let payload_length = hbh_len + Udp_header.size + plen in
  let total = Ipv6_header.size + payload_length in
  let buf = Bytes.create total in
  let next_header =
    match hbh with None -> Proto.udp | Some _ -> Proto.ipv6_hop_by_hop
  in
  let ip =
    Ipv6_header.default ~traffic_class ~flow_label ~hop_limit ~payload_length
      ~next_header ~src ~dst ()
  in
  Ipv6_header.serialize ip buf 0;
  (match hbh with
   | None -> ()
   | Some h ->
     let written = Ipv6_header.Hop_by_hop.serialize h buf Ipv6_header.size in
     assert (written = hbh_len));
  let udp_off = Ipv6_header.size + hbh_len in
  let udp =
    {
      Udp_header.sport;
      dport;
      length = Udp_header.size + plen;
      checksum = 0;
    }
  in
  Udp_header.serialize udp buf udp_off;
  Bytes.blit_string payload 0 buf (udp_off + Udp_header.size) plen;
  let csum = Udp_header.compute_checksum ~src ~dst buf udp_off (Udp_header.size + plen) in
  Udp_header.serialize { udp with Udp_header.checksum = csum } buf udp_off;
  let key = Flow_key.make ~src ~dst ~proto:Proto.udp ~sport ~dport ~iface in
  let m = synth ~ttl:hop_limit ~tos:traffic_class ~flow_label ~key ~len:total () in
  m.raw <- Some buf;
  m.options <- options;
  m

let has_tag m tag = List.mem tag m.tags
let add_tag m tag = if not (has_tag m tag) then m.tags <- tag :: m.tags

let pp ppf m =
  Format.fprintf ppf "pkt{%a len=%d ttl=%d%s}" Flow_key.pp m.key m.len m.ttl
    (match m.fix with None -> "" | Some f -> Printf.sprintf " fix=%d.%d" f.slot f.gen)
