(** The packet descriptor carried through the router — the analogue of
    the BSD [mbuf] of the paper.

    An mbuf carries the parsed six-tuple (the classification key), a
    few mutable per-hop fields (TTL, output interface, next hop), the
    raw wire datagram when one exists, and the {e flow index} (FIX):
    after the first gate of a cached flow, the AIU stores a pointer to
    the packet's flow-table row here so subsequent gates avoid any
    lookup (paper, section 3.2). *)

type version = V4 | V6

(** Flow index: slot in the flow table plus a generation stamp so a
    recycled row is never mistaken for the original flow. *)
type fix = {
  slot : int;
  gen : int;
}

(** Fragment position of this mbuf within its original datagram
    ([offset] in bytes of upper-layer payload; [more] = more fragments
    follow).  [None] = unfragmented. *)
type frag_info = {
  offset : int;
  more : bool;
}

type t = {
  mutable key : Flow_key.t;
  mutable version : version;
      (** mutable so a pooled descriptor can be recycled across
          address families (see {!Pool}); everything else treats it as
          set-once *)
  mutable len : int;  (** total datagram length on the wire, bytes *)
  mutable ttl : int;
  mutable tos : int;  (** TOS / IPv6 traffic class *)
  mutable flow_label : int;  (** IPv6 only; 0 otherwise *)
  mutable options : Ipv6_header.Option_tlv.t list;
      (** hop-by-hop options awaiting option plugins *)
  mutable raw : Bytes.t option;  (** full wire datagram, if materialized *)
  mutable fix : fix option;
  mutable out_iface : int option;
  mutable next_hop : Ipaddr.t option;
  mutable birth_ns : int64;  (** arrival timestamp, set by the driver *)
  mutable seq : int;  (** generator sequence number (testing aid) *)
  mutable tags : string list;  (** free-form annotations, e.g. "esp" *)
  mutable ident : int;  (** IPv4 identification, for fragmentation *)
  mutable dont_fragment : bool;
  mutable frag : frag_info option;
  mutable tseq : int;
      (** telemetry trace id: 0 = unsampled, else the positive packet
          id stamped by the IP core when tracing samples this packet *)
  mutable pool_id : int;
      (** owning {!Pool} uid, 0 = not pool-managed; maintained by the
          pool, opaque to everything else *)
  mutable pool_slot : int;
      (** slot in the owning pool's backing arrays, -1 = none *)
  mutable tcp_flags : int;
      (** TCP flag byte ({!Tcp_header.byte_of_flags}); 0 for non-TCP
          packets.  Parsed from the wire by {!of_bytes}, settable on
          synthetic packets so connection tracking sees SYN/FIN/RST on
          generator traffic too. *)
  mutable ingress_cycles : int;
      (** SLO stamp: the processing domain's {!Cost} clock at ingress.
          Read-only for the latency histograms — never charged — so
          Table-3 cycles are identical with stamping on or off. *)
  mutable gate_cycles : int array;
      (** per-gate cycle attribution for SLO exemplars, indexed by
          gate id; [[||]] until exemplar capture is armed, after which
          the array is lazily sized once per descriptor and zeroed at
          ingress (pooled descriptors keep it, so the steady state
          stays allocation-free) *)
}

(** [synth ~key ~len ()] builds a descriptor without wire bytes — the
    fast path used by workload generators; [version] follows the
    address family of [key.src]. *)
val synth : ?ttl:int -> ?tos:int -> ?flow_label:int -> ?tcp_flags:int ->
  key:Flow_key.t -> len:int -> unit -> t

type error =
  | V4_error of Ipv4_header.error
  | V6_error of Ipv6_header.error
  | Udp_error of Udp_header.error
  | Tcp_error of Tcp_header.error
  | Empty

val pp_error : Format.formatter -> error -> unit

(** [of_bytes ~iface buf] parses a wire datagram: the IP header
    (v4 or v6 by version nibble), an optional IPv6 hop-by-hop header,
    and UDP/TCP ports when applicable (ports are 0 for other
    protocols). *)
val of_bytes : iface:int -> Bytes.t -> (t, error) result

(** [udp_v4 ...] and [udp_v6 ...] build a complete wire datagram plus
    its descriptor; the UDP checksum is filled in. *)
val udp_v4 :
  ?ttl:int -> ?tos:int -> src:Ipaddr.t -> dst:Ipaddr.t -> sport:int ->
  dport:int -> iface:int -> payload:string -> unit -> t

val udp_v6 :
  ?hop_limit:int -> ?traffic_class:int -> ?flow_label:int ->
  ?options:Ipv6_header.Option_tlv.t list -> src:Ipaddr.t -> dst:Ipaddr.t ->
  sport:int -> dport:int -> iface:int -> payload:string -> unit -> t

val has_tag : t -> string -> bool
val add_tag : t -> string -> unit
val pp : Format.formatter -> t -> unit
