(* Free-list packet pool: every descriptor and its backing buffer is
   allocated once, up front; the steady-state alloc/free cycle only
   moves indices and overwrites mutable fields, so a saturated data
   path runs without minor-heap allocation (verified by the qcheck
   Gc.minor_words test). *)

exception Empty

(* Distinguishes pools so a descriptor freed into the wrong pool is
   caught instead of corrupting a free list. *)
let next_uid = ref 0

type stats = {
  capacity : int;
  free : int;
  allocs : int;
  frees : int;
  exhausted : int;
  double_frees : int;
  foreign_frees : int;
}

type t = {
  uid : int;
  mbufs : Mbuf.t array;
  backing : Bytes.t option array;
      (* the permanent [Some buf] cell per slot, restored on [free] so
         a handler that swapped [raw] cannot leak the pool's buffer *)
  free_stack : int array;  (* slot indices; [0 .. top-1] are free *)
  is_free : bool array;
  mutable top : int;
  buf_size : int;
  mutable allocs : int;
  mutable frees : int;
  mutable exhausted : int;
  mutable double_frees : int;
  mutable foreign_frees : int;
}

let dummy_key =
  Flow_key.make ~src:(Ipaddr.v4 0 0 0 0) ~dst:(Ipaddr.v4 0 0 0 0) ~proto:0
    ~sport:0 ~dport:0 ~iface:0

let create ?(buf_size = 2048) ~capacity () =
  if capacity < 1 then invalid_arg "Pool.create: capacity < 1";
  if buf_size < 0 then invalid_arg "Pool.create: buf_size < 0";
  incr next_uid;
  let uid = !next_uid in
  let backing =
    Array.init capacity (fun _ ->
        if buf_size = 0 then None else Some (Bytes.create buf_size))
  in
  let mbufs =
    Array.init capacity (fun slot ->
        let m = Mbuf.synth ~key:dummy_key ~len:0 () in
        m.Mbuf.raw <- backing.(slot);
        m.Mbuf.pool_id <- uid;
        m.Mbuf.pool_slot <- slot;
        m)
  in
  {
    uid;
    mbufs;
    backing;
    free_stack = Array.init capacity (fun i -> i);
    is_free = Array.make capacity true;
    top = capacity;
    buf_size;
    allocs = 0;
    frees = 0;
    exhausted = 0;
    double_frees = 0;
    foreign_frees = 0;
  }

let capacity t = Array.length t.mbufs
let available t = t.top
let buf_size t = t.buf_size

let alloc t ~key ~len =
  if t.top = 0 then begin
    t.exhausted <- t.exhausted + 1;
    Rp_obs.Drop_reason.count Rp_obs.Drop_reason.Pool_exhausted;
    raise Empty
  end;
  t.top <- t.top - 1;
  let slot = t.free_stack.(t.top) in
  t.is_free.(slot) <- false;
  t.allocs <- t.allocs + 1;
  let m = t.mbufs.(slot) in
  m.Mbuf.key <- key;
  m.Mbuf.version <-
    (if Ipaddr.is_v4 key.Flow_key.src then Mbuf.V4 else Mbuf.V6);
  m.Mbuf.len <- len;
  m.Mbuf.ttl <- 64;
  m.Mbuf.tos <- 0;
  m.Mbuf.flow_label <- 0;
  m.Mbuf.options <- [];
  m.Mbuf.fix <- None;
  m.Mbuf.out_iface <- None;
  m.Mbuf.next_hop <- None;
  m.Mbuf.birth_ns <- 0L;
  m.Mbuf.seq <- 0;
  m.Mbuf.tags <- [];
  m.Mbuf.ident <- 0;
  m.Mbuf.dont_fragment <- false;
  m.Mbuf.frag <- None;
  m.Mbuf.tseq <- 0;
  m.Mbuf.tcp_flags <- 0;
  (* [gate_cycles] is deliberately untouched: the attribution array is
     cached per descriptor and re-zeroed at ingress when exemplar
     capture is armed, keeping alloc allocation-free. *)
  m.Mbuf.ingress_cycles <- 0;
  m

let free t m =
  if m.Mbuf.pool_id <> t.uid then begin
    (* Not ours (or never pooled): refuse rather than poison the free
       list; the counter makes the misuse observable. *)
    t.foreign_frees <- t.foreign_frees + 1
  end
  else begin
    let slot = m.Mbuf.pool_slot in
    if t.is_free.(slot) then t.double_frees <- t.double_frees + 1
    else begin
      t.is_free.(slot) <- true;
      t.free_stack.(t.top) <- slot;
      t.top <- t.top + 1;
      t.frees <- t.frees + 1;
      (* Restore the permanent backing buffer; everything else is
         overwritten by the next [alloc]. *)
      m.Mbuf.raw <- t.backing.(slot)
    end
  end

let stats t =
  {
    capacity = capacity t;
    free = t.top;
    allocs = t.allocs;
    frees = t.frees;
    exhausted = t.exhausted;
    double_frees = t.double_frees;
    foreign_frees = t.foreign_frees;
  }

(* Register a free-descriptor-percentage health probe for this pool;
   replacement by name means a re-created pool just takes over. *)
let watch t name =
  Rp_obs.Health.register
    (name ^ ".free_pct")
    (fun () -> 100. *. float_of_int t.top /. float_of_int (capacity t))

let pp_stats ppf s =
  Format.fprintf ppf
    "pool{cap=%d free=%d allocs=%d frees=%d exhausted=%d double_free=%d \
     foreign_free=%d}"
    s.capacity s.free s.allocs s.frees s.exhausted s.double_frees
    s.foreign_frees
