(** Free-list packet pool — the zero-copy allocation discipline of a
    fast data path (snabb's [core.packet] freelist is the model): every
    {!Mbuf.t} descriptor and its flat [Bytes] backing buffer is
    allocated once at pool creation, and the steady-state
    [alloc]/[free] cycle performs {e no} GC allocation — it pops/pushes
    a slot index and overwrites the descriptor's mutable fields.

    The pool is single-domain (one pool per worker); cross-domain
    hand-off stays on the engine's SPSC rings. *)

(** Raised by {!alloc} on an exhausted pool.  Callers that prefer
    backpressure over an exception check {!available} first — the
    check is one field read. *)
exception Empty

type t

type stats = {
  capacity : int;
  free : int;  (** descriptors currently in the free list *)
  allocs : int;
  frees : int;
  exhausted : int;  (** {!alloc} calls that found the pool empty *)
  double_frees : int;  (** {!free} calls on an already-free descriptor *)
  foreign_frees : int;  (** {!free} calls on another pool's descriptor *)
}

(** [create ~capacity ()] preallocates [capacity] descriptors, each
    owning a [buf_size]-byte wire buffer (default 2048; [0] = no
    backing buffers, descriptors only). *)
val create : ?buf_size:int -> capacity:int -> unit -> t

val capacity : t -> int
val available : t -> int
val buf_size : t -> int

(** [alloc t ~key ~len] pops a free descriptor and resets it to a
    fresh synthetic packet ([ttl] 64, no FIX, no tags, version from
    [key.src]'s address family).  The descriptor keeps its preallocated
    backing buffer in [raw].  Allocation-free.
    @raise Empty when the pool is exhausted. *)
val alloc : t -> key:Flow_key.t -> len:int -> Mbuf.t

(** [free t m] returns [m] to the free list and restores its backing
    buffer.  Freeing a descriptor that is already free, or one that
    belongs to a different pool (or none), is a counted no-op — the
    free list is never corrupted. *)
val free : t -> Mbuf.t -> unit

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [watch t name] registers a [<name>.free_pct] health probe (free
    descriptors as a percentage of capacity) with
    {!Rp_obs.Health}. *)
val watch : t -> string -> unit
