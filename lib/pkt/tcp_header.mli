(** TCP header (RFC 793), without options (data offset = 5). *)

type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

val no_flags : flags

(** Wire encoding of the flag byte (FIN=0x01 .. URG=0x20), shared with
    {!Mbuf.t.tcp_flags} and the conntrack state machine. *)
val byte_of_flags : flags -> int

val flags_of_byte : int -> flags

type t = {
  sport : int;
  dport : int;
  seq : int32;
  ack_seq : int32;
  flags : flags;
  window : int;
  checksum : int;
  urgent : int;
}

val size : int

type error = Truncated | Bad_offset of int

val pp_error : Format.formatter -> error -> unit
val parse : Bytes.t -> int -> (t, error) result
val serialize : t -> Bytes.t -> int -> unit
val pp : Format.formatter -> t -> unit
