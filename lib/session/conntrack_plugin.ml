(* Stateful connection tracking at the Firewall gate.

   Runs after the NAT rewrite (Security_in precedes Firewall), which
   is fine: the translated tuple canonicalizes to the session's other
   index key with the direction bit flipped, so resolution recovers
   the same session and true direction — and steady state never even
   reaches the table, it dereferences the session pointer cached in
   this gate's own binding slot (uncharged: the record is cache-hot
   from the NAT plugin's hit on the same packet).

   Per packet: account packets/bytes on the packet's direction,
   refresh the idle clock, and advance the TCP state machine
   (SYN/EST/FIN/RST); data on a closed session is dropped.  UDP and
   other protocols always pass and age out by idle timeout. *)

open Rp_pkt
open Rp_core

let name = "conntrack"
let gate = Gate.Firewall
let description = "stateful connection tracking on the session table"

let create_instance ~instance_id ~code ~config =
  let table = Nat_plugin.table_of config in
  let cache = Nat_plugin.cache_of config in
  Ok
    (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
       ~describe:(fun () ->
         let st = Session.Table.stats table in
         Printf.sprintf "conntrack table=%s live=%d drops=%d"
           (Session.Table.name table) st.Session.Table.live
           st.Session.Table.ct_drops)
       (fun ctx m ->
         match Session.cached_resolve table ~cache ~charge:false ctx m with
         | None -> Plugin.Continue
         | Some (s, dir) ->
           Session.touch s ~now:ctx.Plugin.now_ns ~dir ~len:m.Mbuf.len;
           (match
              Session.conntrack_step s ~dir ~tcp_flags:m.Mbuf.tcp_flags
            with
           | `Pass -> Plugin.Continue
           | `Drop why ->
             Session.Table.note_ct_drop table;
             Plugin.Drop why)))

let message key _ =
  match key with
  | "plugin-info" -> Ok description
  | _ -> Error (Printf.sprintf "conntrack: unknown message %s" key)
