(* The NAT plugin pair.

   [In] sits at Security_in — before routing, like a NetBSD pfil hook
   on the inbound path — and does the session subsystem's single
   steady-state table hit: resolve (or create) the session, apply the
   SNAT/DNAT rewrite in place (parsed key + wire bytes with RFC 1624
   checksum fixup), stamp the session's QoS class into the TOS byte,
   and install the cached next-hop so the Routing gate skips the LPM
   lookup.  Flow bindings resolve at ingress against the pre-rewrite
   tuple (the AIU classifies all gates at miss time), so rewriting the
   key here does not disturb the packet's FIX record.

   [Out] sits at Security_out — after routing — and only learns: the
   first routed packet of each direction writes its routing decision
   (out_iface, next_hop) into the session, set-once, so every later
   packet of that direction gets it for free at [In]. *)

open Rp_pkt
open Rp_core

let table_of config =
  Session.Table.get
    (Option.value (List.assoc_opt "table" config) ~default:"default")

let cache_of config = List.assoc_opt "cache" config <> Some "off"

module In = struct
  let name = "nat"
  let gate = Gate.Security_in

  let description =
    "session NAT: rewrite + QoS class + cached next-hop, one session hit"

  let create_instance ~instance_id ~code ~config =
    let table = table_of config in
    let cache = cache_of config in
    Ok
      (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
         ~describe:(fun () ->
           Printf.sprintf "nat table=%s cache=%s rules=%d"
             (Session.Table.name table)
             (if cache then "on" else "off")
             (List.length (Session.Table.rules table)))
         (fun ctx m ->
           match Session.cached_resolve table ~cache ~charge:true ctx m with
           | None -> Plugin.Continue
           | Some (s, dir) ->
             if Session.apply_rewrite s dir m then begin
               Session.Table.note_rewrite table;
               if Rp_obs.Telemetry.on () && m.Mbuf.tseq <> 0 then
                 Rp_obs.Telemetry.record ~ts:(Cost.get ())
                   ~kind:Rp_obs.Telemetry.Rewrite ~gate:(Gate.to_int gate)
                   ~pkt:m.Mbuf.tseq ~arg:s.Session.id
             end;
             (match s.Session.qos with
             | Some tos -> m.Mbuf.tos <- tos
             | None -> ());
             (match Session.route s dir with
             | Some (ifc, nh) when m.Mbuf.out_iface = None ->
               m.Mbuf.out_iface <- Some ifc;
               m.Mbuf.next_hop <- nh
             | _ -> ());
             Plugin.Continue))

  let message key _ =
    match key with
    | "plugin-info" -> Ok description
    | _ -> Error (Printf.sprintf "nat: unknown message %s" key)
end

module Out = struct
  let name = "nat-out"
  let gate = Gate.Security_out
  let description = "session route learning: cache the routing decision"

  let create_instance ~instance_id ~code ~config =
    let table = table_of config in
    let cache = cache_of config in
    Ok
      (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
         ~describe:(fun () ->
           Printf.sprintf "nat-out table=%s" (Session.Table.name table))
         (fun ctx m ->
           (if cache then
              match
                Session.cached_resolve table ~create:false ~cache
                  ~charge:false ctx m
              with
              | Some (s, dir) when Option.is_none (Session.route s dir) -> (
                match m.Mbuf.out_iface with
                | Some ifc when Session.route_learnable s dir m.Mbuf.key ->
                  Session.learn_route s dir (ifc, m.Mbuf.next_hop)
                | Some _ | None -> ())
              | _ -> ());
           Plugin.Continue))

  let message key _ =
    match key with
    | "plugin-info" -> Ok description
    | _ -> Error (Printf.sprintf "nat-out: unknown message %s" key)
end
