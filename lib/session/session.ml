(* Bidirectional session table: NAT + conntrack + QoS + cached
   next-hop behind one lookup.

   Index structure: a striped hashtable keyed by canonical
   (direction-normalized) flow keys.  A session is inserted under the
   canonical of its forward ingress tuple AND the canonical of its
   reply ingress tuple; the two coincide exactly when the session is
   not NAT'd (canonical collapses direction).  Because the NAT rewrite
   happens mid-pipeline (Security_in), packets reach later gates with
   the translated tuple — which canonicalizes to the session's *other*
   index key with the direction bit flipped, so [dir_of] recovers the
   true direction from (key, bit) regardless of whether the caller
   sits before or after the rewrite.

   Concurrency: stripe mutexes guard only the index (control-plane
   insert/remove + cold-path lookup); all per-packet state on the
   session record itself is atomics, because under NAT the two
   directions of one session can RSS to different shard domains. *)

open Rp_pkt

type tcp_state = Tcp_syn | Tcp_est | Tcp_fin | Tcp_closed
type state = Tcp of tcp_state | Udp | Other

type t = {
  id : int;
  proto : int;
  iface : int;
  orig_src : Ipaddr.t;
  orig_sport : int;
  orig_dst : Ipaddr.t;
  orig_dport : int;
  xlat_src : Ipaddr.t;
  xlat_sport : int;
  xlat_dst : Ipaddr.t;
  xlat_dport : int;
  nat : bool;
  qos : int option;
  fwd_lookup : Flow_key.t;
  fwd_dir : Flow_key.direction;
  rev_lookup : Flow_key.t;
  rev_dir : Flow_key.direction;
  created_ns : int64;
  state_a : int Atomic.t;
  fwd_pkts : int Atomic.t;
  fwd_bytes : int Atomic.t;
  rev_pkts : int Atomic.t;
  rev_bytes : int Atomic.t;
  drops : int Atomic.t;
  last_ns : int64 Atomic.t;
  fwd_route : (int * Ipaddr.t option) option Atomic.t;
  rev_route : (int * Ipaddr.t option) option Atomic.t;
  alive_a : bool Atomic.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let alive s = Atomic.get s.alive_a

(* State encoding, one atomic int: 0 = Udp, 1 = Other; TCP sets 0x10
   with the phase in bits 0-1 and the per-direction FIN-seen flags in
   bits 2 (fwd) / 3 (rev). *)
let st_tcp = 0x10
let fin_fwd = 0x4
let fin_rev = 0x8
let code_syn = 0
let code_est = 1
let code_fin = 2
let code_closed = 3

let decode v =
  if v = 0 then Udp
  else if v = 1 then Other
  else
    Tcp
      (match v land 0x3 with
      | 0 -> Tcp_syn
      | 1 -> Tcp_est
      | 2 -> Tcp_fin
      | _ -> Tcp_closed)

let state s = decode (Atomic.get s.state_a)

let state_name s =
  match state s with
  | Tcp Tcp_syn -> "tcp-syn"
  | Tcp Tcp_est -> "tcp-est"
  | Tcp Tcp_fin -> "tcp-fin"
  | Tcp Tcp_closed -> "tcp-closed"
  | Udp -> "udp"
  | Other -> "other"

let route s (dir : Flow_key.direction) =
  Atomic.get (match dir with Fwd -> s.fwd_route | Rev -> s.rev_route)

let learn_route s (dir : Flow_key.direction) r =
  let cell = match dir with Fwd -> s.fwd_route | Rev -> s.rev_route in
  ignore (Atomic.compare_and_set cell None (Some r))

let fetch_add c n =
  ignore (Atomic.fetch_and_add c n)

let touch s ~now ~dir ~len =
  (match (dir : Flow_key.direction) with
  | Fwd ->
    fetch_add s.fwd_pkts 1;
    fetch_add s.fwd_bytes len
  | Rev ->
    fetch_add s.rev_pkts 1;
    fetch_add s.rev_bytes len);
  Atomic.set s.last_ns now

(* One packet's transition.  [`Reject] = the packet must not pass and
   the state is unchanged (data on a closed session). *)
let transition v (dir : Flow_key.direction) tcp_flags =
  if v < st_tcp then `Set v
  else
    let fl = Tcp_header.flags_of_byte tcp_flags in
    let code = v land 0x3 in
    let fins = v land (fin_fwd lor fin_rev) in
    if code = code_closed && not (fl.Tcp_header.syn || fl.Tcp_header.rst) then
      `Reject
    else if fl.Tcp_header.rst then `Set (st_tcp lor code_closed lor fins)
    else if fl.Tcp_header.syn && code = code_closed then
      (* reopen: fresh handshake on the same tuple *)
      `Set (st_tcp lor code_syn)
    else
      let fins =
        fins
        lor
        if fl.Tcp_header.fin then
          match dir with Fwd -> fin_fwd | Rev -> fin_rev
        else 0
      in
      let code =
        if fins = fin_fwd lor fin_rev then code_closed
        else if fl.Tcp_header.fin then code_fin
        else if code = code_syn && dir = Rev then
          (* responder answered the handshake *)
          code_est
        else code
      in
      `Set (st_tcp lor code lor fins)

let rec conntrack_step s ~dir ~tcp_flags =
  let v = Atomic.get s.state_a in
  match transition v dir tcp_flags with
  | `Reject ->
    fetch_add s.drops 1;
    `Drop "conntrack: closed session"
  | `Set v' ->
    if v' = v || Atomic.compare_and_set s.state_a v v' then `Pass
    else conntrack_step s ~dir ~tcp_flags

(* ---- In-place header rewrite -------------------------------------- *)

(* 16-bit words of an address, most significant first — the units both
   the IPv4 header checksum and the L4 pseudo-header checksum sum. *)
let words_of_addr = function
  | Ipaddr.V4 a ->
    let a = Int32.to_int a land 0xFFFFFFFF in
    [ (a lsr 16) land 0xFFFF; a land 0xFFFF ]
  | Ipaddr.V6 (hi, lo) ->
    let quads x =
      [
        Int64.(to_int (shift_right_logical x 48)) land 0xFFFF;
        Int64.(to_int (shift_right_logical x 32)) land 0xFFFF;
        Int64.(to_int (shift_right_logical x 16)) land 0xFFFF;
        Int64.to_int x land 0xFFFF;
      ]
    in
    quads hi @ quads lo

let adjust_diffs csum diffs =
  List.fold_left
    (fun c (old_word, new_word) -> Checksum.adjust c ~old_word ~new_word)
    csum diffs

let adjust_at buf off diffs =
  if diffs <> [] && off >= 0 && off + 2 <= Bytes.length buf then
    Bytes.set_uint16_be buf off
      (adjust_diffs (Bytes.get_uint16_be buf off) diffs)

(* Pair up old/new 16-bit words for one changed field. *)
let addr_diff oldv newv =
  if Ipaddr.equal oldv newv then []
  else List.combine (words_of_addr oldv) (words_of_addr newv)

let port_diff oldp newp = if oldp = newp then [] else [ (oldp, newp) ]

let l4_csum_off proto l4 =
  (* offset of the transport checksum relative to the datagram start,
     or -1 when the protocol has none we maintain *)
  if proto = 6 then l4 + 16 else if proto = 17 then l4 + 6 else -1

let rewrite_raw buf (k : Flow_key.t) ~version ~options ~nsrc ~nsport ~ndst
    ~ndport =
  let addr_diffs = addr_diff k.src nsrc @ addr_diff k.dst ndst in
  let port_diffs = port_diff k.sport nsport @ port_diff k.dport ndport in
  match (version : Mbuf.version) with
  | V4 when Bytes.length buf >= 20 ->
    let ihl = (Bytes.get_uint8 buf 0 land 0xF) * 4 in
    if not (Ipaddr.equal k.src nsrc) then Ipaddr.write nsrc buf 12;
    if not (Ipaddr.equal k.dst ndst) then Ipaddr.write ndst buf 16;
    (* IP header checksum covers only the addresses *)
    adjust_at buf 10 addr_diffs;
    if k.proto = 6 || k.proto = 17 then begin
      if ihl + 4 <= Bytes.length buf then begin
        if k.sport <> nsport then Bytes.set_uint16_be buf ihl nsport;
        if k.dport <> ndport then Bytes.set_uint16_be buf (ihl + 2) ndport
      end;
      let coff = l4_csum_off k.proto ihl in
      if coff >= 0 && coff + 2 <= Bytes.length buf then
        let cur = Bytes.get_uint16_be buf coff in
        (* a UDP checksum of zero means "not computed" — leave it *)
        if not (k.proto = 17 && cur = 0) then
          (* pseudo-header includes the addresses *)
          adjust_at buf coff (addr_diffs @ port_diffs)
    end
  | V6 when Bytes.length buf >= 40 ->
    if not (Ipaddr.equal k.src nsrc) then Ipaddr.write nsrc buf 8;
    if not (Ipaddr.equal k.dst ndst) then Ipaddr.write ndst buf 24;
    (* the transport header sits at 40 only without extension
       headers; with options present we leave ports/checksum to the
       parsed-key rewrite (the model path) *)
    if options = [] && (k.proto = 6 || k.proto = 17) then begin
      let l4 = 40 in
      if l4 + 4 <= Bytes.length buf then begin
        if k.sport <> nsport then Bytes.set_uint16_be buf l4 nsport;
        if k.dport <> ndport then Bytes.set_uint16_be buf (l4 + 2) ndport
      end;
      let coff = l4_csum_off k.proto l4 in
      if coff >= 0 && coff + 2 <= Bytes.length buf then
        let cur = Bytes.get_uint16_be buf coff in
        if not (k.proto = 17 && cur = 0) then
          adjust_at buf coff (addr_diffs @ port_diffs)
    end
  | _ -> ()

let apply_rewrite s (dir : Flow_key.direction) (m : Mbuf.t) =
  let nsrc, nsport, ndst, ndport =
    match dir with
    | Fwd -> (s.xlat_src, s.xlat_sport, s.xlat_dst, s.xlat_dport)
    | Rev -> (s.orig_dst, s.orig_dport, s.orig_src, s.orig_sport)
  in
  let k = m.Mbuf.key in
  if
    Ipaddr.equal k.src nsrc && Ipaddr.equal k.dst ndst && k.sport = nsport
    && k.dport = ndport
  then false
  else begin
    (match m.Mbuf.raw with
    | Some buf ->
      rewrite_raw buf k ~version:m.Mbuf.version ~options:m.Mbuf.options ~nsrc
        ~nsport ~ndst ~ndport
    | None -> ());
    m.Mbuf.key <-
      { k with src = nsrc; dst = ndst; sport = nsport; dport = ndport };
    true
  end

(* A routing decision is only safe to cache when it was made for the
   direction's post-rewrite tuple.  If the NAT plugin was bypassed
   (quarantined, unbound) the packet routed under its untranslated
   addresses, and learning that decision would poison the session's
   cached next-hop for when the rewrite comes back. *)
let route_learnable s (dir : Flow_key.direction) (k : Flow_key.t) =
  let nsrc, nsport, ndst, ndport =
    match dir with
    | Fwd -> (s.xlat_src, s.xlat_sport, s.xlat_dst, s.xlat_dport)
    | Rev -> (s.orig_dst, s.orig_dport, s.orig_src, s.orig_sport)
  in
  Ipaddr.equal k.src nsrc && Ipaddr.equal k.dst ndst && k.sport = nsport
  && k.dport = ndport

type Rp_classifier.Flow_table.soft += Cached of t * Flow_key.direction

let shard_key = Flow_key.canonical_hash

let xlate_of s =
  {
    Rp_obs.Flowlog.xsrc = Ipaddr.to_string s.xlat_src;
    xdst = Ipaddr.to_string s.xlat_dst;
    xsport = s.xlat_sport;
    xdport = s.xlat_dport;
  }

let xlate_of_record (r : Rp_core.Plugin.t Rp_classifier.Flow_table.record) =
  let found = ref None in
  Rp_classifier.Flow_table.iter_bindings r
    (fun ~gate:_ (b : Rp_core.Plugin.t Rp_classifier.Flow_table.binding) ->
      match b.Rp_classifier.Flow_table.soft with
      | Some (Cached (s, _)) when s.nat && Option.is_none !found ->
        found := Some (xlate_of s)
      | _ -> ());
  !found

let () = Rp_core.Flow_export.set_translated_of xlate_of_record

let export_record ~reason s =
  let fp = Atomic.get s.fwd_pkts and rp = Atomic.get s.rev_pkts in
  let drops = Atomic.get s.drops in
  {
    Rp_obs.Flowlog.src = Ipaddr.to_string s.orig_src;
    dst = Ipaddr.to_string s.orig_dst;
    proto = s.proto;
    sport = s.orig_sport;
    dport = s.orig_dport;
    iface = s.iface;
    packets = fp + rp;
    bytes = Atomic.get s.fwd_bytes + Atomic.get s.rev_bytes;
    forwarded = fp + rp - drops;
    dropped = drops;
    absorbed = 0;
    created_ns = s.created_ns;
    last_ns = Atomic.get s.last_ns;
    bindings = [ ("session", s.id) ];
    reason;
    translated = (if s.nat then Some (xlate_of s) else None);
  }

(* ---- The table ---------------------------------------------------- *)

let next_id = Atomic.make 1

module Table = struct
  type session = t

  type timeout_class = [ `Tcp_syn | `Tcp_est | `Tcp_fin | `Udp | `Other ]

  type nat_rule = {
    kind : [ `Snat | `Dnat ];
    filter : Rp_classifier.Filter.t;
    addr : Ipaddr.t;
    port : int option;
    tos : int option;
  }

  type stats = {
    live : int;
    created : int;
    expired : int;
    lookups : int;
    hits : int;
    misses : int;
    cached_hits : int;
    rewrites : int;
    ct_drops : int;
    key_conflicts : int;
  }

  type stripe = { lock : Mutex.t; tbl : (Flow_key.t, session) Hashtbl.t }

  type t = {
    tname : string;
    str : stripe array;
    rules_lock : Mutex.t;
    mutable rules_l : nat_rule list;
    mutable tcp_syn_ns : int64;
    mutable tcp_est_ns : int64;
    mutable tcp_fin_ns : int64;
    mutable udp_ns : int64;
    mutable other_ns : int64;
    created_c : int Atomic.t;
    expired_c : int Atomic.t;
    lookups_c : int Atomic.t;
    hits_c : int Atomic.t;
    misses_c : int Atomic.t;
    cached_c : int Atomic.t;
    rewrites_c : int Atomic.t;
    ct_drops_c : int Atomic.t;
    conflicts_c : int Atomic.t;
  }

  let secs n = Int64.mul (Int64.of_int n) 1_000_000_000L

  let create ?(stripes = 16) tname =
    let t =
    {
      tname;
      str =
        Array.init (max 1 stripes) (fun _ ->
            { lock = Mutex.create (); tbl = Hashtbl.create 64 });
      rules_lock = Mutex.create ();
      rules_l = [];
      tcp_syn_ns = secs 30;
      tcp_est_ns = secs 300;
      tcp_fin_ns = secs 10;
      udp_ns = secs 60;
      other_ns = secs 60;
      created_c = Atomic.make 0;
      expired_c = Atomic.make 0;
      lookups_c = Atomic.make 0;
      hits_c = Atomic.make 0;
      misses_c = Atomic.make 0;
      cached_c = Atomic.make 0;
      rewrites_c = Atomic.make 0;
      ct_drops_c = Atomic.make 0;
      conflicts_c = Atomic.make 0;
    }
    in
    (* Live-session health probe: an unlocked sum over the stripes is a
       momentary snapshot, which is all a sampler needs. *)
    Rp_obs.Health.register
      ("session." ^ tname ^ ".live")
      (fun () ->
        float_of_int
          (Array.fold_left (fun acc s -> acc + Hashtbl.length s.tbl) 0 t.str));
    t

  let name t = t.tname

  let registry : (string, t) Hashtbl.t = Hashtbl.create 4
  let registry_lock = Mutex.create ()

  let get name =
    with_lock registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some t -> t
        | None ->
          let t = create name in
          Hashtbl.add registry name t;
          t)

  let names () =
    with_lock registry_lock (fun () ->
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

  let stripe_idx t ck = Flow_key.hash ck land max_int mod Array.length t.str

  let set_timeout t (c : timeout_class) ns =
    match c with
    | `Tcp_syn -> t.tcp_syn_ns <- ns
    | `Tcp_est -> t.tcp_est_ns <- ns
    | `Tcp_fin -> t.tcp_fin_ns <- ns
    | `Udp -> t.udp_ns <- ns
    | `Other -> t.other_ns <- ns

  let timeout t (c : timeout_class) =
    match c with
    | `Tcp_syn -> t.tcp_syn_ns
    | `Tcp_est -> t.tcp_est_ns
    | `Tcp_fin -> t.tcp_fin_ns
    | `Udp -> t.udp_ns
    | `Other -> t.other_ns

  let timeout_of_state t = function
    | Tcp Tcp_syn -> t.tcp_syn_ns
    | Tcp Tcp_est -> t.tcp_est_ns
    | Tcp (Tcp_fin | Tcp_closed) -> t.tcp_fin_ns
    | Udp -> t.udp_ns
    | Other -> t.other_ns

  let add_rule t r = with_lock t.rules_lock (fun () -> t.rules_l <- t.rules_l @ [ r ])

  let del_rule t i =
    with_lock t.rules_lock (fun () ->
        if i < 0 || i >= List.length t.rules_l then
          Error (Printf.sprintf "no NAT rule %d" i)
        else begin
          t.rules_l <- List.filteri (fun j _ -> j <> i) t.rules_l;
          Ok ()
        end)

  let rules t = t.rules_l

  let cached_hit t ~charge =
    Atomic.incr t.cached_c;
    if charge then begin
      Rp_lpm.Access.charge 1;
      Rp_core.Cost.charge_mem 1
    end

  let note_rewrite t = Atomic.incr t.rewrites_c
  let note_ct_drop t = Atomic.incr t.ct_drops_c

  (* Recover the packet's true direction from which index key it
     canonicalized to and the direction bit canonicalization reported.
     Works both before the NAT rewrite (the key is an ingress tuple,
     matching (fwd_lookup, fwd_dir) or (rev_lookup, rev_dir)) and
     after it (the translated tuple canonicalizes to the *other* index
     key with the bit flipped). *)
  let dir_of s ck d : Flow_key.direction =
    if Flow_key.equal ck s.fwd_lookup then
      if d = s.fwd_dir then Fwd else Rev
    else if d = s.rev_dir then Rev
    else Fwd

  let first_rule t kind key =
    List.find_opt
      (fun r -> r.kind = kind && Rp_classifier.Filter.matches r.filter key)
      t.rules_l

  let make_session t (key : Flow_key.t) ~now ~tcp_flags =
    let snat = first_rule t `Snat key and dnat = first_rule t `Dnat key in
    let xlat_src, xlat_sport =
      match snat with
      | Some r -> (r.addr, Option.value r.port ~default:key.sport)
      | None -> (key.src, key.sport)
    in
    let xlat_dst, xlat_dport =
      match dnat with
      | Some r -> (r.addr, Option.value r.port ~default:key.dport)
      | None -> (key.dst, key.dport)
    in
    let qos =
      match (snat, dnat) with
      | Some { tos = Some q; _ }, _ | _, Some { tos = Some q; _ } -> Some q
      | _ -> None
    in
    let nat =
      not
        (Ipaddr.equal xlat_src key.src
        && Ipaddr.equal xlat_dst key.dst
        && xlat_sport = key.sport && xlat_dport = key.dport)
    in
    let fwd_lookup, fwd_dir = Flow_key.canonical key in
    let rev_lookup, rev_dir =
      Flow_key.canonical
        (Flow_key.reverse ~iface:0
           { key with src = xlat_src; dst = xlat_dst; sport = xlat_sport;
             dport = xlat_dport })
    in
    let state0 =
      if key.proto = 6 then
        let fl = Tcp_header.flags_of_byte tcp_flags in
        if fl.Tcp_header.syn && not fl.Tcp_header.ack then st_tcp lor code_syn
        else st_tcp lor code_est (* mid-stream pickup *)
      else if key.proto = 17 then 0
      else 1
    in
    {
      id = Atomic.fetch_and_add next_id 1;
      proto = key.proto;
      iface = key.iface;
      orig_src = key.src;
      orig_sport = key.sport;
      orig_dst = key.dst;
      orig_dport = key.dport;
      xlat_src;
      xlat_sport;
      xlat_dst;
      xlat_dport;
      nat;
      qos;
      fwd_lookup;
      fwd_dir;
      rev_lookup;
      rev_dir;
      created_ns = now;
      state_a = Atomic.make state0;
      fwd_pkts = Atomic.make 0;
      fwd_bytes = Atomic.make 0;
      rev_pkts = Atomic.make 0;
      rev_bytes = Atomic.make 0;
      drops = Atomic.make 0;
      last_ns = Atomic.make now;
      fwd_route = Atomic.make None;
      rev_route = Atomic.make None;
      alive_a = Atomic.make true;
    }

  (* Lock stripes [i] and [j] in index order (deadlock-free for the
     two-key insert). *)
  let lock2 t i j f =
    if i = j then with_lock t.str.(i).lock f
    else
      let a = min i j and b = max i j in
      with_lock t.str.(a).lock (fun () -> with_lock t.str.(b).lock f)

  let resolve t ?(create = true) key ~now ~tcp_flags =
    let ck, d = Flow_key.canonical key in
    Atomic.incr t.lookups_c;
    (* the one session-table hit: bucket probe + record read *)
    Rp_lpm.Access.charge 2;
    Rp_core.Cost.charge_mem 2;
    Rp_core.Cost.charge Rp_core.Cost.flow_hash;
    let i = stripe_idx t ck in
    let found =
      with_lock t.str.(i).lock (fun () -> Hashtbl.find_opt t.str.(i).tbl ck)
    in
    match found with
    | Some s when alive s ->
      Atomic.incr t.hits_c;
      Some (s, dir_of s ck d)
    | _ ->
      Atomic.incr t.misses_c;
      if not create then None
      else begin
        let s = make_session t key ~now ~tcp_flags in
        let j = stripe_idx t s.fwd_lookup and k2 = stripe_idx t s.rev_lookup in
        (* index insert: two writes *)
        Rp_lpm.Access.charge 2;
        Rp_core.Cost.charge_mem 2;
        let s =
          lock2 t j k2 (fun () ->
              match Hashtbl.find_opt t.str.(j).tbl s.fwd_lookup with
              | Some s' when alive s' -> s' (* lost a create race *)
              | _ ->
                Hashtbl.replace t.str.(j).tbl s.fwd_lookup s;
                if not (Flow_key.equal s.rev_lookup s.fwd_lookup) then begin
                  match Hashtbl.find_opt t.str.(k2).tbl s.rev_lookup with
                  | Some s' when alive s' ->
                    (* reply tuple already owned by another session:
                       keep the forward index only *)
                    ignore s';
                    Atomic.incr t.conflicts_c
                  | _ -> Hashtbl.replace t.str.(k2).tbl s.rev_lookup s
                end;
                Atomic.incr t.created_c;
                s)
        in
        Some (s, dir_of s ck d)
      end

  let remove_key t k s =
    let i = stripe_idx t k in
    with_lock t.str.(i).lock (fun () ->
        match Hashtbl.find_opt t.str.(i).tbl k with
        | Some s' when s' == s -> Hashtbl.remove t.str.(i).tbl k
        | _ -> ())

  let reap t ~now ~force ~reason =
    let victims = ref [] in
    Array.iter
      (fun st ->
        with_lock st.lock (fun () ->
            Hashtbl.iter
              (fun _ s ->
                let dead =
                  force
                  || (not (alive s))
                  || Int64.sub now (Atomic.get s.last_ns)
                     > timeout_of_state t (state s)
                in
                (* the CAS makes one reaper the owner even if expiry
                   runs concurrently from two domains *)
                if dead && Atomic.compare_and_set s.alive_a true false then
                  victims := s :: !victims)
              st.tbl))
      t.str;
    List.iter
      (fun s ->
        remove_key t s.fwd_lookup s;
        if not (Flow_key.equal s.rev_lookup s.fwd_lookup) then
          remove_key t s.rev_lookup s;
        Atomic.incr t.expired_c;
        Rp_obs.Flowlog.emit (export_record ~reason s))
      !victims;
    List.length !victims

  let expire t ~now = reap t ~now ~force:false ~reason:"session-expired"
  let flush t = reap t ~now:0L ~force:true ~reason:"session-flushed"

  let iter f t =
    Array.iter
      (fun st ->
        with_lock st.lock (fun () ->
            Hashtbl.iter
              (fun k s ->
                if alive s && Flow_key.equal k s.fwd_lookup then f s)
              st.tbl))
      t.str

  let length t =
    let n = ref 0 in
    iter (fun _ -> incr n) t;
    !n

  let stats t =
    {
      live = length t;
      created = Atomic.get t.created_c;
      expired = Atomic.get t.expired_c;
      lookups = Atomic.get t.lookups_c;
      hits = Atomic.get t.hits_c;
      misses = Atomic.get t.misses_c;
      cached_hits = Atomic.get t.cached_c;
      rewrites = Atomic.get t.rewrites_c;
      ct_drops = Atomic.get t.ct_drops_c;
      key_conflicts = Atomic.get t.conflicts_c;
    }
end

(* The per-packet entry point shared by the session plugins: steady
   state dereferences the session pointer cached in the gate binding's
   soft slot (one memory access, charged by exactly one of the plugins
   on the packet's path — the record is cache-hot for the rest); a
   cold or invalidated slot falls back to the striped table and
   repopulates the cache. *)
let cached_resolve table ?(create = true) ~cache ~charge
    (ctx : Rp_core.Plugin.ctx) (m : Mbuf.t) =
  let now = ctx.Rp_core.Plugin.now_ns in
  let table_resolve () =
    Table.resolve table ~create m.Mbuf.key ~now ~tcp_flags:m.Mbuf.tcp_flags
  in
  match ctx.Rp_core.Plugin.binding with
  | Some b when cache -> (
    match b.Rp_classifier.Flow_table.soft with
    | Some (Cached (s, dir)) when alive s ->
      Table.cached_hit table ~charge;
      Some (s, dir)
    | _ -> (
      match table_resolve () with
      | Some (s, dir) as r ->
        b.Rp_classifier.Flow_table.soft <- Some (Cached (s, dir));
        r
      | None -> None))
  | _ -> table_resolve ()
