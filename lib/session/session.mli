(** Bidirectional session table — the unified NAT / connection-tracking
    / QoS / next-hop state layered on the flow table.

    A session pairs the forward and reverse five-tuples of one
    conversation.  Both directions are indexed by their
    direction-normalized ({!Rp_pkt.Flow_key.canonical}) ingress tuples
    — for a NAT'd session the reply tuple differs from the forward
    one, so the session carries two index keys.  The record holds
    everything the per-packet path needs: the SNAT/DNAT rewrite, the
    conntrack state machine, the QoS class and the cached per-direction
    next-hop, so the steady-state data path does one session hit (via a
    pointer cached in the flow record's soft slot) and zero further
    lookups.

    Sharding: the two directions of a NAT'd session canonicalize to
    {e different} keys and can therefore RSS to different shards, so
    tables are shared across domains — stripe mutexes guard the index
    structure, per-session mutable state is atomics.  Canonical-key RSS
    ({!shard_key}, installed via [Engine.set_rss]) additionally pins
    both directions of every un-NAT'd conversation to one shard. *)

open Rp_pkt

type tcp_state = Tcp_syn | Tcp_est | Tcp_fin | Tcp_closed
type state = Tcp of tcp_state | Udp | Other

type t = private {
  id : int;  (** unique, process-wide *)
  proto : int;
  iface : int;  (** forward-direction ingress interface *)
  (* Pre-rewrite forward tuple. *)
  orig_src : Ipaddr.t;
  orig_sport : int;
  orig_dst : Ipaddr.t;
  orig_dport : int;
  (* Post-rewrite forward tuple (equal to orig when not NAT'd). *)
  xlat_src : Ipaddr.t;
  xlat_sport : int;
  xlat_dst : Ipaddr.t;
  xlat_dport : int;
  nat : bool;
  qos : int option;  (** TOS/class stamped on every packet *)
  fwd_lookup : Flow_key.t;  (** canonical of the forward ingress tuple *)
  fwd_dir : Flow_key.direction;
  rev_lookup : Flow_key.t;  (** canonical of the reply ingress tuple *)
  rev_dir : Flow_key.direction;
  created_ns : int64;
  (* Per-session atomics: the two directions may be updated from two
     different shard domains concurrently. *)
  state_a : int Atomic.t;
  fwd_pkts : int Atomic.t;
  fwd_bytes : int Atomic.t;
  rev_pkts : int Atomic.t;
  rev_bytes : int Atomic.t;
  drops : int Atomic.t;
  last_ns : int64 Atomic.t;
  fwd_route : (int * Ipaddr.t option) option Atomic.t;
  rev_route : (int * Ipaddr.t option) option Atomic.t;
  alive_a : bool Atomic.t;
}

val alive : t -> bool
val state : t -> state
val state_name : t -> string

(** Cached next-hop for one direction: [(out_iface, next_hop)]. *)
val route : t -> Flow_key.direction -> (int * Ipaddr.t option) option

(** Record the routing decision for one direction (first writer wins). *)
val learn_route : t -> Flow_key.direction -> int * Ipaddr.t option -> unit

(** Account one packet on one direction and refresh the idle clock. *)
val touch : t -> now:int64 -> dir:Flow_key.direction -> len:int -> unit

(** Advance the conntrack state machine for one packet.  TCP: SYN/EST/
    FIN/RST transitions, with packets on a closed session (other than a
    reopening SYN or a RST) dropped; UDP and other protocols always
    pass (they expire by idle timeout). *)
val conntrack_step :
  t -> dir:Flow_key.direction -> tcp_flags:int -> [ `Pass | `Drop of string ]

(** Apply the session's rewrite to [m] for the given direction,
    in place: the parsed key, and — when wire bytes are present — the
    IPv4 addresses/ports with RFC 1624 incremental fixup of the IP and
    TCP/UDP checksums ({!Rp_pkt.Checksum.adjust}); IPv6 rewrites the
    addresses and adjusts the L4 checksum.  Returns [true] when the
    packet was actually translated ([false] for un-NAT'd sessions). *)
val apply_rewrite : t -> Flow_key.direction -> Mbuf.t -> bool

(** [route_learnable s dir k] — whether a routing decision made for
    key [k] may be cached as [dir]'s next-hop: true exactly when [k]
    is the direction's post-rewrite tuple.  False means the NAT
    rewrite was bypassed (plugin quarantined or unbound), and caching
    the decision would poison the session's route for when the
    rewrite comes back. *)
val route_learnable : t -> Flow_key.direction -> Flow_key.t -> bool

(** The session pointer plugins cache in their flow-record soft slot:
    steady state dereferences this instead of touching the table. *)
type Rp_classifier.Flow_table.soft += Cached of t * Flow_key.direction

(** Canonical-key RSS ({!Rp_pkt.Flow_key.canonical_hash}) — install
    with [Engine.set_rss] to pin both directions of un-NAT'd
    conversations to one shard. *)
val shard_key : Flow_key.t -> int

(** Post-rewrite tuple of the NAT'd session (if any) referenced by a
    flow record's soft slots — the [Flow_export] translated-tuple
    extractor.  Installed into [Flow_export.set_translated_of] when
    this library is linked. *)
val xlate_of_record :
  Rp_core.Plugin.t Rp_classifier.Flow_table.record ->
  Rp_obs.Flowlog.xlate option

(** Session export record (reason ["session-expired"] /
    ["session-flushed"]), carrying both directions' totals and the
    translated tuple when NAT'd. *)
val export_record : reason:string -> t -> Rp_obs.Flowlog.record

module Table : sig
  type session = t
  type t

  type timeout_class = [ `Tcp_syn | `Tcp_est | `Tcp_fin | `Udp | `Other ]

  type nat_rule = {
    kind : [ `Snat | `Dnat ];
    filter : Rp_classifier.Filter.t;
    addr : Ipaddr.t;
    port : int option;
    tos : int option;
  }

  type stats = {
    live : int;
    created : int;
    expired : int;
    lookups : int;
    hits : int;
    misses : int;
    cached_hits : int;
    rewrites : int;
    ct_drops : int;
    key_conflicts : int;
  }

  (** [get name] — the process-wide table registry (create on first
      use).  Plugin instances and [pmgr] address tables by name;
      the default is ["default"]. *)
  val get : string -> t

  val names : unit -> string list
  val name : t -> string

  (** A fresh unregistered table (tests). *)
  val create : ?stripes:int -> string -> t

  (** [resolve t key ~now ~tcp_flags] — the session-table hit: find
      the session either ingress tuple (pre- or post-rewrite)
      canonicalizes to, together with the packet's direction, creating
      it (NAT rules and QoS applied) when [create] (default [true]) and
      no session exists.  Charges the memory-access meter for the
      lookup (and insert). *)
  val resolve :
    t -> ?create:bool -> Flow_key.t -> now:int64 -> tcp_flags:int ->
    (session * Flow_key.direction) option

  (** Count one steady-state soft-pointer hit; [charge] additionally
      charges its single memory access (exactly one plugin on the
      packet's path charges — the record is cache-hot for the rest). *)
  val cached_hit : t -> charge:bool -> unit

  val note_rewrite : t -> unit
  val note_ct_drop : t -> unit

  (** NAT rules, consulted at session creation (first match of each
      kind wins; insertion order). *)
  val add_rule : t -> nat_rule -> unit

  (** Remove rule by index into {!rules}; [Error] when out of range. *)
  val del_rule : t -> int -> (unit, string) result

  val rules : t -> nat_rule list

  val set_timeout : t -> timeout_class -> int64 -> unit
  val timeout : t -> timeout_class -> int64

  (** Evict every session idle past its state's timeout, emitting one
      export record each ({!Rp_obs.Flowlog}).  Returns the count.
      Control path (any domain; stripe locks taken). *)
  val expire : t -> now:int64 -> int

  (** Evict everything (reason ["session-flushed"]). *)
  val flush : t -> int

  (** Live sessions, each exactly once. *)
  val iter : (session -> unit) -> t -> unit

  val length : t -> int
  val stats : t -> stats
end

(** [cached_resolve table ~cache ~charge ctx m] — the per-packet entry
    point shared by the session plugins.  With [cache] on and a flow
    binding present, steady state dereferences the {!Cached} pointer
    in the binding's soft slot ([charge] selects whether its single
    memory access is charged); otherwise (or on a cold/invalidated
    slot) it falls back to {!Table.resolve} and repopulates the
    cache.  [cache:false] is the naive per-feature-lookup mode the
    benchmarks contrast against. *)
val cached_resolve :
  Table.t -> ?create:bool -> cache:bool -> charge:bool ->
  Rp_core.Plugin.ctx -> Mbuf.t -> (t * Flow_key.direction) option
