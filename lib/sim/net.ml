open Rp_pkt
open Rp_core

type node_stats = {
  mutable received : int;
  mutable forwarded : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable drop_reasons : (string * int) list;
  mutable cycles : int;
}

type node = {
  sim : Sim.t;
  rtr : Router.t;
  links : link option array;  (** by out iface *)
  busy : bool array;
  n_stats : node_stats;
}

and link = {
  dest : endpoint;
  prop_ns : int64;
}

and endpoint =
  | To_node of node * int
  | To_sink of Sink.t

let add_router sim rtr =
  let n = Array.length rtr.Router.ifaces in
  {
    sim;
    rtr;
    links = Array.make n None;
    busy = Array.make n false;
    n_stats =
      {
        received = 0;
        forwarded = 0;
        delivered = 0;
        dropped = 0;
        drop_reasons = [];
        cycles = 0;
      };
  }

let router node = node.rtr
let stats node = node.n_stats

let connect node ~iface endpoint ~prop_ns =
  if iface < 0 || iface >= Array.length node.links then
    invalid_arg "Net.connect: no such interface";
  node.links.(iface) <- Some { dest = endpoint; prop_ns }

(* Modelled per-packet cost distribution; the buckets straddle the
   Table-3 range (plain forwarding 6460 cycles, full gate chain
   ~8160). *)
let h_pkt_cycles =
  Rp_obs.Registry.histogram "sim.pkt_cycles"
    ~bounds:[| 6_500; 7_000; 7_500; 8_000; 8_500; 10_000; 15_000; 25_000 |]

let count_drop st reason =
  st.dropped <- st.dropped + 1;
  let count = try List.assoc reason st.drop_reasons with Not_found -> 0 in
  st.drop_reasons <- (reason, count + 1) :: List.remove_assoc reason st.drop_reasons

let tx_time_ns ifc len =
  let bits = Int64.of_int (len * 8) in
  Int64.div (Int64.mul bits 1_000_000_000L) ifc.Iface.bandwidth_bps

(* Serve the link on [out] while there is backlog. *)
let rec kick node out =
  if not node.busy.(out) then begin
    let ifc = Router.iface node.rtr out in
    let now = Sim.now node.sim in
    let m, cycles = Cost.measure (fun () -> Iface.dequeue ifc ~now) in
    node.n_stats.cycles <- node.n_stats.cycles + cycles;
    match m with
    | None -> ()
    | Some m ->
      node.busy.(out) <- true;
      let ser = tx_time_ns ifc m.Mbuf.len in
      Sim.after node.sim ser (fun () ->
          Iface.count_tx ifc m;
          node.n_stats.forwarded <- node.n_stats.forwarded + 1;
          node.busy.(out) <- false;
          (match node.links.(out) with
           | Some link ->
             Sim.after node.sim link.prop_ns (fun () -> deliver node link.dest m)
           | None -> ());
          kick node out)
  end

and deliver node dest m =
  match dest with
  | To_sink sink -> Sink.receive sink ~now:(Sim.now node.sim) m
  | To_node (peer, in_iface) ->
    (* Entering a new router: the FIX is meaningless there, and the
       six-tuple's incoming interface changes. *)
    m.Mbuf.fix <- None;
    m.Mbuf.key <- { m.Mbuf.key with Flow_key.iface = in_iface };
    receive peer m

and receive node m =
  let now = Sim.now node.sim in
  node.n_stats.received <- node.n_stats.received + 1;
  let verdict, cycles = Cost.measure (fun () -> Ip_core.process node.rtr ~now m) in
  node.n_stats.cycles <- node.n_stats.cycles + cycles;
  Rp_obs.Histogram.observe h_pkt_cycles cycles;
  (match verdict with
   | Ip_core.Enqueued _ | Ip_core.Absorbed -> ()
   | Ip_core.Delivered_local -> node.n_stats.delivered <- node.n_stats.delivered + 1
   | Ip_core.Dropped reason -> count_drop node.n_stats reason);
  (* Serve every interface: the data path may have queued packets
     beyond the verdict's own egress (self-generated ICMP errors). *)
  for out = 0 to Array.length node.links - 1 do
    kick node out
  done

let inject node m ~at =
  Sim.at node.sim at (fun () ->
      m.Mbuf.birth_ns <- at;
      receive node m)

let cycles_per_packet node =
  if node.n_stats.received = 0 then 0.0
  else float_of_int node.n_stats.cycles /. float_of_int node.n_stats.received
