(* Synthetic traffic source in the snabb "Synth" app mold: a
   pull-driven generator that allocates descriptors from a packet
   Pool and transmits them onto a Link, as fast as the downstream
   stage drains — or up to a configured rate against the caller's
   clock.  Deterministic for a given seed. *)

open Rp_pkt

let default_size_mix = [ (64, 7); (594, 4); (1500, 1) ]

type t = {
  pool : Pool.t;
  rng : Random.State.t;
  sizes : int array;  (* one entry per weight unit; uniform pick = mix *)
  flows : int;
  rate_pps : float option;
  iface : int;
  mutable start_ns : int64;  (* rate epoch; first pull's [now_ns] *)
  mutable started : bool;
  mutable generated : int;
  mutable starved : int;
  mutable blocked : int;
  mutable capped : int;
}

let create ?(seed = 42) ?(size_mix = default_size_mix) ?(flows = 64)
    ?rate_pps ?(iface = 0) ~pool () =
  if flows < 1 then invalid_arg "Synth.create: flows < 1";
  (match rate_pps with
   | Some r when r <= 0.0 -> invalid_arg "Synth.create: rate_pps <= 0"
   | _ -> ());
  if size_mix = [] then invalid_arg "Synth.create: empty size mix";
  let sizes =
    List.concat_map
      (fun (len, weight) ->
        if len < 1 || weight < 1 then
          invalid_arg "Synth.create: bad size mix entry";
        List.init weight (fun _ -> len))
      size_mix
    |> Array.of_list
  in
  {
    pool;
    rng = Random.State.make [| seed |];
    sizes;
    flows;
    rate_pps;
    iface;
    start_ns = 0L;
    started = false;
    generated = 0;
    starved = 0;
    blocked = 0;
    capped = 0;
  }

let pool t = t.pool

(* How many packets the rate cap allows in total by [now_ns].  The
   deficit against [generated] is this pull's budget: token-bucket
   behavior, with the bucket depth clamped to one max-batch in [pull]
   — a stalled consumer resumes with at most [max] queued tokens
   instead of an arbitrarily large catch-up burst that would overflow
   the link and inflate txdrops. *)
let allowed t ~now_ns =
  match t.rate_pps with
  | None -> max_int
  | Some rate ->
    let dt_ns = Int64.to_float (Int64.sub now_ns t.start_ns) in
    int_of_float (rate *. dt_ns /. 1e9)

let pull t ~now_ns link ~max =
  if not t.started then begin
    t.started <- true;
    t.start_ns <- now_ns
  end;
  let budget =
    match t.rate_pps with
    | None -> max  (* unlimited source: the batch size is the budget *)
    | Some _ ->
      let total = allowed t ~now_ns in
      let b = total - t.generated in
      if b <= max then b
      else begin
        (* Deficit deeper than one batch: forfeit the excess tokens
           (count the clamp) so the next pull starts from a full —
           not overflowing — bucket. *)
        t.capped <- t.capped + 1;
        t.generated <- total - max;
        max
      end
  in
  let sent = ref 0 in
  (try
     while !sent < budget do
       if Link.is_full link then begin
         t.blocked <- t.blocked + 1;
         raise Exit
       end;
       let id = Random.State.int t.rng t.flows in
       let len = t.sizes.(Random.State.int t.rng (Array.length t.sizes)) in
       let key = Traffic.flow_key ~iface:t.iface ~id () in
       let m =
         match Pool.alloc t.pool ~key ~len with
         | m -> m
         | exception Pool.Empty ->
           t.starved <- t.starved + 1;
           raise Exit
       in
       m.Mbuf.seq <- t.generated;
       ignore (Link.transmit link m);
       t.generated <- t.generated + 1;
       incr sent
     done
   with Exit -> ());
  !sent

let generated t = t.generated
let starved t = t.starved
let blocked t = t.blocked
let capped t = t.capped
